(** Cooperative fibers on OCaml 5 effect handlers (paper §4.2).

    Under tensor-dependent control flow, the unbatched program for each batch
    instance runs as a fiber; a fiber that needs a tensor value {!suspend}s,
    and when every fiber is blocked the driver invokes the stall callback
    (which flushes the DFG) and resumes them — preserving batch parallelism.
    {!fork} runs independent sub-computations as child fibers (fork-join),
    exposing instance parallelism such as DRNN's concurrent sub-tree
    generation. This plays the role of Boost fibers in the paper's
    implementation. *)

type _ Effect.t += Suspend : unit Effect.t
type _ Effect.t += Fork : (unit -> Value.value) array -> Value.value array Effect.t

(** Block the current fiber until after the next DFG flush. *)
let suspend () = Effect.perform Suspend

(** Run the thunks as child fibers; returns once all complete. *)
let fork thunks = Effect.perform (Fork thunks)

type scheduler = {
  runq : (unit -> unit) Queue.t;
  mutable blocked : (unit -> unit) list;
  mutable switches : int;
}

(** [run ~on_stall tasks] drives [tasks] as fibers to completion. [on_stall]
    is called whenever all live fibers are blocked; it must make progress
    (flush the DFG) or the driver raises. *)
let run ~(on_stall : unit -> unit) (tasks : (unit -> unit) list) : int =
  let s = { runq = Queue.create (); blocked = []; switches = 0 } in
  let open Effect.Deep in
  let rec spawn (task : unit -> unit) (finish : unit -> unit) =
    let body () =
      match_with
        (fun () ->
          task ();
          finish ())
        ()
        {
          retc = (fun () -> ());
          exnc = raise;
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Suspend ->
                Some
                  (fun (k : (a, _) continuation) ->
                    s.blocked <- (fun () -> continue k ()) :: s.blocked)
              | Fork thunks ->
                Some
                  (fun (k : (a, _) continuation) ->
                    let n = Array.length thunks in
                    let results = Array.make n Value.Vnil in
                    if n = 0 then Queue.add (fun () -> continue k results) s.runq
                    else begin
                      let remaining = ref n in
                      Array.iteri
                        (fun i th ->
                          spawn
                            (fun () -> results.(i) <- th ())
                            (fun () ->
                              decr remaining;
                              if !remaining = 0 then
                                Queue.add (fun () -> continue k results) s.runq))
                        thunks
                    end)
              | _ -> None);
        }
    in
    Queue.add body s.runq
  in
  List.iter (fun t -> spawn t (fun () -> ())) tasks;
  let rec drive () =
    if not (Queue.is_empty s.runq) then begin
      let next = Queue.pop s.runq in
      s.switches <- s.switches + 1;
      next ();
      drive ()
    end
    else if s.blocked <> [] then begin
      let n_blocked = List.length s.blocked in
      on_stall ();
      let resumable = List.rev s.blocked in
      s.blocked <- [];
      List.iter (fun r -> Queue.add r s.runq) resumable;
      if Queue.is_empty s.runq && n_blocked > 0 then
        failwith "fiber deadlock: stall callback made no progress";
      drive ()
    end
  in
  drive ();
  s.switches
