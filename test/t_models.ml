(** Tests for the model zoo, workload generators and the Cortex baseline. *)

open Acrobat
open T_util
module W = Workloads
module P = Profiler

(* --- Workload generators --- *)

let test_tree_sampling_deterministic () =
  let t1 = W.Trees.sample (Rng.create 5) in
  let t2 = W.Trees.sample (Rng.create 5) in
  check_true "same seed, same tree" (t1 = t2)

let prop_tree_structure =
  qtest "trees: size = 2*leaves - 1 (binary)" QCheck2.Gen.int (fun seed ->
      let t = W.Trees.sample (Rng.create seed) in
      W.Trees.size t = (2 * W.Trees.leaves t) - 1)

let prop_tree_levels =
  qtest "trees: level sizes sum to size" QCheck2.Gen.int (fun seed ->
      let t = W.Trees.sample (Rng.create seed) in
      List.fold_left ( + ) 0 (W.Trees.level_sizes t) = W.Trees.size t)

let prop_tree_height_bounds =
  qtest "trees: log n <= height < n" QCheck2.Gen.int (fun seed ->
      let t = W.Trees.sample (Rng.create seed) in
      let h = W.Trees.height t and n = W.Trees.leaves t in
      h < n && float_of_int h >= Float.log2 (float_of_int n) -. 1e-9)

let prop_sentence_lengths =
  qtest "sentences: length in [4, 50]" QCheck2.Gen.int (fun seed ->
      let s = W.Sentences.sample (Rng.create seed) in
      let n = List.length s in
      n >= 4 && n <= 50)

let test_embedding_cache () =
  let table = W.Embeddings.create ~shape:[ 1; 4 ] ~seed:3 in
  let a = W.Embeddings.lookup table 42 in
  let b = W.Embeddings.lookup table 42 in
  check_true "same word shares storage" (a == b);
  let c = W.Embeddings.lookup table 43 in
  check_bool "different words differ" false (Tensor.equal a c)

(* --- Models --- *)

let test_all_models_compile_and_run () =
  (* Full-size models compile (analysis, lowering, kernel generation) and
     run a small accounting-only batch under ACROBAT and DyNet. *)
  List.iter
    (fun (e : Models.entry) ->
      let model = e.Models.make Model.Small in
      List.iter
        (fun kind ->
          let compiled = compile ~framework:kind ~inputs:model.Model.inputs model.Model.source in
          let weights = model.Model.gen_weights 1 in
          let instances = gen_batch model ~batch:2 ~seed:5 in
          let r = run compiled ~weights ~instances () in
          check_true
            (e.Models.id ^ ": executed kernels")
            (r.Driver.stats.profiler.P.kernel_calls > 0))
        [ acrobat_kind; dynet_kind ])
    Models.all

let test_model_tdc_flags () =
  List.iter
    (fun (e : Models.entry) ->
      let model = e.Models.make Model.Small in
      let lp = Lower.compile ~inputs:model.Model.inputs model.Model.source in
      check_bool (e.Models.id ^ ": TDC flag") e.Models.has_tdc lp.Lowered.has_tdc)
    Models.all

let test_treelstm_output_is_distribution () =
  let r = run_tiny ~framework:acrobat_kind "treelstm" in
  List.iter
    (fun v ->
      match Value.handles [] v with
      | [ h ] -> begin
        match Value.handle_out h with
        | Some { tensor = Some t; _ } ->
          check_float ~eps:1e-9 "softmax sums to 1" 1.0 (Tensor.sum t);
          Array.iter (fun p -> check_true "probability" (p >= 0.0 && p <= 1.0)) (Tensor.data t)
        | _ -> Alcotest.fail "output not computed"
      end
      | _ -> Alcotest.fail "expected one output tensor")
    r.Driver.outputs

let test_rnn_output_length_matches_input () =
  let model = Models.tiny "rnn" in
  let compiled = compile ~inputs:model.Model.inputs model.Model.source in
  let weights = model.Model.gen_weights 1 in
  let instances = gen_batch model ~batch:3 ~seed:3 in
  let r = run ~compute_values:true compiled ~weights ~instances () in
  List.iter2
    (fun inst v ->
      let input_len =
        match List.assoc "inps" inst with Driver.Hlist l -> List.length l | _ -> 0
      in
      check_int "one output per token" input_len (List.length (Value.handles [] v)))
    instances r.Driver.outputs

let test_berxit_early_exit_varies () =
  (* Different instances exit at different layers: flush count exceeds one
     and per-instance kernel counts differ across a batch. *)
  let model = Models.tiny "berxit" in
  let compiled = compile ~inputs:model.Model.inputs model.Model.source in
  let weights = model.Model.gen_weights 1 in
  let instances = gen_batch model ~batch:8 ~seed:3 in
  let r = run compiled ~weights ~instances () in
  check_true "multiple flush rounds (per-layer decisions)" (r.Driver.stats.flushes > 2)

let test_stackrnn_terminates_and_scales () =
  let model = Models.tiny "stackrnn" in
  let compiled = compile ~inputs:model.Model.inputs model.Model.source in
  let weights = model.Model.gen_weights 1 in
  let small = run compiled ~weights ~instances:(gen_batch model ~batch:2 ~seed:3) () in
  let large = run compiled ~weights ~instances:(gen_batch model ~batch:8 ~seed:3) () in
  check_true "more instances, more nodes"
    (large.Driver.stats.profiler.P.nodes_created > small.Driver.stats.profiler.P.nodes_created)

let test_model_sizes_differ () =
  List.iter
    (fun id ->
      let entry = Models.find id in
      let run_size size =
        let model = entry.Models.make size in
        let compiled = compile ~inputs:model.Model.inputs model.Model.source in
        let weights = model.Model.gen_weights 1 in
        let instances = gen_batch model ~batch:2 ~seed:5 in
        (run compiled ~weights ~instances ()).Driver.stats.latency_ms
      in
      check_true (id ^ ": large slower than small") (run_size Model.Large > run_size Model.Small))
    [ "treelstm"; "birnn"; "berxit" ]

(* --- Cortex baseline --- *)

let test_cortex_treelstm_scales () =
  let rng = Rng.create 3 in
  let trees8 = List.init 8 (fun _ -> W.Trees.sample rng) in
  let rng = Rng.create 3 in
  let trees64 = List.init 64 (fun _ -> W.Trees.sample rng) in
  let r8 = Cortex.run_treelstm ~hidden:256 trees8 in
  let r64 = Cortex.run_treelstm ~hidden:256 trees64 in
  check_true "positive latency" (r8.Cortex.latency_ms > 0.0);
  check_true "batch 64 slower" (r64.Cortex.latency_ms > r8.Cortex.latency_ms);
  check_true "sublinear in batch (level batching)"
    (r64.Cortex.latency_ms < 8.0 *. r8.Cortex.latency_ms)

let test_cortex_few_launches () =
  let rng = Rng.create 3 in
  let trees = List.init 64 (fun _ -> W.Trees.sample rng) in
  let r = Cortex.run_treelstm ~hidden:256 trees in
  let max_height = List.fold_left (fun acc t -> max acc (W.Trees.height t)) 0 trees in
  check_true "about one persistent launch per level" (r.Cortex.kernel_calls <= max_height + 4)

let test_cortex_mvrnn_copy_penalty () =
  let rng = Rng.create 3 in
  let trees = List.init 16 (fun _ -> W.Trees.sample rng) in
  let tree_r = Cortex.run_treelstm ~hidden:64 trees in
  let mv_r = Cortex.run_mvrnn ~hidden:64 trees in
  (* Same trees, comparable compute, but MV-RNN pays per-leaf matrix
     copies. *)
  check_true "leaf copies dominate MV-RNN" (mv_r.Cortex.latency_ms > tree_r.Cortex.latency_ms)

let test_cortex_birnn () =
  let rng = Rng.create 3 in
  let sentences = List.init 16 (fun _ -> W.Sentences.sample rng) in
  let r = Cortex.run_birnn ~hidden:256 ~classes:16 sentences in
  let max_len = List.fold_left (fun acc s -> max acc (List.length s)) 0 sentences in
  check_true "two launches per step plus hoisted ends"
    (r.Cortex.kernel_calls <= (2 * max_len) + 4)

let test_moe_routing_batches () =
  (* Instances routed to the same expert share its kernels: with 16
     instances over 4 experts, expert kernels batch. *)
  let model = Models.tiny "moe" in
  let compiled = compile ~inputs:model.Model.inputs model.Model.source in
  let weights = model.Model.gen_weights 1 in
  let instances = gen_batch model ~batch:16 ~seed:3 in
  let r = run compiled ~weights ~instances () in
  let p = r.Driver.stats.profiler in
  check_true "expert invocations batch across instances"
    (p.P.batches_executed < p.P.nodes_created / 2)

let test_beamsearch_beams_batch () =
  (* All beams of all instances expand at the same depth per step. *)
  let model = Models.tiny "beamsearch" in
  let compiled = compile ~inputs:model.Model.inputs model.Model.source in
  let weights = model.Model.gen_weights 1 in
  let instances = gen_batch model ~batch:8 ~seed:3 in
  let r = run compiled ~weights ~instances () in
  let p = r.Driver.stats.profiler in
  (* 8 instances x 3 beams expand together: ~1 batch per decode step. *)
  check_true "beam expansions batch" (p.P.batches_executed <= r.Driver.stats.flushes * 3)

let suite =
  [
    Alcotest.test_case "workloads: tree determinism" `Quick test_tree_sampling_deterministic;
    prop_tree_structure;
    prop_tree_levels;
    prop_tree_height_bounds;
    prop_sentence_lengths;
    Alcotest.test_case "workloads: embedding cache" `Quick test_embedding_cache;
    Alcotest.test_case "models: all compile and run" `Slow test_all_models_compile_and_run;
    Alcotest.test_case "models: TDC flags" `Quick test_model_tdc_flags;
    Alcotest.test_case "models: treelstm softmax output" `Quick test_treelstm_output_is_distribution;
    Alcotest.test_case "models: rnn output length" `Quick test_rnn_output_length_matches_input;
    Alcotest.test_case "models: berxit early exit" `Quick test_berxit_early_exit_varies;
    Alcotest.test_case "models: stackrnn scaling" `Quick test_stackrnn_terminates_and_scales;
    Alcotest.test_case "models: size scaling" `Slow test_model_sizes_differ;
    Alcotest.test_case "cortex: treelstm scaling" `Quick test_cortex_treelstm_scales;
    Alcotest.test_case "cortex: few launches" `Quick test_cortex_few_launches;
    Alcotest.test_case "cortex: mvrnn copy penalty" `Quick test_cortex_mvrnn_copy_penalty;
    Alcotest.test_case "cortex: birnn" `Quick test_cortex_birnn;
    Alcotest.test_case "models: moe routing batches" `Quick test_moe_routing_batches;
    Alcotest.test_case "models: beam expansions batch" `Quick test_beamsearch_beams_batch;
  ]
