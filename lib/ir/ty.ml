(** Types of the input language.

    The language is a small Relay-like typed functional language (§3 of the
    paper): tensors with static shapes, scalars, tuples, functions, and two
    built-in algebraic datatypes — lists and binary trees — which are enough
    to express all the models in the paper's Table 3. *)

open Acrobat_tensor

type t =
  | Tensor of Shape.t
  | Int
  | Bool
  | Float
  | List of t
  | Tree of t  (** Binary trees: [Leaf v] with [v : t], or [Node (l, r)]. *)
  | Tup of t list
  | Fn of t list * t

let rec equal a b =
  match a, b with
  | Tensor s1, Tensor s2 -> Shape.equal s1 s2
  | Int, Int | Bool, Bool | Float, Float -> true
  | List a, List b | Tree a, Tree b -> equal a b
  | Tup xs, Tup ys -> List.length xs = List.length ys && List.for_all2 equal xs ys
  | Fn (xs, r1), Fn (ys, r2) ->
    List.length xs = List.length ys && List.for_all2 equal xs ys && equal r1 r2
  | (Tensor _ | Int | Bool | Float | List _ | Tree _ | Tup _ | Fn _), _ -> false

let rec pp ppf = function
  | Tensor s -> Fmt.pf ppf "Tensor[%a]" Shape.pp s
  | Int -> Fmt.string ppf "Int"
  | Bool -> Fmt.string ppf "Bool"
  | Float -> Fmt.string ppf "Float"
  | List t -> Fmt.pf ppf "List[%a]" pp t
  | Tree t -> Fmt.pf ppf "Tree[%a]" pp t
  | Tup ts -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") pp) ts
  | Fn (args, ret) -> Fmt.pf ppf "fn(%a) -> %a" Fmt.(list ~sep:(any ", ") pp) args pp ret

let to_string t = Fmt.str "%a" pp t
