(** Common shape of an evaluation model (paper Table 3): an input-language
    source program plus seeded generators for weights and per-instance
    inputs. *)

open Acrobat_tensor
module Driver = Acrobat_engines.Driver

type size = Small | Large

let size_name = function Small -> "small" | Large -> "large"

type t = {
  name : string;
  size : size;
  source : string;  (** The model program in the input language. *)
  inputs : string list;  (** @main parameters that vary per instance. *)
  gen_weights : int -> (string * Tensor.t) list;  (** seed -> weights *)
  gen_instance : Rng.t -> (string * Driver.hval) list;
  degraded : t option;
      (** Lower-quality / lower-latency variant of the same model (e.g. an
          early-exit configuration with a more eager exit head). Must accept
          the primary's instances and weights unchanged — same input and
          weight shapes — so a serving layer under pressure can swap it in
          per batch and swap back when pressure clears. [None] for models
          with no built-in quality/latency knob. *)
}

(** Estimated parameter footprint in bytes: summed element count of every
    weight tensor at 4 bytes per float element. Materializes one weight set
    (seed 0) to measure it, so size it once at registration time — the
    serving layer caches it per catalog entry — rather than per request. *)
let param_bytes (m : t) : int =
  4 * List.fold_left (fun acc (_, w) -> acc + Tensor.numel w) 0 (m.gen_weights 0)

(** Generate named weight tensors from (name, shape) specs. *)
let weights_of_specs specs seed =
  let rng = Rng.create (seed * 7_907) in
  List.map (fun (name, shape) -> name, Tensor.random rng shape) specs

(** Per-instance word-embedding table shared across a model's instances. *)
let embedding_table ~dim ~seed = Acrobat_workloads.Embeddings.create ~shape:[ 1; dim ] ~seed

(** Template substitution for model sources: replaces every ["{KEY}"] with
    its value. Sources keep the input language's own syntax readable instead
    of threading dozens of positional format arguments. *)
let subst_str (bindings : (string * string) list) (template : string) : string =
  List.fold_left
    (fun acc (key, v) ->
      let pat = "{" ^ key ^ "}" in
      let buf = Buffer.create (String.length acc) in
      let plen = String.length pat in
      let n = String.length acc in
      let i = ref 0 in
      while !i < n do
        if !i + plen <= n && String.sub acc !i plen = pat then begin
          Buffer.add_string buf v;
          i := !i + plen
        end
        else begin
          Buffer.add_char buf acc.[!i];
          incr i
        end
      done;
      Buffer.contents buf)
    template bindings

let subst (bindings : (string * int) list) (template : string) : string =
  subst_str (List.map (fun (k, v) -> k, string_of_int v) bindings) template
