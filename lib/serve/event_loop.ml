(** A deterministic discrete-event loop over the virtual {!Clock}.

    Events are thunks keyed by (time, sequence number): ties at the same
    virtual instant dispatch in scheduling order, so a burst of simultaneous
    arrivals enqueues before the wake-up that one of them scheduled — the
    property the batcher's cross-request invariants rely on. Handlers may
    schedule further events (at or after the current time); the loop runs
    until the queue drains. *)

module Key = struct
  type t = float * int  (* fire time (us), scheduling sequence *)

  let compare (ta, sa) (tb, sb) =
    match Float.compare ta tb with 0 -> Int.compare sa sb | c -> c
end

module Q = Map.Make (Key)

type t = {
  clock : Clock.t;
  mutable queue : (unit -> unit) Q.t;
  mutable next_seq : int;
  mutable dispatched : int;
  mutable clamped : int;
}

let create clock = { clock; queue = Q.empty; next_seq = 0; dispatched = 0; clamped = 0 }

(* Debug-only dispatch-order checking. The loop's correctness rests on
   events popping at non-decreasing fire times (the (time, seq) map order);
   code that advances the clock behind the loop's back — or a future
   refactor that breaks the key ordering — would silently reorder
   causality. With the flag on, [run] raises the moment a popped event's
   fire time is behind the clock instead of letting [Clock.advance_to]
   swallow the regression. Global rather than per-loop so harnesses (the
   chaos campaign, tests) can arm it around whole simulations without
   threading a knob through every [create]. *)
let debug_checks = ref false

(** Enable/disable the monotonic-dispatch assertion in {!run}. *)
let set_debug_checks enabled = debug_checks := enabled

let debug_checks_enabled () = !debug_checks

let clock t = t.clock
let now t = Clock.now t.clock
let pending t = Q.cardinal t.queue
let dispatched t = t.dispatched

(** Number of schedules whose requested time was in the past. A correct
    simulation never asks for the past, so anything nonzero is a latent
    scheduling bug that clamping would otherwise hide. *)
let clamped_count t = t.clamped

(** Schedule [f] to run at virtual time [at] (clamped to the present: the
    past is immutable — but see {!clamped_count}; silently rewriting the
    request can mask bugs, so every clamp is counted). *)
let schedule t ~at f =
  if at < now t then t.clamped <- t.clamped + 1;
  let at = Float.max at (now t) in
  t.queue <- Q.add (at, t.next_seq) f t.queue;
  t.next_seq <- t.next_seq + 1

let schedule_after t ~delay f = schedule t ~at:(now t +. Float.max 0.0 delay) f

(** Dispatch events in (time, seq) order until none remain. *)
let run t =
  let rec step () =
    match Q.min_binding_opt t.queue with
    | None -> ()
    | Some (((at, _) as key), f) ->
      if !debug_checks && at < now t then
        Fmt.invalid_arg
          "Event_loop.run: dispatch order regression (event due at %.3fus, clock already \
           at %.3fus)"
          at (now t);
      t.queue <- Q.remove key t.queue;
      Clock.advance_to t.clock at;
      t.dispatched <- t.dispatched + 1;
      f ();
      step ()
  in
  step ()
