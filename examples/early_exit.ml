(** Early-exit transformer inference (Berxit): tensor-dependent control flow
    under concurrent fiber execution. Each instance decides after every
    layer whether to exit; fibers keep the surviving instances batched
    across decision points.

    Run with: [dune exec examples/early_exit.exe] *)

open Acrobat
module P = Profiler

let () =
  let model = Acrobat_models.Berxit.make ~dims:(6, 16, 32, 4) Model.Small in
  let weights = model.Model.gen_weights 5 in
  let instances = gen_batch model ~batch:8 ~seed:21 in
  let compiled = compile ~inputs:model.Model.inputs model.Model.source in
  let compiled = tune compiled ~weights ~calibration:instances in
  let r = run ~compute_values:true compiled ~weights ~instances () in
  let p = r.Driver.stats.profiler in
  Fmt.pr "8 instances through a 6-layer early-exit encoder:@.";
  Fmt.pr "  flush rounds (one per surviving layer wave): %d@." r.Driver.stats.flushes;
  Fmt.pr "  batches: %d   kernel launches: %d   fiber switches: %d@." p.P.batches_executed
    p.P.kernel_calls p.P.fiber_switches;
  Fmt.pr "  simulated latency: %.3f ms@." r.Driver.stats.latency_ms;
  (* The same seeds always exit at the same layers (paper §E.1). *)
  let r2 = run compiled ~weights ~instances () in
  assert (r2.Driver.stats.flushes = r.Driver.stats.flushes);
  Fmt.pr "  (deterministic across runs: %d = %d flushes)@." r.Driver.stats.flushes
    r2.Driver.stats.flushes;
  (* Without fibers, each instance runs to completion alone: decisions
     serialize the batch. *)
  let solo =
    compile ~framework:(Frameworks.Acrobat { Config.acrobat with Config.fibers = false })
      ~inputs:model.Model.inputs model.Model.source
  in
  let solo = tune solo ~weights ~calibration:instances in
  let r3 = run solo ~weights ~instances () in
  Fmt.pr "@.without fibers (sequential instances): %d batches vs %d — batch parallelism lost@."
    r3.Driver.stats.profiler.P.batches_executed p.P.batches_executed
