(** The evaluation model zoo (paper Table 3). *)

type entry = {
  id : string;
  make : Model.size -> Model.t;
  has_tdc : bool;
  param_bytes : Model.size -> int;
      (** Parameter footprint of the sized model (4 bytes per weight
          element); sizes the serving layer's model-swap cost and any
          future memory-budgeted batching. Materializes one weight set per
          call — cache the result, don't query per request. *)
}

let entry id make has_tdc =
  { id; make; has_tdc; param_bytes = (fun s -> Model.param_bytes (make s)) }

let all : entry list =
  [
    entry "treelstm" (fun s -> Treelstm.make s) false;
    entry "mvrnn" (fun s -> Mvrnn.make s) false;
    entry "birnn" (fun s -> Birnn.make s) false;
    entry "nestedrnn" (fun s -> Nestedrnn.make s) true;
    entry "drnn" (fun s -> Drnn.make s) true;
    entry "berxit" (fun s -> Berxit.make s) true;
    entry "stackrnn" (fun s -> Stackrnn.make s) true;
  ]

(** Additional dynamic computations from the paper's Table 2 survey (not in
    its Table 3 evaluation). *)
let extras : entry list =
  [
    entry "beamsearch" (fun s -> Beam_search.make s) true;
    entry "moe" (fun s -> Moe.make s) true;
  ]

let find id =
  match List.find_opt (fun e -> e.id = id) (all @ extras) with
  | Some e -> e
  | None -> Fmt.invalid_arg "unknown model %S" id

(** Models with small/scaled dimensions for fast tests and examples. *)
let tiny id : Model.t =
  match id with
  | "rnn" -> Rnn.make ~hidden:16 ~classes:4 Model.Small
  | "treelstm" -> Treelstm.make ~hidden:8 ~classes:3 Model.Small
  | "mvrnn" -> Mvrnn.make ~hidden:8 ~classes:3 Model.Small
  | "birnn" -> Birnn.make ~hidden:8 ~classes:4 Model.Small
  | "nestedrnn" -> Nestedrnn.make ~hidden:8 Model.Small
  | "drnn" -> Drnn.make ~hidden:8 ~max_depth:4 Model.Small
  | "berxit" -> Berxit.make ~dims:(4, 16, 32, 8) Model.Small
  | "stackrnn" -> Stackrnn.make ~hidden:8 Model.Small
  | "beamsearch" -> Beam_search.make ~hidden:8 ~vocab:8 ~beam_width:3 Model.Small
  | "moe" -> Moe.make ~hidden:8 Model.Small
  | other -> Fmt.invalid_arg "unknown tiny model %S" other

(** Parameter footprint of the tiny-sized variant of [id]. *)
let tiny_param_bytes id = Model.param_bytes (tiny id)

let tiny_ids =
  [ "rnn"; "treelstm"; "mvrnn"; "birnn"; "nestedrnn"; "drnn"; "berxit"; "stackrnn";
    "beamsearch"; "moe" ]
