(** Experiment drivers: one per table / figure of the paper's evaluation.

    Every experiment runs the real pipeline (compile -> tune -> execute on
    the simulated device) with fixed seeds; latencies are the simulated
    milliseconds described in DESIGN.md. Paper reference numbers are
    embedded so the output prints measured-vs-paper side by side; the goal
    is matching {e shape} (who wins, rough factors), not absolute values. *)

open Acrobat
module P = Profiler

type run = { latency_ms : float; profiler : P.t; flushes : int }

let run_framework ?(batch = 8) ?(seed = 1) ?iters ~(kind : Frameworks.kind)
    (model : Model.t) : run =
  let compiled, weights = compile_model ~framework:kind ?iters model ~batch ~seed in
  let instances = gen_batch model ~batch ~seed:(seed + 100) in
  let r = run compiled ~weights ~instances () in
  {
    latency_ms = r.Driver.stats.latency_ms;
    profiler = r.Driver.stats.profiler;
    flushes = r.Driver.stats.flushes;
  }

(** DyNet's best of its two scheduling schemes (paper footnote 7). *)
let run_dynet_best ?batch ?seed ?(improved = false) (model : Model.t) : run =
  let agenda =
    run_framework ?batch ?seed
      ~kind:(Frameworks.Dynet { improved; scheduler = Config.Agenda })
      model
  in
  let depth =
    run_framework ?batch ?seed
      ~kind:(Frameworks.Dynet { improved; scheduler = Config.Runtime_depth })
      model
  in
  if agenda.latency_ms <= depth.latency_ms then agenda else depth

let run_acrobat ?batch ?seed ?(config = Config.acrobat) (model : Model.t) : run =
  run_framework ?batch ?seed ~kind:(Frameworks.Acrobat config) model

(* --- Table 4: DyNet vs ACROBAT across all models --- *)

type t4_row = {
  t4_model : string;
  t4_size : Model.size;
  t4_batch : int;
  t4_dynet : float;
  t4_acrobat : float;
  t4_paper_dynet : float option;  (** None: the paper's run OOMed. *)
  t4_paper_acrobat : float;
}

let paper_table4 =
  (* model, size, batch, DyNet ms (None = OOM), ACROBAT ms *)
  [
    "treelstm", Model.Small, 8, Some 4.31, 1.48;
    "treelstm", Model.Small, 64, Some 26.18, 5.81;
    "treelstm", Model.Large, 8, Some 4.58, 2.4;
    "treelstm", Model.Large, 64, Some 26.53, 11.44;
    "mvrnn", Model.Small, 8, Some 2.11, 0.54;
    "mvrnn", Model.Small, 64, Some 12.45, 1.48;
    "mvrnn", Model.Large, 8, Some 2.27, 1.04;
    "mvrnn", Model.Large, 64, Some 13.89, 4.46;
    "birnn", Model.Small, 8, Some 3.13, 2.16;
    "birnn", Model.Small, 64, Some 12.04, 4.86;
    "birnn", Model.Large, 8, Some 3.95, 4.43;
    "birnn", Model.Large, 64, Some 12.11, 13.11;
    "nestedrnn", Model.Small, 8, Some 29.38, 31.01;
    "nestedrnn", Model.Small, 64, Some 84.55, 65.73;
    "nestedrnn", Model.Large, 8, Some 46.03, 35.61;
    "nestedrnn", Model.Large, 64, Some 94.97, 100.17;
    "drnn", Model.Small, 8, Some 6.7, 1.74;
    "drnn", Model.Small, 64, Some 25.3, 5.24;
    "drnn", Model.Large, 8, Some 8.44, 2.45;
    "drnn", Model.Large, 64, Some 26.5, 9.99;
    "berxit", Model.Small, 8, Some 63.54, 38.49;
    "berxit", Model.Small, 64, None, 204.54;
    "berxit", Model.Large, 8, Some 113.18, 64.49;
    "berxit", Model.Large, 64, None, 335.3;
    "stackrnn", Model.Small, 8, Some 47.78, 22.69;
    "stackrnn", Model.Small, 64, Some 213.98, 39.06;
    "stackrnn", Model.Large, 8, Some 64.67, 43.75;
    "stackrnn", Model.Large, 64, Some 230.74, 86.82;
  ]

let table4 ?(models = List.map (fun (e : Models.entry) -> e.Models.id) Models.all)
    ?(batches = [ 8; 64 ]) ?(sizes = [ Model.Small; Model.Large ]) () : t4_row list =
  List.concat_map
    (fun id ->
      let entry = Models.find id in
      List.concat_map
        (fun size ->
          let model = entry.Models.make size in
          List.map
            (fun batch ->
              let dynet = run_dynet_best ~batch model in
              let acro = run_acrobat ~batch model in
              let paper_dynet, paper_acrobat =
                match
                  List.find_opt (fun (m, s, b, _, _) -> m = id && s = size && b = batch)
                    paper_table4
                with
                | Some (_, _, _, d, a) -> d, a
                | None -> None, nan
              in
              {
                t4_model = id;
                t4_size = size;
                t4_batch = batch;
                t4_dynet = dynet.latency_ms;
                t4_acrobat = acro.latency_ms;
                t4_paper_dynet = paper_dynet;
                t4_paper_acrobat = paper_acrobat;
              })
            batches)
        sizes)
    models

(* --- Table 5: activity breakdown --- *)

type t5_cell = {
  t5_dfg : float;
  t5_sched : float;
  t5_mem : float;
  t5_kernel : float;
  t5_kernel_calls : int;
  t5_api : float;
}

let activity_cell (r : run) : t5_cell =
  let ms a = P.time_us r.profiler a /. 1000.0 in
  {
    t5_dfg = ms P.Dfg_construction;
    t5_sched = ms P.Scheduling;
    t5_mem = ms P.Mem_transfer;
    t5_kernel = ms P.Kernel_exec;
    t5_kernel_calls = r.profiler.P.kernel_calls;
    t5_api = ms P.Api_overhead;
  }

(** (config label, DyNet cell, ACROBAT cell) for TreeLSTM-small and
    BiRNN-large at batch size 64. *)
let table5 () =
  let one id size =
    let model = (Models.find id).Models.make size in
    let dynet = run_dynet_best ~batch:64 model in
    let acro = run_acrobat ~batch:64 model in
    Fmt.str "%s, %s" id (Model.size_name size), activity_cell dynet, activity_cell acro
  in
  [ one "treelstm" Model.Small; one "birnn" Model.Large ]

(* --- Table 6: Cortex vs ACROBAT --- *)

let paper_table6 =
  [
    (* model, size, batch, cortex, acrobat *)
    "treelstm", Model.Small, 8, 0.79, 1.48;
    "treelstm", Model.Small, 64, 3.62, 5.81;
    "treelstm", Model.Large, 8, 1.84, 2.4;
    "treelstm", Model.Large, 64, 10.23, 11.44;
    "mvrnn", Model.Small, 8, 1.14, 0.54;
    "mvrnn", Model.Small, 64, 6.92, 1.48;
    "mvrnn", Model.Large, 8, 5.3, 1.04;
    "mvrnn", Model.Large, 64, 41.15, 4.46;
    "birnn", Model.Small, 8, 1.28, 2.16;
    "birnn", Model.Small, 64, 3.48, 4.86;
    "birnn", Model.Large, 8, 2.47, 4.43;
    "birnn", Model.Large, 64, 10.74, 13.11;
  ]

(* Cortex consumes raw workload structures; the generators are seeded
   identically to the model instance generators (gen_batch with
   seed + 100), so both frameworks see the same trees/sentences. *)
let cortex_latency id size batch =
  let seed = 1 + 100 in
  let rng = Rng.create seed in
  match id with
  | "treelstm" ->
    let hidden = match size with Model.Small -> 256 | Model.Large -> 512 in
    let trees = List.init batch (fun _ -> Workloads.Trees.sample rng) in
    (Cortex.run_treelstm ~hidden trees).Cortex.latency_ms
  | "mvrnn" ->
    let hidden = match size with Model.Small -> 64 | Model.Large -> 128 in
    let trees = List.init batch (fun _ -> Workloads.Trees.sample rng) in
    (Cortex.run_mvrnn ~hidden trees).Cortex.latency_ms
  | "birnn" ->
    let hidden = match size with Model.Small -> 256 | Model.Large -> 512 in
    let sentences = List.init batch (fun _ -> Workloads.Sentences.sample rng) in
    (Cortex.run_birnn ~hidden ~classes:16 sentences).Cortex.latency_ms
  | other -> Fmt.invalid_arg "Cortex does not support %s (recursive models only)" other

type t6_row = {
  t6_model : string;
  t6_size : Model.size;
  t6_batch : int;
  t6_cortex : float;
  t6_acrobat : float;
  t6_paper_cortex : float;
  t6_paper_acrobat : float;
}

let table6 () : t6_row list =
  List.map
    (fun (id, size, batch, pc, pa) ->
      let model = (Models.find id).Models.make size in
      let acro = run_acrobat ~batch model in
      {
        t6_model = id;
        t6_size = size;
        t6_batch = batch;
        t6_cortex = cortex_latency id size batch;
        t6_acrobat = acro.latency_ms;
        t6_paper_cortex = pc;
        t6_paper_acrobat = pa;
      })
    paper_table6

(* --- Table 7: Relay VM vs AOT compilation --- *)

let paper_table7 =
  [
    "treelstm", Model.Small, 8, 30.68, 2.66;
    "treelstm", Model.Small, 64, 28.94, 9.47;
    "treelstm", Model.Large, 8, 31.64, 3.85;
    "treelstm", Model.Large, 64, 29.49, 15.9;
    "mvrnn", Model.Small, 8, 4.0, 0.55;
    "mvrnn", Model.Small, 64, 3.91, 1.63;
    "mvrnn", Model.Large, 8, 4.34, 1.06;
    "mvrnn", Model.Large, 64, 4.36, 4.6;
    "birnn", Model.Small, 8, 29.88, 2.23;
    "birnn", Model.Small, 64, 28.88, 5.47;
    "birnn", Model.Large, 8, 32.04, 4.82;
    "birnn", Model.Large, 64, 30.43, 13.72;
  ]

type t7_row = {
  t7_model : string;
  t7_size : Model.size;
  t7_batch : int;
  t7_vm : float;
  t7_aot : float;
  t7_paper_vm : float;
  t7_paper_aot : float;
}

let run_mode ~mode ?(batch = 8) ?(seed = 1) (model : Model.t) : run =
  let compiled, weights = compile_model ~framework:(Frameworks.Acrobat Config.acrobat) model ~batch ~seed in
  let instances = gen_batch model ~batch ~seed:(seed + 100) in
  let r =
    Driver.run ~mode ~policy:Policy.acrobat_policy ~quality:compiled.quality
      ~lprog:compiled.lprog ~weights ~instances ()
  in
  {
    latency_ms = r.Driver.stats.latency_ms;
    profiler = r.Driver.stats.profiler;
    flushes = r.Driver.stats.flushes;
  }

let table7 () : t7_row list =
  List.map
    (fun (id, size, batch, pvm, paot) ->
      let model = (Models.find id).Models.make size in
      let vm = run_mode ~mode:Driver.Vm_mode ~batch model in
      let aot = run_mode ~mode:Driver.Aot_mode ~batch model in
      {
        t7_model = id;
        t7_size = size;
        t7_batch = batch;
        t7_vm = vm.latency_ms;
        t7_aot = aot.latency_ms;
        t7_paper_vm = pvm;
        t7_paper_aot = paot;
      })
    paper_table7

(* --- Table 8: DyNet vs DyNet++ (improved heuristics) vs ACROBAT --- *)

let paper_table8 =
  [
    "treelstm", Model.Small, 8, 4.31, 3.8, 1.48;
    "treelstm", Model.Small, 64, 26.18, 22.69, 5.81;
    "treelstm", Model.Large, 8, 4.58, 4.14, 2.4;
    "treelstm", Model.Large, 64, 26.53, 24.09, 11.44;
    "mvrnn", Model.Small, 8, 2.11, 1.05, 0.54;
    "mvrnn", Model.Small, 64, 12.45, 3.15, 1.48;
    "mvrnn", Model.Large, 8, 2.27, 1.83, 1.04;
    "mvrnn", Model.Large, 64, 13.89, 10.47, 4.46;
    "drnn", Model.Small, 8, 6.7, 3.29, 1.74;
    "drnn", Model.Small, 64, 25.3, 18.51, 5.24;
    "drnn", Model.Large, 8, 8.44, 3.82, 2.45;
    "drnn", Model.Large, 64, 26.5, 18.86, 9.99;
  ]

type t8_row = {
  t8_model : string;
  t8_size : Model.size;
  t8_batch : int;
  t8_dn : float;
  t8_dnpp : float;
  t8_ab : float;
  t8_paper : float * float * float;
}

let table8 () : t8_row list =
  List.map
    (fun (id, size, batch, pdn, pdnpp, pab) ->
      let model = (Models.find id).Models.make size in
      let dn = run_dynet_best ~batch model in
      let dnpp = run_dynet_best ~improved:true ~batch model in
      let ab = run_acrobat ~batch model in
      {
        t8_model = id;
        t8_size = size;
        t8_batch = batch;
        t8_dn = dn.latency_ms;
        t8_dnpp = dnpp.latency_ms;
        t8_ab = ab.latency_ms;
        t8_paper = pdn, pdnpp, pab;
      })
    paper_table8

(* --- Table 9: PGO benefit in auto-scheduling (NestedRNN small, bs 8) --- *)

let paper_table9 =
  [ 100, 41.08, 42.49; 250, 34.58, 30.88; 500, 31.61, 24.4; 750, 27.33, 23.72; 1000, 25.63, 24.34 ]

type t9_row = {
  t9_iters : int;
  t9_nopgo : float;
  t9_pgo : float;
  t9_paper_nopgo : float;
  t9_paper_pgo : float;
}

(* One NestedRNN run at a given budget/PGO setting and search seed. The
   paper averages 10 auto-scheduler runs (footnote 13): the search is
   stochastic. *)
let table9_one ~iters ~pgo ~search_seed =
  let model = (Models.find "nestedrnn").Models.make Model.Small in
  let config = { Config.acrobat with autosched_iters = iters; pgo } in
  let compiled, weights =
    compile_model ~framework:(Frameworks.Acrobat config) model ~batch:8 ~seed:1
  in
  let compiled = tune ~iters ~search_seed compiled ~weights ~calibration:(gen_batch model ~batch:8 ~seed:2) in
  let instances = gen_batch model ~batch:8 ~seed:101 in
  (run compiled ~weights ~instances ()).Driver.stats.latency_ms

let table9 ?(runs = 10) () : t9_row list =
  let mean f = List.init runs f |> List.fold_left ( +. ) 0.0 |> fun s -> s /. float_of_int runs in
  List.map
    (fun (iters, pno, pyes) ->
      {
        t9_iters = iters;
        t9_nopgo = mean (fun seed -> table9_one ~iters ~pgo:false ~search_seed:seed);
        t9_pgo = mean (fun seed -> table9_one ~iters ~pgo:true ~search_seed:seed);
        t9_paper_nopgo = pno;
        t9_paper_pgo = pyes;
      })
    paper_table9

(* --- Figure 5: ablation ladder (large size, batch 64) --- *)

let ablation_ladder : (string * Config.t) list =
  let base =
    {
      Config.acrobat with
      kernel_fusion = false;
      horizontal_fusion = false;
      grain_coarsening = false;
      scheduler = Config.Runtime_depth;
      ghost_ops = false;
      program_phases = false;
      gather_fusion = false;
      hoisting = false;
    }
  in
  let plus_fusion = { base with kernel_fusion = true; horizontal_fusion = true } in
  let plus_coarsen = { plus_fusion with grain_coarsening = true } in
  let plus_inline = { plus_coarsen with scheduler = Config.Inline_depth; hoisting = true } in
  let plus_phases = { plus_inline with program_phases = true; ghost_ops = true } in
  let full = { plus_phases with gather_fusion = true } in
  [
    "no-opt", base;
    "+fusion", plus_fusion;
    "+coarsening", plus_coarsen;
    "+inline-depth", plus_inline;
    "+phases/ghost", plus_phases;
    "+gather-fusion", full;
  ]

type fig5_row = { f5_model : string; f5_steps : (string * float) list }

let fig5 ?(models = List.map (fun (e : Models.entry) -> e.Models.id) Models.all) () :
    fig5_row list =
  List.map
    (fun id ->
      let model = (Models.find id).Models.make Model.Large in
      let steps =
        List.map
          (fun (label, config) ->
            let r = run_acrobat ~batch:64 ~config model in
            label, r.latency_ms)
          ablation_ladder
      in
      { f5_model = id; f5_steps = steps })
    models

(* --- Figure 9: speedups over PyTorch --- *)

type fig9_row = {
  f9_model : string;
  f9_size : Model.size;
  f9_batch : int;
  f9_pytorch : float;
  f9_acrobat : float;
}

(* PyTorch runs eagerly through the interpreter, except BiRNN which uses
   TorchScript in the paper (footnote 12) — compiled but still unbatched. *)
let run_pytorch ?(batch = 8) ?(seed = 1) ~(model_id : string) (model : Model.t) : run =
  let kind = Frameworks.Pytorch in
  let compiled, weights = compile_model ~framework:kind model ~batch ~seed in
  let instances = gen_batch model ~batch ~seed:(seed + 100) in
  let mode = if model_id = "birnn" then Driver.Aot_mode else Driver.Vm_mode in
  let r =
    Driver.run ~mode ~policy:(Frameworks.policy kind) ~quality:compiled.quality
      ~lprog:compiled.lprog ~weights ~instances ()
  in
  {
    latency_ms = r.Driver.stats.latency_ms;
    profiler = r.Driver.stats.profiler;
    flushes = r.Driver.stats.flushes;
  }

let fig9 ?(batches = [ 8; 64 ]) () : fig9_row list =
  List.concat_map
    (fun id ->
      List.concat_map
        (fun size ->
          let model = (Models.find id).Models.make size in
          List.map
            (fun batch ->
              let pt = run_pytorch ~batch ~model_id:id model in
              let ab = run_acrobat ~batch model in
              {
                f9_model = id;
                f9_size = size;
                f9_batch = batch;
                f9_pytorch = pt.latency_ms;
                f9_acrobat = ab.latency_ms;
              })
            batches)
        [ Model.Small; Model.Large ])
    [ "treelstm"; "mvrnn"; "birnn" ]

(* --- Serving: latency vs offered load (beyond the paper: the online
   front-end feeding ACROBAT's scheduler from independent requests) --- *)

type serve_row = {
  sv_model : string;
  sv_policy : string;
  sv_load : float;  (** Offered load as a multiple of batch-1 capacity. *)
  sv_rate : float;  (** Requests per second. *)
  sv_throughput : float;
  sv_p50 : float;
  sv_p95 : float;
  sv_p99 : float;
  sv_mean_batch : float;
  sv_drop_rate : float;
}

let serve_policies ~max_batch ~max_wait_us =
  [
    "batch1", Serve.Batcher.Batch1;
    "fixed", Serve.Batcher.Fixed { max_batch; max_wait_us };
    "adaptive", Serve.Batcher.Adaptive { max_batch; max_wait_us };
  ]

(** Latency-vs-offered-load curves. Each model compiles and tunes once; the
    same traffic trace (same seed) then replays under every policy, with
    offered load anchored to the measured batch-1 service rate so "2.0x
    load" means the same thing for every model. Fully deterministic. *)
let serve_curve ?(models = [ "treelstm"; "birnn" ]) ?(size = Model.Small)
    ?(loads = [ 0.5; 1.0; 2.0 ]) ?(requests = 150) ?(max_batch = 16)
    ?(max_wait_us = 1500.0) ?iters ?(seed = 1) () : serve_row list =
  List.concat_map
    (fun id ->
      let model = (Models.find id).Models.make size in
      let c, weights = compile_model ?iters model ~batch:8 ~seed in
      let execute batch = batch_executor ~seed c ~weights batch in
      (* Probe the single-request service time to anchor offered load. *)
      let probe_rng = Rng.create (seed + 7) in
      let l1_us =
        (execute [ model.Model.gen_instance probe_rng ]).Serve.Server.ex_latency_us
      in
      let base_rate_per_s = 1.0e6 /. l1_us in
      List.concat_map
        (fun load ->
          let rate = base_rate_per_s *. load in
          List.map
            (fun (pname, policy) ->
              let payload_rng = Rng.create ((seed * 31) + 5) in
              let payloads =
                Array.init requests (fun _ -> model.Model.gen_instance payload_rng)
              in
              let arrivals =
                Serve.Traffic.arrivals
                  ~rng:(Rng.create ((seed * 53) + 11))
                  (Serve.Traffic.Poisson { rate_per_s = rate })
                  ~n:requests
              in
              let config = { Serve.Server.default_config with Serve.Server.policy } in
              let stats =
                Serve.Server.simulate config ~arrivals
                  ~payload:(fun i -> payloads.(i))
                  ~execute:(Serve.Server.infallible execute)
              in
              let s = Serve.Stats.summarize stats in
              {
                sv_model = id;
                sv_policy = pname;
                sv_load = load;
                sv_rate = rate;
                sv_throughput = s.Serve.Stats.s_throughput_rps;
                sv_p50 = s.Serve.Stats.s_p50_ms;
                sv_p95 = s.Serve.Stats.s_p95_ms;
                sv_p99 = s.Serve.Stats.s_p99_ms;
                sv_mean_batch = s.Serve.Stats.s_mean_batch;
                sv_drop_rate = Serve.Stats.drop_rate s;
              })
            (serve_policies ~max_batch ~max_wait_us))
        loads)
    models

(* --- Serving availability under injected faults (DESIGN.md §8) --- *)

type faults_row = {
  fv_policy : string;
  fv_fault_rate : float;  (** Injected per-attempt kernel-fault probability. *)
  fv_goodput : float;
  fv_throughput : float;
  fv_p50 : float;
  fv_p99 : float;
  fv_fault_batches : int;
  fv_retries : int;
  fv_bisections : int;
  fv_poisoned : int;
  fv_breaker_opens : int;
}

(** Availability under faults: goodput and tail latency of the TreeLSTM
    serve bench as the injected kernel-fault rate rises, for each batching
    policy. The fault seed is fixed, so each rate's fault sequence is
    reproducible; rate 0.0 is the fault-free baseline the goodput ratios
    read against. *)
let serve_faults ?(rates = [ 0.0; 0.02; 0.05; 0.10 ]) ?(requests = 150)
    ?(rate_per_s = 4000.0) ?(max_batch = 16) ?(max_wait_us = 1500.0) ?(iters = 100)
    ?(seed = 1) () : faults_row list =
  let model = Models.tiny "treelstm" in
  List.concat_map
    (fun (pname, policy) ->
      List.map
        (fun fault_rate ->
          let faults =
            { Faults.none with Faults.seed = 7; kernel_fault_rate = fault_rate }
          in
          let report =
            serve_model ~iters ~policy ~faults
              ~process:(Serve.Traffic.Poisson { rate_per_s })
              ~requests ~seed model
          in
          let s = report.sv_summary in
          {
            fv_policy = pname;
            fv_fault_rate = fault_rate;
            fv_goodput = Serve.Stats.goodput s;
            fv_throughput = s.Serve.Stats.s_throughput_rps;
            fv_p50 = s.Serve.Stats.s_p50_ms;
            fv_p99 = s.Serve.Stats.s_p99_ms;
            fv_fault_batches = s.Serve.Stats.s_fault_batches;
            fv_retries = s.Serve.Stats.s_retries;
            fv_bisections = s.Serve.Stats.s_bisections;
            fv_poisoned = s.Serve.Stats.s_poisoned;
            fv_breaker_opens = s.Serve.Stats.s_breaker_opens;
          })
        rates)
    (serve_policies ~max_batch ~max_wait_us)

(* --- Serving: replicated cluster — availability and tail latency
   (DESIGN.md §9) --- *)

type cluster_row = {
  cl_label : string;
  cl_replicas : int;
  cl_hedge : float option;  (** Hedge percentile, when hedging is on. *)
  cl_goodput : float;
  cl_completed : int;
  cl_p50 : float;
  cl_p99 : float;
  cl_failovers : int;
  cl_requeued : int;
  cl_hedges : int;
  cl_hedge_wins : int;
}

(** Replication and hedging under injected faults, on the TreeLSTM tiny
    serve bench. Two sweeps, both deterministic:

    - {e availability vs replica count}: replica 0 carries a fault plan
      harsh enough to open a single server's breaker (75% kernel faults +
      10% resets per attempt); with peers to fail over to, goodput recovers
      from near-total collapse to ≥ 99%.
    - {e hedging vs stragglers}: every replica straggles 15% of batches at
      8x latency; hedging at the 90th percentile re-issues the stragglers'
      requests elsewhere and cuts the p99. *)
let serve_cluster_bench ?(requests = 150) ?(rate_per_s = 4000.0) ?(iters = 50) ?(seed = 3)
    () : cluster_row list =
  let model = Models.tiny "treelstm" in
  let run ~label ~replicas ~fault_plans ?hedge () =
    let r =
      serve_cluster ~iters ~fault_plans ?hedge_percentile:hedge ~replicas
        ~process:(Serve.Traffic.Poisson { rate_per_s })
        ~requests ~seed model
    in
    let s = r.cr_summary in
    {
      cl_label = label;
      cl_replicas = replicas;
      cl_hedge = hedge;
      cl_goodput = Serve.Stats.goodput s;
      cl_completed = s.Serve.Stats.s_completed;
      cl_p50 = s.Serve.Stats.s_p50_ms;
      cl_p99 = s.Serve.Stats.s_p99_ms;
      cl_failovers = s.Serve.Stats.s_failovers;
      cl_requeued = s.Serve.Stats.s_requeued;
      cl_hedges = s.Serve.Stats.s_hedges;
      cl_hedge_wins = s.Serve.Stats.s_hedge_wins;
    }
  in
  let faulty = Faults.parse "seed=7,kernel=0.75,reset=0.1" in
  let strag s = Faults.parse (Fmt.str "seed=%d,straggler=0.15x8" s) in
  (* The 1-replica baseline is the single-server path (what `acrobatc serve
     --replicas 1` runs): no peers to fail over to, so the breaker sheds
     and goodput collapses. A 1-replica *cluster* instead cycles the lone
     replica through probe/requeue forever — goodput survives but latency
     explodes; the single-server number is the honest availability floor. *)
  let single_server ~label ~fault_plan =
    let r =
      serve_model ~iters ~faults:fault_plan
        ~process:(Serve.Traffic.Poisson { rate_per_s })
        ~requests ~seed model
    in
    let s = r.sv_summary in
    {
      cl_label = label;
      cl_replicas = 1;
      cl_hedge = None;
      cl_goodput = Serve.Stats.goodput s;
      cl_completed = s.Serve.Stats.s_completed;
      cl_p50 = s.Serve.Stats.s_p50_ms;
      cl_p99 = s.Serve.Stats.s_p99_ms;
      cl_failovers = 0;
      cl_requeued = 0;
      cl_hedges = 0;
      cl_hedge_wins = 0;
    }
  in
  [
    single_server ~label:"faulty, single server" ~fault_plan:faulty;
    run ~label:"faulty r0, 2 replicas" ~replicas:2 ~fault_plans:[ faulty ] ();
    run ~label:"faulty r0, 3 replicas" ~replicas:3 ~fault_plans:[ faulty ] ();
    run ~label:"stragglers, no hedge" ~replicas:3
      ~fault_plans:[ strag 5; strag 6; strag 9 ]
      ();
    run ~label:"stragglers, hedge p90" ~replicas:3
      ~fault_plans:[ strag 5; strag 6; strag 9 ]
      ~hedge:90.0 ();
  ]

(* --- Integrity: delivered corruption and goodput vs audit sampling
   rate (DESIGN.md §14) --- *)

type integrity_row = {
  ig_audit : float;
  ig_goodput : float;
  ig_completed : int;
  ig_corrupted_batches : int;
  ig_corrupted_delivered : int;
  ig_audits : int;
  ig_audit_mismatches : int;
  ig_quarantines : int;
  ig_quarantine_restores : int;
  ig_p50 : float;
  ig_p99 : float;
}

(** Sweep the audit sampling rate over the {e same} corrupted cluster:
    identical seeds, identical arrival trace — the only intended change
    between rows is how many deliveries the audit gate verifies. Replica 0
    silently corrupts a fraction of its batch attempts (nothing raises —
    without auditing the wrong answers are simply delivered); replica 1 is
    clean. Rate 0.0 is the integrity layer off, 1.0 audits every delivery.
    Each rate is run over several seeds and the counts summed: quarantine
    drains perturb batch composition, so the per-seed {e injected}
    corruption wobbles a little between rates, and aggregating isolates the
    interception effect we are actually claiming. Expected shape (gated in
    [bench integrity]): delivered corruption falls monotonically with the
    sampling rate, reaches exactly zero at 1.0, and costs bounded goodput;
    the corruption scoreboard quarantines the dirty replica once mismatches
    accumulate. *)
let integrity_bench ?(audits = [ 0.0; 0.25; 0.5; 0.75; 1.0 ]) ?(requests = 120)
    ?(rate_per_s = 4000.0) ?(iters = 50) ?(seeds = [ 9; 10; 11; 12; 13 ]) () :
    integrity_row list =
  let model = Models.tiny "treelstm" in
  let corrupt = Faults.parse "seed=21,corrupt=0.4" in
  List.map
    (fun audit ->
      let runs =
        List.map
          (fun seed ->
            let r =
              serve_cluster ~iters ~fault_plans:[ corrupt ] ~replicas:2
                ~deadline_ms:50.0 ~audit
                ~process:(Serve.Traffic.Poisson { rate_per_s })
                ~requests ~seed model
            in
            r.cr_summary)
          seeds
      in
      let sum f = List.fold_left (fun acc s -> acc + f s) 0 runs in
      let mean f =
        List.fold_left (fun acc s -> acc +. f s) 0.0 runs
        /. float_of_int (List.length runs)
      in
      {
        ig_audit = audit;
        ig_goodput = mean Serve.Stats.goodput;
        ig_completed = sum (fun s -> s.Serve.Stats.s_completed);
        ig_corrupted_batches = sum (fun s -> s.Serve.Stats.s_corrupted_batches);
        ig_corrupted_delivered = sum (fun s -> s.Serve.Stats.s_corrupted_delivered);
        ig_audits = sum (fun s -> s.Serve.Stats.s_audits);
        ig_audit_mismatches = sum (fun s -> s.Serve.Stats.s_audit_mismatches);
        ig_quarantines = sum (fun s -> s.Serve.Stats.s_quarantines);
        ig_quarantine_restores = sum (fun s -> s.Serve.Stats.s_quarantine_restores);
        ig_p50 = mean (fun s -> s.Serve.Stats.s_p50_ms);
        ig_p99 = mean (fun s -> s.Serve.Stats.s_p99_ms);
      })
    audits

(* --- Observability: the metrics registry over a serve run (DESIGN.md
   §10) --- *)

(** One fault-injected serve run with the metrics registry attached. The
    export carries every [device.*] counter — including the ones
    [Profiler.pp] used to drop silently (gather bytes, memcpy calls,
    unbatched ops, fiber switches) — every [serve.*] counter, and the
    periodic virtual-clock snapshots, so `bench --json` tracks the full
    telemetry surface across commits. Deterministic for a fixed seed. *)
let observability ?(requests = 150) ?(rate_per_s = 4000.0) ?(iters = 50) ?(seed = 1) () :
    Serve.Json.t =
  let model = Models.tiny "treelstm" in
  let faults = Faults.parse "seed=7,kernel=0.05" in
  let metrics = Metrics.create () in
  let _report =
    serve_model ~iters ~faults ~metrics
      ~process:(Serve.Traffic.Poisson { rate_per_s })
      ~requests ~seed model
  in
  Metrics.to_json metrics

(* --- Extras: ablations called out in DESIGN.md §6 --- *)

(** Scheduler ablation: identical DFGs under the three schedulers. *)
let ablation_scheduler () =
  List.concat_map
    (fun id ->
      let model = (Models.find id).Models.make Model.Small in
      List.map
        (fun sched ->
          let r = run_acrobat ~batch:64 ~config:{ Config.acrobat with scheduler = sched } model in
          ( id,
            Config.scheduler_name sched,
            r.latency_ms,
            P.time_us r.profiler P.Scheduling /. 1000.0,
            r.profiler.P.batches_executed ))
        [ Config.Inline_depth; Config.Runtime_depth; Config.Agenda ])
    [ "treelstm"; "birnn" ]

(** Context-sensitivity ablation: BiRNN loses parameter-reuse knowledge
    without it, forcing weight gathers. *)
let ablation_context () =
  List.map
    (fun ctx ->
      let model = (Models.find "birnn").Models.make Model.Small in
      let r =
        run_acrobat ~batch:64 ~config:{ Config.acrobat with context_sensitive = ctx } model
      in
      ctx, r.latency_ms, r.profiler.P.gather_bytes, r.profiler.P.gather_kernels)
    [ true; false ]

(* --- Multi-tenant serving: fixed-at-min vs autoscaled fleet (DESIGN.md
   §12) --- *)

(** Three-tenant flash-crowd mix over the model catalog. [crowd] is an
    MMPP tenant whose high phase doubles its rate, so the offered load
    swings between roughly 1500 and 3600 req/s while a single replica of
    the synthetic device below sustains about 2200 req/s: a fixed fleet
    of one is under water on average and drowns during every burst,
    while the autoscaler has headroom to absorb it. Seeds derive from
    [seed] with the registry's standard stride so the two configurations
    replay byte-identical arrival streams. *)
let tenants_mix ~seed : Tenancy.Tenant.t array =
  let tenant index tn_name tn_model tn_rate_per_s tn_bursty tn_slo_ms tn_weight tn_requests =
    {
      Tenancy.Tenant.tn_name;
      tn_model;
      tn_rate_per_s;
      tn_bursty;
      tn_seed = Tenancy.Tenant.derived_seed ~seed ~index;
      tn_slo_ms;
      tn_quota = 64;
      tn_weight;
      tn_requests;
    }
  in
  [|
    tenant 0 "steady" "treelstm" 800.0 false 15.0 1.0 1000;
    tenant 1 "crowd" "birnn" 1200.0 true 15.0 2.0 1200;
    tenant 2 "light" "moe" 400.0 false 20.0 1.0 400;
  |]

(** The same mix served by a fleet pinned at one replica and by the
    autoscaler ranging over 1..4; everything else — arrivals, payloads,
    the synthetic device, swap costs — is identical, so the goodput gap
    is attributable to scaling alone. The synthetic executor charges
    2000us + 200us per request in the batch (a real-ish setup-dominated
    device), and [model_bytes] sizes the resident-model swap penalty per
    catalog entry. *)
let tenants_bench ?(seed = 11) () : (string * Tenancy.Dispatcher.report) list =
  let tenants = tenants_mix ~seed in
  let execute _replica ~model:_ batch =
    let n = List.length batch in
    Serve.Server.Exec_ok
      {
        Serve.Server.ex_latency_us = 2_000.0 +. (200.0 *. float_of_int n);
        ex_profiler = None;
        ex_fingerprints = None;
        ex_corrupted = false;
      }
  in
  let model_bytes = function
    | "treelstm" -> 1_600_000
    | "birnn" -> 800_000
    | _ -> 2_400_000
  in
  let payload ~tenant:_ ~index:_ ~id = id in
  let server =
    {
      Serve.Server.default_config with
      Serve.Server.policy = Serve.Batcher.Adaptive { max_batch = 8; max_wait_us = 1_000.0 };
      queue_capacity = 128;
    }
  in
  let run label scaler =
    let cfg =
      {
        Tenancy.Dispatcher.default_config with
        Tenancy.Dispatcher.t_server = server;
        t_autoscale = scaler;
      }
    in
    label, Tenancy.Dispatcher.simulate cfg ~tenants ~payload ~execute ~model_bytes
  in
  [
    run "fixed@min" (Tenancy.Autoscaler.fixed 1);
    run "autoscale" (Tenancy.Autoscaler.default ~min_replicas:1 ~max_replicas:4);
  ]

(* --- Overload resilience: goodput vs offered load, controls on vs off
   (DESIGN.md §13) --- *)

type overload_row = {
  ov_config : string;  (** ["off"] or ["resilience"]. *)
  ov_load : float;  (** Offered load as a multiple of device capacity. *)
  ov_rate_per_s : float;
  ov_goodput : float;
  ov_completed : int;
  ov_expired : int;
  ov_shed : int;  (** Queue-full sheds. *)
  ov_limit_shed : int;
  ov_retry_shed : int;
  ov_retried : int;  (** Requests re-executed under the retry budget. *)
  ov_retries : int;  (** Batch retry attempts (both configs). *)
  ov_bisections : int;
  ov_poisoned : int;
  ov_degraded_batches : int;
  ov_brownouts : int;
  ov_brownout_restores : int;
  ov_p50 : float;
  ov_p99 : float;
  ov_limit_trajectory : (float * float) list;
      (** [(ts_us, limit)] samples of the AIMD concurrency limit, from the
          metrics registry's periodic snapshots; empty when the limiter is
          off. *)
}

(** Goodput as the offered load climbs through and past device saturation,
    with the overload controls off (the PR-6 server: retries, bisection
    and the bounded queue only) and on (retry budget + adaptive
    concurrency limiter + brownout). The device is synthetic and
    setup-dominated — a batch of [n] costs 1000us + 150us*n, 55% of that
    in the degraded (early-exit) variant — so full strength sustains
    ~3640 req/s at max batch 8 and the brownout's capacity purchase is
    explicit. Every attempt faults transiently with probability 0.25 from
    a per-run seeded stream, which makes uncapped retry + bisection the
    off-config's capacity sink: above saturation that re-offered load is
    exactly what the retry budget converts into fresh completions.

    Deterministic for a fixed [seed]; each (load, config) cell draws its
    own arrival and fault streams from it. *)
let overload_bench ?(loads = [ 0.5; 0.8; 1.1; 1.4; 1.8 ]) ?(requests = 1200)
    ?(seed = 17) () : overload_row list =
  let max_batch = 8 in
  let setup_us = 1_000.0 and per_req_us = 150.0 in
  let capacity_rps =
    float_of_int max_batch
    /. ((setup_us +. (per_req_us *. float_of_int max_batch)) /. 1.0e6)
  in
  let fault_rate = 0.15 in
  let armed =
    {
      Resilience.rs_retry_budget = Some 0.2;
      rs_target_delay_us = Some 12_000.0;
      rs_brownout = Some (Resilience.brownout_of_string "6:10:2");
    }
  in
  let run ~load (label, resilience) =
    let rate_per_s = load *. capacity_rps in
    let metrics =
      if Resilience.active resilience then Metrics.create () else Metrics.null
    in
    let fault_rng = Rng.create ((seed * 97) + 13) in
    let execute ~degraded batch =
      let n = List.length batch in
      let cost = setup_us +. (per_req_us *. float_of_int n) in
      let cost = if degraded then cost *. 0.55 else cost in
      if Rng.float fault_rng < fault_rate then
        Serve.Server.Exec_fault
          {
            ef_latency_us = cost;
            ef_reason = "transient";
            ef_transient = true;
            ef_oom = false;
            ef_reset = false;
          }
      else Serve.Server.Exec_ok
          { ex_latency_us = cost; ex_profiler = None; ex_fingerprints = None; ex_corrupted = false }
    in
    let arrivals =
      Serve.Traffic.arrivals
        ~rng:(Rng.create ((seed * 53) + 11))
        (Serve.Traffic.Poisson { rate_per_s })
        ~n:requests
    in
    let config =
      {
        Serve.Server.default_config with
        Serve.Server.policy = Serve.Batcher.Adaptive { max_batch; max_wait_us = 1_000.0 };
        queue_capacity = 256;
        deadline_us = Some 25_000.0;
        resilience;
      }
    in
    let stats =
      Serve.Server.simulate ~metrics config ~arrivals ~payload:(fun i -> i) ~execute
    in
    let s = Serve.Stats.summarize stats in
    let trajectory =
      List.rev_map
        (fun (ts_us, values) ->
          match List.assoc_opt "resilience.limit" values with
          | Some v -> [ (ts_us, v) ]
          | None -> [])
        metrics.Metrics.snapshots
      |> List.concat
    in
    {
      ov_config = label;
      ov_load = load;
      ov_rate_per_s = rate_per_s;
      ov_goodput = Serve.Stats.goodput s;
      ov_completed = s.Serve.Stats.s_completed;
      ov_expired = s.Serve.Stats.s_expired;
      ov_shed = s.Serve.Stats.s_shed;
      ov_limit_shed = s.Serve.Stats.s_limit_shed;
      ov_retry_shed = s.Serve.Stats.s_retry_shed;
      ov_retried = s.Serve.Stats.s_retried_requests;
      ov_retries = s.Serve.Stats.s_retries;
      ov_bisections = s.Serve.Stats.s_bisections;
      ov_poisoned = s.Serve.Stats.s_poisoned;
      ov_degraded_batches = s.Serve.Stats.s_degraded_batches;
      ov_brownouts = s.Serve.Stats.s_brownouts;
      ov_brownout_restores = s.Serve.Stats.s_brownout_restores;
      ov_p50 = s.Serve.Stats.s_p50_ms;
      ov_p99 = s.Serve.Stats.s_p99_ms;
      ov_limit_trajectory = trajectory;
    }
  in
  List.concat_map
    (fun load ->
      List.map (run ~load) [ "off", Resilience.off; "resilience", armed ])
    loads

(* --- simulator-core scale: events/sec at 10^3..10^6 requests --- *)

type scale_row = {
  sc_requests : int;
  sc_backend : string;  (** ["heap"] (production) or ["reference"] (Map + sorted list). *)
  sc_events : int;  (** Event-loop dispatches the campaign performed. *)
  sc_completed : int;
  sc_shed : int;
  sc_expired : int;
  sc_batches : int;
  sc_p50 : float;
  sc_p99 : float;
  sc_mean : float;
  sc_wall_s : float;
      (** Host CPU seconds for the whole simulation. Printed, never
          serialized: BENCH_scale.json must stay byte-identical across
          runs. *)
  sc_equivalent : bool;
      (** Whether this size's full summary JSON was byte-identical across
          the two backends — the in-process determinism gate proving the
          heap rewrite changed nothing but speed. *)
}

(** Run the same synthetic overload campaign under both simulator-core
    backends at each size. The executor is pure arithmetic (no model, no
    faults), so wall time is dominated by the event loop, the admission
    queue, and stats — exactly the paths the heap rewrite targets. The
    stream runs at 1.2x device capacity with a deadline, keeping the
    admission queue pinned near capacity: the regime where the reference
    backend's O(n) list walks hurt most, and the regime a shedding server
    actually lives in. *)
let scale_bench ?(sizes = [ 1_000; 10_000; 100_000; 1_000_000 ]) ?(seed = 29) () :
    scale_row list =
  let max_batch = 16 in
  let setup_us = 200.0 and per_req_us = 20.0 in
  let capacity_rps =
    float_of_int max_batch
    /. ((setup_us +. (per_req_us *. float_of_int max_batch)) /. 1.0e6)
  in
  let rate_per_s = 1.2 *. capacity_rps in
  let execute ~degraded:_ batch =
    let n = List.length batch in
    Serve.Server.Exec_ok
      {
        ex_latency_us = setup_us +. (per_req_us *. float_of_int n);
        ex_profiler = None;
        ex_fingerprints = None;
        ex_corrupted = false;
      }
  in
  let with_backends ~event ~admission f =
    let e0 = Serve.Event_loop.current_default_backend () in
    let a0 = Serve.Admission.current_default_backend () in
    Serve.Event_loop.set_default_backend event;
    Serve.Admission.set_default_backend admission;
    Fun.protect
      ~finally:(fun () ->
        Serve.Event_loop.set_default_backend e0;
        Serve.Admission.set_default_backend a0)
      f
  in
  let run ~requests (label, event_backend, admission_backend) =
    (* A million-request campaign allocates heavily in both backends; the
       default 256k-word minor heap turns that into minor-GC thrash that
       drowns the signal. One shared (hence fair) setting for the whole
       comparison. *)
    let gc0 = Gc.get () in
    Gc.set { gc0 with Gc.minor_heap_size = 8 * 1024 * 1024 };
    Fun.protect ~finally:(fun () -> Gc.set gc0) @@ fun () ->
    let arrivals =
      Serve.Traffic.arrivals
        ~rng:(Rng.create ((seed * 31) + requests))
        (Serve.Traffic.Poisson { rate_per_s })
        ~n:requests
    in
    let config =
      {
        Serve.Server.default_config with
        Serve.Server.policy = Serve.Batcher.Adaptive { max_batch; max_wait_us = 400.0 };
        (* Queue depth and deadline sized for the traffic, not for the
           reference backend's comfort: under 1.2x load the queue pins at
           capacity and every offer pays the full-queue sweep, which is
           where the old sorted-list admission's O(n) walks collapse. *)
        queue_capacity = 3072;
        deadline_us = Some 100_000.0;
      }
    in
    with_backends ~event:event_backend ~admission:admission_backend (fun () ->
        let t0 = Sys.time () in
        let stats =
          Serve.Server.simulate config ~arrivals ~payload:(fun i -> i) ~execute
        in
        let wall = Sys.time () -. t0 in
        let s = Serve.Stats.summarize stats in
        ( {
            sc_requests = requests;
            sc_backend = label;
            sc_events = stats.Serve.Stats.loop_events;
            sc_completed = s.Serve.Stats.s_completed;
            sc_shed = s.Serve.Stats.s_shed;
            sc_expired = s.Serve.Stats.s_expired;
            sc_batches = s.Serve.Stats.s_batches;
            sc_p50 = s.Serve.Stats.s_p50_ms;
            sc_p99 = s.Serve.Stats.s_p99_ms;
            sc_mean = s.Serve.Stats.s_mean_ms;
            sc_wall_s = wall;
            sc_equivalent = false;
          },
          Serve.Json.to_string (Serve.Stats.summary_to_json s) ))
  in
  List.concat_map
    (fun requests ->
      let heap, heap_json =
        run ~requests ("heap", Serve.Event_loop.Heap, Serve.Admission.Edf_heap)
      in
      let reference, ref_json =
        run ~requests
          ("reference", Serve.Event_loop.Map_reference, Serve.Admission.Sorted_list)
      in
      (* The two backends must produce byte-identical summaries: the
         simulation is deterministic and the heap is a pure speedup. *)
      let equivalent = String.equal heap_json ref_json in
      [
        { heap with sc_equivalent = equivalent };
        { reference with sc_equivalent = equivalent };
      ])
    sizes

(* --- Net partition: goodput through a partition/heal cycle, naive
   resend vs exactly-once delivery (DESIGN.md §16) --- *)

type partition_row = {
  pt_label : string;
  pt_goodput : float;
  pt_offered : int;
  pt_completed : int;
  pt_shed : int;
  pt_expired : int;
  pt_p50 : float;
  pt_p99 : float;
  pt_net_sends : int;
  pt_net_resends : int;
  pt_net_dups : int;  (** Duplicate copies the transport delivered. *)
  pt_net_partition_drops : int;
  pt_net_dedup_hits : int;  (** Duplicates the idempotency window absorbed. *)
  pt_net_fresh : int;  (** Deliveries that reached the executor. *)
  pt_net_timeouts : int;
  pt_link_downs : int;
  pt_heals : int;
}

(** The same loaded 3-replica cluster behind three transports: direct
    calls (no network), the lossy transport with exactly-once delivery
    (idempotency keys + per-replica dedup window), and the same lossy
    transport with deduplication switched off — the naive-resend
    strawman, where every duplicated or re-sent dispatch that reaches a
    replica executes again. The plan duplicates aggressively and cuts
    replica 2 off for a mid-run window, so the duplicated executions
    burn real capacity: under load the naive rows' queues absorb ghost
    work and goodput drops strictly below the exactly-once row (gated
    in [bench partition]). Arrivals, seeds and the fault window are
    identical in all three rows; the only degree of freedom is the
    delivery protocol. *)
let partition_bench ?(requests = 2400) ?(rate_per_s = 30000.0) ?(iters = 50) ?(seed = 17) ()
    : partition_row list =
  let model = Models.tiny "treelstm" in
  let plan =
    Net.parse
      "seed=11,delay=150:50,drop=0.04,dup=0.3,partition=20000:50000:2,timeout=8000,resends=3"
  in
  let run ~label ?net () =
    let r =
      serve_cluster ~iters ?net ~replicas:3 ~deadline_ms:15.0
        ~process:(Serve.Traffic.Poisson { rate_per_s })
        ~requests ~seed model
    in
    let s = r.cr_summary in
    {
      pt_label = label;
      pt_goodput = Serve.Stats.goodput s;
      pt_offered = s.Serve.Stats.s_offered;
      pt_completed = s.Serve.Stats.s_completed;
      pt_shed = s.Serve.Stats.s_shed;
      pt_expired = s.Serve.Stats.s_expired;
      pt_p50 = s.Serve.Stats.s_p50_ms;
      pt_p99 = s.Serve.Stats.s_p99_ms;
      pt_net_sends = s.Serve.Stats.s_net_sends;
      pt_net_resends = s.Serve.Stats.s_net_resends;
      pt_net_dups = s.Serve.Stats.s_net_dups;
      pt_net_partition_drops = s.Serve.Stats.s_net_partition_drops;
      pt_net_dedup_hits = s.Serve.Stats.s_net_dedup_hits;
      pt_net_fresh = s.Serve.Stats.s_net_fresh;
      pt_net_timeouts = s.Serve.Stats.s_net_timeouts;
      pt_link_downs = s.Serve.Stats.s_net_link_downs;
      pt_heals = s.Serve.Stats.s_net_heals;
    }
  in
  [
    run ~label:"direct calls" ();
    run ~label:"exactly-once" ~net:plan ();
    run ~label:"naive resend" ~net:{ plan with Net.np_dedup = false } ();
  ]
