(** Mixture-of-experts (paper Table 2: tensor-dependent conditional
    execution inside an otherwise static network — Shazeer et al. 2017).

    A gating network scores the experts; the routing decision is
    tensor-dependent (emulated per §E.1, the gate's argmax node is still
    built and executed). Instances routed to the same expert batch together
    — each expert's kernels bind that expert's weights as shared arguments.
    Not part of the paper's Table 3 evaluation — included from its §2.1
    characterization. *)

module Driver = Acrobat_engines.Driver
open Acrobat_tensor

let template =
  {|
def @expert(%x: Tensor[(1, {H})], %w1: Tensor[({H}, {F})], %w2: Tensor[({F}, {H})],
            %b: Tensor[(1, {H})]) -> Tensor[(1, {H})] {
  %b + matmul(relu(matmul(%x, %w1)), %w2)
}

def @main(%wg: Tensor[({H}, 4)],
          %e0_w1: Tensor[({H}, {F})], %e0_w2: Tensor[({F}, {H})], %e0_b: Tensor[(1, {H})],
          %e1_w1: Tensor[({H}, {F})], %e1_w2: Tensor[({F}, {H})], %e1_b: Tensor[(1, {H})],
          %e2_w1: Tensor[({H}, {F})], %e2_w2: Tensor[({F}, {H})], %e2_b: Tensor[(1, {H})],
          %e3_w1: Tensor[({H}, {F})], %e3_w2: Tensor[({F}, {H})], %e3_b: Tensor[(1, {H})],
          %x: Tensor[(1, {H})]) -> Tensor[(1, {H})] {
  let %gate = softmax(matmul(%x, %wg));
  let %top = argmax(%gate);
  let %route = choice(4);
  let %y =
    if (%route == 0) { @expert(%x, %e0_w1, %e0_w2, %e0_b) }
    else { if (%route == 1) { @expert(%x, %e1_w1, %e1_w2, %e1_b) }
    else { if (%route == 2) { @expert(%x, %e2_w1, %e2_w2, %e2_b) }
    else { @expert(%x, %e3_w1, %e3_w2, %e3_b) } } };
  tanh(%y + %x)
}
|}

let make ?hidden (size : Model.size) : Model.t =
  let hidden =
    match hidden with
    | Some h -> h
    | None -> ( match size with Model.Small -> 256 | Model.Large -> 512)
  in
  let ffn = 2 * hidden in
  let expert i =
    [
      Fmt.str "e%d_w1" i, [ hidden; ffn ];
      Fmt.str "e%d_w2" i, [ ffn; hidden ];
      Fmt.str "e%d_b" i, [ 1; hidden ];
    ]
  in
  let specs = (("wg", [ hidden; 4 ]) :: List.concat_map expert [ 0; 1; 2; 3 ]) in
  {
    Model.name = "moe";
    size;
    source = Model.subst [ "H", hidden; "F", ffn ] template;
    inputs = [ "x" ];
    gen_weights = Model.weights_of_specs specs;
    gen_instance = (fun rng -> [ "x", Driver.Htensor (Tensor.random rng [ 1; hidden ]) ]);
    degraded = None;
  }
