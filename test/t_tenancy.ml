(** Tests for the multi-tenant serving layer (lib/tenancy): weighted fair
    sharing, quota admission, model-swap accounting, the autoscaler state
    machine, byte-identical determinism, and single-tenant equivalence
    against the plain cluster path. *)

open Acrobat
open T_util
module Tenant = Tenancy.Tenant
module Fairshare = Tenancy.Fairshare
module Autoscaler = Tenancy.Autoscaler
module Dispatcher = Tenancy.Dispatcher
module Server = Serve.Server
module Batcher = Serve.Batcher
module Traffic = Serve.Traffic
module Stats = Serve.Stats
module Cluster = Serve.Cluster
module Json = Serve.Json

(* --- Shared fixtures --- *)

let mk_tenant ?(model = "treelstm") ?(rate = 2_000.0) ?(bursty = false)
    ?(slo_ms = 50.0) ?(quota = 64) ?(weight = 1.0) ?(requests = 120) ~seed ~index
    name : Tenant.t =
  {
    Tenant.tn_name = name;
    tn_model = model;
    tn_rate_per_s = rate;
    tn_bursty = bursty;
    tn_seed = Tenant.derived_seed ~seed ~index;
    tn_slo_ms = slo_ms;
    tn_quota = quota;
    tn_weight = weight;
    tn_requests = requests;
  }

(* Uniform synthetic device: setup-dominated latency, no faults. *)
let uniform_execute _replica ~model:_ batch =
  Server.Exec_ok
    {
      Server.ex_latency_us = 500.0 +. (50.0 *. float_of_int (List.length batch));
      ex_profiler = None;
      ex_fingerprints = None;
      ex_corrupted = false;
    }

let payload ~tenant:_ ~index:_ ~id = id
let no_swap_bytes _model = 0
let some_bytes _model = 1_000_000

let base_config ?(scaler = Autoscaler.fixed 1) () =
  {
    Dispatcher.default_config with
    Dispatcher.t_server =
      {
        Server.default_config with
        Server.policy = Batcher.Adaptive { max_batch = 8; max_wait_us = 500.0 };
        queue_capacity = 128;
      };
    t_autoscale = scaler;
  }

(* --- Fairshare --- *)

(* A saturated device with uniform per-service cost: service counts must
   track the weights within an O(1) bound, independent of horizon. *)
let prop_fairshare_tracks_weights =
  qtest ~count:200 "fairshare: saturated service counts track weights"
    QCheck2.Gen.(list_size (int_range 2 4) (int_range 1 8))
    (fun ws ->
      let weights = Array.of_list (List.map float_of_int ws) in
      let fs = Fairshare.create ~weights in
      let n = Array.length weights in
      let counts = Array.make n 0 in
      let rounds = 1_000 in
      for _ = 1 to rounds do
        match Fairshare.ranked fs ~eligible:(fun _ -> true) with
        | [] -> ()
        | i :: _ ->
          Fairshare.serve fs i;
          Fairshare.charge fs i ~work:1.0;
          counts.(i) <- counts.(i) + 1
      done;
      let total_w = Array.fold_left ( +. ) 0.0 weights in
      let max_w = Array.fold_left Float.max 0.0 weights in
      let tol = (2.0 *. max_w) +. 2.0 in
      Array.for_all
        (fun i ->
          let expected = float_of_int rounds *. weights.(i) /. total_w in
          Float.abs (float_of_int counts.(i) -. expected) <= tol)
        (Array.init n (fun i -> i)))

let test_fairshare_no_banked_credit () =
  (* Tenant 1 sits ineligible for 100 rounds; when it returns, the vfloor
     clamp must forfeit its idle time instead of granting a catch-up burst. *)
  let fs = Fairshare.create ~weights:[| 1.0; 1.0 |] in
  for _ = 1 to 100 do
    match Fairshare.ranked fs ~eligible:(fun i -> i = 0) with
    | 0 :: _ ->
      Fairshare.serve fs 0;
      Fairshare.charge fs 0 ~work:1.0
    | _ -> Alcotest.fail "expected tenant 0"
  done;
  let c1 = ref 0 in
  for _ = 1 to 20 do
    match Fairshare.ranked fs ~eligible:(fun _ -> true) with
    | i :: _ ->
      Fairshare.serve fs i;
      Fairshare.charge fs i ~work:1.0;
      if i = 1 then incr c1
    | [] -> ()
  done;
  check_true "returning tenant gets at most half + rounding" (!c1 <= 11);
  check_true "returning tenant is not starved either" (!c1 >= 9)

(* --- Autoscaler state machine --- *)

let test_autoscaler_decisions () =
  let cfg = Autoscaler.default ~min_replicas:1 ~max_replicas:3 in
  let t = Autoscaler.create cfg in
  (* Fresh controller: delay above threshold scales up. *)
  (match Autoscaler.decide t ~now_us:0.0 ~replicas:1 ~max_queue_delay_us:10_000.0 with
  | Autoscaler.Scale_up -> ()
  | d -> Alcotest.failf "expected scale_up, got %s" (Autoscaler.decision_name d));
  Autoscaler.note_scaled t ~now_us:0.0 ~decision:Autoscaler.Scale_up;
  check_int "epoch bumped" 1 (Autoscaler.epoch t);
  (* Inside the cooldown window every input holds. *)
  (match
     Autoscaler.decide t ~now_us:(cfg.Autoscaler.as_cooldown_us /. 2.0) ~replicas:2
       ~max_queue_delay_us:1.0e9
   with
  | Autoscaler.Hold -> ()
  | d -> Alcotest.failf "expected hold in cooldown, got %s" (Autoscaler.decision_name d));
  let after = cfg.Autoscaler.as_cooldown_us +. 1.0 in
  (* At the ceiling, high delay holds rather than scaling past max. *)
  (match Autoscaler.decide t ~now_us:after ~replicas:3 ~max_queue_delay_us:1.0e9 with
  | Autoscaler.Hold -> ()
  | d -> Alcotest.failf "expected hold at max, got %s" (Autoscaler.decision_name d));
  (* Quiet queue with spare capacity scales down, but never below min. *)
  (match Autoscaler.decide t ~now_us:after ~replicas:2 ~max_queue_delay_us:0.0 with
  | Autoscaler.Scale_down -> ()
  | d -> Alcotest.failf "expected scale_down, got %s" (Autoscaler.decision_name d));
  match Autoscaler.decide t ~now_us:after ~replicas:1 ~max_queue_delay_us:0.0 with
  | Autoscaler.Hold -> ()
  | d -> Alcotest.failf "expected hold at min, got %s" (Autoscaler.decision_name d)

(* --- Dispatcher: determinism --- *)

let mixed_tenants ~seed =
  [|
    mk_tenant ~seed ~index:0 ~model:"treelstm" ~rate:1_500.0 ~weight:2.0 "alpha";
    mk_tenant ~seed ~index:1 ~model:"birnn" ~rate:900.0 ~bursty:true "beta";
    mk_tenant ~seed ~index:2 ~model:"moe" ~rate:400.0 ~quota:4 ~requests:60 "gamma";
  |]

let run_mixed ~seed =
  let cfg = base_config ~scaler:(Autoscaler.default ~min_replicas:1 ~max_replicas:3) () in
  Dispatcher.simulate cfg ~tenants:(mixed_tenants ~seed) ~payload
    ~execute:uniform_execute ~model_bytes:some_bytes

let test_determinism () =
  let j1 = Json.to_string (Dispatcher.report_json (run_mixed ~seed:7)) in
  let j2 = Json.to_string (Dispatcher.report_json (run_mixed ~seed:7)) in
  check_true "same seed gives byte-identical per-tenant report" (String.equal j1 j2);
  let j3 = Json.to_string (Dispatcher.report_json (run_mixed ~seed:8)) in
  check_true "different seed actually changes the report" (not (String.equal j1 j3))

(* --- Dispatcher: quota admission --- *)

let test_quota_sheds_before_admission () =
  (* One tenant, quota 2, arrivals far faster than the device: the gate
     must shed at admission and peak inflight can never exceed the quota. *)
  let t = mk_tenant ~seed:5 ~index:0 ~rate:50_000.0 ~quota:2 ~requests:80 "greedy" in
  let r =
    Dispatcher.simulate (base_config ()) ~tenants:[| t |] ~payload
      ~execute:uniform_execute ~model_bytes:no_swap_bytes
  in
  let s = Stats.summarize r.Dispatcher.tn_stats in
  check_true "quota shed fired" (s.Stats.s_quota_shed > 0);
  check_int "everything offered is accounted" 80 s.Stats.s_offered;
  match r.Dispatcher.tn_tenants with
  | [ tv ] ->
    check_true "peak inflight capped by quota" (tv.Dispatcher.tv_peak_inflight <= 2)
  | _ -> Alcotest.fail "expected one tenant view"

(* --- Dispatcher: model swaps --- *)

let test_swap_accounting () =
  let cfg = base_config () in
  let two_models =
    [|
      mk_tenant ~seed:9 ~index:0 ~model:"treelstm" ~requests:40 "a";
      mk_tenant ~seed:9 ~index:1 ~model:"birnn" ~requests:40 "b";
    |]
  in
  let r =
    Dispatcher.simulate cfg ~tenants:two_models ~payload ~execute:uniform_execute
      ~model_bytes:some_bytes
  in
  check_true "alternating models on one replica swap repeatedly"
    (r.Dispatcher.tn_swaps > 2);
  let same_model =
    [|
      mk_tenant ~seed:9 ~index:0 ~model:"treelstm" ~requests:40 "a";
      mk_tenant ~seed:9 ~index:1 ~model:"treelstm" ~requests:40 "b";
    |]
  in
  let r2 =
    Dispatcher.simulate cfg ~tenants:same_model ~payload ~execute:uniform_execute
      ~model_bytes:some_bytes
  in
  (* Only the initial cold load: the resident model never changes after. *)
  check_int "same model loads exactly once" 1 r2.Dispatcher.tn_swaps

(* --- Dispatcher: single-tenant equivalence with the cluster path --- *)

let test_single_tenant_matches_cluster () =
  (* Identical arrivals, policy, queue capacity, deadline and executor on
     both paths; swap bytes zero so the tenancy layer adds no device time.
     The per-request outcome sets must then agree exactly. *)
  let slo_ms = 40.0 in
  let t =
    mk_tenant ~seed:3 ~index:0 ~rate:3_000.0 ~slo_ms ~quota:max_int ~requests:150
      "solo"
  in
  let arrivals =
    let rng = Rng.create ((t.Tenant.tn_seed * 53) + 11) in
    Traffic.arrivals ~rng (Tenant.process t) ~n:t.Tenant.tn_requests
  in
  let server =
    {
      Server.default_config with
      Server.policy = Batcher.Adaptive { max_batch = 8; max_wait_us = 500.0 };
      queue_capacity = 64;
      deadline_us = Some (slo_ms *. 1000.0);
    }
  in
  let tenancy_cfg =
    { (base_config ()) with Dispatcher.t_server = { server with Server.deadline_us = None } }
  in
  let dr =
    Dispatcher.simulate tenancy_cfg ~arrivals:[| arrivals |] ~tenants:[| t |] ~payload
      ~execute:uniform_execute ~model_bytes:no_swap_bytes
  in
  let cr =
    Cluster.simulate
      { Cluster.default_config with Cluster.c_server = server; c_replicas = 1 }
      ~arrivals
      ~payload:(fun id -> id)
      ~executors:[| (fun ~degraded:_ batch -> uniform_execute 0 ~model:"m" batch) |]
  in
  let ds = Stats.summarize dr.Dispatcher.tn_stats in
  let cs = Stats.summarize cr.Cluster.cluster_stats in
  check_int "offered matches cluster" cs.Stats.s_offered ds.Stats.s_offered;
  check_int "completed matches cluster" cs.Stats.s_completed ds.Stats.s_completed;
  check_int "shed matches cluster" cs.Stats.s_shed ds.Stats.s_shed;
  check_int "expired matches cluster" cs.Stats.s_expired ds.Stats.s_expired;
  check_int "batches match cluster" cs.Stats.s_batches ds.Stats.s_batches;
  check_float ~eps:1e-6 "p50 matches cluster" cs.Stats.s_p50_ms ds.Stats.s_p50_ms;
  (* The two paths may tie-break an adaptive flush timer differently on a
     handful of launches; latency means agree to within a microsecond. *)
  check_float ~eps:1e-3 "mean matches cluster" cs.Stats.s_mean_ms ds.Stats.s_mean_ms

(* --- Tenant spec parsing --- *)

let test_spec_roundtrip () =
  let t = Tenant.parse ~seed:11 ~index:2 ~bursty:false ~requests:100 "web:moe:1500:25:8:2" in
  check_int "derived seed uses the stride" (11 + (2 * Tenant.seed_stride)) t.Tenant.tn_seed;
  let t2 = Tenant.parse ~seed:0 ~index:0 ~bursty:false ~requests:100 (Tenant.to_spec t) in
  check_true "spec round-trips the registry fields"
    (t2.Tenant.tn_name = t.Tenant.tn_name
    && t2.Tenant.tn_model = t.Tenant.tn_model
    && t2.Tenant.tn_rate_per_s = t.Tenant.tn_rate_per_s
    && t2.Tenant.tn_slo_ms = t.Tenant.tn_slo_ms
    && t2.Tenant.tn_quota = t.Tenant.tn_quota
    && t2.Tenant.tn_weight = t.Tenant.tn_weight)

(* --- Autoscaler end to end: flash crowd needs the scaler --- *)

let test_autoscaler_beats_fixed () =
  let tenants =
    [|
      mk_tenant ~seed:11 ~index:0 ~model:"treelstm" ~rate:800.0 ~slo_ms:15.0
        ~requests:600 "steady";
      mk_tenant ~seed:11 ~index:1 ~model:"birnn" ~rate:1_200.0 ~bursty:true
        ~slo_ms:15.0 ~weight:2.0 ~requests:700 "crowd";
      mk_tenant ~seed:11 ~index:2 ~model:"moe" ~rate:400.0 ~slo_ms:20.0
        ~requests:300 "light";
    |]
  in
  let execute _replica ~model:_ batch =
    Server.Exec_ok
      {
        Server.ex_latency_us = 2_000.0 +. (200.0 *. float_of_int (List.length batch));
        ex_fingerprints = None;
        ex_corrupted = false;
        ex_profiler = None;
      }
  in
  let run scaler =
    Dispatcher.simulate (base_config ~scaler ()) ~tenants ~payload ~execute
      ~model_bytes:some_bytes
  in
  let fixed = Stats.summarize (run (Autoscaler.fixed 1)).Dispatcher.tn_stats in
  let auto_report = run (Autoscaler.default ~min_replicas:1 ~max_replicas:4) in
  let auto = Stats.summarize auto_report.Dispatcher.tn_stats in
  check_true "fixed fleet drowns under the flash crowd"
    (Stats.goodput fixed < 0.8);
  check_true "autoscaler holds goodput" (Stats.goodput auto >= 0.95);
  check_true "the scaler actually scaled" (auto_report.Dispatcher.tn_peak_replicas > 1);
  check_true "scale trajectory recorded"
    (List.length auto_report.Dispatcher.tn_scale_events > 0)

(* --- Overload resilience at the tenancy layer (DESIGN.md §13) --- *)

(* Satellite: the configured quota is per replica. Once the autoscaler has
   grown the fleet, a tenant may hold proportionally more inflight work —
   but never more than quota x current replicas. *)
let test_quota_scales_with_replicas () =
  let tenants =
    [|
      mk_tenant ~seed:5 ~index:0 ~rate:20_000.0 ~quota:2 ~requests:2_000 "greedy";
      mk_tenant ~seed:5 ~index:1 ~rate:14_000.0 ~quota:64 ~requests:600 "heavy";
    |]
  in
  let r =
    Dispatcher.simulate
      (base_config ~scaler:(Autoscaler.default ~min_replicas:1 ~max_replicas:3) ())
      ~tenants ~payload ~execute:uniform_execute ~model_bytes:no_swap_bytes
  in
  check_true "the fleet scaled" (r.Dispatcher.tn_peak_replicas >= 2);
  match r.Dispatcher.tn_tenants with
  | [ greedy; _heavy ] ->
    check_true "scaled quota admits more than the per-replica figure"
      (greedy.Dispatcher.tv_peak_inflight > 2);
    check_true "peak inflight stays under quota x peak replicas"
      (greedy.Dispatcher.tv_peak_inflight <= 2 * r.Dispatcher.tn_peak_replicas)
  | _ -> Alcotest.fail "expected two tenant views"

(* Satellite regression: arming the resilience layer without tripping any
   of its mechanisms must not perturb the dispatcher's RNG streams or
   timing — the report stays byte-identical to the legacy run. *)
let test_tenancy_resilience_idle_matches_legacy () =
  let run resilience =
    let cfg = { (base_config ()) with Dispatcher.t_resilience = resilience } in
    let tenants =
      [|
        mk_tenant ~seed:13 ~index:0 ~rate:1_000.0 ~requests:80 "a";
        mk_tenant ~seed:13 ~index:1 ~model:"birnn" ~rate:600.0 ~requests:50 "b";
      |]
    in
    Json.to_string
      (Dispatcher.report_json
         (Dispatcher.simulate cfg ~tenants ~payload ~execute:uniform_execute
            ~model_bytes:no_swap_bytes))
  in
  let off = run Acrobat.Resilience.off in
  let idle =
    run
      {
        Acrobat.Resilience.rs_retry_budget = Some 0.5;
        rs_target_delay_us = Some 1.0e9;
        rs_brownout = None;
      }
  in
  check_true "armed-but-idle dispatcher is byte-identical to legacy"
    (String.equal off idle)

let test_tenant_breaker_opens_and_recovers () =
  (* The first 4 batch executions fault; with a zero retry budget each one
     is a consecutive failure, so the tenant's breaker opens at the default
     threshold (4), sheds at the door through the cooldown, then a
     half-open trial on the now-healthy device closes it again. *)
  let calls = ref 0 in
  let execute _replica ~model:_ batch =
    incr calls;
    if !calls <= 4 then
      Server.Exec_fault
        {
          ef_latency_us = 300.0;
          ef_reason = "storm";
          ef_transient = true;
          ef_oom = false;
          ef_reset = false;
        }
    else uniform_execute 0 ~model:"m" batch
  in
  let cfg =
    {
      (base_config ()) with
      Dispatcher.t_resilience =
        { Acrobat.Resilience.off with Acrobat.Resilience.rs_retry_budget = Some 0.0 };
    }
  in
  let t = mk_tenant ~seed:2 ~index:0 ~rate:2_000.0 ~requests:150 "flaky" in
  let r =
    Dispatcher.simulate cfg ~tenants:[| t |] ~payload ~execute
      ~model_bytes:no_swap_bytes
  in
  let s = Stats.summarize r.Dispatcher.tn_stats in
  check_true "breaker opened" (s.Stats.s_breaker_opens >= 1);
  check_true "open breaker shed arrivals" (s.Stats.s_breaker_shed > 0);
  check_true "denied retries were counted as sheds" (s.Stats.s_retry_shed > 0);
  check_true "the half-open trial closed the breaker: service resumed"
    (s.Stats.s_completed > 0);
  check_int "every request is accounted" 150 s.Stats.s_offered

let test_dispatcher_hedging () =
  (* Every 13th batch straggles at 20x latency. Batch outcomes resolve at
     launch, so hedging guards against queueing delay: requests stuck
     behind the straggler on the lone replica outlive their p90 timer and
     get duplicated. The primary copy is always ahead of its duplicate in
     EDF order, so every duplicate resolves as wasted work or a
     cancellation — never an extra completion (a duplicate completing
     would overflow the conservation check). *)
  let calls = ref 0 in
  let execute _replica ~model:_ batch =
    incr calls;
    let base = 500.0 +. (50.0 *. float_of_int (List.length batch)) in
    Server.Exec_ok
      {
        Server.ex_latency_us = (if !calls mod 13 = 0 then base *. 20.0 else base);
        ex_fingerprints = None;
        ex_corrupted = false;
        ex_profiler = None;
      }
  in
  let cfg =
    {
      (base_config ~scaler:(Autoscaler.fixed 1) ()) with
      Dispatcher.t_hedge_percentile = Some 90.0;
    }
  in
  let t = mk_tenant ~seed:7 ~index:0 ~rate:3_000.0 ~slo_ms:1_000.0 ~requests:200 "hedged" in
  let r =
    Dispatcher.simulate cfg ~tenants:[| t |] ~payload ~execute
      ~model_bytes:no_swap_bytes
  in
  let s = Stats.summarize r.Dispatcher.tn_stats in
  check_true "hedges fired" (s.Stats.s_hedges > 0);
  check_int "every logical request completed exactly once" 200 s.Stats.s_completed;
  check_int "offered is conserved" 200 s.Stats.s_offered;
  check_true "duplicates resolved as wasted work or cancellations"
    (s.Stats.s_hedge_wasted + s.Stats.s_hedge_cancels > 0);
  check_true "hedge outcomes are attributed"
    (s.Stats.s_hedge_wins + s.Stats.s_hedge_wasted + s.Stats.s_hedge_cancels
     <= s.Stats.s_hedges)

(* --- Integrity at the tenancy layer (audit + quarantine-replace) --- *)

let test_dispatcher_audit_quarantine_replace () =
  (* The initial replica (id 0) silently corrupts every batch; replacement
     replicas are clean. With full auditing the dispatcher must shield
     every delivery, quarantine the dirty replica, and replace it —
     the elastic pool retires rather than probes. *)
  let t = mk_tenant ~seed:7 ~index:0 ~rate:3_000.0 ~requests:300 "audited" in
  let execute replica ~model:_ batch =
    let corrupted = replica = 0 in
    Server.Exec_ok
      {
        Server.ex_latency_us = 500.0 +. (50.0 *. float_of_int (List.length batch));
        ex_profiler = None;
        ex_corrupted = corrupted;
        ex_fingerprints =
          Some
            (Array.of_list
               (List.map
                  (fun id -> Int64.of_int (if corrupted then -id - 1 else 1000 + id))
                  batch));
      }
  in
  let auditor =
    {
      Server.au_rate = 1.0;
      au_seed = 33;
      au_reference = (fun id _ -> Int64.of_int (1000 + id), 80.0);
    }
  in
  let r =
    Dispatcher.simulate ~auditor (base_config ()) ~tenants:[| t |] ~payload ~execute
      ~model_bytes:no_swap_bytes
  in
  let s = Stats.summarize r.Dispatcher.tn_stats in
  check_true "audits ran" (s.Stats.s_audits > 0);
  check_true "mismatches detected" (s.Stats.s_audit_mismatches > 0);
  check_int "audit 1.0 delivers zero corrupted results" 0
    s.Stats.s_corrupted_delivered;
  check_true "the dirty replica was quarantined" (s.Stats.s_quarantines >= 1);
  check_true "a quarantine_replace scale event was logged"
    (List.exists
       (fun (_, ev, _) -> ev = "quarantine_replace")
       r.Dispatcher.tn_scale_events);
  check_true "the replacement keeps goodput high" (Stats.goodput s >= 0.9);
  (* Per-tenant stats mirror the aggregate integrity counters. *)
  let tv = List.hd r.Dispatcher.tn_tenants in
  let ts = Stats.summarize tv.Dispatcher.tv_stats in
  check_int "tenant view mirrors audits" s.Stats.s_audits ts.Stats.s_audits;
  check_int "tenant view mirrors delivered corruption" 0 ts.Stats.s_corrupted_delivered

let test_dispatcher_audit_deterministic () =
  let t = mk_tenant ~seed:9 ~index:0 ~rate:2_500.0 ~requests:200 "det" in
  let execute _replica ~model:_ batch =
    Server.Exec_ok
      {
        Server.ex_latency_us = 400.0 +. (40.0 *. float_of_int (List.length batch));
        ex_profiler = None;
        ex_corrupted = false;
        ex_fingerprints =
          Some (Array.of_list (List.map (fun id -> Int64.of_int (1000 + id)) batch));
      }
  in
  let auditor =
    {
      Server.au_rate = 0.5;
      au_seed = 21;
      au_reference = (fun id _ -> Int64.of_int (1000 + id), 60.0);
    }
  in
  let run () =
    Json.to_string
      (Stats.summary_to_json
         (Stats.summarize
            (Dispatcher.simulate ~auditor (base_config ()) ~tenants:[| t |] ~payload
               ~execute ~model_bytes:no_swap_bytes)
              .Dispatcher.tn_stats))
  in
  Alcotest.(check string) "identical audited dispatcher JSON" (run ()) (run ())

let test_serve_tenants_audited_end_to_end () =
  (* Through the real engine stack: replica 0's device corrupts half its
     attempts, the auditor re-executes sampled requests unbatched and
     compares real tensor fingerprints across the tenancy dispatcher. *)
  let tenants = [| mk_tenant ~seed:3 ~index:0 ~rate:2_000.0 ~requests:60 "prod" |] in
  let run audit =
    Stats.summarize
      (serve_tenants ~iters:50
         ~fault_plans:[ Faults.parse "seed=9,corrupt=0.5" ]
         ~audit ~models:Models.tiny ~tenants ~seed:3 ())
        .Tenancy.Dispatcher.tn_stats
  in
  let off = run 0.0 in
  check_true "corruption injected" (off.Stats.s_corrupted_batches > 0);
  check_true "unaudited corruption delivered" (off.Stats.s_corrupted_delivered > 0);
  let full = run 1.0 in
  check_int "audit 1.0 delivers zero corrupted results" 0
    full.Stats.s_corrupted_delivered;
  check_true "real fingerprint mismatches detected" (full.Stats.s_audit_mismatches > 0)

(* --- Net: partition-aware failover at the dispatcher (DESIGN.md §16) --- *)

let test_dispatcher_partition_failover () =
  (* The elastic dispatcher models a partitioned replica as
     scheduler-invisible unavailability: while the window is open no batch
     passes to it, and the heal re-admits it without duplicating work. *)
  let tenants = [| mk_tenant ~seed:17 ~index:0 ~rate:2_000.0 ~requests:200 "prod" |] in
  let plan = Net.parse "seed=1,partition=20000:60000:1" in
  let run net =
    Dispatcher.simulate
      { (base_config ~scaler:(Autoscaler.fixed 2) ()) with Dispatcher.t_net = net }
      ~tenants ~payload ~execute:uniform_execute ~model_bytes:no_swap_bytes
  in
  let r = run (Some plan) in
  let s = Stats.summarize r.Dispatcher.tn_stats in
  check_int "every request terminates" 200 s.Stats.s_offered;
  check_true "requests still complete through the window"
    (s.Stats.s_completed >= 190);
  check_int "the cut was detected once" 1 s.Stats.s_net_link_downs;
  check_int "the link healed once" 1 s.Stats.s_net_heals;
  (* Determinism through partition and heal: the same seed replays the
     whole report byte-identically. *)
  let json rep =
    Json.to_string (Stats.summary_to_json (Stats.summarize rep.Dispatcher.tn_stats))
  in
  Alcotest.(check string) "partitioned dispatcher replays byte-identically"
    (json r)
    (json (run (Some plan)));
  (* Disarmed plan: the scheduler gate short-circuits, byte-identical to
     no plan at all. *)
  Alcotest.(check string) "disarmed plan is byte-identical to none"
    (json (run None))
    (json (run (Some Net.none)))

let suite =
  [
    prop_fairshare_tracks_weights;
    Alcotest.test_case "fairshare: idle tenants forfeit credit" `Quick
      test_fairshare_no_banked_credit;
    Alcotest.test_case "autoscaler: decision state machine" `Quick
      test_autoscaler_decisions;
    Alcotest.test_case "dispatcher: byte-identical determinism" `Quick test_determinism;
    Alcotest.test_case "dispatcher: quota sheds before admission" `Quick
      test_quota_sheds_before_admission;
    Alcotest.test_case "dispatcher: model-swap accounting" `Quick test_swap_accounting;
    Alcotest.test_case "dispatcher: single tenant matches cluster path" `Quick
      test_single_tenant_matches_cluster;
    Alcotest.test_case "tenant: spec parse round-trip" `Quick test_spec_roundtrip;
    Alcotest.test_case "autoscaler: rides the flash crowd fixed cannot" `Slow
      test_autoscaler_beats_fixed;
    Alcotest.test_case "resilience: quota scales with the fleet" `Quick
      test_quota_scales_with_replicas;
    Alcotest.test_case "resilience: armed-but-idle is byte-identical" `Quick
      test_tenancy_resilience_idle_matches_legacy;
    Alcotest.test_case "resilience: tenant breaker opens and recovers" `Quick
      test_tenant_breaker_opens_and_recovers;
    Alcotest.test_case "resilience: dispatcher hedging, no dup completion" `Quick
      test_dispatcher_hedging;
    Alcotest.test_case "integrity: audit + quarantine-replace" `Quick
      test_dispatcher_audit_quarantine_replace;
    Alcotest.test_case "integrity: audited dispatcher deterministic" `Quick
      test_dispatcher_audit_deterministic;
    Alcotest.test_case "integrity: audited tenancy end to end" `Quick
      test_serve_tenants_audited_end_to_end;
    Alcotest.test_case "net: dispatcher partition failover" `Quick
      test_dispatcher_partition_failover;
  ]
