(** The reusable invariant suite: what must hold of {e every} serving run,
    no matter which faults were injected.

    Each check is an oracle over the run's {!Acrobat_serve.Stats.summary}
    and its deterministic trace — exactly the artifacts every simulation
    already produces — so future subsystems get checked for free by running
    under the chaos campaign. The invariants:

    - {b conservation}: offered = completed + shed + expired + poisoned +
      budget-exhausted, and offered equals the number of generated arrivals
      (no request vanishes, none is double-counted);
    - {b terminal_once}: exactly one terminal trace instant per request id
      (dispatcher pid 0, tid = id + 1), and none for unknown ids;
    - {b no_dup_completion}: no request id completes twice — the accounting
      hedging must preserve — and done-event count matches [s_completed];
    - {b requeue_budget}: per-request failover requeues never exceed the
      configured budget;
    - {b clamped}: zero past-time event-loop schedules (each one is a
      latent scheduling bug that clamping would otherwise hide);
    - {b goodput_floor}: availability at or above a caller-derived floor
      (1.0 for a clean unbounded scenario, campaign-supplied otherwise);
    - {b tenant_starvation} / {b quota_respected}: on multi-tenant runs,
      every tenant with offered load completes something, and no tenant's
      observed peak inflight ever exceeded its admission quota scaled by the
      peak replica count;
    - {b retry_amplification}: with a retry budget of fraction [f] armed,
      re-executed requests never exceed [f] times the offered load — the
      bound that makes retry storms impossible by construction;
    - {b brownout_dwell}: brownout transitions on every replica alternate
      degrade/restore and consecutive transitions are at least the dwell
      window apart, and trace transition counts match the summary counters;
    - {b audit_shield}: with the audit gate at rate 1.0 every delivery is
      verified, so zero corrupted results may reach a caller — the bound
      that makes sampled auditing a real defense, not a dashboard — and
      mismatches never exceed audits;
    - {b quarantine_flow}: quarantine/restore trace instants agree with the
      summary counters, and a replica can only be restored after having
      been quarantined (restores never exceed quarantines);
    - {b net_exactly_once}: with the lossy transport's dedup window armed,
      no (request, replica, epoch) key executes twice no matter how many
      copies dup + resend put on the wire — the exactly-once guarantee,
      read directly off [net_exec] trace instants;
    - {b net_partition}: no request or ack delivery lands on a cut link
      inside an active partition window (the window is half-open, so a
      landing exactly at the heal instant is lawful);
    - {b net_conservation}: every copy put on the wire lands in exactly one
      bucket — sends + dups = deliveries + drops + partition cuts, live
      deliveries split into fresh + dedup hits, and acks split into
      delivered + dropped + gray-eaten. Checked on every run: with the
      transport off all nine counters are zero and the laws hold trivially.

    Replay determinism (same seed, byte-identical summary + trace) needs a
    second run, so it lives in {!Campaign.check_scenario} and reports here
    as a violation named ["replay"]. *)

module Stats = Acrobat_serve.Stats
module Trace = Acrobat_obs.Trace
module Brownout = Acrobat_resilience.Brownout
module Net = Acrobat_net.Net
module Json = Acrobat_obs.Json

type violation = {
  vi_name : string;  (** Which invariant broke. *)
  vi_detail : string;  (** Human-readable evidence. *)
}

let v name fmt = Fmt.kstr (fun vi_detail -> { vi_name = name; vi_detail }) fmt

(** Terminal instant names the cluster dispatcher emits on pid 0 — the
    closed set every admitted request must end in exactly once.
    ["shed_breaker"] is the single-server breaker's terminal and
    ["shed_quota"] the multi-tenant dispatcher's; each fires only on its
    own layer but stays in the set so the suite keeps working as an oracle
    over every serving stack's traces. *)
let terminal_names =
  [ "done"; "expired"; "shed"; "shed_breaker"; "shed_limit"; "shed_quota";
    "poisoned"; "budget_exhausted"; "retry_budget"; "net_shed" ]

(** What the multi-tenant dispatcher observed for one tenant; empty list on
    single-tenant runs. *)
type tenant_obs = {
  tb_name : string;
  tb_offered : int;  (** Arrivals, including quota-shed ones. *)
  tb_completed : int;
  tb_quota : int;  (** Configured per-replica inflight quota. *)
  tb_peak_inflight : int;  (** Largest admitted-but-not-terminal count seen. *)
  tb_resilience_shed : int;
      (** Requests the overload controls dropped (limiter + retry budget +
          breaker): lawful losses the starvation oracle must not count. *)
}

(** Everything one invariant check needs to know about a finished run. *)
type input = {
  in_requests : int;  (** Arrivals the scenario generated. *)
  in_requeue_budget : int;
  in_goodput_floor : float;
  in_summary : Stats.summary;
  in_events : Trace.event list;  (** Canonical order ({!Trace.events}). *)
  in_tenants : tenant_obs list;  (** Per-tenant observations; [] if single-tenant. *)
  in_retry_budget_frac : float option;  (** Armed retry-budget fraction. *)
  in_brownout : Brownout.spec option;  (** Armed brownout spec. *)
  in_peak_replicas : int;  (** Peak fleet size; scales per-replica quotas. *)
  in_audit_rate : float;  (** Armed sampled-audit rate; 0.0 = auditing off. *)
  in_net : Net.plan option;  (** Armed network fault plan; [None] = direct calls. *)
}

let bump tbl key = Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

(* Sorted key list so violation order never depends on hash-bucket layout —
   campaign reports must be byte-deterministic. *)
let sorted_keys tbl = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let check (i : input) : violation list =
  let s = i.in_summary in
  let out = ref [] in
  let add x = out := x :: !out in
  if s.Stats.s_offered <> i.in_requests then
    add
      (v "conservation"
         "offered %d but %d requests arrived (completed %d + shed %d + expired %d + \
          poisoned %d + budget %d)"
         s.Stats.s_offered i.in_requests s.Stats.s_completed s.Stats.s_shed
         s.Stats.s_expired s.Stats.s_poisoned s.Stats.s_breaker_shed);
  (* Index the dispatcher's per-request instants: terminal outcomes,
     completions and requeues, keyed by request id (tid - 1). *)
  let terminals = Hashtbl.create 64 in
  let dones = Hashtbl.create 64 in
  let requeues = Hashtbl.create 16 in
  List.iter
    (fun (ev : Trace.event) ->
      if ev.Trace.ev_ph = 'i' && ev.Trace.ev_pid = 0 then begin
        let id = ev.Trace.ev_tid - 1 in
        if List.mem ev.Trace.ev_name terminal_names then begin
          bump terminals id;
          if ev.Trace.ev_name = "done" then bump dones id
        end
        else if ev.Trace.ev_name = "requeue" then bump requeues id
      end)
    i.in_events;
  for id = 0 to i.in_requests - 1 do
    match Hashtbl.find_opt terminals id with
    | Some 1 -> ()
    | Some n -> add (v "terminal_once" "request %d has %d terminal trace events" id n)
    | None -> add (v "terminal_once" "request %d has no terminal trace event" id)
  done;
  List.iter
    (fun id ->
      if id < 0 || id >= i.in_requests then
        add (v "terminal_once" "terminal trace event for unknown request %d" id))
    (sorted_keys terminals);
  List.iter
    (fun id ->
      let n = Hashtbl.find dones id in
      if n > 1 then add (v "no_dup_completion" "request %d completed %d times" id n))
    (sorted_keys dones);
  let done_total = Hashtbl.fold (fun _ n acc -> acc + n) dones 0 in
  if done_total <> s.Stats.s_completed then
    add
      (v "no_dup_completion" "%d done trace events but %d completions recorded" done_total
         s.Stats.s_completed);
  List.iter
    (fun id ->
      let n = Hashtbl.find requeues id in
      if n > i.in_requeue_budget then
        add
          (v "requeue_budget" "request %d requeued %d times (budget %d)" id n
             i.in_requeue_budget))
    (sorted_keys requeues);
  if s.Stats.s_clamped_schedules <> 0 then
    add
      (v "clamped" "%d event-loop schedules requested a past time"
         s.Stats.s_clamped_schedules);
  if Stats.goodput s < i.in_goodput_floor -. 1e-9 then
    add
      (v "goodput_floor" "goodput %.4f below floor %.4f" (Stats.goodput s)
         i.in_goodput_floor);
  let quota_scale = max 1 i.in_peak_replicas in
  List.iter
    (fun tb ->
      if tb.tb_offered > 0 && tb.tb_completed = 0 && tb.tb_resilience_shed = 0 then
        add
          (v "tenant_starvation" "tenant %s offered %d requests but completed none"
             tb.tb_name tb.tb_offered);
      if tb.tb_peak_inflight > tb.tb_quota * quota_scale then
        add
          (v "quota_respected" "tenant %s peaked at %d inflight (quota %d x %d replicas)"
             tb.tb_name tb.tb_peak_inflight tb.tb_quota quota_scale))
    i.in_tenants;
  (* Retry amplification: each fresh admitted request deposits [frac]
     tokens and every re-execution spends one, so re-executed requests can
     never exceed frac * offered. A violation means the budget leaked. *)
  Option.iter
    (fun frac ->
      let bound = (frac *. float_of_int s.Stats.s_offered) +. 1e-9 in
      if float_of_int s.Stats.s_retried_requests > bound then
        add
          (v "retry_amplification" "%d requests re-executed, budget allows %.1f (%.2f x %d offered)"
             s.Stats.s_retried_requests bound frac s.Stats.s_offered))
    i.in_retry_budget_frac;
  (* Brownout dwell + hysteresis, read off the trace: per replica (pid),
     transitions must alternate starting with a degrade, consecutive
     transitions must be >= the dwell window apart, and the per-run counters
     must agree with the transition counts. *)
  Option.iter
    (fun (bo : Brownout.spec) ->
      let by_pid = Hashtbl.create 8 in
      List.iter
        (fun (ev : Trace.event) ->
          if
            ev.Trace.ev_ph = 'i'
            && (ev.Trace.ev_name = "brownout_degrade"
               || ev.Trace.ev_name = "brownout_restore")
          then
            Hashtbl.replace by_pid ev.Trace.ev_pid
              ((ev.Trace.ev_name, ev.Trace.ev_ts_us)
              :: Option.value ~default:[] (Hashtbl.find_opt by_pid ev.Trace.ev_pid)))
        i.in_events;
      let degrades = ref 0 and restores = ref 0 in
      List.iter
        (fun pid ->
          (* Events were consed in canonical order, so reverse to timeline. *)
          let timeline = List.rev (Hashtbl.find by_pid pid) in
          let expect = ref "brownout_degrade" in
          let last_ts = ref neg_infinity in
          List.iter
            (fun (name, ts) ->
              if name = "brownout_degrade" then incr degrades else incr restores;
              if name <> !expect then
                add
                  (v "brownout_dwell" "pid %d: %s out of order at %.0fus" pid name ts)
              else
                expect :=
                  if name = "brownout_degrade" then "brownout_restore"
                  else "brownout_degrade";
              if ts -. !last_ts < bo.Brownout.bo_dwell_us -. 1e-6 then
                add
                  (v "brownout_dwell"
                     "pid %d: %s at %.0fus only %.0fus after previous transition (dwell %.0fus)"
                     pid name ts (ts -. !last_ts) bo.Brownout.bo_dwell_us);
              last_ts := ts)
            timeline)
        (sorted_keys by_pid);
      if !degrades <> s.Stats.s_brownouts then
        add
          (v "brownout_dwell" "%d degrade trace events but %d brownouts recorded"
             !degrades s.Stats.s_brownouts);
      if !restores <> s.Stats.s_brownout_restores then
        add
          (v "brownout_dwell" "%d restore trace events but %d restores recorded"
             !restores s.Stats.s_brownout_restores))
    i.in_brownout;
  (* Audit shield: at rate 1.0 every delivery passes through the audit
     gate, so a corrupted result reaching a caller means the gate leaked.
     Mismatches are a subset of audits by construction. *)
  if i.in_audit_rate >= 1.0 && s.Stats.s_corrupted_delivered > 0 then
    add
      (v "audit_shield" "%d corrupted results delivered despite audit rate %.2f"
         s.Stats.s_corrupted_delivered i.in_audit_rate);
  if s.Stats.s_audit_mismatches > s.Stats.s_audits then
    add
      (v "audit_shield" "%d audit mismatches exceed %d audits"
         s.Stats.s_audit_mismatches s.Stats.s_audits);
  (* Quarantine flow: trace instants and summary counters must agree, and a
     replica is only ever restored out of a quarantine it entered. *)
  let quarantines = ref 0 and restores = ref 0 in
  List.iter
    (fun (ev : Trace.event) ->
      if ev.Trace.ev_ph = 'i' then
        if ev.Trace.ev_name = "quarantine" then incr quarantines
        else if ev.Trace.ev_name = "quarantine_restore" then incr restores)
    i.in_events;
  if !quarantines <> s.Stats.s_quarantines then
    add
      (v "quarantine_flow" "%d quarantine trace events but %d quarantines recorded"
         !quarantines s.Stats.s_quarantines);
  if !restores <> s.Stats.s_quarantine_restores then
    add
      (v "quarantine_flow" "%d restore trace events but %d restores recorded" !restores
         s.Stats.s_quarantine_restores);
  if s.Stats.s_quarantine_restores > s.Stats.s_quarantines then
    add
      (v "quarantine_flow" "%d restores exceed %d quarantines"
         s.Stats.s_quarantine_restores s.Stats.s_quarantines);
  (* Net conservation: every copy put on the wire lands in exactly one
     bucket, live deliveries split into fresh + dedup hits, and acks split
     into delivered + dropped + gray-eaten. With the transport off all
     counters are zero and the laws hold trivially, so this runs on every
     scenario for free. *)
  if
    s.Stats.s_net_sends + s.Stats.s_net_dups
    <> s.Stats.s_net_deliveries + s.Stats.s_net_drops + s.Stats.s_net_partition_drops
  then
    add
      (v "net_conservation"
         "%d sends + %d dups but %d deliveries + %d drops + %d cuts"
         s.Stats.s_net_sends s.Stats.s_net_dups s.Stats.s_net_deliveries
         s.Stats.s_net_drops s.Stats.s_net_partition_drops);
  if s.Stats.s_net_deliveries <> s.Stats.s_net_fresh + s.Stats.s_net_dedup_hits then
    add
      (v "net_conservation" "%d deliveries but %d fresh + %d dedup hits"
         s.Stats.s_net_deliveries s.Stats.s_net_fresh s.Stats.s_net_dedup_hits);
  if
    s.Stats.s_net_acks
    <> s.Stats.s_net_ack_deliveries + s.Stats.s_net_ack_drops + s.Stats.s_net_gray_drops
  then
    add
      (v "net_conservation" "%d acks but %d delivered + %d dropped + %d gray-eaten"
         s.Stats.s_net_acks s.Stats.s_net_ack_deliveries s.Stats.s_net_ack_drops
         s.Stats.s_net_gray_drops);
  Option.iter
    (fun (plan : Net.plan) ->
      let n = max 1 i.in_peak_replicas in
      (* Exactly-once: with the dedup window armed, however many copies
         dup + resend put on the wire, at most one [net_exec] may fire per
         (request, replica, epoch) key. Epoch fencing makes re-execution
         after a replica reset lawful — the reset wiped the first attempt. *)
      if plan.Net.np_dedup then begin
        let execs = Hashtbl.create 64 in
        List.iter
          (fun (ev : Trace.event) ->
            if ev.Trace.ev_ph = 'i' && ev.Trace.ev_name = "net_exec" then begin
              let epoch =
                match List.assoc_opt "epoch" ev.Trace.ev_args with
                | Some (Json.Int e) -> e
                | _ -> -1
              in
              bump execs (ev.Trace.ev_tid - 1, ev.Trace.ev_pid - n - 1, epoch)
            end)
          i.in_events;
        List.iter
          (fun ((id, replica, epoch) as key) ->
            let c = Hashtbl.find execs key in
            if c > 1 then
              add
                (v "net_exactly_once"
                   "request %d executed %d times on replica %d epoch %d" id c replica
                   epoch))
          (sorted_keys execs)
      end;
      (* Partition blackout: no request or ack delivery may land on a cut
         link inside the active window (half-open: landing exactly at the
         heal instant is lawful). *)
      Option.iter
        (fun (t0, t1) ->
          List.iter
            (fun (ev : Trace.event) ->
              if
                ev.Trace.ev_ph = 'i'
                && (ev.Trace.ev_name = "net_deliver" || ev.Trace.ev_name = "net_recv")
                && ev.Trace.ev_ts_us >= t0
                && ev.Trace.ev_ts_us < t1
              then begin
                let replica = ev.Trace.ev_pid - n - 1 in
                if replica >= 0 && Net.in_group plan ~replica ~n then
                  add
                    (v "net_partition"
                       "%s on cut link %d at %.0fus inside partition [%.0f, %.0f)"
                       ev.Trace.ev_name replica ev.Trace.ev_ts_us t0 t1)
              end)
            i.in_events)
        (Net.partition_window plan))
    i.in_net;
  List.rev !out

(** Distinct invariant names violated, sorted — the compact label used in
    reports and reproducer headers. *)
let names (vs : violation list) : string list =
  List.sort_uniq compare (List.map (fun x -> x.vi_name) vs)
