(** Auto-scheduler simulation (paper §D.1, Table 9).

    The real system runs TVM's auto-scheduler (Ansor) to find good schedules
    for the generated batched kernels, prioritizing kernels by their
    estimated execution cost (frequency × work). We model the search honestly
    as a budgeted random search: each candidate schedule for a kernel has a
    deterministic pseudo-random quality below a per-kernel cap, and a kernel
    tuned for [n] iterations keeps the best of [n] draws — giving the
    diminishing returns the paper's Table 9 shows without hand-designing the
    curve. The cap decreases with kernel size: auto-generated code is
    competitive with vendor libraries on small fused kernels and less so on
    large GEMMs (the paper observes this on BiRNN-large, §7.2.1).

    Quality multiplies into kernel execution time as [time / quality]. *)

open Acrobat_tensor

type t = { quality : (int, float) Hashtbl.t; default : float }

let sample_floor = 0.35

(** Best achievable schedule quality for a kernel doing [flops] work per
    instance whose largest shared (weight) argument has [weight_elems]
    elements.

    The regimes reflect where generated code stands against hand-tuned
    vendor kernels (the paper observes all three): huge throughput-bound
    kernels (Berxit's batched transformer blocks) are where auto-scheduling
    is competitive; mid-size plain projections against large weight
    matrices (BiRNN-large's 512x512 GEMMs) are where cuBLAS-class kernels
    are hardest to match (§7.2.1: "better tensor kernel optimizations can
    help reduce this performance gap"); small fused cells have no vendor
    equivalent at all. *)
let quality_cap ~flops ~weight_elems =
  if flops >= 1.0e7 then 0.85
  else if weight_elems >= 200_000 then 0.5
  else if weight_elems >= 50_000 then 0.72
  else 0.9

(** Quality found by [iters] search iterations for kernel [id]: the best of
    [iters] deterministic draws in [sample_floor, cap]. Good schedules are
    rare — the draw distribution is heavily skewed toward the floor
    ([u^skew]) — so quality keeps improving over hundreds of iterations, as
    the paper's Table 9 observes of the real auto-scheduler. *)
let skew = 60.0

let search ?(seed = 0) ~id ~flops ?(weight_elems = 0) ~iters () =
  let cap = quality_cap ~flops ~weight_elems in
  if iters <= 0 then sample_floor
  else begin
    let rng = Rng.create ((id * 7919) + 12345 + (seed * 524_287)) in
    let best = ref 0.0 in
    for _ = 1 to iters do
      let q = sample_floor +. ((cap -. sample_floor) *. Float.pow (Rng.float rng) skew) in
      if q > !best then best := q
    done;
    !best
  end

(** Tune all kernels of [registry] under a total iteration budget.

    [priority] is the estimated execution cost of each kernel (invocation
    frequency × per-invocation work): exact under PGO, a heuristic guess
    otherwise — the difference Table 9 measures. [flops] and [weight_elems]
    describe the kernel the search itself sees (its candidate measurements
    run on real shapes either way). The budget is split proportionally to
    priority on top of a round-robin minimum. *)
let tune ?(seed = 0) ~(registry : Kernel.registry) ~(iters : int)
    ~(priority : int -> float) ~(flops : int -> float) ~(weight_elems : int -> int) () : t =
  let kernels = Kernel.all_kernels registry in
  let priorities =
    List.map (fun (k : Kernel.t) -> k.id, Float.max 1.0 (priority k.id)) kernels
  in
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 priorities in
  let nkernels = max 1 (List.length priorities) in
  (* Every kernel gets a round-robin minimum share so high priorities do not
     starve the rest; the remainder is split by estimated cost. *)
  let min_share = iters / (4 * nkernels) in
  let table = Hashtbl.create 32 in
  List.iter
    (fun (id, p) ->
      let proportional =
        int_of_float (0.75 *. float_of_int iters *. p /. Float.max 1.0 total)
      in
      let n = max 1 (min_share + proportional) in
      Hashtbl.replace table id
        (search ~seed ~id ~flops:(flops id) ~weight_elems:(weight_elems id) ~iters:n ()))
    priorities;
  { quality = table; default = 0.7 }

(** A fixed-quality table: vendor-library kernels (DyNet's cuDNN/cuBLAS
    path) are hand-optimized but not specialized to the program. *)
let fixed q = { quality = Hashtbl.create 1; default = q }

let vendor = fixed 0.9

let quality t id = Option.value ~default:t.default (Hashtbl.find_opt t.quality id)
