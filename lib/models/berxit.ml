(** Berxit (Xin et al. 2021): early-exit BERT inference. All transformer
    layers share one set of weights (as in the paper's Table 3 setup); after
    each layer an exit decision is taken — emulated tensor-dependent
    control flow (§E.1) with a per-layer exit probability. The "small" size
    matches BERT-base hyper-parameters; "large" uses 18 layers of the
    BERT-large width (the paper's choice). *)

module Driver = Acrobat_engines.Driver
open Acrobat_tensor

let template =
  {|
def @layer(%x: Tensor[({S}, {H})],
           %wq: Tensor[({H}, {H})], %wk: Tensor[({H}, {H})], %wv: Tensor[({H}, {H})],
           %wo: Tensor[({H}, {H})],
           %g1: Tensor[(1, {H})], %lb1: Tensor[(1, {H})],
           %w1: Tensor[({H}, {F})], %bf1: Tensor[(1, {F})],
           %w2: Tensor[({F}, {H})], %bf2: Tensor[(1, {H})],
           %g2: Tensor[(1, {H})], %lb2: Tensor[(1, {H})]) -> Tensor[({S}, {H})] {
  let %q = matmul(%x, %wq);
  let %k = matmul(%x, %wk);
  let %v = matmul(%x, %wv);
  let %scores = softmax(matmul(%q, transpose(%k)));
  let %attn = matmul(matmul(%scores, %v), %wo);
  let %x1 = layernorm(%x + %attn, %g1, %lb1);
  let %ffn = %bf2 + matmul(gelu(%bf1 + matmul(%x1, %w1)), %w2);
  layernorm(%x1 + %ffn, %g2, %lb2)
}

def @layers(%n: Int, %x: Tensor[({S}, {H})],
            %wq: Tensor[({H}, {H})], %wk: Tensor[({H}, {H})], %wv: Tensor[({H}, {H})],
            %wo: Tensor[({H}, {H})],
            %g1: Tensor[(1, {H})], %lb1: Tensor[(1, {H})],
            %w1: Tensor[({H}, {F})], %bf1: Tensor[(1, {F})],
            %w2: Tensor[({F}, {H})], %bf2: Tensor[(1, {H})],
            %g2: Tensor[(1, {H})], %lb2: Tensor[(1, {H})]) -> Tensor[({S}, {H})] {
  if (%n == 0) { %x } else {
    let %y = @layer(%x, %wq, %wk, %wv, %wo, %g1, %lb1, %w1, %bf1, %w2, %bf2, %g2, %lb2);
    let %exit = coin({E});
    if (%exit) { %y }
    else { @layers(%n - 1, %y, %wq, %wk, %wv, %wo, %g1, %lb1, %w1, %bf1, %w2, %bf2, %g2, %lb2) }
  }
}

def @main(%wq: Tensor[({H}, {H})], %wk: Tensor[({H}, {H})], %wv: Tensor[({H}, {H})],
          %wo: Tensor[({H}, {H})],
          %g1: Tensor[(1, {H})], %lb1: Tensor[(1, {H})],
          %w1: Tensor[({H}, {F})], %bf1: Tensor[(1, {F})],
          %w2: Tensor[({F}, {H})], %bf2: Tensor[(1, {H})],
          %g2: Tensor[(1, {H})], %lb2: Tensor[(1, {H})],
          %x: Tensor[({S}, {H})]) -> Tensor[({S}, {H})] {
  @layers({L}, %x, %wq, %wk, %wv, %wo, %g1, %lb1, %w1, %bf1, %w2, %bf2, %g2, %lb2)
}
|}

let rec make ?dims ?(exit_prob = 0.15) (size : Model.size) : Model.t =
  (* (layers, hidden, ffn, seq). Small = BERT-base; large = 18 layers at
     BERT-large width (paper §7.1). *)
  let layers, hidden, ffn, seq =
    match dims with
    | Some d -> d
    | None -> (
      match size with
      | Model.Small -> 12, 768, 3072, 128
      | Model.Large -> 18, 1024, 4096, 128)
  in
  let specs =
    [
      "wq", [ hidden; hidden ];
      "wk", [ hidden; hidden ];
      "wv", [ hidden; hidden ];
      "wo", [ hidden; hidden ];
      "g1", [ 1; hidden ];
      "lb1", [ 1; hidden ];
      "w1", [ hidden; ffn ];
      "bf1", [ 1; ffn ];
      "w2", [ ffn; hidden ];
      "bf2", [ 1; hidden ];
      "g2", [ 1; hidden ];
      "lb2", [ 1; hidden ];
    ]
  in
  let source =
    Model.subst_str
      [
        "S", string_of_int seq;
        "H", string_of_int hidden;
        "F", string_of_int ffn;
        "L", string_of_int layers;
        "E", Fmt.str "%.2f" exit_prob;
      ]
      template
  in
  (* The degraded variant exits aggressively after fewer layers: same
     weights, same input shapes, so a server may swap it in under
     pressure without re-generating instances. *)
  let degraded =
    if exit_prob >= 0.5 then None
    else Some (make ~dims:(layers, hidden, ffn, seq) ~exit_prob:0.5 size)
  in
  {
    Model.name = "berxit";
    size;
    source;
    inputs = [ "x" ];
    gen_weights = Model.weights_of_specs specs;
    gen_instance = (fun rng -> [ "x", Driver.Htensor (Tensor.random rng [ seq; hidden ]) ]);
    degraded;
  }
