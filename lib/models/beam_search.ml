(** Beam-search decoding with an RNN cell (paper Table 2: iterative,
    tensor-dependent, high control-flow parallelism — Wiseman & Rush 2016).

    Each decode step expands every beam concurrently (instance parallelism
    across beams via [map]); the next-token scores feed an argmax and the
    kept beam / termination decisions are tensor-dependent (emulated per
    §E.1). Not part of the paper's Table 3 evaluation — included from its
    §2.1 characterization. *)

module Driver = Acrobat_engines.Driver
open Acrobat_tensor

let template =
  {|
(* Expand one beam: advance its decoder state and score the vocabulary. *)
def @expand(%state: Tensor[(1, {H})],
            %w: Tensor[({H}, {H})], %u: Tensor[({H}, {H})], %b: Tensor[(1, {H})],
            %wv: Tensor[({H}, {V})]) -> Tensor[(1, {H})] {
  let %cand = tanh(matmul(%state, %w) + %b);
  let %next = sigmoid(matmul(%cand, %u));
  let %scores = softmax(matmul(%next, %wv));
  let %pick = argmax(%scores);
  %next
}

def @decode(%n: Int, %beams: List[Tensor[(1, {H})]],
            %w: Tensor[({H}, {H})], %u: Tensor[({H}, {H})], %b: Tensor[(1, {H})],
            %wv: Tensor[({H}, {V})]) -> List[Tensor[(1, {H})]] {
  if (%n == 0) { %beams } else {
    let %expanded = map(fn(%s: Tensor[(1, {H})]) {
      @expand(%s, %w, %u, %b, %wv)
    }, %beams);
    (* Tensor-dependent: stop early when the best hypothesis is complete. *)
    let %stop = coin(0.08);
    if (%stop) { %expanded }
    else { @decode(%n - 1, %expanded, %w, %u, %b, %wv) }
  }
}

def @main(%w: Tensor[({H}, {H})], %u: Tensor[({H}, {H})], %b: Tensor[(1, {H})],
          %wv: Tensor[({H}, {V})],
          %beams: List[Tensor[(1, {H})]]) -> List[Tensor[(1, {H})]] {
  let %steps = 10 + choice(11);
  @decode(%steps, %beams, %w, %u, %b, %wv)
}
|}

let make ?hidden ?(vocab = 64) ?(beam_width = 4) (size : Model.size) : Model.t =
  let hidden =
    match hidden with
    | Some h -> h
    | None -> ( match size with Model.Small -> 256 | Model.Large -> 512)
  in
  let specs =
    [
      "w", [ hidden; hidden ];
      "u", [ hidden; hidden ];
      "b", [ 1; hidden ];
      "wv", [ hidden; vocab ];
    ]
  in
  {
    Model.name = "beamsearch";
    size;
    source = Model.subst [ "H", hidden; "V", vocab ] template;
    inputs = [ "beams" ];
    gen_weights = Model.weights_of_specs specs;
    gen_instance =
      (fun rng ->
        [
          ( "beams",
            Driver.Hlist
              (List.init beam_width (fun _ -> Driver.Htensor (Tensor.random rng [ 1; hidden ])))
          );
        ]);
    degraded = None;
  }
