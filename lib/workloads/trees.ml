(** Synthetic binary parse trees with Stanford-sentiment-treebank-like
    structure statistics (the datasets of the paper's Table 3 are used only
    for their structure — accuracy is never evaluated — so a seeded
    generator with matching size distribution preserves the batching
    behaviour; see DESIGN.md §2). *)

open Acrobat_tensor

type t = Leaf of int  (** word id *) | Node of t * t

let rec leaves = function Leaf _ -> 1 | Node (l, r) -> leaves l + leaves r
let rec size = function Leaf _ -> 1 | Node (l, r) -> 1 + size l + size r
let rec height = function Leaf _ -> 0 | Node (l, r) -> 1 + max (height l) (height r)

(** Sentence length distribution: clamped normal around the treebank's mean
    (~19 tokens). *)
let sample_length rng =
  let n = int_of_float (19.0 +. (8.0 *. Rng.normal rng)) in
  max 4 (min 45 n)

(** A random binary tree over [n] leaves: split points drawn uniformly,
    giving the mildly unbalanced shapes of real parse trees. *)
let rec random_shape rng ~vocab n =
  if n <= 1 then Leaf (Rng.int rng vocab)
  else begin
    let k = 1 + Rng.int rng (n - 1) in
    let l = random_shape rng ~vocab k in
    Node (l, random_shape rng ~vocab (n - k))
  end

let sample ?(vocab = 10_000) rng = random_shape rng ~vocab (sample_length rng)

(** Per-level node counts, deepest (leaves) first — the structure a
    level-synchronous executor (Cortex) batches over. *)
let level_sizes t =
  let tbl = Hashtbl.create 16 in
  let rec go t =
    let h = match t with Leaf _ -> 0 | Node (l, r) -> 1 + max (go l) (go r) in
    Hashtbl.replace tbl h (1 + Option.value ~default:0 (Hashtbl.find_opt tbl h));
    h
  in
  let maxh = go t in
  List.init (maxh + 1) (fun h -> Option.value ~default:0 (Hashtbl.find_opt tbl h))

let rec fold ~leaf ~node = function
  | Leaf w -> leaf w
  | Node (l, r) -> node (fold ~leaf ~node l) (fold ~leaf ~node r)
