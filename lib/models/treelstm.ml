(** Binary (constituency) TreeLSTM (Tai et al. 2015) over sentiment-treebank
    style parse trees — the paper's flagship recursive model.

    One cell serves both leaves (word embedding input, zero child states)
    and internal nodes (zero input, real child states): the two call sites
    are distinct 1-context specializations, so each gets its own batched
    kernels. Leaf cells are fully hoistable (static depth 0); internal cells
    follow tree height. The zero-initialization constants exercise the
    constant-reuse difference with DyNet (§E.4), and the five gate
    projections sharing one input exercise horizontal fusion (§C.1). *)

module Driver = Acrobat_engines.Driver
module W = Acrobat_workloads

let gates = [ "i"; "f"; "g"; "o"; "u" ]

(* "%wi: Tensor[({H}, {H})], %ui: ..., %vi: ..., %bi: Tensor[(1, {H})]" for
   each gate. *)
let weight_names =
  List.concat_map (fun g -> [ "w" ^ g; "u" ^ g; "v" ^ g; "b" ^ g ]) gates

let weight_params =
  String.concat ",\n         "
    (List.map
       (fun n ->
         if String.length n > 0 && n.[0] = 'b' then
           Fmt.str "%%%s: Tensor[(1, {H})]" n
         else Fmt.str "%%%s: Tensor[({H}, {H})]" n)
       weight_names)

let weight_args = String.concat ", " (List.map (fun n -> "%" ^ n) weight_names)

let cell_body =
  let gate act g =
    Fmt.str "  let %%%s = %s(matmul(%%x, %%w%s) + matmul(%%lh, %%u%s) + matmul(%%rh, %%v%s) + %%b%s);"
      g act g g g g
  in
  String.concat "\n"
    [
      gate "sigmoid" "i";
      gate "sigmoid" "f";
      gate "sigmoid" "g";
      gate "sigmoid" "o";
      gate "tanh" "u";
      "  let %c = mul(%i, %u) + mul(%f, %lc) + mul(%g, %rc);";
      "  let %h = mul(%o, tanh(%c));";
      "  (%h, %c)";
    ]

let template =
  Fmt.str
    {|
def @cell(%%x: Tensor[(1, {H})], %%lh: Tensor[(1, {H})], %%lc: Tensor[(1, {H})],
         %%rh: Tensor[(1, {H})], %%rc: Tensor[(1, {H})],
         %s) -> (Tensor[(1, {H})], Tensor[(1, {H})]) {
%s
}

def @tree(%%t: Tree[Tensor[(1, {H})]],
         %s) -> (Tensor[(1, {H})], Tensor[(1, {H})]) {
  match (%%t) {
    Leaf(%%emb) => {
      let %%z = zeros((1, {H}));
      @cell(%%emb, %%z, %%z, %%z, %%z, %s)
    },
    Node(%%l, %%r) => {
      let %%pair = concurrent(@tree(%%l, %s), @tree(%%r, %s));
      let %%lres = %%pair.0;
      let %%rres = %%pair.1;
      let %%zx = zeros((1, {H}));
      @cell(%%zx, %%lres.0, %%lres.1, %%rres.0, %%rres.1, %s)
    }
  }
}

def @main(%s,
          %%c_wt: Tensor[({H}, {C})], %%c_b: Tensor[(1, {C})],
          %%tree: Tree[Tensor[(1, {H})]]) -> Tensor[(1, {C})] {
  let %%root = @tree(%%tree, %s);
  softmax(%%c_b + matmul(%%root.0, %%c_wt))
}
|}
    weight_params cell_body weight_params weight_args weight_args weight_args weight_args
    weight_params weight_args

let make ?(classes = 5) ?hidden (size : Model.size) : Model.t =
  let hidden =
    match hidden with
    | Some h -> h
    | None -> ( match size with Model.Small -> 256 | Model.Large -> 512)
  in
  let specs =
    List.map
      (fun n ->
        if n.[0] = 'b' then n, [ 1; hidden ] else n, [ hidden; hidden ])
      weight_names
    @ [ "c_wt", [ hidden; classes ]; "c_b", [ 1; classes ] ]
  in
  let table = Model.embedding_table ~dim:hidden ~seed:23 in
  let rec tree_hval (t : W.Trees.t) =
    match t with
    | W.Trees.Leaf w -> Driver.Hleaf (Driver.Htensor (W.Embeddings.lookup table w))
    | W.Trees.Node (l, r) -> Driver.Hnode (tree_hval l, tree_hval r)
  in
  {
    Model.name = "treelstm";
    size;
    source = Model.subst [ "H", hidden; "C", classes ] template;
    inputs = [ "tree" ];
    gen_weights = Model.weights_of_specs specs;
    gen_instance = (fun rng -> [ "tree", tree_hval (W.Trees.sample rng) ]);
    degraded = None;
  }

(** The workload structure itself (for the Cortex baseline). *)
let sample_tree rng = W.Trees.sample rng
