# Convenience targets; everything is plain dune underneath.

.PHONY: all build test check bench clean

all: build

build:
	dune build

test:
	dune runtest

# Tier-1 gate: full build (warnings are errors in the dev profile — see the
# env stanza in dune-project), the whole test suite, then end-to-end serving
# smoke runs — fault-free, fault-injected (gated on goodput), and a
# replicated cluster with a dead-device replica — to catch CLI wiring
# breakage that unit tests can miss. The trace smoke runs the cluster twice
# with the same seed and demands byte-identical, schema-valid Chrome traces
# (TRACE_cluster.json, uploaded as a CI artifact alongside
# BENCH_cluster.json).
check: build test
	dune exec bin/acrobatc.exe -- serve --model treelstm --size tiny \
	  --rate 2000 --requests 50 --iters 100
	dune exec bin/acrobatc.exe -- serve --model treelstm --size tiny \
	  --rate 2000 --requests 50 --iters 100 \
	  --faults "seed=7,kernel=0.05,straggler=0.02x6,reset=0.001" \
	  --min-goodput 0.9
	dune exec bin/acrobatc.exe -- serve --model treelstm --size tiny \
	  --rate 2000 --requests 50 --iters 100 --replicas 3 --hedge 90 \
	  --faults "seed=7,kernel=0.75,reset=0.1" --min-goodput 0.95 \
	  --trace TRACE_cluster.json
	dune exec bin/acrobatc.exe -- serve --model treelstm --size tiny \
	  --rate 2000 --requests 50 --iters 100 --replicas 3 --hedge 90 \
	  --faults "seed=7,kernel=0.75,reset=0.1" --min-goodput 0.95 \
	  --trace TRACE_cluster_rerun.json
	cmp TRACE_cluster.json TRACE_cluster_rerun.json
	dune exec bin/acrobatc.exe -- trace TRACE_cluster.json
	dune exec bench/main.exe -- cluster --json BENCH_cluster.json

bench:
	dune exec bench/main.exe

clean:
	dune clean
