(** Admission control: a bounded request queue with load shedding and
    deadline drops.

    Backpressure is the first line of defense of an online server: when the
    offered load exceeds device capacity, an unbounded queue turns every
    request's latency into the queue's age. We bound the queue and shed at
    the door instead (callers count the shed), and expire requests whose
    deadline has already passed when they are popped for execution — running
    them would waste device time on an answer nobody is waiting for. *)

type 'a request = {
  rq_id : int;
  rq_payload : 'a;
  rq_arrival_us : float;
  rq_deadline_us : float option;  (** Absolute; [None] = best effort. *)
}

type 'a t = {
  capacity : int;
  q : 'a request Queue.t;
  mutable shed : int;  (** Rejected at admission: queue full. *)
  mutable expired : int;  (** Dropped at dequeue: deadline passed. *)
}

let create ~capacity =
  if capacity <= 0 then Fmt.invalid_arg "Admission.create: capacity must be positive";
  { capacity; q = Queue.create (); shed = 0; expired = 0 }

let length t = Queue.length t.q
let is_empty t = Queue.is_empty t.q
let shed_count t = t.shed
let expired_count t = t.expired

(** Oldest queued request's arrival time, if any. *)
let oldest_arrival_us t = Option.map (fun r -> r.rq_arrival_us) (Queue.peek_opt t.q)

let expired_at ~now_us (r : 'a request) =
  match r.rq_deadline_us with Some d -> now_us > d | None -> false

(* Drop (and count) every already-expired request in place, returning the
   dropped requests. Only called when the queue is full: sweeping on each
   offer would be O(n) per arrival for no benefit, but a full queue of dead
   requests must not shed live ones. *)
let sweep_expired t ~now_us : 'a request list =
  let live = Queue.create () in
  let dropped = ref [] in
  Queue.iter
    (fun r ->
      if expired_at ~now_us r then begin
        t.expired <- t.expired + 1;
        dropped := r :: !dropped
      end
      else Queue.push r live)
    t.q;
  Queue.clear t.q;
  Queue.transfer live t.q;
  List.rev !dropped

(** Like {!offer}, but also returns the requests the full-queue sweep
    expired — the cluster layer needs per-request visibility to keep its
    request-id accounting exact, where the single server only needs the
    counters. *)
let offer_swept t ~now_us (r : 'a request) : bool * 'a request list =
  let swept = if Queue.length t.q >= t.capacity then sweep_expired t ~now_us else [] in
  if Queue.length t.q >= t.capacity then begin
    t.shed <- t.shed + 1;
    false, swept
  end
  else begin
    Queue.push r t.q;
    true, swept
  end

(** Admit [r], or shed it when the queue is at capacity. A full queue is
    first swept of requests whose deadline already passed (counted under
    [expired], same as a drop at dequeue) — they were never going to
    execute, and they must not cause a live request to be shed. *)
let offer t ~now_us (r : 'a request) : bool = fst (offer_swept t ~now_us r)

(** Like {!take}, but also returns the requests dropped as expired. *)
let take_with_expired t ~now_us ~limit : 'a request list * 'a request list =
  let rec go k acc dropped =
    if k = 0 then List.rev acc, List.rev dropped
    else
      match Queue.take_opt t.q with
      | None -> List.rev acc, List.rev dropped
      | Some r ->
        if expired_at ~now_us r then begin
          t.expired <- t.expired + 1;
          go k acc (r :: dropped)
        end
        else go (k - 1) (r :: acc) dropped
  in
  go limit [] []

(** Pop up to [limit] live requests in FIFO order, silently discarding (and
    counting) any whose deadline passed while they waited. *)
let take t ~now_us ~limit : 'a request list = fst (take_with_expired t ~now_us ~limit)

(** Drain the whole queue: live requests in FIFO order plus the expired
    remainder (counted). Used on replica failover. *)
let drain t ~now_us : 'a request list * 'a request list =
  take_with_expired t ~now_us ~limit:(Queue.length t.q)
