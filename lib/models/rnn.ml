(** The sequential RNN of the paper's Listing 1 — the running example and
    the quickstart model. A recursive RNN over a token sequence followed by
    a per-token output transformation (two program phases). *)

module Driver = Acrobat_engines.Driver
module W = Acrobat_workloads

let template =
  {|
def @rnn(%inps: List[Tensor[(1, {H})]], %state: Tensor[(1, {H})],
         %bias: Tensor[(1, {H})], %i_wt: Tensor[({H}, {H})], %h_wt: Tensor[({H}, {H})])
    -> List[Tensor[(1, {H})]] {
  match (%inps) {
    Nil => Nil,
    Cons(%inp, %tail) => {
      let %inp_linear = %bias + matmul(%inp, %i_wt);
      let %new_state = sigmoid(%inp_linear + matmul(%state, %h_wt));
      Cons(%new_state, @rnn(%tail, %new_state, %bias, %i_wt, %h_wt))
    }
  }
}

def @main(%rnn_bias: Tensor[(1, {H})], %rnn_i_wt: Tensor[({H}, {H})],
          %rnn_h_wt: Tensor[({H}, {H})], %rnn_init: Tensor[(1, {H})],
          %c_wt: Tensor[({H}, {C})], %cbias: Tensor[(1, {C})],
          %inps: List[Tensor[(1, {H})]]) -> List[Tensor[(1, {C})]] {
  let %states = @rnn(%inps, %rnn_init, %rnn_bias, %rnn_i_wt, %rnn_h_wt);
  map(fn(%p: Tensor[(1, {H})]) { relu(%cbias + matmul(%p, %c_wt)) }, %states)
}
|}

let make ?(classes = 16) ?hidden (size : Model.size) : Model.t =
  let hidden =
    match hidden with
    | Some h -> h
    | None -> ( match size with Model.Small -> 256 | Model.Large -> 512)
  in
  let specs =
    [
      "rnn_bias", [ 1; hidden ];
      "rnn_i_wt", [ hidden; hidden ];
      "rnn_h_wt", [ hidden; hidden ];
      "rnn_init", [ 1; hidden ];
      "c_wt", [ hidden; classes ];
      "cbias", [ 1; classes ];
    ]
  in
  let table = Model.embedding_table ~dim:hidden ~seed:11 in
  {
    Model.name = "rnn";
    size;
    source = Model.subst [ "H", hidden; "C", classes ] template;
    inputs = [ "inps" ];
    gen_weights = Model.weights_of_specs specs;
    gen_instance =
      (fun rng ->
        let words = W.Sentences.sample rng in
        [
          ( "inps",
            Driver.Hlist
              (List.map (fun w -> Driver.Htensor (W.Embeddings.lookup table w)) words) );
        ]);
    degraded = None;
  }
