(** The online inference server simulation.

    Wires the pieces together on one virtual timeline: a {!Traffic} trace
    delivers requests to {!Admission}; whenever the (single, serially
    executed) device is free, the {!Batcher} decides to launch or wait; a
    launched batch runs through a caller-supplied executor — in production
    glue, {!Acrobat_engines.Driver.run_batch} on the compiled model — whose
    simulated latency occupies the device until completion; {!Stats}
    accounts every request's queue wait, compute time and outcome.

    The server is polymorphic in the request payload and knows nothing
    about models or engines: tests drive it with synthetic executors, the
    [Acrobat.serve_model] glue with real compiled programs. Determinism:
    given the same arrival trace and a deterministic executor, two
    simulations produce identical stats (event ties dispatch in scheduling
    order; no wall clock, no global RNG). *)

module Profiler = Acrobat_device.Profiler
module Cost_model = Acrobat_device.Cost_model

type config = {
  policy : Batcher.policy;
  queue_capacity : int;
  deadline_us : float option;
      (** Relative per-request deadline; queued requests past it are
          dropped, not executed. *)
  cost : Cost_model.t;  (** Seeds the adaptive latency model. *)
}

let default_config =
  {
    policy = Batcher.Adaptive { max_batch = 16; max_wait_us = 2_000.0 };
    queue_capacity = 256;
    deadline_us = None;
    cost = Cost_model.default;
  }

(** What one batch execution reports back. *)
type exec_outcome = {
  ex_latency_us : float;  (** Simulated device busy time for the batch. *)
  ex_profiler : Profiler.t option;  (** Merged into the run's profile. *)
}

type 'a state = {
  config : config;
  loop : Event_loop.t;
  queue : 'a Admission.t;
  batcher : Batcher.t;
  stats : Stats.t;
  execute : 'a list -> exec_outcome;
  mutable device_busy : bool;
}

(* One pass of the launch decision; called whenever the device frees up, a
   request arrives, or a batcher timeout fires. Idempotent: spurious wakes
   fall through. *)
let rec maybe_launch (st : 'a state) =
  if (not st.device_busy) && not (Admission.is_empty st.queue) then begin
    let now_us = Event_loop.now st.loop in
    match
      Batcher.decide st.batcher ~now_us ~queue_len:(Admission.length st.queue)
        ~oldest_arrival_us:(Option.get (Admission.oldest_arrival_us st.queue))
    with
    | Batcher.Wait_until at when at > now_us ->
      Event_loop.schedule st.loop ~at (fun () -> maybe_launch st)
    | Batcher.Wait_until _ ->
      (* A wait that is already due would re-fire at this same virtual
         instant forever; treat it as a flush of whatever is queued. *)
      flush st ~now_us ~limit:(Admission.length st.queue)
    | Batcher.Flush limit -> flush st ~now_us ~limit
  end

and flush (st : 'a state) ~now_us ~limit =
  match Admission.take st.queue ~now_us ~limit with
  | [] ->
    (* Everything popped had expired; the queue may still hold work. *)
    maybe_launch st
  | batch ->
    let size = List.length batch in
    let outcome = st.execute (List.map (fun r -> r.Admission.rq_payload) batch) in
    let done_us = now_us +. Float.max 0.0 outcome.ex_latency_us in
    Batcher.observe_batch st.batcher ~size ~latency_us:outcome.ex_latency_us;
    Stats.note_batch st.stats ~size ~profiler:outcome.ex_profiler;
    List.iter
      (fun (r : _ Admission.request) ->
        Stats.record st.stats
          {
            Stats.r_id = r.Admission.rq_id;
            r_arrival_us = r.Admission.rq_arrival_us;
            r_start_us = now_us;
            r_done_us = done_us;
            r_batch_size = size;
          })
      batch;
    st.device_busy <- true;
    Event_loop.schedule st.loop ~at:done_us (fun () ->
        st.device_busy <- false;
        maybe_launch st)

let on_arrival (st : 'a state) (r : 'a Admission.request) =
  let now_us = Event_loop.now st.loop in
  Batcher.observe_arrival st.batcher ~now_us;
  if Admission.offer st.queue r then
    (* Defer the launch check to a same-time event rather than deciding
       inline: events tie-break in scheduling order, so every arrival at
       this virtual instant is queued before the check runs and
       simultaneous requests coalesce into one batch instead of the first
       one launching alone. *)
    Event_loop.schedule st.loop ~at:now_us (fun () -> maybe_launch st)

(** Run the simulation to completion.

    [arrivals] gives each request's arrival time (monotone, from
    {!Traffic.arrivals}); [payload i] builds request [i]'s inputs;
    [execute] runs one assembled batch and reports its simulated latency.
    Returns the populated {!Stats.t} (summarize with
    {!Stats.summarize}). *)
let simulate (config : config) ~(arrivals : float array) ~(payload : int -> 'a)
    ~(execute : 'a list -> exec_outcome) : Stats.t =
  let loop = Event_loop.create (Clock.create ()) in
  let st =
    {
      config;
      loop;
      queue = Admission.create ~capacity:config.queue_capacity;
      batcher = Batcher.create ~cost:config.cost config.policy;
      stats = Stats.create ();
      execute;
      device_busy = false;
    }
  in
  Array.iteri
    (fun i at ->
      let r =
        {
          Admission.rq_id = i;
          rq_payload = payload i;
          rq_arrival_us = at;
          rq_deadline_us = Option.map (fun d -> at +. d) config.deadline_us;
        }
      in
      Event_loop.schedule loop ~at (fun () -> on_arrival st r))
    arrivals;
  Event_loop.run loop;
  st.stats.Stats.shed <- Admission.shed_count st.queue;
  st.stats.Stats.expired <- Admission.expired_count st.queue;
  st.stats.Stats.end_us <- Event_loop.now loop;
  st.stats
