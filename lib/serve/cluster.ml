(** A replicated serving cluster on one virtual timeline.

    N {!Replica}s — each with its own device, admission queue, batcher
    state and (via the caller-supplied executor array) its own fault plan —
    sit behind a dispatcher that owns per-request accounting. The cluster
    layer adds the three robustness mechanisms a single survivable server
    cannot provide:

    - {b Health-checked failover.} A replica whose recovery machinery gives
      up (consecutive-failure threshold, or the stricter consecutive-reset
      threshold, or a failed probe) goes down; its queued and in-flight
      requests drain back to the dispatcher and are re-dispatched to
      healthy peers — each request keeps its original arrival time and
      deadline, and a bounded requeue budget guarantees termination even if
      every replica is faulty. After the cooldown the replica accepts a
      single probe request; success re-admits it.
    - {b Dispatch policies.} Round-robin, join-shortest-queue, or
      least-expected-latency (remaining device busy time plus the replica's
      online latency-model estimate for the queue the request would join).
    - {b Hedged requests.} When enough completions have been observed, each
      arrival arms a timer at a percentile of recent end-to-end latency; if
      the request is still unresolved when the timer fires, a duplicate is
      issued on a different healthy replica. First completion wins; a
      duplicate still queued when its winner finishes is dropped unexecuted
      (a {e cancel}), one that was already executing is counted as
      {e wasted}.

    {b Accounting invariant} (checked by tests): every offered request
    terminates exactly once — completed, shed, expired, poisoned, or
    requeue-budget-exhausted — no matter how many copies hedging created or
    how many times failover moved it. The dispatcher keeps a per-request-id
    entry tracking live copies and resolution; replica callbacks funnel
    every copy-level event through it.

    Determinism: everything runs on the shared {!Event_loop}; the only RNG
    streams are the per-replica backoff jitter (seeded from the tolerance
    seed and replica id) and whatever the executors draw internally. Same
    seeds and fault plans ⇒ byte-identical stats. *)

module Trace = Acrobat_obs.Trace
module Metrics = Acrobat_obs.Metrics
module Json = Acrobat_obs.Json

type dispatch = Round_robin | Join_shortest_queue | Least_expected_latency

let dispatch_name = function
  | Round_robin -> "rr"
  | Join_shortest_queue -> "jsq"
  | Least_expected_latency -> "lel"

let dispatch_of_string = function
  | "rr" | "round-robin" -> Some Round_robin
  | "jsq" | "shortest-queue" -> Some Join_shortest_queue
  | "lel" | "least-latency" -> Some Least_expected_latency
  | _ -> None

type config = {
  c_server : Server.config;  (** Per-replica server knobs (shared). *)
  c_replicas : int;
  c_dispatch : dispatch;
  c_hedge_percentile : float option;
      (** Hedge delay as a percentile (e.g. 95.0) of recent end-to-end
          latency; [None] disables hedging. *)
  c_reset_threshold : int;
      (** Consecutive device resets that fail a replica over (stronger
          signal than generic faults, so it is tighter than the breaker
          threshold). *)
  c_requeue_budget : int;
      (** Re-dispatches per request before it is dropped; bounds work when
          every replica is faulty. *)
}

let default_config =
  {
    c_server = Server.default_config;
    c_replicas = 1;
    c_dispatch = Join_shortest_queue;
    c_hedge_percentile = None;
    c_reset_threshold = 2;
    c_requeue_budget = 8;
  }

(* Hedge-delay estimation: percentile over a sliding window of recent
   winning completions. Too few observations ⇒ no hedging yet (an early
   wild guess would either never fire or duplicate everything). *)
let hedge_window = 64
let hedge_min_obs = 8

(** Dispatcher-side life cycle of one offered request. *)
type 'a entry = {
  ent_req : 'a Admission.request;
  mutable ent_copies : int;  (** Copies queued or in flight somewhere. *)
  mutable ent_done : bool;  (** Reached its terminal outcome. *)
  mutable ent_home : int;  (** Replica holding the primary copy. *)
  mutable ent_hedged : bool;
  mutable ent_hedge_replica : int;  (** -1 until hedged. *)
  mutable ent_requeues : int;
  mutable ent_deposited : bool;
      (** Retry-budget tokens credited (once per logical request). *)
}

type 'a t = {
  cfg : config;
  loop : Event_loop.t;
  mutable replicas : 'a Replica.t array;  (** Filled once during [simulate]. *)
  stats : Stats.t;  (** Cluster aggregate; terminal outcomes only. *)
  entries : (int, 'a entry) Hashtbl.t;
  pending : 'a Admission.request Queue.t;
      (** Requests with no healthy replica to go to; drained on probe
          windows and re-admissions. *)
  mutable rr_next : int;
  lat_ring : float array;  (** Recent winning latencies (us), circular. *)
  mutable lat_count : int;
  mutable lat_idx : int;
  tracer : Trace.t;  (** Dispatcher-level emissions land on pid 0. *)
}

let record_latency st lat_us =
  st.lat_ring.(st.lat_idx) <- lat_us;
  st.lat_idx <- (st.lat_idx + 1) mod hedge_window;
  if st.lat_count < hedge_window then st.lat_count <- st.lat_count + 1

(** Pure hedge-delay estimate: the [percentile] of the first [count] ring
    entries, or [None] during warm-up (fewer than {!hedge_min_obs}
    observations — an early wild guess would either never fire or duplicate
    everything). Exposed for the warm-up boundary test. *)
let hedge_delay ~percentile ring ~count =
  if count < hedge_min_obs then None
  else Some (Stats.percentile (Array.sub ring 0 count) percentile)

let hedge_delay_us st =
  match st.cfg.c_hedge_percentile with
  | None -> None
  | Some p -> hedge_delay ~percentile:p st.lat_ring ~count:st.lat_count

let entry st rq_id = Hashtbl.find st.entries rq_id

(* A copy vanished without completing. When it was the last live copy of an
   unresolved request, that request's terminal outcome is [terminal]. *)
let copy_lost st (ent : 'a entry) ~terminal =
  ent.ent_copies <- ent.ent_copies - 1;
  if (not ent.ent_done) && ent.ent_copies <= 0 then begin
    ent.ent_done <- true;
    let name =
      match terminal with
      | `Shed ->
        st.stats.Stats.shed <- st.stats.Stats.shed + 1;
        "shed"
      | `Expired ->
        st.stats.Stats.expired <- st.stats.Stats.expired + 1;
        "expired"
      | `Poisoned ->
        st.stats.Stats.poisoned <- st.stats.Stats.poisoned + 1;
        "poisoned"
      | `Budget ->
        st.stats.Stats.breaker_shed <- st.stats.Stats.breaker_shed + 1;
        "budget_exhausted"
      | `Limit ->
        st.stats.Stats.limit_shed <- st.stats.Stats.limit_shed + 1;
        "shed_limit"
      | `Retry_budget ->
        st.stats.Stats.retry_shed <- st.stats.Stats.retry_shed + 1;
        "retry_budget"
    in
    let id = ent.ent_req.Admission.rq_id in
    Trace.instant st.tracer ~name ~cat:"request" ~pid:0 ~tid:(Server.req_tid id)
      ~ts_us:(Event_loop.now st.loop)
      ~args:[ "id", Json.Int id ]
  end

(* A still-queued copy of an already-resolved request was discarded — the
   cheap hedge "cancellation". *)
let copy_cancelled st (ent : 'a entry) =
  ent.ent_copies <- ent.ent_copies - 1;
  st.stats.Stats.hedge_cancels <- st.stats.Stats.hedge_cancels + 1

(* --- Dispatch --- *)

(* Pick a healthy replica per the configured policy; [exclude] bars one id
   (the hedge's primary home). Ties break toward the lowest id, which keeps
   selection deterministic. *)
let pick_up st ~exclude ~now_us =
  let n = Array.length st.replicas in
  let best = ref None in
  Array.iteri
    (fun i rep ->
      if i <> exclude && Replica.health rep = Replica.Up then begin
        let key =
          match st.cfg.c_dispatch with
          | Round_robin -> float_of_int ((i - st.rr_next + n) mod n)
          | Join_shortest_queue ->
            float_of_int (Replica.queue_length rep + if Replica.is_busy rep then 1 else 0)
          | Least_expected_latency -> Replica.expected_latency_us rep ~now_us
        in
        match !best with Some (_, bk) when bk <= key -> () | _ -> best := Some (i, key)
      end)
    st.replicas;
  match !best with
  | Some (i, _) ->
    if st.cfg.c_dispatch = Round_robin then st.rr_next <- (i + 1) mod n;
    Some i
  | None -> None

(* Probing replicas take priority for a single request at a time: routing
   one live request there is the price of re-admission, and a failed probe
   fails over and requeues it, so nothing is lost. *)
let select st ~now_us =
  let probe = ref (-1) in
  Array.iteri
    (fun i rep -> if !probe < 0 && Replica.wants_probe rep then probe := i)
    st.replicas;
  if !probe >= 0 then Some (!probe, true)
  else
    match pick_up st ~exclude:(-1) ~now_us with
    | Some i -> Some (i, false)
    | None -> None

let rec dispatch st (r : 'a Admission.request) =
  let ent = entry st r.Admission.rq_id in
  let now_us = Event_loop.now st.loop in
  match select st ~now_us with
  | None -> Queue.push r st.pending
  | Some (i, is_probe) ->
    if is_probe then st.stats.Stats.probes <- st.stats.Stats.probes + 1;
    ent.ent_home <- i;
    (match Replica.enqueue st.replicas.(i) r with
    | Replica.Admitted ->
      if not ent.ent_deposited then begin
        ent.ent_deposited <- true;
        Replica.deposit_budget st.replicas.(i)
      end
    | Replica.Shed_queue -> copy_lost st ent ~terminal:`Shed
    | Replica.Shed_limit -> copy_lost st ent ~terminal:`Limit)

(* Drain the parked queue once a dispatch target (re)appeared. Taking a
   snapshot first keeps this loop-free: a re-parked request goes back to
   [pending] without being retried in the same pass. *)
and drain_pending st =
  let rec go k =
    if k > 0 then
      match Queue.take_opt st.pending with
      | None -> ()
      | Some r ->
        let ent = entry st r.Admission.rq_id in
        if ent.ent_done then copy_cancelled st ent else dispatch st r;
        go (k - 1)
  in
  go (Queue.length st.pending)

(* --- Hedging --- *)

let maybe_hedge st (ent : 'a entry) =
  if (not ent.ent_done) && not ent.ent_hedged then begin
    let now_us = Event_loop.now st.loop in
    match pick_up st ~exclude:ent.ent_home ~now_us with
    | None -> () (* nowhere to hedge to; the primary copy stands alone *)
    | Some i ->
      ent.ent_hedged <- true;
      ent.ent_hedge_replica <- i;
      ent.ent_copies <- ent.ent_copies + 1;
      st.stats.Stats.hedges <- st.stats.Stats.hedges + 1;
      Trace.instant st.tracer ~name:"hedge" ~cat:"cluster" ~pid:0
        ~tid:(Server.req_tid ent.ent_req.Admission.rq_id)
        ~ts_us:now_us
        ~args:
          [ "id", Json.Int ent.ent_req.Admission.rq_id; "replica", Json.Int i ];
      (match Replica.enqueue st.replicas.(i) ent.ent_req with
      | Replica.Admitted -> ()
      (* The hedge target shed it; the primary copy is still live, so
         this never terminates the request. *)
      | Replica.Shed_queue -> copy_lost st ent ~terminal:`Shed
      | Replica.Shed_limit -> copy_lost st ent ~terminal:`Limit)
  end

(* --- Replica callbacks: every copy-level event funnels through here --- *)

let on_live st (r : 'a Admission.request) = not (entry st r.Admission.rq_id).ent_done

let on_completed st ~replica (batch : 'a Admission.request list) ~size ~start_us ~done_us =
  List.iter
    (fun (r : 'a Admission.request) ->
      let ent = entry st r.Admission.rq_id in
      if not ent.ent_done then begin
        ent.ent_done <- true;
        Stats.record st.stats
          {
            Stats.r_id = r.Admission.rq_id;
            r_arrival_us = r.Admission.rq_arrival_us;
            r_start_us = start_us;
            r_done_us = done_us;
            r_batch_size = size;
          };
        record_latency st (done_us -. r.Admission.rq_arrival_us);
        Trace.instant st.tracer ~name:"done" ~cat:"request" ~pid:0
          ~tid:(Server.req_tid r.Admission.rq_id) ~ts_us:done_us
          ~args:[ "id", Json.Int r.Admission.rq_id; "replica", Json.Int replica ];
        if ent.ent_hedged && replica = ent.ent_hedge_replica then
          st.stats.Stats.hedge_wins <- st.stats.Stats.hedge_wins + 1
      end
      else
        (* The other copy already won; this execution was duplicated work. *)
        st.stats.Stats.hedge_wasted <- st.stats.Stats.hedge_wasted + 1;
      ent.ent_copies <- ent.ent_copies - 1)
    batch

let on_cancelled st ~replica:_ (r : 'a Admission.request) =
  copy_cancelled st (entry st r.Admission.rq_id)

let on_expired st ~replica:_ (rs : 'a Admission.request list) =
  List.iter
    (fun (r : 'a Admission.request) ->
      let ent = entry st r.Admission.rq_id in
      if ent.ent_done then ent.ent_copies <- ent.ent_copies - 1
      else copy_lost st ent ~terminal:`Expired)
    rs

let on_retry_shed st ~replica:_ (rs : 'a Admission.request list) =
  List.iter
    (fun (r : 'a Admission.request) ->
      let ent = entry st r.Admission.rq_id in
      if ent.ent_done then ent.ent_copies <- ent.ent_copies - 1
      else copy_lost st ent ~terminal:`Retry_budget)
    rs

let on_poisoned st ~replica:_ (r : 'a Admission.request) =
  let ent = entry st r.Admission.rq_id in
  if ent.ent_done then ent.ent_copies <- ent.ent_copies - 1
  else copy_lost st ent ~terminal:`Poisoned

let on_down st ~replica (requeue : 'a Admission.request list) =
  ignore replica;
  st.stats.Stats.failovers <- st.stats.Stats.failovers + 1;
  List.iter
    (fun (r : 'a Admission.request) ->
      let ent = entry st r.Admission.rq_id in
      if ent.ent_done then copy_cancelled st ent
      else begin
        ent.ent_requeues <- ent.ent_requeues + 1;
        if ent.ent_requeues > st.cfg.c_requeue_budget then
          copy_lost st ent ~terminal:`Budget
        else begin
          st.stats.Stats.requeued <- st.stats.Stats.requeued + 1;
          Trace.instant st.tracer ~name:"requeue" ~cat:"cluster" ~pid:0
            ~tid:(Server.req_tid r.Admission.rq_id)
            ~ts_us:(Event_loop.now st.loop)
            ~args:[ "id", Json.Int r.Admission.rq_id; "from", Json.Int replica ];
          (* The down replica is no longer Up, so [dispatch] naturally
             routes elsewhere (or parks the request when nowhere is). *)
          dispatch st r
        end
      end)
    requeue

(* Quarantine drain: the same requeue discipline as failover (budgeted
   re-dispatch, parked when nowhere is healthy), but the transition itself
   is counted by the replica's integrity scoreboard, not as a failover. *)
let on_quarantined st ~replica (requeue : 'a Admission.request list) =
  List.iter
    (fun (r : 'a Admission.request) ->
      let ent = entry st r.Admission.rq_id in
      if ent.ent_done then copy_cancelled st ent
      else begin
        ent.ent_requeues <- ent.ent_requeues + 1;
        if ent.ent_requeues > st.cfg.c_requeue_budget then
          copy_lost st ent ~terminal:`Budget
        else begin
          st.stats.Stats.requeued <- st.stats.Stats.requeued + 1;
          Trace.instant st.tracer ~name:"requeue" ~cat:"cluster" ~pid:0
            ~tid:(Server.req_tid r.Admission.rq_id)
            ~ts_us:(Event_loop.now st.loop)
            ~args:[ "id", Json.Int r.Admission.rq_id; "from", Json.Int replica ];
          dispatch st r
        end
      end)
    requeue

let on_probe_ready st ~replica:_ = drain_pending st

let on_up st ~replica:_ =
  st.stats.Stats.readmitted <- st.stats.Stats.readmitted + 1;
  drain_pending st

(* --- Arrivals --- *)

let on_arrival st (r : 'a Admission.request) =
  let ent =
    {
      ent_req = r;
      ent_copies = 1;
      ent_done = false;
      ent_home = -1;
      ent_hedged = false;
      ent_hedge_replica = -1;
      ent_requeues = 0;
      ent_deposited = false;
    }
  in
  Hashtbl.replace st.entries r.Admission.rq_id ent;
  Trace.instant st.tracer ~name:"admit" ~cat:"request" ~pid:0
    ~tid:(Server.req_tid r.Admission.rq_id)
    ~ts_us:(Event_loop.now st.loop)
    ~args:[ "id", Json.Int r.Admission.rq_id ];
  (* Arm the hedge timer from the delay estimate at arrival time; when the
     request resolves first, the timer no-ops. *)
  (match hedge_delay_us st with
  | Some d ->
    Event_loop.schedule st.loop ~at:(r.Admission.rq_arrival_us +. d) (fun () ->
        maybe_hedge st ent)
  | None -> ());
  dispatch st r

(** Final per-replica view of a cluster run. *)
type replica_view = {
  rv_id : int;
  rv_stats : Stats.t;  (** Everything this replica executed, hedges included. *)
  rv_health : Replica.health;  (** Health when the simulation drained. *)
}

type report = {
  cluster_stats : Stats.t;
      (** Aggregate: terminal per-request outcomes, merged profilers, and
          the cluster counters. *)
  replica_views : replica_view list;
}

(** Run the cluster simulation to completion. [executors.(i)] runs a batch
    on replica [i]'s device (wrap with a per-replica fault injector to make
    one replica flaky); its length must equal [cfg.c_replicas]. *)
let simulate ?(tracer = Trace.null) ?(metrics = Metrics.null)
    ?(snapshot_every_us = 10_000.0) ?auditor (cfg : config)
    ~(arrivals : float array) ~(payload : int -> 'a)
    ~(executors : (degraded:bool -> 'a list -> Server.exec_result) array) : report =
  if Array.length executors <> cfg.c_replicas then
    Fmt.invalid_arg "Cluster.simulate: %d executors for %d replicas"
      (Array.length executors) cfg.c_replicas;
  if cfg.c_replicas <= 0 then
    Fmt.invalid_arg "Cluster.simulate: replicas must be positive";
  let loop = Event_loop.create (Clock.create ()) in
  if Trace.enabled tracer then begin
    Trace.name_process tracer ~pid:0 ~name:"dispatcher";
    for i = 0 to cfg.c_replicas - 1 do
      Trace.name_process tracer ~pid:(i + 1) ~name:(Fmt.str "replica %d" i)
    done
  end;
  let st =
    {
      cfg;
      loop;
      replicas = [||];
      stats = Stats.create ();
      entries = Hashtbl.create 1024;
      pending = Queue.create ();
      rr_next = 0;
      lat_ring = Array.make hedge_window 0.0;
      lat_count = 0;
      lat_idx = 0;
      tracer;
    }
  in
  let cb =
    {
      Replica.cb_live = on_live st;
      cb_completed = (fun ~replica batch ~size ~start_us ~done_us ->
        on_completed st ~replica batch ~size ~start_us ~done_us);
      cb_cancelled = (fun ~replica r -> on_cancelled st ~replica r);
      cb_expired = (fun ~replica rs -> on_expired st ~replica rs);
      cb_retry_shed = (fun ~replica rs -> on_retry_shed st ~replica rs);
      cb_poisoned = (fun ~replica r -> on_poisoned st ~replica r);
      cb_down = (fun ~replica rs -> on_down st ~replica rs);
      cb_quarantined = (fun ~replica rs -> on_quarantined st ~replica rs);
      cb_probe_ready = (fun ~replica -> on_probe_ready st ~replica);
      cb_up = (fun ~replica -> on_up st ~replica);
    }
  in
  st.replicas <-
    Array.init cfg.c_replicas (fun i ->
        Replica.create ~tracer ?auditor ~id:i ~loop ~config:cfg.c_server
          ~reset_threshold:cfg.c_reset_threshold ~execute:executors.(i) ~cb ());
  Array.iteri
    (fun i at ->
      let r =
        {
          Admission.rq_id = i;
          rq_payload = payload i;
          rq_arrival_us = at;
          rq_deadline_us = Option.map (fun d -> at +. d) cfg.c_server.Server.deadline_us;
        }
      in
      Event_loop.schedule loop ~at (fun () -> on_arrival st r))
    arrivals;
  (* Periodic metric snapshots; the chain stops rescheduling once it is the
     only pending work, so the loop still drains. *)
  if Metrics.enabled metrics then begin
    let rec snap () =
      Stats.to_metrics st.stats metrics;
      Metrics.snapshot metrics ~ts_us:(Event_loop.now loop);
      if Event_loop.pending loop > 0 then
        Event_loop.schedule_after loop ~delay:snapshot_every_us snap
    in
    Event_loop.schedule_after loop ~delay:snapshot_every_us snap
  end;
  Event_loop.run loop;
  (* Anything still parked when the event loop drained could not be placed
     before the end of the run; account it as dropped so the per-request
     conservation law (completed + dropped = offered) holds. *)
  Queue.iter
    (fun (r : 'a Admission.request) ->
      let ent = entry st r.Admission.rq_id in
      if ent.ent_done then copy_cancelled st ent else copy_lost st ent ~terminal:`Budget)
    st.pending;
  Queue.clear st.pending;
  let end_us = Event_loop.now loop in
  st.stats.Stats.end_us <- end_us;
  (* Aggregate device-side activity: every batch any replica executed,
     every profiler sample, every recovery action. Terminal per-request
     counters (shed/expired/poisoned/budget) are cluster-owned and already
     in [st.stats]; per-replica admission counters would double-count
     hedged and requeued copies. *)
  let views =
    Array.to_list
      (Array.map
         (fun rep ->
           let rs = Replica.stats rep in
           rs.Stats.shed <- Admission.shed_count (Replica.admission rep);
           rs.Stats.expired <- Admission.expired_count (Replica.admission rep);
           rs.Stats.end_us <- end_us;
           st.stats.Stats.batches <- st.stats.Stats.batches + rs.Stats.batches;
           st.stats.Stats.batched_requests <-
             st.stats.Stats.batched_requests + rs.Stats.batched_requests;
           Stats.Profiler.merge ~into:st.stats.Stats.profiler rs.Stats.profiler;
           st.stats.Stats.fault_batches <-
             st.stats.Stats.fault_batches + rs.Stats.fault_batches;
           st.stats.Stats.retries <- st.stats.Stats.retries + rs.Stats.retries;
           st.stats.Stats.bisections <- st.stats.Stats.bisections + rs.Stats.bisections;
           st.stats.Stats.breaker_opens <-
             st.stats.Stats.breaker_opens + rs.Stats.breaker_opens;
           st.stats.Stats.degraded_batches <-
             st.stats.Stats.degraded_batches + rs.Stats.degraded_batches;
           st.stats.Stats.retried_requests <-
             st.stats.Stats.retried_requests + rs.Stats.retried_requests;
           st.stats.Stats.brownouts <- st.stats.Stats.brownouts + rs.Stats.brownouts;
           st.stats.Stats.brownout_restores <-
             st.stats.Stats.brownout_restores + rs.Stats.brownout_restores;
           (* Integrity counters are replica-owned (audits run where the
              batch ran); the aggregate is their sum, like batches. *)
           st.stats.Stats.corrupted_batches <-
             st.stats.Stats.corrupted_batches + rs.Stats.corrupted_batches;
           st.stats.Stats.corrupted_delivered <-
             st.stats.Stats.corrupted_delivered + rs.Stats.corrupted_delivered;
           st.stats.Stats.audits <- st.stats.Stats.audits + rs.Stats.audits;
           st.stats.Stats.audit_mismatches <-
             st.stats.Stats.audit_mismatches + rs.Stats.audit_mismatches;
           st.stats.Stats.quarantines <-
             st.stats.Stats.quarantines + rs.Stats.quarantines;
           st.stats.Stats.quarantine_restores <-
             st.stats.Stats.quarantine_restores + rs.Stats.quarantine_restores;
           { rv_id = Replica.id rep; rv_stats = rs; rv_health = Replica.health rep })
         st.replicas)
  in
  st.stats.Stats.clamped_schedules <- Event_loop.clamped_count loop;
  st.stats.Stats.loop_events <- Event_loop.dispatched loop;
  Stats.to_metrics st.stats metrics;
  { cluster_stats = st.stats; replica_views = views }
