(** Failure-injection tests: the runtime and evaluators must fail loudly
    and diagnosably, never silently compute garbage. *)

open Acrobat
open T_util
module Runtime = Acrobat_runtime.Runtime
module Executor = Acrobat_runtime.Executor

let expect_runtime_error fragment f =
  match f () with
  | _ -> Alcotest.failf "expected a runtime error mentioning %S" fragment
  | exception Value.Runtime_error m ->
    if not (T_util.contains m fragment) then
      Alcotest.failf "error %S does not mention %S" m fragment

let run_src ?(fibers = true) ?(batch = 2) src ~inputs ~weights ~instances =
  let config = { Config.acrobat with Config.fibers } in
  let compiled = compile ~framework:(Frameworks.Acrobat config) ~inputs src in
  ignore batch;
  run ~compute_values:true compiled ~weights ~instances ()

let tensor_input rng = [ "x", Driver.Htensor (Tensor.random rng [ 1; 4 ]) ]

let test_choice_zero_fails () =
  let src =
    "def @main(%w: Tensor[(4, 4)], %x: Tensor[(1, 4)]) -> Tensor[(1, 4)] { \
     let %n = choice(0); sigmoid(matmul(%x, %w)) }"
  in
  let rng = Rng.create 1 in
  expect_runtime_error "choice" (fun () ->
      run_src src ~inputs:[ "x" ]
        ~weights:[ "w", Tensor.random rng [ 4; 4 ] ]
        ~instances:[ tensor_input rng ])

let test_missing_input_fails () =
  let src = "def @main(%w: Tensor[(4, 4)], %x: Tensor[(1, 4)]) -> Tensor[(1, 4)] { matmul(%x, %w) }" in
  let rng = Rng.create 1 in
  expect_runtime_error "missing input" (fun () ->
      run_src src ~inputs:[ "x" ]
        ~weights:[ "w", Tensor.random rng [ 4; 4 ] ]
        ~instances:[ [] ])

let test_missing_weight_fails () =
  let src = "def @main(%w: Tensor[(4, 4)], %x: Tensor[(1, 4)]) -> Tensor[(1, 4)] { matmul(%x, %w) }" in
  let rng = Rng.create 1 in
  expect_runtime_error "unknown weight" (fun () ->
      run_src src ~inputs:[ "x" ] ~weights:[] ~instances:[ tensor_input rng ])

let test_wrong_input_shape_fails () =
  (* Declared Tensor[(1,4)] but the caller supplies (1,5): the kernel's
     shape rules reject it at invocation. *)
  let src = "def @main(%w: Tensor[(4, 4)], %x: Tensor[(1, 4)]) -> Tensor[(1, 4)] { matmul(%x, %w) }" in
  let rng = Rng.create 1 in
  match
    run_src src ~inputs:[ "x" ]
      ~weights:[ "w", Tensor.random rng [ 4; 4 ] ]
      ~instances:[ [ "x", Driver.Htensor (Tensor.random rng [ 1; 5 ]) ] ]
  with
  | _ -> Alcotest.fail "expected a shape error"
  | exception Acrobat_ir.Op.Shape_error _ -> ()
  | exception Shape.Mismatch _ -> ()

let test_interp_match_failure () =
  (* A wildcard-less match over only Cons applied to Nil fails at runtime
     with a diagnosable error rather than looping. *)
  let src =
    {|
def @main(%w: Tensor[(4, 4)], %xs: List[Tensor[(1, 4)]]) -> Tensor[(1, 4)] {
  match (%xs) {
    Cons(%h, %t) => matmul(%h, %w)
  }
}
|}
  in
  let rng = Rng.create 1 in
  expect_runtime_error "match" (fun () ->
      run_src src ~inputs:[ "xs" ]
        ~weights:[ "w", Tensor.random rng [ 4; 4 ] ]
        ~instances:[ [ "xs", Driver.Hlist [] ] ])

let test_executor_reports_dependency_violation () =
  (* Hand-build a DFG whose recorded depths invert a dependency: the
     executor's materialization check must catch it. *)
  let device = Device.create () in
  let policy =
    { Executor.gather_fusion = true; quality = (fun _ -> 0.8); compute_values = false;
      detect_dynamic_sharing = false }
  in
  let rt = Runtime.create ~device ~scheduler:Config.Inline_depth ~policy ~seed:1 ~instances:1 in
  let reg = Kernel.registry () in
  let src_k =
    let b = Kernel.builder () in
    let t = Kernel.add_instr b (Acrobat_ir.Op.Constant { shape = [ 1; 2 ]; value = 1.0 }) [] in
    Kernel.finish reg b ~name:"src" ~nargs:0 ~roles:[||] ~shared_binds:[] ~out_tmps:[| t |]
      ~fusion:true ~horizontal:false
  in
  let sig_k =
    let b = Kernel.builder () in
    let t = Kernel.add_instr b Acrobat_ir.Op.Sigmoid [ Kernel.Arg 0 ] in
    Kernel.finish reg b ~name:"sig" ~nargs:1 ~roles:[| Kernel.Batched |] ~shared_binds:[]
      ~out_tmps:[| t |] ~fusion:true ~horizontal:false
  in
  (* Producer recorded at depth 5, consumer at depth 0: inverted. *)
  let producer =
    Runtime.invoke rt ~kernel:src_k ~args:[||] ~instance:0 ~phase:0 ~depth:5 ~sig_key:"s"
  in
  let _ =
    Runtime.invoke rt ~kernel:sig_k ~args:[| producer.(0) |] ~instance:0 ~phase:0 ~depth:0
      ~sig_key:"c"
  in
  expect_runtime_error "not materialized" (fun () -> Runtime.flush rt)

let test_closure_arity_mismatch () =
  let src =
    {|
def @apply(%f: fn(Tensor[(1, 4)], Tensor[(1, 4)]) -> Tensor[(1, 4)],
           %x: Tensor[(1, 4)]) -> Tensor[(1, 4)] {
  %f(%x, %x)
}
def @main(%w: Tensor[(4, 4)], %x: Tensor[(1, 4)]) -> Tensor[(1, 4)] {
  @apply(fn(%a: Tensor[(1, 4)], %b: Tensor[(1, 4)]) { %a + %b }, %x)
}
|}
  in
  (* Well-typed program: runs fine — the arity machinery is exercised by the
     type checker; here just confirm the closure path executes. *)
  let rng = Rng.create 1 in
  let r =
    run_src src ~inputs:[ "x" ]
      ~weights:[ "w", Tensor.random rng [ 4; 4 ] ]
      ~instances:[ tensor_input rng ]
  in
  check_int "one output" 1 (List.length r.Driver.outputs)

let test_scalar_accounting_mode_is_zero () =
  (* scalar() without value computation returns 0.0 rather than crashing
     (documented accounting-only semantics). *)
  let src =
    {|
def @main(%w: Tensor[(4, 1)], %x: Tensor[(1, 4)]) -> Tensor[(1, 4)] {
  let %s = scalar(matmul(%x, %w));
  if (%s < 100.0) { sigmoid(%x) } else { tanh(%x) }
}
|}
  in
  let rng = Rng.create 1 in
  let compiled = compile ~inputs:[ "x" ] src in
  let r =
    run compiled
      ~weights:[ "w", Tensor.random rng [ 4; 1 ] ]
      ~instances:[ tensor_input rng ] ()
  in
  check_int "ran to completion" 1 (List.length r.Driver.outputs)

let suite =
  [
    Alcotest.test_case "choice(0) fails diagnosably" `Quick test_choice_zero_fails;
    Alcotest.test_case "missing input" `Quick test_missing_input_fails;
    Alcotest.test_case "missing weight" `Quick test_missing_weight_fails;
    Alcotest.test_case "wrong input shape" `Quick test_wrong_input_shape_fails;
    Alcotest.test_case "match failure at runtime" `Quick test_interp_match_failure;
    Alcotest.test_case "executor catches inverted depths" `Quick
      test_executor_reports_dependency_violation;
    Alcotest.test_case "closures through function params" `Quick test_closure_arity_mismatch;
    Alcotest.test_case "scalar() in accounting mode" `Quick test_scalar_accounting_mode_is_zero;
  ]
