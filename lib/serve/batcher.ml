(** Batch assembly policies: when to stop waiting and launch.

    The batcher answers one question, asked whenever the device is free and
    requests are queued: flush how many now, or wait until when? Three
    policies:

    - {b Batch1}: execute each request alone (the no-cross-request-batching
      baseline — what an offline engine grafted onto a server does).
    - {b Fixed}: Triton-style [max_batch] with a [max_wait_us] timeout on
      the oldest queued request, so a partial batch still launches.
    - {b Adaptive}: sizes batches from the observed arrival rate and a
      learned per-batch latency model. The target is the work that arrives
      during one batch's own service time — the fixed point of
      [k = rate * latency(k)] — which keeps the device saturated under load
      without waiting for arrivals that are not coming.

    The latency model [latency(k) = fixed + per_item * k] is seeded from the
    device {!Acrobat_device.Cost_model} (launch + API overhead for the fixed
    part) and refined online from measured batch completions, so the policy
    needs no offline profiling pass. *)

module Cost_model = Acrobat_device.Cost_model

type policy =
  | Batch1
  | Fixed of { max_batch : int; max_wait_us : float }
  | Adaptive of { max_batch : int; max_wait_us : float }

let policy_name = function
  | Batch1 -> "batch1"
  | Fixed _ -> "fixed"
  | Adaptive _ -> "adaptive"

let pp_policy ppf = function
  | Batch1 -> Fmt.pf ppf "batch1"
  | Fixed { max_batch; max_wait_us } ->
    Fmt.pf ppf "fixed(max %d, wait %.0fus)" max_batch max_wait_us
  | Adaptive { max_batch; max_wait_us } ->
    Fmt.pf ppf "adaptive(max %d, wait %.0fus)" max_batch max_wait_us

type t = {
  policy : policy;
  mutable ewma_interarrival_us : float;
  mutable have_interarrival : bool;
  mutable last_arrival_us : float;
  mutable have_arrival : bool;
  (* Online per-batch latency model: latency(k) ~ fixed + per_item * k. *)
  mutable lat_fixed_us : float;
  mutable lat_per_item_us : float;
  mutable observed_batches : int;
}

(* EWMA smoothing for arrivals, learning rate for the latency model. *)
let alpha = 0.2

let create ?(cost = Cost_model.default) policy =
  {
    policy;
    ewma_interarrival_us = 0.0;
    have_interarrival = false;
    last_arrival_us = 0.0;
    have_arrival = false;
    (* Cost-model seed: a batch pays at least one launch + one API call;
       per-item work is unknown until measured, so start with a kernel
       launch worth per instance. *)
    lat_fixed_us = cost.Cost_model.kernel_launch_us +. cost.Cost_model.api_call_us;
    lat_per_item_us = cost.Cost_model.kernel_launch_us;
    observed_batches = 0;
  }

(** Feed one arrival timestamp (every admission attempt, shed or not —
    offered load is what matters for sizing). *)
let observe_arrival t ~now_us =
  if t.have_arrival then begin
    let dt = Float.max 0.0 (now_us -. t.last_arrival_us) in
    if t.have_interarrival then
      t.ewma_interarrival_us <-
        ((1.0 -. alpha) *. t.ewma_interarrival_us) +. (alpha *. dt)
    else begin
      t.ewma_interarrival_us <- dt;
      t.have_interarrival <- true
    end
  end;
  t.last_arrival_us <- now_us;
  t.have_arrival <- true

(** Feed one measured batch completion: refine the latency model with a
    stochastic-gradient step on the squared prediction error. *)
let observe_batch t ~size ~latency_us =
  let k = float_of_int (max 1 size) in
  let err = latency_us -. (t.lat_fixed_us +. (t.lat_per_item_us *. k)) in
  t.lat_fixed_us <- Float.max 0.0 (t.lat_fixed_us +. (alpha *. err *. 0.5));
  t.lat_per_item_us <- Float.max 0.0 (t.lat_per_item_us +. (alpha *. err *. 0.5 /. k));
  t.observed_batches <- t.observed_batches + 1

let estimated_latency_us t ~batch = t.lat_fixed_us +. (t.lat_per_item_us *. float_of_int batch)

(** Estimated offered load, requests per microsecond (0 until two arrivals
    have been seen). *)
let arrival_rate_per_us t =
  if t.have_interarrival && t.ewma_interarrival_us > 1e-9 then
    1.0 /. t.ewma_interarrival_us
  else 0.0

(** The adaptive target: smallest [k] with [k >= rate * latency(k)], found
    by fixed-point iteration from 1, clamped to [max_batch]. *)
let target_batch t ~max_batch =
  let rate = arrival_rate_per_us t in
  if rate <= 0.0 then 1
  else begin
    let k = ref 1 in
    for _ = 1 to 4 do
      let demand = rate *. estimated_latency_us t ~batch:!k in
      k := max 1 (min max_batch (int_of_float (Float.ceil demand)))
    done;
    !k
  end

type decision =
  | Flush of int  (** Launch now with up to this many requests. *)
  | Wait_until of float  (** Re-decide at this virtual time (or on arrival). *)

(** [decide] assumes the device is free and the queue is non-empty. The
    caller re-decides on every arrival and completion, so a [Wait_until] is
    only a timeout fallback, not the sole wake-up source. *)
let decide t ~now_us ~queue_len ~oldest_arrival_us : decision =
  match t.policy with
  | Batch1 -> Flush 1
  | Fixed { max_batch; max_wait_us } ->
    (* The timeout test must be written as [now >= oldest + max_wait] — the
       exact float expression scheduled below — so the wake-up event fired at
       that time always flushes. Testing [now - oldest >= max_wait] instead
       can round 1 ulp short and re-schedule a wake at the current time,
       spinning the event loop forever at one virtual instant. *)
    if queue_len >= max_batch then Flush max_batch
    else if now_us >= oldest_arrival_us +. max_wait_us then Flush queue_len
    else Wait_until (oldest_arrival_us +. max_wait_us)
  | Adaptive { max_batch; max_wait_us } ->
    if queue_len >= max_batch then Flush max_batch
    else
      let target = target_batch t ~max_batch in
      if queue_len >= target then Flush queue_len
      else if now_us >= oldest_arrival_us +. max_wait_us then Flush queue_len
      else Wait_until (oldest_arrival_us +. max_wait_us)
