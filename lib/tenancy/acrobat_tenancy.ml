(** Multi-tenant many-model serving: the whole catalog behind one elastic
    cluster.

    - {!Tenant}: the registry — per-tenant model, traffic, SLO, quota and
      fair-share weight, plus the CLI spec parser.
    - {!Fairshare}: weighted fair queueing over virtual device work.
    - {!Autoscaler}: the queue-delay-driven replica control loop.
    - {!Dispatcher}: the model-aware dispatcher tying them together on the
      serving layer's event loop. *)

module Tenant = Tenant
module Fairshare = Fairshare
module Autoscaler = Autoscaler
module Dispatcher = Dispatcher
