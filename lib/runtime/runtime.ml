(** The runtime façade engines program against: lazy DFG construction,
    flushing through a scheduler, shared-tensor materialization, input
    upload, tensor-dependent decisions and PGO profiling. *)

open Value
open Acrobat_tensor
module Device = Acrobat_device.Device
module Cost_model = Acrobat_device.Cost_model
open Acrobat_compiler

type t = {
  device : Device.t;
  scheduler : Config.scheduler;
  policy : Executor.policy;
  mutable pending : node list;  (** Reversed insertion order. *)
  mutable next_id : int;
  weights : (string, handle) Hashtbl.t;
  consts : (string, handle) Hashtbl.t;
  mutable rngs : Rng.t array;  (** Per-instance decision streams (§E.1). *)
  profile : (int, int ref * float ref * int ref) Hashtbl.t;
      (** kernel id -> (invocations, total flops, max shared-arg elems):
          the PGO profile. *)
  mutable flushes : int;
}

let create ~device ~scheduler ~(policy : Executor.policy) ~seed ~instances =
  {
    device;
    scheduler;
    policy;
    pending = [];
    next_id = 0;
    weights = Hashtbl.create 16;
    consts = Hashtbl.create 16;
    rngs = Array.init instances (fun i -> Rng.create ((seed * 1_000_003) + i));
    profile = Hashtbl.create 32;
    flushes = 0;
  }

(** Re-key the per-instance decision streams before execution. By default
    instance [i] draws from a stream derived from its batch position; the
    serving integrity layer re-keys streams by stable {e request ids}, so a
    request draws the same pseudo-random decisions no matter which peers it
    is batched with — the property that makes its result fingerprint
    batch-composition-invariant and lets an unbatched audit re-execution
    reproduce it exactly. [keys.(i)] keys instance [i]'s stream. *)
let set_decision_keys t ~seed (keys : int array) =
  t.rngs <- Array.map (fun k -> Rng.create ((seed * 1_000_003) + k)) keys

let device t = t.device
let profiler t = Device.profiler t.device

let rng_for t instance = t.rngs.(instance)

(* --- Materialization of non-DFG tensors --- *)

(** Register a model weight (resident on the device; not charged per run). *)
let set_weight t name tensor =
  let elems = Tensor.numel tensor in
  let addr = Device.alloc t.device ~elems in
  Hashtbl.replace t.weights name
    (Hmat { tensor = Some tensor; addr; shape = Tensor.shape tensor })

let weight t name =
  match Hashtbl.find_opt t.weights name with
  | Some h -> h
  | None -> fail "unknown weight %S" name

(** Reusable constant tensors are materialized once (§E.4). *)
let const_handle t ~shape ~value =
  let key = Fmt.str "%a=%g" Shape.pp shape value in
  match Hashtbl.find_opt t.consts key with
  | Some h -> h
  | None ->
    let elems = Shape.numel shape in
    let addr = Device.alloc t.device ~elems in
    let h = Hmat { tensor = Some (Tensor.full shape value); addr; shape } in
    Hashtbl.replace t.consts key h;
    h

let shared_handle t : Kernel.shared_bind -> handle = function
  | Kernel.Bparam p -> weight t p
  | Kernel.Bconst { shape; value } -> const_handle t ~shape ~value

(** Upload per-instance input tensors. [batched] models ACROBAT's batched
    memory transfers (§D.3: one host->device call); DyNet pays one call per
    tensor. *)
let upload_inputs t ~batched (tensors : Tensor.t list) : handle list =
  let total_bytes =
    List.fold_left (fun acc x -> acc + (Tensor.numel x * Cost_model.bytes_per_elem)) 0 tensors
  in
  if batched then Device.memcpy t.device ~bytes:total_bytes
  else
    List.iter
      (fun x -> Device.memcpy t.device ~bytes:(Tensor.numel x * Cost_model.bytes_per_elem))
      tensors;
  List.map
    (fun x ->
      let addr = Device.alloc t.device ~elems:(Tensor.numel x) in
      Hmat { tensor = Some x; addr; shape = Tensor.shape x })
    tensors

(** Download result tensors to the host. *)
let download t ~batched (hs : handle list) =
  let bytes h = Shape.numel (handle_shape h) * Cost_model.bytes_per_elem in
  if batched then
    Device.memcpy t.device ~bytes:(List.fold_left (fun acc h -> acc + bytes h) 0 hs)
  else List.iter (fun h -> Device.memcpy t.device ~bytes:(bytes h)) hs

(* --- DFG construction --- *)

(** Standard batching signature: kernel identity + argument shapes. *)
let acrobat_sig (kernel : Kernel.t) (arg_shapes : Shape.t array) =
  Fmt.str "k%d|%a" kernel.id Fmt.(array ~sep:(any ";") Shape.pp) arg_shapes

(** Append one DFG node; returns handles on its outputs. *)
let invoke t ~(kernel : Kernel.t) ~(args : handle array) ~instance ~phase ~depth
    ~(sig_key : string) : handle array =
  Device.charge_dfg_node t.device;
  let arg_shapes = Array.map handle_shape args in
  let out_shapes = Kernel.out_shapes kernel arg_shapes in
  let group_flops = Kernel.group_flops kernel arg_shapes in
  let group_bytes = Kernel.group_traffic kernel arg_shapes in
  let node =
    {
      id = t.next_id;
      kernel;
      args;
      phase;
      depth;
      instance;
      group_flops;
      group_bytes;
      sig_key;
      seq = t.next_id;
      out_shapes;
      outs = None;
    }
  in
  t.next_id <- t.next_id + 1;
  t.pending <- node :: t.pending;
  (match t.scheduler with
  | Config.Inline_depth -> Device.charge_bucket_push t.device
  | Config.Runtime_depth | Config.Agenda -> ());
  let shared_elems =
    Array.to_list (Array.mapi (fun i role -> role, arg_shapes.(i)) kernel.roles)
    |> List.fold_left
         (fun acc (role, shape) ->
           if role = Kernel.Shared then max acc (Shape.numel shape) else acc)
         0
  in
  (match Hashtbl.find_opt t.profile kernel.id with
  | Some (count, fl, se) ->
    incr count;
    fl := !fl +. List.fold_left ( +. ) 0.0 group_flops;
    se := max !se shared_elems
  | None ->
    Hashtbl.replace t.profile kernel.id
      (ref 1, ref (List.fold_left ( +. ) 0.0 group_flops), ref shared_elems));
  Array.mapi (fun i _ -> Hnode (node, i)) out_shapes

(** Schedule and execute everything pending. *)
let flush t =
  match t.pending with
  | [] -> ()
  | pending ->
    t.pending <- [];
    t.flushes <- t.flushes + 1;
    let batches = Scheduler.schedule t.scheduler t.device (List.rev pending) in
    List.iter (Executor.exec_batch t.device t.policy ~rand_for:(rng_for t)) batches

let flush_count t = t.flushes
let has_pending t = t.pending <> []

(** Force a handle without fibers: flush if it is still pending. *)
let force t h =
  if not (handle_ready h) then flush t;
  match handle_out h with
  | Some o -> o
  | None -> fail "handle still pending after flush"

(** Read a forced tensor's scalar value ([0.0] in accounting-only mode). *)
let scalar_value t h =
  let o = force t h in
  match o.tensor with
  | Some x -> Tensor.item x
  | None -> 0.0

(* --- Tensor-dependent decisions (paper §E.1) --- *)

(** Draw the next pseudo-random decision for [instance]. The caller is
    responsible for the flush barrier (fiber suspension). *)
let decision_int t ~instance n =
  if n <= 0 then fail "choice(%d): the number of alternatives must be positive" n;
  Rng.int (rng_for t instance) n

let decision_bool t ~instance p = Rng.bernoulli (rng_for t instance) p


(* --- PGO --- *)

(** Observed per-kernel statistics: (kernel id, invocation count, mean
    per-invocation flops, max shared-argument elements). *)
let profile t : (int * float * float * int) list =
  Hashtbl.fold
    (fun id (count, fl, se) acc ->
      (id, float_of_int !count, !fl /. float_of_int !count, !se) :: acc)
    t.profile []
  |> List.sort compare
