(** Bechamel micro-benchmarks: real wall-clock time of the hot paths behind
    each table's experiment — one [Test.make] per table/figure exercising a
    miniature version of its workload, plus the core runtime primitives
    (schedulers, AOT vs VM dispatch, parser, kernel execution). *)

open Bechamel
open Toolkit
open Acrobat

let tiny id = Models.tiny id

let run_tiny ?(batch = 4) ~kind id =
  let model = tiny id in
  let compiled = compile ~framework:kind ~inputs:model.Model.inputs model.Model.source in
  let weights = model.Model.gen_weights 1 in
  let instances = gen_batch model ~batch ~seed:3 in
  fun () -> ignore (run compiled ~weights ~instances ())

let run_tiny_mode ~mode id =
  let model = tiny id in
  let compiled = compile ~inputs:model.Model.inputs model.Model.source in
  let weights = model.Model.gen_weights 1 in
  let instances = gen_batch model ~batch:4 ~seed:3 in
  fun () ->
    ignore
      (Driver.run ~mode ~policy:Policy.acrobat_policy ~quality:compiled.quality
         ~lprog:compiled.lprog ~weights ~instances ())

let acrobat_kind = Frameworks.Acrobat Config.acrobat
let dynet_kind = Frameworks.Dynet { improved = false; scheduler = Config.Agenda }

let tests () =
  let model = tiny "rnn" in
  let parse_src = model.Model.source in
  [
    (* One per table/figure: a miniature of its hot path. *)
    Test.make ~name:"table4:treelstm-acrobat" (Staged.stage (run_tiny ~kind:acrobat_kind "treelstm"));
    Test.make ~name:"table4:treelstm-dynet" (Staged.stage (run_tiny ~kind:dynet_kind "treelstm"));
    Test.make ~name:"table5:birnn-breakdown" (Staged.stage (run_tiny ~kind:acrobat_kind "birnn"));
    Test.make ~name:"table6:mvrnn-acrobat" (Staged.stage (run_tiny ~kind:acrobat_kind "mvrnn"));
    Test.make ~name:"table7:rnn-vm" (Staged.stage (run_tiny_mode ~mode:Driver.Vm_mode "rnn"));
    Test.make ~name:"table7:rnn-aot" (Staged.stage (run_tiny_mode ~mode:Driver.Aot_mode "rnn"));
    Test.make ~name:"table8:mvrnn-dynet" (Staged.stage (run_tiny ~kind:dynet_kind "mvrnn"));
    Test.make ~name:"table9:autosched-500"
      (Staged.stage (fun () ->
           ignore
             (Autosched.search ~id:7 ~flops:1.0e6 ~iters:500 ())));
    Test.make ~name:"fig5:drnn-ablated"
      (Staged.stage
         (run_tiny ~kind:(Frameworks.Acrobat { Config.acrobat with gather_fusion = false }) "drnn"));
    Test.make ~name:"fig9:stackrnn-pytorch" (Staged.stage (run_tiny ~kind:Frameworks.Pytorch "stackrnn"));
    (* Core primitives. *)
    Test.make ~name:"prim:parse+typecheck"
      (Staged.stage (fun () -> ignore (Ir.Typecheck.parse_and_check parse_src)));
    Test.make ~name:"prim:compile-pipeline"
      (Staged.stage (fun () ->
           ignore (Lower.compile ~inputs:model.Model.inputs model.Model.source)));
    Test.make ~name:"prim:matmul-64"
      (let rng = Rng.create 5 in
       let a = Tensor.random rng [ 64; 64 ] and b = Tensor.random rng [ 64; 64 ] in
       Staged.stage (fun () -> ignore (Ops.matmul a b)));
  ]

let run () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"acrobat" (tests ())) in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name o acc -> (name, Analyze.OLS.estimates o) :: acc) results []
    |> List.sort compare
  in
  List.iter
    (fun (name, est) ->
      match est with
      | Some [ ns ] -> Printf.printf "%-28s %12.1f ns/run (%.3f ms)\n" name ns (ns /. 1.0e6)
      | _ -> Printf.printf "%-28s (no estimate)\n" name)
    rows
