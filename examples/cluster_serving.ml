(** Replicated serving: failover and hedged requests.

    [serving.ml] shows one survivable server; this example puts three
    replicas of the same compiled TreeLSTM behind the cluster dispatcher
    and demonstrates the two mechanisms a single server cannot provide:

    - {b Failover}: replica 0 carries a fault plan harsh enough to open a
      lone server's circuit breaker (75% kernel faults plus resets). Served
      alone it loses almost every request; in the cluster the health
      monitor fails it over and its queued and in-flight work is requeued
      onto the healthy peers, so cluster goodput stays near 100%.
    - {b Hedging}: all three replicas occasionally straggle 8x. Arming a
      hedge at the p90 of recent latency duplicates just the slow tail onto
      a second replica; first completion wins, and p99 drops.

    Run with: [dune exec examples/cluster_serving.exe] *)

open Acrobat

let requests = 150
let seed = 11
let process = Serve.Traffic.Poisson { rate_per_s = 4000.0 }

let pp_replicas reports =
  List.iter
    (fun r ->
      Fmt.pr "  replica %d (%s): completed %d, batches %d@." r.rr_id r.rr_health
        r.rr_summary.Serve.Stats.s_completed r.rr_summary.Serve.Stats.s_batches)
    reports

let () =
  let model = Models.tiny "treelstm" in
  let faulty = Faults.parse "seed=7,kernel=0.75,reset=0.1" in
  Fmt.pr "Replicated serving of %s, %d requests@.@." model.Model.name requests;

  (* One server under the faulty plan: the breaker opens and goodput
     collapses. *)
  let alone =
    serve_model ~iters:50 ~faults:faulty ~process ~requests ~seed model
  in
  Fmt.pr "--- single server, faulty device ---@.%a@.@." Serve.Stats.pp_summary
    alone.sv_summary;

  (* Three replicas, same plan on replica 0 only: failover absorbs it. *)
  let cluster =
    serve_cluster ~iters:50 ~replicas:3 ~fault_plans:[ faulty ] ~process ~requests
      ~seed model
  in
  Fmt.pr "--- 3 replicas, same plan on replica 0 ---@.%a@." Serve.Stats.pp_summary
    cluster.cr_summary;
  pp_replicas cluster.cr_replicas;
  Fmt.pr "@.";

  (* Stragglers everywhere: hedging at p90 cuts the tail. *)
  let strag i = Faults.parse (Fmt.str "seed=%d,straggler=0.15x8" (5 + i)) in
  let plans = [ strag 0; strag 1; strag 2 ] in
  let plain =
    serve_cluster ~iters:50 ~replicas:3 ~fault_plans:plans ~process ~requests ~seed
      model
  in
  let hedged =
    serve_cluster ~iters:50 ~replicas:3 ~fault_plans:plans ~hedge_percentile:90.0
      ~process ~requests ~seed model
  in
  Fmt.pr "--- stragglers, no hedging ---@.%a@.@." Serve.Stats.pp_summary
    plain.cr_summary;
  Fmt.pr "--- stragglers, hedge at p90 ---@.%a@.@." Serve.Stats.pp_summary
    hedged.cr_summary;
  Fmt.pr "hedging: p99 %.2f ms -> %.2f ms (%d hedges, %d wins)@."
    plain.cr_summary.Serve.Stats.s_p99_ms hedged.cr_summary.Serve.Stats.s_p99_ms
    hedged.cr_summary.Serve.Stats.s_hedges hedged.cr_summary.Serve.Stats.s_hedge_wins
