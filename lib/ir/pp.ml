(** Pretty-printer for the input language. [Parser.program (Fmt.str "%a"
    pp_program p)] reparses to an equal tree (modulo elaboration) — a
    property the test suite checks on random programs. *)

open Ast

let pp_pat ppf = function
  | Pnil -> Fmt.string ppf "Nil"
  | Pcons (h, t) -> Fmt.pf ppf "Cons(%%%s, %%%s)" h t
  | Pleaf v -> Fmt.pf ppf "Leaf(%%%s)" v
  | Pnode (l, r) -> Fmt.pf ppf "Node(%%%s, %%%s)" l r
  | Pwild -> Fmt.string ppf "_"

let prim_name (op : Op.t) args_pp ppf args =
  match op with
  | Op.Constant { shape; value } when value = 0.0 ->
    Fmt.pf ppf "zeros((%a))" Fmt.(list ~sep:(any ", ") int) shape
  | Op.Constant { shape; value } when value = 1.0 ->
    Fmt.pf ppf "ones((%a))" Fmt.(list ~sep:(any ", ") int) shape
  | Op.Constant { shape; value } ->
    Fmt.pf ppf "const((%a), %g)" Fmt.(list ~sep:(any ", ") int) shape value
  | Op.Random { shape } -> Fmt.pf ppf "random((%a))" Fmt.(list ~sep:(any ", ") int) shape
  | Op.Slice { lo; hi } -> begin
    match args with
    | [ a ] -> Fmt.pf ppf "slice(%a, %d, %d)" args_pp a lo hi
    | _ -> assert false
  end
  | Op.Concat _ -> Fmt.pf ppf "concat(%a)" Fmt.(list ~sep:(any ", ") args_pp) args
  | op -> Fmt.pf ppf "%s(%a)" (Op.name op) Fmt.(list ~sep:(any ", ") args_pp) args

let rec pp_expr ppf (e : expr) =
  match e with
  | Var x -> Fmt.pf ppf "%%%s" x
  | Global g -> Fmt.pf ppf "@%s" g
  | Int_lit n -> Fmt.int ppf n
  | Float_lit f ->
    (* Keep a decimal point so the literal re-lexes as a float. *)
    let s = Fmt.str "%.12g" f in
    let s =
      if String.contains s '.' then s
      else
        match String.index_opt s 'e' with
        | Some i -> String.sub s 0 i ^ ".0" ^ String.sub s i (String.length s - i)
        | None -> s ^ ".0"
    in
    Fmt.string ppf s
  | Bool_lit b -> Fmt.bool ppf b
  | Let (x, rhs, body) ->
    Fmt.pf ppf "@[<v>let %%%s = %a;@,%a@]" x pp_expr rhs pp_expr body
  | If (c, a, b) ->
    Fmt.pf ppf "@[<v2>if (%a) {@,%a@;<1 -2>} else {@,%a@;<1 -2>}@]" pp_expr c pp_expr a
      pp_expr b
  | Prim (op, args) -> prim_name op pp_expr ppf args
  | Call (f, args) -> Fmt.pf ppf "%a(%a)" pp_expr f Fmt.(list ~sep:(any ", ") pp_expr) args
  | Fn (params, body) ->
    Fmt.pf ppf "fn(%a) { %a }"
      Fmt.(list ~sep:(any ", ") (fun ppf (x, t) -> Fmt.pf ppf "%%%s: %a" x Ty.pp t))
      params pp_expr body
  | Match (s, cases) ->
    Fmt.pf ppf "@[<v2>match (%a) {@,%a@;<1 -2>}@]" pp_expr s
      Fmt.(
        list ~sep:(any ",@,") (fun ppf (p, e) -> Fmt.pf ppf "@[<v2>%a =>@ %a@]" pp_pat p pp_expr e))
      cases
  | Nil -> Fmt.string ppf "Nil"
  | Cons (a, b) -> Fmt.pf ppf "Cons(%a, %a)" pp_expr a pp_expr b
  | Leaf a -> Fmt.pf ppf "Leaf(%a)" pp_expr a
  | Node (a, b) -> Fmt.pf ppf "Node(%a, %a)" pp_expr a pp_expr b
  | Tuple es -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") pp_expr) es
  | Proj (a, k) -> Fmt.pf ppf "%a.%d" pp_atomish a k
  | Binop (op, a, b) ->
    (* Operands that swallow the rest of the expression (let/if/match)
       must be parenthesized to keep the tree. *)
    Fmt.pf ppf "(%a %s %a)" pp_operand a (binop_name op) pp_operand b
  | Not a -> Fmt.pf ppf "!(%a)" pp_expr a
  | Concurrent es -> Fmt.pf ppf "concurrent(%a)" Fmt.(list ~sep:(any ", ") pp_expr) es
  | Map (f, xs) -> Fmt.pf ppf "map(%a, %a)" pp_expr f pp_expr xs
  | Scalar a -> Fmt.pf ppf "scalar(%a)" pp_expr a
  | Choice a -> Fmt.pf ppf "choice(%a)" pp_expr a
  | Coin a -> Fmt.pf ppf "coin(%a)" pp_expr a

and pp_operand ppf e =
  match e with
  | Let _ | If _ | Match _ | Fn _ -> Fmt.pf ppf "(%a)" pp_expr e
  | _ -> pp_expr ppf e

and pp_atomish ppf e =
  (* A nested projection needs parentheses: [.0.1] would lex as a float. *)
  match e with
  | Var _ | Global _ | Tuple _ -> pp_expr ppf e
  | _ -> Fmt.pf ppf "(%a)" pp_expr e

let pp_def ppf (d : def) =
  Fmt.pf ppf "@[<v2>def @@%s(%a) -> %a {@,%a@;<1 -2>}@]" d.name
    Fmt.(list ~sep:(any ", ") (fun ppf (x, t) -> Fmt.pf ppf "%%%s: %a" x Ty.pp t))
    d.params Ty.pp d.ret pp_expr d.body

let pp_program ppf (p : program) = Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:(any "@,@,") pp_def) p.defs

let program_to_string p = Fmt.str "%a" pp_program p
