(** Optimization configuration.

    One flag per optimization the paper ablates (Fig. 5) or discusses, so the
    benchmark harness can progressively enable them. [acrobat] is the full
    configuration used for the headline numbers; [baseline] disables
    everything (pure dynamic batching, DyNet-style granularity). *)

type scheduler =
  | Inline_depth
      (** ACROBAT: depths computed inline during DFG construction (§4.1);
          scheduling is an O(1) bucket push per node. *)
  | Runtime_depth
      (** Depths computed by a graph traversal at flush time (what ACROBAT
          falls back to when inline depth computation is disabled). *)
  | Agenda
      (** DyNet's agenda-based scheme (Neubig et al. 2017b): maintain the
          ready set and repeatedly launch the most numerous compatible
          group. *)

let scheduler_name = function
  | Inline_depth -> "inline-depth"
  | Runtime_depth -> "runtime-depth"
  | Agenda -> "agenda"

type t = {
  kernel_fusion : bool;  (** Standard (vertical) kernel fusion, §7.3. *)
  horizontal_fusion : bool;  (** Fuse sibling ops sharing an input, §C.1. *)
  grain_coarsening : bool;  (** Schedule at static-block granularity, §B.2. *)
  scheduler : scheduler;
  ghost_ops : bool;  (** Pad conditional branches, §4.1/§B.3. *)
  program_phases : bool;  (** Barriers between semantic stages, §4.1/§B.3. *)
  gather_fusion : bool;  (** Fuse memory gathers into batched kernels, §5.2. *)
  hoisting : bool;  (** Static operator hoisting out of recursion, §B.1. *)
  context_sensitive : bool;
      (** 1-context-sensitive taint analysis + code duplication (§5.1, §C.1).
          Off = context-insensitive: functions reused with different
          parameters lose parameter-reuse knowledge. *)
  parameter_reuse : bool;
      (** Static shared-argument inference. Off = all arguments treated as
          per-instance (batched), as a fully dynamic system would without
          its heuristics. *)
  constant_reuse : bool;  (** Materialize constant tensors once, §E.4. *)
  fibers : bool;
      (** Concurrent execution of instances (and forked instance
          parallelism) under tensor-dependent control flow, §4.2. *)
  autosched_iters : int;  (** Auto-scheduler iteration budget (§D.1). *)
  pgo : bool;  (** Profile-guided kernel priorities for the auto-scheduler. *)
}

let acrobat =
  {
    kernel_fusion = true;
    horizontal_fusion = true;
    grain_coarsening = true;
    scheduler = Inline_depth;
    ghost_ops = true;
    program_phases = true;
    gather_fusion = true;
    hoisting = true;
    context_sensitive = true;
    parameter_reuse = true;
    constant_reuse = true;
    fibers = true;
    autosched_iters = 1000;
    pgo = true;
  }

(** Everything off: per-operator scheduling, explicit gathers, runtime depth
    computation. The starting bar of Fig. 5. *)
let baseline =
  {
    kernel_fusion = false;
    horizontal_fusion = false;
    grain_coarsening = false;
    scheduler = Runtime_depth;
    ghost_ops = false;
    program_phases = false;
    gather_fusion = false;
    hoisting = false;
    context_sensitive = true;
    parameter_reuse = true;
    constant_reuse = true;
    fibers = true;
    autosched_iters = 1000;
    pgo = true;
  }

let pp ppf t =
  let b = Fmt.bool in
  Fmt.pf ppf
    "@[<v>fusion=%a horiz=%a coarsen=%a sched=%s ghost=%a phases=%a gather_fusion=%a \
     hoist=%a ctx=%a reuse=%a const=%a fibers=%a iters=%d pgo=%a@]"
    b t.kernel_fusion b t.horizontal_fusion b t.grain_coarsening
    (scheduler_name t.scheduler) b t.ghost_ops b t.program_phases b t.gather_fusion b
    t.hoisting b t.context_sensitive b t.parameter_reuse b t.constant_reuse b t.fibers
    t.autosched_iters b t.pgo
