(** Deterministic execution tracing in the Chrome [trace_event] format.

    Every layer of the stack (device, runtime, compiler, serving) emits
    spans and instants through a {!t} handle. The disabled handle ({!null})
    makes every emission a no-op, so instrumented hot paths cost one branch
    when tracing is off and the untraced output of every tool stays exactly
    what it was.

    Timestamps are {e virtual} microseconds: the serving layer's event-loop
    clock, or the device profiler's accumulated simulated time for offline
    runs. Nothing reads the wall clock, so two runs with the same seed
    produce byte-identical traces — the property `make check` asserts.

    The export ({!to_json}) is the Chrome JSON Array / JSON Object format
    loadable in Perfetto or chrome://tracing: replicas map to [pid]s,
    requests and fibers to [tid]s, and phases used are ["X"] (complete
    span), ["i"] (instant), ["C"] (counter sample) and ["M"] (metadata
    naming the process tracks). *)

(** One emitted event. [ph] follows the trace_event phase codes. *)
type event = {
  ev_seq : int;  (** Emission order; ties at one timestamp sort by it. *)
  ev_ph : char;
  ev_name : string;
  ev_cat : string;
  ev_ts_us : float;
  ev_dur_us : float;  (** Only meaningful for ["X"] events. *)
  ev_pid : int;
  ev_tid : int;
  ev_args : (string * Json.t) list;
}

type t = {
  enabled : bool;
  mutable events : event list;  (** Reversed emission order. *)
  mutable next_seq : int;
  mutable pid : int;  (** Ambient process id (replica) for device emits. *)
  mutable tid : int;  (** Ambient thread id for device emits. *)
  mutable base_us : float;
      (** Offset added to device-relative timestamps: the serving layer sets
          it to the batch's virtual launch time before each execution, so a
          per-batch device clock lands on the global timeline. *)
}

(** The shared disabled tracer: every operation on it is a no-op. *)
let null = { enabled = false; events = []; next_seq = 0; pid = 0; tid = 0; base_us = 0.0 }

let create () = { null with enabled = true }

let enabled t = t.enabled

(** Set the ambient emission context (see {!t} field docs). Unset fields
    keep their current value. *)
let set_context ?pid ?tid ?base_us t =
  if t.enabled then begin
    Option.iter (fun p -> t.pid <- p) pid;
    Option.iter (fun i -> t.tid <- i) tid;
    Option.iter (fun b -> t.base_us <- b) base_us
  end

let base_us t = t.base_us

let push t ev = t.events <- ev :: t.events

(** Prefix [args] with tenant/model identity tags. The multi-tenant serving
    layer stamps request-lifecycle spans and instants with who they belong
    to, so per-tenant timelines filter cleanly in a trace viewer; either tag
    is omitted when absent, leaving single-tenant emissions unchanged. *)
let tag ?tenant ?model (args : (string * Json.t) list) =
  let tagged = match model with None -> args | Some m -> ("model", Json.Str m) :: args in
  match tenant with None -> tagged | Some t -> ("tenant", Json.Str t) :: tagged

let next_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

(** A complete span: [ts_us .. ts_us +. dur_us]. [ts_us] is absolute; use
    {!complete_rel} for device-relative timestamps. *)
let complete ?pid ?tid ?(args = []) ?(cat = "") t ~name ~ts_us ~dur_us =
  if t.enabled then
    push t
      {
        ev_seq = next_seq t;
        ev_ph = 'X';
        ev_name = name;
        ev_cat = cat;
        ev_ts_us = ts_us;
        ev_dur_us = Float.max 0.0 dur_us;
        ev_pid = Option.value ~default:t.pid pid;
        ev_tid = Option.value ~default:t.tid tid;
        ev_args = args;
      }

(** A complete span whose [ts_us] is relative to the ambient {!base_us} —
    the form the device uses, since its profiler clock restarts per batch. *)
let complete_rel ?pid ?tid ?args ?cat t ~name ~ts_us ~dur_us =
  if t.enabled then complete ?pid ?tid ?args ?cat t ~name ~ts_us:(t.base_us +. ts_us) ~dur_us

(** A zero-duration instant event at an absolute timestamp. *)
let instant ?pid ?tid ?(args = []) ?(cat = "") t ~name ~ts_us =
  if t.enabled then
    push t
      {
        ev_seq = next_seq t;
        ev_ph = 'i';
        ev_name = name;
        ev_cat = cat;
        ev_ts_us = ts_us;
        ev_dur_us = 0.0;
        ev_pid = Option.value ~default:t.pid pid;
        ev_tid = Option.value ~default:t.tid tid;
        ev_args = args;
      }

(** {!instant} with a {!base_us}-relative timestamp. *)
let instant_rel ?pid ?tid ?args ?cat t ~name ~ts_us =
  if t.enabled then instant ?pid ?tid ?args ?cat t ~name ~ts_us:(t.base_us +. ts_us)

(** A counter sample: Perfetto renders these as a value-over-time track. *)
let counter ?pid ?(args = []) t ~name ~ts_us =
  if t.enabled then
    push t
      {
        ev_seq = next_seq t;
        ev_ph = 'C';
        ev_name = name;
        ev_cat = "";
        ev_ts_us = ts_us;
        ev_dur_us = 0.0;
        ev_pid = Option.value ~default:t.pid pid;
        ev_tid = 0;
        ev_args = args;
      }

let metadata t ~meta_name ~pid ~tid ~value =
  push t
    {
      ev_seq = next_seq t;
      ev_ph = 'M';
      ev_name = meta_name;
      ev_cat = "";
      ev_ts_us = 0.0;
      ev_dur_us = 0.0;
      ev_pid = pid;
      ev_tid = tid;
      ev_args = [ "name", Json.Str value ];
    }

(** Name a [pid] track in the viewer (metadata event). *)
let name_process ?(pid = 0) t ~name =
  if t.enabled then metadata t ~meta_name:"process_name" ~pid ~tid:0 ~value:name

(** Name a [tid] track within a process. *)
let name_thread ?(pid = 0) ~tid t ~name =
  if t.enabled then metadata t ~meta_name:"thread_name" ~pid ~tid ~value:name

let event_count t = List.length t.events

(** Events in a canonical deterministic order: metadata first, then by
    (timestamp, emission sequence). *)
let events t =
  List.stable_sort
    (fun a b ->
      match Bool.compare (a.ev_ph <> 'M') (b.ev_ph <> 'M') with
      | 0 -> (
        match Float.compare a.ev_ts_us b.ev_ts_us with
        | 0 -> Int.compare a.ev_seq b.ev_seq
        | c -> c)
      | c -> c)
    (List.rev t.events)

let event_json (ev : event) : Json.t =
  let base =
    [
      "name", Json.Str ev.ev_name;
      "ph", Json.Str (String.make 1 ev.ev_ph);
      "ts", Json.Float ev.ev_ts_us;
      "pid", Json.Int ev.ev_pid;
      "tid", Json.Int ev.ev_tid;
    ]
  in
  let cat = if ev.ev_cat = "" then [] else [ "cat", Json.Str ev.ev_cat ] in
  let dur = if ev.ev_ph = 'X' then [ "dur", Json.Float ev.ev_dur_us ] else [] in
  (* Instant events need a scope for strict viewers; "t" = thread. *)
  let scope = if ev.ev_ph = 'i' then [ "s", Json.Str "t" ] else [] in
  let args = if ev.ev_args = [] then [] else [ "args", Json.Obj ev.ev_args ] in
  Json.Obj (base @ cat @ dur @ scope @ args)

(** The full trace as a Chrome JSON-Object-format document. *)
let to_json t : Json.t =
  Json.Obj
    [
      "traceEvents", Json.List (List.map event_json (events t));
      "displayTimeUnit", Json.Str "ms";
    ]

let to_file path t = Json.to_file path (to_json t)
