(** Quickstart: the paper's Listing 1 RNN, end to end.

    Write a dynamic model in the input language, compile it with ACROBAT's
    static+dynamic optimizations, auto-schedule its batched kernels, run a
    mini-batch of variable-length sentences, and inspect both the outputs
    and the runtime activity profile.

    Run with: [dune exec examples/quickstart.exe] *)

open Acrobat

let hidden = 16
let classes = 4

(* The model: a recursive RNN over a token sequence, followed by a
   per-token output transformation — two program phases. *)
let source =
  Model.subst
    [ "H", hidden; "C", classes ]
    {|
def @rnn(%inps: List[Tensor[(1, {H})]], %state: Tensor[(1, {H})],
         %bias: Tensor[(1, {H})], %i_wt: Tensor[({H}, {H})], %h_wt: Tensor[({H}, {H})])
    -> List[Tensor[(1, {H})]] {
  match (%inps) {
    Nil => Nil,
    Cons(%inp, %tail) => {
      let %inp_linear = %bias + matmul(%inp, %i_wt);
      let %new_state = sigmoid(%inp_linear + matmul(%state, %h_wt));
      Cons(%new_state, @rnn(%tail, %new_state, %bias, %i_wt, %h_wt))
    }
  }
}

def @main(%bias: Tensor[(1, {H})], %i_wt: Tensor[({H}, {H})], %h_wt: Tensor[({H}, {H})],
          %init: Tensor[(1, {H})], %c_wt: Tensor[({H}, {C})], %c_b: Tensor[(1, {C})],
          %inps: List[Tensor[(1, {H})]]) -> List[Tensor[(1, {C})]] {
  let %states = @rnn(%inps, %init, %bias, %i_wt, %h_wt);
  map(fn(%s: Tensor[(1, {H})]) { softmax(%c_b + matmul(%s, %c_wt)) }, %states)
}
|}

let () =
  (* 1. Compile: parse, type check, analyze (parameter reuse, hoisting,
     phases), lower to batched kernels. *)
  let compiled = compile ~inputs:[ "inps" ] source in
  Fmt.pr "compiled %d kernels:@."
    (List.length (Kernel.all_kernels compiled.lprog.Lowered.registry));
  List.iter
    (fun k -> Fmt.pr "  %a@." Kernel.pp k)
    (Kernel.all_kernels compiled.lprog.Lowered.registry);

  (* 2. Weights and a batch of variable-length sentences. *)
  let rng = Rng.create 42 in
  let weights =
    [
      "bias", Tensor.random rng [ 1; hidden ];
      "i_wt", Tensor.random rng [ hidden; hidden ];
      "h_wt", Tensor.random rng [ hidden; hidden ];
      "init", Tensor.zeros [ 1; hidden ];
      "c_wt", Tensor.random rng [ hidden; classes ];
      "c_b", Tensor.random rng [ 1; classes ];
    ]
  in
  let sentence len =
    Driver.Hlist (List.init len (fun _ -> Driver.Htensor (Tensor.random rng [ 1; hidden ])))
  in
  let instances = List.map (fun len -> [ "inps", sentence len ]) [ 3; 7; 5; 9 ] in

  (* 3. Auto-schedule the kernels with PGO priorities. *)
  let compiled = tune compiled ~weights ~calibration:instances in

  (* 4. Run the batch (with real value computation). *)
  let result = run ~compute_values:true compiled ~weights ~instances () in

  List.iteri
    (fun i v ->
      let tokens = List.length (Value.handles [] v) in
      Fmt.pr "instance %d: %d per-token class distributions, first = %a@." i tokens Value.pp
        (match v with Value.Vcons (h, _) -> h | v -> v))
    result.Driver.outputs;

  Fmt.pr "@.--- runtime activity (simulated, see DESIGN.md) ---@.%a@." Profiler.pp
    result.Driver.stats.profiler
