(** The lowered program representation executed by the engines.

    Lowering replaces tensor-operator applications with {e block invocations}
    ({!Lblock}): one batched-kernel call per static block (per single op when
    grain coarsening is off), annotated with its scheduling depth. All
    specialization (code duplication per context) has happened: calls
    reference concrete specialized definitions by name. *)

open Acrobat_ir

type depth_spec =
  | Static of int  (** Hoisted: compile-time depth (§B.1). *)
  | Dynamic  (** Consumes the per-instance runtime depth counter. *)

type block = {
  kernel : Kernel.t;
  args : lexpr list;  (** Expressions for the {e batched} arguments, in
                          argument-index order (shared ones are resolved from
                          [Kernel.shared_binds] by the executor). *)
  depth : depth_spec;
  outs : string list;  (** Variables bound to the kernel outputs. *)
  site : int;  (** Source site id (profiling / PGO attribution). *)
}

and lexpr =
  | Lvar of string
  | Lglobal of string  (** A specialized definition name. *)
  | Lint of int
  | Lfloat of float
  | Lbool of bool
  | Llet of string * lexpr * lexpr
  | Lif of lexpr * lexpr * lexpr
  | Lblock of block * lexpr  (** Invoke a kernel, bind outputs, continue. *)
  | Lcall of lexpr * lexpr list
  | Lfn of string list * lexpr
  | Lmatch of lexpr * (Ast.pat * lexpr) list
  | Lnil
  | Lcons of lexpr * lexpr
  | Lleaf of lexpr
  | Lnode of lexpr * lexpr
  | Ltuple of lexpr list
  | Lproj of lexpr * int
  | Lbinop of Ast.binop * lexpr * lexpr
  | Lnot of lexpr
  | Lconcurrent of lexpr list  (** Independent branches: same starting depth,
                                   forked fibers under TDC (§4.2). *)
  | Lmap of lexpr * lexpr  (** Instance-parallel map (§4.1). *)
  | Lscalar of lexpr  (** Force a tensor value (triggers DFG evaluation). *)
  | Lchoice of lexpr
  | Lcoin of lexpr
  | Lghost of int * lexpr  (** Ghost operators: bump the depth counter by
                               [n] without any kernel work (§B.3). *)
  | Lphase of int * lexpr  (** Enter program phase [n] (§B.3). *)
  | Lshared of Kernel.shared_bind
      (** A reference to a shared tensor (weight parameter or reusable
          constant), materialized once per run. *)

type ldef = { lname : string; lparams : string list; lbody : lexpr }

type t = {
  defs : (string, ldef) Hashtbl.t;
  entry : string;
  registry : Kernel.registry;
  max_static_depth : int;
      (** Runtime depth counters start above this so dynamic blocks never
          tie with hoisted ones. *)
  input_params : string list;  (** @main parameters that vary per instance. *)
  weight_params : string list;
  has_tdc : bool;  (** Program contains tensor-dependent control flow. *)
  config : Config.t;
  kernel_hints : (int, float) Hashtbl.t;
      (** Static invocation-frequency estimates per kernel id (the paper's
          nesting-depth heuristic, §D.1), used by the auto-scheduler when
          PGO is unavailable. *)
}

let find_def t name =
  match Hashtbl.find_opt t.defs name with
  | Some d -> d
  | None -> Fmt.invalid_arg "lowered program has no definition %S" name

let entry_def t = find_def t t.entry

(** Count the kernel-invocation sites (not dynamic invocations) in a
    definition — a cheap size metric used in tests and reports. *)
let rec count_blocks = function
  | Lblock (_, cont) -> 1 + count_blocks cont
  | Lvar _ | Lglobal _ | Lint _ | Lfloat _ | Lbool _ | Lnil | Lshared _ -> 0
  | Llet (_, a, b) | Lcons (a, b) | Lnode (a, b) | Lmap (a, b) | Lbinop (_, a, b) ->
    count_blocks a + count_blocks b
  | Lif (a, b, c) -> count_blocks a + count_blocks b + count_blocks c
  | Lcall (f, args) -> List.fold_left (fun acc e -> acc + count_blocks e) (count_blocks f) args
  | Lfn (_, b) | Lleaf b | Lproj (b, _) | Lnot b | Lscalar b | Lchoice b | Lcoin b -> count_blocks b
  | Lghost (_, b) | Lphase (_, b) -> count_blocks b
  | Lmatch (s, cases) ->
    List.fold_left (fun acc (_, e) -> acc + count_blocks e) (count_blocks s) cases
  | Ltuple es | Lconcurrent es -> List.fold_left (fun acc e -> acc + count_blocks e) 0 es
