(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that every
    experiment is reproducible bit-for-bit from a seed, matching the paper's
    use of "pre-determined random seeds" (§E.1) to emulate tensor-dependent
    control flow uniformly across frameworks. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64: fast, high-quality, and trivially portable. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [float t] draws uniformly from [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

(** [uniform t lo hi] draws uniformly from [lo, hi). *)
let uniform t lo hi = lo +. ((hi -. lo) *. float t)

(* Smallest (2^k - 1) >= v, for the rejection mask below. *)
let mask_above v =
  let m = ref v in
  m := !m lor (!m lsr 1);
  m := !m lor (!m lsr 2);
  m := !m lor (!m lsr 4);
  m := !m lor (!m lsr 8);
  m := !m lor (!m lsr 16);
  m := !m lor (!m lsr 32);
  !m

(** [int t bound] draws uniformly from [0, bound). Requires [bound > 0].

    Bitmask + rejection: draw [ceil(log2 bound)] bits and redraw until the
    value lands under [bound]. Unlike [r mod bound], this is exactly
    uniform for every bound, and since the mask keeps at most one doubling
    of headroom the expected number of draws is < 2. *)
let int t bound =
  assert (bound > 0);
  let mask = mask_above (bound - 1) in
  let rec draw () =
    (* Keep 62 bits: OCaml's native int is 63-bit, so a 63-bit value from a
       logical shift by 1 would overflow to a negative number. *)
    let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) land mask in
    if r < bound then r else draw ()
  in
  draw ()

(** [int_in t lo hi] draws uniformly from the inclusive range [lo, hi]. *)
let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let bool t = float t < 0.5

(** [bernoulli t p] is true with probability [p]. *)
let bernoulli t p = float t < p

(** Standard normal via Box-Muller. *)
let normal t =
  let u1 = max 1e-12 (float t) in
  let u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

(** [split t] derives an independent generator; used to hand out
    per-instance streams without perturbing the parent. *)
let split t =
  let s = next_int64 t in
  { state = Int64.logxor s 0xA02184562B6AE807L }

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
