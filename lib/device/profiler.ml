(** Activity accounting, mirroring the categories of the paper's Table 5. *)

type activity =
  | Dfg_construction  (** Building DFG nodes during lazy execution. *)
  | Scheduling  (** Finding batching opportunities / ordering nodes. *)
  | Mem_transfer  (** Host <-> device copies. *)
  | Kernel_exec  (** Device time of compute + gather kernels. *)
  | Api_overhead  (** Host-side CUDA-API call costs. *)
  | Vm_overhead  (** Interpreter dispatch (Relay VM only). *)
  | Fiber_overhead  (** Cooperative context switches. *)

let activity_name = function
  | Dfg_construction -> "DFG construction"
  | Scheduling -> "Scheduling"
  | Mem_transfer -> "Mem. copy time"
  | Kernel_exec -> "GPU kernel time"
  | Api_overhead -> "CUDA API time"
  | Vm_overhead -> "VM overhead"
  | Fiber_overhead -> "Fiber overhead"

let all_activities =
  [
    Dfg_construction;
    Scheduling;
    Mem_transfer;
    Kernel_exec;
    Api_overhead;
    Vm_overhead;
    Fiber_overhead;
  ]

(* Dense index for the per-activity accumulator array. [charge] sits on the
   hot path (every kernel launch, memcpy and scheduling op), so accumulation
   must be an array store, not an assoc-list rebuild. *)
let activity_index = function
  | Dfg_construction -> 0
  | Scheduling -> 1
  | Mem_transfer -> 2
  | Kernel_exec -> 3
  | Api_overhead -> 4
  | Vm_overhead -> 5
  | Fiber_overhead -> 6

let n_activities = List.length all_activities

type t = {
  times_us : float array;  (** Indexed by {!activity_index}. *)
  mutable kernel_calls : int;  (** Device kernel launches (incl. gathers). *)
  mutable gather_kernels : int;
  mutable gather_bytes : int;
  mutable memcpy_calls : int;
  mutable nodes_created : int;
  mutable batches_executed : int;
  mutable unbatched_ops : int;
      (** Ops executed one-by-one because the framework could not batch
          them (e.g. DyNet's unsupported operators, §E.4). *)
  mutable fiber_switches : int;
}

let create () =
  {
    times_us = Array.make n_activities 0.0;
    kernel_calls = 0;
    gather_kernels = 0;
    gather_bytes = 0;
    memcpy_calls = 0;
    nodes_created = 0;
    batches_executed = 0;
    unbatched_ops = 0;
    fiber_switches = 0;
  }

let reset t =
  Array.fill t.times_us 0 n_activities 0.0;
  t.kernel_calls <- 0;
  t.gather_kernels <- 0;
  t.gather_bytes <- 0;
  t.memcpy_calls <- 0;
  t.nodes_created <- 0;
  t.batches_executed <- 0;
  t.unbatched_ops <- 0;
  t.fiber_switches <- 0

let charge t activity us =
  let i = activity_index activity in
  t.times_us.(i) <- t.times_us.(i) +. us

let time_us t activity = t.times_us.(activity_index activity)

(** Total simulated latency in microseconds. *)
let total_us t = Array.fold_left ( +. ) 0.0 t.times_us

let total_ms t = total_us t /. 1000.0

let merge ~into src =
  Array.iteri (fun i v -> into.times_us.(i) <- into.times_us.(i) +. v) src.times_us;
  into.kernel_calls <- into.kernel_calls + src.kernel_calls;
  into.gather_kernels <- into.gather_kernels + src.gather_kernels;
  into.gather_bytes <- into.gather_bytes + src.gather_bytes;
  into.memcpy_calls <- into.memcpy_calls + src.memcpy_calls;
  into.nodes_created <- into.nodes_created + src.nodes_created;
  into.batches_executed <- into.batches_executed + src.batches_executed;
  into.unbatched_ops <- into.unbatched_ops + src.unbatched_ops;
  into.fiber_switches <- into.fiber_switches + src.fiber_switches

(** Every accumulated counter, in a fixed order shared by {!pp},
    {!to_json} and the metrics bridge — the single list that keeps the
    three exports from drifting out of sync again (counters used to be
    collected but silently dropped by [pp]). *)
let counters t =
  [
    "kernel_calls", t.kernel_calls;
    "gather_kernels", t.gather_kernels;
    "gather_bytes", t.gather_bytes;
    "memcpy_calls", t.memcpy_calls;
    "nodes_created", t.nodes_created;
    "batches_executed", t.batches_executed;
    "unbatched_ops", t.unbatched_ops;
    "fiber_switches", t.fiber_switches;
  ]

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun a ->
      let v = time_us t a in
      if v > 0.0 then Fmt.pf ppf "%-18s %8.2f ms@," (activity_name a) (v /. 1000.0))
    all_activities;
  Fmt.pf ppf "#Kernel calls      %8d@," t.kernel_calls;
  Fmt.pf ppf "#Gather kernels    %8d@," t.gather_kernels;
  Fmt.pf ppf "Gather bytes       %8d@," t.gather_bytes;
  Fmt.pf ppf "#Memcpy calls      %8d@," t.memcpy_calls;
  Fmt.pf ppf "#DFG nodes         %8d@," t.nodes_created;
  Fmt.pf ppf "#Batches           %8d@," t.batches_executed;
  Fmt.pf ppf "#Unbatched ops     %8d@," t.unbatched_ops;
  Fmt.pf ppf "#Fiber switches    %8d@," t.fiber_switches;
  Fmt.pf ppf "Total              %8.2f ms@]" (total_ms t)

(** Times (ms, per activity) and all counters as JSON — used by
    [bench --json] and the run/serve reports. *)
let to_json t : Acrobat_obs.Json.t =
  let open Acrobat_obs.Json in
  let times =
    List.filter_map
      (fun a ->
        let v = time_us t a in
        if v > 0.0 then Some (activity_name a, Float (v /. 1000.0)) else None)
      all_activities
  in
  Obj
    [
      "times_ms", Obj times;
      "counters", Obj (List.map (fun (k, v) -> k, Int v) (counters t));
      "total_ms", Float (total_ms t);
    ]

(** Mirror the final counter values into a metrics registry under
    ["device."] names. *)
let to_metrics t (m : Acrobat_obs.Metrics.t) =
  Acrobat_obs.Metrics.set_counters m "device." (counters t)
