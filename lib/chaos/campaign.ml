(** The chaos campaign driver: generate scenarios, run them through the
    serve cluster with tracing on, check the invariant suite, and shrink
    whatever violates into a minimal reproducer.

    Scenarios execute against a synthetic executor (below) rather than a
    compiled model: invariants quantify over {e accounting}, not latency
    values, and the synthetic executor exercises every recovery path —
    transient faults, resets, stragglers, OOM, deterministic poison — at
    thousands of scenarios per second. The emitted reproducer is the real
    [acrobatc serve] command with the same topology, traffic seed and fault
    plans, so a violation can be replayed against the full compiled-model
    stack.

    Determinism: a campaign is a pure function of [(ca_seed, ca_runs,
    ca_fault_prob)]. Every simulation runs on the virtual clock with seeded
    RNG streams only, so [report_json] is byte-identical across runs — the
    property [make check] enforces by diffing two campaign executions. *)

module Rng = Acrobat_tensor.Rng
module Faults = Acrobat_device.Faults
module Cost_model = Acrobat_device.Cost_model
module Server = Acrobat_serve.Server
module Cluster = Acrobat_serve.Cluster
module Stats = Acrobat_serve.Stats
module Traffic = Acrobat_serve.Traffic
module Event_loop = Acrobat_serve.Event_loop
module Trace = Acrobat_obs.Trace
module Json = Acrobat_obs.Json
module Tenant = Acrobat_tenancy.Tenant
module Autoscaler = Acrobat_tenancy.Autoscaler
module Dispatcher = Acrobat_tenancy.Dispatcher
module Resilience = Acrobat_resilience.Policy

(* Synthetic request cost: the executor's latency is 100us + 10us per
   batched request, and one request occupies 100 "elements" against a
   capacity plan. Values are arbitrary; invariants never read them beyond
   "time passes and batches finish". *)
let elems_per_req = 100

(* Synthetic per-request fingerprint: any injective function of the id
   works — the audit layer compares fingerprints for equality, never
   structure. A corrupted attempt perturbs every request's fingerprint,
   mirroring the real executor's every-output perturbation; the campaign
   auditor's reference is the unperturbed value. *)
let synth_fp ~corrupted id =
  let base = Int64.mul (Int64.of_int (id + 1)) 0x9e3779b97f4a7c15L in
  if corrupted then Int64.add base 1L else base

(* Audit re-execution latency: a bit over one unbatched request (the
   reference engine runs without batching). *)
let audit_latency_us = 110.0

(* One replica's executor: a fresh injector per call of this function (one
   per simulation), consulted once per batch attempt like the real device
   glue. Poison and capacity are deterministic (non-transient, so the
   server goes straight to bisection); injector draws are seeded by the
   plan. The payload is the request id itself. *)
let executor_of_plan (plan : Faults.plan) : degraded:bool -> int list -> Server.exec_result
    =
  let inj = Faults.create plan in
  fun ~degraded:_ (batch : int list) ->
    let n = List.length batch in
    match List.find_opt (fun id -> List.mem id plan.Faults.poison) batch with
    | Some id ->
      Server.Exec_fault
        {
          ef_latency_us = 100.0;
          ef_reason = Fmt.str "poisoned request #%d" id;
          ef_transient = false;
          ef_oom = false;
          ef_reset = false;
        }
    | None -> (
      match plan.Faults.capacity_elems with
      | Some cap when n * elems_per_req > cap ->
        Server.Exec_fault
          {
            ef_latency_us = 60.0;
            ef_reason = Fmt.str "oom: %d elems > %d" (n * elems_per_req) cap;
            ef_transient = false;
            ef_oom = true;
            ef_reset = false;
          }
      | _ -> (
        Faults.begin_attempt inj;
        match Faults.on_launch inj with
        | mult ->
          let corrupted = Faults.corrupt_attempt inj in
          Server.Exec_ok
            {
              Server.ex_latency_us = (100.0 +. (10.0 *. float_of_int n)) *. mult;
              ex_profiler = None;
              ex_fingerprints =
                Some (Array.of_list (List.map (synth_fp ~corrupted) batch));
              ex_corrupted = corrupted;
            }
        | exception Faults.Fault { kind; _ } ->
          Server.Exec_fault
            {
              ef_latency_us = 50.0;
              ef_reason = Faults.kind_name kind;
              ef_transient = true;
              ef_oom = false;
              ef_reset = kind = Faults.Device_reset;
            }))

(* The campaign's reference engine: the synthetic executor's uncorrupted
   fingerprint for the request, after one unbatched re-execution's worth of
   simulated latency. Seeded off the scenario seed on a distinct stream,
   exactly as [Acrobat.reference_auditor] derives its from [--seed]. *)
let auditor_of (sc : Scenario.t) : int Server.auditor option =
  if sc.Scenario.sc_audit <= 0.0 then None
  else
    Some
      {
        Server.au_rate = sc.Scenario.sc_audit;
        au_seed = (sc.Scenario.sc_seed * 61) + 29;
        au_reference = (fun id _payload -> synth_fp ~corrupted:false id, audit_latency_us);
      }

let cluster_config (sc : Scenario.t) : Cluster.config =
  {
    Cluster.default_config with
    Cluster.c_server =
      {
        Server.default_config with
        Server.policy = sc.Scenario.sc_policy;
        queue_capacity = sc.Scenario.sc_queue_cap;
        deadline_us = Option.map (fun ms -> ms *. 1000.0) sc.Scenario.sc_deadline_ms;
        resilience = sc.Scenario.sc_resilience;
      };
    c_replicas = sc.Scenario.sc_replicas;
    c_dispatch = sc.Scenario.sc_dispatch;
    c_hedge_percentile = sc.Scenario.sc_hedge;
    c_requeue_budget = sc.Scenario.sc_requeue_budget;
    c_net = sc.Scenario.sc_net;
  }

let tenancy_config (sc : Scenario.t) (tc : Scenario.tenancy) : Dispatcher.config =
  {
    Dispatcher.t_server =
      {
        Server.default_config with
        Server.policy = sc.Scenario.sc_policy;
        queue_capacity = sc.Scenario.sc_queue_cap;
      };
    t_autoscale =
      Autoscaler.default ~min_replicas:tc.Scenario.tc_min
        ~max_replicas:tc.Scenario.tc_max;
    t_swap_cost = Cost_model.default;
    (* Per-tenant budgets/limiters/breakers and dispatcher-level hedging
       live in the dispatcher config, not the embedded server one. *)
    t_resilience = sc.Scenario.sc_resilience;
    t_hedge_percentile = sc.Scenario.sc_hedge;
    t_net = sc.Scenario.sc_net;
  }

(* Synthetic per-model weight footprint for the swap penalty. Any
   deterministic positive size works — invariants never read latencies —
   but distinct sizes per model name keep swap costs asymmetric the way a
   real catalog's are. *)
let model_bytes (m : string) : int = 10_000 * (1 + (String.length m mod 7))

(** Execute one scenario with tracing on. The arrival trace derives from
    [sc_seed] {e exactly} as [Acrobat.serve_cluster] derives it from
    [--seed] (and per-tenant seeds exactly as [--tenant] derives them), so
    the emitted CLI reproducer replays the same traffic. Returns the
    aggregate summary, the trace, per-tenant observations (empty on plain
    cluster runs), and the peak replica count (quota scaling). *)
let run_scenario_full (sc : Scenario.t) :
    Stats.summary * Trace.t * Invariants.tenant_obs list * int =
  let tracer = Trace.create () in
  match sc.Scenario.sc_tenancy with
  | None ->
    let arrivals =
      Traffic.arrivals
        ~rng:(Rng.create ((sc.Scenario.sc_seed * 53) + 11))
        (Scenario.process sc) ~n:sc.Scenario.sc_requests
    in
    let report =
      Cluster.simulate ~tracer ?auditor:(auditor_of sc) (cluster_config sc) ~arrivals
        ~payload:(fun i -> i)
        ~executors:(Array.map executor_of_plan sc.Scenario.sc_plans)
    in
    Stats.summarize report.Cluster.cluster_stats, tracer, [], sc.Scenario.sc_replicas
  | Some tc ->
    (* The shrinker halves [sc_requests] without rebuilding tenant records,
       so the per-tenant stream length is always taken from the scenario. *)
    let tenants =
      Array.map
        (fun t -> { t with Tenant.tn_requests = sc.Scenario.sc_requests })
        tc.Scenario.tc_tenants
    in
    let execs = Array.map executor_of_plan sc.Scenario.sc_plans in
    let execute i ~model:_ batch =
      (* Autoscaled replicas index plans positionally; clamp in case a
         shrink candidate truncated the plan array below the ceiling. *)
      execs.(min i (Array.length execs - 1)) ~degraded:false batch
    in
    let report =
      Dispatcher.simulate ~tracer ?auditor:(auditor_of sc) (tenancy_config sc tc)
        ~tenants
        ~payload:(fun ~tenant:_ ~index:_ ~id -> id)
        ~execute ~model_bytes
    in
    let obs =
      List.map
        (fun (tv : Dispatcher.tenant_view) ->
          let s = Stats.summarize tv.Dispatcher.tv_stats in
          {
            Invariants.tb_name = tv.Dispatcher.tv_tenant.Tenant.tn_name;
            tb_offered = s.Stats.s_offered;
            tb_completed = s.Stats.s_completed;
            tb_quota = tv.Dispatcher.tv_tenant.Tenant.tn_quota;
            tb_peak_inflight = tv.Dispatcher.tv_peak_inflight;
            tb_resilience_shed =
              s.Stats.s_limit_shed + s.Stats.s_retry_shed + s.Stats.s_breaker_shed;
          })
        report.Dispatcher.tn_tenants
    in
    Stats.summarize report.Dispatcher.tn_stats, tracer, obs,
    report.Dispatcher.tn_peak_replicas

let run_scenario (sc : Scenario.t) : Stats.summary * Trace.t =
  let summary, tracer, _, _ = run_scenario_full sc in
  summary, tracer

(* The goodput floor a scenario provably must meet: a clean fleet with no
   deadline and a queue deep enough that nothing sheds answers everything.
   Hedging can double a request's queue footprint, hence the 2x bound.
   Anything fault-injected or admission-bounded gets no floor — legitimate
   shedding is indistinguishable from lost work at this level (the
   conservation and terminal invariants still apply). *)
let derived_floor (sc : Scenario.t) : float =
  let clean = Array.for_all (fun p -> not (Faults.enabled p)) sc.Scenario.sc_plans in
  let need =
    (if sc.Scenario.sc_hedge = None then 1 else 2) * sc.Scenario.sc_requests
  in
  if sc.Scenario.sc_tenancy <> None then
    (* Quota shedding and SLO expiry are legitimate on tenant mixes; the
       starvation and quota invariants carry the liveness burden instead. *)
    0.0
  else if Resilience.active sc.Scenario.sc_resilience then
    (* The limiter and retry budget shed legitimately under pressure; the
       retry_amplification and brownout_dwell invariants bound them. *)
    0.0
  else if sc.Scenario.sc_net <> None then
    (* A lossy transport sheds lawfully at the deadline gate and the requeue
       budget; the net conservation, exactly-once and partition invariants
       carry the correctness burden instead. *)
    0.0
  else if
    clean && sc.Scenario.sc_deadline_ms = None && sc.Scenario.sc_queue_cap >= need
  then 1.0
  else 0.0

let tenant_obs_json (tb : Invariants.tenant_obs) : Json.t =
  Json.Obj
    [
      "name", Json.Str tb.Invariants.tb_name;
      "offered", Json.Int tb.Invariants.tb_offered;
      "completed", Json.Int tb.Invariants.tb_completed;
      "quota", Json.Int tb.Invariants.tb_quota;
      "peak_inflight", Json.Int tb.Invariants.tb_peak_inflight;
      "resilience_shed", Json.Int tb.Invariants.tb_resilience_shed;
    ]

(* Canonical byte form of a run's observable output, for replay comparison.
   Tenant observations ride along so the determinism invariant also covers
   per-tenant accounting. *)
let observable_string (summary : Stats.summary) (tracer : Trace.t)
    (tenants : Invariants.tenant_obs list) : string =
  Json.to_string
    (Json.Obj
       [
         "summary", Stats.summary_to_json summary;
         "tenants", Json.List (List.map tenant_obs_json tenants);
         "trace", Trace.to_json tracer;
       ])

(** Check one scenario against the full invariant suite. Returns the
    violations (empty = healthy) and the run's trace JSON for artifact
    dumps. [goodput_floor] strengthens (never weakens) the derived floor;
    [check_replay] re-runs the scenario and demands byte-identical
    summary + trace (the determinism invariant). A crash anywhere in the
    stack is itself a violation, named ["crash"]. *)
let check_scenario ?goodput_floor ?(check_replay = true) (sc : Scenario.t) :
    Invariants.violation list * Json.t =
  match run_scenario_full sc with
  | summary, tracer, tenants, peak_replicas ->
    let floor =
      Float.max (derived_floor sc) (Option.value ~default:0.0 goodput_floor)
    in
    let violations =
      Invariants.check
        {
          Invariants.in_requests = Scenario.total_requests sc;
          in_requeue_budget = sc.Scenario.sc_requeue_budget;
          in_goodput_floor = floor;
          in_summary = summary;
          in_events = Trace.events tracer;
          in_tenants = tenants;
          in_retry_budget_frac =
            sc.Scenario.sc_resilience.Resilience.rs_retry_budget;
          in_brownout = sc.Scenario.sc_resilience.Resilience.rs_brownout;
          in_peak_replicas = peak_replicas;
          in_audit_rate = sc.Scenario.sc_audit;
          in_net = sc.Scenario.sc_net;
        }
    in
    let violations =
      if not check_replay then violations
      else begin
        let summary2, tracer2, tenants2, _ = run_scenario_full sc in
        let a = observable_string summary tracer tenants
        and b = observable_string summary2 tracer2 tenants2 in
        if String.equal a b then violations
        else
          violations
          @ [
              {
                Invariants.vi_name = "replay";
                vi_detail =
                  Fmt.str
                    "same seed produced different output (%d vs %d bytes of \
                     summary+trace JSON)"
                    (String.length a) (String.length b);
              };
            ]
      end
    in
    violations, Trace.to_json tracer
  | exception exn ->
    ( [
        {
          Invariants.vi_name = "crash";
          vi_detail = Fmt.str "simulation raised: %s" (Printexc.to_string exn);
        };
      ],
      Json.Null )

(** Campaign parameters. *)
type campaign = {
  ca_seed : int;
  ca_runs : int;  (** Scenarios to generate and check. *)
  ca_fault_prob : float;  (** Per-replica probability of a fault plan. *)
  ca_goodput_floor : float option;  (** Extra floor on top of the derived one. *)
  ca_check_replay : bool;  (** Same-seed byte-identical replay invariant. *)
  ca_shrink : bool;  (** Minimize violating scenarios before reporting. *)
  ca_shrink_budget : int;  (** Max re-simulations per shrink. *)
}

let default_campaign =
  {
    ca_seed = 42;
    ca_runs = 100;
    ca_fault_prob = 0.5;
    ca_goodput_floor = None;
    ca_check_replay = true;
    ca_shrink = false;
    ca_shrink_budget = 200;
  }

(** One violating scenario's record in the campaign report. *)
type outcome = {
  oc_scenario : Scenario.t;
  oc_violations : Invariants.violation list;
  oc_shrunk : (Scenario.t * Invariants.violation list) option;
      (** Minimal violating scenario and its violations, when shrinking ran. *)
  oc_trace : Json.t;  (** Failing trace (the shrunk scenario's if shrunk). *)
}

type report = {
  rp_campaign : campaign;
  rp_scenarios : int;  (** Scenarios actually checked. *)
  rp_outcomes : outcome list;  (** Violating scenarios, in campaign order. *)
}

(** The scenario to minimize/report for an outcome: the shrunk one when
    available, the original otherwise. *)
let minimal (oc : outcome) : Scenario.t * Invariants.violation list =
  match oc.oc_shrunk with
  | Some (sc, vs) -> sc, vs
  | None -> oc.oc_scenario, oc.oc_violations

(* Arm the event-loop dispatch-order assertions for the duration of [f], so
   scheduling regressions surface as crashes the suite reports; the prior
   setting is restored on exit. *)
let with_debug_checks f =
  let was = Event_loop.debug_checks_enabled () in
  Event_loop.set_debug_checks true;
  Fun.protect ~finally:(fun () -> Event_loop.set_debug_checks was) f

(* Check campaign scenario [index]; [Some outcome] iff it violates.
   Call under [with_debug_checks]. *)
let check_index (ca : campaign) (index : int) : outcome option =
  let sc = Scenario.generate ~campaign_seed:ca.ca_seed ~fault_prob:ca.ca_fault_prob index in
  let check sc' =
    check_scenario ?goodput_floor:ca.ca_goodput_floor ~check_replay:ca.ca_check_replay sc'
  in
  let violations, trace = check sc in
  if violations = [] then None
  else begin
    let shrunk =
      if not ca.ca_shrink then None
      else begin
        let violates sc' = fst (check sc') <> [] in
        let minimal_sc, _runs = Shrink.shrink ~violates ~budget:ca.ca_shrink_budget sc in
        let vs, _ = check minimal_sc in
        (* The shrinker only ever accepts violating candidates, but guard
           against a flaky predicate anyway. *)
        if vs = [] then None else Some (minimal_sc, vs)
      end
    in
    let trace =
      match shrunk with Some (msc, _) -> snd (check msc) | None -> trace
    in
    Some { oc_scenario = sc; oc_violations = violations; oc_shrunk = shrunk;
           oc_trace = trace }
  end

(** Check a single campaign scenario by index — the [--only] replay path:
    re-derives scenario [index] from the campaign seed and runs the exact
    campaign check (including shrinking when enabled). *)
let check_one (ca : campaign) (index : int) : outcome option =
  with_debug_checks (fun () -> check_index ca index)

(** Run a campaign: check scenarios [0 .. ca_runs - 1], collecting (and,
    when [ca_shrink], minimizing) every violating one. *)
let run_campaign (ca : campaign) : report =
  with_debug_checks (fun () ->
      let outcomes = ref [] in
      for index = 0 to ca.ca_runs - 1 do
        match check_index ca index with
        | None -> ()
        | Some oc -> outcomes := oc :: !outcomes
      done;
      { rp_campaign = ca; rp_scenarios = ca.ca_runs; rp_outcomes = List.rev !outcomes })

(** Headline campaign metric: violating scenarios per thousand checked. *)
let violations_per_kiloscenario (r : report) : float =
  if r.rp_scenarios = 0 then 0.0
  else 1000.0 *. float_of_int (List.length r.rp_outcomes) /. float_of_int r.rp_scenarios

(** The reproducer block for one violating outcome: a comment naming the
    violated invariants, the one-line [acrobatc serve] replay of the
    (minimal) scenario, and the [acrobatc chaos] line that re-derives and
    re-checks it from the campaign seed alone. *)
let repro_lines (ca : campaign) (oc : outcome) : string list =
  let sc, vs = minimal oc in
  [
    Fmt.str "# scenario %d of campaign seed %d violates: %s"
      oc.oc_scenario.Scenario.sc_index ca.ca_seed
      (String.concat ", " (Invariants.names vs));
    Scenario.to_cli sc;
    Fmt.str "acrobatc chaos --seed %d --fault-prob %g%s --only %d --shrink" ca.ca_seed
      ca.ca_fault_prob
      (match ca.ca_goodput_floor with
      | Some g -> Fmt.str " --min-goodput %g" g
      | None -> "")
      oc.oc_scenario.Scenario.sc_index;
  ]

let violation_json (v : Invariants.violation) : Json.t =
  Json.Obj [ "invariant", Json.Str v.Invariants.vi_name;
             "detail", Json.Str v.Invariants.vi_detail ]

let outcome_json (oc : outcome) : Json.t =
  let sc, vs = minimal oc in
  Json.Obj
    [
      "scenario", Scenario.to_json oc.oc_scenario;
      "violations", Json.List (List.map violation_json oc.oc_violations);
      "shrunk", (if oc.oc_shrunk = None then Json.Bool false else Json.Bool true);
      "minimal", Scenario.to_json sc;
      "minimal_violations", Json.List (List.map violation_json vs);
    ]

(** Deterministic JSON report: same campaign parameters, same bytes. *)
let report_json (r : report) : Json.t =
  Json.Obj
    [
      "seed", Json.Int r.rp_campaign.ca_seed;
      "runs", Json.Int r.rp_campaign.ca_runs;
      "fault_prob", Json.Float r.rp_campaign.ca_fault_prob;
      "scenarios", Json.Int r.rp_scenarios;
      "violating", Json.Int (List.length r.rp_outcomes);
      "violations_per_kiloscenario", Json.Float (violations_per_kiloscenario r);
      "outcomes", Json.List (List.map outcome_json r.rp_outcomes);
    ]
