(** The tenant registry: who is allowed to send what at which model.

    A tenant names one catalog model and brings its own traffic process
    (Poisson or MMPP, independently seeded so tenant streams are
    uncorrelated but each fully reproducible), an SLO deadline that doubles
    as the admission deadline for its queued requests, an inflight quota
    that bounds how much of the cluster one tenant can occupy, and a
    fair-share weight for the dispatcher.

    The CLI spec format is [NAME:MODEL:RATE:SLO:QUOTA] with an optional
    sixth [:WEIGHT] field — rate in requests per second, SLO in
    milliseconds ([0] or [inf] for none), weight defaulting to 1. *)

module Traffic = Acrobat_serve.Traffic

type t = {
  tn_name : string;
  tn_model : string;  (** Catalog model id; batches only form within it. *)
  tn_rate_per_s : float;
  tn_bursty : bool;  (** MMPP (rate/4 low, 2x high, 50ms dwell) vs Poisson. *)
  tn_seed : int;  (** Seeds this tenant's arrival and payload streams. *)
  tn_slo_ms : float;  (** SLO and queue deadline; [infinity] disables both. *)
  tn_quota : int;  (** Max requests admitted but not yet terminal. *)
  tn_weight : float;  (** Fair-share weight; relative, > 0. *)
  tn_requests : int;  (** Requests this tenant offers over the run. *)
}

(* Mirrors the single-tenant CLI's --bursty shape so a tenant spec's RATE
   field means the same thing under either process. *)
let process (t : t) : Traffic.process =
  if t.tn_bursty then
    Traffic.Bursty
      {
        rate_low_per_s = t.tn_rate_per_s /. 4.0;
        rate_high_per_s = t.tn_rate_per_s *. 2.0;
        mean_dwell_us = 50_000.0;
      }
  else Traffic.Poisson { rate_per_s = t.tn_rate_per_s }

let slo_us (t : t) : float option =
  if t.tn_slo_ms <= 0.0 || t.tn_slo_ms = infinity then None else Some (t.tn_slo_ms *. 1000.0)

let validate (t : t) =
  if t.tn_name = "" then Fmt.invalid_arg "tenant: empty name";
  if t.tn_model = "" then Fmt.invalid_arg "tenant %s: empty model" t.tn_name;
  if t.tn_rate_per_s <= 0.0 then
    Fmt.invalid_arg "tenant %s: rate must be positive" t.tn_name;
  if t.tn_quota < 1 then Fmt.invalid_arg "tenant %s: quota must be >= 1" t.tn_name;
  if t.tn_weight <= 0.0 then
    Fmt.invalid_arg "tenant %s: weight must be positive" t.tn_name;
  if t.tn_requests < 0 then
    Fmt.invalid_arg "tenant %s: negative request count" t.tn_name;
  t

(* Per-tenant seeds step by a prime stride so sibling streams never share a
   seed, while to_spec/parse round-trips stay anchored to one base seed. *)
let seed_stride = 101

let derived_seed ~seed ~index = seed + (seed_stride * index)

(** Parse one [NAME:MODEL:RATE:SLO:QUOTA[:WEIGHT]] spec. [seed], [index],
    [bursty] and [requests] come from the surrounding run configuration. *)
let parse ~seed ~index ~bursty ~requests (spec : string) : t =
  let fail () =
    Fmt.invalid_arg "tenant spec %S: want NAME:MODEL:RATE:SLO:QUOTA[:WEIGHT]" spec
  in
  let num kind s =
    match float_of_string_opt s with
    | Some v -> v
    | None -> Fmt.invalid_arg "tenant spec %S: bad %s %S" spec kind s
  in
  match String.split_on_char ':' spec with
  | name :: model :: rate :: slo :: quota :: rest ->
    let weight = match rest with [] -> 1.0 | [ w ] -> num "weight" w | _ -> fail () in
    validate
      {
        tn_name = name;
        tn_model = model;
        tn_rate_per_s = num "rate" rate;
        tn_bursty = bursty;
        tn_seed = derived_seed ~seed ~index;
        tn_slo_ms = num "slo" slo;
        tn_quota = int_of_float (num "quota" quota);
        tn_weight = weight;
        tn_requests = requests;
      }
  | _ -> fail ()

(** Render back to the CLI spec format (always with the weight field). *)
let to_spec (t : t) : string =
  Fmt.str "%s:%s:%.0f:%g:%d:%g" t.tn_name t.tn_model t.tn_rate_per_s t.tn_slo_ms
    t.tn_quota t.tn_weight

let pp ppf (t : t) =
  Fmt.pf ppf "%s -> %s (%.0f req/s%s, slo %gms, quota %d, weight %g)" t.tn_name
    t.tn_model t.tn_rate_per_s
    (if t.tn_bursty then " bursty" else "")
    t.tn_slo_ms t.tn_quota t.tn_weight
