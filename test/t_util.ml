(** Shared test helpers. *)

open Acrobat

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.check (Alcotest.float eps) msg expected actual

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_true msg b = Alcotest.(check bool) msg true b

let tensor_testable =
  Alcotest.testable Tensor.pp (fun a b -> Tensor.approx_equal ~eps:1e-9 a b)

let check_tensor msg a b = Alcotest.check tensor_testable msg a b

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(** Small positive dims for random shapes. *)
let gen_dim = QCheck2.Gen.int_range 1 6
let gen_shape = QCheck2.Gen.(list_size (int_range 0 3) gen_dim)

let gen_tensor_of_shape shape =
  QCheck2.Gen.(map (fun seed -> Tensor.random (Rng.create seed) shape) int)

(* --- End-to-end helpers --- *)

let run_tiny ?(compute_values = true) ?(batch = 4) ?(seed = 3) ~framework id =
  let model = Models.tiny id in
  let compiled = compile ~framework ~inputs:model.Model.inputs model.Model.source in
  let weights = model.Model.gen_weights 1 in
  let instances = gen_batch model ~batch ~seed in
  run ~compute_values compiled ~weights ~instances ()

(** Flatten every computed tensor of the outputs into one float list (exact
    cross-engine comparison). *)
let output_values (r : Driver.result) : float list =
  List.concat_map
    (fun v ->
      List.concat_map
        (fun h ->
          match Value.handle_out h with
          | Some { tensor = Some t; _ } -> Array.to_list (Tensor.data t)
          | _ -> [])
        (List.rev (Value.handles [] v)))
    r.Driver.outputs

let dynet_kind = Frameworks.Dynet { improved = false; scheduler = Config.Agenda }
let dynet_depth_kind = Frameworks.Dynet { improved = false; scheduler = Config.Runtime_depth }
let acrobat_kind = Frameworks.Acrobat Config.acrobat

(** Substring test (for error-message assertions). *)
let contains (s : string) (sub : string) : bool =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0
