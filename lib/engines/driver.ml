(** End-to-end runs: upload inputs, execute all batch instances (as fibers
    under tensor-dependent control flow), flush, download, report stats. *)

open Acrobat_tensor
open Acrobat_compiler
open Acrobat_runtime
open Value
module Device = Acrobat_device.Device
module Profiler = Acrobat_device.Profiler
module L = Lowered

(** Host-side input values, before upload. *)
type hval =
  | Htensor of Tensor.t
  | Hint of int
  | Hbool of bool
  | Hfloat of float
  | Hlist of hval list
  | Hleaf of hval
  | Hnode of hval * hval
  | Htuple of hval list

let rec hval_tensors acc = function
  | Htensor t -> t :: acc
  | Hint _ | Hbool _ | Hfloat _ -> acc
  | Hlist vs | Htuple vs -> List.fold_left hval_tensors acc vs
  | Hleaf v -> hval_tensors acc v
  | Hnode (a, b) -> hval_tensors (hval_tensors acc a) b

(* Rebuild a runtime value, consuming uploaded handles in order. *)
let rec hval_to_value (next : unit -> handle) = function
  | Htensor _ -> Vtensor (next ())
  | Hint n -> Vint n
  | Hbool b -> Vbool b
  | Hfloat f -> Vfloat f
  | Hlist vs -> of_list (List.map (hval_to_value next) vs)
  | Hleaf v -> Vleaf (hval_to_value next v)
  | Hnode (a, b) ->
    let av = hval_to_value next a in
    Vnode (av, hval_to_value next b)
  | Htuple vs -> Vtuple (Array.of_list (List.map (hval_to_value next) vs))

type mode = Aot_mode | Vm_mode

let mode_name = function Aot_mode -> "aot" | Vm_mode -> "vm"

type stats = {
  latency_ms : float;
  profiler : Profiler.t;
  flushes : int;
}

type result = {
  outputs : value list;  (** @main's result per instance. *)
  stats : stats;
  profile : (int * float * float * int) list;
      (** PGO: kernel, count, mean flops, max shared-arg elems. *)
  per_instance_ms : float array;
      (** Simulated completion latency of each instance, measured from the
          start of this batch. Every instance's outputs become ready at the
          final flush barrier and are downloaded together, so today the
          entries are uniform; the field fixes the contract callers that
          attribute latency per request (the serving layer) program
          against. *)
}

(** Run a lowered program on one mini-batch: upload inputs, execute all
    instances (as fibers under tensor-dependent control flow), flush,
    download, report stats.

    [instances] supplies, per batch instance, the values of @main's input
    parameters by name; [weights] the model parameters. [quality] is the
    auto-scheduled kernel quality ({!Acrobat_compiler.Autosched}).

    [device] lets callers that execute many batches (the serving loop)
    accumulate one profile across calls; latency is charged relative to the
    device's simulated clock at entry, so the result's stats describe just
    this batch either way. [faults] threads a fault injector into the
    device this run creates (ignored when [device] is supplied — a caller
    passing a device has already wired its faults); injected faults
    surface as {!Acrobat_device.Faults.Fault} or
    {!Acrobat_device.Memory.Device_oom} exceptions out of this call.
    [tracer] likewise threads a span sink into a freshly created device, so
    kernel/gather/memcpy spans reach the caller's trace. [instance_keys]
    names each instance's pseudo-random decision stream (default: batch
    position); the serving integrity layer passes stable request ids so a
    request's outputs — and therefore its result fingerprint — do not
    depend on which peers it was batched with. *)
let run_batch ?(compute_values = false) ?(seed = 2024) ?device ?faults ?tracer
    ?instance_keys ~(mode : mode) ~(policy : Policy.t) ~(quality : int -> float)
    ~(lprog : L.t) ~(weights : (string * Tensor.t) list)
    ~(instances : (string * hval) list list) () : result =
  let device =
    match device with Some d -> d | None -> Device.create ?faults ?tracer ()
  in
  let start_us = Profiler.total_us (Device.profiler device) in
  let exec_policy =
    {
      Executor.gather_fusion = lprog.L.config.gather_fusion;
      quality;
      compute_values;
      detect_dynamic_sharing = policy.Policy.detect_dynamic_sharing;
    }
  in
  let n_instances = List.length instances in
  let rt =
    Runtime.create ~device ~scheduler:lprog.L.config.scheduler ~policy:exec_policy ~seed
      ~instances:n_instances
  in
  Option.iter (Runtime.set_decision_keys rt ~seed) instance_keys;
  List.iter (fun (name, tensor) -> Runtime.set_weight rt name tensor) weights;
  let fibers = lprog.L.has_tdc && lprog.L.config.fibers in
  (* Upload all per-instance inputs (batched into one transfer for ACROBAT,
     one call per tensor for the dynamic baselines). *)
  let all_tensors =
    List.concat_map (fun inputs -> List.concat_map (fun (_, hv) -> List.rev (hval_tensors [] hv)) inputs) instances
  in
  let handles = ref (Runtime.upload_inputs rt ~batched:policy.Policy.batched_io all_tensors) in
  let next_handle () =
    match !handles with
    | h :: rest ->
      handles := rest;
      h
    | [] -> fail "input handle underflow"
  in
  let entry = L.entry_def lprog in
  let instance_args =
    List.map
      (fun inputs ->
        List.map
          (fun pname ->
            if List.mem pname lprog.L.weight_params then Vtensor (Runtime.weight rt pname)
            else
              match List.assoc_opt pname inputs with
              | Some hv -> hval_to_value next_handle hv
              | None -> fail "missing input %S for an instance" pname)
          entry.L.lparams)
      instances
  in
  (* Execute. *)
  let outputs = Array.make n_instances Vnil in
  (match mode with
  | Aot_mode ->
    let eng = Aot.create ~rt ~policy ~fibers lprog in
    if fibers then begin
      let tasks =
        List.mapi (fun i args () -> outputs.(i) <- Aot.run_main eng ~instance:i args) instance_args
      in
      ignore (Fiber.run ~on_stall:(fun () -> Runtime.flush rt) tasks)
    end
    else
      List.iteri (fun i args -> outputs.(i) <- Aot.run_main eng ~instance:i args) instance_args
  | Vm_mode ->
    let eng = Vm.create ~rt ~policy ~fibers lprog in
    if fibers then begin
      let tasks =
        List.mapi (fun i args () -> outputs.(i) <- Vm.run_main eng ~instance:i args) instance_args
      in
      ignore (Fiber.run ~on_stall:(fun () -> Runtime.flush rt) tasks)
    end
    else
      List.iteri (fun i args -> outputs.(i) <- Vm.run_main eng ~instance:i args) instance_args);
  (* Final flush and download of results. *)
  Runtime.flush rt;
  let out_handles = Array.fold_left Value.handles [] outputs in
  List.iter
    (fun h -> if not (handle_ready h) then fail "output handle still pending after final flush")
    out_handles;
  Runtime.download rt ~batched:true out_handles;
  let latency_ms = (Profiler.total_us (Device.profiler device) -. start_us) /. 1000.0 in
  {
    outputs = Array.to_list outputs;
    stats =
      {
        latency_ms;
        profiler = Device.profiler device;
        flushes = Runtime.flush_count rt;
      };
    profile = Runtime.profile rt;
    per_instance_ms = Array.make n_instances latency_ms;
  }

(** Historical entry point: one self-contained mini-batch run on a fresh
    device. Alias of {!run_batch}. *)
let run ?compute_values ?seed ~mode ~policy ~quality ~lprog ~weights ~instances () =
  run_batch ?compute_values ?seed ~mode ~policy ~quality ~lprog ~weights ~instances ()

(** Per-instance result fingerprints, in instance order. Meaningful on
    [compute_values] runs (accounting-only outputs digest shapes only). *)
let fingerprints (r : result) : int64 array =
  Array.of_list (List.map Fingerprint.of_value r.outputs)

