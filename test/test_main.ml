let () =
  Alcotest.run "acrobat"
    [
      "tensor", T_tensor.suite;
      "device", T_device.suite;
      "frontend", T_frontend.suite;
      "compiler", T_compiler.suite;
      "runtime", T_runtime.suite;
      "engines", T_engines.suite;
      "serve", T_serve.suite;
      "models", T_models.suite;
      "failures", T_failures.suite;
      "chaos", T_chaos.suite;
      "tenancy", T_tenancy.suite;
    ]
