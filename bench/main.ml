(** Benchmark harness: regenerates every table and figure of the paper's
    evaluation (`all`), or one at a time; `micro` runs the bechamel
    micro-benchmark suite over the runtime hot paths.

    Latencies are simulated milliseconds from the device cost model
    (DESIGN.md §2): counts are real, unit costs are calibrated constants.
    Compare shapes, not absolute values, against the embedded paper
    numbers. *)

open Acrobat
module E = Experiments

let pf = Printf.printf

let size_str = function Model.Small -> "small" | Model.Large -> "large"

let hr title =
  pf "\n%s\n%s\n" title (String.make (String.length title) '=')

let table4 () =
  hr "Table 4: DyNet vs ACROBAT inference latency (ms)";
  pf "%-10s %-6s %5s | %10s %10s %8s | %10s %10s %8s\n" "model" "size" "batch" "dynet"
    "acrobat" "speedup" "paper-dy" "paper-ab" "paper-sp";
  let rows = E.table4 () in
  List.iter
    (fun (r : E.t4_row) ->
      let paper_dy, paper_sp =
        match r.t4_paper_dynet with
        | Some d -> Printf.sprintf "%10.2f" d, Printf.sprintf "%8.2f" (d /. r.t4_paper_acrobat)
        | None -> "       OOM", "       -"
      in
      pf "%-10s %-6s %5d | %10.2f %10.2f %8.2f | %s %10.2f %s\n" r.t4_model
        (size_str r.t4_size) r.t4_batch r.t4_dynet r.t4_acrobat
        (r.t4_dynet /. r.t4_acrobat) paper_dy r.t4_paper_acrobat paper_sp)
    rows;
  let geo =
    let logs = List.map (fun (r : E.t4_row) -> log (r.t4_dynet /. r.t4_acrobat)) rows in
    exp (List.fold_left ( +. ) 0.0 logs /. float_of_int (List.length logs))
  in
  pf "geometric-mean speedup over DyNet: %.2fx (paper: 2.3x overall)\n" geo

let table5 () =
  hr "Table 5: activity breakdown at batch size 64 (ms)";
  List.iter
    (fun (label, (dy : E.t5_cell), (ab : E.t5_cell)) ->
      pf "\n-- %s --\n" label;
      pf "%-18s %10s %10s\n" "activity" "dynet" "acrobat";
      pf "%-18s %10.2f %10.2f\n" "DFG construction" dy.t5_dfg ab.t5_dfg;
      pf "%-18s %10.2f %10.2f\n" "Scheduling" dy.t5_sched ab.t5_sched;
      pf "%-18s %10.2f %10.2f\n" "Mem. copy time" dy.t5_mem ab.t5_mem;
      pf "%-18s %10.2f %10.2f\n" "GPU kernel time" dy.t5_kernel ab.t5_kernel;
      pf "%-18s %10d %10d\n" "#Kernel calls" dy.t5_kernel_calls ab.t5_kernel_calls;
      pf "%-18s %10.2f %10.2f\n" "CUDA API time" dy.t5_api ab.t5_api)
    (E.table5 ());
  pf "\npaper (TreeLSTM small): DFG 8.8/1.5, sched 9.7/0.4, mem 3.1/0.1, kernel 6.1/4.0, calls 1653/183, API 16.5/3.9\n";
  pf "paper (BiRNN large):    DFG 4.5/1.0, sched 3.3/0.4, mem 2.3/0.2, kernel 6.6/11.2, calls 580/380, API 12.0/11.1\n"

let table6 () =
  hr "Table 6: Cortex vs ACROBAT inference latency (ms)";
  pf "%-10s %-6s %5s | %10s %10s | %10s %10s\n" "model" "size" "batch" "cortex" "acrobat"
    "paper-cx" "paper-ab";
  List.iter
    (fun (r : E.t6_row) ->
      pf "%-10s %-6s %5d | %10.2f %10.2f | %10.2f %10.2f\n" r.t6_model (size_str r.t6_size)
        r.t6_batch r.t6_cortex r.t6_acrobat r.t6_paper_cortex r.t6_paper_acrobat)
    (E.table6 ())

let table7 () =
  hr "Table 7: Relay VM vs AOT compilation (ms)";
  pf "%-10s %-6s %5s | %10s %10s %8s | %10s %10s\n" "model" "size" "batch" "vm" "aot"
    "speedup" "paper-vm" "paper-aot";
  List.iter
    (fun (r : E.t7_row) ->
      pf "%-10s %-6s %5d | %10.2f %10.2f %8.2f | %10.2f %10.2f\n" r.t7_model
        (size_str r.t7_size) r.t7_batch r.t7_vm r.t7_aot (r.t7_vm /. r.t7_aot) r.t7_paper_vm
        r.t7_paper_aot)
    (E.table7 ())

let table8 () =
  hr "Table 8: DyNet vs DyNet++ (improved heuristics) vs ACROBAT (ms)";
  pf "%-10s %-6s %5s | %8s %8s %8s | %8s %8s %8s\n" "model" "size" "batch" "DN" "DN++" "AB"
    "p-DN" "p-DN++" "p-AB";
  List.iter
    (fun (r : E.t8_row) ->
      let pdn, pdnpp, pab = r.t8_paper in
      pf "%-10s %-6s %5d | %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f\n" r.t8_model
        (size_str r.t8_size) r.t8_batch r.t8_dn r.t8_dnpp r.t8_ab pdn pdnpp pab)
    (E.table8 ())

let table9 () =
  hr "Table 9: PGO benefit during auto-scheduling (NestedRNN small, batch 8; ms)";
  pf "%8s | %10s %10s | %10s %10s\n" "iters" "no-PGO" "PGO" "paper-no" "paper-PGO";
  List.iter
    (fun (r : E.t9_row) ->
      pf "%8d | %10.2f %10.2f | %10.2f %10.2f\n" r.t9_iters r.t9_nopgo r.t9_pgo
        r.t9_paper_nopgo r.t9_paper_pgo)
    (E.table9 ())

let fig5 () =
  hr "Figure 5: benefit of each optimization (large, batch 64; ms)";
  let rows = E.fig5 () in
  let labels = List.map fst E.ablation_ladder in
  pf "%-10s" "model";
  List.iter (fun l -> pf " %14s" l) labels;
  pf "\n";
  List.iter
    (fun (r : E.fig5_row) ->
      pf "%-10s" r.f5_model;
      List.iter (fun (_, ms) -> pf " %14.2f" ms) r.f5_steps;
      pf "\n")
    rows;
  pf "(expected shape: monotone improvement; gather fusion may hurt iterative low-parallelism models, cf. paper 7.3)\n"

let fig9 () =
  hr "Figure 9: speedup over PyTorch";
  pf "%-10s %-6s %5s | %10s %10s %8s\n" "model" "size" "batch" "pytorch" "acrobat" "speedup";
  List.iter
    (fun (r : E.fig9_row) ->
      pf "%-10s %-6s %5d | %10.2f %10.2f %8.2f\n" r.f9_model (size_str r.f9_size) r.f9_batch
        r.f9_pytorch r.f9_acrobat (r.f9_pytorch /. r.f9_acrobat))
    (E.fig9 ());
  pf "(paper: all speedups > 1; larger for small model sizes; BiRNN lowest, MV-RNN highest)\n"

let extras () =
  hr "Extra ablation: scheduler comparison (batch 64)";
  pf "%-10s %-14s %10s %12s %8s\n" "model" "scheduler" "latency" "sched-ms" "batches";
  List.iter
    (fun (id, sched, lat, sched_ms, batches) ->
      pf "%-10s %-14s %10.2f %12.3f %8d\n" id sched lat sched_ms batches)
    (E.ablation_scheduler ());
  hr "Extra ablation: context sensitivity (BiRNN small, batch 64)";
  pf "%-8s %10s %14s %10s\n" "ctx" "latency" "gather-bytes" "gathers";
  List.iter
    (fun (ctx, lat, bytes, gathers) -> pf "%-8b %10.2f %14d %10d\n" ctx lat bytes gathers)
    (E.ablation_context ())

(* --- bechamel micro-benchmarks over runtime hot paths --- *)

let micro () =
  hr "bechamel micro-benchmarks (real wall time of hot paths)";
  Micro.run ()

let experiments =
  [
    "table4", table4;
    "table5", table5;
    "table6", table6;
    "table7", table7;
    "table8", table8;
    "table9", table9;
    "fig5", fig5;
    "fig9", fig9;
    "extras", extras;
    "micro", micro;
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let selected =
    match args with
    | [] | [ "all" ] -> List.map fst experiments
    | names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
        pf "unknown experiment %S; available: %s all\n" name
          (String.concat " " (List.map fst experiments));
        exit 1)
    selected
