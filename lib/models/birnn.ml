(** Bidirectional RNN over XNLI-like token sequences, with per-token output
    classification (Schuster & Paliwal 1997; paper §C.1's code-duplication
    example).

    The same [@rnn] is invoked with forward and with backward weights —
    context-sensitive specialization is what keeps the weight arguments
    shared in the generated kernels. The per-token output operators are the
    program-phases example (§B.3): sentence lengths differ, so without a
    phase barrier their depths differ across instances and they fail to
    batch. *)

module Driver = Acrobat_engines.Driver
module W = Acrobat_workloads

let template =
  {|
def @rnn(%inps: List[Tensor[(1, {H})]], %state: Tensor[(1, {H})],
         %bias: Tensor[(1, {H})], %i_wt: Tensor[({H}, {H})], %h_wt: Tensor[({H}, {H})])
    -> List[Tensor[(1, {H})]] {
  match (%inps) {
    Nil => Nil,
    Cons(%inp, %tail) => {
      let %inp_linear = %bias + matmul(%inp, %i_wt);
      let %new_state = sigmoid(%inp_linear + matmul(%state, %h_wt));
      Cons(%new_state, @rnn(%tail, %new_state, %bias, %i_wt, %h_wt))
    }
  }
}

def @reverse(%xs: List[Tensor[(1, {H})]], %acc: List[Tensor[(1, {H})]])
    -> List[Tensor[(1, {H})]] {
  match (%xs) {
    Nil => %acc,
    Cons(%h, %t) => @reverse(%t, Cons(%h, %acc))
  }
}

def @zip(%a: List[Tensor[(1, {H})]], %b: List[Tensor[(1, {H})]])
    -> List[(Tensor[(1, {H})], Tensor[(1, {H})])] {
  match (%a) {
    Nil => Nil,
    Cons(%x, %xs) => match (%b) {
      Nil => Nil,
      Cons(%y, %ys) => Cons((%x, %y), @zip(%xs, %ys))
    }
  }
}

def @main(%f_bias: Tensor[(1, {H})], %f_iw: Tensor[({H}, {H})], %f_hw: Tensor[({H}, {H})],
          %b_bias: Tensor[(1, {H})], %b_iw: Tensor[({H}, {H})], %b_hw: Tensor[({H}, {H})],
          %init: Tensor[(1, {H})],
          %c_wt: Tensor[({H2}, {C})], %c_b: Tensor[(1, {C})],
          %inps: List[Tensor[(1, {H})]]) -> List[Tensor[(1, {C})]] {
  let %fwd = @rnn(%inps, %init, %f_bias, %f_iw, %f_hw);
  let %rinps = @reverse(%inps, Nil);
  let %bwd_rev = @rnn(%rinps, %init, %b_bias, %b_iw, %b_hw);
  let %bwd = @reverse(%bwd_rev, Nil);
  let %pairs = @zip(%fwd, %bwd);
  map(fn(%p: (Tensor[(1, {H})], Tensor[(1, {H})])) {
    relu(%c_b + matmul(concat(%p.0, %p.1), %c_wt))
  }, %pairs)
}
|}

let make ?(classes = 16) ?hidden (size : Model.size) : Model.t =
  let hidden =
    match hidden with
    | Some h -> h
    | None -> ( match size with Model.Small -> 256 | Model.Large -> 512)
  in
  let specs =
    [
      "f_bias", [ 1; hidden ];
      "f_iw", [ hidden; hidden ];
      "f_hw", [ hidden; hidden ];
      "b_bias", [ 1; hidden ];
      "b_iw", [ hidden; hidden ];
      "b_hw", [ hidden; hidden ];
      "init", [ 1; hidden ];
      "c_wt", [ 2 * hidden; classes ];
      "c_b", [ 1; classes ];
    ]
  in
  let table = Model.embedding_table ~dim:hidden ~seed:37 in
  {
    Model.name = "birnn";
    size;
    source = Model.subst [ "H", hidden; "H2", 2 * hidden; "C", classes ] template;
    inputs = [ "inps" ];
    gen_weights = Model.weights_of_specs specs;
    gen_instance =
      (fun rng ->
        let words = W.Sentences.sample rng in
        [
          ( "inps",
            Driver.Hlist
              (List.map (fun w -> Driver.Htensor (W.Embeddings.lookup table w)) words) );
        ]);
    degraded = None;
  }
