(** Re-export of the JSON value type and emitter, which moved to
    {!Acrobat_obs.Json} when the observability layer (sitting below the
    serving stack) gained the trace exporter. Kept here so existing
    [Serve.Json] users are unaffected. *)

include Acrobat_obs.Json
