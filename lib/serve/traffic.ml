(** Workload generators: request arrival processes over virtual time.

    Two open-loop processes (clients do not wait for responses, matching a
    front-end fed by millions of independent users) plus a closed burst:

    - {b Poisson}: memoryless arrivals at a fixed offered load.
    - {b Bursty}: a two-state Markov-modulated Poisson process — dwell times
      are exponential, each state has its own rate — the classic model for
      diurnal / flash-crowd traffic.
    - {b Burst}: everything at once; the worst case for admission control
      and the best case for cross-request batching.

    All randomness flows through {!Acrobat_tensor.Rng}, so a seed fully
    determines the trace. Rates are requests per second; times are
    simulated microseconds. *)

open Acrobat_tensor

type process =
  | Poisson of { rate_per_s : float }
  | Bursty of {
      rate_low_per_s : float;
      rate_high_per_s : float;
      mean_dwell_us : float;  (** Mean sojourn time in each state. *)
    }
  | Burst of { at_us : float }

let pp_process ppf = function
  | Poisson { rate_per_s } -> Fmt.pf ppf "poisson(%.0f req/s)" rate_per_s
  | Bursty { rate_low_per_s; rate_high_per_s; mean_dwell_us } ->
    Fmt.pf ppf "bursty(%.0f/%.0f req/s, dwell %.0fus)" rate_low_per_s rate_high_per_s
      mean_dwell_us
  | Burst { at_us } -> Fmt.pf ppf "burst(at %.0fus)" at_us

(* Exponential sample with the given mean; guards the log against u = 0. *)
let exp_sample rng ~mean_us = -.mean_us *. log (Float.max 1e-12 (1.0 -. Rng.float rng))

let mean_interarrival_us rate_per_s = 1.0e6 /. rate_per_s

(** [arrivals ~rng process ~n] draws [n] monotone arrival timestamps. *)
let arrivals ~(rng : Rng.t) (process : process) ~(n : int) : float array =
  let times = Array.make n 0.0 in
  (match process with
  | Burst { at_us } -> Array.fill times 0 n at_us
  | Poisson { rate_per_s } ->
    let mean_us = mean_interarrival_us rate_per_s in
    let t = ref 0.0 in
    for i = 0 to n - 1 do
      t := !t +. exp_sample rng ~mean_us;
      times.(i) <- !t
    done
  | Bursty { rate_low_per_s; rate_high_per_s; mean_dwell_us } ->
    (* MMPP: candidate inter-arrivals at the current state's rate; a
       candidate past the next state switch restarts from the switch
       instant under the other rate (memorylessness makes this exact). *)
    let t = ref 0.0 in
    let high = ref false in
    let switch_at = ref (exp_sample rng ~mean_us:mean_dwell_us) in
    for i = 0 to n - 1 do
      let rec draw () =
        let rate = if !high then rate_high_per_s else rate_low_per_s in
        let candidate = !t +. exp_sample rng ~mean_us:(mean_interarrival_us rate) in
        if candidate <= !switch_at then candidate
        else begin
          t := !switch_at;
          high := not !high;
          switch_at := !switch_at +. exp_sample rng ~mean_us:mean_dwell_us;
          draw ()
        end
      in
      let a = draw () in
      t := a;
      times.(i) <- a
    done);
  times
