(** Tensor shapes as immutable int lists (row-major). *)

type t = int list

let equal (a : t) (b : t) = a = b

let numel (s : t) = List.fold_left ( * ) 1 s

let rank = List.length

let pp ppf s =
  Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") int) s

let to_string s = Fmt.str "%a" pp s

exception Mismatch of string

let fail fmt = Fmt.kstr (fun m -> raise (Mismatch m)) fmt

(** Row-major strides for a shape. *)
let strides (s : t) : int array =
  let dims = Array.of_list s in
  let n = Array.length dims in
  let st = Array.make n 1 in
  for i = n - 2 downto 0 do
    st.(i) <- st.(i + 1) * dims.(i + 1)
  done;
  st

(** Shape of [a @ b] for 2-D matrix multiplication. *)
let matmul a b =
  match a, b with
  | [ m; k ], [ k'; n ] when k = k' -> [ m; n ]
  | _ -> fail "matmul: incompatible shapes %a x %a" pp a pp b

(** Numpy-style broadcast of two shapes. *)
let broadcast a b =
  let ra = List.rev a and rb = List.rev b in
  let rec go ra rb acc =
    match ra, rb with
    | [], [] -> acc
    | d :: ra', [] -> go ra' [] (d :: acc)
    | [], d :: rb' -> go [] rb' (d :: acc)
    | da :: ra', db :: rb' ->
      if da = db then go ra' rb' (da :: acc)
      else if da = 1 then go ra' rb' (db :: acc)
      else if db = 1 then go ra' rb' (da :: acc)
      else fail "broadcast: incompatible shapes %a and %a" pp a pp b
  in
  go ra rb []

(** Shape after concatenating [shapes] along [axis]. *)
let concat ~axis shapes =
  match shapes with
  | [] -> fail "concat: empty shape list"
  | first :: rest ->
    let check_compatible s =
      if rank s <> rank first then
        fail "concat: rank mismatch %a vs %a" pp first pp s;
      List.iteri
        (fun i (d, d') ->
          if i <> axis && d <> d' then
            fail "concat: dim %d mismatch %a vs %a" i pp first pp s)
        (List.combine first s)
    in
    List.iter check_compatible rest;
    let total = List.fold_left (fun acc s -> acc + List.nth s axis) 0 (first :: rest) in
    List.mapi (fun i d -> if i = axis then total else d) first
