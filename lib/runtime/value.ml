(** Runtime values and dataflow-graph nodes.

    Tensor values are {e symbolic} during lazy execution: evaluating a block
    yields handles onto a pending DFG node; the tensors materialize when the
    runtime flushes the graph (§2.2). Materialized handles carry a simulated
    device address, which is what batching contiguity checks consult. *)

open Acrobat_tensor
open Acrobat_compiler

(** Per-instance execution context: the runtime depth counter of the inline
    depth-computation scheme (Listing 2's [depth] parameter) and the current
    program phase. Forked fibers get clones; joins take the max depth. *)
type ictx = { ictx_instance : int; mutable ictx_depth : int; mutable ictx_phase : int }

let clone_ictx i = { i with ictx_instance = i.ictx_instance }

type out = {
  mutable tensor : Tensor.t option;
      (** Concrete value; [None] until executed, and possibly forever when
          the engine runs in accounting-only mode (no value computation). *)
  mutable addr : int;  (** Simulated device address (elements). *)
  shape : Shape.t;
}

let out_elems o = Shape.numel o.shape

type node = {
  id : int;
  kernel : Kernel.t;
  args : handle array;  (** All kernel arguments, shared ones included. *)
  phase : int;
  depth : int;
  instance : int;
  group_flops : float list;  (** Per-launch-group FLOPs for this node. *)
  group_bytes : float list;  (** Per-launch-group memory traffic (bytes). *)
  sig_key : string;
      (** Batching signature: nodes batch together only when equal. Engines
          control its contents (ACROBAT: kernel id + shapes; DyNet adds its
          heuristics' constraints). *)
  seq : int;  (** Insertion order (a valid dependency order, obs. O.1). *)
  out_shapes : Shape.t array;
  mutable outs : out array option;  (** Set once the node has executed. *)
}

and handle =
  | Hmat of out  (** Materialized: inputs, weights, constants, or executed. *)
  | Hnode of node * int  (** Output slot [i] of a (possibly pending) node. *)

let node_executed n = n.outs <> None

let handle_shape = function Hmat o -> o.shape | Hnode (n, i) -> n.out_shapes.(i)

(** The materialized output behind a handle, if executed. *)
let handle_out = function
  | Hmat o -> Some o
  | Hnode (n, i) -> (match n.outs with Some outs -> Some outs.(i) | None -> None)

let handle_ready h = handle_out h <> None

(** The pending node behind a handle, if any. *)
let handle_node = function
  | Hmat _ -> None
  | Hnode (n, _) -> if node_executed n then None else Some n

type value =
  | Vtensor of handle
  | Vint of int
  | Vbool of bool
  | Vfloat of float
  | Vnil
  | Vcons of value * value
  | Vleaf of value
  | Vnode of value * value
  | Vtuple of value array
  | Vfun of (ictx -> value list -> value)

exception Runtime_error of string

let fail fmt = Fmt.kstr (fun m -> raise (Runtime_error m)) fmt

let to_handle = function Vtensor h -> h | _ -> fail "expected a tensor value"
let to_int = function Vint n -> n | _ -> fail "expected an int"
let to_bool = function Vbool b -> b | _ -> fail "expected a bool"
let to_float = function Vfloat f -> f | _ -> fail "expected a float"
let to_fun = function Vfun f -> f | _ -> fail "expected a function"

let rec to_list = function
  | Vnil -> []
  | Vcons (h, t) -> h :: to_list t
  | _ -> fail "expected a list"

let rec of_list = function [] -> Vnil | h :: t -> Vcons (h, of_list t)

(** All tensor handles reachable from a value (for forcing results). *)
let rec handles acc = function
  | Vtensor h -> h :: acc
  | Vint _ | Vbool _ | Vfloat _ | Vnil | Vfun _ -> acc
  | Vcons (a, b) | Vnode (a, b) -> handles (handles acc a) b
  | Vleaf a -> handles acc a
  | Vtuple vs -> Array.fold_left handles acc vs

let rec pp ppf = function
  | Vtensor h -> begin
    match handle_out h with
    | Some { tensor = Some t; _ } -> Tensor.pp ppf t
    | Some { shape; _ } -> Fmt.pf ppf "<tensor %a (not computed)>" Shape.pp shape
    | None -> Fmt.pf ppf "<pending tensor>"
  end
  | Vint n -> Fmt.int ppf n
  | Vbool b -> Fmt.bool ppf b
  | Vfloat f -> Fmt.float ppf f
  | Vnil -> Fmt.string ppf "Nil"
  | Vcons (a, b) -> Fmt.pf ppf "Cons(%a, %a)" pp a pp b
  | Vleaf a -> Fmt.pf ppf "Leaf(%a)" pp a
  | Vnode (a, b) -> Fmt.pf ppf "Node(%a, %a)" pp a pp b
  | Vtuple vs -> Fmt.pf ppf "(%a)" Fmt.(array ~sep:(any ", ") pp) vs
  | Vfun _ -> Fmt.string ppf "<fun>"
