(** Ahead-of-time compilation of the lowered program to native closures
    (paper §6, §D.2, Table 7).

    Each definition is staged once into a tree of OCaml closures with
    variables resolved to array slots — the analogue of ACROBAT's AOT
    compilation to C++, which eliminates the interpretive dispatch and
    environment-lookup overheads the Relay VM pays (see {!Vm} for the
    interpreted counterpart). *)

open Acrobat_compiler
open Acrobat_runtime
open Value
module Ast = Acrobat_ir.Ast
module L = Lowered
module Device = Acrobat_device.Device

type t = {
  rt : Runtime.t;
  policy : Policy.t;
  lprog : L.t;
  fibers : bool;  (** Run instances as fibers (TDC present and enabled). *)
  base_depth : int;  (** Initial dynamic depth (above all static depths). *)
  table : (string, value list -> ictx -> value) Hashtbl.t;
}

(* Compile-time scope: variable name -> environment slot. Every binding
   occurrence gets a distinct slot, so closures capturing the environment
   array never see later bindings overwrite what they read. *)
type scope = { mutable slots : (string * int) list; mutable next : int }

let fresh_slot scope x =
  let i = scope.next in
  scope.next <- scope.next + 1;
  scope.slots <- (x, i) :: scope.slots;
  i

let slot_of scope x =
  match List.assoc_opt x scope.slots with
  | Some i -> i
  | None -> fail "unbound variable %s (AOT compilation bug)" x

(* Wait for a handle to materialize: suspend the fiber (the driver flushes
   on stall) or flush directly in sequential mode. *)
(* After any barrier everything previously pending has executed, so the
   per-instance dynamic depth counter restarts at the base: scheduling
   depths only order nodes within one flush window, and restarting re-aligns
   instances whose counters drifted apart under data-dependent iteration
   counts. *)
let ensure_ready st ictx h =
  if not (handle_ready h) then begin
    if st.fibers then begin
      Device.charge_fiber_switch (Runtime.device st.rt);
      Fiber.suspend ()
    end;
    if not (handle_ready h) then Runtime.flush st.rt;
    ictx.ictx_depth <- st.base_depth
  end

(* Barrier before a tensor-dependent decision: emulated TDC still forces the
   pending DFG to evaluate (§E.1). *)
let decision_barrier st ictx =
  if Runtime.has_pending st.rt then begin
    if st.fibers then begin
      (* Suspending is the whole barrier: the driver flushes when every
         fiber is blocked. Nodes pending after resume belong to fibers that
         ran ahead of us and must NOT be forced here, or concurrent
         instances degrade into singleton batches. *)
      Device.charge_fiber_switch (Runtime.device st.rt);
      Fiber.suspend ()
    end
    else Runtime.flush st.rt;
    ictx.ictx_depth <- st.base_depth
  end

let eval_binop op a b =
  match op, a, b with
  | Ast.Add, Vint x, Vint y -> Vint (x + y)
  | Ast.Sub, Vint x, Vint y -> Vint (x - y)
  | Ast.Mul, Vint x, Vint y -> Vint (x * y)
  | Ast.Div, Vint x, Vint y -> Vint (x / y)
  | Ast.Mod, Vint x, Vint y -> Vint (x mod y)
  | Ast.Add, Vfloat x, Vfloat y -> Vfloat (x +. y)
  | Ast.Sub, Vfloat x, Vfloat y -> Vfloat (x -. y)
  | Ast.Mul, Vfloat x, Vfloat y -> Vfloat (x *. y)
  | Ast.Div, Vfloat x, Vfloat y -> Vfloat (x /. y)
  | Ast.Lt, Vint x, Vint y -> Vbool (x < y)
  | Ast.Le, Vint x, Vint y -> Vbool (x <= y)
  | Ast.Gt, Vint x, Vint y -> Vbool (x > y)
  | Ast.Ge, Vint x, Vint y -> Vbool (x >= y)
  | Ast.Eq, Vint x, Vint y -> Vbool (x = y)
  | Ast.Lt, Vfloat x, Vfloat y -> Vbool (x < y)
  | Ast.Le, Vfloat x, Vfloat y -> Vbool (x <= y)
  | Ast.Gt, Vfloat x, Vfloat y -> Vbool (x > y)
  | Ast.Ge, Vfloat x, Vfloat y -> Vbool (x >= y)
  | Ast.Eq, Vfloat x, Vfloat y -> Vbool (x = y)
  | Ast.Eq, Vbool x, Vbool y -> Vbool (x = y)
  | Ast.And, Vbool x, Vbool y -> Vbool (x && y)
  | Ast.Or, Vbool x, Vbool y -> Vbool (x || y)
  | _ -> fail "binary operator %s applied to incompatible values" (Ast.binop_name op)

(* Run independent thunks: forked as fibers when allowed, else sequentially
   with the instance-parallelism depth rule (same start depth; join at the
   max, §4.1). Each thunk receives its own ictx clone. *)
let run_parallel st ictx (n : int) (thunk_of : int -> ictx -> value) : value array =
  let clones = Array.init n (fun _ -> clone_ictx ictx) in
  let results =
    if st.fibers && st.policy.Policy.allow_fork && n > 1 then
      Fiber.fork (Array.init n (fun i () -> thunk_of i clones.(i)))
    else begin
      (* Explicit ascending loop: Array.init's evaluation order is
         unspecified, and thunk order decides DFG node order. *)
      let out = Array.make n Vnil in
      for i = 0 to n - 1 do
        out.(i) <- thunk_of i clones.(i)
      done;
      out
    end
  in
  let maxd = Array.fold_left (fun acc c -> max acc c.ictx_depth) ictx.ictx_depth clones in
  ictx.ictx_depth <- maxd;
  results

let rec compile (st : t) (scope : scope) (e : L.lexpr) : value array -> ictx -> value =
  match e with
  | L.Lvar x ->
    let i = slot_of scope x in
    fun env _ -> env.(i)
  | L.Lglobal g -> fun _ _ -> Vfun (fun ictx args -> call st g args ictx)
  | L.Lint n ->
    let v = Vint n in
    fun _ _ -> v
  | L.Lfloat f ->
    let v = Vfloat f in
    fun _ _ -> v
  | L.Lbool b ->
    let v = Vbool b in
    fun _ _ -> v
  | L.Llet (x, rhs, body) ->
    let rhs_f = compile st scope rhs in
    let i = fresh_slot scope x in
    let body_f = compile st scope body in
    fun env ictx ->
      env.(i) <- rhs_f env ictx;
      body_f env ictx
  | L.Lif (c, a, b) ->
    let c_f = compile st scope c and a_f = compile st scope a and b_f = compile st scope b in
    fun env ictx -> if to_bool (c_f env ictx) then a_f env ictx else b_f env ictx
  | L.Lblock (b, cont) ->
    let arg_fs = List.map (compile st scope) b.args in
    let out_slots = List.map (fresh_slot scope) b.outs in
    let cont_f = compile st scope cont in
    let kernel = b.kernel in
    fun env ictx ->
      let args = Array.of_list (List.map (fun f -> to_handle (f env ictx)) arg_fs) in
      let depth =
        match b.depth with
        | L.Static d -> d
        | L.Dynamic ->
          let d = ictx.ictx_depth in
          ictx.ictx_depth <- d + 1;
          d
      in
      let sig_key = st.policy.Policy.sig_of kernel args in
      let outs =
        Runtime.invoke st.rt ~kernel ~args ~instance:ictx.ictx_instance ~phase:ictx.ictx_phase ~depth
          ~sig_key
      in
      if st.policy.Policy.eager then Runtime.flush st.rt;
      List.iteri (fun k slot -> env.(slot) <- Vtensor outs.(k)) out_slots;
      cont_f env ictx
  | L.Lcall (f, args) ->
    let f_f = compile st scope f in
    let arg_fs = List.map (compile st scope) args in
    fun env ictx ->
      let fv = to_fun (f_f env ictx) in
      fv ictx (List.map (fun g -> g env ictx) arg_fs)
  | L.Lfn (params, body) ->
    let param_slots = List.map (fresh_slot scope) params in
    let body_f = compile st scope body in
    fun env _ ->
      Vfun
        (fun ictx args ->
          (* Fresh environment per application so concurrently mapped
             applications do not clobber each other's parameters. *)
          let env' = Array.copy env in
          (try List.iter2 (fun slot a -> env'.(slot) <- a) param_slots args
           with Invalid_argument _ -> fail "arity mismatch in closure call");
          body_f env' ictx)
  | L.Lmatch (s, cases) ->
    let s_f = compile st scope s in
    let compiled =
      List.map
        (fun (pat, body) ->
          match pat with
          | Ast.Pwild | Ast.Pnil ->
            let body_f = compile st scope body in
            pat, (fun env ictx _bind -> body_f env ictx), [||]
          | Ast.Pcons (h, t) | Ast.Pnode (h, t) ->
            let sh = fresh_slot scope h and stl = fresh_slot scope t in
            let body_f = compile st scope body in
            pat, (fun env ictx _ -> body_f env ictx), [| sh; stl |]
          | Ast.Pleaf v ->
            let sv = fresh_slot scope v in
            let body_f = compile st scope body in
            pat, (fun env ictx _ -> body_f env ictx), [| sv |])
        cases
    in
    fun env ictx ->
      let sv = s_f env ictx in
      let rec dispatch = function
        | [] -> fail "match failure"
        | (pat, body_f, slots) :: rest -> begin
          match pat, sv with
          | Ast.Pwild, _ -> body_f env ictx ()
          | Ast.Pnil, Vnil -> body_f env ictx ()
          | Ast.Pcons _, Vcons (h, t) ->
            env.(slots.(0)) <- h;
            env.(slots.(1)) <- t;
            body_f env ictx ()
          | Ast.Pleaf _, Vleaf v ->
            env.(slots.(0)) <- v;
            body_f env ictx ()
          | Ast.Pnode _, Vnode (l, r) ->
            env.(slots.(0)) <- l;
            env.(slots.(1)) <- r;
            body_f env ictx ()
          | _ -> dispatch rest
        end
      in
      dispatch compiled
  | L.Lnil -> fun _ _ -> Vnil
  | L.Lcons (a, b) ->
    let a_f = compile st scope a and b_f = compile st scope b in
    fun env ictx ->
      let av = a_f env ictx in
      Vcons (av, b_f env ictx)
  | L.Lleaf a ->
    let a_f = compile st scope a in
    fun env ictx -> Vleaf (a_f env ictx)
  | L.Lnode (a, b) ->
    let a_f = compile st scope a and b_f = compile st scope b in
    fun env ictx ->
      let av = a_f env ictx in
      Vnode (av, b_f env ictx)
  | L.Ltuple es ->
    let fs = Array.of_list (List.map (compile st scope) es) in
    fun env ictx -> Vtuple (Array.map (fun f -> f env ictx) fs)
  | L.Lproj (a, k) ->
    let a_f = compile st scope a in
    fun env ictx -> begin
      match a_f env ictx with
      | Vtuple vs when k < Array.length vs -> vs.(k)
      | _ -> fail "bad tuple projection"
    end
  | L.Lbinop (op, a, b) ->
    let a_f = compile st scope a and b_f = compile st scope b in
    fun env ictx ->
      let av = a_f env ictx in
      eval_binop op av (b_f env ictx)
  | L.Lnot a ->
    let a_f = compile st scope a in
    fun env ictx -> Vbool (not (to_bool (a_f env ictx)))
  | L.Lconcurrent es ->
    let fs = Array.of_list (List.map (compile st scope) es) in
    fun env ictx ->
      Vtuple (run_parallel st ictx (Array.length fs) (fun i c -> fs.(i) env c))
  | L.Lmap (f, xs) ->
    let f_f = compile st scope f and xs_f = compile st scope xs in
    fun env ictx ->
      let fv = to_fun (f_f env ictx) in
      let elems = Array.of_list (to_list (xs_f env ictx)) in
      let results =
        run_parallel st ictx (Array.length elems) (fun i c -> fv c [ elems.(i) ])
      in
      of_list (Array.to_list results)
  | L.Lscalar a ->
    let a_f = compile st scope a in
    fun env ictx ->
      let h = to_handle (a_f env ictx) in
      ensure_ready st ictx h;
      Vfloat (Runtime.scalar_value st.rt h)
  | L.Lchoice a ->
    let a_f = compile st scope a in
    fun env ictx ->
      let n = to_int (a_f env ictx) in
      decision_barrier st ictx;
      Vint (Runtime.decision_int st.rt ~instance:ictx.ictx_instance n)
  | L.Lcoin a ->
    let a_f = compile st scope a in
    fun env ictx ->
      let p = to_float (a_f env ictx) in
      decision_barrier st ictx;
      Vbool (Runtime.decision_bool st.rt ~instance:ictx.ictx_instance p)
  | L.Lghost (n, cont) ->
    let cont_f = compile st scope cont in
    fun env ictx ->
      ictx.ictx_depth <- ictx.ictx_depth + n;
      cont_f env ictx
  | L.Lphase (k, cont) ->
    let cont_f = compile st scope cont in
    fun env ictx ->
      ictx.ictx_phase <- k;
      ictx.ictx_depth <- st.base_depth;
      cont_f env ictx
  | L.Lshared bind ->
    let cache = ref None in
    fun _ _ -> begin
      match !cache with
      | Some v -> v
      | None ->
        let v = Vtensor (Runtime.shared_handle st.rt bind) in
        cache := Some v;
        v
    end

and compile_def (st : t) (d : L.ldef) : value list -> ictx -> value =
  let scope = { slots = []; next = 0 } in
  let param_slots = List.map (fresh_slot scope) d.lparams in
  let body_f = compile st scope d.lbody in
  let nslots = scope.next in
  fun args ictx ->
    let env = Array.make nslots Vnil in
    (try List.iter2 (fun slot a -> env.(slot) <- a) param_slots args
     with Invalid_argument _ ->
       fail "arity mismatch calling %s (%d args for %d params)" d.lname (List.length args)
         (List.length d.lparams));
    body_f env ictx

and call st name args ictx =
  match Hashtbl.find_opt st.table name with
  | Some f -> f args ictx
  | None -> begin
    match Hashtbl.find_opt st.lprog.L.defs name with
    | None -> fail "no definition %s" name
    | Some d ->
      let f = compile_def st d in
      Hashtbl.replace st.table name f;
      f args ictx
  end

(** Stage the whole program. *)
let create ~rt ~policy ~fibers (lprog : L.t) : t =
  let st =
    {
      rt;
      policy;
      lprog;
      fibers;
      base_depth = lprog.L.max_static_depth + 1;
      table = Hashtbl.create 16;
    }
  in
  (* Compile eagerly so compilation cost is not on the execution path. *)
  Hashtbl.iter
    (fun name d ->
      if not (Hashtbl.mem st.table name) then Hashtbl.replace st.table name (compile_def st d))
    lprog.L.defs;
  st

(** Fresh per-instance context. *)
let new_ictx st ~instance = { ictx_instance = instance; ictx_depth = st.base_depth; ictx_phase = 0 }

(** Run @main for one instance. *)
let run_main st ~instance (args : value list) : value =
  call st st.lprog.L.entry args (new_ictx st ~instance)
