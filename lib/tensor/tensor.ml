(** Dense row-major float tensors.

    This is the numeric substrate underneath the simulated accelerator: all
    "device kernels" ultimately compute with these, so control-flow decisions
    that depend on tensor values (early exit, parser actions, ...) are
    genuinely value-dependent rather than scripted. *)

type t = { shape : Shape.t; data : float array }

let shape t = t.shape
let data t = t.data
let numel t = Array.length t.data

let create shape data =
  if Shape.numel shape <> Array.length data then
    Shape.fail "create: shape %a does not match %d elements" Shape.pp shape
      (Array.length data);
  { shape; data }

let full shape v = { shape; data = Array.make (Shape.numel shape) v }
let zeros shape = full shape 0.0
let ones shape = full shape 1.0

let init shape f = { shape; data = Array.init (Shape.numel shape) f }

let scalar v = { shape = []; data = [| v |] }

let of_array shape a = create shape (Array.copy a)

(** Xavier-style random initialisation. *)
let random rng shape =
  let n = Shape.numel shape in
  let fan = float_of_int (max 1 (match shape with d :: _ -> d | [] -> 1)) in
  let bound = sqrt (1.0 /. fan) in
  { shape; data = Array.init n (fun _ -> Rng.uniform rng (-.bound) bound) }

let copy t = { t with data = Array.copy t.data }

let get t idx = t.data.(idx)
let set t idx v = t.data.(idx) <- v

let item t =
  if numel t <> 1 then Shape.fail "item: tensor %a is not a scalar" Shape.pp t.shape;
  t.data.(0)

let reshape t shape =
  if Shape.numel shape <> numel t then
    Shape.fail "reshape: %a -> %a changes element count" Shape.pp t.shape Shape.pp shape;
  { t with shape }

let map f t = { t with data = Array.map f t.data }

let map2 f a b =
  if not (Shape.equal a.shape b.shape) then
    Shape.fail "map2: shape mismatch %a vs %a" Shape.pp a.shape Shape.pp b.shape;
  { a with data = Array.init (numel a) (fun i -> f a.data.(i) b.data.(i)) }

let fold f init t = Array.fold_left f init t.data

let sum t = fold ( +. ) 0.0 t
let mean t = sum t /. float_of_int (max 1 (numel t))

let max_value t = fold Float.max neg_infinity t

(** Index of the maximum element (flattened). *)
let argmax t =
  let best = ref 0 in
  for i = 1 to numel t - 1 do
    if t.data.(i) > t.data.(!best) then best := i
  done;
  !best

let equal a b = Shape.equal a.shape b.shape && a.data = b.data

let approx_equal ?(eps = 1e-6) a b =
  Shape.equal a.shape b.shape
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) a.data b.data

let pp ppf t =
  let preview = Array.to_list (Array.sub t.data 0 (min 8 (numel t))) in
  Fmt.pf ppf "Tensor%a[%a%s]" Shape.pp t.shape
    Fmt.(list ~sep:(any "; ") (fmt "%.4g"))
    preview
    (if numel t > 8 then "; ..." else "")

(* --- Broadcasting --- *)

(** Apply a binary elementwise op with numpy broadcasting. *)
let broadcast_op2 f a b =
  if Shape.equal a.shape b.shape then map2 f a b
  else begin
    let out_shape = Shape.broadcast a.shape b.shape in
    let out = zeros out_shape in
    let out_dims = Array.of_list out_shape in
    let nd = Array.length out_dims in
    let pad s =
      let d = Array.of_list s in
      Array.append (Array.make (nd - Array.length d) 1) d
    in
    let da = pad a.shape and db = pad b.shape in
    let sa = Shape.strides (Array.to_list da) and sb = Shape.strides (Array.to_list db) in
    let idx = Array.make nd 0 in
    let offset dims strides =
      let o = ref 0 in
      for k = 0 to nd - 1 do
        let i = if dims.(k) = 1 then 0 else idx.(k) in
        o := !o + (i * strides.(k))
      done;
      !o
    in
    let n = Shape.numel out_shape in
    for flat = 0 to n - 1 do
      (* Decode flat index into [idx]. *)
      let r = ref flat in
      for k = nd - 1 downto 0 do
        idx.(k) <- !r mod out_dims.(k);
        r := !r / out_dims.(k)
      done;
      out.data.(flat) <- f a.data.(offset da sa) b.data.(offset db sb)
    done;
    out
  end
