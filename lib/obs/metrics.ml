(** A small metrics registry: named counters, gauges and histograms,
    unified across the device profiler and the serving statistics so one
    JSON document answers "where did time and work go".

    Like {!Trace}, the registry follows the null-object pattern: the
    disabled registry ({!null}) turns every registration and update into a
    no-op, so instrumentation sites never branch on an option.

    Instruments are kept in registration order and snapshots are taken at
    virtual-clock timestamps, so exports are deterministic for a fixed
    seed. Histograms store raw observations (the simulations here observe
    thousands of values, not millions), which keeps percentile queries
    exact. *)

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  mutable h_values : float list;  (** Reversed observation order. *)
  mutable h_count : int;
}

type instrument = Counter of counter | Gauge of gauge | Histogram of histogram

type t = {
  enabled : bool;
  mutable instruments : instrument list;  (** Reversed registration order. *)
  mutable snapshots : (float * (string * float) list) list;
      (** [(ts_us, (name, value) ...)] — reversed capture order. *)
}

let null = { enabled = false; instruments = []; snapshots = [] }
let create () = { null with enabled = true }
let enabled t = t.enabled

let instrument_name = function
  | Counter c -> c.c_name
  | Gauge g -> g.g_name
  | Histogram h -> h.h_name

let find t name = List.find_opt (fun i -> instrument_name i = name) t.instruments

let register t mk name =
  match find t name with
  | Some i -> i
  | None ->
    let i = mk name in
    t.instruments <- i :: t.instruments;
    i

(* Registering against the null registry hands back a detached instrument:
   updates mutate it, but it is never listed or exported. *)
let counter t name =
  if t.enabled then
    match register t (fun n -> Counter { c_name = n; c_value = 0 }) name with
    | Counter c -> c
    | _ -> invalid_arg (name ^ ": registered with a different instrument kind")
  else { c_name = name; c_value = 0 }

let gauge t name =
  if t.enabled then
    match register t (fun n -> Gauge { g_name = n; g_value = 0.0 }) name with
    | Gauge g -> g
    | _ -> invalid_arg (name ^ ": registered with a different instrument kind")
  else { g_name = name; g_value = 0.0 }

let histogram t name =
  if t.enabled then
    match register t (fun n -> Histogram { h_name = n; h_values = []; h_count = 0 }) name with
    | Histogram h -> h
    | _ -> invalid_arg (name ^ ": registered with a different instrument kind")
  else { h_name = name; h_values = []; h_count = 0 }

let incr ?(by = 1) (c : counter) = c.c_value <- c.c_value + by
let counter_value (c : counter) = c.c_value
let set (g : gauge) v = g.g_value <- v
let gauge_value (g : gauge) = g.g_value

let observe (h : histogram) v =
  h.h_values <- v :: h.h_values;
  h.h_count <- h.h_count + 1

let hist_count (h : histogram) = h.h_count

(** Set a whole family of counters at once — the bridge used to mirror an
    existing stats record ([Profiler], [Serve.Stats]) into the registry. *)
let set_counters t prefix pairs =
  if t.enabled then
    List.iter (fun (name, v) -> (counter t (prefix ^ name)).c_value <- v) pairs

(* Nearest-rank percentile over the raw observations. *)
let hist_percentile (h : histogram) p =
  match List.sort Float.compare h.h_values with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let idx = max 0 (min (n - 1) (rank - 1)) in
    List.nth sorted idx

let instrument_scalar = function
  | Counter c -> float_of_int c.c_value
  | Gauge g -> g.g_value
  | Histogram h -> float_of_int h.h_count

(** Record the current value of every instrument at virtual time [ts_us]
    (histograms snapshot their observation count). *)
let snapshot t ~ts_us =
  if t.enabled then begin
    let values =
      List.rev_map (fun i -> instrument_name i, instrument_scalar i) t.instruments
    in
    t.snapshots <- (ts_us, values) :: t.snapshots
  end

let snapshot_count t = List.length t.snapshots

let instrument_json = function
  | Counter c -> c.c_name, Json.Int c.c_value
  | Gauge g -> g.g_name, Json.Float g.g_value
  | Histogram h ->
    ( h.h_name,
      Json.Obj
        [
          "count", Json.Int h.h_count;
          "p50", Json.Float (hist_percentile h 50.0);
          "p99", Json.Float (hist_percentile h 99.0);
          "max", Json.Float (hist_percentile h 100.0);
        ] )

(** The registry as JSON: final instrument values in registration order,
    plus the timeline of periodic snapshots. *)
let to_json t : Json.t =
  let final = List.rev_map instrument_json t.instruments in
  let snap (ts, values) =
    Json.Obj (("ts_us", Json.Float ts) :: List.map (fun (k, v) -> k, Json.Float v) values)
  in
  Json.Obj
    [ "metrics", Json.Obj final; "snapshots", Json.List (List.rev_map snap t.snapshots) ]
