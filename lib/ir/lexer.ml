(** Hand-rolled lexer for the input language. *)

type token =
  | IDENT of string  (** bare identifiers: primitive ops, keywords' neighbours *)
  | VAR of string  (** [%name] *)
  | GLOBAL of string  (** [@name] *)
  | INT of int
  | FLOAT of float
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | COLON
  | DOT
  | ARROW  (** [->] *)
  | DARROW  (** [=>] *)
  | ASSIGN  (** [=] *)
  | EQEQ
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | ANDAND
  | OROR
  | BANG
  | EOF

type located = { tok : token; line : int; col : int }

exception Error of string

let fail line col fmt =
  Fmt.kstr (fun m -> raise (Error (Fmt.str "lexer: line %d, col %d: %s" line col m))) fmt

let token_name = function
  | IDENT s -> Fmt.str "identifier %S" s
  | VAR s -> Fmt.str "%%%s" s
  | GLOBAL s -> Fmt.str "@%s" s
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | SEMI -> ";"
  | COLON -> ":"
  | DOT -> "."
  | ARROW -> "->"
  | DARROW -> "=>"
  | ASSIGN -> "="
  | EQEQ -> "=="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | ANDAND -> "&&"
  | OROR -> "||"
  | BANG -> "!"
  | EOF -> "<eof>"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize (src : string) : located list =
  let n = String.length src in
  let line = ref 1 and col = ref 1 in
  let pos = ref 0 in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let advance () =
    (match src.[!pos] with
    | '\n' ->
      incr line;
      col := 1
    | _ -> incr col);
    incr pos
  in
  let out = ref [] in
  let emit tok l c = out := { tok; line = l; col = c } :: !out in
  let read_while pred =
    let start = !pos in
    while !pos < n && pred src.[!pos] do
      advance ()
    done;
    String.sub src start (!pos - start)
  in
  let skip_block_comment l c =
    (* Already past the opening "(*". Nested comments supported. *)
    let depth = ref 1 in
    while !depth > 0 do
      if !pos >= n then fail l c "unterminated comment";
      match src.[!pos], peek 1 with
      | '(', Some '*' ->
        advance ();
        advance ();
        incr depth
      | '*', Some ')' ->
        advance ();
        advance ();
        decr depth
      | _ -> advance ()
    done
  in
  while !pos < n do
    let l = !line and c = !col in
    let ch = src.[!pos] in
    match ch with
    | ' ' | '\t' | '\r' | '\n' -> advance ()
    | '(' when peek 1 = Some '*' ->
      advance ();
      advance ();
      skip_block_comment l c
    | '/' when peek 1 = Some '/' -> ignore (read_while (fun c -> c <> '\n'))
    | '(' ->
      advance ();
      emit LPAREN l c
    | ')' ->
      advance ();
      emit RPAREN l c
    | '{' ->
      advance ();
      emit LBRACE l c
    | '}' ->
      advance ();
      emit RBRACE l c
    | '[' ->
      advance ();
      emit LBRACKET l c
    | ']' ->
      advance ();
      emit RBRACKET l c
    | ',' ->
      advance ();
      emit COMMA l c
    | ';' ->
      advance ();
      emit SEMI l c
    | ':' ->
      advance ();
      emit COLON l c
    | '.' ->
      advance ();
      emit DOT l c
    | '+' ->
      advance ();
      emit PLUS l c
    | '*' ->
      advance ();
      emit STAR l c
    | '/' ->
      advance ();
      emit SLASH l c
    | '!' ->
      advance ();
      emit BANG l c
    | '-' ->
      advance ();
      if peek 0 = Some '>' then begin
        advance ();
        emit ARROW l c
      end
      else emit MINUS l c
    | '=' ->
      advance ();
      (match peek 0 with
      | Some '=' ->
        advance ();
        emit EQEQ l c
      | Some '>' ->
        advance ();
        emit DARROW l c
      | _ -> emit ASSIGN l c)
    | '<' ->
      advance ();
      if peek 0 = Some '=' then begin
        advance ();
        emit LE l c
      end
      else emit LT l c
    | '>' ->
      advance ();
      if peek 0 = Some '=' then begin
        advance ();
        emit GE l c
      end
      else emit GT l c
    | '&' when peek 1 = Some '&' ->
      advance ();
      advance ();
      emit ANDAND l c
    | '|' when peek 1 = Some '|' ->
      advance ();
      advance ();
      emit OROR l c
    | '%' when (match peek 1 with Some c -> is_ident_start c | None -> false) ->
      advance ();
      emit (VAR (read_while is_ident_char)) l c
    | '%' ->
      advance ();
      emit PERCENT l c
    | '@' ->
      advance ();
      if not (match peek 0 with Some c -> is_ident_start c | None -> false) then
        fail l c "expected identifier after '@'";
      emit (GLOBAL (read_while is_ident_char)) l c
    | c0 when is_digit c0 ->
      let intpart = read_while is_digit in
      let isfloat =
        peek 0 = Some '.' && (match peek 1 with Some c -> is_digit c | None -> false)
      in
      if isfloat then begin
        advance ();
        let frac = read_while is_digit in
        let expo =
          if peek 0 = Some 'e' || peek 0 = Some 'E' then begin
            advance ();
            let sign =
              if peek 0 = Some '-' || peek 0 = Some '+' then (
                let s = String.make 1 src.[!pos] in
                advance ();
                s)
              else ""
            in
            "e" ^ sign ^ read_while is_digit
          end
          else ""
        in
        emit (FLOAT (float_of_string (intpart ^ "." ^ frac ^ expo))) l c
      end
      else emit (INT (int_of_string intpart)) l c
    | c0 when is_ident_start c0 -> emit (IDENT (read_while is_ident_char)) l c
    | c0 -> fail l c "unexpected character %C" c0
  done;
  emit EOF !line !col;
  List.rev !out
