# Convenience targets; everything is plain dune underneath.

.PHONY: all build test check chaos-smoke bench clean

all: build

build:
	dune build

test:
	dune runtest

# Tier-1 gate: full build (warnings are errors in the dev profile — see the
# env stanza in dune-project), the whole test suite, then end-to-end serving
# smoke runs — fault-free, fault-injected (gated on goodput), and a
# replicated cluster with a dead-device replica — to catch CLI wiring
# breakage that unit tests can miss. The overload smoke arms the full
# resilience stack (retry budget, concurrency limiter, brownout) against an
# over-capacity fault-injected stream, gated on goodput; the overload bench
# runs twice and its JSON (BENCH_overload.json, a CI artifact) must be
# byte-identical across runs. The trace smoke runs the cluster twice
# with the same seed and demands byte-identical, schema-valid Chrome traces
# (TRACE_cluster.json, uploaded as a CI artifact alongside
# BENCH_cluster.json). The multi-tenant smoke serves three tenants with the
# autoscaler on and one fault-injected replica slot, gated on goodput; the
# tenants bench runs twice and its JSON (BENCH_tenants.json, a CI artifact)
# must be byte-identical across runs. The integrity smoke serves a
# replicated cluster with one replica silently corrupting 40% of its
# batches under full auditing — the CLI exits nonzero if any corrupted
# result is delivered at --audit 1, and the run is additionally gated on
# goodput; the integrity bench (delivered corruption and goodput vs audit
# rate, BENCH_integrity.json, a CI artifact) runs twice and must be
# byte-identical across runs. The simulator-core scale bench (heap event
# loop + EDF admission heap vs the retained Map/sorted-list reference at
# 10^3..10^6 requests, BENCH_scale.json, a CI artifact) runs twice and
# must be byte-identical — its JSON carries only virtual-time results,
# never wall time — and its in-process gate demands byte-identical
# summaries across backends at every size. A seed-equivalence gate
# additionally requires the regenerated BENCH_cluster.json and
# BENCH_tenants.json to be byte-identical to the committed pre-refactor
# outputs (git diff --exit-code), proving the heap rewrite changed
# nothing but speed on legacy-sized configs. The network smoke routes a
# 3-replica round-robin cluster through the lossy virtual transport with a
# mid-run partition of one replica — exactly-once dedup, timeout-driven
# link-down failover and the forced heal probe all on the hot path, gated
# on goodput; the partition bench (exactly-once vs naive resend vs direct
# calls through the same partition, BENCH_partition.json, a CI artifact)
# runs twice and must be byte-identical across runs.
check: build test
	dune exec bin/acrobatc.exe -- serve --model treelstm --size tiny \
	  --rate 2000 --requests 50 --iters 100
	dune exec bin/acrobatc.exe -- serve --model treelstm --size tiny \
	  --rate 2000 --requests 50 --iters 100 \
	  --faults "seed=7,kernel=0.05,straggler=0.02x6,reset=0.001" \
	  --min-goodput 0.9
	dune exec bin/acrobatc.exe -- serve --model treelstm --size tiny \
	  --rate 2000 --requests 50 --iters 100 --replicas 3 --hedge 90 \
	  --faults "seed=7,kernel=0.75,reset=0.1" --min-goodput 0.95 \
	  --trace TRACE_cluster.json
	dune exec bin/acrobatc.exe -- serve --model treelstm --size tiny \
	  --rate 2000 --requests 50 --iters 100 --replicas 3 --hedge 90 \
	  --faults "seed=7,kernel=0.75,reset=0.1" --min-goodput 0.95 \
	  --trace TRACE_cluster_rerun.json
	cmp TRACE_cluster.json TRACE_cluster_rerun.json
	dune exec bin/acrobatc.exe -- trace TRACE_cluster.json
	dune exec bench/main.exe -- cluster --json BENCH_cluster.json
	dune exec bin/acrobatc.exe -- serve --size tiny --iters 100 --requests 60 \
	  --seed 3 --tenant alpha:treelstm:2000:50:8 --tenant beta:birnn:1000:100:4:2 \
	  --tenant gamma:moe:500:0:64 --autoscale 1:3 \
	  --faults "seed=7,kernel=0.2" --min-goodput 0.9
	dune exec bench/main.exe -- tenants --json BENCH_tenants.json
	dune exec bench/main.exe -- tenants --json BENCH_tenants_rerun.json
	cmp BENCH_tenants.json BENCH_tenants_rerun.json
	git diff --exit-code -- BENCH_cluster.json BENCH_tenants.json
	dune exec bin/acrobatc.exe -- serve --model treelstm --size tiny \
	  --rate 6000 --requests 400 --iters 100 \
	  --faults "seed=7,kernel=0.1" --retry-budget 0.2 \
	  --concurrency-target 12 --brownout 6:10:2 --min-goodput 0.9
	dune exec bench/main.exe -- overload --json BENCH_overload.json
	dune exec bench/main.exe -- overload --json BENCH_overload_rerun.json
	cmp BENCH_overload.json BENCH_overload_rerun.json
	dune exec bin/acrobatc.exe -- serve --model treelstm --size tiny \
	  --rate 3000 --requests 80 --iters 100 --replicas 2 \
	  --faults "seed=21,corrupt=0.4" --audit 1 --min-goodput 0.5
	dune exec bench/main.exe -- integrity --json BENCH_integrity.json
	dune exec bench/main.exe -- integrity --json BENCH_integrity_rerun.json
	cmp BENCH_integrity.json BENCH_integrity_rerun.json
	dune exec bin/acrobatc.exe -- serve --model treelstm --size tiny \
	  --rate 2000 --requests 80 --iters 100 --replicas 3 --dispatch rr \
	  --net "seed=11,delay=150:50,drop=0.05,dup=0.2,partition=10000:25000:2,timeout=5000,resends=3" \
	  --min-goodput 0.9
	dune exec bench/main.exe -- partition --json BENCH_partition.json
	dune exec bench/main.exe -- partition --json BENCH_partition_rerun.json
	cmp BENCH_partition.json BENCH_partition_rerun.json
	$(MAKE) chaos-smoke
	dune exec bench/main.exe -- chaos --json BENCH_chaos.json
	dune exec bench/main.exe -- chaos --json BENCH_chaos_rerun.json
	cmp BENCH_chaos.json BENCH_chaos_rerun.json
	dune exec bench/main.exe -- scale --json BENCH_scale.json
	dune exec bench/main.exe -- scale --json BENCH_scale_rerun.json
	cmp BENCH_scale.json BENCH_scale_rerun.json

# Bounded fixed-seed chaos campaign: randomized fault scenarios through the
# serve cluster, every run checked against the invariant suite (request
# conservation, terminal-once tracing, no duplicate completions, requeue
# budgets, zero clamped schedules, replay determinism). Any violation
# shrinks to a minimal reproducer written to CHAOS_repro.txt with its
# failing trace in CHAOS_trace.json (uploaded as CI artifacts on failure).
chaos-smoke: build
	dune exec bin/acrobatc.exe -- chaos --seed 42 --runs 60 --fault-prob 0.5 \
	  --shrink --repro CHAOS_repro.txt --trace CHAOS_trace.json

bench:
	dune exec bench/main.exe

clean:
	dune clean
