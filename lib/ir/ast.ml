(** Abstract syntax of the input language (see Listing 1 of the paper for the
    concrete syntax this models). *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | And
  | Or

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | And -> "&&"
  | Or -> "||"

type pat =
  | Pnil
  | Pcons of string * string
  | Pleaf of string
  | Pnode of string * string
  | Pwild

type expr =
  | Var of string
  | Global of string
  | Int_lit of int
  | Float_lit of float
  | Bool_lit of bool
  | Let of string * expr * expr
  | If of expr * expr * expr
  | Prim of Op.t * expr list  (** Tensor-operator application. *)
  | Call of expr * expr list  (** Calls a global or a closure. *)
  | Fn of (string * Ty.t) list * expr  (** Anonymous function. *)
  | Match of expr * (pat * expr) list
  | Nil
  | Cons of expr * expr
  | Leaf of expr
  | Node of expr * expr
  | Tuple of expr list
  | Proj of expr * int
  | Binop of binop * expr * expr
  | Not of expr
  | Concurrent of expr list
      (** Evaluates to a tuple; the elements are independent and may be
          evaluated concurrently (the paper's [concurrent] annotation,
          Fig. 2) — they receive the same scheduling depth, and fork fibers
          under tensor-dependent control flow. *)
  | Map of expr * expr
      (** [Map (f, xs)]: the built-in [@map]; applications of [f] to the
          elements are independent (instance parallelism, obs. O.2). *)
  | Scalar of expr  (** Force a tensor and read it as a scalar (triggers
                        DFG evaluation: tensor-dependent control flow). *)
  | Choice of expr
      (** [Choice n]: a tensor-dependent control-flow decision in [0, n),
          emulated by per-instance pseudo-randomness as in paper §E.1.
          Forces a DFG flush like any value read. *)
  | Coin of expr  (** [Coin p]: Boolean decision, true with probability [p];
                      same flush semantics as {!Choice}. *)

type def = {
  name : string;  (** Global name, without the [@]. *)
  params : (string * Ty.t) list;
  ret : Ty.t;
  body : expr;
}

type program = { defs : def list }

let find_def program name = List.find_opt (fun d -> d.name = name) program.defs

let main_def program =
  match find_def program "main" with
  | Some d -> d
  | None -> invalid_arg "program has no @main"

(** [fold_expr f acc e] folds [f] over every sub-expression of [e]
    (pre-order). *)
let rec fold_expr f acc e =
  let acc = f acc e in
  let fold_list acc es = List.fold_left (fold_expr f) acc es in
  match e with
  | Var _ | Global _ | Int_lit _ | Float_lit _ | Bool_lit _ | Nil -> acc
  | Let (_, a, b) | Cons (a, b) | Node (a, b) | Map (a, b) -> fold_list acc [ a; b ]
  | If (a, b, c) -> fold_list acc [ a; b; c ]
  | Prim (_, es) | Tuple es | Concurrent es -> fold_list acc es
  | Call (c, es) -> fold_list acc (c :: es)
  | Fn (_, b) | Leaf b | Proj (b, _) | Not b | Scalar b | Choice b | Coin b ->
    fold_expr f acc b
  | Match (s, cases) -> List.fold_left (fun a (_, e) -> fold_expr f a e) (fold_expr f acc s) cases
  | Binop (_, a, b) -> fold_list acc [ a; b ]

(** All global names referenced by [e]. *)
let globals_of e =
  fold_expr (fun acc e -> match e with Global g -> g :: acc | _ -> acc) [] e
  |> List.sort_uniq compare

(** Does the expression (not descending into [Fn] bodies' semantics — they
    run when called, which is still within this evaluation) contain a
    tensor-dependent control-flow decision? *)
let has_tdc e =
  fold_expr
    (fun acc e -> acc || match e with Scalar _ | Choice _ | Coin _ -> true | _ -> false)
    false e

let pat_vars = function
  | Pnil | Pwild -> []
  | Pcons (a, b) | Pnode (a, b) -> [ a; b ]
  | Pleaf a -> [ a ]
