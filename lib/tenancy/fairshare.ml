(** Weighted fair queueing over virtual work.

    Each tenant [i] accumulates virtual work [v(i) += work / weight(i)] for
    every unit of device time its batches consume; the scheduler always
    serves the eligible tenant with the least virtual work. Over any busy
    interval with uniform per-request cost this makes completed work track
    the weights — the property the QCheck suite asserts.

    The [vfloor] clamp is the standard start-time fix for intermittent
    backlogs: a tenant that went idle while others were served would
    otherwise return with an ancient (tiny) virtual time and starve everyone
    until it caught up. Clamping a newly-served tenant's clock up to the
    floor (the virtual time the scheduler has reached) means idle periods
    are forfeited, not banked.

    Ties break on the lowest tenant index, so identical inputs replay to
    identical schedules. *)

type t = {
  weights : float array;
  v : float array;  (** Accumulated virtual work per tenant. *)
  mutable vfloor : float;  (** Virtual time the scheduler has reached. *)
}

let create ~(weights : float array) : t =
  if Array.length weights = 0 then Fmt.invalid_arg "Fairshare.create: no tenants";
  Array.iteri
    (fun i w -> if w <= 0.0 then Fmt.invalid_arg "Fairshare.create: weight %d <= 0" i)
    weights;
  { weights = Array.copy weights; v = Array.make (Array.length weights) 0.0; vfloor = 0.0 }

let tenants t = Array.length t.weights

(** Virtual work accumulated by tenant [i] (after any floor clamps). *)
let virtual_work t i = t.v.(i)

(* Effective key: an idle tenant's stale clock counts as the floor. *)
let key t i = Float.max t.v.(i) t.vfloor

(** Eligible tenants ordered by effective virtual work, least first, ties by
    index. The dispatcher walks this order offering the device to each
    tenant until one can launch. *)
let ranked t ~(eligible : int -> bool) : int list =
  let rec collect i acc =
    if i < 0 then acc
    else collect (i - 1) (if eligible i then (key t i, i) :: acc else acc)
  in
  let xs = collect (Array.length t.weights - 1) [] in
  List.stable_sort (fun (ka, ia) (kb, ib) ->
      match Float.compare ka kb with 0 -> Int.compare ia ib | c -> c)
    xs
  |> List.map snd

(** Note that tenant [i] was just handed the device: clamp its clock up to
    the floor (forfeiting banked idle time) and advance the floor to it. *)
let serve t i =
  t.v.(i) <- key t i;
  t.vfloor <- t.v.(i)

(** Charge tenant [i] for [work] units of device time. *)
let charge t i ~work =
  if work > 0.0 then t.v.(i) <- t.v.(i) +. (work /. t.weights.(i))
