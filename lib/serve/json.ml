(** A minimal JSON value and printer — just enough for machine-readable
    benchmark dumps, with no dependency beyond the stdlib.

    Floats print with ["%.6g"], so values round-trip stably: two
    deterministic runs of the same experiment serialize to byte-identical
    output (the property the serving determinism check asserts). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string (j : t) : string =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

let to_file path (j : t) =
  let oc = open_out path in
  output_string oc (to_string j);
  output_char oc '\n';
  close_out oc
