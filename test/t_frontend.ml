(** Tests for the language frontend: lexer, parser, pretty-printer
    round-trips, type checker and elaboration. *)

open Acrobat
open T_util
module Lexer = Ir.Lexer
module Parser = Ir.Parser
module Ast = Ir.Ast
module Ty = Ir.Ty
module Op = Ir.Op
module Typecheck = Ir.Typecheck
module Pp = Ir.Pp

(* --- Lexer --- *)

let test_lex_basic () =
  let toks = Lexer.tokenize "let %x = @f(%y) + 3;" in
  let kinds = List.map (fun (l : Lexer.located) -> l.tok) toks in
  Alcotest.(check int) "token count" 11 (List.length kinds);
  check_true "var" (List.mem (Lexer.VAR "x") kinds);
  check_true "global" (List.mem (Lexer.GLOBAL "f") kinds);
  check_true "int" (List.mem (Lexer.INT 3) kinds)

let test_lex_operators () =
  let toks = Lexer.tokenize "-> => == <= >= && || < > = + - * / %" in
  let kinds = List.map (fun (l : Lexer.located) -> l.tok) toks in
  Alcotest.(check int) "count" 16 (List.length kinds);
  check_true "arrow" (List.mem Lexer.ARROW kinds);
  check_true "darrow" (List.mem Lexer.DARROW kinds);
  check_true "percent alone" (List.mem Lexer.PERCENT kinds)

let test_lex_comments () =
  let toks = Lexer.tokenize "1 (* a (* nested *) b *) 2 // line\n3" in
  let ints =
    List.filter_map (fun (l : Lexer.located) -> match l.tok with Lexer.INT n -> Some n | _ -> None) toks
  in
  Alcotest.(check (list int)) "comments skipped" [ 1; 2; 3 ] ints

let test_lex_floats () =
  let toks = Lexer.tokenize "3.25 1.5e3 2.0e-2" in
  let floats =
    List.filter_map (fun (l : Lexer.located) -> match l.tok with Lexer.FLOAT f -> Some f | _ -> None) toks
  in
  Alcotest.(check (list (float 1e-12))) "floats" [ 3.25; 1500.0; 0.02 ] floats

let test_lex_error_position () =
  match Lexer.tokenize "let %x =\n  # bad" with
  | exception Lexer.Error msg -> check_true "mentions line 2" (T_util.contains msg "line 2")
  | _ -> Alcotest.fail "expected lexer error"

(* --- Parser --- *)

let test_parse_precedence () =
  match Parser.expression "1 + 2 * 3 < 10 && true" with
  | Ast.Binop (Ast.And, Ast.Binop (Ast.Lt, Ast.Binop (Ast.Add, _, Ast.Binop (Ast.Mul, _, _)), _), Ast.Bool_lit true)
    -> ()
  | e -> Alcotest.failf "wrong parse: %a" Pp.pp_expr e

let test_parse_unary_minus () =
  match Parser.expression "-5" with
  | Ast.Int_lit (-5) -> ()
  | e -> Alcotest.failf "wrong parse: %a" Pp.pp_expr e

let test_parse_prim_ops () =
  (match Parser.expression "matmul(%a, %b)" with
  | Ast.Prim (Op.Matmul, [ Ast.Var "a"; Ast.Var "b" ]) -> ()
  | e -> Alcotest.failf "matmul: %a" Pp.pp_expr e);
  (match Parser.expression "slice(%x, 0, 4)" with
  | Ast.Prim (Op.Slice { lo = 0; hi = 4 }, [ Ast.Var "x" ]) -> ()
  | e -> Alcotest.failf "slice: %a" Pp.pp_expr e);
  match Parser.expression "zeros((1, 8))" with
  | Ast.Prim (Op.Constant { shape = [ 1; 8 ]; value = 0.0 }, []) -> ()
  | e -> Alcotest.failf "zeros: %a" Pp.pp_expr e

let test_parse_concat_arity () =
  match Parser.expression "concat(%a, %b, %c)" with
  | Ast.Prim (Op.Concat 3, _) -> ()
  | e -> Alcotest.failf "concat: %a" Pp.pp_expr e

let test_parse_proj_chain () =
  (* [.0.1] would lex as a float literal; nested projection needs parens. *)
  match Parser.expression "(%p.0).1" with
  | Ast.Proj (Ast.Proj (Ast.Var "p", 0), 1) -> ()
  | e -> Alcotest.failf "proj: %a" Pp.pp_expr e

let test_parse_call_chain () =
  match Parser.expression "%f(%x)(%y)" with
  | Ast.Call (Ast.Call (Ast.Var "f", [ _ ]), [ _ ]) -> ()
  | e -> Alcotest.failf "call chain: %a" Pp.pp_expr e

let test_parse_error_reports_location () =
  match Parser.program "def @f() -> Int { let }" with
  | exception Parser.Error msg -> check_true "mentions line" (T_util.contains msg "line 1")
  | _ -> Alcotest.fail "expected parse error"

let test_parse_unknown_op () =
  match Parser.expression "frobnicate(%x)" with
  | exception Parser.Error _ -> ()
  | e -> Alcotest.failf "expected error, got %a" Pp.pp_expr e

let test_parse_types () =
  let p =
    Parser.program
      "def @f(%x: Tensor[(2, 3)], %l: List[Int], %t: Tree[(Bool, Float)], %g: fn(Int) -> Bool) -> Int { 1 }"
  in
  match (List.hd p.Ast.defs).Ast.params with
  | [ (_, Ty.Tensor [ 2; 3 ]); (_, Ty.List Ty.Int); (_, Ty.Tree (Ty.Tup [ Ty.Bool; Ty.Float ]));
      (_, Ty.Fn ([ Ty.Int ], Ty.Bool)) ] ->
    ()
  | _ -> Alcotest.fail "wrong parameter types"

(* --- Pretty-printer round trip --- *)

let gen_expr : Ast.expr QCheck2.Gen.t =
  let open QCheck2.Gen in
  let var = map (fun i -> Ast.Var (Fmt.str "v%d" i)) (int_range 0 5) in
  let base =
    oneof
      [
        var;
        map (fun n -> Ast.Int_lit n) (int_range (-20) 20);
        map (fun k -> Ast.Float_lit (float_of_int k /. 8.0)) (int_range 0 64);
        map (fun b -> Ast.Bool_lit b) bool;
        return Ast.Nil;
      ]
  in
  let binop =
    oneofl [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod; Ast.Lt; Ast.Le; Ast.Eq; Ast.And; Ast.Or ]
  in
  fix
    (fun self n ->
      if n = 0 then base
      else
        let sub = self (n / 2) in
        oneof
          [
            base;
            map3 (fun op a b -> Ast.Binop (op, a, b)) binop sub sub;
            map (fun a -> Ast.Not a) sub;
            map3 (fun x a b -> Ast.Let (Fmt.str "x%d" x, a, b)) (int_range 0 3) sub sub;
            map3 (fun c a b -> Ast.If (c, a, b)) sub sub sub;
            map2 (fun a b -> Ast.Cons (a, b)) sub sub;
            map (fun a -> Ast.Leaf a) sub;
            map2 (fun a b -> Ast.Node (a, b)) sub sub;
            map2 (fun a b -> Ast.Tuple [ a; b ]) sub sub;
            map2 (fun a k -> Ast.Proj (a, k)) sub (int_range 0 1);
            map2 (fun a b -> Ast.Prim (Ir.Op.Add, [ a; b ])) sub sub;
            map (fun a -> Ast.Prim (Ir.Op.Sigmoid, [ a ])) sub;
            map2 (fun f xs -> Ast.Map (f, xs)) sub sub;
            map (fun a -> Ast.Scalar a) sub;
            map (fun a -> Ast.Choice a) sub;
            map (fun a -> Ast.Coin a) sub;
            map (fun es -> Ast.Concurrent es) (list_size (int_range 1 3) sub);
            map2 (fun s arms ->
                Ast.Match
                  ( s,
                    List.mapi
                      (fun i body ->
                        let pat =
                          match i mod 3 with
                          | 0 -> Ast.Pnil
                          | 1 -> Ast.Pcons ("h", "t")
                          | _ -> Ast.Pwild
                        in
                        pat, body)
                      arms ))
              sub
              (list_size (int_range 1 3) sub);
            map (fun args -> Ast.Call (Ast.Global "g", args)) (list_size (int_range 0 2) sub);
          ])
    5

let prop_pp_roundtrip =
  qtest ~count:500 "parser: print-then-parse is identity" gen_expr (fun e ->
      let printed = Fmt.str "%a" Pp.pp_expr e in
      match Parser.expression printed with
      | e' -> e' = e
      | exception _ -> false)

let test_program_roundtrip () =
  List.iter
    (fun id ->
      let m = Models.tiny id in
      let p = Parser.program m.Model.source in
      let printed = Pp.program_to_string p in
      let p' = Parser.program printed in
      Alcotest.(check int)
        (id ^ ": same number of defs")
        (List.length p.Ast.defs) (List.length p'.Ast.defs);
      check_true (id ^ ": round trip") (p = p'))
    Models.tiny_ids

(* --- Typechecker --- *)

let check_type_error src fragment =
  match Typecheck.parse_and_check src with
  | exception Typecheck.Type_error msg ->
    if not (T_util.contains msg fragment) then
      Alcotest.failf "error %S does not mention %S" msg fragment
  | _ -> Alcotest.fail "expected type error"

let test_typecheck_elaborates_tensor_arith () =
  let p = Typecheck.parse_and_check
      "def @main(%a: Tensor[(1, 4)], %b: Tensor[(1, 4)]) -> Tensor[(1, 4)] { %a + %b }"
  in
  match (List.hd p.Ast.defs).Ast.body with
  | Ast.Prim (Op.Add, _) -> ()
  | e -> Alcotest.failf "not elaborated: %a" Pp.pp_expr e

let test_typecheck_shape_mismatch () =
  check_type_error
    "def @main(%a: Tensor[(1, 4)], %b: Tensor[(4, 8)]) -> Tensor[(1, 8)] { %a + %b }"
    "broadcast"

let test_typecheck_matmul_shapes () =
  check_type_error
    "def @main(%a: Tensor[(1, 4)], %b: Tensor[(5, 8)]) -> Tensor[(1, 8)] { matmul(%a, %b) }"
    "matmul"

let test_typecheck_unbound_var () =
  check_type_error "def @main(%a: Int) -> Int { %b }" "unbound variable"

let test_typecheck_unbound_global () =
  check_type_error "def @main(%a: Int) -> Int { @nope(%a) }" "unbound global"

let test_typecheck_arity () =
  check_type_error
    "def @f(%a: Int, %b: Int) -> Int { %a } def @main(%x: Int) -> Int { @f(%x) }"
    "arguments"

let test_typecheck_branch_types () =
  check_type_error "def @main(%c: Bool) -> Int { if (%c) { 1 } else { true } }" "expected"

let test_typecheck_nil_in_context () =
  let src =
    "def @main(%x: Int) -> List[Int] { Cons(%x, Nil) }"
  in
  ignore (Typecheck.parse_and_check src)

let test_typecheck_match_list_on_tree () =
  check_type_error
    "def @main(%t: Tree[Int]) -> Int { match (%t) { Nil => 0, _ => 1 } }"
    "list pattern"

let test_typecheck_scalar_requires_single_element () =
  check_type_error
    "def @main(%x: Tensor[(2, 3)]) -> Float { scalar(%x) }"
    "single-element"

let test_typecheck_map () =
  let src =
    "def @main(%xs: List[Int]) -> List[Bool] { map(fn(%x: Int) { %x < 3 }, %xs) }"
  in
  ignore (Typecheck.parse_and_check src);
  check_type_error
    "def @main(%xs: List[Int]) -> List[Bool] { map(fn(%x: Bool) { %x }, %xs) }"
    "map"

let test_typecheck_duplicate_def () =
  check_type_error "def @f(%x: Int) -> Int { %x } def @f(%y: Int) -> Int { %y } def @main(%x: Int) -> Int { %x }"
    "duplicate"

let test_typecheck_mod_on_float () =
  check_type_error "def @main(%x: Float) -> Float { %x % 2.0 }" "Int"

let test_all_models_typecheck () =
  List.iter
    (fun id ->
      let m = Models.tiny id in
      ignore (Typecheck.parse_and_check m.Model.source))
    Models.tiny_ids;
  List.iter
    (fun (e : Models.entry) ->
      List.iter
        (fun size -> ignore (Typecheck.parse_and_check (e.Models.make size).Model.source))
        [ Model.Small; Model.Large ])
    Models.all

let suite =
  [
    Alcotest.test_case "lexer: basic" `Quick test_lex_basic;
    Alcotest.test_case "lexer: operators" `Quick test_lex_operators;
    Alcotest.test_case "lexer: comments" `Quick test_lex_comments;
    Alcotest.test_case "lexer: floats" `Quick test_lex_floats;
    Alcotest.test_case "lexer: error position" `Quick test_lex_error_position;
    Alcotest.test_case "parser: precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parser: unary minus" `Quick test_parse_unary_minus;
    Alcotest.test_case "parser: primitive ops" `Quick test_parse_prim_ops;
    Alcotest.test_case "parser: concat arity" `Quick test_parse_concat_arity;
    Alcotest.test_case "parser: projection chain" `Quick test_parse_proj_chain;
    Alcotest.test_case "parser: call chain" `Quick test_parse_call_chain;
    Alcotest.test_case "parser: error location" `Quick test_parse_error_reports_location;
    Alcotest.test_case "parser: unknown op" `Quick test_parse_unknown_op;
    Alcotest.test_case "parser: types" `Quick test_parse_types;
    prop_pp_roundtrip;
    Alcotest.test_case "pp: model sources round trip" `Quick test_program_roundtrip;
    Alcotest.test_case "typecheck: elaboration" `Quick test_typecheck_elaborates_tensor_arith;
    Alcotest.test_case "typecheck: shape mismatch" `Quick test_typecheck_shape_mismatch;
    Alcotest.test_case "typecheck: matmul shapes" `Quick test_typecheck_matmul_shapes;
    Alcotest.test_case "typecheck: unbound var" `Quick test_typecheck_unbound_var;
    Alcotest.test_case "typecheck: unbound global" `Quick test_typecheck_unbound_global;
    Alcotest.test_case "typecheck: call arity" `Quick test_typecheck_arity;
    Alcotest.test_case "typecheck: branch types" `Quick test_typecheck_branch_types;
    Alcotest.test_case "typecheck: Nil in context" `Quick test_typecheck_nil_in_context;
    Alcotest.test_case "typecheck: pattern/scrutinee" `Quick test_typecheck_match_list_on_tree;
    Alcotest.test_case "typecheck: scalar shape" `Quick test_typecheck_scalar_requires_single_element;
    Alcotest.test_case "typecheck: map" `Quick test_typecheck_map;
    Alcotest.test_case "typecheck: duplicate defs" `Quick test_typecheck_duplicate_def;
    Alcotest.test_case "typecheck: mod on float" `Quick test_typecheck_mod_on_float;
    Alcotest.test_case "typecheck: all models" `Quick test_all_models_typecheck;
  ]
