(** Benchmark harness: regenerates every table and figure of the paper's
    evaluation (`all`), or one at a time; `serve` runs the online-serving
    latency-vs-offered-load curves; `micro` runs the bechamel
    micro-benchmark suite over the runtime hot paths.

    `--json FILE` additionally dumps every selected experiment's rows as
    machine-readable JSON (one object keyed by experiment name), so the
    perf trajectory is trackable across commits:

    {v bench/main.exe serve --json BENCH_serve.json v}

    Latencies are simulated milliseconds from the device cost model
    (DESIGN.md §2): counts are real, unit costs are calibrated constants.
    Compare shapes, not absolute values, against the embedded paper
    numbers. *)

open Acrobat
module E = Experiments
module J = Serve.Json

let pf = Printf.printf

let size_str = function Model.Small -> "small" | Model.Large -> "large"

let hr title =
  pf "\n%s\n%s\n" title (String.make (String.length title) '=')

let table4 () =
  hr "Table 4: DyNet vs ACROBAT inference latency (ms)";
  pf "%-10s %-6s %5s | %10s %10s %8s | %10s %10s %8s\n" "model" "size" "batch" "dynet"
    "acrobat" "speedup" "paper-dy" "paper-ab" "paper-sp";
  let rows = E.table4 () in
  List.iter
    (fun (r : E.t4_row) ->
      let paper_dy, paper_sp =
        match r.t4_paper_dynet with
        | Some d -> Printf.sprintf "%10.2f" d, Printf.sprintf "%8.2f" (d /. r.t4_paper_acrobat)
        | None -> "       OOM", "       -"
      in
      pf "%-10s %-6s %5d | %10.2f %10.2f %8.2f | %s %10.2f %s\n" r.t4_model
        (size_str r.t4_size) r.t4_batch r.t4_dynet r.t4_acrobat
        (r.t4_dynet /. r.t4_acrobat) paper_dy r.t4_paper_acrobat paper_sp)
    rows;
  let geo =
    let logs = List.map (fun (r : E.t4_row) -> log (r.t4_dynet /. r.t4_acrobat)) rows in
    exp (List.fold_left ( +. ) 0.0 logs /. float_of_int (List.length logs))
  in
  pf "geometric-mean speedup over DyNet: %.2fx (paper: 2.3x overall)\n" geo;
  J.List
    (List.map
       (fun (r : E.t4_row) ->
         J.Obj
           [
             "model", J.Str r.t4_model;
             "size", J.Str (size_str r.t4_size);
             "batch", J.Int r.t4_batch;
             "dynet_ms", J.Float r.t4_dynet;
             "acrobat_ms", J.Float r.t4_acrobat;
           ])
       rows)

let table5 () =
  hr "Table 5: activity breakdown at batch size 64 (ms)";
  let cells = E.table5 () in
  List.iter
    (fun (label, (dy : E.t5_cell), (ab : E.t5_cell)) ->
      pf "\n-- %s --\n" label;
      pf "%-18s %10s %10s\n" "activity" "dynet" "acrobat";
      pf "%-18s %10.2f %10.2f\n" "DFG construction" dy.t5_dfg ab.t5_dfg;
      pf "%-18s %10.2f %10.2f\n" "Scheduling" dy.t5_sched ab.t5_sched;
      pf "%-18s %10.2f %10.2f\n" "Mem. copy time" dy.t5_mem ab.t5_mem;
      pf "%-18s %10.2f %10.2f\n" "GPU kernel time" dy.t5_kernel ab.t5_kernel;
      pf "%-18s %10d %10d\n" "#Kernel calls" dy.t5_kernel_calls ab.t5_kernel_calls;
      pf "%-18s %10.2f %10.2f\n" "CUDA API time" dy.t5_api ab.t5_api)
    cells;
  pf "\npaper (TreeLSTM small): DFG 8.8/1.5, sched 9.7/0.4, mem 3.1/0.1, kernel 6.1/4.0, calls 1653/183, API 16.5/3.9\n";
  pf "paper (BiRNN large):    DFG 4.5/1.0, sched 3.3/0.4, mem 2.3/0.2, kernel 6.6/11.2, calls 580/380, API 12.0/11.1\n";
  let cell_json (c : E.t5_cell) =
    J.Obj
      [
        "dfg_ms", J.Float c.t5_dfg;
        "sched_ms", J.Float c.t5_sched;
        "mem_ms", J.Float c.t5_mem;
        "kernel_ms", J.Float c.t5_kernel;
        "kernel_calls", J.Int c.t5_kernel_calls;
        "api_ms", J.Float c.t5_api;
      ]
  in
  J.List
    (List.map
       (fun (label, dy, ab) ->
         J.Obj [ "config", J.Str label; "dynet", cell_json dy; "acrobat", cell_json ab ])
       cells)

let table6 () =
  hr "Table 6: Cortex vs ACROBAT inference latency (ms)";
  pf "%-10s %-6s %5s | %10s %10s | %10s %10s\n" "model" "size" "batch" "cortex" "acrobat"
    "paper-cx" "paper-ab";
  let rows = E.table6 () in
  List.iter
    (fun (r : E.t6_row) ->
      pf "%-10s %-6s %5d | %10.2f %10.2f | %10.2f %10.2f\n" r.t6_model (size_str r.t6_size)
        r.t6_batch r.t6_cortex r.t6_acrobat r.t6_paper_cortex r.t6_paper_acrobat)
    rows;
  J.List
    (List.map
       (fun (r : E.t6_row) ->
         J.Obj
           [
             "model", J.Str r.t6_model;
             "size", J.Str (size_str r.t6_size);
             "batch", J.Int r.t6_batch;
             "cortex_ms", J.Float r.t6_cortex;
             "acrobat_ms", J.Float r.t6_acrobat;
           ])
       rows)

let table7 () =
  hr "Table 7: Relay VM vs AOT compilation (ms)";
  pf "%-10s %-6s %5s | %10s %10s %8s | %10s %10s\n" "model" "size" "batch" "vm" "aot"
    "speedup" "paper-vm" "paper-aot";
  let rows = E.table7 () in
  List.iter
    (fun (r : E.t7_row) ->
      pf "%-10s %-6s %5d | %10.2f %10.2f %8.2f | %10.2f %10.2f\n" r.t7_model
        (size_str r.t7_size) r.t7_batch r.t7_vm r.t7_aot (r.t7_vm /. r.t7_aot) r.t7_paper_vm
        r.t7_paper_aot)
    rows;
  J.List
    (List.map
       (fun (r : E.t7_row) ->
         J.Obj
           [
             "model", J.Str r.t7_model;
             "size", J.Str (size_str r.t7_size);
             "batch", J.Int r.t7_batch;
             "vm_ms", J.Float r.t7_vm;
             "aot_ms", J.Float r.t7_aot;
           ])
       rows)

let table8 () =
  hr "Table 8: DyNet vs DyNet++ (improved heuristics) vs ACROBAT (ms)";
  pf "%-10s %-6s %5s | %8s %8s %8s | %8s %8s %8s\n" "model" "size" "batch" "DN" "DN++" "AB"
    "p-DN" "p-DN++" "p-AB";
  let rows = E.table8 () in
  List.iter
    (fun (r : E.t8_row) ->
      let pdn, pdnpp, pab = r.t8_paper in
      pf "%-10s %-6s %5d | %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f\n" r.t8_model
        (size_str r.t8_size) r.t8_batch r.t8_dn r.t8_dnpp r.t8_ab pdn pdnpp pab)
    rows;
  J.List
    (List.map
       (fun (r : E.t8_row) ->
         J.Obj
           [
             "model", J.Str r.t8_model;
             "size", J.Str (size_str r.t8_size);
             "batch", J.Int r.t8_batch;
             "dynet_ms", J.Float r.t8_dn;
             "dynetpp_ms", J.Float r.t8_dnpp;
             "acrobat_ms", J.Float r.t8_ab;
           ])
       rows)

let table9 () =
  hr "Table 9: PGO benefit during auto-scheduling (NestedRNN small, batch 8; ms)";
  pf "%8s | %10s %10s | %10s %10s\n" "iters" "no-PGO" "PGO" "paper-no" "paper-PGO";
  let rows = E.table9 () in
  List.iter
    (fun (r : E.t9_row) ->
      pf "%8d | %10.2f %10.2f | %10.2f %10.2f\n" r.t9_iters r.t9_nopgo r.t9_pgo
        r.t9_paper_nopgo r.t9_paper_pgo)
    rows;
  J.List
    (List.map
       (fun (r : E.t9_row) ->
         J.Obj
           [
             "iters", J.Int r.t9_iters;
             "nopgo_ms", J.Float r.t9_nopgo;
             "pgo_ms", J.Float r.t9_pgo;
           ])
       rows)

let fig5 () =
  hr "Figure 5: benefit of each optimization (large, batch 64; ms)";
  let rows = E.fig5 () in
  let labels = List.map fst E.ablation_ladder in
  pf "%-10s" "model";
  List.iter (fun l -> pf " %14s" l) labels;
  pf "\n";
  List.iter
    (fun (r : E.fig5_row) ->
      pf "%-10s" r.f5_model;
      List.iter (fun (_, ms) -> pf " %14.2f" ms) r.f5_steps;
      pf "\n")
    rows;
  pf "(expected shape: monotone improvement; gather fusion may hurt iterative low-parallelism models, cf. paper 7.3)\n";
  J.List
    (List.map
       (fun (r : E.fig5_row) ->
         J.Obj
           [
             "model", J.Str r.f5_model;
             "steps", J.Obj (List.map (fun (label, ms) -> label, J.Float ms) r.f5_steps);
           ])
       rows)

let fig9 () =
  hr "Figure 9: speedup over PyTorch";
  pf "%-10s %-6s %5s | %10s %10s %8s\n" "model" "size" "batch" "pytorch" "acrobat" "speedup";
  let rows = E.fig9 () in
  List.iter
    (fun (r : E.fig9_row) ->
      pf "%-10s %-6s %5d | %10.2f %10.2f %8.2f\n" r.f9_model (size_str r.f9_size) r.f9_batch
        r.f9_pytorch r.f9_acrobat (r.f9_pytorch /. r.f9_acrobat))
    rows;
  pf "(paper: all speedups > 1; larger for small model sizes; BiRNN lowest, MV-RNN highest)\n";
  J.List
    (List.map
       (fun (r : E.fig9_row) ->
         J.Obj
           [
             "model", J.Str r.f9_model;
             "size", J.Str (size_str r.f9_size);
             "batch", J.Int r.f9_batch;
             "pytorch_ms", J.Float r.f9_pytorch;
             "acrobat_ms", J.Float r.f9_acrobat;
           ])
       rows)

let extras () =
  hr "Extra ablation: scheduler comparison (batch 64)";
  pf "%-10s %-14s %10s %12s %8s\n" "model" "scheduler" "latency" "sched-ms" "batches";
  let sched_rows = E.ablation_scheduler () in
  List.iter
    (fun (id, sched, lat, sched_ms, batches) ->
      pf "%-10s %-14s %10.2f %12.3f %8d\n" id sched lat sched_ms batches)
    sched_rows;
  hr "Extra ablation: context sensitivity (BiRNN small, batch 64)";
  pf "%-8s %10s %14s %10s\n" "ctx" "latency" "gather-bytes" "gathers";
  let ctx_rows = E.ablation_context () in
  List.iter
    (fun (ctx, lat, bytes, gathers) -> pf "%-8b %10.2f %14d %10d\n" ctx lat bytes gathers)
    ctx_rows;
  J.Obj
    [
      ( "scheduler",
        J.List
          (List.map
             (fun (id, sched, lat, sched_ms, batches) ->
               J.Obj
                 [
                   "model", J.Str id;
                   "scheduler", J.Str sched;
                   "latency_ms", J.Float lat;
                   "sched_ms", J.Float sched_ms;
                   "batches", J.Int batches;
                 ])
             sched_rows) );
      ( "context",
        J.List
          (List.map
             (fun (ctx, lat, bytes, gathers) ->
               J.Obj
                 [
                   "context_sensitive", J.Bool ctx;
                   "latency_ms", J.Float lat;
                   "gather_bytes", J.Int bytes;
                   "gathers", J.Int gathers;
                 ])
             ctx_rows) );
    ]

(* --- Serving: latency vs offered load (the online front-end) --- *)

let serve () =
  hr "Serving: latency vs offered load (cross-request dynamic batching)";
  pf "%-10s %-9s %5s %9s | %10s %8s %8s %8s %7s %6s\n" "model" "policy" "load" "rate"
    "thruput" "p50" "p95" "p99" "batch" "drop";
  let rows = E.serve_curve () in
  List.iter
    (fun (r : E.serve_row) ->
      pf "%-10s %-9s %4.1fx %7.0f/s | %8.0f/s %7.2fms %7.2fms %7.2fms %7.2f %5.1f%%\n"
        r.sv_model r.sv_policy r.sv_load r.sv_rate r.sv_throughput r.sv_p50 r.sv_p95
        r.sv_p99 r.sv_mean_batch (100.0 *. r.sv_drop_rate))
    rows;
  pf
    "(expected shape: at >=1x load, adaptive sustains higher throughput and far lower p99 \
     than batch1 by amortizing launch+API overhead across requests)\n";
  J.List
    (List.map
       (fun (r : E.serve_row) ->
         J.Obj
           [
             "model", J.Str r.sv_model;
             "policy", J.Str r.sv_policy;
             "load", J.Float r.sv_load;
             "rate_rps", J.Float r.sv_rate;
             "throughput_rps", J.Float r.sv_throughput;
             "p50_ms", J.Float r.sv_p50;
             "p95_ms", J.Float r.sv_p95;
             "p99_ms", J.Float r.sv_p99;
             "mean_batch", J.Float r.sv_mean_batch;
             "drop_rate", J.Float r.sv_drop_rate;
           ])
       rows)

(* --- Serving: availability under injected faults --- *)

let faults () =
  hr "Serving: availability under faults (TreeLSTM tiny, injected kernel faults)";
  pf "%-9s %6s | %8s %10s %8s %8s | %6s %7s %7s %8s %8s\n" "policy" "rate" "goodput"
    "thruput" "p50" "p99" "faults" "retries" "bisect" "poisoned" "breaker";
  let rows = E.serve_faults () in
  List.iter
    (fun (r : E.faults_row) ->
      pf "%-9s %5.0f%% | %7.1f%% %8.0f/s %6.2fms %6.2fms | %6d %7d %7d %8d %8d\n"
        r.fv_policy
        (100.0 *. r.fv_fault_rate)
        (100.0 *. r.fv_goodput)
        r.fv_throughput r.fv_p50 r.fv_p99 r.fv_fault_batches r.fv_retries r.fv_bisections
        r.fv_poisoned r.fv_breaker_opens)
    rows;
  pf
    "(expected shape: retry+bisection+breaker hold goodput near 100%% through 5%% fault \
     rates at a modest p99 cost; only sustained fault storms dent availability)\n";
  J.List
    (List.map
       (fun (r : E.faults_row) ->
         J.Obj
           [
             "policy", J.Str r.fv_policy;
             "fault_rate", J.Float r.fv_fault_rate;
             "goodput", J.Float r.fv_goodput;
             "throughput_rps", J.Float r.fv_throughput;
             "p50_ms", J.Float r.fv_p50;
             "p99_ms", J.Float r.fv_p99;
             "fault_batches", J.Int r.fv_fault_batches;
             "retries", J.Int r.fv_retries;
             "bisections", J.Int r.fv_bisections;
             "poisoned", J.Int r.fv_poisoned;
             "breaker_opens", J.Int r.fv_breaker_opens;
           ])
       rows)

(* --- Serving: replicated cluster (failover + hedging) --- *)

let cluster () =
  hr "Serving: replicated cluster — failover availability and hedged tails";
  pf "%-22s %4s %6s | %8s %5s %8s %8s | %5s %5s %6s %5s\n" "scenario" "reps" "hedge"
    "goodput" "done" "p50" "p99" "fails" "requ" "hedges" "wins";
  let rows = E.serve_cluster_bench () in
  List.iter
    (fun (r : E.cluster_row) ->
      let hedge = match r.cl_hedge with None -> "off" | Some p -> Printf.sprintf "p%.0f" p in
      pf "%-22s %4d %6s | %7.1f%% %5d %6.2fms %6.2fms | %5d %5d %6d %5d\n" r.cl_label
        r.cl_replicas hedge
        (100.0 *. r.cl_goodput)
        r.cl_completed r.cl_p50 r.cl_p99 r.cl_failovers r.cl_requeued r.cl_hedges
        r.cl_hedge_wins)
    rows;
  pf
    "(expected shape: the faulty replica collapses the single server's goodput; with \
     replicas to fail over to it recovers >= 99%%; hedging cuts the straggler p99)\n";
  J.List
    (List.map
       (fun (r : E.cluster_row) ->
         J.Obj
           [
             "scenario", J.Str r.cl_label;
             "replicas", J.Int r.cl_replicas;
             ( "hedge_percentile",
               match r.cl_hedge with None -> J.Null | Some p -> J.Float p );
             "goodput", J.Float r.cl_goodput;
             "completed", J.Int r.cl_completed;
             "p50_ms", J.Float r.cl_p50;
             "p99_ms", J.Float r.cl_p99;
             "failovers", J.Int r.cl_failovers;
             "requeued", J.Int r.cl_requeued;
             "hedges", J.Int r.cl_hedges;
             "hedge_wins", J.Int r.cl_hedge_wins;
           ])
       rows)

(* --- Chaos: violations per kiloscenario over fixed campaigns --- *)

let chaos () =
  hr "Chaos: invariant violations over randomized fault campaigns";
  pf "%-10s %6s %12s %6s | %10s %12s\n" "campaign" "seed" "fault-prob" "runs" "violating"
    "per-kilosc";
  let campaigns =
    [
      "clean", { Chaos.default_campaign with Chaos.ca_seed = 42; ca_runs = 120;
                 ca_fault_prob = 0.0 };
      "faulty", { Chaos.default_campaign with Chaos.ca_seed = 42; ca_runs = 120;
                  ca_fault_prob = 0.6 };
    ]
  in
  let rows =
    List.map
      (fun (label, ca) ->
        let report = Chaos.run_campaign ca in
        let violating = List.length report.Chaos.rp_outcomes in
        pf "%-10s %6d %12.2f %6d | %10d %12.1f\n" label ca.Chaos.ca_seed
          ca.Chaos.ca_fault_prob ca.Chaos.ca_runs violating
          (Chaos.violations_per_kiloscenario report);
        label, ca, report)
      campaigns
  in
  pf
    "(expected shape: zero violations in both — the invariant suite holds over the \
     whole scenario grammar; any nonzero count is a reproducible bug, see acrobatc \
     chaos)\n";
  J.Obj
    (List.map
       (fun (label, ca, report) ->
         ( label,
           J.Obj
             [
               "seed", J.Int ca.Chaos.ca_seed;
               "fault_prob", J.Float ca.Chaos.ca_fault_prob;
               "runs", J.Int report.Chaos.rp_scenarios;
               "violating", J.Int (List.length report.Chaos.rp_outcomes);
               ( "violations_per_kiloscenario",
                 J.Float (Chaos.violations_per_kiloscenario report) );
             ] ))
       rows)

(* --- Multi-tenant serving: autoscaler vs fixed fleet --- *)

let tenants () =
  hr "Multi-tenant serving: fixed-at-min vs autoscaled fleet under a flash crowd";
  let rows = E.tenants_bench () in
  pf "%-10s | %8s %8s %8s %8s %6s | %5s %5s %6s %6s\n" "config" "goodput" "slo-att"
    "expired" "shed" "qshed" "peak" "final" "swaps" "util%";
  List.iter
    (fun (label, (r : Tenancy.Dispatcher.report)) ->
      let s = Serve.Stats.summarize r.Tenancy.Dispatcher.tn_stats in
      pf "%-10s | %8.3f %8.3f %8d %8d %6d | %5d %5d %6d %6.1f\n" label
        (Serve.Stats.goodput s) (Serve.Stats.slo_attainment s) s.Serve.Stats.s_expired
        s.Serve.Stats.s_shed s.Serve.Stats.s_quota_shed r.Tenancy.Dispatcher.tn_peak_replicas
        r.Tenancy.Dispatcher.tn_final_replicas r.Tenancy.Dispatcher.tn_swaps
        (100.0 *. Tenancy.Dispatcher.utilization r);
      List.iter
        (fun (tv : Tenancy.Dispatcher.tenant_view) ->
          let ts = Serve.Stats.summarize tv.Tenancy.Dispatcher.tv_stats in
          pf "  %-8s :: %-8s goodput %5.3f slo %5.3f offered %4d done %4d peak-infl %3d\n"
            tv.Tenancy.Dispatcher.tv_tenant.Tenancy.Tenant.tn_name
            tv.Tenancy.Dispatcher.tv_tenant.Tenancy.Tenant.tn_model (Serve.Stats.goodput ts)
            (Serve.Stats.slo_attainment ts) ts.Serve.Stats.s_offered
            ts.Serve.Stats.s_completed tv.Tenancy.Dispatcher.tv_peak_inflight)
        r.Tenancy.Dispatcher.tn_tenants;
      match r.Tenancy.Dispatcher.tn_scale_events with
      | [] -> ()
      | evs ->
        pf "  scale trajectory:";
        List.iter (fun (ts, ev, n) -> pf " %.0fms:%s->%d" (ts /. 1000.0) ev n) evs;
        pf "\n")
    rows;
  pf
    "(expected shape: the fixed fleet is under water — goodput well below 0.8 — while \
     the autoscaler rides the flash crowd at >= 0.95 with the same arrivals)\n";
  J.Obj
    (List.map
       (fun (label, r) -> label, Tenancy.Dispatcher.report_json r)
       rows)

(* --- Observability: metrics registry export --- *)

let obs () =
  hr "Observability: metrics registry over a fault-injected serve run";
  let j = E.observability () in
  (match J.member "metrics" j with
  | Some (J.Obj fields) ->
    pf "%-28s %14s\n" "metric" "value";
    List.iter
      (fun (k, v) ->
        match v with
        | J.Int n -> pf "%-28s %14d\n" k n
        | J.Float f -> pf "%-28s %14.2f\n" k f
        | _ -> ())
      fields
  | _ -> ());
  (match Option.bind (J.member "snapshots" j) J.to_list_opt with
  | Some snaps -> pf "(%d periodic snapshots on the virtual clock)\n" (List.length snaps)
  | None -> ());
  j

(* --- Overload resilience: goodput vs offered load, controls on vs off --- *)

let overload () =
  hr "Overload resilience: goodput vs offered load (retry budget + limiter + brownout)";
  pf "%-10s %5s %8s | %8s %5s %5s %5s %6s %6s %5s | %6s %6s %5s | %8s %8s\n" "config"
    "load" "rate" "goodput" "done" "exp" "shed" "lshed" "rshed" "retry" "bisect" "degr"
    "brown" "p50" "p99";
  let rows = E.overload_bench () in
  List.iter
    (fun (r : E.overload_row) ->
      pf
        "%-10s %4.1fx %6.0f/s | %7.1f%% %5d %5d %5d %6d %6d %5d | %6d %6d %5d | %6.2fms \
         %6.2fms\n"
        r.ov_config r.ov_load r.ov_rate_per_s
        (100.0 *. r.ov_goodput)
        r.ov_completed r.ov_expired r.ov_shed r.ov_limit_shed r.ov_retry_shed r.ov_retries
        r.ov_bisections r.ov_degraded_batches r.ov_brownouts r.ov_p50 r.ov_p99)
    rows;
  (* The acceptance gates of DESIGN.md §13, checked right here so a
     regression shows up in `make bench` output, not just in review. *)
  let off = List.filter (fun (r : E.overload_row) -> r.ov_config = "off") rows in
  let on = List.filter (fun (r : E.overload_row) -> r.ov_config = "resilience") rows in
  let above_sat =
    List.filter_map
      (fun (o : E.overload_row) ->
        if o.ov_load <= 1.0 then None
        else
          Option.map
            (fun n -> o, n)
            (List.find_opt (fun (n : E.overload_row) -> n.ov_load = o.ov_load) on))
      off
  in
  let wins =
    List.length
      (List.filter (fun ((o : E.overload_row), (n : E.overload_row)) ->
           n.ov_goodput > o.ov_goodput +. 1e-9)
         above_sat)
  in
  let never_worse =
    List.for_all
      (fun ((o : E.overload_row), (n : E.overload_row)) ->
        n.ov_goodput >= o.ov_goodput -. 1e-9)
      above_sat
  in
  let amplification_ok =
    List.for_all
      (fun (n : E.overload_row) ->
        float_of_int n.ov_retried <= (0.2 *. float_of_int (n.ov_completed + n.ov_expired
        + n.ov_shed + n.ov_limit_shed + n.ov_retry_shed + n.ov_poisoned)) +. 1e-9)
      on
  in
  pf "gates: above-saturation never-worse %b, strict wins %d/%d, retry-amplification <= budget %b\n"
    never_worse wins (List.length above_sat) amplification_ok;
  pf
    "(expected shape: past 1x load the off config drowns — uncapped retries and bisection \
     re-offer work the device cannot absorb and queue delay expires the rest — while the \
     armed config sheds the excess at the door, caps re-execution at 20%% of offered \
     load, and buys capacity with brownout)\n";
  J.List
    (List.map
       (fun (r : E.overload_row) ->
         J.Obj
           [
             "config", J.Str r.ov_config;
             "load", J.Float r.ov_load;
             "rate_rps", J.Float r.ov_rate_per_s;
             "goodput", J.Float r.ov_goodput;
             "completed", J.Int r.ov_completed;
             "expired", J.Int r.ov_expired;
             "shed", J.Int r.ov_shed;
             "limit_shed", J.Int r.ov_limit_shed;
             "retry_shed", J.Int r.ov_retry_shed;
             "retried_requests", J.Int r.ov_retried;
             "retries", J.Int r.ov_retries;
             "bisections", J.Int r.ov_bisections;
             "poisoned", J.Int r.ov_poisoned;
             "degraded_batches", J.Int r.ov_degraded_batches;
             "brownouts", J.Int r.ov_brownouts;
             "brownout_restores", J.Int r.ov_brownout_restores;
             "p50_ms", J.Float r.ov_p50;
             "p99_ms", J.Float r.ov_p99;
             ( "limit_trajectory",
               J.List
                 (List.map
                    (fun (ts, v) -> J.List [ J.Float ts; J.Float v ])
                    r.ov_limit_trajectory) );
           ])
       rows)

(* --- Integrity: delivered corruption vs audit sampling rate --- *)

let integrity () =
  hr "Silent-corruption defense: delivered corruption and goodput vs audit rate";
  pf "%-5s | %8s %5s | %7s %9s | %6s %8s | %4s %7s | %8s %8s\n" "audit" "goodput" "done"
    "corrupt" "delivered" "audits" "mismatch" "quar" "restore" "p50" "p99";
  let rows = E.integrity_bench () in
  List.iter
    (fun (r : E.integrity_row) ->
      pf "%5.2f | %7.1f%% %5d | %7d %9d | %6d %8d | %4d %7d | %6.2fms %6.2fms\n"
        r.ig_audit (100.0 *. r.ig_goodput) r.ig_completed r.ig_corrupted_batches
        r.ig_corrupted_delivered r.ig_audits r.ig_audit_mismatches r.ig_quarantines
        r.ig_quarantine_restores r.ig_p50 r.ig_p99)
    rows;
  (* The acceptance gates of DESIGN.md §14, checked here so a regression
     shows up in `make bench` output, not just in review: sampling at rate
     p bounds expected delivered corruption at (1 - p) of injected, so the
     curve must fall monotonically and hit exactly zero at 1.0 (every
     delivery verified); the audit re-executions may cost only bounded
     goodput over the identical unaudited run. *)
  let rec monotone = function
    | (a : E.integrity_row) :: (b :: _ as rest) ->
      b.ig_corrupted_delivered <= a.ig_corrupted_delivered && monotone rest
    | _ -> true
  in
  let zero_at_full =
    List.for_all
      (fun (r : E.integrity_row) -> r.ig_audit < 1.0 || r.ig_corrupted_delivered = 0)
      rows
  in
  let overhead_ok =
    match
      ( List.find_opt (fun (r : E.integrity_row) -> r.ig_audit = 0.0) rows,
        List.find_opt (fun (r : E.integrity_row) -> r.ig_audit = 1.0) rows )
    with
    | Some off, Some full -> full.ig_goodput >= off.ig_goodput -. 0.15
    | _ -> true
  in
  pf
    "gates: delivered-corruption monotone %b, zero at audit 1.0 %b, goodput overhead <= \
     15pts %b\n"
    (monotone rows) zero_at_full overhead_ok;
  pf
    "(expected shape: without auditing the corrupting replica's wrong answers are \
     delivered silently; each sampled delivery is re-executed unbatched on a clean \
     reference device and compared by fingerprint, so raising the rate intercepts more \
     of them — at 1.0, all of them — while the corruption scoreboard quarantines the \
     dirty replica and probes it back in only after clean audits)\n";
  J.List
    (List.map
       (fun (r : E.integrity_row) ->
         J.Obj
           [
             "audit", J.Float r.ig_audit;
             "goodput", J.Float r.ig_goodput;
             "completed", J.Int r.ig_completed;
             "corrupted_batches", J.Int r.ig_corrupted_batches;
             "corrupted_delivered", J.Int r.ig_corrupted_delivered;
             "audits", J.Int r.ig_audits;
             "audit_mismatches", J.Int r.ig_audit_mismatches;
             "quarantines", J.Int r.ig_quarantines;
             "quarantine_restores", J.Int r.ig_quarantine_restores;
             "p50_ms", J.Float r.ig_p50;
             "p99_ms", J.Float r.ig_p99;
           ])
       rows)

(* --- Simulator-core scale: events/sec, heap backends vs reference --- *)

let scale () =
  hr "Simulator-core scale: events/sec at 10^3..10^6 requests (heap vs reference)";
  pf "%9s %-10s | %9s %8s %7s %7s %7s | %8s %9s | %5s\n" "requests" "backend" "events"
    "done" "shed" "exp" "batch" "wall" "events/s" "equiv";
  let rows = E.scale_bench () in
  List.iter
    (fun (r : E.scale_row) ->
      pf "%9d %-10s | %9d %8d %7d %7d %7d | %7.2fs %9.0f | %5b\n" r.sc_requests
        r.sc_backend r.sc_events r.sc_completed r.sc_shed r.sc_expired r.sc_batches
        r.sc_wall_s
        (if r.sc_wall_s > 0.0 then float_of_int r.sc_events /. r.sc_wall_s else 0.0)
        r.sc_equivalent)
    rows;
  (* Acceptance gates (DESIGN.md §15): every size's summary must be
     byte-identical across backends (the heap rewrite changes nothing but
     speed), and at the largest size the heap core must deliver >= 10x the
     reference's simulator events/sec. *)
  let heap = List.filter (fun (r : E.scale_row) -> r.sc_backend = "heap") rows in
  let reference =
    List.filter (fun (r : E.scale_row) -> r.sc_backend = "reference") rows
  in
  let all_equivalent = List.for_all (fun (r : E.scale_row) -> r.sc_equivalent) rows in
  let eps = 1e-9 in
  let speedup =
    match
      ( List.fold_left
          (fun acc (r : E.scale_row) ->
            match acc with
            | Some (b : E.scale_row) when b.sc_requests >= r.sc_requests -> acc
            | _ -> Some r)
          None heap,
        List.fold_left
          (fun acc (r : E.scale_row) ->
            match acc with
            | Some (b : E.scale_row) when b.sc_requests >= r.sc_requests -> acc
            | _ -> Some r)
          None reference )
    with
    | Some h, Some f ->
      float_of_int h.sc_events /. (h.sc_wall_s +. eps)
      /. (float_of_int f.sc_events /. (f.sc_wall_s +. eps))
    | _ -> 0.0
  in
  pf "gates: backends byte-identical at every size %b, heap speedup at largest size \
      %.1fx (>= 10x %b)\n"
    all_equivalent speedup (speedup >= 10.0);
  pf
    "(expected shape: both backends simulate the identical campaign — same completions, \
     drops, percentiles, byte for byte — but the reference pays O(n) sorted-list walks \
     per admission probe and Map allocation churn per event, so its events/sec collapses \
     as the campaign grows while the heap core's stays roughly flat)\n";
  (* Wall time and events/sec are host measurements and deliberately stay
     out of the JSON: BENCH_scale.json must be byte-identical across runs
     (the Makefile cmp-gates it). *)
  J.List
    (List.map
       (fun (r : E.scale_row) ->
         J.Obj
           [
             "requests", J.Int r.sc_requests;
             "backend", J.Str r.sc_backend;
             "events", J.Int r.sc_events;
             "completed", J.Int r.sc_completed;
             "shed", J.Int r.sc_shed;
             "expired", J.Int r.sc_expired;
             "batches", J.Int r.sc_batches;
             "p50_ms", J.Float r.sc_p50;
             "p99_ms", J.Float r.sc_p99;
             "mean_ms", J.Float r.sc_mean;
             "equivalent", J.Bool r.sc_equivalent;
           ])
       rows)

(* --- Net partition: goodput through partition/heal, exactly-once vs
   naive resend --- *)

let partition () =
  hr "Net partition: goodput through a partition/heal cycle (3 replicas, lossy links)";
  pf "%-13s | %8s %6s %5s %5s %5s | %8s %8s | %6s %6s %5s %6s %6s %5s %4s %5s\n" "transport"
    "goodput" "done" "shed" "exp" "p-drop" "p50" "p99" "sends" "resend" "dups" "dedup"
    "fresh" "t/o" "down" "heals";
  let rows = E.partition_bench () in
  List.iter
    (fun (r : E.partition_row) ->
      pf
        "%-13s | %7.1f%% %6d %5d %5d %6d | %6.2fms %6.2fms | %6d %6d %5d %6d %6d %5d %4d \
         %5d\n"
        r.pt_label
        (100.0 *. r.pt_goodput)
        r.pt_completed r.pt_shed r.pt_expired r.pt_net_partition_drops r.pt_p50 r.pt_p99
        r.pt_net_sends r.pt_net_resends r.pt_net_dups r.pt_net_dedup_hits r.pt_net_fresh
        r.pt_net_timeouts r.pt_link_downs r.pt_heals)
    rows;
  (* The acceptance gates of DESIGN.md §16, checked here so a regression
     shows up in `make bench` output, not just in review: the idempotency
     window must absorb every duplicate (dedup hits > 0 with no goodput
     collapse), and switching it off must cost strictly measurable
     goodput — ghost re-executions displace real work. *)
  let find l = List.find_opt (fun (r : E.partition_row) -> r.pt_label = l) rows in
  let gates =
    match find "direct calls", find "exactly-once", find "naive resend" with
    | Some direct, Some exact, Some naive ->
      let strict = exact.pt_goodput > naive.pt_goodput +. 1e-9 in
      let absorbed = exact.pt_net_dedup_hits > 0 in
      let survives = exact.pt_goodput >= direct.pt_goodput -. 0.1 in
      pf
        "gates: exactly-once strictly beats naive resend %b (%.1f%% vs %.1f%%), dedup \
         absorbed %d duplicates %b, goodput within 10pts of direct calls %b\n"
        strict
        (100.0 *. exact.pt_goodput)
        (100.0 *. naive.pt_goodput)
        exact.pt_net_dedup_hits absorbed survives;
      strict && absorbed && survives
    | _ -> false
  in
  if not gates then pf "PARTITION GATES FAILED\n";
  pf
    "(expected shape: the partitioned replica's links go down and heal on schedule in \
     every transport row; with exactly-once delivery the dedup window absorbs the \
     duplicated and re-sent dispatches so goodput stays near the direct-call baseline, \
     while naive resend re-executes every duplicate, burning replica capacity the \
     offered load needed — strictly lower goodput from the identical arrival trace)\n";
  J.List
    (List.map
       (fun (r : E.partition_row) ->
         J.Obj
           [
             "transport", J.Str r.pt_label;
             "goodput", J.Float r.pt_goodput;
             "offered", J.Int r.pt_offered;
             "completed", J.Int r.pt_completed;
             "shed", J.Int r.pt_shed;
             "expired", J.Int r.pt_expired;
             "p50_ms", J.Float r.pt_p50;
             "p99_ms", J.Float r.pt_p99;
             "net_sends", J.Int r.pt_net_sends;
             "net_resends", J.Int r.pt_net_resends;
             "net_dups", J.Int r.pt_net_dups;
             "net_partition_drops", J.Int r.pt_net_partition_drops;
             "net_dedup_hits", J.Int r.pt_net_dedup_hits;
             "net_fresh", J.Int r.pt_net_fresh;
             "net_timeouts", J.Int r.pt_net_timeouts;
             "net_link_downs", J.Int r.pt_link_downs;
             "net_heals", J.Int r.pt_heals;
           ])
       rows)

(* --- bechamel micro-benchmarks over runtime hot paths --- *)

let micro () =
  hr "bechamel micro-benchmarks (real wall time of hot paths)";
  Micro.run ();
  J.Str "wall-clock results printed to stdout only"

let experiments =
  [
    "table4", table4;
    "table5", table5;
    "table6", table6;
    "table7", table7;
    "table8", table8;
    "table9", table9;
    "fig5", fig5;
    "fig9", fig9;
    "serve", serve;
    "faults", faults;
    "cluster", cluster;
    "chaos", chaos;
    "tenants", tenants;
    "obs", obs;
    "overload", overload;
    "integrity", integrity;
    "scale", scale;
    "partition", partition;
    "extras", extras;
    "micro", micro;
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* Split off `--json FILE` from the experiment selection. *)
  let rec split_json acc = function
    | [] -> List.rev acc, None
    | "--json" :: path :: rest ->
      let names, _ = split_json acc rest in
      names, Some path
    | x :: rest -> split_json (x :: acc) rest
  in
  let names, json_path = split_json [] args in
  let selected =
    match names with
    | [] | [ "all" ] -> List.map fst experiments
    | names -> names
  in
  let results =
    List.map
      (fun name ->
        match List.assoc_opt name experiments with
        | Some f -> name, f ()
        | None ->
          pf "unknown experiment %S; available: %s all\n" name
            (String.concat " " (List.map fst experiments));
          exit 1)
      selected
  in
  match json_path with
  | None -> ()
  | Some path ->
    J.to_file path (J.Obj results);
    pf "\nwrote %s\n" path
