(** Shared clause parsing for comma-separated [key=value] plan specs.

    Two CLI plan languages use the same surface syntax: fault plans
    ({!Faults.parse}: [kernel=0.05,straggler=0.02x6,...]) and network
    plans ([Acrobat_net.Net.parse]: [delay=80:20,drop=0.1,...]). This
    module is the single home of the clause-splitting, key dispatch and
    numeric-range validation both share, so the two parsers cannot drift
    on error shape: both reject unknown keys with the full list of valid
    keys, both name the offending key in range errors, and both use the
    same shortest-round-trip float rendering when specs are re-emitted. *)

(** Raise [Invalid_argument] with a ["bad <what>: ..."] prefix. *)
let fail ~what fmt = Fmt.kstr (fun m -> Fmt.invalid_arg "bad %s: %s" what m) fmt

(** Split a spec into [(key, value)] clauses. Clauses are comma-separated;
    empty clauses (doubled or trailing commas) are ignored; each clause
    must contain ['=']. *)
let fields ~what (spec : string) : (string * string) list =
  List.map
    (fun kv ->
      match String.index_opt kv '=' with
      | None -> fail ~what "field %S is not key=value" kv
      | Some i -> String.sub kv 0 i, String.sub kv (i + 1) (String.length kv - i - 1))
    (List.filter (fun s -> s <> "") (String.split_on_char ',' spec))

(** Reject an unknown clause key, listing every valid key. *)
let unknown_key ~what ~valid key =
  fail ~what "unknown key %S (valid keys: %s)" key (String.concat ", " valid)

(** Parse a probability in [0, 1], naming the offending key on failure. *)
let prob ~what key s =
  match float_of_string_opt s with
  | Some p when p >= 0.0 && p <= 1.0 -> p
  | _ -> fail ~what "%s=%s is not a probability in [0, 1]" key s

(** Range-check an already-parsed probability (the programmatic-plan path
    that bypasses the parser). *)
let check_prob ~what key v =
  if not (Float.is_finite v) || v < 0.0 || v > 1.0 then
    fail ~what "%s=%g is not a probability in [0, 1]" key v

(** Parse a non-negative finite float, naming the offending key. *)
let nonneg ~what key s =
  match float_of_string_opt s with
  | Some v when Float.is_finite v && v >= 0.0 -> v
  | _ -> fail ~what "%s=%s is not a non-negative number" key s

(** Range-check an already-parsed non-negative float. *)
let check_nonneg ~what key v =
  if not (Float.is_finite v) || v < 0.0 then
    fail ~what "%s=%g is not a non-negative number" key v

(** Parse an integer, naming the offending key. *)
let int ~what key s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> fail ~what "%s=%s is not an integer" key s

(** Shortest decimal form that parses back to exactly [f] — keeps
    re-emitted specs ([to_spec]) round-trippable and byte-stable. *)
let float_spec (f : float) : string =
  let s = Fmt.str "%.12g" f in
  if float_of_string s = f then s else Fmt.str "%.17g" f
