(** Compiler introspection: show what each analysis decides for a model —
    specializations (code duplication), kernels with argument roles,
    hoisted blocks, program phases — for the BiRNN, the model that
    exercises them all.

    Run with: [dune exec examples/inspect_compiler.exe] *)

open Acrobat
module L = Lowered

let () =
  let model = Acrobat_models.Birnn.make ~hidden:8 ~classes:4 Model.Small in
  let lp = Lower.compile ~inputs:model.Model.inputs model.Model.source in

  Fmt.pr "=== specialized definitions (1-context code duplication, paper C.1) ===@.";
  Hashtbl.iter (fun name (_ : L.ldef) -> Fmt.pr "  %s@." name) lp.L.defs;

  Fmt.pr "@.=== generated batched kernels (S = shared argument, B = batched) ===@.";
  List.iter (fun k -> Fmt.pr "  %a@." Kernel.pp k) (Kernel.all_kernels lp.L.registry);

  Fmt.pr "@.=== scheduling structure ===@.";
  let rec walk indent (e : L.lexpr) =
    match e with
    | L.Lblock (b, cont) ->
      Fmt.pr "%sblock %-28s depth=%s outs=[%s]@." indent b.L.kernel.Kernel.name
        (match b.L.depth with L.Static d -> "static " ^ string_of_int d | L.Dynamic -> "dynamic")
        (String.concat ", " b.L.outs);
      walk indent cont
    | L.Lphase (k, cont) ->
      Fmt.pr "%s-- phase %d --@." indent k;
      walk indent cont
    | L.Lghost (n, cont) ->
      Fmt.pr "%sghost x%d@." indent n;
      walk indent cont
    | L.Llet (_, rhs, cont) ->
      walk indent rhs;
      walk indent cont
    | L.Lmatch (_, cases) -> List.iter (fun (_, e) -> walk (indent ^ "  ") e) cases
    | L.Lif (_, a, b) ->
      walk (indent ^ "  ") a;
      walk (indent ^ "  ") b
    | L.Lmap (f, _) -> walk (indent ^ "  ") f
    | L.Lfn (_, b) -> walk indent b
    | L.Lcons (a, b) ->
      walk indent a;
      walk indent b
    | _ -> ()
  in
  Hashtbl.iter
    (fun name (d : L.ldef) ->
      Fmt.pr "@.def %s:@." name;
      walk "  " d.L.lbody)
    lp.L.defs;
  Fmt.pr "@.max static depth: %d   tensor-dependent control flow: %b@." lp.L.max_static_depth
    lp.L.has_tdc
