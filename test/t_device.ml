(** Tests for the simulated device: cost model, memory arena (including the
    bounded-capacity OOM path), fault injection, profiler, launch
    accounting. *)

open Acrobat
open T_util
module Memory = Acrobat_device.Memory
module Faults = Acrobat_device.Faults

let cm = Cost_model.default

let test_kernel_time_monotone () =
  let t f = Cost_model.kernel_time cm ~flops:f in
  check_true "more flops, more time" (t 1.0e6 < t 1.0e7);
  check_true "launch floor" (t 0.0 >= cm.Cost_model.kernel_launch_us)

let test_kernel_time_saturation () =
  (* Effective rate grows with kernel size: time per flop shrinks. *)
  let per_flop f = (Cost_model.kernel_time cm ~flops:f -. cm.Cost_model.kernel_launch_us) /. f in
  check_true "big kernels are more efficient" (per_flop 1.0e9 < per_flop 1.0e6)

let test_kernel_time_roofline () =
  let small_traffic = Cost_model.kernel_time cm ~flops:1000.0 ~bytes:0.0 in
  let big_traffic = Cost_model.kernel_time cm ~flops:1000.0 ~bytes:1.0e8 in
  check_true "memory-bound kernels pay bandwidth" (big_traffic > small_traffic +. 100.0)

let test_memcpy_time () =
  let t0 = Cost_model.memcpy_time cm ~bytes:0 in
  check_float "call overhead" cm.Cost_model.memcpy_call_us t0;
  check_true "bandwidth term" (Cost_model.memcpy_time cm ~bytes:8_000_000 > 900.0)

let test_memory_bump () =
  let m = Memory.create () in
  let a = Memory.alloc m ~elems:10 in
  let b = Memory.alloc m ~elems:5 in
  check_int "first at 0" 0 a;
  check_int "bump" 10 b;
  check_int "used" 15 (Memory.used_elems m);
  Memory.reset m;
  check_int "reset" 0 (Memory.used_elems m);
  check_int "peak survives reset" 15 (Memory.peak_elems m)

let test_memory_capacity_boundary () =
  let m = Memory.create ~capacity:100 () in
  ignore (Memory.alloc m ~elems:60);
  (* A boundary allocation filling the arena exactly must succeed... *)
  ignore (Memory.alloc m ~elems:40);
  check_int "arena exactly full" 100 (Memory.used_elems m);
  (* ...and the very next element must raise the typed OOM, not an assert. *)
  (match Memory.alloc m ~elems:1 with
  | _ -> Alcotest.fail "expected Device_oom past capacity"
  | exception Memory.Device_oom { requested; in_use; capacity } ->
    check_int "requested" 1 requested;
    check_int "in use" 100 in_use;
    check_int "capacity" 100 capacity);
  check_int "oom counted" 1 (Memory.oom_failures m);
  (* The failed alloc must not corrupt the arena: reset frees it, keeps peak. *)
  Memory.reset m;
  check_int "reset empties" 0 (Memory.used_elems m);
  check_int "peak survives reset" 100 (Memory.peak_elems m);
  ignore (Memory.alloc m ~elems:100)

let test_faults_parse () =
  let p = Faults.parse "seed=7,kernel=0.05,straggler=0.02x6,reset=0.001,capacity=200000,poison=3+17" in
  check_int "seed" 7 p.Faults.seed;
  check_float "kernel" 0.05 p.Faults.kernel_fault_rate;
  check_float "straggler rate" 0.02 p.Faults.straggler_rate;
  check_float "straggler mult" 6.0 p.Faults.straggler_mult;
  check_float "reset" 0.001 p.Faults.reset_rate;
  check_true "capacity" (p.Faults.capacity_elems = Some 200000);
  Alcotest.(check (list int)) "poison ids" [ 3; 17 ] p.Faults.poison;
  check_true "enabled" (Faults.enabled p);
  check_bool "none disabled" false (Faults.enabled Faults.none);
  (match Faults.parse "kernel=1.5" with
  | _ -> Alcotest.fail "expected rejection of probability > 1"
  | exception Invalid_argument _ -> ());
  match Faults.parse "bogus=1" with
  | _ -> Alcotest.fail "expected rejection of unknown key"
  | exception Invalid_argument msg ->
    (* The rejection must name the bad key and teach the valid ones. *)
    check_true "error names the key" (contains msg "bogus");
    List.iter
      (fun k -> check_true ("error lists valid key " ^ k) (contains msg k))
      [ "seed"; "kernel"; "straggler"; "reset"; "capacity"; "poison" ]

let test_faults_spec_round_trip () =
  List.iter
    (fun spec ->
      let p = Faults.parse spec in
      check_true ("pp/parse round-trip for " ^ spec) (Faults.parse (Faults.to_spec p) = p))
    [
      "seed=7,kernel=0.05,straggler=0.02x6,reset=0.001,capacity=200000,poison=3+17";
      "kernel=0.3";
      "seed=11,straggler=0.15x8";
      "reset=0.1,poison=5";
      "seed=0";
      "seed=4,corrupt=0.3";
      "corrupt=0.05,flaky=2";
      "flaky=0";
    ];
  check_true "to_spec emits the canonical key order"
    (Faults.to_spec (Faults.parse "poison=5,kernel=0.3,seed=2")
    = "seed=2,kernel=0.3,straggler=0x6,reset=0,poison=5");
  (* Corruption clauses render only when set, so legacy plans keep their
     historical spec bytes. *)
  check_true "corrupt/flaky appended after legacy keys"
    (Faults.to_spec (Faults.parse "flaky=1,corrupt=0.2")
    = "seed=0,kernel=0,straggler=0x6,reset=0,corrupt=0.2,flaky=1")

let test_faults_validate () =
  let rejects ?(key = "") plan =
    match Faults.validate plan with
    | () -> Alcotest.fail "expected validate to reject the plan"
    | exception Invalid_argument msg ->
      if key <> "" then check_true ("error names " ^ key) (contains msg key)
  in
  (* Parser-bypassing (programmatic) plans hit the same checks as specs,
     with the offending key named. *)
  Faults.validate Faults.none;
  rejects ~key:"kernel" { Faults.none with Faults.kernel_fault_rate = -0.1 };
  rejects ~key:"kernel" { Faults.none with Faults.kernel_fault_rate = Float.nan };
  rejects ~key:"straggler" { Faults.none with Faults.straggler_rate = 1.5 };
  rejects ~key:"reset" { Faults.none with Faults.reset_rate = infinity };
  rejects ~key:"straggler multiplier" { Faults.none with Faults.straggler_mult = 0.5 };
  rejects ~key:"reset cost" { Faults.none with Faults.reset_cost_us = -1.0 };
  rejects ~key:"capacity" { Faults.none with Faults.capacity_elems = Some 0 };
  (* Rates that individually pass but sum past 1.0 would make the
     per-attempt decision bands overlap. *)
  rejects ~key:"exceeds 1"
    {
      Faults.none with
      Faults.kernel_fault_rate = 0.5;
      reset_rate = 0.4;
      straggler_rate = 0.2;
    };
  (* The parse path rejects the same malformed rates, naming the key. *)
  List.iter
    (fun (spec, key) ->
      match Faults.parse spec with
      | _ -> Alcotest.fail ("expected parse to reject " ^ spec)
      | exception Invalid_argument msg -> check_true ("parse names " ^ key) (contains msg key))
    [
      "kernel=-0.2", "kernel";
      "kernel=nan", "kernel";
      "reset=1.01", "reset";
      "straggler=2", "straggler";
      "kernel=0.9,reset=0.2", "exceeds 1";
    ]

let test_faults_corrupt_parse () =
  let p = Faults.parse "seed=5,corrupt=0.25,flaky=3" in
  check_int "seed" 5 p.Faults.seed;
  check_float "corrupt" 0.25 p.Faults.corrupt_rate;
  check_true "flaky" (p.Faults.flaky_after = Some 3);
  check_true "enabled" (Faults.enabled p);
  check_true "corrupts" (Faults.corrupts p);
  check_bool "legacy faults do not corrupt" false
    (Faults.corrupts (Faults.parse "kernel=0.3"));
  check_true "flaky alone corrupts" (Faults.corrupts (Faults.parse "flaky=0"));
  check_true "flaky alone enables the plan" (Faults.enabled (Faults.parse "flaky=0"));
  (match Faults.parse "corrupt=1.5" with
  | _ -> Alcotest.fail "expected rejection of probability > 1"
  | exception Invalid_argument msg -> check_true "names corrupt" (contains msg "corrupt"));
  (match Faults.parse "flaky=-1" with
  | _ -> Alcotest.fail "expected rejection of a negative onset"
  | exception Invalid_argument msg -> check_true "names flaky" (contains msg "flaky"));
  (* Programmatic (parser-bypassing) plans hit the same checks. *)
  (match Faults.validate { Faults.none with Faults.corrupt_rate = Float.nan } with
  | () -> Alcotest.fail "expected validate to reject nan corrupt rate"
  | exception Invalid_argument msg ->
    check_true "validate names corrupt" (contains msg "corrupt"));
  match Faults.validate { Faults.none with Faults.flaky_after = Some (-2) } with
  | () -> Alcotest.fail "expected validate to reject a negative onset"
  | exception Invalid_argument msg -> check_true "validate names flaky" (contains msg "flaky")

(* Run [attempts] single-launch attempts against a fresh injector, returning
   the per-attempt fate trace. *)
let fault_trace plan attempts =
  let inj = Faults.create plan in
  List.init attempts (fun _ ->
      let d = Device.create ~faults:inj () in
      match Device.launch_kernel d ~flops:1.0e6 with
      | () -> "ok"
      | exception Faults.Fault { kind; _ } -> Faults.kind_name kind)

let test_faults_deterministic () =
  let plan = Faults.parse "seed=3,kernel=0.3,reset=0.1" in
  let a = fault_trace plan 200 and b = fault_trace plan 200 in
  Alcotest.(check (list string)) "same seed, same fault sequence" a b;
  check_true "faults actually injected" (List.exists (fun s -> s = "kernel-fault") a);
  check_true "resets actually injected" (List.exists (fun s -> s = "device-reset") a);
  check_true "clean attempts too" (List.exists (fun s -> s = "ok") a);
  let c = fault_trace (Faults.parse "seed=4,kernel=0.3,reset=0.1") 200 in
  check_true "seed-sensitive" (c <> a)

let test_faults_corrupt_injection () =
  (* corrupt=1: every attempt silently corrupts — nothing raises, the
     launch succeeds, only the injector's ground truth knows. *)
  let inj = Faults.create (Faults.parse "corrupt=1.0") in
  let d = Device.create ~faults:inj () in
  Device.launch_kernel d ~flops:1.0e6;
  check_true "device reports the corrupting attempt" (Device.corrupting d);
  check_true "injector ground truth" (Faults.corrupt_attempt inj);
  check_int "corruption counted" 1 (Faults.corruptions inj);
  (* flaky=2: deterministic onset — attempts 1..2 clean, all later corrupt. *)
  let inj = Faults.create (Faults.parse "flaky=2") in
  let fates =
    List.init 5 (fun _ -> Device.corrupting (Device.create ~faults:inj ()))
  in
  Alcotest.(check (list bool)) "flaky onset after attempt 2"
    [ false; false; true; true; true ] fates;
  (* Probabilistic corruption replays byte-for-byte from the plan seed. *)
  let trace spec =
    let inj = Faults.create (Faults.parse spec) in
    List.init 100 (fun _ -> Device.corrupting (Device.create ~faults:inj ()))
  in
  let a = trace "seed=5,corrupt=0.3" in
  Alcotest.(check (list bool)) "same seed, same corruption pattern" a
    (trace "seed=5,corrupt=0.3");
  check_true "corruptions actually drawn" (List.mem true a);
  check_true "clean attempts too" (List.mem false a);
  check_true "seed-sensitive" (trace "seed=6,corrupt=0.3" <> a)

let test_faults_corrupt_stream_preserved () =
  (* Flaky onset is deterministic and draw-free, so adding it must not
     perturb the legacy fault-fate stream of a (seed, plan) pair. (A
     [corrupt=] clause does draw — one independent uniform per attempt,
     taken strictly after the fate draw — so it legitimately shifts later
     fates; the byte-stability claim is about plans without corruption.) *)
  let base = "seed=3,kernel=0.3,reset=0.1" in
  Alcotest.(check (list string)) "fault fates unchanged under flaky="
    (fault_trace (Faults.parse base) 200)
    (fault_trace (Faults.parse (base ^ ",flaky=50")) 200);
  (* And the zero-rate corrupt clause is inert by construction: the draw is
     short-circuited, so the stream stays the legacy one. *)
  let p = { (Faults.parse base) with Faults.corrupt_rate = 0.0 } in
  Alcotest.(check (list string)) "corrupt_rate 0 draws nothing"
    (fault_trace (Faults.parse base) 200)
    (fault_trace p 200)

let test_faults_straggler_mult () =
  (* straggler rate 1: every attempt straggles by exactly the multiplier. *)
  let inj = Faults.create (Faults.parse "straggler=1.0x4") in
  let slow = Device.create ~faults:inj () in
  let fast = Device.create () in
  Device.launch_kernel slow ~flops:1.0e6;
  Device.launch_kernel fast ~flops:1.0e6;
  let k d = Profiler.time_us (Device.profiler d) Profiler.Kernel_exec in
  check_float ~eps:1e-6 "straggler multiplies kernel time" (4.0 *. k fast) (k slow);
  check_int "straggler counted once per attempt" 1 (Faults.stragglers inj)

let test_faults_burn_time () =
  (* An injected fault still charges the device for the failed attempt. *)
  let inj = Faults.create (Faults.parse "kernel=1.0") in
  let d = Device.create ~faults:inj () in
  (match Device.launch_kernel d ~flops:1.0e6 with
  | () -> Alcotest.fail "expected injected fault"
  | exception Faults.Fault _ -> ());
  check_true "failed attempt burned time" (Profiler.total_us (Device.profiler d) > 0.0);
  check_int "fault counted" 1 (Faults.kernel_faults inj)

let test_contiguity () =
  check_true "empty" (Memory.contiguous []);
  check_true "single" (Memory.contiguous [ 5, 3 ]);
  check_true "adjacent" (Memory.contiguous [ 0, 4; 4, 2; 6, 1 ]);
  check_bool "gap" false (Memory.contiguous [ 0, 4; 5, 2 ]);
  check_bool "out of order" false (Memory.contiguous [ 4, 2; 0, 4 ]);
  check_bool "duplicate address" false (Memory.contiguous [ 0, 4; 0, 4 ])

let prop_contiguous_alloc =
  qtest "memory: consecutive allocs are contiguous"
    QCheck2.Gen.(list_size (int_range 1 10) (int_range 1 100))
    (fun sizes ->
      let m = Memory.create () in
      let chunks = List.map (fun sz -> Memory.alloc m ~elems:sz, sz) sizes in
      Memory.contiguous chunks)

let test_device_counters () =
  let d = Device.create () in
  Device.launch_kernel d ~flops:1000.0;
  Device.launch_kernel d ~flops:1000.0;
  ignore (Device.launch_gather d ~bytes:4000 ~elems:1000);
  Device.memcpy d ~bytes:100;
  let p = Device.profiler d in
  check_int "kernel calls incl gather" 3 p.Profiler.kernel_calls;
  check_int "gathers" 1 p.Profiler.gather_kernels;
  check_int "gather bytes" 4000 p.Profiler.gather_bytes;
  check_int "memcpys" 1 p.Profiler.memcpy_calls;
  check_true "api time" (Profiler.time_us p Profiler.Api_overhead > 0.0);
  check_true "total positive" (Profiler.total_ms p > 0.0)

let test_quality_divides_time () =
  let d1 = Device.create () and d2 = Device.create () in
  Device.launch_kernel d1 ~quality:1.0 ~flops:1.0e6;
  Device.launch_kernel d2 ~quality:0.5 ~flops:1.0e6;
  let k d = Profiler.time_us (Device.profiler d) Profiler.Kernel_exec in
  check_float ~eps:1e-6 "half quality doubles time" (2.0 *. k d1) (k d2)

let test_scattered_penalty () =
  let d1 = Device.create () and d2 = Device.create () in
  Device.launch_kernel d1 ~flops:1.0e6;
  Device.launch_kernel d2 ~scattered_inputs:true ~flops:1.0e6;
  let k d = Profiler.time_us (Device.profiler d) Profiler.Kernel_exec in
  check_true "indirection penalty" (k d2 > k d1)

let test_profiler_merge () =
  let a = Profiler.create () and b = Profiler.create () in
  Profiler.charge a Profiler.Scheduling 5.0;
  Profiler.charge b Profiler.Scheduling 7.0;
  b.Profiler.kernel_calls <- 3;
  Profiler.merge ~into:a b;
  check_float "times merged" 12.0 (Profiler.time_us a Profiler.Scheduling);
  check_int "counters merged" 3 a.Profiler.kernel_calls

let test_profiler_reset () =
  let p = Profiler.create () in
  Profiler.charge p Profiler.Kernel_exec 4.0;
  p.Profiler.nodes_created <- 9;
  Profiler.reset p;
  check_float "times zeroed" 0.0 (Profiler.total_us p);
  check_int "counters zeroed" 0 p.Profiler.nodes_created

let suite =
  [
    Alcotest.test_case "cost: kernel time monotone" `Quick test_kernel_time_monotone;
    Alcotest.test_case "cost: saturation" `Quick test_kernel_time_saturation;
    Alcotest.test_case "cost: roofline" `Quick test_kernel_time_roofline;
    Alcotest.test_case "cost: memcpy" `Quick test_memcpy_time;
    Alcotest.test_case "memory: bump allocation" `Quick test_memory_bump;
    Alcotest.test_case "memory: capacity boundary + typed OOM" `Quick
      test_memory_capacity_boundary;
    Alcotest.test_case "memory: contiguity" `Quick test_contiguity;
    Alcotest.test_case "faults: plan parsing" `Quick test_faults_parse;
    Alcotest.test_case "faults: spec round-trip" `Quick test_faults_spec_round_trip;
    Alcotest.test_case "faults: plan validation rejects bad rates" `Quick
      test_faults_validate;
    Alcotest.test_case "faults: deterministic injection" `Quick test_faults_deterministic;
    Alcotest.test_case "faults: corrupt/flaky parsing and validation" `Quick
      test_faults_corrupt_parse;
    Alcotest.test_case "faults: silent corruption injection" `Quick
      test_faults_corrupt_injection;
    Alcotest.test_case "faults: corrupt clause preserves the legacy stream" `Quick
      test_faults_corrupt_stream_preserved;
    Alcotest.test_case "faults: straggler multiplier" `Quick test_faults_straggler_mult;
    Alcotest.test_case "faults: failed attempts burn device time" `Quick
      test_faults_burn_time;
    prop_contiguous_alloc;
    Alcotest.test_case "device: counters" `Quick test_device_counters;
    Alcotest.test_case "device: quality" `Quick test_quality_divides_time;
    Alcotest.test_case "device: scattered penalty" `Quick test_scattered_penalty;
    Alcotest.test_case "profiler: merge" `Quick test_profiler_merge;
    Alcotest.test_case "profiler: reset" `Quick test_profiler_reset;
  ]
