(** MV-RNN (Socher et al. 2012): matrix-vector recursive network. Every
    word carries a (vector, matrix) pair; composing two children multiplies
    one child's {e matrix} by the other's {e vector} — a matmul of two
    intermediate activations, which is exactly the case DyNet's
    first-argument batching heuristic cannot batch (§E.4, Table 8). *)

module Driver = Acrobat_engines.Driver
module W = Acrobat_workloads
open Acrobat_tensor

let template =
  {|
def @tree(%t: Tree[(Tensor[(1, {H})], Tensor[({H}, {H})])],
          %w: Tensor[({H2}, {H})], %wm: Tensor[({H2}, {H})], %b: Tensor[(1, {H})])
    -> (Tensor[(1, {H})], Tensor[({H}, {H})]) {
  match (%t) {
    Leaf(%wv) => %wv,
    Node(%l, %r) => {
      let %pair = concurrent(@tree(%l, %w, %wm, %b), @tree(%r, %w, %wm, %b));
      let %lv = %pair.0;
      let %rv = %pair.1;
      let %va = matmul(%lv.0, %rv.1);
      let %vb = matmul(%rv.0, %lv.1);
      let %p = tanh(%b + matmul(concat(%va, %vb), %w));
      let %pm = matmul(concat(%lv.1, %rv.1), %wm);
      (%p, %pm)
    }
  }
}

def @main(%w: Tensor[({H2}, {H})], %wm: Tensor[({H2}, {H})], %b: Tensor[(1, {H})],
          %c_wt: Tensor[({H}, {C})], %c_b: Tensor[(1, {C})],
          %tree: Tree[(Tensor[(1, {H})], Tensor[({H}, {H})])]) -> Tensor[(1, {C})] {
  let %root = @tree(%tree, %w, %wm, %b);
  softmax(%c_b + matmul(%root.0, %c_wt))
}
|}

let make ?(classes = 5) ?hidden (size : Model.size) : Model.t =
  (* The paper uses hidden sizes 64 / 128 for MV-RNN specifically. *)
  let hidden =
    match hidden with
    | Some h -> h
    | None -> ( match size with Model.Small -> 64 | Model.Large -> 128)
  in
  let specs =
    [
      "w", [ 2 * hidden; hidden ];
      "wm", [ 2 * hidden; hidden ];
      "b", [ 1; hidden ];
      "c_wt", [ hidden; classes ];
      "c_b", [ 1; classes ];
    ]
  in
  (* Per-word (vector, matrix) pairs, cached by word id. *)
  let cache : (int, Tensor.t * Tensor.t) Hashtbl.t = Hashtbl.create 256 in
  let lookup word =
    match Hashtbl.find_opt cache word with
    | Some vm -> vm
    | None ->
      let rng = Rng.create ((word * 31) + 5) in
      let vm = Tensor.random rng [ 1; hidden ], Tensor.random rng [ hidden; hidden ] in
      Hashtbl.replace cache word vm;
      vm
  in
  let rec tree_hval (t : W.Trees.t) =
    match t with
    | W.Trees.Leaf w ->
      let v, m = lookup w in
      Driver.Hleaf (Driver.Htuple [ Driver.Htensor v; Driver.Htensor m ])
    | W.Trees.Node (l, r) -> Driver.Hnode (tree_hval l, tree_hval r)
  in
  {
    Model.name = "mvrnn";
    size;
    source = Model.subst [ "H", hidden; "H2", 2 * hidden; "C", classes ] template;
    inputs = [ "tree" ];
    gen_weights = Model.weights_of_specs specs;
    gen_instance = (fun rng -> [ "tree", tree_hval (W.Trees.sample rng) ]);
    degraded = None;
  }
