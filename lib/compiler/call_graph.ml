(** Call graph over global definitions, with strongly-connected components
    to identify (mutually) recursive functions. Recursion matters twice:
    the taint analysis widens through recursive cycles, and specialization
    (code duplication) must keep an entire SCC inside one context. *)

open Acrobat_ir

type t = {
  edges : (string, string list) Hashtbl.t;
  scc_of : (string, int) Hashtbl.t;  (** def name -> SCC index *)
  recursive : (string, bool) Hashtbl.t;
}

let successors t name = Option.value ~default:[] (Hashtbl.find_opt t.edges name)

let scc_index t name = Option.value ~default:(-1) (Hashtbl.find_opt t.scc_of name)

(** Is [name] part of a recursive cycle (including self-recursion)? *)
let is_recursive t name = Option.value ~default:false (Hashtbl.find_opt t.recursive name)

(** Are [a] and [b] in the same recursive cycle? *)
let same_scc t a b = scc_index t a = scc_index t b && scc_index t a >= 0

(* Tarjan's strongly-connected components. *)
let compute_sccs edges names =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let next_index = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !next_index;
    Hashtbl.replace lowlink v !next_index;
    incr next_index;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (Option.value ~default:[] (Hashtbl.find_opt edges v));
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          if w = v then w :: acc else pop (w :: acc)
      in
      sccs := pop [] :: !sccs
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) names;
  !sccs

let build (p : Ast.program) : t =
  let edges = Hashtbl.create 16 in
  List.iter
    (fun (d : Ast.def) -> Hashtbl.replace edges d.name (Ast.globals_of d.body))
    p.defs;
  let names = List.map (fun (d : Ast.def) -> d.name) p.defs in
  let sccs = compute_sccs edges names in
  let scc_of = Hashtbl.create 16 in
  let recursive = Hashtbl.create 16 in
  List.iteri
    (fun i members ->
      List.iter
        (fun m ->
          Hashtbl.replace scc_of m i;
          let self_loop =
            List.mem m (Option.value ~default:[] (Hashtbl.find_opt edges m))
          in
          Hashtbl.replace recursive m (List.length members > 1 || self_loop))
        members)
    sccs;
  { edges; scc_of; recursive }
