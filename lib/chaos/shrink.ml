(** Delta-debugging shrinker: minimize a violating scenario while the
    violation still reproduces.

    Greedy first-improvement over a candidate list: structural edits first
    (drop a replica, disable hedging, lift the deadline, halve the request
    count, un-bound the queue), then per-replica fault-plan edits (clear a
    whole plan, zero one clause, halve a rate). Whenever a candidate still
    violates, restart the scan from that smaller scenario; stop when no
    candidate violates or the re-run budget is spent. Each probe is one
    full deterministic simulation, so the budget bounds wall-clock, not
    correctness — the result is always a scenario that {e does} violate. *)

module Faults = Acrobat_device.Faults
module Resilience = Acrobat_resilience.Policy
module Net = Acrobat_net.Net

(* Net-plan simplifications, most aggressive first: kill the partition,
   zero one transport clause, then halve rates. Delays shrink toward zero
   jitter, not zero base — a zero-delay plan with drop still armed keeps
   the violation's loss character while removing timing noise. *)
let net_candidates (p : Net.plan) : Net.plan list =
  let c = ref [] in
  let add p' = c := p' :: !c in
  if p.Net.np_partition <> None then add { p with Net.np_partition = None };
  if p.Net.np_drop > 0.0 then add { p with Net.np_drop = 0.0 };
  if p.Net.np_dup > 0.0 then add { p with Net.np_dup = 0.0 };
  if p.Net.np_gray > 0.0 then add { p with Net.np_gray = 0.0 };
  if p.Net.np_reorder > 0.0 then add { p with Net.np_reorder = 0.0 };
  if p.Net.np_jitter_us > 0.0 then add { p with Net.np_jitter_us = 0.0 };
  if p.Net.np_drop > 0.02 then add { p with Net.np_drop = p.Net.np_drop /. 2.0 };
  if p.Net.np_dup > 0.02 then add { p with Net.np_dup = p.Net.np_dup /. 2.0 };
  if p.Net.np_gray > 0.02 then add { p with Net.np_gray = p.Net.np_gray /. 2.0 };
  List.rev !c

(* Plan-level simplifications, most aggressive first. Each candidate must
   strictly shrink some measure (clause count, then rate magnitude) so the
   greedy loop terminates. *)
let plan_candidates (p : Faults.plan) : Faults.plan list =
  let c = ref [] in
  let add p' = c := p' :: !c in
  if Faults.enabled p then add Faults.none;
  if p.Faults.kernel_fault_rate > 0.0 then
    add { p with Faults.kernel_fault_rate = 0.0 };
  if p.Faults.straggler_rate > 0.0 then add { p with Faults.straggler_rate = 0.0 };
  if p.Faults.reset_rate > 0.0 then add { p with Faults.reset_rate = 0.0 };
  if p.Faults.capacity_elems <> None then add { p with Faults.capacity_elems = None };
  if p.Faults.poison <> [] then add { p with Faults.poison = [] };
  if p.Faults.corrupt_rate > 0.0 then add { p with Faults.corrupt_rate = 0.0 };
  if p.Faults.flaky_after <> None then add { p with Faults.flaky_after = None };
  (match p.Faults.poison with
  | _ :: (_ :: _ as rest) -> add { p with Faults.poison = rest }
  | _ -> ());
  if p.Faults.kernel_fault_rate > 0.02 then
    add { p with Faults.kernel_fault_rate = p.Faults.kernel_fault_rate /. 2.0 };
  if p.Faults.straggler_rate > 0.02 then
    add { p with Faults.straggler_rate = p.Faults.straggler_rate /. 2.0 };
  if p.Faults.reset_rate > 0.02 then
    add { p with Faults.reset_rate = p.Faults.reset_rate /. 2.0 };
  if p.Faults.corrupt_rate > 0.02 then
    add { p with Faults.corrupt_rate = p.Faults.corrupt_rate /. 2.0 };
  List.rev !c

(** All one-step simplifications of [sc], in the order the greedy loop
    tries them. *)
let candidates (sc : Scenario.t) : Scenario.t list =
  let c = ref [] in
  let add sc' = c := sc' :: !c in
  (match sc.Scenario.sc_tenancy with
  | Some tc ->
    (* Tenant-mix edits replace the cluster-topology ones: the dispatcher
       ignores replicas/deadline, so probing those would waste budget.
       Dropping the last tenant and collapsing the autoscaler span both
       strictly shrink the scenario. *)
    let nt = Array.length tc.Scenario.tc_tenants in
    if nt > 1 then
      add
        {
          sc with
          Scenario.sc_tenancy =
            Some { tc with Scenario.tc_tenants = Array.sub tc.Scenario.tc_tenants 0 (nt - 1) };
        };
    if tc.Scenario.tc_max > tc.Scenario.tc_min then begin
      add
        {
          sc with
          Scenario.sc_tenancy = Some { tc with Scenario.tc_max = tc.Scenario.tc_min };
          sc_plans = Array.sub sc.Scenario.sc_plans 0 tc.Scenario.tc_min;
        }
    end;
    (* Dispatcher-level hedging applies on tenant mixes too. *)
    if sc.Scenario.sc_hedge <> None then add { sc with Scenario.sc_hedge = None }
  | None ->
    if sc.Scenario.sc_replicas > 1 then
      add
        {
          sc with
          Scenario.sc_replicas = sc.Scenario.sc_replicas - 1;
          sc_plans = Array.sub sc.Scenario.sc_plans 0 (sc.Scenario.sc_replicas - 1);
          (* Hedging needs a second replica to send the copy to. *)
          sc_hedge = (if sc.Scenario.sc_replicas = 2 then None else sc.Scenario.sc_hedge);
        };
    if sc.Scenario.sc_hedge <> None then add { sc with Scenario.sc_hedge = None };
    if sc.Scenario.sc_deadline_ms <> None then
      add { sc with Scenario.sc_deadline_ms = None });
  (* Overload-control mechanisms shrink toward off: whole-config first,
     then one mechanism at a time, so a violation implicating a single
     mechanism minimizes to exactly that flag. *)
  let rs = sc.Scenario.sc_resilience in
  if Resilience.active rs then add { sc with Scenario.sc_resilience = Resilience.off };
  if rs.Resilience.rs_retry_budget <> None then
    add
      { sc with Scenario.sc_resilience = { rs with Resilience.rs_retry_budget = None } };
  if rs.Resilience.rs_target_delay_us <> None then
    add
      {
        sc with
        Scenario.sc_resilience = { rs with Resilience.rs_target_delay_us = None };
      };
  if rs.Resilience.rs_brownout <> None then
    add
      { sc with Scenario.sc_resilience = { rs with Resilience.rs_brownout = None } };
  (* Auditing shrinks toward off: a violation that survives without the
     audit gate implicates the base machinery, not the integrity layer. *)
  if sc.Scenario.sc_audit > 0.0 then add { sc with Scenario.sc_audit = 0.0 };
  (* The transport shrinks toward direct calls first; failing that, one
     clause at a time so a violation implicating e.g. dup+resend minimizes
     to exactly those clauses. *)
  (match sc.Scenario.sc_net with
  | None -> ()
  | Some p ->
    add { sc with Scenario.sc_net = None };
    List.iter
      (fun p' -> add { sc with Scenario.sc_net = Some p' })
      (net_candidates p));
  if sc.Scenario.sc_requests > 10 then
    add { sc with Scenario.sc_requests = sc.Scenario.sc_requests / 2 };
  if sc.Scenario.sc_queue_cap < 256 then add { sc with Scenario.sc_queue_cap = 256 };
  Array.iteri
    (fun i p ->
      List.iter
        (fun p' ->
          let plans = Array.copy sc.Scenario.sc_plans in
          plans.(i) <- p';
          add { sc with Scenario.sc_plans = plans })
        (plan_candidates p))
    sc.Scenario.sc_plans;
  List.rev !c

(** [shrink ~violates ~budget sc0] greedily minimizes [sc0], assuming
    [violates sc0 = true]. Returns the minimal violating scenario found and
    the number of [violates] probes spent. *)
let shrink ~(violates : Scenario.t -> bool) ~(budget : int) (sc0 : Scenario.t) :
    Scenario.t * int =
  let runs = ref 0 in
  let current = ref sc0 in
  let progress = ref true in
  while !progress && !runs < budget do
    progress := false;
    let rec try_candidates = function
      | [] -> ()
      | cand :: rest ->
        if !runs >= budget then ()
        else begin
          incr runs;
          if violates cand then begin
            current := cand;
            progress := true
            (* First improvement: restart the scan from the smaller scenario. *)
          end
          else try_candidates rest
        end
    in
    try_candidates (candidates !current)
  done;
  !current, !runs
