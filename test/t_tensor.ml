(** Tests for the tensor substrate: Rng, Shape, Tensor, Ops. *)

open Acrobat
open T_util

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_float "same stream" (Rng.float a) (Rng.float b)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.float a) in
  let ys = List.init 10 (fun _ -> Rng.float b) in
  check_true "streams differ" (xs <> ys)

let test_rng_int_in () =
  let rng = Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng 20 40 in
    check_true "in range" (v >= 20 && v <= 40)
  done

let prop_rng_float_range =
  qtest "rng: float in [0,1)" QCheck2.Gen.int (fun seed ->
      let rng = Rng.create seed in
      let x = Rng.float rng in
      x >= 0.0 && x < 1.0)

let prop_rng_int_nonneg =
  qtest "rng: int in [0, bound)"
    QCheck2.Gen.(pair int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let test_rng_int_uniform () =
  (* Regression for the modulo-bias bug: with rejection sampling every
     residue class is equally likely, including for bounds that are not
     powers of two. 30k draws per bucket-count keeps sampling noise far
     below the 5% tolerance. *)
  let check_uniform bound =
    let rng = Rng.create 11 in
    let n = 10_000 * bound in
    let counts = Array.make bound 0 in
    for _ = 1 to n do
      let v = Rng.int rng bound in
      counts.(v) <- counts.(v) + 1
    done;
    Array.iteri
      (fun v c ->
        check_true
          (Printf.sprintf "bound %d: residue %d within 5%% of uniform" bound v)
          (abs (c - 10_000) < 500))
      counts
  in
  check_uniform 3;
  check_uniform 7;
  let rng = Rng.create 2 in
  for _ = 1 to 100 do
    check_int "bound 1 is always 0" 0 (Rng.int rng 1)
  done

let test_rng_bernoulli_rate () =
  let rng = Rng.create 5 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  check_true "bernoulli rate near 0.3" (abs (!hits - 3000) < 300)

let test_rng_normal_moments () =
  let rng = Rng.create 9 in
  let n = 20_000 in
  let xs = List.init n (fun _ -> Rng.normal rng) in
  let mean = List.fold_left ( +. ) 0.0 xs /. float_of_int n in
  let var = List.fold_left (fun a x -> a +. ((x -. mean) ** 2.0)) 0.0 xs /. float_of_int n in
  check_true "mean near 0" (Float.abs mean < 0.05);
  check_true "variance near 1" (Float.abs (var -. 1.0) < 0.05)

(* --- Shape --- *)

let test_shape_numel () =
  check_int "scalar" 1 (Shape.numel []);
  check_int "vector" 7 (Shape.numel [ 7 ]);
  check_int "matrix" 12 (Shape.numel [ 3; 4 ])

let test_shape_strides () =
  Alcotest.(check (array int)) "strides" [| 12; 4; 1 |] (Shape.strides [ 2; 3; 4 ])

let test_shape_matmul () =
  Alcotest.(check (list int)) "matmul" [ 2; 5 ] (Shape.matmul [ 2; 3 ] [ 3; 5 ]);
  Alcotest.check_raises "mismatch" (Shape.Mismatch "matmul: incompatible shapes (2, 3) x (4, 5)")
    (fun () -> ignore (Shape.matmul [ 2; 3 ] [ 4; 5 ]))

let test_shape_broadcast () =
  Alcotest.(check (list int)) "same" [ 2; 3 ] (Shape.broadcast [ 2; 3 ] [ 2; 3 ]);
  Alcotest.(check (list int)) "row" [ 4; 3 ] (Shape.broadcast [ 4; 3 ] [ 1; 3 ]);
  Alcotest.(check (list int)) "scalar" [ 4; 3 ] (Shape.broadcast [ 4; 3 ] [ 1; 1 ]);
  Alcotest.(check (list int)) "rank-extend" [ 4; 3 ] (Shape.broadcast [ 4; 3 ] [ 3 ])

let prop_broadcast_commutative =
  qtest "shape: broadcast commutative" QCheck2.Gen.(pair gen_shape gen_shape) (fun (a, b) ->
      match Shape.broadcast a b with
      | ab -> Shape.equal ab (Shape.broadcast b a)
      | exception Shape.Mismatch _ -> (
        match Shape.broadcast b a with
        | _ -> false
        | exception Shape.Mismatch _ -> true))

let prop_broadcast_idempotent =
  qtest "shape: x broadcast x = x" gen_shape (fun s -> Shape.equal s (Shape.broadcast s s))

let test_shape_concat () =
  Alcotest.(check (list int)) "concat" [ 2; 7 ] (Shape.concat ~axis:1 [ [ 2; 3 ]; [ 2; 4 ] ])

(* --- Tensor --- *)

let test_tensor_create_mismatch () =
  Alcotest.check_raises "bad size" (Shape.Mismatch "create: shape (2, 2) does not match 3 elements")
    (fun () -> ignore (Tensor.create [ 2; 2 ] [| 1.0; 2.0; 3.0 |]))

let test_tensor_full_and_item () =
  let t = Tensor.full [ 1; 1 ] 5.0 in
  check_float "item" 5.0 (Tensor.item t);
  Alcotest.check_raises "item of non-scalar"
    (Shape.Mismatch "item: tensor (2, 2) is not a scalar") (fun () ->
      ignore (Tensor.item (Tensor.zeros [ 2; 2 ])))

let test_tensor_reshape () =
  let t = Tensor.init [ 2; 3 ] float_of_int in
  let r = Tensor.reshape t [ 3; 2 ] in
  check_float "data preserved" (Tensor.get t 4) (Tensor.get r 4)

let test_tensor_argmax () =
  let t = Tensor.of_array [ 5 ] [| 1.0; 9.0; 3.0; 9.0; 2.0 |] in
  check_int "first max wins" 1 (Tensor.argmax t)

let prop_tensor_sum_linear =
  qtest "tensor: sum(a+b) = sum a + sum b"
    QCheck2.Gen.(pair int int)
    (fun (s1, s2) ->
      let a = Tensor.random (Rng.create s1) [ 3; 4 ] in
      let b = Tensor.random (Rng.create s2) [ 3; 4 ] in
      Float.abs (Tensor.sum (Ops.add a b) -. (Tensor.sum a +. Tensor.sum b)) < 1e-9)

(* --- Ops --- *)

let test_matmul_identity () =
  let rng = Rng.create 3 in
  let a = Tensor.random rng [ 4; 4 ] in
  let id = Tensor.init [ 4; 4 ] (fun i -> if i mod 5 = 0 then 1.0 else 0.0) in
  check_tensor "a @ I = a" a (Ops.matmul a id);
  check_tensor "I @ a = a" a (Ops.matmul id a)

let test_matmul_known () =
  let a = Tensor.of_array [ 2; 2 ] [| 1.0; 2.0; 3.0; 4.0 |] in
  let b = Tensor.of_array [ 2; 2 ] [| 5.0; 6.0; 7.0; 8.0 |] in
  check_tensor "2x2" (Tensor.of_array [ 2; 2 ] [| 19.0; 22.0; 43.0; 50.0 |]) (Ops.matmul a b)

let prop_matmul_distributes =
  qtest ~count:50 "ops: (a+b)@c = a@c + b@c" QCheck2.Gen.(triple int int int)
    (fun (s1, s2, s3) ->
      let a = Tensor.random (Rng.create s1) [ 3; 4 ] in
      let b = Tensor.random (Rng.create s2) [ 3; 4 ] in
      let c = Tensor.random (Rng.create s3) [ 4; 2 ] in
      Tensor.approx_equal ~eps:1e-9
        (Ops.matmul (Ops.add a b) c)
        (Ops.add (Ops.matmul a c) (Ops.matmul b c)))

let test_transpose_involution () =
  let t = Tensor.random (Rng.create 4) [ 3; 5 ] in
  check_tensor "transpose^2 = id" t (Ops.transpose (Ops.transpose t))

let prop_transpose_matmul =
  qtest ~count:50 "ops: (a@b)^T = b^T @ a^T" QCheck2.Gen.(pair int int) (fun (s1, s2) ->
      let a = Tensor.random (Rng.create s1) [ 2; 3 ] in
      let b = Tensor.random (Rng.create s2) [ 3; 4 ] in
      Tensor.approx_equal ~eps:1e-9
        (Ops.transpose (Ops.matmul a b))
        (Ops.matmul (Ops.transpose b) (Ops.transpose a)))

let test_softmax_rows_sum_to_one () =
  let t = Tensor.random (Rng.create 8) [ 4; 7 ] in
  let s = Ops.softmax t in
  for r = 0 to 3 do
    let row = Ops.slice (Tensor.reshape s [ 4; 7 ]) ~lo:0 ~hi:7 in
    ignore row;
    let sum = ref 0.0 in
    for j = 0 to 6 do
      sum := !sum +. Tensor.get s ((r * 7) + j)
    done;
    check_float ~eps:1e-9 "row sums to 1" 1.0 !sum
  done

let prop_softmax_shift_invariant =
  qtest ~count:50 "ops: softmax(x+c) = softmax(x)" QCheck2.Gen.(pair int (float_range (-5.0) 5.0))
    (fun (s, c) ->
      let x = Tensor.random (Rng.create s) [ 1; 6 ] in
      let shifted = Tensor.map (fun v -> v +. c) x in
      Tensor.approx_equal ~eps:1e-9 (Ops.softmax x) (Ops.softmax shifted))

let test_sigmoid_range_and_symmetry () =
  let x = Tensor.random (Rng.create 2) [ 1; 32 ] in
  let s = Ops.sigmoid x in
  Array.iter (fun v -> check_true "in (0,1)" (v > 0.0 && v < 1.0)) (Tensor.data s);
  let neg = Ops.sigmoid (Ops.neg x) in
  let sum = Ops.add s neg in
  check_tensor "sigmoid(x)+sigmoid(-x)=1" (Tensor.ones [ 1; 32 ]) sum

let test_relu () =
  let x = Tensor.of_array [ 1; 4 ] [| -1.0; 0.0; 2.0; -3.0 |] in
  check_tensor "relu" (Tensor.of_array [ 1; 4 ] [| 0.0; 0.0; 2.0; 0.0 |]) (Ops.relu x)

let test_concat_slice_inverse () =
  let a = Tensor.random (Rng.create 1) [ 2; 3 ] in
  let b = Tensor.random (Rng.create 2) [ 2; 4 ] in
  let c = Ops.concat [ a; b ] in
  check_tensor "slice left" a (Ops.slice c ~lo:0 ~hi:3);
  check_tensor "slice right" b (Ops.slice c ~lo:3 ~hi:7)

let test_broadcast_add_row () =
  let x = Tensor.init [ 2; 3 ] float_of_int in
  let row = Tensor.of_array [ 1; 3 ] [| 10.0; 20.0; 30.0 |] in
  check_tensor "row broadcast"
    (Tensor.of_array [ 2; 3 ] [| 10.0; 21.0; 32.0; 13.0; 24.0; 35.0 |])
    (Ops.add x row)

let test_broadcast_mul_scalar_gate () =
  let x = Tensor.of_array [ 1; 3 ] [| 2.0; 4.0; 6.0 |] in
  let gate = Tensor.of_array [ 1; 1 ] [| 0.5 |] in
  check_tensor "gate" (Tensor.of_array [ 1; 3 ] [| 1.0; 2.0; 3.0 |]) (Ops.mul x gate)

let test_layernorm_normalizes () =
  let x = Tensor.random (Rng.create 11) [ 2; 16 ] in
  let g = Tensor.ones [ 1; 16 ] and b = Tensor.zeros [ 1; 16 ] in
  let y = Ops.layernorm x g b in
  for r = 0 to 1 do
    let mean = ref 0.0 in
    for j = 0 to 15 do
      mean := !mean +. Tensor.get y ((r * 16) + j)
    done;
    check_float ~eps:1e-6 "row mean 0" 0.0 (!mean /. 16.0)
  done

let test_entropy_uniform_max () =
  let uniform = Tensor.full [ 1; 8 ] 0.125 in
  check_float ~eps:1e-9 "uniform entropy = ln 8" (log 8.0) (Tensor.item (Ops.entropy uniform));
  let onehot = Tensor.of_array [ 1; 4 ] [| 1.0; 0.0; 0.0; 0.0 |] in
  check_float ~eps:1e-9 "one-hot entropy = 0" 0.0 (Tensor.item (Ops.entropy onehot))

let test_argmax_rows () =
  let x = Tensor.of_array [ 2; 3 ] [| 1.0; 5.0; 2.0; 9.0; 0.0; 3.0 |] in
  check_tensor "per-row argmax" (Tensor.of_array [ 2 ] [| 1.0; 0.0 |]) (Ops.argmax x)

let test_gelu_known () =
  check_float ~eps:1e-3 "gelu(0)=0" 0.0 (Tensor.item (Ops.gelu (Tensor.scalar 0.0)));
  check_float ~eps:1e-2 "gelu(2)~1.95" 1.95 (Tensor.item (Ops.gelu (Tensor.scalar 2.0)))

let suite =
  [
    Alcotest.test_case "rng: deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng: split independent" `Quick test_rng_split_independent;
    Alcotest.test_case "rng: int_in range" `Quick test_rng_int_in;
    Alcotest.test_case "rng: int uniform (no modulo bias)" `Quick test_rng_int_uniform;
    prop_rng_float_range;
    prop_rng_int_nonneg;
    Alcotest.test_case "rng: bernoulli rate" `Quick test_rng_bernoulli_rate;
    Alcotest.test_case "rng: normal moments" `Slow test_rng_normal_moments;
    Alcotest.test_case "shape: numel" `Quick test_shape_numel;
    Alcotest.test_case "shape: strides" `Quick test_shape_strides;
    Alcotest.test_case "shape: matmul" `Quick test_shape_matmul;
    Alcotest.test_case "shape: broadcast" `Quick test_shape_broadcast;
    prop_broadcast_commutative;
    prop_broadcast_idempotent;
    Alcotest.test_case "shape: concat" `Quick test_shape_concat;
    Alcotest.test_case "tensor: create mismatch" `Quick test_tensor_create_mismatch;
    Alcotest.test_case "tensor: full/item" `Quick test_tensor_full_and_item;
    Alcotest.test_case "tensor: reshape" `Quick test_tensor_reshape;
    Alcotest.test_case "tensor: argmax ties" `Quick test_tensor_argmax;
    prop_tensor_sum_linear;
    Alcotest.test_case "ops: matmul identity" `Quick test_matmul_identity;
    Alcotest.test_case "ops: matmul known" `Quick test_matmul_known;
    prop_matmul_distributes;
    Alcotest.test_case "ops: transpose involution" `Quick test_transpose_involution;
    prop_transpose_matmul;
    Alcotest.test_case "ops: softmax rows" `Quick test_softmax_rows_sum_to_one;
    prop_softmax_shift_invariant;
    Alcotest.test_case "ops: sigmoid" `Quick test_sigmoid_range_and_symmetry;
    Alcotest.test_case "ops: relu" `Quick test_relu;
    Alcotest.test_case "ops: concat/slice" `Quick test_concat_slice_inverse;
    Alcotest.test_case "ops: broadcast add" `Quick test_broadcast_add_row;
    Alcotest.test_case "ops: broadcast mul gate" `Quick test_broadcast_mul_scalar_gate;
    Alcotest.test_case "ops: layernorm" `Quick test_layernorm_normalizes;
    Alcotest.test_case "ops: entropy" `Quick test_entropy_uniform_max;
    Alcotest.test_case "ops: argmax rows" `Quick test_argmax_rows;
    Alcotest.test_case "ops: gelu" `Quick test_gelu_known;
  ]
