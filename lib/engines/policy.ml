(** Engine policies: the knobs that distinguish frameworks sharing the same
    runtime substrate — how nodes are signed for batching (where DyNet's
    brittle heuristics live, §E.4), whether instance parallelism may fork
    fibers, whether execution is eager, and whether host<->device transfers
    are batched. *)

open Acrobat_ir
open Acrobat_runtime
open Acrobat_compiler

type t = {
  sig_of : Kernel.t -> Value.handle array -> string;
  allow_fork : bool;  (** Fork fibers at [concurrent]/[map] (§4.2). *)
  eager : bool;  (** Flush after every node (no batching: PyTorch). *)
  batched_io : bool;  (** Batch host<->device transfers (§D.3). *)
  detect_dynamic_sharing : bool;
      (** Check argument pointer identity at batch time to avoid gathers
          (a dynamic-framework behaviour: DyNet). ACROBAT's generated
          kernels bake the gather/shared decision in statically, so they
          get no such runtime check — this is what makes code duplication
          (§C.1) matter. *)
}

let shapes_of args = Array.map Value.handle_shape args

(** ACROBAT: kernel identity + shapes. All reuse knowledge is static. *)
let acrobat_policy =
  {
    sig_of = (fun kernel args -> Runtime.acrobat_sig kernel (shapes_of args));
    allow_fork = true;
    eager = false;
    batched_io = true;
    detect_dynamic_sharing = false;
  }

(* A stable identity for a tensor argument: device address when
   materialized, node/slot otherwise. This is the "same first argument"
   pointer check of DyNet's matmul heuristic. *)
let arg_identity (h : Value.handle) =
  match h with
  | Value.Hmat o -> Fmt.str "a%d" o.addr
  | Value.Hnode (n, i) -> begin
    match n.outs with
    | Some outs -> Fmt.str "a%d" outs.(i).addr
    | None -> Fmt.str "n%d.%d" n.id i
  end

(* How DyNet's vendor-library batching treats a (composite) kernel given
   concrete argument shapes. *)
type dynet_class =
  | Dplain  (** Batches by (kernel, shapes). *)
  | Dmatmul_key of int
      (** Batches only when runtime argument [j] (the weight operand of the
          kernel's matrix multiplication) is the same tensor. *)
  | Dunbatchable  (** No batched vendor kernel: executes one-by-one. *)

let classify_for_dynet ~improved_matmul (kernel : Kernel.t)
    (arg_shapes : Acrobat_tensor.Shape.t array) : dynet_class =
  let instrs = List.concat_map (fun (g : Kernel.group) -> g.instrs) kernel.groups in
  let tmp_shapes = Kernel.tmp_shapes kernel arg_shapes in
  let shape_of = function Kernel.Arg i -> arg_shapes.(i) | Kernel.Tmp j -> tmp_shapes.(j) in
  let is_broadcast_mul (i : Kernel.instr) =
    match i.op, i.srcs with
    | Op.Mul, [ a; b ] -> not (Acrobat_tensor.Shape.equal (shape_of a) (shape_of b))
    | _ -> false
  in
  if
    List.exists
      (fun (i : Kernel.instr) ->
        match i.op with Op.Argmax | Op.Constant _ -> true | _ -> is_broadcast_mul i)
      instrs
  then Dunbatchable
  else begin
    match List.find_opt (fun (i : Kernel.instr) -> i.op = Op.Matmul) instrs with
    | None -> Dplain
    | Some { srcs = [ _; weight_src ]; _ } when improved_matmul ->
      (* The DN++ fix (§E.4) batches matmuls by shape and gathers the
         differing operands; that is only sane when the gathered operand is
         small (MV-RNN's activation matrices), not a large weight. *)
      if Acrobat_tensor.Shape.numel (shape_of weight_src) <= 50_000 then Dplain
      else begin
        match weight_src with
        | Kernel.Arg j -> Dmatmul_key j
        | Kernel.Tmp _ -> Dunbatchable
      end
    | Some { srcs = [ _; Kernel.Arg j ]; _ } -> Dmatmul_key j
    | Some _ ->
      (* The weight operand is itself an intermediate: no stable tensor to
         key batching on, so the heuristic never batches it. *)
      Dunbatchable
  end

(** DyNet's dynamic batching signature (§E.4):
    - matrix multiplication batches only when the weight-position argument
      is the same tensor (unless [improved_matmul]). DyNet writes [W * x]
      and keys on the first argument; our input language writes [x @ W], so
      the equivalent heuristic keys on the second. It "usually works" —
      that operand is usually a model parameter — and fails exactly when a
      model multiplies two activations (MV-RNN);
    - argmax, broadcasting elementwise multiplication and constant
      construction have no batched vendor kernels: each instance gets a
      unique signature and executes alone. *)
let dynet_sig ?(improved_matmul = false) () =
  let unique = ref 0 in
  let classes : (string, dynet_class) Hashtbl.t = Hashtbl.create 64 in
  fun (kernel : Kernel.t) (args : Value.handle array) ->
    let shapes = shapes_of args in
    let base = Runtime.acrobat_sig kernel shapes in
    let cls =
      match Hashtbl.find_opt classes base with
      | Some c -> c
      | None ->
        let c = classify_for_dynet ~improved_matmul kernel shapes in
        Hashtbl.replace classes base c;
        c
    in
    match cls with
    | Dplain -> base
    | Dmatmul_key j -> Fmt.str "%s|wt=%s" base (arg_identity args.(j))
    | Dunbatchable ->
      incr unique;
      Fmt.str "%s|u%d" base !unique

(** DyNet baseline. [improved] applies the paper's §E.4 fixes (DN++):
    a relaxed matmul heuristic, and manually exposed instance
    parallelism. *)
let dynet_policy ?(improved = false) () =
  {
    sig_of = dynet_sig ~improved_matmul:improved ();
    allow_fork = improved;
    eager = false;
    batched_io = false;
    detect_dynamic_sharing = true;
  }

(** PyTorch-like eager execution: one kernel per op, no batching at all. *)
let pytorch_policy =
  {
    sig_of = (fun kernel args -> Runtime.acrobat_sig kernel (shapes_of args));
    allow_fork = false;
    eager = true;
    batched_io = false;
    detect_dynamic_sharing = true;
  }
