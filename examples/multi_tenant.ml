(** Multi-tenant many-model serving: one cluster, the whole catalog.

    Three tenants share a single autoscaled fleet, each naming its own
    catalog model, traffic process, SLO, quota and fair-share weight:

    - {b alpha} serves TreeLSTM at a steady 800 req/s with double weight;
    - {b crowd} serves BiRNN under an MMPP flash-crowd process that swings
      between 300 and 2400 req/s;
    - {b gamma} serves MoE at a light 400 req/s with a tight quota of one
      in-flight request, so its own bursts shed at admission instead of
      eating the others' capacity.

    Batches only form within a model; when a replica's resident model
    changes, the dispatcher bills the swap (sized from the model's real
    parameter bytes) to the tenant that forced it. The autoscaler watches
    per-tenant queue delay and grows the fleet into the flash crowd, then
    drains and retires replicas when it passes. Replica 0 additionally
    carries a mild fault plan to show the per-replica retry machinery
    composing with tenancy.

    Run with: [dune exec examples/multi_tenant.exe] *)

open Acrobat
module Tenant = Tenancy.Tenant
module Dispatcher = Tenancy.Dispatcher

let seed = 11

let tenant index name model rate bursty slo_ms quota weight requests : Tenant.t =
  {
    Tenant.tn_name = name;
    tn_model = model;
    tn_rate_per_s = rate;
    tn_bursty = bursty;
    tn_seed = Tenant.derived_seed ~seed ~index;
    tn_slo_ms = slo_ms;
    tn_quota = quota;
    tn_weight = weight;
    tn_requests = requests;
  }

let tenants =
  [|
    tenant 0 "alpha" "treelstm" 800.0 false 50.0 64 2.0 300;
    tenant 1 "crowd" "birnn" 1200.0 true 50.0 64 1.0 400;
    tenant 2 "gamma" "moe" 400.0 false 80.0 1 1.0 150;
  |]

let pp_tenants (r : Dispatcher.report) =
  List.iter
    (fun (tv : Dispatcher.tenant_view) ->
      let s = Serve.Stats.summarize tv.Dispatcher.tv_stats in
      Fmt.pr "  %-6s (%s): goodput %.3f, slo %.1f%%, quota shed %d, peak inflight %d@."
        tv.Dispatcher.tv_tenant.Tenant.tn_name tv.Dispatcher.tv_tenant.Tenant.tn_model
        (Serve.Stats.goodput s)
        (100.0 *. Serve.Stats.slo_attainment s)
        s.Serve.Stats.s_quota_shed tv.Dispatcher.tv_peak_inflight)
    r.Dispatcher.tn_tenants

let () =
  Fmt.pr "Multi-tenant serving: %d tenants, autoscale 1..3, replica 0 faulty@.@."
    (Array.length tenants);
  Array.iter (fun t -> Fmt.pr "  %a@." Tenant.pp t) tenants;
  Fmt.pr "@.";
  let report =
    serve_tenants ~iters:50 ~min_replicas:1 ~max_replicas:3
      ~fault_plans:[ Faults.parse "seed=7,kernel=0.1" ]
      ~models:Models.tiny ~tenants ~seed ()
  in
  let s = Serve.Stats.summarize report.Dispatcher.tn_stats in
  Fmt.pr "--- aggregate ---@.%a@.@." Serve.Stats.pp_summary s;
  Fmt.pr "--- per tenant ---@.";
  pp_tenants report;
  Fmt.pr "@.--- fleet ---@.";
  Fmt.pr "  peak %d replicas, final %d, %d model swaps, utilization %.1f%%@."
    report.Dispatcher.tn_peak_replicas report.Dispatcher.tn_final_replicas
    report.Dispatcher.tn_swaps
    (100.0 *. Dispatcher.utilization report);
  List.iter
    (fun (ts, ev, n) -> Fmt.pr "  %8.1fms %-10s -> %d replicas@." (ts /. 1000.0) ev n)
    report.Dispatcher.tn_scale_events
