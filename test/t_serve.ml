(** Tests for the serving layer: event loop determinism, traffic
    generation, admission control, batching policies, and the end-to-end
    server simulation (including the adaptive-beats-batch1 criterion on a
    real compiled model). *)

open Acrobat
open T_util
module Server = Serve.Server
module Batcher = Serve.Batcher
module Admission = Serve.Admission
module Traffic = Serve.Traffic
module Stats = Serve.Stats
module Event_loop = Serve.Event_loop
module Clock = Serve.Clock
module Json = Serve.Json
module Cluster = Serve.Cluster
module Replica = Serve.Replica

(* --- Event loop --- *)

let test_event_loop_order () =
  let loop = Event_loop.create (Clock.create ()) in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  (* Same-time events must dispatch in scheduling order; earlier times
     first regardless of scheduling order. *)
  Event_loop.schedule loop ~at:10.0 (note "b1");
  Event_loop.schedule loop ~at:10.0 (note "b2");
  Event_loop.schedule loop ~at:5.0 (note "a");
  Event_loop.schedule loop ~at:20.0 (fun () ->
      note "c" ();
      (* An event scheduled in the past clamps to now, not to the past. *)
      Event_loop.schedule loop ~at:1.0 (note "d"));
  Event_loop.run loop;
  Alcotest.(check (list string)) "dispatch order" [ "a"; "b1"; "b2"; "c"; "d" ]
    (List.rev !log);
  check_float "clock ends at last event" 20.0 (Event_loop.now loop);
  (* The past-time schedule above ("d" at t=1 while now=20) must be counted,
     not silently clamped. *)
  check_int "clamped schedule counted" 1 (Event_loop.clamped_count loop)

(* --- Traffic --- *)

let test_traffic_poisson () =
  let n = 2000 in
  let draw seed = Traffic.arrivals ~rng:(Rng.create seed) (Traffic.Poisson { rate_per_s = 1000.0 }) ~n in
  let a = draw 42 in
  check_true "monotone"
    (Array.for_all (fun x -> x >= 0.0) a
    && Array.for_all
         (fun i -> a.(i) <= a.(i + 1))
         (Array.init (n - 1) (fun i -> i)));
  (* Mean inter-arrival should be near 1e6/rate = 1000us. *)
  let mean = a.(n - 1) /. float_of_int n in
  check_true "mean interarrival within 15%" (mean > 850.0 && mean < 1150.0);
  check_true "deterministic" (draw 42 = a);
  check_true "seed-sensitive" (draw 43 <> a)

let test_traffic_burst_and_bursty () =
  let rng = Rng.create 7 in
  let b = Traffic.arrivals ~rng (Traffic.Burst { at_us = 3.0 }) ~n:5 in
  check_true "burst: all at once" (Array.for_all (fun x -> x = 3.0) b);
  let m =
    Traffic.arrivals ~rng:(Rng.create 7)
      (Traffic.Bursty { rate_low_per_s = 100.0; rate_high_per_s = 10_000.0; mean_dwell_us = 5_000.0 })
      ~n:500
  in
  check_true "bursty: monotone"
    (Array.for_all (fun i -> m.(i) <= m.(i + 1)) (Array.init 499 (fun i -> i)))

(* --- Admission --- *)

let rq ?deadline id at =
  { Admission.rq_id = id; rq_payload = id; rq_arrival_us = at; rq_deadline_us = deadline }

let test_admission_shed () =
  let q = Admission.create ~capacity:2 () in
  check_true "admit 1" (Admission.offer q ~now_us:0.0 (rq 0 0.0));
  check_true "admit 2" (Admission.offer q ~now_us:1.0 (rq 1 1.0));
  check_true "shed at capacity" (not (Admission.offer q ~now_us:2.0 (rq 2 2.0)));
  check_int "shed counted" 1 (Admission.shed_count q);
  check_float "oldest" 0.0 (Option.get (Admission.oldest_arrival_us q));
  let batch = Admission.take q ~now_us:5.0 ~limit:10 in
  Alcotest.(check (list int)) "FIFO ids" [ 0; 1 ]
    (List.map (fun r -> r.Admission.rq_id) batch)

let test_admission_deadline () =
  let q = Admission.create ~capacity:8 () in
  ignore (Admission.offer q ~now_us:0.0 (rq ~deadline:100.0 0 0.0));
  ignore (Admission.offer q ~now_us:0.0 (rq ~deadline:9_999.0 1 0.0));
  let batch = Admission.take q ~now_us:500.0 ~limit:10 in
  Alcotest.(check (list int)) "expired dropped" [ 1 ]
    (List.map (fun r -> r.Admission.rq_id) batch);
  check_int "expired counted" 1 (Admission.expired_count q)

let test_admission_sweep_on_offer () =
  let q = Admission.create ~capacity:2 () in
  ignore (Admission.offer q ~now_us:0.0 (rq ~deadline:10.0 0 0.0));
  ignore (Admission.offer q ~now_us:0.0 (rq ~deadline:10.0 1 0.0));
  (* The queue is full, but both residents are already past their deadline
     at t=50: offer must sweep them and admit rather than shed. *)
  check_true "admitted after sweep" (Admission.offer q ~now_us:50.0 (rq 2 50.0));
  check_int "expired counted at offer time" 2 (Admission.expired_count q);
  check_int "nothing shed" 0 (Admission.shed_count q);
  check_int "only the live request queued" 1 (Admission.length q);
  (* A full queue of live requests still sheds. *)
  ignore (Admission.offer q ~now_us:51.0 (rq 3 51.0));
  check_true "live-full queue sheds" (not (Admission.offer q ~now_us:52.0 (rq 4 52.0)));
  check_int "shed counted" 1 (Admission.shed_count q)

(* --- Batcher --- *)

let test_batcher_fixed_decide () =
  let b = Batcher.create (Batcher.Fixed { max_batch = 4; max_wait_us = 500.0 }) in
  (match Batcher.decide b ~now_us:0.0 ~queue_len:4 ~oldest_arrival_us:0.0 with
  | Batcher.Flush n -> check_int "full batch flushes" 4 n
  | Batcher.Wait_until _ -> Alcotest.fail "expected flush at max_batch");
  (match Batcher.decide b ~now_us:600.0 ~queue_len:2 ~oldest_arrival_us:0.0 with
  | Batcher.Flush n -> check_int "timeout flushes partial" 2 n
  | Batcher.Wait_until _ -> Alcotest.fail "expected timeout flush");
  match Batcher.decide b ~now_us:100.0 ~queue_len:2 ~oldest_arrival_us:0.0 with
  | Batcher.Wait_until at -> check_float "waits until oldest+max_wait" 500.0 at
  | Batcher.Flush _ -> Alcotest.fail "expected wait"

(* Regression for an infinite event loop: when the timeout wake fires at
   exactly [oldest + max_wait], the decision must be a flush — never another
   wait at a time that is not in the future. [(oldest +. w) -. oldest] can
   round below [w], so the check must compare against the same float
   expression the wake was scheduled at. *)
let test_batcher_timeout_wake_flushes () =
  List.iter
    (fun policy ->
      let w = 1500.0 in
      for i = 1 to 500 do
        let oldest = float_of_int i *. 1234.567 /. 3.0 in
        let b = Batcher.create policy in
        match Batcher.decide b ~now_us:(oldest +. w) ~queue_len:1 ~oldest_arrival_us:oldest with
        | Batcher.Flush _ -> ()
        | Batcher.Wait_until at ->
          if at <= oldest +. w then
            Alcotest.failf "wake at oldest+max_wait re-waited for the past (oldest=%.17g)"
              oldest
      done)
    [
      Batcher.Fixed { max_batch = 4; max_wait_us = 1500.0 };
      Batcher.Adaptive { max_batch = 4; max_wait_us = 1500.0 };
    ]

let test_batcher_adaptive_target () =
  let b = Batcher.create (Batcher.Adaptive { max_batch = 16; max_wait_us = 2000.0 }) in
  check_int "no arrivals: target 1" 1 (Batcher.target_batch b ~max_batch:16);
  (* One arrival every 10us, batches costing ~100us fixed + 10us/item:
     the fixed point of k = rate * latency(k) is well above 1. *)
  for i = 0 to 50 do
    Batcher.observe_arrival b ~now_us:(float_of_int i *. 10.0)
  done;
  for _ = 1 to 20 do
    Batcher.observe_batch b ~size:8 ~latency_us:180.0;
    Batcher.observe_batch b ~size:2 ~latency_us:120.0
  done;
  let t = Batcher.target_batch b ~max_batch:16 in
  check_true "fast arrivals push target up" (t >= 8);
  check_int "clamped by max_batch" 4 (Batcher.target_batch b ~max_batch:4)

(* --- Server simulation with synthetic executors --- *)

let linear_cost ~fixed ~per_item batch =
  {
    Server.ex_latency_us = fixed +. (per_item *. float_of_int (List.length batch));
    ex_profiler = None;
    ex_fingerprints = None;
    ex_corrupted = false;
  }

let simulate ?(config = Server.default_config) ~arrivals () =
  Server.simulate config ~arrivals
    ~payload:(fun i -> i)
    ~execute:(Server.infallible (linear_cost ~fixed:100.0 ~per_item:10.0))

let test_timeout_partial_batch () =
  let config =
    { Server.default_config with
      Server.policy = Batcher.Fixed { max_batch = 4; max_wait_us = 500.0 } }
  in
  let s = Stats.summarize (simulate ~config ~arrivals:[| 0.0; 100.0 |] ()) in
  check_int "both complete" 2 s.Stats.s_completed;
  check_int "one partial batch" 1 s.Stats.s_batches;
  check_float "partial batch holds both" 2.0 s.Stats.s_mean_batch;
  (* The batch launched at the oldest request's timeout, not earlier. *)
  check_float ~eps:1e-6 "launch at oldest+max_wait" 0.45 s.Stats.s_mean_queue_ms

let test_queue_full_shedding () =
  let config =
    { Server.default_config with
      Server.policy = Batcher.Batch1; Server.queue_capacity = 2 }
  in
  let arrivals = Traffic.arrivals ~rng:(Rng.create 1) (Traffic.Burst { at_us = 0.0 }) ~n:10 in
  let s = Stats.summarize (simulate ~config ~arrivals ()) in
  check_int "only the queue survives" 2 s.Stats.s_completed;
  check_int "rest shed at the door" 8 s.Stats.s_shed;
  check_int "offered counts shed" 10 s.Stats.s_offered;
  check_true "drop rate reflects shed" (Stats.drop_rate s = 0.8)

let test_deadline_drop () =
  let config =
    { Server.default_config with
      Server.policy = Batcher.Batch1; Server.deadline_us = Some 100.0 }
  in
  let arrivals = [| 0.0; 0.0; 0.0 |] in
  let s = Stats.summarize (simulate ~config ~arrivals ()) in
  (* First request launches immediately; the other two wait out its 110us
     service time and expire at their 100us deadline. *)
  check_int "first completes" 1 s.Stats.s_completed;
  check_int "queued ones expire" 2 s.Stats.s_expired;
  check_int "no shedding" 0 s.Stats.s_shed

let test_burst_batching_invariant () =
  let max_batch = 8 in
  let n = 40 in
  let config =
    { Server.default_config with
      Server.policy = Batcher.Adaptive { max_batch; max_wait_us = 1000.0 } }
  in
  let arrivals = Traffic.arrivals ~rng:(Rng.create 1) (Traffic.Burst { at_us = 0.0 }) ~n in
  let s = Stats.summarize (simulate ~config ~arrivals ()) in
  check_int "all complete" n s.Stats.s_completed;
  (* Simultaneous arrivals must coalesce: no more flushes than full batches
     can cover. *)
  check_true "<= ceil(n/max_batch) batches"
    (s.Stats.s_batches <= (n + max_batch - 1) / max_batch)

let test_simulation_deterministic () =
  let run () =
    let arrivals =
      Traffic.arrivals ~rng:(Rng.create 9) (Traffic.Poisson { rate_per_s = 5000.0 }) ~n:200
    in
    Json.to_string (Stats.summary_to_json (Stats.summarize (simulate ~arrivals ())))
  in
  Alcotest.(check string) "same seed, same summary JSON" (run ()) (run ())

(* --- Fault tolerance: retry, bisection, breaker, degradation --- *)

let fault ?(latency = 50.0) ?(transient = true) ?(oom = false) ?(reset = false) reason =
  Server.Exec_fault
    {
      ef_latency_us = latency;
      ef_reason = reason;
      ef_transient = transient;
      ef_oom = oom;
      ef_reset = reset;
    }

let ok batch = Server.Exec_ok (linear_cost ~fixed:100.0 ~per_item:10.0 batch)

let test_ft_retry_transient () =
  (* Every batch's first attempt fails transiently; its retry succeeds. *)
  let run () =
    let seen = Hashtbl.create 16 in
    let execute ~degraded:_ batch =
      if Hashtbl.mem seen batch then ok batch
      else begin
        Hashtbl.add seen batch ();
        fault "flake"
      end
    in
    let arrivals =
      Traffic.arrivals ~rng:(Rng.create 4) (Traffic.Poisson { rate_per_s = 3000.0 }) ~n:40
    in
    Stats.summarize
      (Server.simulate Server.default_config ~arrivals ~payload:(fun i -> i) ~execute)
  in
  let s = run () in
  check_int "all complete despite faults" 40 s.Stats.s_completed;
  check_true "faults recorded" (s.Stats.s_fault_batches > 0);
  check_int "every fault was retried" s.Stats.s_fault_batches s.Stats.s_retries;
  check_int "nothing dropped" 0 s.Stats.s_poisoned;
  check_int "breaker never opened" 0 s.Stats.s_breaker_opens;
  check_true "goodput is 1" (Stats.goodput s = 1.0);
  (* Satellite: same seed + same fault behaviour => byte-identical stats. *)
  let json s = Json.to_string (Stats.summary_to_json s) in
  Alcotest.(check string) "byte-identical stats across runs" (json s) (json (run ()))

let test_ft_bisection_isolates_poison () =
  let executed = ref [] in
  let execute ~degraded:_ batch =
    if List.mem 5 batch then fault ~transient:false "poison"
    else begin
      executed := batch :: !executed;
      ok batch
    end
  in
  let config =
    { Server.default_config with
      Server.policy = Batcher.Fixed { max_batch = 16; max_wait_us = 500.0 } }
  in
  let arrivals = Traffic.arrivals ~rng:(Rng.create 1) (Traffic.Burst { at_us = 0.0 }) ~n:16 in
  let s =
    Stats.summarize (Server.simulate config ~arrivals ~payload:(fun i -> i) ~execute)
  in
  check_int "15 of 16 complete" 15 s.Stats.s_completed;
  check_int "exactly one request dropped" 1 s.Stats.s_poisoned;
  check_true "bisection ran" (s.Stats.s_bisections > 0);
  let completed_ids = List.sort compare (List.concat !executed) in
  Alcotest.(check (list int)) "exactly the poison id is missing"
    (List.filter (fun i -> i <> 5) (List.init 16 Fun.id))
    completed_ids

let test_ft_circuit_breaker () =
  (* The device is down for the first 7 attempts, then recovers: the breaker
     must open after the failure threshold, shed arrivals while open, and
     close via the half-open probe once the device answers again. *)
  let attempts = ref 0 in
  let execute ~degraded:_ batch =
    incr attempts;
    if !attempts <= 7 then fault "device down" else ok batch
  in
  let config = { Server.default_config with Server.policy = Batcher.Batch1 } in
  let arrivals = Array.init 30 (fun i -> float_of_int i *. 2_000.0) in
  let s =
    Stats.summarize (Server.simulate config ~arrivals ~payload:(fun i -> i) ~execute)
  in
  check_true "breaker opened" (s.Stats.s_breaker_opens >= 1);
  check_true "arrivals shed while open" (s.Stats.s_breaker_shed > 0);
  check_true "served again after the probe closed it" (s.Stats.s_completed > 0);
  check_int "every request accounted" 30
    (s.Stats.s_completed + s.Stats.s_poisoned + s.Stats.s_breaker_shed);
  check_true "goodput reflects the outage" (Stats.goodput s < 1.0)

let test_ft_oom_shrinks_batches () =
  (* Any batch wider than 2 OOMs: the cap must shrink until work fits, and
     every request must still complete — bisection re-splits the wide ones. *)
  let execute ~degraded:_ batch =
    if List.length batch > 2 then fault ~transient:false ~oom:true "oom" else ok batch
  in
  let config =
    { Server.default_config with
      Server.policy = Batcher.Fixed { max_batch = 8; max_wait_us = 500.0 } }
  in
  let arrivals = Traffic.arrivals ~rng:(Rng.create 1) (Traffic.Burst { at_us = 0.0 }) ~n:24 in
  let s =
    Stats.summarize (Server.simulate config ~arrivals ~payload:(fun i -> i) ~execute)
  in
  check_int "all complete" 24 s.Stats.s_completed;
  check_int "nothing dropped" 0 s.Stats.s_poisoned;
  check_true "ooms recorded" (s.Stats.s_fault_batches > 0);
  check_true "shrunk batches ran in degraded mode" (s.Stats.s_degraded_batches > 0)

let test_ft_pressure_degradation () =
  let degraded_calls = ref 0 in
  let execute ~degraded batch =
    if degraded then incr degraded_calls;
    ok batch
  in
  let tolerance =
    { Server.default_tolerance with
      Server.degrade_high_frac = 0.5; Server.degrade_low_frac = 0.1 }
  in
  let config =
    { Server.default_config with
      Server.policy = Batcher.Fixed { max_batch = 4; max_wait_us = 500.0 };
      Server.queue_capacity = 8;
      Server.tolerance = tolerance }
  in
  let arrivals = Traffic.arrivals ~rng:(Rng.create 2) (Traffic.Burst { at_us = 0.0 }) ~n:8 in
  let s =
    Stats.summarize (Server.simulate config ~arrivals ~payload:(fun i -> i) ~execute)
  in
  check_int "all complete" 8 s.Stats.s_completed;
  check_true "queue pressure engaged degraded mode" (s.Stats.s_degraded_batches > 0);
  check_true "executor saw the degraded flag" (!degraded_calls > 0)

(* --- Overload resilience: retry budget, limiter, brownout (DESIGN.md
   §13). Unit tests of the mechanisms, then server-level integration. --- *)

let test_budget_tokens () =
  let b = Server.Budget.create ~frac:0.5 in
  check_true "empty bucket denies the first retry" (not (Server.Budget.try_spend b 1));
  Server.Budget.deposit b;
  Server.Budget.deposit b;
  check_true "two deposits cover one request" (Server.Budget.try_spend b 1);
  check_true "the bucket drained" (not (Server.Budget.try_spend b 1));
  Server.Budget.deposit b;
  Server.Budget.deposit b;
  Server.Budget.deposit b;
  (* 1.5 tokens: a batch of 2 costs more than the bucket holds. *)
  check_true "partial cover still denies" (not (Server.Budget.try_spend b 2));
  check_float "a denied spend leaves the tokens untouched" 1.5 (Server.Budget.tokens b)

let test_limiter_aimd () =
  let l = Server.Limiter.create ~target_us:1_000.0 () in
  check_float "initial limit" 8.0 (Server.Limiter.limit l);
  check_true "admits below the limit" (Server.Limiter.admits l ~queued:7);
  check_true "refuses at the limit" (not (Server.Limiter.admits l ~queued:8));
  Server.Limiter.observe l ~delay_us:500.0;
  check_float "under target: additive increase" 9.0 (Server.Limiter.limit l);
  Server.Limiter.observe l ~delay_us:2_000.0;
  check_float ~eps:1e-9 "over target: multiplicative decrease" 6.3
    (Server.Limiter.limit l);
  check_int "decreases counted" 1 (Server.Limiter.decreases l);
  for _ = 1 to 64 do
    Server.Limiter.observe l ~delay_us:1.0e9
  done;
  check_float "backoff never goes below the floor" 1.0 (Server.Limiter.limit l);
  check_true "the floor still admits one request" (Server.Limiter.admits l ~queued:0)

let test_brownout_dwell_hysteresis () =
  let spec =
    { Server.Brownout.bo_high_us = 100.0; bo_dwell_us = 50.0; bo_low_us = 40.0 }
  in
  let b = Server.Brownout.create spec in
  let obs ~at delay = Server.Brownout.observe b ~now_us:at ~delay_us:delay in
  check_true "first high crossing only starts the dwell clock"
    (obs ~at:0.0 200.0 = Server.Brownout.Stay);
  check_true "a dip below high resets the clock" (obs ~at:30.0 50.0 = Server.Brownout.Stay);
  check_true "re-crossing restarts" (obs ~at:40.0 200.0 = Server.Brownout.Stay);
  check_true "still inside the dwell window" (obs ~at:80.0 200.0 = Server.Brownout.Stay);
  check_true "engages after a full dwell above high"
    (obs ~at:95.0 200.0 = Server.Brownout.Engage);
  check_true "controller reports engaged" (Server.Brownout.engaged b);
  (* Hysteresis: between low and high makes no restore progress. *)
  check_true "mid-band stays engaged" (obs ~at:120.0 60.0 = Server.Brownout.Stay);
  check_true "below low starts the restore clock" (obs ~at:130.0 10.0 = Server.Brownout.Stay);
  check_true "a mid-band sample resets the restore clock"
    (obs ~at:150.0 60.0 = Server.Brownout.Stay);
  check_true "restore needs its own full dwell" (obs ~at:160.0 10.0 = Server.Brownout.Stay);
  check_true "restores after a full dwell below low"
    (obs ~at:215.0 10.0 = Server.Brownout.Restore);
  check_true "controller reports restored" (not (Server.Brownout.engaged b))

(* Satellite regression: a request swept at offer time and one dropped at
   pop time are each counted as expired exactly once — never double-counted
   by the later pop, never missed. *)
let test_admission_eager_sweep_counts_once () =
  let q = Admission.create ~eager_sweep:true ~capacity:4 () in
  ignore (Admission.offer q ~now_us:0.0 (rq ~deadline:10.0 0 0.0));
  ignore (Admission.offer q ~now_us:0.0 (rq ~deadline:200.0 1 0.0));
  (* Eager sweep: the offer at t=50 purges request 0 although there is room. *)
  check_true "offer admits" (Admission.offer q ~now_us:50.0 (rq ~deadline:500.0 2 50.0));
  check_int "offer-time sweep counted" 1 (Admission.expired_count q);
  check_int "swept entry left the queue" 2 (Admission.length q);
  (* Request 1 expires at t=200; the pop at t=300 counts it exactly once. *)
  let batch, dropped = Admission.take_with_expired q ~now_us:300.0 ~limit:4 in
  check_int "pop-time drop counted once" 2 (Admission.expired_count q);
  check_int "one request dropped at pop" 1 (List.length dropped);
  Alcotest.(check (list int)) "the live request is served" [ 2 ]
    (List.map (fun r -> r.Admission.rq_id) batch);
  check_true "queue drained" (Admission.is_empty q);
  check_int "no double count after drain" 2 (Admission.expired_count q)

let test_retry_budget_sheds () =
  (* Every attempt faults transiently. Legacy: retry twice, then bisect
     down to per-request poison. Armed with a zero-fraction budget: the
     very first retry is denied and the whole batch becomes a counted
     shed — no re-offered load, no bisection. *)
  let always_fault ~degraded:_ _batch = fault "storm" in
  let config budget =
    {
      Server.default_config with
      Server.policy = Batcher.Fixed { max_batch = 4; max_wait_us = 500.0 };
      resilience = { Resilience.off with Resilience.rs_retry_budget = budget };
    }
  in
  let arrivals = Traffic.arrivals ~rng:(Rng.create 1) (Traffic.Burst { at_us = 0.0 }) ~n:8 in
  let run budget =
    Stats.summarize
      (Server.simulate (config budget) ~arrivals ~payload:(fun i -> i)
         ~execute:always_fault)
  in
  let off = run None in
  check_int "legacy: everything poisoned after bisection" 8 off.Stats.s_poisoned;
  check_true "legacy: bisection ran" (off.Stats.s_bisections > 0);
  check_int "legacy: no retry sheds" 0 off.Stats.s_retry_shed;
  let armed = run (Some 0.0) in
  check_int "armed: every faulted batch shed under the budget" 8 armed.Stats.s_retry_shed;
  check_int "armed: nothing poisoned" 0 armed.Stats.s_poisoned;
  check_int "armed: no retries ran" 0 armed.Stats.s_retries;
  check_int "armed: denied retries are not counted as re-executions" 0
    armed.Stats.s_retried_requests;
  check_int "armed: offered still accounts every request" 8 armed.Stats.s_offered

let test_limiter_sheds_burst () =
  let config =
    {
      Server.default_config with
      Server.resilience =
        { Resilience.off with Resilience.rs_target_delay_us = Some 1_000.0 };
    }
  in
  let arrivals = Traffic.arrivals ~rng:(Rng.create 1) (Traffic.Burst { at_us = 0.0 }) ~n:40 in
  let s = Stats.summarize (simulate ~config ~arrivals ()) in
  (* The AIMD limit starts at 8: a simultaneous burst admits 8 and sheds
     the rest at the door, well before the 256-slot queue would. *)
  check_int "burst admits up to the initial limit" 8 s.Stats.s_completed;
  check_int "the excess is limit-shed" 32 s.Stats.s_limit_shed;
  check_int "nothing reaches the queue-full path" 0 s.Stats.s_shed;
  check_int "offered counts limit sheds" 40 s.Stats.s_offered

let test_brownout_engage_restore () =
  let degraded_calls = ref 0 in
  let execute ~degraded batch =
    if degraded then incr degraded_calls;
    let full = 1_000.0 +. (100.0 *. float_of_int (List.length batch)) in
    Server.Exec_ok
      {
        Server.ex_latency_us = (if degraded then full /. 2.0 else full);
        ex_profiler = None;
        ex_fingerprints = None;
        ex_corrupted = false;
      }
  in
  let config =
    {
      Server.default_config with
      Server.policy = Batcher.Fixed { max_batch = 8; max_wait_us = 500.0 };
      resilience =
        {
          Resilience.off with
          Resilience.rs_brownout =
            Some
              { Server.Brownout.bo_high_us = 2_000.0;
                bo_dwell_us = 3_000.0;
                bo_low_us = 600.0 };
        };
    }
  in
  (* A 64-request burst drives queue delay past the engage threshold; the
     2ms trickle afterwards keeps batches launching with ~0.5ms delay, so
     the controller restores after its dwell below the low watermark. *)
  let arrivals =
    Array.init 104 (fun i ->
        if i < 64 then 0.0 else 20_000.0 +. (2_000.0 *. float_of_int (i - 64)))
  in
  let s =
    Stats.summarize (Server.simulate config ~arrivals ~payload:(fun i -> i) ~execute)
  in
  check_int "everything completes" 104 s.Stats.s_completed;
  check_true "brownout engaged under the burst" (s.Stats.s_brownouts >= 1);
  check_true "brownout restored on the trickle" (s.Stats.s_brownout_restores >= 1);
  check_true "transitions alternate" (s.Stats.s_brownouts - s.Stats.s_brownout_restores <= 1
                                     && s.Stats.s_brownouts >= s.Stats.s_brownout_restores);
  check_true "degraded batches ran while engaged" (s.Stats.s_degraded_batches > 0);
  check_true "executor saw the degraded flag" (!degraded_calls > 0)

let test_resilience_idle_matches_legacy () =
  (* Arm every mechanism at thresholds gentle traffic never crosses: the
     run must be byte-identical to the legacy server — same RNG stream,
     same stats, no new JSON fields. *)
  let arrivals =
    Traffic.arrivals ~rng:(Rng.create 3) (Traffic.Poisson { rate_per_s = 2_000.0 }) ~n:60
  in
  let run resilience =
    let config = { Server.default_config with Server.resilience } in
    Json.to_string (Stats.summary_to_json (Stats.summarize (simulate ~config ~arrivals ())))
  in
  let off = run Resilience.off in
  let idle =
    run
      {
        Resilience.rs_retry_budget = Some 0.5;
        rs_target_delay_us = Some 1.0e9;
        rs_brownout =
          Some
            { Server.Brownout.bo_high_us = infinity; bo_dwell_us = 1.0; bo_low_us = 0.0 };
      }
  in
  Alcotest.(check string) "armed-but-idle run is byte-identical to legacy" off idle

(* --- Admission property test (randomized offer/take/expiry scripts) --- *)

type aop = A_offer of int * int option | A_take of int * int

let gen_aop =
  QCheck2.Gen.(
    bind (int_range 0 400) (fun dt ->
        oneof
          [
            map (fun dl -> A_offer (dt, dl)) (option (int_range 0 1_000));
            map (fun limit -> A_take (dt, limit)) (int_range 1 8);
          ]))

let gen_admission_script =
  QCheck2.Gen.(pair (int_range 1 6) (list_size (int_range 1 80) gen_aop))

(* Invariants under any interleaving of offers, takes and deadline expiry:
   the queue never exceeds its capacity, each take pops live requests in
   earliest-deadline-first order (deadline-free requests sort last; equal
   deadlines break FIFO by id, so the order is total and stable), no id is
   popped twice, and every offered request is accounted exactly once as
   taken, shed or expired. *)
let admission_prop (cap, ops) =
  let q = Admission.create ~capacity:cap () in
  let now = ref 0.0 in
  let next_id = ref 0 in
  let taken = ref [] in
  let ok = ref true in
  let edf_key (r : int Admission.request) =
    Option.value ~default:infinity r.Admission.rq_deadline_us, r.Admission.rq_id
  in
  (* Within one batch the pop order must be non-decreasing in
     (deadline, id); across batches a later arrival may legitimately carry
     an earlier deadline than requests already taken. *)
  let rec edf_sorted = function
    | a :: (b :: _ as t) -> edf_key a <= edf_key b && edf_sorted t
    | _ -> true
  in
  let record_batch batch limit =
    if List.length batch > limit then ok := false;
    if not (edf_sorted batch) then ok := false;
    List.iter (fun r -> taken := r.Admission.rq_id :: !taken) batch
  in
  List.iter
    (fun op ->
      match op with
      | A_offer (dt, dl) ->
        now := !now +. float_of_int dt;
        let id = !next_id in
        incr next_id;
        let r =
          {
            Admission.rq_id = id;
            rq_payload = id;
            rq_arrival_us = !now;
            rq_deadline_us = Option.map (fun d -> !now +. float_of_int d) dl;
          }
        in
        ignore (Admission.offer q ~now_us:!now r);
        if Admission.length q > cap then ok := false
      | A_take (dt, limit) ->
        now := !now +. float_of_int dt;
        record_batch (Admission.take q ~now_us:!now ~limit) limit)
    ops;
  record_batch (Admission.take q ~now_us:!now ~limit:max_int) max_int;
  let taken = List.rev !taken in
  let seen = Hashtbl.create 64 in
  let unique =
    List.for_all
      (fun id ->
        if Hashtbl.mem seen id then false else (Hashtbl.add seen id (); true))
      taken
  in
  !ok && unique
  && Admission.length q = 0
  && !next_id = List.length taken + Admission.shed_count q + Admission.expired_count q

(* --- Simulator-core backends: heap vs reference equivalence --- *)

(* The heap event queue and EDF admission heap are pure speedups: on any
   schedule they must be observationally identical to the Map/sorted-list
   reference implementations they replaced. These differential properties
   are the proof obligation. *)

let test_event_loop_nonfinite () =
  let loop = Event_loop.create (Clock.create ()) in
  Alcotest.check_raises "NaN time rejected"
    (Invalid_argument "Event_loop.schedule: non-finite time nan") (fun () ->
      Event_loop.schedule loop ~at:Float.nan ignore);
  Alcotest.check_raises "infinite time rejected"
    (Invalid_argument "Event_loop.schedule: non-finite time inf") (fun () ->
      Event_loop.schedule loop ~at:Float.infinity ignore);
  Alcotest.check_raises "NaN delay rejected"
    (Invalid_argument "Event_loop.schedule_after: non-finite delay nan") (fun () ->
      Event_loop.schedule_after loop ~delay:Float.nan ignore);
  (* Nothing was enqueued and nothing was counted as clamped. *)
  check_int "queue untouched" 0 (Event_loop.pending loop);
  check_int "no clamps" 0 (Event_loop.clamped_count loop)

let test_event_loop_negative_delay_clamped () =
  let loop = Event_loop.create (Clock.create ()) in
  let fired = ref [] in
  Event_loop.schedule loop ~at:10.0 (fun () ->
      (* A negative delay is a past-time request: clamped to "now" and
         counted, exactly like a past [~at]. *)
      Event_loop.schedule_after loop ~delay:(-5.0) (fun () ->
          fired := ("neg", Event_loop.now loop) :: !fired);
      Event_loop.schedule_after loop ~delay:2.0 (fun () ->
          fired := ("pos", Event_loop.now loop) :: !fired));
  Event_loop.run loop;
  Alcotest.(check (list (pair string (float 0.0))))
    "fire times" [ "neg", 10.0; "pos", 12.0 ] (List.rev !fired);
  check_int "negative delay counted as clamped" 1 (Event_loop.clamped_count loop)

(* Random schedules over a coarse time grid (forcing plenty of same-time
   ties), where every third event schedules a nested child: both backends
   must dispatch the identical sequence. *)
let gen_event_script =
  QCheck2.Gen.(list_size (int_range 0 60) (pair (int_range 0 20) (option (int_range 0 8))))

let event_loop_backend_prop script =
  let run backend =
    let loop = Event_loop.create ~backend (Clock.create ()) in
    let log = ref [] in
    List.iteri
      (fun i (at, child) ->
        Event_loop.schedule loop ~at:(float_of_int at) (fun () ->
            log := i :: !log;
            match child with
            | Some d ->
              Event_loop.schedule loop
                ~at:(Event_loop.now loop +. float_of_int d)
                (fun () -> log := (10_000 + i) :: !log)
            | None -> ()))
      script;
    Event_loop.run loop;
    List.rev !log, Event_loop.dispatched loop, Event_loop.pending loop
  in
  run Event_loop.Heap = run Event_loop.Map_reference

(* Same random offer/take scripts as [admission_prop], but run against both
   backends recording every observable — admit/shed decisions, swept and
   dropped request ids, pop order, and the per-tick probes ([length],
   [is_empty], [oldest_arrival_us]) whose O(1) counters the heap backend
   maintains incrementally. The traces must match exactly, which is also
   the regression test that offer/take/sweep keep the counters consistent
   with the reference's ground truth. *)
let gen_admission_backend_script =
  QCheck2.Gen.(triple (int_range 1 6) bool (list_size (int_range 1 80) gen_aop))

let admission_backend_prop (cap, eager_sweep, ops) =
  let ids = List.map (fun (r : int Admission.request) -> r.Admission.rq_id) in
  let run backend =
    let q = Admission.create ~backend ~eager_sweep ~capacity:cap () in
    let now = ref 0.0 in
    let next_id = ref 0 in
    let trace = ref [] in
    let push x = trace := x :: !trace in
    let probe () =
      push
        (`Probe (Admission.length q, Admission.is_empty q, Admission.oldest_arrival_us q))
    in
    List.iter
      (fun op ->
        match op with
        | A_offer (dt, dl) ->
          now := !now +. float_of_int dt;
          let id = !next_id in
          incr next_id;
          let r =
            {
              Admission.rq_id = id;
              rq_payload = id;
              rq_arrival_us = !now;
              rq_deadline_us = Option.map (fun d -> !now +. float_of_int d) dl;
            }
          in
          let admitted, swept = Admission.offer_swept q ~now_us:!now r in
          push (`Offer (admitted, ids swept));
          probe ()
        | A_take (dt, limit) ->
          now := !now +. float_of_int dt;
          let live, dropped = Admission.take_with_expired q ~now_us:!now ~limit in
          push (`Take (ids live, ids dropped));
          probe ())
      ops;
    let live, dropped = Admission.drain q ~now_us:!now in
    push (`Drain (ids live, ids dropped));
    push (`Counts (Admission.shed_count q, Admission.expired_count q, Admission.length q));
    List.rev !trace
  in
  run Admission.Edf_heap = run Admission.Sorted_list

(* Deterministic spot-check of the O(1) counters across offer, take, a
   full-queue sweep, and drain (the differential property above is the
   broad net; this pins the exact values). *)
let test_admission_counters () =
  let q = Admission.create ~capacity:3 () in
  check_int "empty length" 0 (Admission.length q);
  check_true "empty" (Admission.is_empty q);
  check_true "no oldest" (Admission.oldest_arrival_us q = None);
  check_true "admit r0" (Admission.offer q ~now_us:0.0 (rq ~deadline:100.0 0 0.0));
  check_true "admit r1" (Admission.offer q ~now_us:10.0 (rq ~deadline:50.0 1 10.0));
  check_true "admit r2" (Admission.offer q ~now_us:20.0 (rq 2 20.0));
  check_int "length 3" 3 (Admission.length q);
  check_true "oldest is r0" (Admission.oldest_arrival_us q = Some 0.0);
  (* EDF pops r1 (deadline 50) first; the min-arrival cache must not move. *)
  (match Admission.take q ~now_us:20.0 ~limit:1 with
  | [ r ] -> check_int "EDF pop" 1 r.Admission.rq_id
  | _ -> Alcotest.fail "expected exactly one pop");
  check_int "length 2" 2 (Admission.length q);
  check_true "oldest still r0" (Admission.oldest_arrival_us q = Some 0.0);
  (match Admission.take q ~now_us:20.0 ~limit:1 with
  | [ r ] -> check_int "EDF pop r0" 0 r.Admission.rq_id
  | _ -> Alcotest.fail "expected exactly one pop");
  check_true "oldest advances to r2" (Admission.oldest_arrival_us q = Some 20.0);
  (* Refill to capacity, then let r3 expire: the full-queue offer sweeps
     it, admits r5, and every counter stays consistent. *)
  check_true "admit r3" (Admission.offer q ~now_us:200.0 (rq ~deadline:210.0 3 200.0));
  check_true "admit r4" (Admission.offer q ~now_us:220.0 (rq 4 220.0));
  check_int "full" 3 (Admission.length q);
  check_true "admit r5 after sweep" (Admission.offer q ~now_us:300.0 (rq 5 300.0));
  check_int "swept one expired" 1 (Admission.expired_count q);
  check_int "still full" 3 (Admission.length q);
  check_int "nothing shed" 0 (Admission.shed_count q);
  check_true "oldest still r2" (Admission.oldest_arrival_us q = Some 20.0);
  let live, dropped = Admission.drain q ~now_us:300.0 in
  Alcotest.(check (list int)) "drain order (EDF = seq for deadline-less)" [ 2; 4; 5 ]
    (List.map (fun (r : int Admission.request) -> r.Admission.rq_id) live);
  check_int "no drops in drain" 0 (List.length dropped);
  check_int "drained empty" 0 (Admission.length q);
  check_true "oldest gone" (Admission.oldest_arrival_us q = None)

(* --- Streaming stats: exact-until-K, then reservoir percentiles --- *)

let test_stats_reservoir_error () =
  let saved = Stats.current_streaming_threshold () in
  Stats.set_streaming_threshold 1_000;
  Fun.protect ~finally:(fun () -> Stats.set_streaming_threshold saved) @@ fun () ->
  let t = Stats.create () in
  let n = 50_000 in
  let rng = Rng.create 5 in
  let exact = Array.make n 0.0 in
  for i = 0 to n - 1 do
    (* Uniform latencies in [0, 100] ms: the distribution with the worst
       (widest) quantile spread for a fixed-size sample. *)
    let lat_us = 100_000.0 *. Rng.float rng in
    exact.(i) <- lat_us /. 1000.0;
    Stats.record t
      {
        Stats.r_id = i;
        r_arrival_us = float_of_int i;
        r_start_us = float_of_int i;
        r_done_us = float_of_int i +. lat_us;
        r_batch_size = 1;
      }
  done;
  check_true "streaming engaged past the threshold" (Stats.streaming_active t);
  let s = Stats.summarize t in
  check_int "count survives the conversion" n s.Stats.s_completed;
  (* Reservoir percentiles against the exact ones over all 50k latencies.
     8192 samples bound the quantile standard error at ~0.55% of rank
     (p50), so a 2.5ms tolerance on a 100ms range is ~4.5 sigma — and the
     fixed seed makes the draw deterministic anyway. *)
  let exact_p p = Stats.percentile exact p in
  check_true "p50 within bound" (Float.abs (s.Stats.s_p50_ms -. exact_p 50.0) < 2.5);
  check_true "p95 within bound" (Float.abs (s.Stats.s_p95_ms -. exact_p 95.0) < 2.5);
  check_true "p99 within bound" (Float.abs (s.Stats.s_p99_ms -. exact_p 99.0) < 2.5);
  (* Means are running sums in completion order — the identical float
     additions the exact path performs, so they agree exactly. *)
  let mean_exact = Array.fold_left ( +. ) 0.0 exact /. float_of_int n in
  check_float "mean stays exact in streaming mode" mean_exact s.Stats.s_mean_ms

let test_stats_exact_below_threshold () =
  (* Below the threshold nothing changes: records are retained and the
     summary is the exact one (the exact-until-K contract that keeps all
     legacy-sized runs byte-identical). *)
  let t = Stats.create () in
  for i = 0 to 99 do
    Stats.record t
      {
        Stats.r_id = i;
        r_arrival_us = float_of_int (i * 10);
        r_start_us = float_of_int ((i * 10) + 5);
        r_done_us = float_of_int ((i * 10) + 20);
        r_batch_size = 1;
      }
  done;
  check_true "still exact" (not (Stats.streaming_active t));
  let s = Stats.summarize t in
  check_int "completed" 100 s.Stats.s_completed;
  check_float "exact p99" 0.02 s.Stats.s_p99_ms;
  check_float "exact mean" 0.02 s.Stats.s_mean_ms

(* --- Cluster: replicated serving with failover + hedging --- *)

let ok_exec = Server.infallible (linear_cost ~fixed:100.0 ~per_item:10.0)

(* A dead device: every attempt reports a device reset. The transient flag
   makes the single-server baseline burn its retries before bisecting, and
   the reset counter fails the replica over before bisection can poison
   anything. *)
let always_reset ~degraded:_ _batch = fault ~transient:true ~reset:true "dead device"

(* Every [every]-th batch stalls [mult]x longer than the latency model
   predicts — the tail-latency straggler hedging exists to cut. Stateful, so
   each run needs a fresh executor. *)
let straggler_exec ~every ~mult () =
  let n = ref 0 in
  fun ~degraded:_ batch ->
    incr n;
    let c = linear_cost ~fixed:100.0 ~per_item:10.0 batch in
    if !n mod every = 0 then
      Server.Exec_ok { c with Server.ex_latency_us = c.Server.ex_latency_us *. mult }
    else Server.Exec_ok c

let cluster_arrivals ?(n = 120) ?(rate = 4000.0) seed =
  Traffic.arrivals ~rng:(Rng.create seed) (Traffic.Poisson { rate_per_s = rate }) ~n

let test_cluster_failover_goodput () =
  let arrivals = cluster_arrivals ~n:120 5 in
  (* Baseline: one server under the dead-device plan loses most requests to
     the breaker. *)
  let single =
    Stats.summarize
      (Server.simulate Server.default_config ~arrivals ~payload:Fun.id
         ~execute:always_reset)
  in
  check_true "single server under the plan collapses" (Stats.goodput single < 0.5);
  (* Same plan on replica 0 of a 3-replica cluster: failover requeues its
     work onto the healthy peers. *)
  let report =
    Cluster.simulate
      { Cluster.default_config with Cluster.c_replicas = 3 }
      ~arrivals ~payload:Fun.id
      ~executors:[| always_reset; ok_exec; ok_exec |]
  in
  let s = Stats.summarize report.Cluster.cluster_stats in
  let admitted = s.Stats.s_offered - s.Stats.s_shed in
  check_true "cluster completes >= 99% of admitted"
    (float_of_int s.Stats.s_completed >= 0.99 *. float_of_int admitted);
  check_true "failover engaged" (s.Stats.s_failovers >= 1);
  check_true "in-flight work was requeued" (s.Stats.s_requeued >= 1);
  let v0 = List.nth report.Cluster.replica_views 0 in
  check_true "faulty replica never silently healthy"
    (v0.Cluster.rv_health <> Replica.Up)

let test_cluster_hedging_p99 () =
  let arrivals = cluster_arrivals ~n:150 7 in
  let run hedge =
    let report =
      Cluster.simulate
        { Cluster.default_config with
          Cluster.c_replicas = 3; Cluster.c_hedge_percentile = hedge }
        ~arrivals ~payload:Fun.id
        ~executors:
          [|
            straggler_exec ~every:6 ~mult:30.0 ();
            straggler_exec ~every:7 ~mult:30.0 ();
            straggler_exec ~every:8 ~mult:30.0 ();
          |]
    in
    Stats.summarize report.Cluster.cluster_stats
  in
  let plain = run None in
  let hedged = run (Some 90.0) in
  check_true "hedges were issued" (hedged.Stats.s_hedges > 0);
  check_true "a hedge outran its straggling primary" (hedged.Stats.s_hedge_wins > 0);
  check_true "hedging reduces p99 under stragglers"
    (hedged.Stats.s_p99_ms < plain.Stats.s_p99_ms);
  check_true "hedging loses no completions"
    (hedged.Stats.s_completed >= plain.Stats.s_completed)

let test_cluster_request_accounting () =
  (* The nastiest combination: a dead replica (failover + requeue), a
     straggler (hedging fires), deadlines and a small queue (expiry + shed).
     Every offered request must terminate exactly once, and no request id
     may complete twice no matter how many copies hedging created. *)
  let n = 140 in
  let arrivals = cluster_arrivals ~n 11 in
  let report =
    Cluster.simulate
      { Cluster.default_config with
        Cluster.c_replicas = 3;
        Cluster.c_hedge_percentile = Some 85.0;
        Cluster.c_server =
          { Server.default_config with
            Server.deadline_us = Some 40_000.0; Server.queue_capacity = 16 } }
      ~arrivals ~payload:Fun.id
      ~executors:[| always_reset; straggler_exec ~every:5 ~mult:20.0 (); ok_exec |]
  in
  let st = report.Cluster.cluster_stats in
  let s = Stats.summarize st in
  check_int "every request terminates exactly once" n
    (s.Stats.s_completed + s.Stats.s_shed + s.Stats.s_expired + s.Stats.s_poisoned
   + s.Stats.s_breaker_shed);
  let ids = List.map (fun r -> r.Stats.r_id) st.Stats.records in
  check_int "no request id completed twice" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  check_true "stress exercised failover and hedging"
    (s.Stats.s_failovers > 0 && s.Stats.s_hedges > 0)

let test_cluster_deterministic () =
  let run () =
    let arrivals = cluster_arrivals ~n:120 13 in
    let report =
      Cluster.simulate
        { Cluster.default_config with
          Cluster.c_replicas = 3; Cluster.c_hedge_percentile = Some 90.0 }
        ~arrivals ~payload:Fun.id
        ~executors:[| always_reset; straggler_exec ~every:6 ~mult:25.0 (); ok_exec |]
    in
    Json.to_string
      (Json.Obj
         (("cluster",
           Stats.summary_to_json (Stats.summarize report.Cluster.cluster_stats))
         :: List.map
              (fun v ->
                ( Fmt.str "replica%d" v.Cluster.rv_id,
                  Stats.summary_to_json (Stats.summarize v.Cluster.rv_stats) ))
              report.Cluster.replica_views))
  in
  Alcotest.(check string) "identical cluster JSON across reruns" (run ()) (run ())

let test_cluster_single_replica_equivalence () =
  (* One replica, no faults, no hedging: the cluster is the single server,
     byte for byte. *)
  let arrivals = cluster_arrivals ~n:200 ~rate:5000.0 9 in
  let sv =
    Stats.summarize
      (Server.simulate Server.default_config ~arrivals ~payload:Fun.id
         ~execute:ok_exec)
  in
  let report =
    Cluster.simulate Cluster.default_config ~arrivals ~payload:Fun.id
      ~executors:[| ok_exec |]
  in
  let cl = Stats.summarize report.Cluster.cluster_stats in
  let json s = Json.to_string (Stats.summary_to_json s) in
  Alcotest.(check string) "1-replica cluster == single server" (json sv) (json cl)

(* --- Integrity: sampled audit re-execution and corruption quarantine --- *)

(* A batch executor that silently corrupts every [every]-th batch: the
   fingerprints it attaches are wrong, nothing raises. Honest results
   fingerprint as [1000 + id], which is what the reference recomputes. *)
let corrupt_exec ?(every = 3) () =
  let n = ref 0 in
  fun ~degraded:_ batch ->
    incr n;
    let corrupted = !n mod every = 0 in
    let c = linear_cost ~fixed:100.0 ~per_item:10.0 batch in
    Server.Exec_ok
      {
        c with
        Server.ex_corrupted = corrupted;
        ex_fingerprints =
          Some
            (Array.of_list
               (List.map
                  (fun id -> Int64.of_int (if corrupted then -id - 1 else 1000 + id))
                  batch));
      }

(* Corrupts its first [bad] batches, then runs clean — the transient flaky
   device quarantine must contain and then re-admit. *)
let flaky_then_clean_exec ?(bad = 3) () =
  let n = ref 0 in
  fun ~degraded:_ batch ->
    incr n;
    let corrupted = !n <= bad in
    let c = linear_cost ~fixed:100.0 ~per_item:10.0 batch in
    Server.Exec_ok
      {
        c with
        Server.ex_corrupted = corrupted;
        ex_fingerprints =
          Some
            (Array.of_list
               (List.map
                  (fun id -> Int64.of_int (if corrupted then -id - 1 else 1000 + id))
                  batch));
      }

let reference_auditor rate =
  {
    Server.au_rate = rate;
    au_seed = 42;
    au_reference = (fun id _ -> Int64.of_int (1000 + id), 80.0);
  }

let test_audit_intercepts_corruption () =
  let arrivals = cluster_arrivals ~n:150 17 in
  let run auditor =
    Stats.summarize
      (Server.simulate ?auditor Server.default_config ~arrivals ~payload:Fun.id
         ~execute:(corrupt_exec ~every:3 ()))
  in
  let off = run None in
  check_true "corruption injected" (off.Stats.s_corrupted_batches > 0);
  check_true "unaudited corruption is delivered silently"
    (off.Stats.s_corrupted_delivered > 0);
  check_int "nothing audited without an auditor" 0 off.Stats.s_audits;
  (* The tentpole oracle: at rate 1.0 every delivery is verified, so zero
     corrupted results reach clients — and no completion is lost doing it. *)
  let full = run (Some (reference_auditor 1.0)) in
  check_int "audit 1.0 delivers zero corrupted results" 0
    full.Stats.s_corrupted_delivered;
  check_int "every completion audited" full.Stats.s_completed full.Stats.s_audits;
  check_true "mismatches caught" (full.Stats.s_audit_mismatches > 0);
  check_int "auditing loses no completions" off.Stats.s_completed
    full.Stats.s_completed;
  let half = run (Some (reference_auditor 0.5)) in
  check_true "sampling reduces delivered corruption"
    (half.Stats.s_corrupted_delivered < off.Stats.s_corrupted_delivered);
  check_true "sampling audits a strict fraction"
    (half.Stats.s_audits > 0 && half.Stats.s_audits < full.Stats.s_audits)

let test_cluster_quarantine_contains_corruption () =
  (* Replica 0 corrupts every batch; full auditing must shield delivery,
     the scoreboard must quarantine it, and — the conservation oracle —
     every offered request still terminates exactly once. *)
  let n = 160 in
  let arrivals = cluster_arrivals ~n 19 in
  let report =
    Cluster.simulate ~auditor:(reference_auditor 1.0)
      { Cluster.default_config with Cluster.c_replicas = 3 }
      ~arrivals ~payload:Fun.id
      ~executors:[| corrupt_exec ~every:1 (); ok_exec; ok_exec |]
  in
  let s = Stats.summarize report.Cluster.cluster_stats in
  check_int "no corrupted result delivered" 0 s.Stats.s_corrupted_delivered;
  check_true "the dirty replica was quarantined" (s.Stats.s_quarantines >= 1);
  let v0 = List.nth report.Cluster.replica_views 0 in
  check_true "a permanently dirty replica never returns to Up"
    (v0.Cluster.rv_health <> Replica.Up);
  check_int "quarantine conserves requests" n
    (s.Stats.s_completed + s.Stats.s_shed + s.Stats.s_expired + s.Stats.s_poisoned
   + s.Stats.s_breaker_shed)

let test_cluster_quarantine_readmits_after_clean_probes () =
  (* A transiently flaky replica: corrupt early batches trip quarantine;
     once its probes audit clean it must be re-admitted. *)
  let arrivals = cluster_arrivals ~n:400 ~rate:6000.0 23 in
  let report =
    Cluster.simulate ~auditor:(reference_auditor 1.0)
      { Cluster.default_config with Cluster.c_replicas = 2 }
      ~arrivals ~payload:Fun.id
      ~executors:[| flaky_then_clean_exec ~bad:2 (); ok_exec |]
  in
  let s = Stats.summarize report.Cluster.cluster_stats in
  check_true "the flaky replica was quarantined" (s.Stats.s_quarantines >= 1);
  check_true "clean probes re-admitted it" (s.Stats.s_quarantine_restores >= 1);
  check_true "probes ran" (s.Stats.s_probes >= 1);
  check_int "recovered fleet delivers no corruption" 0 s.Stats.s_corrupted_delivered;
  let v0 = List.nth report.Cluster.replica_views 0 in
  check_true "the recovered replica ends healthy" (v0.Cluster.rv_health = Replica.Up)

let test_cluster_audit_deterministic () =
  let run () =
    let arrivals = cluster_arrivals ~n:150 29 in
    let report =
      Cluster.simulate ~auditor:(reference_auditor 0.5)
        { Cluster.default_config with Cluster.c_replicas = 2 }
        ~arrivals ~payload:Fun.id
        ~executors:[| flaky_then_clean_exec ~bad:3 (); ok_exec |]
    in
    Json.to_string (Stats.summary_to_json (Stats.summarize report.Cluster.cluster_stats))
  in
  Alcotest.(check string) "identical audited cluster JSON across reruns" (run ()) (run ())

let test_integrity_counters_gated () =
  (* The integrity block is activity-gated: a legacy run's summary JSON,
     pp and metrics carry not a single new key, so byte-stability holds. *)
  let arrivals = cluster_arrivals ~n:100 31 in
  let summary auditor =
    Stats.summarize
      (Server.simulate ?auditor Server.default_config ~arrivals ~payload:Fun.id
         ~execute:ok_exec)
  in
  let j s = Json.to_string (Stats.summary_to_json s) in
  check_bool "legacy summary JSON carries no integrity keys" false
    (contains (j (summary None)) "audit");
  check_true "an armed auditor surfaces the integrity block"
    (contains (j (summary (Some (reference_auditor 1.0)))) "audits")

(* --- End to end on a real compiled model --- *)

let serve_tiny ?faults ~policy () =
  serve_model ~iters:50 ~policy ?faults
    ~process:(Traffic.Poisson { rate_per_s = 8000.0 })
    ~requests:80 ~seed:3 (Models.tiny "treelstm")

let test_serve_model_deterministic () =
  let json r = Json.to_string (serve_report_json r) in
  let a = serve_tiny ~policy:Server.default_config.Server.policy () in
  let b = serve_tiny ~policy:Server.default_config.Server.policy () in
  Alcotest.(check string) "identical report JSON" (json a) (json b)

let test_adaptive_beats_batch1 () =
  let summary policy = (serve_tiny ~policy ()).sv_summary in
  let b1 = summary Batcher.Batch1 in
  let ad = summary (Batcher.Adaptive { max_batch = 16; max_wait_us = 2000.0 }) in
  check_true "adaptive throughput strictly higher"
    (ad.Stats.s_throughput_rps > b1.Stats.s_throughput_rps);
  check_true "adaptive p99 strictly lower" (ad.Stats.s_p99_ms < b1.Stats.s_p99_ms);
  check_true "adaptive actually batches" (ad.Stats.s_mean_batch > 1.5);
  check_int "batch1 never batches" 80 b1.Stats.s_batches

let test_serve_model_goodput_under_faults () =
  (* ISSUE acceptance: a 5% transient kernel-fault rate must not cost more
     than 10% of fault-free goodput — retry + bisection + breaker absorb it. *)
  let policy = Batcher.Adaptive { max_batch = 16; max_wait_us = 2000.0 } in
  let clean = (serve_tiny ~policy ()).sv_summary in
  let faulty =
    (serve_tiny ~faults:(Faults.parse "seed=7,kernel=0.05") ~policy ()).sv_summary
  in
  check_true "faults were actually injected" (faulty.Stats.s_fault_batches > 0);
  check_true "retries ran" (faulty.Stats.s_retries > 0);
  check_true "goodput within 90% of fault-free"
    (Stats.goodput faulty >= 0.9 *. Stats.goodput clean)

let test_serve_model_poison_isolated () =
  (* A poisoned request id must be the only drop: bisection fences it off
     while the rest of its batch completes. *)
  let policy = Batcher.Adaptive { max_batch = 16; max_wait_us = 2000.0 } in
  let s = (serve_tiny ~faults:(Faults.parse "poison=5") ~policy ()).sv_summary in
  check_int "only the poison dropped" 1 s.Stats.s_poisoned;
  check_int "everyone else completes" 79 s.Stats.s_completed;
  check_int "nothing shed" 0 (s.Stats.s_shed + s.Stats.s_breaker_shed)

let test_serve_model_faulty_deterministic () =
  (* Satellite: same seed + same fault plan => byte-identical stats JSON. *)
  let run () =
    Json.to_string
      (serve_report_json
         (serve_tiny
            ~faults:(Faults.parse "seed=11,kernel=0.08,straggler=0.05x4,reset=0.01")
            ~policy:Server.default_config.Server.policy ()))
  in
  Alcotest.(check string) "identical faulty report JSON" (run ()) (run ())

let test_serve_model_audited_corruption () =
  (* End to end through the real engine stack: the device silently perturbs
     half its batch attempts; the auditor re-executes each sampled request
     unbatched and compares real tensor fingerprints. *)
  let policy = Batcher.Adaptive { max_batch = 16; max_wait_us = 2000.0 } in
  let run audit =
    (serve_model ~iters:50 ~policy
       ~faults:(Faults.parse "seed=9,corrupt=0.5")
       ~audit
       ~process:(Traffic.Poisson { rate_per_s = 8000.0 })
       ~requests:60 ~seed:3 (Models.tiny "treelstm"))
      .sv_summary
  in
  let off = run 0.0 in
  check_true "corruption injected" (off.Stats.s_corrupted_batches > 0);
  check_true "unaudited corruption delivered" (off.Stats.s_corrupted_delivered > 0);
  let full = run 1.0 in
  check_int "audit 1.0 delivers zero corrupted results" 0
    full.Stats.s_corrupted_delivered;
  check_true "real fingerprint mismatches detected" (full.Stats.s_audit_mismatches > 0);
  check_int "auditing loses no completions" off.Stats.s_completed
    full.Stats.s_completed

let test_degraded_variant_wired () =
  (* Early-exit models expose a degraded variant that shares input and
     weight shapes with the primary; others advertise none. *)
  let b = Models.tiny "berxit" in
  (match b.Model.degraded with
  | None -> Alcotest.fail "berxit should carry a degraded variant"
  | Some d ->
    check_true "degraded source differs (higher exit probability)"
      (d.Model.source <> b.Model.source);
    check_true "degraded variant is terminal" (d.Model.degraded = None);
    Alcotest.(check (list string)) "same inputs" b.Model.inputs d.Model.inputs);
  check_true "treelstm has no degraded variant"
    ((Models.tiny "treelstm").Model.degraded = None)

(* --- Statistics edge cases (satellite of the telemetry fixes) --- *)

let test_percentile_edges () =
  let xs = [| 5.0; 1.0; 4.0; 2.0; 3.0 |] in
  check_float "p100 is the max" 5.0 (Stats.percentile xs 100.0);
  check_float "p -> 0 is the min" 1.0 (Stats.percentile xs 0.001);
  check_float "p = 0 is the min" 1.0 (Stats.percentile xs 0.0);
  check_float "p50 nearest-rank" 3.0 (Stats.percentile xs 50.0);
  check_true "input stays unsorted" (xs = [| 5.0; 1.0; 4.0; 2.0; 3.0 |]);
  check_float "singleton at p0" 7.0 (Stats.percentile [| 7.0 |] 0.0);
  check_float "singleton at p100" 7.0 (Stats.percentile [| 7.0 |] 100.0);
  check_float "empty sample is 0" 0.0 (Stats.percentile [||] 50.0)

let test_percentile_sorted_agreement () =
  (* summarize sorts the latencies once and reads every percentile off the
     sorted array; the fast path must agree with the sort-per-call one. *)
  let agree xs =
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    List.iter
      (fun p ->
        check_float
          (Fmt.str "p%g agrees on %d samples" p (Array.length xs))
          (Stats.percentile xs p)
          (Stats.percentile_sorted sorted p))
      [ 0.0; 25.0; 50.0; 90.0; 95.0; 99.0; 100.0 ]
  in
  agree [||];
  agree [| 7.0 |];
  agree [| 5.0; 1.0; 4.0; 2.0; 3.0 |];
  let rng = Rng.create 17 in
  agree (Array.init 101 (fun _ -> 1000.0 *. Rng.float rng));
  (* And the summary itself reads off the single sorted pass. *)
  let stats = Stats.create () in
  let rng = Rng.create 18 in
  let lats_ms =
    Array.init 50 (fun i ->
        let latency_us = 500.0 *. Rng.float rng in
        Stats.record stats
          {
            Stats.r_id = i;
            r_arrival_us = 10.0 *. float_of_int i;
            r_start_us = 10.0 *. float_of_int i;
            r_done_us = (10.0 *. float_of_int i) +. latency_us;
            r_batch_size = 1;
          };
        latency_us /. 1000.0)
  in
  let s = Stats.summarize stats in
  check_float "summary p50 matches percentile" (Stats.percentile lats_ms 50.0)
    s.Stats.s_p50_ms;
  check_float "summary p95 matches percentile" (Stats.percentile lats_ms 95.0)
    s.Stats.s_p95_ms;
  check_float "summary p99 matches percentile" (Stats.percentile lats_ms 99.0)
    s.Stats.s_p99_ms

let test_event_loop_debug_order_check () =
  (* With debug checks armed, a handler that drags the clock past a pending
     event's due time must crash the run instead of dispatching stale
     events silently. *)
  let run_with_time_warp () =
    let loop = Event_loop.create (Clock.create ()) in
    Event_loop.schedule loop ~at:100.0 (fun () ->
        (* Misbehaving handler: advances the shared clock beyond the event
           scheduled at t=200, so that event pops "in the past". *)
        Clock.advance_to (Event_loop.clock loop) 500.0);
    Event_loop.schedule loop ~at:200.0 (fun () -> ());
    Event_loop.run loop
  in
  let was = Event_loop.debug_checks_enabled () in
  Fun.protect
    ~finally:(fun () -> Event_loop.set_debug_checks was)
    (fun () ->
      Event_loop.set_debug_checks false;
      run_with_time_warp ();
      Event_loop.set_debug_checks true;
      match run_with_time_warp () with
      | () -> Alcotest.fail "debug checks armed: dispatch regression must raise"
      | exception Invalid_argument msg ->
        check_true "error names the regression" (contains msg "dispatch order regression"))

(* --- Replica health-transition property ---

   Drive one replica with a scripted verdict tape (0 = ok, 1 = transient
   kernel fault, 2 = device reset) under a hair-trigger tolerance (any
   fault fails over), logging every health callback. Whatever the tape,
   the health machine must respect its protocol: a replica never
   resurrects without a successful probe (Down -> ProbeReady -> Up, in
   that order), and failover epochs are strictly increasing. *)

let gen_verdict_tape = QCheck2.Gen.(list_size (int_range 1 40) (int_range 0 2))

let replica_health_prop (verdicts : int list) : bool =
  let loop = Event_loop.create (Clock.create ()) in
  let tape = ref verdicts in
  let next_verdict () =
    match !tape with [] -> 0 | v :: rest -> tape := rest; v
  in
  let config =
    {
      Server.default_config with
      Server.policy = Batcher.Batch1;
      queue_capacity = 256;
      tolerance =
        {
          Server.default_tolerance with
          Server.max_retries = 0;
          breaker_threshold = 1;
          breaker_cooldown_us = 1000.0;
        };
    }
  in
  let execute ~degraded:_ _batch =
    match next_verdict () with
    | 0 ->
      Server.Exec_ok
        {
          Server.ex_latency_us = 100.0;
          ex_profiler = None;
          ex_fingerprints = None;
          ex_corrupted = false;
        }
    | v ->
      Server.Exec_fault
        {
          ef_latency_us = 50.0;
          ef_reason = "scripted";
          ef_transient = true;
          ef_oom = false;
          ef_reset = v = 2;
        }
  in
  let events = ref [] in
  let note e = events := e :: !events in
  let repl = ref None in
  let the_repl () = Option.get !repl in
  let next_id = ref 0 in
  (* One outstanding request at a time; each executed attempt consumes
     exactly one scripted verdict. *)
  let feed () =
    let id = !next_id in
    incr next_id;
    ignore
      (Replica.enqueue (the_repl ())
         {
           Admission.rq_id = id;
           rq_payload = id;
           rq_arrival_us = Event_loop.now loop;
           rq_deadline_us = None;
         })
  in
  let cb =
    {
      Replica.cb_live = (fun _ -> true);
      cb_completed =
        (fun ~replica:_ _ ~size:_ ~start_us:_ ~done_us:_ ->
          if !tape <> [] then feed ());
      cb_cancelled = (fun ~replica:_ _ -> ());
      cb_expired = (fun ~replica:_ _ -> ());
      cb_poisoned = (fun ~replica:_ _ -> ());
      cb_retry_shed = (fun ~replica:_ _ -> ());
      cb_down = (fun ~replica:_ _ -> note (`Down (Replica.epoch (the_repl ()))));
      cb_quarantined = (fun ~replica:_ _ -> ());
      cb_probe_ready =
        (fun ~replica:_ ->
          note `ProbeReady;
          feed () (* route the single probe request *));
      cb_up = (fun ~replica:_ -> note `Up);
    }
  in
  repl := Some (Replica.create ~id:0 ~loop ~config ~reset_threshold:1 ~execute ~cb ());
  feed ();
  Event_loop.run loop;
  let log = List.rev !events in
  (* Down only from Up or Probing; ProbeReady only from Down; Up only from
     Probing — never resurrect without a successful probe. *)
  let state = ref `U in
  let ok_machine =
    List.for_all
      (fun e ->
        match e, !state with
        | `Down _, (`U | `P) -> state := `D; true
        | `ProbeReady, `D -> state := `P; true
        | `Up, `P -> state := `U; true
        | _ -> false)
      log
  in
  let epochs = List.filter_map (function `Down e -> Some e | _ -> None) log in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  (* The tape always ends on implicit successes, so the replica must have
     recovered (and the whole script must have been consumed). *)
  ok_machine && increasing epochs && !tape = [] && Replica.health (the_repl ()) = Replica.Up

let test_hedge_warmup_boundary () =
  (* The estimator must stay off through hedge_min_obs - 1 observations and
     arm exactly at hedge_min_obs, reading only the observed prefix of the
     ring. *)
  let ring = Array.init 16 (fun i -> float_of_int (i + 1)) in
  check_true "one short of warm-up: off"
    (Cluster.hedge_delay ~percentile:95.0 ring ~count:(Cluster.hedge_min_obs - 1) = None);
  check_true "empty window: off" (Cluster.hedge_delay ~percentile:95.0 ring ~count:0 = None);
  (match Cluster.hedge_delay ~percentile:50.0 ring ~count:Cluster.hedge_min_obs with
  | None -> Alcotest.fail "estimator still off at hedge_min_obs"
  | Some d -> check_float "p50 of the first 8 observations" 4.0 d);
  match Cluster.hedge_delay ~percentile:100.0 ring ~count:Cluster.hedge_min_obs with
  | None -> Alcotest.fail "estimator still off at hedge_min_obs"
  | Some d -> check_float "unobserved ring entries are not read" 8.0 d

(* --- Observability: clamp accounting, tracing, metrics, JSON --- *)

let test_no_clamped_schedules_in_serving () =
  (* Bugfix assert: healthy end-to-end simulations must never schedule into
     the past — silently clamped events were the dropped-telemetry symptom. *)
  let arrivals =
    Traffic.arrivals ~rng:(Rng.create 9) (Traffic.Poisson { rate_per_s = 5000.0 }) ~n:200
  in
  let s = Stats.summarize (simulate ~arrivals ()) in
  check_int "server: no clamped schedules" 0 s.Stats.s_clamped_schedules;
  let report =
    Cluster.simulate
      { Cluster.default_config with Cluster.c_replicas = 3;
        Cluster.c_hedge_percentile = Some 90.0 }
      ~arrivals:(cluster_arrivals ~n:120 13) ~payload:Fun.id
      ~executors:[| always_reset; straggler_exec ~every:6 ~mult:25.0 (); ok_exec |]
  in
  let cs = Stats.summarize report.Cluster.cluster_stats in
  check_int "cluster: no clamped schedules" 0 cs.Stats.s_clamped_schedules

let terminal_names = [ "done"; "expired"; "shed"; "shed_breaker"; "poisoned"; "budget_exhausted" ]

let test_trace_deterministic_and_covering () =
  let n = 50 in
  let run () =
    let tracer = Trace.create () in
    let arrivals =
      Traffic.arrivals ~rng:(Rng.create 9) (Traffic.Poisson { rate_per_s = 5000.0 }) ~n
    in
    ignore
      (Server.simulate ~tracer Server.default_config ~arrivals
         ~payload:(fun i -> i)
         ~execute:(Server.infallible (linear_cost ~fixed:100.0 ~per_item:10.0)));
    tracer
  in
  let a = Json.to_string (Trace.to_json (run ())) in
  let b = Json.to_string (Trace.to_json (run ())) in
  Alcotest.(check string) "same seed, same trace JSON" a b;
  (* Lifecycle coverage: every request id is admitted once and reaches
     exactly one terminal state, on its own thread track. *)
  let evs = Trace.events (run ()) in
  let count f = List.length (List.filter f evs) in
  for id = 0 to n - 1 do
    let tid = Server.req_tid id in
    check_int (Fmt.str "request %d admitted once" id) 1
      (count (fun e -> e.Trace.ev_name = "admit" && e.Trace.ev_tid = tid));
    check_int (Fmt.str "request %d has one terminal" id) 1
      (count (fun e -> List.mem e.Trace.ev_name terminal_names && e.Trace.ev_tid = tid))
  done;
  check_true "batch spans on the device track"
    (count (fun e -> e.Trace.ev_name = "batch" && e.Trace.ev_tid = 0) > 0);
  check_true "queue spans recorded"
    (count (fun e -> e.Trace.ev_name = "queue" && e.Trace.ev_ph = 'X') > 0)

let test_trace_faulty_coverage () =
  (* Under faults + deadlines + a tiny queue, the dropped requests must
     still reach a terminal trace event (this is where telemetry used to
     vanish silently). *)
  let run () =
    let tracer = Trace.create () in
    let n = ref 0 in
    let execute ~degraded:_ batch =
      incr n;
      if !n mod 4 = 0 then fault "periodic" else ok batch
    in
    let config =
      { Server.default_config with
        Server.queue_capacity = 4; Server.deadline_us = Some 4_000.0 }
    in
    let arrivals =
      Traffic.arrivals ~rng:(Rng.create 3) (Traffic.Poisson { rate_per_s = 20_000.0 }) ~n:60
    in
    let stats = Server.simulate ~tracer config ~arrivals ~payload:(fun i -> i) ~execute in
    tracer, Stats.summarize stats
  in
  let tracer, s = run () in
  check_true "some requests actually dropped" (s.Stats.s_shed + s.Stats.s_expired > 0);
  let evs = Trace.events tracer in
  let count f = List.length (List.filter f evs) in
  for id = 0 to 59 do
    check_int (Fmt.str "request %d has one terminal" id) 1
      (count (fun e ->
           List.mem e.Trace.ev_name terminal_names && e.Trace.ev_tid = Server.req_tid id))
  done;
  check_int "terminals balance the offered load" 60
    (count (fun e -> List.mem e.Trace.ev_name terminal_names))

let test_trace_null_is_noop () =
  check_true "null tracer disabled" (not (Trace.enabled Trace.null));
  Trace.instant Trace.null ~name:"x" ~ts_us:0.0;
  Trace.complete Trace.null ~name:"y" ~ts_us:0.0 ~dur_us:1.0;
  Trace.name_process Trace.null ~name:"p";
  check_int "null tracer records nothing" 0 (Trace.event_count Trace.null)

let test_metrics_registry () =
  let module M = Metrics in
  let m = M.create () in
  let c = M.counter m "reqs" in
  M.incr c;
  M.incr ~by:4 c;
  check_int "counter accumulates" 5 (M.counter_value c);
  let g = M.gauge m "depth" in
  M.set g 2.5;
  let h = M.histogram m "lat" in
  List.iter (M.observe h) [ 3.0; 1.0; 2.0 ];
  M.snapshot m ~ts_us:10.0;
  check_int "snapshot recorded" 1 (M.snapshot_count m);
  check_true "same name returns the same instrument" (M.counter m "reqs" == c);
  check_true "kind mismatch rejected"
    (try
       ignore (M.gauge m "reqs");
       false
     with Invalid_argument _ -> true);
  (* The null registry hands back detached instruments and exports nothing. *)
  let nc = M.counter M.null "reqs" in
  M.incr nc;
  check_int "null-registry counter is detached" 1 (M.counter_value nc);
  Alcotest.(check string) "null registry exports empty"
    {|{"metrics":{},"snapshots":[]}|}
    (Json.to_string (M.to_json M.null));
  match M.to_json m with
  | Json.Obj [ ("metrics", Json.Obj fields); ("snapshots", Json.List [ snap ]) ] ->
    Alcotest.(check (list string)) "registration order preserved"
      [ "reqs"; "depth"; "lat" ] (List.map fst fields);
    check_true "snapshot carries its virtual timestamp"
      (Json.member "ts_us" snap = Some (Json.Float 10.0))
  | _ -> Alcotest.fail "unexpected metrics JSON shape"

let test_serve_metrics_end_to_end () =
  let metrics = Metrics.create () in
  let arrivals =
    Traffic.arrivals ~rng:(Rng.create 9) (Traffic.Poisson { rate_per_s = 5000.0 }) ~n:200
  in
  let s =
    Stats.summarize
      (Server.simulate ~metrics Server.default_config ~arrivals
         ~payload:(fun i -> i)
         ~execute:ok_exec)
  in
  let counter name = Metrics.counter_value (Metrics.counter metrics name) in
  check_int "serve.offered mirrors the summary" s.Stats.s_offered (counter "serve.offered");
  check_int "serve.completed mirrors the summary" s.Stats.s_completed
    (counter "serve.completed");
  check_int "serve.batches mirrors the summary" s.Stats.s_batches (counter "serve.batches");
  check_int "serve.clamped_schedules is zero" 0 (counter "serve.clamped_schedules");
  check_true "periodic snapshots were captured" (Metrics.snapshot_count metrics > 1)

let test_json_parse_roundtrip () =
  let j =
    Json.Obj
      [
        "a", Json.Int 42;
        "b", Json.Float 1.5;
        "c", Json.Str "he\"llo\n\tworld\\";
        "d", Json.List [ Json.Bool true; Json.Bool false; Json.Null; Json.Int (-3) ];
        "e", Json.Obj [];
        "f", Json.List [];
      ]
  in
  let s = Json.to_string j in
  check_true "parse inverts to_string" (Json.parse s = j);
  Alcotest.(check string) "emission is a fixed point" s (Json.to_string (Json.parse s));
  check_true "whitespace tolerated"
    (Json.member "x" (Json.parse "  { \"x\" : [ 1 , 2.5 , \"y\" ] }  ") <> None);
  check_true "truncated input rejected"
    (try
       ignore (Json.parse "{\"a\": [1, 2");
       false
     with Json.Parse_error _ -> true);
  check_true "trailing garbage rejected"
    (try
       ignore (Json.parse "{} {}");
       false
     with Json.Parse_error _ -> true)

(* --- Net: lossy transport, exactly-once delivery, partition-tolerant
   failover (DESIGN.md §16) --- *)

(* Terminal sum: [summarize] derives s_offered from exactly these, so
   equality with the request count is the conservation check. *)
let net_terminals (s : Stats.summary) =
  s.Stats.s_completed + s.Stats.s_shed + s.Stats.s_expired + s.Stats.s_poisoned
  + s.Stats.s_breaker_shed + s.Stats.s_quota_shed + s.Stats.s_limit_shed
  + s.Stats.s_retry_shed + s.Stats.s_net_shed

(* The three transport conservation laws the chaos oracle enforces,
   checked directly on a summary. *)
let check_net_conservation (s : Stats.summary) =
  check_int "every transmitted copy lands in one bucket"
    (s.Stats.s_net_sends + s.Stats.s_net_dups)
    (s.Stats.s_net_deliveries + s.Stats.s_net_drops + s.Stats.s_net_partition_drops);
  check_int "every delivery is fresh or a dedup hit" s.Stats.s_net_deliveries
    (s.Stats.s_net_fresh + s.Stats.s_net_dedup_hits);
  check_int "every ack lands in one bucket" s.Stats.s_net_acks
    (s.Stats.s_net_ack_deliveries + s.Stats.s_net_ack_drops + s.Stats.s_net_gray_drops)

let test_net_parse_roundtrip () =
  let spec =
    "seed=7,delay=80:20,drop=0.1,dup=0.2,reorder=0.05,gray=0.02,partition=4000:9000:2,\
     timeout=5000,resends=3,dedup=0,window=64"
  in
  let p = Net.parse spec in
  check_true "clauses land in the right fields"
    (p.Net.np_drop = 0.1 && p.Net.np_dup = 0.2 && p.Net.np_jitter_us = 20.0
   && p.Net.np_window = 64
    && (not p.Net.np_dedup)
    && p.Net.np_partition = Some (4000.0, 9000.0, [ 2 ]));
  check_true "round-trip through to_spec" (Net.parse (Net.to_spec p) = p);
  check_true "defaults stay short" (Net.to_spec Net.none = "seed=0,delay=0:0,drop=0,dup=0,reorder=0,gray=0");
  let msg f = match f () with _ -> "" | exception Invalid_argument m -> m in
  (* Both plan languages reject unknown keys listing their own full valid
     set — the shared clause helper at work. *)
  let nm = msg (fun () -> Net.parse "delai=80") in
  check_true "net plan names the bad key" (contains nm "delai");
  check_true "net plan lists its valid keys"
    (contains nm "partition" && contains nm "window" && contains nm "gray");
  let fm = msg (fun () -> Faults.parse "kernal=0.1") in
  check_true "fault plan names the bad key" (contains fm "kernal");
  check_true "fault plan lists its valid keys"
    (contains fm "straggler" && contains fm "poison" && contains fm "flaky");
  (* A lossy plan with no timeout could never terminate lost requests. *)
  let vm = msg (fun () -> Net.parse "drop=0.1,timeout=0") in
  check_true "lossy plan requires a timeout" (contains vm "timeout")

let test_net_exactly_once () =
  let n = 160 in
  let arrivals = cluster_arrivals ~n 17 in
  let plan = Net.parse "seed=5,delay=150:60,drop=0.08,dup=0.3,timeout=3000,resends=3" in
  let report =
    Cluster.simulate
      { Cluster.default_config with Cluster.c_replicas = 3; Cluster.c_net = Some plan }
      ~arrivals ~payload:Fun.id
      ~executors:[| ok_exec; ok_exec; ok_exec |]
  in
  let st = report.Cluster.cluster_stats in
  let s = Stats.summarize st in
  check_int "every request terminates exactly once" n (net_terminals s);
  check_int "offered matches the arrival count" n s.Stats.s_offered;
  check_true "duplication and loss actually fired"
    (s.Stats.s_net_dups > 0 && s.Stats.s_net_drops > 0 && s.Stats.s_net_timeouts > 0);
  check_true "the dedup window absorbed duplicates" (s.Stats.s_net_dedup_hits > 0);
  check_net_conservation s;
  let ids = List.map (fun r -> r.Stats.r_id) st.Stats.records in
  check_int "no request id completed twice" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_net_partition_failover_deterministic () =
  (* Replica 2 is cut off mid-run; dispatch must fail over to the
     surviving replicas until the heal, then the whole run must replay
     byte-identically. *)
  let run () =
    let arrivals = cluster_arrivals ~n:160 21 in
    let plan = Net.parse "seed=9,delay=100,partition=5000:20000:2,timeout=2000,resends=1" in
    Cluster.simulate
      { Cluster.default_config with Cluster.c_replicas = 3; Cluster.c_net = Some plan }
      ~arrivals ~payload:Fun.id
      ~executors:[| ok_exec; ok_exec; ok_exec |]
  in
  let report = run () in
  let s = Stats.summarize report.Cluster.cluster_stats in
  check_int "every request terminates exactly once" 160 (net_terminals s);
  check_true "the cut was detected" (s.Stats.s_net_link_downs >= 1);
  check_true "the link healed" (s.Stats.s_net_heals >= 1);
  check_true "work still completes through the partition"
    (s.Stats.s_completed >= 150);
  check_net_conservation s;
  let json r =
    Json.to_string
      (Json.Obj
         (("cluster", Stats.summary_to_json (Stats.summarize r.Cluster.cluster_stats))
         :: List.map
              (fun v ->
                ( Fmt.str "replica%d" v.Cluster.rv_id,
                  Stats.summary_to_json (Stats.summarize v.Cluster.rv_stats) ))
              r.Cluster.replica_views))
  in
  Alcotest.(check string) "partition/heal run replays byte-identically" (json report)
    (json (run ()))

let test_net_deadline_shed () =
  (* Completed requests teach the EWMA the link costs ~800us one way; a
     dropped request's resend fires after the 3ms timeout, by which point
     the remaining 500us of budget cannot cover the transit — the sender
     sheds at the resend instead of wasting the transmit. *)
  let n = 60 in
  let arrivals = cluster_arrivals ~n ~rate:2000.0 23 in
  let plan = Net.parse "seed=3,delay=800,drop=0.3,timeout=3000,resends=3" in
  let report =
    Cluster.simulate
      { Cluster.default_config with
        Cluster.c_replicas = 2;
        Cluster.c_net = Some plan;
        Cluster.c_server =
          { Server.default_config with Server.deadline_us = Some 3500.0 } }
      ~arrivals ~payload:Fun.id
      ~executors:[| ok_exec; ok_exec |]
  in
  let s = Stats.summarize report.Cluster.cluster_stats in
  check_int "every request terminates exactly once" n (net_terminals s);
  check_true "the sender shed doomed dispatches" (s.Stats.s_net_shed > 0);
  check_net_conservation s

let test_net_disarmed_identity () =
  (* c_net = Some Net.none must take the direct-call path: byte-identical
     to c_net = None (no RNG draws, no schedules, no counters). *)
  let arrivals = cluster_arrivals ~n:150 27 in
  let run net =
    let report =
      Cluster.simulate
        { Cluster.default_config with Cluster.c_replicas = 3; Cluster.c_net = net }
        ~arrivals ~payload:Fun.id
        ~executors:[| ok_exec; straggler_exec ~every:7 ~mult:20.0 (); ok_exec |]
    in
    Json.to_string (Stats.summary_to_json (Stats.summarize report.Cluster.cluster_stats))
  in
  Alcotest.(check string) "disarmed plan is byte-identical to no plan" (run None)
    (run (Some Net.none))

let test_net_naive_reexecutes () =
  (* Same transport, dedup on vs off: naive resend must re-execute the
     duplicated deliveries (more fresh executions for the same work),
     while exactly-once absorbs every one in the idempotency window. *)
  let arrivals = cluster_arrivals ~n:160 31 in
  let plan = Net.parse "seed=5,delay=200:80,drop=0.05,dup=0.4,timeout=3000,resends=3" in
  let run dedup =
    let report =
      Cluster.simulate
        { Cluster.default_config with
          Cluster.c_replicas = 3;
          Cluster.c_net = Some { plan with Net.np_dedup = dedup } }
        ~arrivals ~payload:Fun.id
        ~executors:[| ok_exec; ok_exec; ok_exec |]
    in
    Stats.summarize report.Cluster.cluster_stats
  in
  let exact = run true in
  let naive = run false in
  check_int "exactly-once terminates every request" 160 (net_terminals exact);
  check_int "naive resend terminates every request" 160 (net_terminals naive);
  check_true "exactly-once absorbed duplicates" (exact.Stats.s_net_dedup_hits > 0);
  check_int "naive never deduplicates" 0 naive.Stats.s_net_dedup_hits;
  check_true "naive re-executes what the window would have absorbed"
    (naive.Stats.s_net_fresh > exact.Stats.s_net_fresh);
  check_net_conservation exact;
  check_net_conservation naive

(* --- QCheck: the dedup window against an ordered-list model --- *)

(* Scripts over a small key space: note (a delivery executing) or remove
   (a shed delivery's nack). The model is the insertion-ordered list of
   live keys, bounded at capacity. *)
let gen_dedup_script =
  QCheck2.Gen.(
    pair (int_range 1 8) (list_size (int_range 1 150) (pair (int_range 0 20) bool)))

let dedup_window_prop (capacity, script) =
  let w = Net.Dedup.create ~capacity in
  let model = ref [] in
  List.iter
    (fun (k, is_remove) ->
      if is_remove then begin
        Net.Dedup.remove w k;
        model := List.filter (fun k' -> k' <> k) !model
      end
      else begin
        (* Duplicate delivery never double-executes: the window's verdict
           must agree with the model's liveness before the note. *)
        let fresh = not (Net.Dedup.mem w k) in
        let model_fresh = not (List.mem k !model) in
        if fresh <> model_fresh then
          QCheck2.Test.fail_reportf "key %d: window fresh=%b, model fresh=%b" k fresh
            model_fresh;
        Net.Dedup.note w k k;
        if model_fresh then begin
          model := !model @ [ k ];
          if List.length !model > capacity then model := List.tl !model
        end
      end;
      (* Eviction never forgets a live id: every key the model still holds
         must still be in the window, and the window holds nothing more. *)
      if not (List.for_all (Net.Dedup.mem w) !model) then
        QCheck2.Test.fail_reportf "a live key was evicted early";
      if Net.Dedup.length w <> List.length !model then
        QCheck2.Test.fail_reportf "window holds %d keys, model %d" (Net.Dedup.length w)
          (List.length !model))
    script;
  true

let suite =
  [
    Alcotest.test_case "event loop: order + clamp" `Quick test_event_loop_order;
    Alcotest.test_case "traffic: poisson" `Quick test_traffic_poisson;
    Alcotest.test_case "traffic: burst + bursty" `Quick test_traffic_burst_and_bursty;
    Alcotest.test_case "admission: shed at capacity" `Quick test_admission_shed;
    Alcotest.test_case "admission: deadline expiry" `Quick test_admission_deadline;
    Alcotest.test_case "admission: sweep expired on offer" `Quick
      test_admission_sweep_on_offer;
    Alcotest.test_case "batcher: fixed policy decisions" `Quick test_batcher_fixed_decide;
    Alcotest.test_case "batcher: timeout wake always flushes" `Quick
      test_batcher_timeout_wake_flushes;
    Alcotest.test_case "batcher: adaptive target" `Quick test_batcher_adaptive_target;
    Alcotest.test_case "server: timeout fires partial batch" `Quick test_timeout_partial_batch;
    Alcotest.test_case "server: queue-full shedding" `Quick test_queue_full_shedding;
    Alcotest.test_case "server: deadline drops" `Quick test_deadline_drop;
    Alcotest.test_case "server: burst coalesces into full batches" `Quick
      test_burst_batching_invariant;
    Alcotest.test_case "server: deterministic replay" `Quick test_simulation_deterministic;
    Alcotest.test_case "ft: transient faults retry to completion" `Quick
      test_ft_retry_transient;
    Alcotest.test_case "ft: bisection isolates the poison request" `Quick
      test_ft_bisection_isolates_poison;
    Alcotest.test_case "ft: circuit breaker opens, sheds, probes closed" `Quick
      test_ft_circuit_breaker;
    Alcotest.test_case "ft: OOM shrinks the batch cap" `Quick test_ft_oom_shrinks_batches;
    Alcotest.test_case "resilience: retry-budget token bucket" `Quick test_budget_tokens;
    Alcotest.test_case "resilience: AIMD limiter" `Quick test_limiter_aimd;
    Alcotest.test_case "resilience: brownout dwell + hysteresis" `Quick
      test_brownout_dwell_hysteresis;
    Alcotest.test_case "resilience: eager sweep counts expiry once" `Quick
      test_admission_eager_sweep_counts_once;
    Alcotest.test_case "resilience: exhausted retry budget sheds" `Quick
      test_retry_budget_sheds;
    Alcotest.test_case "resilience: limiter sheds a burst at the door" `Quick
      test_limiter_sheds_burst;
    Alcotest.test_case "resilience: brownout engages and restores" `Quick
      test_brownout_engage_restore;
    Alcotest.test_case "resilience: armed-but-idle is byte-identical" `Quick
      test_resilience_idle_matches_legacy;
    Alcotest.test_case "ft: queue pressure degrades service" `Quick
      test_ft_pressure_degradation;
    qtest ~count:300 "admission: conservation + EDF order under random scripts"
      gen_admission_script admission_prop;
    Alcotest.test_case "event loop: non-finite times rejected" `Quick
      test_event_loop_nonfinite;
    Alcotest.test_case "event loop: negative delay counted as clamped" `Quick
      test_event_loop_negative_delay_clamped;
    qtest ~count:300 "event loop: heap dispatches identically to Map reference"
      gen_event_script event_loop_backend_prop;
    qtest ~count:300 "admission: EDF heap pops identically to sorted-list reference"
      gen_admission_backend_script admission_backend_prop;
    Alcotest.test_case "admission: O(1) counters stay consistent" `Quick
      test_admission_counters;
    Alcotest.test_case "stats: reservoir percentiles within error bound" `Quick
      test_stats_reservoir_error;
    Alcotest.test_case "stats: exact below the streaming threshold" `Quick
      test_stats_exact_below_threshold;
    Alcotest.test_case "cluster: failover keeps goodput >= 99%" `Quick
      test_cluster_failover_goodput;
    Alcotest.test_case "cluster: hedging cuts straggler p99" `Quick
      test_cluster_hedging_p99;
    Alcotest.test_case "cluster: per-request-id accounting" `Quick
      test_cluster_request_accounting;
    Alcotest.test_case "cluster: deterministic replay" `Quick test_cluster_deterministic;
    Alcotest.test_case "cluster: 1 replica == single server" `Quick
      test_cluster_single_replica_equivalence;
    Alcotest.test_case "integrity: audit intercepts corruption" `Quick
      test_audit_intercepts_corruption;
    Alcotest.test_case "integrity: quarantine contains a dirty replica" `Quick
      test_cluster_quarantine_contains_corruption;
    Alcotest.test_case "integrity: clean probes re-admit a flaky replica" `Quick
      test_cluster_quarantine_readmits_after_clean_probes;
    Alcotest.test_case "integrity: audited cluster deterministic" `Quick
      test_cluster_audit_deterministic;
    Alcotest.test_case "integrity: counters gated off legacy output" `Quick
      test_integrity_counters_gated;
    Alcotest.test_case "serve_model: deterministic report" `Quick
      test_serve_model_deterministic;
    Alcotest.test_case "serve_model: adaptive beats batch1" `Quick test_adaptive_beats_batch1;
    Alcotest.test_case "serve_model: goodput under 5% kernel faults" `Quick
      test_serve_model_goodput_under_faults;
    Alcotest.test_case "serve_model: poison request isolated end to end" `Quick
      test_serve_model_poison_isolated;
    Alcotest.test_case "serve_model: faulty run deterministic" `Quick
      test_serve_model_faulty_deterministic;
    Alcotest.test_case "serve_model: audited corruption end to end" `Quick
      test_serve_model_audited_corruption;
    Alcotest.test_case "models: degraded variants wired" `Quick test_degraded_variant_wired;
    Alcotest.test_case "stats: percentile edge cases" `Quick test_percentile_edges;
    Alcotest.test_case "stats: sorted percentiles agree with per-call sort" `Quick
      test_percentile_sorted_agreement;
    Alcotest.test_case "event loop: debug dispatch-order assertion" `Quick
      test_event_loop_debug_order_check;
    qtest ~count:100 "replica: health transitions never skip the probe"
      gen_verdict_tape replica_health_prop;
    Alcotest.test_case "cluster: hedge estimator warm-up boundary" `Quick
      test_hedge_warmup_boundary;
    Alcotest.test_case "obs: serving never clamps schedules" `Quick
      test_no_clamped_schedules_in_serving;
    Alcotest.test_case "obs: trace deterministic + full lifecycle coverage" `Quick
      test_trace_deterministic_and_covering;
    Alcotest.test_case "obs: dropped requests reach terminal trace events" `Quick
      test_trace_faulty_coverage;
    Alcotest.test_case "obs: null tracer is a no-op" `Quick test_trace_null_is_noop;
    Alcotest.test_case "obs: metrics registry" `Quick test_metrics_registry;
    Alcotest.test_case "obs: serve metrics mirror the summary" `Quick
      test_serve_metrics_end_to_end;
    Alcotest.test_case "obs: JSON parse round-trip" `Quick test_json_parse_roundtrip;
    Alcotest.test_case "net: plan parse round-trip + shared key errors" `Quick
      test_net_parse_roundtrip;
    Alcotest.test_case "net: exactly-once under dup+drop+resend" `Quick
      test_net_exactly_once;
    Alcotest.test_case "net: partition failover + heal, deterministic" `Quick
      test_net_partition_failover_deterministic;
    Alcotest.test_case "net: sender sheds doomed dispatches" `Quick test_net_deadline_shed;
    Alcotest.test_case "net: disarmed plan byte-identical to none" `Quick
      test_net_disarmed_identity;
    Alcotest.test_case "net: naive resend re-executes, exactly-once absorbs" `Quick
      test_net_naive_reexecutes;
    qtest ~count:500 "net: dedup window vs ordered-list model" gen_dedup_script
      dedup_window_prop;
  ]
