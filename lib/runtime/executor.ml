(** Batched execution of scheduled node batches on the simulated device.

    For every batched argument position the executor checks whether the
    inputs lie contiguously in device memory. If not, it either marks the
    kernel's first launch as reading through an index array (gather fusion,
    §5.2) or issues an explicit gather kernel first (DyNet's approach, and
    ACROBAT with gather fusion disabled). Batch outputs are allocated as one
    contiguous slab per output slot — which is why iterative models tend to
    have contiguous inputs on the next step. *)

open Value
open Acrobat_tensor
module Device = Acrobat_device.Device
module Memory = Acrobat_device.Memory
module Cost_model = Acrobat_device.Cost_model
open Acrobat_compiler

type policy = {
  gather_fusion : bool;
  quality : int -> float;  (** Auto-scheduled quality per kernel id. *)
  compute_values : bool;
      (** When false, kernels only do accounting: shapes/addresses flow but
          tensor values are never produced (used by large benchmarks;
          tensor-dependent control flow is emulated per §E.1). *)
  detect_dynamic_sharing : bool;
      (** Treat pointer-identical batched arguments as shared (DyNet's
          runtime check); statically generated kernels do not do this. *)
}

let arg_out nd pos =
  match handle_out nd.args.(pos) with
  | Some o -> o
  | None ->
    let dep =
      match nd.args.(pos) with
      | Hnode (m, _) ->
        Fmt.str "dep node %d kernel %s phase %d depth %d" m.id m.kernel.Kernel.name m.phase
          m.depth
      | Hmat _ -> "materialized?"
    in
    fail
      "kernel %s: argument %d of node %d (phase %d depth %d) not materialized (scheduling \
       bug; %s)"
      nd.kernel.Kernel.name pos nd.id nd.phase nd.depth dep

(** Execute one batch (same signature, same kernel). *)
let exec_batch (device : Device.t) (policy : policy) ~(rand_for : int -> Rng.t)
    (batch : node list) : unit =
  let nodes = Array.of_list batch in
  let n0 = nodes.(0) in
  let kernel = n0.kernel in
  let scattered = ref false in
  let arg_shared = Array.make kernel.Kernel.nargs false in
  (* Per-argument gather handling. *)
  for pos = 0 to kernel.Kernel.nargs - 1 do
    let outs = Array.map (fun nd -> arg_out nd pos) nodes in
    let statically_shared = kernel.Kernel.roles.(pos) = Kernel.Shared in
    let dynamically_shared =
      (* A fully dynamic system detects pointer-identical arguments at
         batch time; a static system has already compiled the decision. *)
      policy.detect_dynamic_sharing
      && Array.length outs > 0
      && Array.for_all (fun (o : out) -> o.addr = outs.(0).addr) outs
    in
    arg_shared.(pos) <- statically_shared || dynamically_shared;
    if not arg_shared.(pos) then begin
      let chunks = Array.to_list (Array.map (fun o -> o.addr, out_elems o) outs) in
      if not (Memory.contiguous chunks) then begin
        if policy.gather_fusion then scattered := true
        else begin
          let elems = List.fold_left (fun acc (_, e) -> acc + e) 0 chunks in
          let bytes = elems * Cost_model.bytes_per_elem in
          ignore (Device.launch_gather device ~bytes ~elems)
        end
      end
    end
  done;
  (* Launch the kernel's groups; only the first reads the (possibly
     scattered) batch inputs — later groups read intermediates the earlier
     launches produced contiguously. *)
  let batch_group_flops =
    Array.fold_left
      (fun acc nd -> List.map2 ( +. ) acc nd.group_flops)
      (List.map (fun _ -> 0.0) n0.group_flops)
      nodes
  in
  (* Internal traffic sums per instance; argument reads count once per
     batch for shared tensors (read once, cached) and per instance for
     batched inputs. *)
  let nbatch = float_of_int (Array.length nodes) in
  let arg_bytes pos =
    float_of_int
      (Shape.numel (Value.handle_shape n0.args.(pos)) * Cost_model.bytes_per_elem)
  in
  let batch_group_bytes =
    Array.fold_left
      (fun acc nd -> List.map2 ( +. ) acc nd.group_bytes)
      (List.map (fun _ -> 0.0) n0.group_bytes)
      nodes
    |> List.map2
         (fun reads internal ->
           List.fold_left
             (fun acc pos ->
               acc +. (arg_bytes pos *. if arg_shared.(pos) then 1.0 else nbatch))
             internal reads)
         (Kernel.group_arg_reads kernel)
  in
  List.iteri
    (fun gi flops ->
      Device.launch_kernel device ~quality:(policy.quality kernel.Kernel.id)
        ~scattered_inputs:(!scattered && gi = 0) ~flops
        ~bytes:(List.nth batch_group_bytes gi))
    batch_group_flops;
  Device.note_batch device;
  if Array.length nodes = 1 then Device.note_unbatched device;
  (* Allocate outputs: one contiguous slab per output slot. *)
  let out_arity = Kernel.out_arity kernel in
  let node_outs = Array.map (fun _nd -> Array.make out_arity None) nodes in
  for slot = 0 to out_arity - 1 do
    let total =
      Array.fold_left (fun acc (nd : node) -> acc + Shape.numel nd.out_shapes.(slot)) 0 nodes
    in
    let base = Device.alloc device ~elems:total in
    let cursor = ref base in
    Array.iteri
      (fun i (nd : node) ->
        let shape = nd.out_shapes.(slot) in
        node_outs.(i).(slot) <- Some { tensor = None; addr = !cursor; shape };
        cursor := !cursor + Shape.numel shape)
      nodes
  done;
  (* Concrete values, when requested. On a silently-corrupting attempt
     (fault injection, {!Device.corrupting}) every kernel result is
     deterministically perturbed — no exception, no flag on the result:
     the wrong values just flow downstream, which is exactly the failure
     the audit layer exists to catch. *)
  let corrupting = policy.compute_values && Device.corrupting device in
  let perturb t =
    if Tensor.numel t = 0 then t
    else begin
      let c = Tensor.copy t in
      Tensor.set c 0 (Tensor.get c 0 +. 1.0);
      c
    end
  in
  if policy.compute_values then
    Array.iteri
      (fun i (nd : node) ->
        let args =
          Array.mapi
            (fun pos _ ->
              match (arg_out nd pos).tensor with
              | Some t -> t
              | None ->
                fail "kernel %s: value computation requested but argument %d has no value"
                  nd.kernel.Kernel.name pos)
            nd.args
        in
        let results = Kernel.execute ~rand:(rand_for nd.instance) nd.kernel args in
        let results = if corrupting then Array.map perturb results else results in
        Array.iteri
          (fun slot t ->
            match node_outs.(i).(slot) with
            | Some o -> o.tensor <- Some t
            | None -> assert false)
          results)
      nodes;
  Array.iteri
    (fun i nd ->
      nd.outs <- Some (Array.map (function Some o -> o | None -> assert false) node_outs.(i)))
    nodes
