(** One member of a serving cluster: a device behind its own admission
    queue, batcher and recovery machinery, coordinating with the cluster
    through callbacks instead of owning terminal request accounting.

    A replica reuses the single server's per-batch resolution state machine
    (retry with seeded backoff jitter, bisection to isolate poison, OOM
    batch-cap shrinking, pressure degradation — see {!Server}), with two
    structural differences:

    - {e Terminal outcomes are reported, not owned.} Completions, expiries,
      poison drops and cancellations flow to the cluster through
      {!callbacks}, which keeps per-request-id accounting (a hedged request
      has several copies; only the first completion counts) in one place.
      The replica still records everything {e it} executed into its own
      {!Stats.t}, so per-replica utilization stays observable.
    - {e The circuit breaker is replaced by failover.} Where the single
      server opens a breaker and sheds arrivals, a replica that crosses the
      failure threshold (or the stricter consecutive-reset threshold) goes
      {!Down}: it aborts the in-flight resolution, drains its queue, and
      hands every unresolved request back to the cluster for re-dispatch to
      healthy peers. After the cooldown it turns {!Probing} and the cluster
      routes it a single live request; success re-admits it.

    Determinism: all state transitions run on the shared virtual
    {!Event_loop}; the only RNG is the per-replica backoff jitter stream
    (seeded from the tolerance seed and the replica id, drawn only on
    retries). Stale events from an aborted resolution are fenced by an
    epoch counter rather than cancellation. *)

module Rng = Acrobat_tensor.Rng
module Trace = Acrobat_obs.Trace
module Json = Acrobat_obs.Json
module Resilience = Acrobat_resilience.Policy
module Budget = Acrobat_resilience.Budget
module Limiter = Acrobat_resilience.Limiter
module Brownout = Acrobat_resilience.Brownout

(** Health as the cluster's dispatcher sees it. {!Quarantined} is the
    integrity analogue of {!Down}: the replica is {e functionally} alive —
    batches complete without faults — but the audit scoreboard has caught it
    silently corrupting results, so it is fenced off exactly like a dead
    replica (drain + epoch-fenced requeue) until audited probes prove it
    clean again. *)
type health = Up | Probing | Down | Quarantined

let health_name = function
  | Up -> "up"
  | Probing -> "probing"
  | Down -> "down"
  | Quarantined -> "quarantined"

(** How the replica reports to the cluster. All callbacks fire at the
    virtual instant of the underlying event. *)
type 'a callbacks = {
  cb_live : 'a Admission.request -> bool;
      (** False when the request already completed elsewhere (hedge copy
          whose winner finished): the replica drops it unexecuted. *)
  cb_completed :
    replica:int ->
    'a Admission.request list ->
    size:int ->
    start_us:float ->
    done_us:float ->
    unit;  (** A batch finished; the cluster dedupes per request id. *)
  cb_cancelled : replica:int -> 'a Admission.request -> unit;
      (** A queued copy was dropped because its winner already completed. *)
  cb_expired : replica:int -> 'a Admission.request list -> unit;
      (** Requests dropped by this replica's queue as past deadline. *)
  cb_poisoned : replica:int -> 'a Admission.request -> unit;
      (** Bisection isolated this request as the deterministic batch-killer. *)
  cb_down : replica:int -> 'a Admission.request list -> unit;
      (** The replica failed over; these queued + in-flight requests drain
          back for re-dispatch. *)
  cb_quarantined : replica:int -> 'a Admission.request list -> unit;
      (** The corruption scoreboard quarantined the replica; these queued
          requests drain back for re-dispatch (in-flight results were
          already delivered — audit-corrected where caught — before
          containment fired). *)
  cb_retry_shed : replica:int -> 'a Admission.request list -> unit;
      (** The retry budget ran dry mid-resolution; these requests were shed
          instead of retried (never fires unless a budget is armed). *)
  cb_probe_ready : replica:int -> unit;
      (** Cooldown passed; the replica accepts a single probe request. *)
  cb_up : replica:int -> unit;  (** A probe succeeded; healthy again. *)
}

type 'a t = {
  id : int;
  loop : Event_loop.t;
  config : Server.config;
  reset_threshold : int;  (** Consecutive device resets that force failover. *)
  queue : 'a Admission.t;
  batcher : Batcher.t;
  stats : Stats.t;  (** Per-replica view: everything {e this} replica ran. *)
  execute : degraded:bool -> 'a list -> Server.exec_result;
  cb : 'a callbacks;
  auditor : 'a Server.auditor option;
  audit_rng : Rng.t;  (** Audit sampling; drawn from only when an auditor is armed. *)
  ft_rng : Rng.t;  (** Backoff jitter; drawn from only on retries. *)
  policy_max_batch : int;
  mutable cur_max_batch : int;  (** Effective cap; shrinks under OOM. *)
  mutable degraded : bool;
  mutable device_busy : bool;
  mutable busy_until_us : float;  (** Estimated device-free time (for LEL dispatch). *)
  mutable health : health;
  mutable consecutive_failures : int;
  mutable consecutive_resets : int;
  mutable health_score : float;  (** EWMA of batch-attempt success in [0, 1]. *)
  mutable corrupt_score : float;
      (** EWMA of audit {e mismatch} in [0, 1]; crossing the threshold
          quarantines the replica. Fed only by audit verdicts, so with no
          auditor it stays 0 forever. *)
  mutable quarantine_probing : bool;
      (** Probing to exit quarantine (vs failover): probe batches are
          force-audited and re-admission needs consecutive clean verdicts —
          a merely-completing probe proves liveness, not integrity. *)
  mutable clean_probes : int;  (** Consecutive clean audited probes so far. *)
  mutable outstanding : 'a Admission.request list;
      (** The in-flight batch's unresolved requests; requeued on failover. *)
  mutable epoch : int;  (** Bumped on failover; stale continuations no-op. *)
  tracer : Trace.t;
      (** Shared cluster tracer; this replica emits under pid [id + 1]
          (pid 0 is the dispatcher). *)
  (* Per-replica overload-resilience mechanisms; [None] (no-ops) unless
     armed via [config.resilience]. *)
  budget : Budget.t option;
  limiter : Limiter.t option;
  brownout : Brownout.t option;
}

(* Trace pid convention (cluster runs): dispatcher-level events are pid 0,
   replica [i]'s device and batch spans are pid [i + 1]. *)
let trace_pid t = t.id + 1

let score_alpha = 0.2

(* Corruption-scoreboard constants. The EWMA is fed 1.0 per audit mismatch
   and 0.0 per clean audit; with alpha 0.3 and threshold 0.5, one mismatch
   (score 0.3) is tolerated as a possible one-off upset while two in a row
   (0.3 -> 0.51) quarantine the replica. Re-admission needs
   [quarantine_clean_probes] consecutive clean force-audited probes. *)
let corrupt_alpha = 0.3
let corrupt_threshold = 0.5
let quarantine_clean_probes = 2

let create ?(tracer = Trace.null) ?auditor ~id ~loop ~(config : Server.config)
    ~reset_threshold ~(execute : degraded:bool -> 'a list -> Server.exec_result)
    ~(cb : 'a callbacks) () : 'a t =
  let pmax = Server.policy_max_batch config.Server.policy in
  let rs = config.Server.resilience in
  {
    id;
    loop;
    config;
    reset_threshold;
    queue =
      Admission.create
        ~eager_sweep:(Resilience.active rs)
        ~capacity:config.Server.queue_capacity ();
    batcher = Batcher.create ~cost:config.Server.cost config.Server.policy;
    stats = Stats.create ();
    execute;
    cb;
    auditor;
    audit_rng =
      Rng.create
        (match auditor with
        | Some a -> a.Server.au_seed + (id * 104729)
        | None -> 0);
    (* Replica 0 draws the exact stream the single server would, which is
       what makes a 1-replica cluster byte-identical to it. *)
    ft_rng = Rng.create (config.Server.tolerance.Server.ft_seed + (id * 7919));
    policy_max_batch = pmax;
    cur_max_batch = pmax;
    degraded = false;
    device_busy = false;
    busy_until_us = 0.0;
    health = Up;
    consecutive_failures = 0;
    consecutive_resets = 0;
    health_score = 1.0;
    corrupt_score = 0.0;
    quarantine_probing = false;
    clean_probes = 0;
    outstanding = [];
    epoch = 0;
    tracer;
    budget = Option.map (fun frac -> Budget.create ~frac) rs.Resilience.rs_retry_budget;
    limiter =
      Option.map
        (fun target_us -> Limiter.create ~target_us ())
        rs.Resilience.rs_target_delay_us;
    brownout = Option.map Brownout.create rs.Resilience.rs_brownout;
  }

let id t = t.id
let health t = t.health
let health_score t = t.health_score
let corrupt_score t = t.corrupt_score
let stats t = t.stats
let admission t = t.queue
let queue_length t = Admission.length t.queue
let is_busy t = t.device_busy

(** Fencing epoch: bumped on every failover, so each Down transition is
    observable and stale continuations from the aborted resolution no-op.
    Exposed for the health-transition property tests. *)
let epoch t = t.epoch

(** Expected time for one more request to clear this replica: remaining
    busy time plus the batcher's learned latency for the queue it would
    join. The least-expected-latency dispatch policy minimizes this. *)
let expected_latency_us t ~now_us =
  let residual = if t.device_busy then Float.max 0.0 (t.busy_until_us -. now_us) else 0.0 in
  residual
  +. Batcher.estimated_latency_us t.batcher ~batch:(Admission.length t.queue + 1)

(** Can the dispatcher hand this replica a probe right now? One request at
    a time: an occupied probing replica already has its verdict pending. *)
let wants_probe t =
  t.health = Probing && (not t.device_busy) && Admission.is_empty t.queue

(* Feed the queue-delay signal into the limiter's AIMD loop and the
   brownout controller, exactly as the single server does at each batch
   launch. A no-op unless the resilience layer armed one of them. *)
let observe_pressure (t : 'a t) ~now_us =
  match t.limiter, t.brownout with
  | None, None -> ()
  | _ ->
    let delay_us =
      match Admission.oldest_arrival_us t.queue with
      | Some t0 -> now_us -. t0
      | None -> 0.0
    in
    Option.iter (fun lim -> Limiter.observe lim ~delay_us) t.limiter;
    Option.iter
      (fun b ->
        match Brownout.observe b ~now_us ~delay_us with
        | Brownout.Stay -> ()
        | Brownout.Engage ->
          t.stats.Stats.brownouts <- t.stats.Stats.brownouts + 1;
          Trace.instant t.tracer ~name:"brownout_degrade" ~cat:"resilience"
            ~pid:(trace_pid t) ~tid:0 ~ts_us:now_us
            ~args:[ "delay_us", Json.Float delay_us ]
        | Brownout.Restore ->
          t.stats.Stats.brownout_restores <- t.stats.Stats.brownout_restores + 1;
          Trace.instant t.tracer ~name:"brownout_restore" ~cat:"resilience"
            ~pid:(trace_pid t) ~tid:0 ~ts_us:now_us
            ~args:[ "delay_us", Json.Float delay_us ])
      t.brownout

let browned_out (t : 'a t) =
  match t.brownout with Some b -> Brownout.engaged b | None -> false

let note_attempt t ~ok =
  t.health_score <-
    ((1.0 -. score_alpha) *. t.health_score) +. (score_alpha *. if ok then 1.0 else 0.0)

(* OOM is deterministic for a given batch size: halve the cap before the
   batch is re-resolved, exactly as the single server does. *)
let shrink_batches t =
  t.degraded <- true;
  t.cur_max_batch <- max t.config.Server.tolerance.Server.min_max_batch (t.cur_max_batch / 2)

let note_success t =
  t.consecutive_failures <- 0;
  t.consecutive_resets <- 0;
  note_attempt t ~ok:true;
  (* A quarantine probe proves nothing by merely completing — corruption is
     silent — so re-admission from quarantine is decided by the audit
     verdicts (see [note_audit]), never here. *)
  if t.health = Probing && not t.quarantine_probing then begin
    t.health <- Up;
    t.stats.Stats.readmitted <- t.stats.Stats.readmitted + 1;
    Trace.instant t.tracer ~name:"readmit" ~cat:"cluster" ~pid:(trace_pid t) ~tid:0
      ~ts_us:(Event_loop.now t.loop);
    t.cb.cb_up ~replica:t.id
  end;
  if t.degraded then begin
    let tol = t.config.Server.tolerance in
    let occupancy =
      float_of_int (Admission.length t.queue)
      /. float_of_int t.config.Server.queue_capacity
    in
    if occupancy <= tol.Server.degrade_low_frac then begin
      if t.cur_max_batch < t.policy_max_batch then
        t.cur_max_batch <- min t.policy_max_batch (t.cur_max_batch * 2);
      if t.cur_max_batch >= t.policy_max_batch then t.degraded <- false
    end
  end

(* --- The launch / recovery state machine --- *)

(* Mirrors Server.maybe_launch, with health gating: Down and Quarantined
   replicas never launch; Probing replicas launch a single-request probe. *)
let rec maybe_launch (t : 'a t) =
  if
    (not t.device_busy)
    && t.health <> Down && t.health <> Quarantined
    && not (Admission.is_empty t.queue)
  then begin
    let now_us = Event_loop.now t.loop in
    match t.health with
    | Down | Quarantined -> ()
    | Probing -> flush t ~now_us ~limit:1
    | Up -> (
      match
        Batcher.decide t.batcher ~now_us ~queue_len:(Admission.length t.queue)
          ~oldest_arrival_us:(Option.get (Admission.oldest_arrival_us t.queue))
      with
      | Batcher.Wait_until at when at > now_us ->
        Event_loop.schedule t.loop ~at (fun () -> maybe_launch t)
      | Batcher.Wait_until _ ->
        flush t ~now_us ~limit:(min (Admission.length t.queue) t.cur_max_batch)
      | Batcher.Flush limit -> flush t ~now_us ~limit:(min limit t.cur_max_batch))
  end

and flush (t : 'a t) ~now_us ~limit =
  observe_pressure t ~now_us;
  let live, expired = Admission.take_with_expired t.queue ~now_us ~limit in
  if expired <> [] then t.cb.cb_expired ~replica:t.id expired;
  (* Lazy hedge cancellation: copies whose winner already completed are
     dropped here, unexecuted — the cheap form of "cancel". *)
  let live, cancelled = List.partition t.cb.cb_live live in
  List.iter (fun r -> t.cb.cb_cancelled ~replica:t.id r) cancelled;
  match live with
  | [] -> maybe_launch t (* the queue may still hold work *)
  | batch ->
    t.device_busy <- true;
    t.outstanding <- batch;
    resolve t batch ~k:(fun () ->
        t.device_busy <- false;
        t.outstanding <- [];
        maybe_launch t)

(* Drive [batch] to a resolution, reporting terminal outcomes to the
   cluster. Scheduled continuations are fenced by the epoch captured here:
   a failover bumps the epoch, so events from the aborted resolution no-op
   instead of corrupting the next one. *)
and resolve (t : 'a t) (batch : 'a Admission.request list) ~(k : unit -> unit) =
  let tol = t.config.Server.tolerance in
  let epoch = t.epoch in
  let guard f () = if t.epoch = epoch then f () in
  (* Extract payloads once per resolution, not per retry attempt (the
     batch is fixed for the whole retry/backoff cycle). *)
  let payloads = List.map (fun (r : _ Admission.request) -> r.Admission.rq_payload) batch in
  let rec attempt ~retries_left ~backoff_us () =
    let now_us = Event_loop.now t.loop in
    let degraded = t.degraded || browned_out t in
    (* Anchor the executor's fresh per-batch device clock at this attempt's
       launch time, on this replica's pid. *)
    Trace.set_context t.tracer ~pid:(trace_pid t) ~tid:0 ~base_us:now_us;
    match t.execute ~degraded payloads with
    | Server.Exec_ok outcome ->
      let size = List.length batch in
      let done_us = now_us +. Float.max 0.0 outcome.Server.ex_latency_us in
      t.busy_until_us <- done_us;
      Batcher.observe_batch t.batcher ~size ~latency_us:outcome.Server.ex_latency_us;
      Stats.note_batch t.stats ~size ~profiler:outcome.Server.ex_profiler;
      if degraded then
        t.stats.Stats.degraded_batches <- t.stats.Stats.degraded_batches + 1;
      if outcome.Server.ex_corrupted then
        t.stats.Stats.corrupted_batches <- t.stats.Stats.corrupted_batches + 1;
      Trace.complete t.tracer ~name:"batch" ~cat:"serve" ~pid:(trace_pid t) ~tid:0
        ~ts_us:now_us ~dur_us:outcome.Server.ex_latency_us
        ~args:[ "size", Json.Int size; "degraded", Json.Bool degraded ];
      (* Sampled (or, on quarantine probes, forced) audits decide each
         request's delivery: a mismatch swaps in the reference result and
         adds the re-execution latency. With no auditor this is draw-free
         and every delivery is the legacy one. *)
      let forced = t.quarantine_probing in
      let deliveries =
        List.mapi
          (fun i (r : _ Admission.request) ->
            ( r,
              Server.audit_request t.auditor ~audit_rng:t.audit_rng ~stats:t.stats
                ~forced ~outcome ~index:i r ))
          batch
      in
      List.iter
        (fun ((r : _ Admission.request), (d : Server.audit_delivery)) ->
          Server.note_delivery t.stats ~outcome d;
          if d.Server.ad_audited then
            Trace.instant t.tracer
              ~name:(if d.Server.ad_clean then "audit_ok" else "audit_mismatch")
              ~cat:"integrity" ~pid:(trace_pid t)
              ~tid:(Server.req_tid r.Admission.rq_id) ~ts_us:done_us
              ~args:[ "id", Json.Int r.Admission.rq_id ];
          Stats.record_fields t.stats ~id:r.Admission.rq_id
            ~arrival_us:r.Admission.rq_arrival_us ~start_us:now_us
            ~done_us:(done_us +. d.Server.ad_extra_us) ~batch_size:size;
          Trace.complete t.tracer ~name:"queue" ~cat:"request" ~pid:(trace_pid t)
            ~tid:(Server.req_tid r.Admission.rq_id) ~ts_us:r.Admission.rq_arrival_us
            ~dur_us:(now_us -. r.Admission.rq_arrival_us))
        deliveries;
      (* Report the completion at [done_us], not at launch: the cluster
         must consider these requests in flight until the device actually
         finishes, or a hedge could never outrun a straggling batch. *)
      Event_loop.schedule t.loop ~at:done_us
        (guard (fun () ->
             t.outstanding <-
               List.filter
                 (fun (r : _ Admission.request) -> not (List.memq r batch))
                 t.outstanding;
             (match t.auditor with
             | None ->
               t.cb.cb_completed ~replica:t.id batch ~size ~start_us:now_us ~done_us
             | Some _ ->
               (* Audited requests deliver later by their audit latency;
                  report per request so the cluster records true end-to-end
                  times. *)
               List.iter
                 (fun (r, (d : Server.audit_delivery)) ->
                   t.cb.cb_completed ~replica:t.id [ r ] ~size ~start_us:now_us
                     ~done_us:(done_us +. d.Server.ad_extra_us))
                 deliveries);
             note_success t;
             (* Feed the verdicts to the corruption scoreboard only after
                the (audit-corrected) results left the replica: containment
                fences future work, never a delivery the audit saved. *)
             List.iter
               (fun (_, (d : Server.audit_delivery)) ->
                 if d.Server.ad_audited then note_audit t ~clean:d.Server.ad_clean)
               deliveries;
             k ()))
    | Server.Exec_fault f ->
      t.stats.Stats.fault_batches <- t.stats.Stats.fault_batches + 1;
      note_attempt t ~ok:false;
      t.consecutive_failures <- t.consecutive_failures + 1;
      if f.ef_reset then t.consecutive_resets <- t.consecutive_resets + 1;
      if f.ef_oom then shrink_batches t;
      let freed_us = now_us +. Float.max 0.0 f.ef_latency_us in
      t.busy_until_us <- freed_us;
      Trace.complete t.tracer ~name:"batch_fault" ~cat:"fault" ~pid:(trace_pid t) ~tid:0
        ~ts_us:now_us ~dur_us:f.ef_latency_us
        ~args:
          [
            "reason", Json.Str f.ef_reason;
            "transient", Json.Bool f.ef_transient;
            "size", Json.Int (List.length batch);
          ];
      let must_fail_over =
        t.health = Probing (* a failed probe downs the replica immediately *)
        || t.consecutive_failures >= tol.Server.breaker_threshold
        || t.consecutive_resets >= t.reset_threshold
      in
      if must_fail_over then
        Event_loop.schedule t.loop ~at:freed_us (guard (fun () -> go_down t))
      else if f.ef_transient && retries_left > 0 then begin
        let size = List.length batch in
        (* The retry-budget check precedes the jitter draw: with no budget
           configured the RNG stream is untouched relative to the
           budget-less replica, and a denied retry draws nothing. *)
        match t.budget with
        | Some b when not (Budget.try_spend b size) ->
          t.stats.Stats.retry_shed <- t.stats.Stats.retry_shed + size;
          t.outstanding <-
            List.filter
              (fun (r : _ Admission.request) -> not (List.memq r batch))
              t.outstanding;
          Event_loop.schedule t.loop ~at:freed_us
            (guard (fun () ->
                 t.cb.cb_retry_shed ~replica:t.id batch;
                 k ()))
        | budget ->
          if Option.is_some budget then
            t.stats.Stats.retried_requests <- t.stats.Stats.retried_requests + size;
          t.stats.Stats.retries <- t.stats.Stats.retries + 1;
          let jitter =
            1.0 +. (tol.Server.jitter_frac *. ((2.0 *. Rng.float t.ft_rng) -. 1.0))
          in
          let at = freed_us +. Float.max 0.0 (backoff_us *. jitter) in
          Trace.instant t.tracer ~name:"retry" ~cat:"fault" ~pid:(trace_pid t) ~tid:0
            ~ts_us:at
            ~args:[ "attempt", Json.Int (tol.Server.max_retries - retries_left + 1) ];
          Event_loop.schedule t.loop ~at
            (guard
               (attempt ~retries_left:(retries_left - 1)
                  ~backoff_us:(backoff_us *. tol.Server.backoff_mult)))
      end
      else Event_loop.schedule t.loop ~at:freed_us (guard (fun () -> bisect t batch ~k))
  in
  attempt ~retries_left:tol.Server.max_retries ~backoff_us:tol.Server.backoff_base_us ()

(* Binary fault isolation, as in the single server; the lone survivor of
   repeated failure is reported poisoned and dropped. *)
and bisect (t : 'a t) (batch : 'a Admission.request list) ~k =
  match batch with
  | [] -> k ()
  | [ r ] ->
    t.stats.Stats.poisoned <- t.stats.Stats.poisoned + 1;
    t.outstanding <- List.filter (fun r' -> not (r' == r)) t.outstanding;
    t.cb.cb_poisoned ~replica:t.id r;
    k ()
  | _ ->
    t.stats.Stats.bisections <- t.stats.Stats.bisections + 1;
    Trace.instant t.tracer ~name:"bisect" ~cat:"fault" ~pid:(trace_pid t) ~tid:0
      ~ts_us:(Event_loop.now t.loop)
      ~args:[ "size", Json.Int (List.length batch) ];
    let half = List.length batch / 2 in
    let left = List.filteri (fun i _ -> i < half) batch in
    let right = List.filteri (fun i _ -> i >= half) batch in
    resolve t left ~k:(fun () -> resolve t right ~k)

(* Failover: abort the in-flight resolution, drain the queue, hand every
   unresolved request back to the cluster, and schedule the re-admission
   probe window. *)
and go_down (t : 'a t) =
  let now_us = Event_loop.now t.loop in
  t.epoch <- t.epoch + 1;
  t.health <- Down;
  t.device_busy <- false;
  t.consecutive_failures <- 0;
  t.consecutive_resets <- 0;
  t.stats.Stats.breaker_opens <- t.stats.Stats.breaker_opens + 1;
  t.stats.Stats.failovers <- t.stats.Stats.failovers + 1;
  Trace.instant t.tracer ~name:"failover" ~cat:"cluster" ~pid:(trace_pid t) ~tid:0
    ~ts_us:now_us
    ~args:[ "replica", Json.Int t.id ];
  let queued, expired = Admission.drain t.queue ~now_us in
  if expired <> [] then t.cb.cb_expired ~replica:t.id expired;
  let requeue = t.outstanding @ queued in
  t.outstanding <- [];
  t.cb.cb_down ~replica:t.id requeue;
  let at = now_us +. t.config.Server.tolerance.Server.breaker_cooldown_us in
  Event_loop.schedule t.loop ~at (fun () ->
      if t.health = Down then begin
        t.health <- Probing;
        Trace.instant t.tracer ~name:"probe_ready" ~cat:"cluster" ~pid:(trace_pid t)
          ~tid:0
          ~ts_us:(Event_loop.now t.loop);
        t.cb.cb_probe_ready ~replica:t.id
      end)

(* --- Corruption containment --- *)

(* One audit verdict lands on the scoreboard. Crossing the mismatch
   threshold from Up quarantines; during quarantine probing, a mismatch
   re-quarantines immediately while consecutive clean verdicts re-admit. *)
and note_audit (t : 'a t) ~clean =
  t.corrupt_score <-
    ((1.0 -. corrupt_alpha) *. t.corrupt_score)
    +. (if clean then 0.0 else corrupt_alpha);
  match t.health with
  | Up when (not clean) && t.corrupt_score >= corrupt_threshold -> go_quarantine t
  | Probing when t.quarantine_probing ->
    if clean then begin
      t.clean_probes <- t.clean_probes + 1;
      if t.clean_probes >= quarantine_clean_probes then quarantine_restore t
    end
    else go_quarantine t
  | _ -> ()

(* Quarantine: structurally a failover (epoch fence, drain, requeue via the
   cluster, cooldown then probe), but triggered by integrity evidence on a
   replica that is otherwise completing batches happily — and exited only
   through force-audited probes, not a merely-successful one. *)
and go_quarantine (t : 'a t) =
  let now_us = Event_loop.now t.loop in
  t.epoch <- t.epoch + 1;
  t.health <- Quarantined;
  t.device_busy <- false;
  t.consecutive_failures <- 0;
  t.consecutive_resets <- 0;
  t.quarantine_probing <- false;
  t.clean_probes <- 0;
  t.stats.Stats.quarantines <- t.stats.Stats.quarantines + 1;
  Trace.instant t.tracer ~name:"quarantine" ~cat:"integrity" ~pid:(trace_pid t) ~tid:0
    ~ts_us:now_us
    ~args:[ "replica", Json.Int t.id; "score", Json.Float t.corrupt_score ];
  let queued, expired = Admission.drain t.queue ~now_us in
  if expired <> [] then t.cb.cb_expired ~replica:t.id expired;
  let requeue = t.outstanding @ queued in
  t.outstanding <- [];
  t.cb.cb_quarantined ~replica:t.id requeue;
  let at = now_us +. t.config.Server.tolerance.Server.breaker_cooldown_us in
  Event_loop.schedule t.loop ~at (fun () ->
      if t.health = Quarantined then begin
        t.health <- Probing;
        t.quarantine_probing <- true;
        t.clean_probes <- 0;
        Trace.instant t.tracer ~name:"quarantine_probe_ready" ~cat:"integrity"
          ~pid:(trace_pid t) ~tid:0
          ~ts_us:(Event_loop.now t.loop);
        t.cb.cb_probe_ready ~replica:t.id
      end)

and quarantine_restore (t : 'a t) =
  t.health <- Up;
  t.quarantine_probing <- false;
  t.clean_probes <- 0;
  t.corrupt_score <- 0.0;
  t.stats.Stats.quarantine_restores <- t.stats.Stats.quarantine_restores + 1;
  Trace.instant t.tracer ~name:"quarantine_restore" ~cat:"integrity" ~pid:(trace_pid t)
    ~tid:0
    ~ts_us:(Event_loop.now t.loop)
    ~args:[ "replica", Json.Int t.id ];
  t.cb.cb_up ~replica:t.id

(** How {!enqueue} disposed of an offered request; the cluster maps the two
    rejection flavours to distinct terminal outcomes. *)
type admit = Admitted | Shed_queue | Shed_limit

(** Credit this replica's retry budget for one fresh admitted request. The
    cluster calls it once per {e logical} request (not per copy), so hedge
    duplicates and failover requeues never inflate the budget and fleet-wide
    re-executions stay bounded by [frac * offered]. *)
let deposit_budget (t : 'a t) = Option.iter Budget.deposit t.budget

(** Offer a request to this replica's queue; any requests the full-queue
    sweep expired are reported through [cb_expired]. Schedules the launch
    check as a same-time event so simultaneous dispatches coalesce into one
    batch (same invariant as the single server). *)
let enqueue (t : 'a t) (r : 'a Admission.request) : admit =
  let now_us = Event_loop.now t.loop in
  Batcher.observe_arrival t.batcher ~now_us;
  match t.limiter with
  | Some lim when not (Limiter.admits lim ~queued:(Admission.length t.queue)) ->
    (* The adaptive concurrency limiter gates ahead of the bounded queue,
       as in the single server. *)
    t.stats.Stats.limit_shed <- t.stats.Stats.limit_shed + 1;
    Shed_limit
  | _ ->
    let admitted, swept = Admission.offer_swept t.queue ~now_us r in
    if swept <> [] then t.cb.cb_expired ~replica:t.id swept;
    if admitted then begin
      let tol = t.config.Server.tolerance in
      if
        (not t.degraded)
        && float_of_int (Admission.length t.queue)
           >= tol.Server.degrade_high_frac *. float_of_int t.config.Server.queue_capacity
      then t.degraded <- true;
      Event_loop.schedule t.loop ~at:now_us (fun () -> maybe_launch t);
      Admitted
    end
    else Shed_queue
