(** Bidirectional type checker and elaborator.

    Checking is mostly syntax-directed inference; expected types are
    propagated into positions that cannot infer on their own ([Nil], [Fn]
    bodies, match arms, ...). Elaboration rewrites arithmetic operators
    applied to tensors ([a + b]) into primitive tensor ops ([add(a, b)]),
    so downstream passes only ever see {!Ast.Prim} for tensor work. *)

exception Type_error of string

let fail fmt = Fmt.kstr (fun m -> raise (Type_error m)) fmt

type env = { vars : (string * Ty.t) list; globals : (string * Ty.t) list }

let lookup_var env x =
  match List.assoc_opt x env.vars with
  | Some t -> t
  | None -> fail "unbound variable %%%s" x

let lookup_global env g =
  match List.assoc_opt g env.globals with
  | Some t -> t
  | None -> fail "unbound global @%s" g

let bind env x t = { env with vars = (x, t) :: env.vars }

let def_signature (d : Ast.def) = Ty.Fn (List.map snd d.params, d.ret)

let is_tensor = function Ty.Tensor _ -> true | _ -> false

let binop_prim : Ast.binop -> Op.t option = function
  | Ast.Add -> Some Op.Add
  | Ast.Sub -> Some Op.Sub
  | Ast.Mul -> Some Op.Mul
  | Ast.Div -> Some Op.Div
  | Ast.Mod | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.And | Ast.Or -> None

(* Inference returns the elaborated expression along with its type. *)
let rec infer env (e : Ast.expr) : Ast.expr * Ty.t =
  match e with
  | Ast.Var x -> e, lookup_var env x
  | Ast.Global g -> e, lookup_global env g
  | Ast.Int_lit _ -> e, Ty.Int
  | Ast.Float_lit _ -> e, Ty.Float
  | Ast.Bool_lit _ -> e, Ty.Bool
  | Ast.Let (x, rhs, body) ->
    let rhs', trhs = infer env rhs in
    let body', tbody = infer (bind env x trhs) body in
    Ast.Let (x, rhs', body'), tbody
  | Ast.If (c, a, b) ->
    let c' = check env c Ty.Bool in
    let a', ta = infer env a in
    let b' = check env b ta in
    Ast.If (c', a', b'), ta
  | Ast.Prim (op, args) -> infer_prim env op args
  | Ast.Call (callee, args) -> begin
    let callee', tc = infer env callee in
    match tc with
    | Ty.Fn (tps, ret) ->
      if List.length tps <> List.length args then
        fail "call expects %d arguments, got %d" (List.length tps) (List.length args);
      let args' = List.map2 (fun a t -> check env a t) args tps in
      Ast.Call (callee', args'), ret
    | t -> fail "calling a non-function of type %a" Ty.pp t
  end
  | Ast.Fn (params, body) ->
    let env' = List.fold_left (fun e (x, t) -> bind e x t) env params in
    let body', tb = infer env' body in
    Ast.Fn (params, body'), Ty.Fn (List.map snd params, tb)
  | Ast.Match (scrut, cases) -> begin
    let scrut', ts = infer env scrut in
    let envs = case_envs env ts cases in
    (* Find one arm that infers, then check the others against it. *)
    let rec try_infer = function
      | [] -> fail "cannot infer the type of any match arm"
      | ((_, body), env_c) :: rest -> (
        try infer env_c body, rest with Type_error _ when rest <> [] -> try_infer rest)
    in
    let (_, t_arm), _ = try_infer (List.combine cases envs) in
    let cases' =
      List.map2 (fun (p, body) env_c -> p, check env_c body t_arm) cases envs
    in
    Ast.Match (scrut', cases'), t_arm
  end
  | Ast.Nil -> fail "cannot infer the element type of Nil (add context)"
  | Ast.Cons (h, t) ->
    let h', th = infer env h in
    let t' = check env t (Ty.List th) in
    Ast.Cons (h', t'), Ty.List th
  | Ast.Leaf v ->
    let v', tv = infer env v in
    Ast.Leaf v', Ty.Tree tv
  | Ast.Node (l, r) ->
    let l', tl = infer env l in
    let r' = check env r tl in
    (match tl with
    | Ty.Tree _ -> Ast.Node (l', r'), tl
    | t -> fail "Node children must be trees, got %a" Ty.pp t)
  | Ast.Tuple es ->
    let es', ts = List.split (List.map (infer env) es) in
    Ast.Tuple es', Ty.Tup ts
  | Ast.Proj (e0, k) -> begin
    let e0', t0 = infer env e0 in
    match t0 with
    | Ty.Tup ts when k < List.length ts -> Ast.Proj (e0', k), List.nth ts k
    | Ty.Tup _ -> fail "tuple projection .%d out of bounds" k
    | t -> fail "projection from non-tuple of type %a" Ty.pp t
  end
  | Ast.Binop (op, a, b) -> infer_binop env op a b
  | Ast.Not e0 -> Ast.Not (check env e0 Ty.Bool), Ty.Bool
  | Ast.Concurrent es ->
    let es', ts = List.split (List.map (infer env) es) in
    Ast.Concurrent es', Ty.Tup ts
  | Ast.Map (f, xs) -> begin
    let f', tf = infer env f in
    let xs', txs = infer env xs in
    match tf, txs with
    | Ty.Fn ([ ta ], tb), Ty.List telem when Ty.equal ta telem -> Ast.Map (f', xs'), Ty.List tb
    | Ty.Fn ([ ta ], _), Ty.List telem ->
      fail "map: function takes %a but list holds %a" Ty.pp ta Ty.pp telem
    | tf, _ -> fail "map: expected unary function and list, got %a and %a" Ty.pp tf Ty.pp txs
  end
  | Ast.Scalar e0 -> begin
    let e0', t0 = infer env e0 in
    match t0 with
    | Ty.Tensor s when Acrobat_tensor.Shape.numel s = 1 -> Ast.Scalar e0', Ty.Float
    | Ty.Tensor s ->
      fail "scalar() requires a single-element tensor, got shape %a" Acrobat_tensor.Shape.pp s
    | t -> fail "scalar() requires a tensor, got %a" Ty.pp t
  end
  | Ast.Choice e0 -> Ast.Choice (check env e0 Ty.Int), Ty.Int
  | Ast.Coin e0 -> Ast.Coin (check env e0 Ty.Float), Ty.Bool

and infer_prim env op args =
  let args', ts = List.split (List.map (infer env) args) in
  let shapes =
    List.map
      (function
        | Ty.Tensor s -> s
        | t -> fail "operator %s applied to non-tensor of type %a" (Op.name op) Ty.pp t)
      ts
  in
  let out =
    try Op.out_shape op shapes with
    | Op.Shape_error m -> fail "%s" m
    | Acrobat_tensor.Shape.Mismatch m -> fail "%s" m
  in
  Ast.Prim (op, args'), Ty.Tensor out

and infer_binop env op a b =
  let a', ta = infer env a in
  match op, ta with
  | (Ast.Add | Ast.Sub | Ast.Mul | Ast.Div), Ty.Tensor _ -> begin
    let b', tb = infer env b in
    if not (is_tensor tb) then fail "mixing tensor and %a in %s" Ty.pp tb (Ast.binop_name op);
    match binop_prim op with
    | Some prim -> infer_prim env prim [ a'; b' ]
    | None -> assert false
  end
  | (Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod), (Ty.Int | Ty.Float) ->
    let b' = check env b ta in
    (if op = Ast.Mod && ta <> Ty.Int then fail "%% requires Int operands");
    Ast.Binop (op, a', b'), ta
  | (Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq), (Ty.Int | Ty.Float | Ty.Bool) ->
    let b' = check env b ta in
    Ast.Binop (op, a', b'), Ty.Bool
  | (Ast.And | Ast.Or), Ty.Bool ->
    let b' = check env b Ty.Bool in
    Ast.Binop (op, a', b'), Ty.Bool
  | op, t -> fail "operator %s not applicable to %a" (Ast.binop_name op) Ty.pp t

and case_envs env scrut_ty cases =
  List.map
    (fun (pat, _) ->
      match pat, scrut_ty with
      | Ast.Pwild, _ -> env
      | Ast.Pnil, Ty.List _ -> env
      | Ast.Pcons (h, t), Ty.List telem -> bind (bind env h telem) t scrut_ty
      | Ast.Pleaf v, Ty.Tree telem -> bind env v telem
      | Ast.Pnode (l, r), Ty.Tree _ -> bind (bind env l scrut_ty) r scrut_ty
      | (Ast.Pnil | Ast.Pcons _), t -> fail "list pattern against %a" Ty.pp t
      | (Ast.Pleaf _ | Ast.Pnode _), t -> fail "tree pattern against %a" Ty.pp t)
    cases

and check env (e : Ast.expr) (expected : Ty.t) : Ast.expr =
  match e, expected with
  | Ast.Nil, Ty.List _ -> Ast.Nil
  | Ast.Nil, t -> fail "Nil where %a expected" Ty.pp t
  | Ast.Cons (h, t), Ty.List telem ->
    Ast.Cons (check env h telem, check env t expected)
  | Ast.Leaf v, Ty.Tree telem -> Ast.Leaf (check env v telem)
  | Ast.Node (l, r), Ty.Tree _ -> Ast.Node (check env l expected, check env r expected)
  | Ast.Tuple es, Ty.Tup ts when List.length es = List.length ts ->
    Ast.Tuple (List.map2 (check env) es ts)
  | Ast.If (c, a, b), _ ->
    Ast.If (check env c Ty.Bool, check env a expected, check env b expected)
  | Ast.Let (x, rhs, body), _ ->
    let rhs', trhs = infer env rhs in
    Ast.Let (x, rhs', check (bind env x trhs) body expected)
  | Ast.Match (scrut, cases), _ ->
    let scrut', ts = infer env scrut in
    let envs = case_envs env ts cases in
    let cases' =
      List.map2 (fun (p, body) env_c -> p, check env_c body expected) cases envs
    in
    Ast.Match (scrut', cases')
  | Ast.Fn (params, body), Ty.Fn (tps, ret)
    when List.length params = List.length tps
         && List.for_all2 (fun (_, t) tp -> Ty.equal t tp) params tps ->
    let env' = List.fold_left (fun e (x, t) -> bind e x t) env params in
    Ast.Fn (params, check env' body ret)
  | e, _ ->
    let e', t = infer env e in
    if Ty.equal t expected then e'
    else fail "expected %a but found %a" Ty.pp expected Ty.pp t

(** Type check and elaborate a whole program. Raises {!Type_error}. *)
let program (p : Ast.program) : Ast.program =
  let globals = List.map (fun (d : Ast.def) -> d.name, def_signature d) p.defs in
  let names = List.map fst globals in
  let dup = List.filter (fun n -> List.length (List.filter (( = ) n) names) > 1) names in
  (match dup with
  | [] -> ()
  | n :: _ -> fail "duplicate definition of @%s" n);
  let check_def (d : Ast.def) =
    let env = { vars = d.params; globals } in
    try { d with body = check env d.body d.ret }
    with Type_error m -> fail "in @%s: %s" d.name m
  in
  { Ast.defs = List.map check_def p.defs }

(** Convenience: parse then check. *)
let parse_and_check src = program (Parser.program src)
