# Convenience targets; everything is plain dune underneath.

.PHONY: all build test check bench clean

all: build

build:
	dune build

test:
	dune runtest

# Tier-1 gate: full build, the whole test suite, then an end-to-end serving
# smoke run (compile + tune + simulate 50 requests) to catch CLI wiring
# breakage that unit tests can miss.
check: build test
	dune exec bin/acrobatc.exe -- serve --model treelstm --size tiny \
	  --rate 2000 --requests 50 --iters 100

bench:
	dune exec bench/main.exe

clean:
	dune clean
