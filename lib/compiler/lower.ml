(** Lowering: ANF program + analysis results -> {!Lowered.t}.

    This pass implements, driven by {!Config}:
    - {e grain-size coarsening} (§B.2): maximal straight-line runs of tensor
      ops become one scheduling block;
    - {e kernel fusion} (standard §7.3 + horizontal §C.1): partitions each
      run into device-launch groups; without coarsening, each fused group is
      its own scheduling block;
    - {e parameter-reuse roles} (§5.1): statically-single arguments become
      [Shared] kernel arguments bound to weights/constants;
    - {e code duplication} (§C.1): definitions are specialized per calling
      context, so contexts binding different parameters get distinct kernels;
    - {e operator hoisting} (§B.1): blocks whose inputs all have static
      depths get compile-time depths;
    - {e ghost operators} and {e program phases} (§4.1, §B.3). *)

open Acrobat_ir
module L = Lowered

module SSet = Set.Make (String)

(* Free variables of an ANF expression (for block-output liveness). *)
let rec free_vars (e : Ast.expr) : SSet.t =
  match e with
  | Ast.Var x -> SSet.singleton x
  | Ast.Global _ | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _ | Ast.Nil -> SSet.empty
  | Ast.Let (x, rhs, body) -> SSet.union (free_vars rhs) (SSet.remove x (free_vars body))
  | Ast.If (a, b, c) -> SSet.union (free_vars a) (SSet.union (free_vars b) (free_vars c))
  | Ast.Prim (_, es) | Ast.Tuple es | Ast.Concurrent es ->
    List.fold_left (fun acc e -> SSet.union acc (free_vars e)) SSet.empty es
  | Ast.Call (f, es) ->
    List.fold_left (fun acc e -> SSet.union acc (free_vars e)) (free_vars f) es
  | Ast.Fn (params, body) ->
    List.fold_left (fun acc (x, _) -> SSet.remove x acc) (free_vars body) params
  | Ast.Match (s, cases) ->
    List.fold_left
      (fun acc (pat, body) ->
        let bound = Ast.pat_vars pat in
        SSet.union acc (List.fold_left (fun s x -> SSet.remove x s) (free_vars body) bound))
      (free_vars s) cases
  | Ast.Cons (a, b) | Ast.Node (a, b) | Ast.Map (a, b) | Ast.Binop (_, a, b) ->
    SSet.union (free_vars a) (free_vars b)
  | Ast.Leaf a | Ast.Proj (a, _) | Ast.Not a | Ast.Scalar a | Ast.Choice a | Ast.Coin a ->
    free_vars a

type state = {
  cfg : Config.t;
  sites : Sites.t;
  taint : Taint.t option;  (** None when parameter-reuse analysis is off. *)
  registry : Kernel.registry;
  prog : Ast.program;
  out_defs : (string, L.ldef) Hashtbl.t;
  mutable max_static : int;
  mutable pending : (string * string * int) list;  (** (def, ctx, rec nesting) *)
  visited : (string * string, unit) Hashtbl.t;
  cg : Call_graph.t;
  hints : (int, float) Hashtbl.t;  (** kernel id -> static frequency weight *)
  mutable cur_depth : int;  (** recursion-nesting depth of the def being lowered *)
}

let root = Taint.root_ctx

let spec_name name ctx = if ctx = root then name else Fmt.str "%s$%s" name ctx

let prim_avals st ~site ~ctx ~arity =
  match st.taint with
  | Some t when st.cfg.parameter_reuse -> Taint.prim_avals t ~site ~ctx ~arity
  | _ -> List.init arity (fun _ -> Taint.Atop)

let callee_ctx st ~site ~ctx =
  if not st.cfg.context_sensitive then root
  else
    match st.taint with
    | Some t -> Option.value ~default:root (Taint.callee_context t ~site ~ctx)
    | None -> root

(* Request specialization of (name, ctx); [bonus] adds nesting weight for
   per-element invocation (map). The static-frequency heuristic estimates a
   kernel's invocation count as 30^nesting (each recursion or map level
   multiplies invocations by roughly a sequence length). *)
let request ?(bonus = 0) st name ctx =
  let key = name, ctx in
  if not (Hashtbl.mem st.visited key) then begin
    Hashtbl.replace st.visited key ();
    let depth =
      st.cur_depth + bonus + if Call_graph.is_recursive st.cg name then 1 else 0
    in
    st.pending <- (name, ctx, depth) :: st.pending
  end;
  spec_name name ctx

(* One tensor op of a straight-line run. *)
type run_op = { var : string; op : Op.t; args : Ast.expr list; site : int }

(* An argument source feeding a run: either an in-run temporary or an
   external value. External keys dedup repeated uses of the same variable. *)
type ext_key = Kvar of string | Kexpr of int

(* --- Building kernels & blocks from a straight-line run of ops --- *)

let single_of_aval = function
  | Taint.Atensor { single = Some s; _ } -> Some s
  | _ -> None

let bind_of_single = function
  | Taint.Sparam p -> Kernel.Bparam p
  | Taint.Sconst { shape; value } -> Kernel.Bconst { shape; value }

(* Lower a run of tensor ops into scheduling blocks, returning a function
   that wraps a continuation lexpr. [lower] lowers argument expressions.
   [ctx] is the current context. *)
let lower_run st ~ctx ~(lower : Ast.expr -> L.lexpr) (run : run_op list)
    (cont_free : SSet.t) : (L.lexpr -> L.lexpr) * string list =
  (* Map run variables to run indices. *)
  let idx_of_var = Hashtbl.create 8 in
  List.iteri (fun i r -> Hashtbl.replace idx_of_var r.var i) run;
  (* Abstract values: externs from the taint analysis; run outputs
     recomputed locally. *)
  let out_avals = Array.make (List.length run) Taint.Atop in
  let arg_aval r pos arg =
    match arg with
    | Ast.Var x when Hashtbl.mem idx_of_var x -> out_avals.(Hashtbl.find idx_of_var x)
    | _ -> List.nth (prim_avals st ~site:r.site ~ctx ~arity:(List.length r.args)) pos
  in
  List.iteri
    (fun i r ->
      let avals = List.mapi (fun pos a -> arg_aval r pos a) r.args in
      out_avals.(i) <-
        (match r.op with
        | Op.Constant { shape; value } -> Taint.tensor_const ~shape ~value
        | Op.Random _ -> Taint.tensor_derived ~sdepth:(Dstatic 0)
        | _ -> Taint.tensor_derived ~sdepth:(Taint.out_sdepth avals)))
    run;
  (* Global (run-level) instruction list, with externs keyed for dedup. *)
  let externs : (ext_key, int) Hashtbl.t = Hashtbl.create 8 in
  let extern_info : (int * L.lexpr * Taint.aval) list ref = ref [] in
  let next_ext = ref 0 in
  let extern_id key lexpr aval =
    match Hashtbl.find_opt externs key with
    | Some i -> i
    | None ->
      let i = !next_ext in
      incr next_ext;
      Hashtbl.replace externs key i;
      extern_info := (i, lexpr, aval) :: !extern_info;
      i
  in
  let kexpr_counter = ref 0 in
  let instrs =
    List.mapi
      (fun i r ->
        let srcs =
          List.mapi
            (fun pos arg ->
              match arg with
              | Ast.Var x when Hashtbl.mem idx_of_var x ->
                Kernel.Tmp (Hashtbl.find idx_of_var x)
              | Ast.Var x ->
                Kernel.Arg (extern_id (Kvar x) (L.Lvar x) (arg_aval r pos arg))
              | other ->
                incr kexpr_counter;
                Kernel.Arg (extern_id (Kexpr !kexpr_counter) (lower other) (arg_aval r pos arg)))
            r.args
        in
        { Kernel.op = r.op; srcs; dst = i })
      run
  in
  (* Partition into launch groups (fusion), then into scheduling blocks
     (coarsening keeps the whole run as one block). *)
  let groups =
    Kernel.vertical_groups ~fusion:st.cfg.kernel_fusion instrs
    |> Kernel.horizontal_merge ~horizontal:st.cfg.horizontal_fusion
  in
  let pieces = if st.cfg.grain_coarsening then [ List.concat groups ] else groups in
  let run_arr = Array.of_list run in
  let extern_info = List.rev !extern_info in
  (* Which run tmps are needed outside their own piece (or by the cont)? *)
  let piece_of_tmp = Hashtbl.create 8 in
  List.iteri
    (fun pi piece -> List.iter (fun (i : Kernel.instr) -> Hashtbl.replace piece_of_tmp i.dst pi) piece)
    pieces;
  let cross_piece_or_live tmp =
    let v = run_arr.(tmp).var in
    SSet.mem v cont_free
    || List.exists
         (fun (i : Kernel.instr) ->
           Hashtbl.find piece_of_tmp i.dst <> Hashtbl.find piece_of_tmp tmp
           && List.exists (function Kernel.Tmp j -> j = tmp | Kernel.Arg _ -> false) i.srcs)
         instrs
  in
  (* Build one block per piece. *)
  let blocks =
    List.map
      (fun piece ->
        let b = Kernel.builder () in
        (* Local remapping: args and tmps local to the piece. *)
        let local_args : (string, int) Hashtbl.t = Hashtbl.create 8 in
        let arg_exprs = ref [] and arg_avals = ref [] in
        let next_arg = ref 0 in
        let local_arg key lexpr aval =
          let k = Fmt.str "%s" key in
          match Hashtbl.find_opt local_args k with
          | Some i -> i
          | None ->
            let i = !next_arg in
            incr next_arg;
            Hashtbl.replace local_args k i;
            arg_exprs := lexpr :: !arg_exprs;
            arg_avals := aval :: !arg_avals;
            i
        in
        let local_tmp = Hashtbl.create 8 in
        let my_piece = Hashtbl.find piece_of_tmp (List.hd piece : Kernel.instr).dst in
        List.iter
          (fun (i : Kernel.instr) ->
            let srcs =
              List.map
                (function
                  | Kernel.Arg e ->
                    let _, lex, av = List.nth extern_info e in
                    Kernel.Arg (local_arg (Fmt.str "e%d" e) lex av)
                  | Kernel.Tmp j ->
                    if Hashtbl.find piece_of_tmp j = my_piece then
                      Kernel.Tmp (Hashtbl.find local_tmp j)
                    else
                      (* Produced by an earlier block: becomes a batched
                         input, referenced through its bound variable. *)
                      Kernel.Arg
                        (local_arg (Fmt.str "t%d" j)
                           (L.Lvar run_arr.(j).var)
                           out_avals.(j)))
                i.srcs
            in
            let dst = Kernel.add_instr b i.op srcs in
            Hashtbl.replace local_tmp i.dst dst)
          piece;
        let out_tmps, outs =
          List.filter_map
            (fun (i : Kernel.instr) ->
              if cross_piece_or_live i.dst then
                Some (Hashtbl.find local_tmp i.dst, run_arr.(i.dst).var)
              else None)
            piece
          |> List.split
        in
        let arg_avals = List.rev !arg_avals and arg_exprs = List.rev !arg_exprs in
        let roles =
          Array.of_list
            (List.map
               (fun av ->
                 match single_of_aval av with Some _ -> Kernel.Shared | None -> Kernel.Batched)
               arg_avals)
        in
        let shared_binds =
          List.filteri (fun _ _ -> true) arg_avals
          |> List.mapi (fun i av -> i, single_of_aval av)
          |> List.filter_map (function i, Some s -> Some (i, bind_of_single s) | _, None -> None)
        in
        let args =
          List.map2
            (fun av lex ->
              match single_of_aval av with
              | Some s -> L.Lshared (bind_of_single s)
              | None -> lex)
            arg_avals arg_exprs
        in
        let name =
          String.concat "_" (List.map (fun (i : Kernel.instr) -> Op.name i.op) piece)
        in
        let kernel =
          Kernel.finish st.registry b ~name ~nargs:(List.length args) ~roles ~shared_binds
            ~out_tmps:(Array.of_list out_tmps) ~fusion:st.cfg.kernel_fusion
            ~horizontal:st.cfg.horizontal_fusion
        in
        let depth =
          if not st.cfg.hoisting then L.Dynamic
          else begin
            let sdepths = List.map Taint.sdepth_of arg_avals in
            let all_static =
              List.for_all (function Taint.Dstatic _ -> true | Taint.Ddyn -> false) sdepths
            in
            if all_static then begin
              let d =
                List.fold_left
                  (fun acc -> function Taint.Dstatic k -> max acc k | Taint.Ddyn -> acc)
                  (-1) sdepths
                + 1
              in
              if d > st.max_static then st.max_static <- d;
              L.Static d
            end
            else L.Dynamic
          end
        in
        let site = (List.hd run).site in
        (* The static frequency heuristic is deliberately coarse ("how
           deeply nested in the recursion", §D.1): it knows recursion
           multiplies invocations but not by how much, so any nesting gets
           one flat factor — this is precisely the imprecision PGO fixes in
           Table 9. *)
        let weight = if st.cur_depth > 0 then 30.0 else 1.0 in
        (match Hashtbl.find_opt st.hints kernel.Kernel.id with
        | Some w when w >= weight -> ()
        | _ -> Hashtbl.replace st.hints kernel.Kernel.id weight);
        { L.kernel; args; depth; outs; site })
      pieces
  in
  let outs_all = List.concat_map (fun b -> b.L.outs) blocks in
  (fun cont -> List.fold_right (fun b acc -> L.Lblock (b, acc)) blocks cont), outs_all

(* Classify each op of a run as hoistable (static depth) or dynamic, using
   the same abstract-value propagation as {!lower_run}. *)
let classify_run st ~ctx (run : run_op list) : (run_op * bool) list =
  let idx_of_var = Hashtbl.create 8 in
  List.iteri (fun i r -> Hashtbl.replace idx_of_var r.var i) run;
  let out = Array.make (List.length run) Taint.Atop in
  List.mapi
    (fun i r ->
      let avals =
        List.mapi
          (fun pos a ->
            match a with
            | Ast.Var x when Hashtbl.mem idx_of_var x -> out.(Hashtbl.find idx_of_var x)
            | _ -> List.nth (prim_avals st ~site:r.site ~ctx ~arity:(List.length r.args)) pos)
          r.args
      in
      let oav =
        match r.op with
        | Op.Constant { shape; value } -> Taint.tensor_const ~shape ~value
        | Op.Random _ -> Taint.tensor_derived ~sdepth:(Dstatic 0)
        | _ -> Taint.tensor_derived ~sdepth:(Taint.out_sdepth avals)
      in
      out.(i) <- oav;
      r, (match Taint.sdepth_of oav with Taint.Dstatic _ -> true | Taint.Ddyn -> false))
    run

(* --- Expression lowering --- *)

let rec lower_expr st ~defname ~ctx (e : Ast.expr) : L.lexpr =
  let recur e = lower_expr st ~defname ~ctx e in
  match e with
  | Ast.Var x -> L.Lvar x
  | Ast.Global g ->
    (* A bare global reference: specialize under this reference's site. *)
    let ctx' = callee_ctx st ~site:(Sites.id st.sites e) ~ctx in
    L.Lglobal (request st g ctx')
  | Ast.Int_lit n -> L.Lint n
  | Ast.Float_lit f -> L.Lfloat f
  | Ast.Bool_lit b -> L.Lbool b
  | Ast.Let (v, Ast.Prim (Op.Constant { shape; value }, []), cont) when st.cfg.constant_reuse ->
    L.Llet (v, L.Lshared (Kernel.Bconst { shape; value }), recur cont)
  | Ast.Let (_, Ast.Prim _, _) -> lower_prim_run st ~defname ~ctx e
  | Ast.Let (v, rhs, cont) -> L.Llet (v, recur rhs, recur cont)
  | Ast.If (c, a, b) ->
    let a' = recur a and b' = recur b in
    let a', b' =
      if st.cfg.ghost_ops then begin
        match dyn_count a', dyn_count b' with
        | Some na, Some nb when na < nb -> L.Lghost (nb - na, a'), b'
        | Some na, Some nb when nb < na -> a', L.Lghost (na - nb, b')
        | _ -> a', b'
      end
      else a', b'
    in
    L.Lif (recur c, a', b')
  | Ast.Prim _ ->
    (* ANF guarantees prims are let-bound; tolerate a stray one anyway. *)
    lower_prim_run st ~defname ~ctx (Ast.Let ("_prim", e, Ast.Var "_prim"))
  | Ast.Call (f, args) -> begin
    let args' = List.map recur args in
    match f with
    | Ast.Global g ->
      let ctx' = callee_ctx st ~site:(Sites.id st.sites e) ~ctx in
      L.Lcall (L.Lglobal (request st g ctx'), args')
    | _ -> L.Lcall (recur f, args')
  end
  | Ast.Fn (params, body) -> L.Lfn (List.map fst params, recur body)
  | Ast.Match (s, cases) ->
    L.Lmatch (recur s, List.map (fun (p, body) -> p, recur body) cases)
  | Ast.Nil -> L.Lnil
  | Ast.Cons (a, b) -> L.Lcons (recur a, recur b)
  | Ast.Leaf a -> L.Lleaf (recur a)
  | Ast.Node (a, b) -> L.Lnode (recur a, recur b)
  | Ast.Tuple es -> L.Ltuple (List.map recur es)
  | Ast.Proj (a, k) -> L.Lproj (recur a, k)
  | Ast.Binop (op, a, b) -> L.Lbinop (op, recur a, recur b)
  | Ast.Not a -> L.Lnot (recur a)
  | Ast.Concurrent es -> L.Lconcurrent (List.map recur es)
  | Ast.Map (f, xs) -> begin
    let xs' = recur xs in
    match f with
    | Ast.Global g ->
      let ctx' = callee_ctx st ~site:(Sites.id st.sites e) ~ctx in
      L.Lmap (L.Lglobal (request ~bonus:1 st g ctx'), xs')
    | _ ->
      (* Kernels inside the mapped lambda run once per element. *)
      st.cur_depth <- st.cur_depth + 1;
      let f' = recur f in
      st.cur_depth <- st.cur_depth - 1;
      L.Lmap (f', xs')
  end
  | Ast.Scalar a -> L.Lscalar (recur a)
  | Ast.Choice a -> L.Lchoice (recur a)
  | Ast.Coin a -> L.Lcoin (recur a)

(* Gather the maximal straight-line run of tensor-op lets starting at [e]. *)
and lower_prim_run st ~defname ~ctx e =
  let rec gather acc consts e =
    match e with
    | Ast.Let (v, Ast.Prim (Op.Constant { shape; value }, []), cont) when st.cfg.constant_reuse ->
      gather acc ((v, shape, value) :: consts) cont
    | Ast.Let (v, Ast.Prim (op, args), cont) ->
      gather ({ var = v; op; args; site = Sites.id st.sites (find_prim e) } :: acc) consts cont
    | _ -> List.rev acc, List.rev consts, e
  and find_prim = function
    | Ast.Let (_, (Ast.Prim _ as p), _) -> p
    | _ -> assert false
  in
  let run, consts, cont = gather [] [] e in
  let cont_free = free_vars cont in
  let lowered_cont = lower_expr st ~defname ~ctx cont in
  (* Hoisting splits the run into a static (hoistable) prefix and a dynamic
     remainder, each its own scheduling block(s): a static op never consumes
     a dynamic op's output, so emitting all static ops first is safe and is
     exactly the paper's operator hoisting (Listing 2's bias_dense). *)
  let sub_runs =
    if not st.cfg.hoisting then [ run ]
    else begin
      let statics, dyns =
        List.partition (fun (r, sd) -> ignore r; sd) (classify_run st ~ctx run)
      in
      List.filter (( <> ) []) [ List.map fst statics; List.map fst dyns ]
    end
  in
  (* The free set for liveness must include variables consumed by later
     sub-runs; using the whole original expression's continuation plus all
     run variables referenced across sub-runs is achieved by adding every
     later sub-run's argument variables. *)
  let wraps =
    let rec build = function
      | [] -> []
      | sub :: rest ->
        let later_vars =
          List.fold_left
            (fun acc r ->
              List.fold_left
                (fun acc a -> match a with Ast.Var x -> SSet.add x acc | _ -> acc)
                acc r.args)
            SSet.empty (List.concat rest)
        in
        let free = SSet.union cont_free later_vars in
        let wrap, _ = lower_run st ~ctx ~lower:(lower_expr st ~defname ~ctx) sub free in
        wrap :: build rest
    in
    build sub_runs
  in
  let body = List.fold_right (fun w acc -> w acc) wraps lowered_cont in
  List.fold_right
    (fun (v, shape, value) acc ->
      L.Llet (v, L.Lshared (Kernel.Bconst { shape; value }), acc))
    consts body

(* Count dynamic blocks when statically determinable (for ghost padding). *)
and dyn_count (e : L.lexpr) : int option =
  let ( let* ) = Option.bind in
  match e with
  | L.Lblock (b, cont) ->
    let* n = dyn_count cont in
    Some ((match b.depth with L.Dynamic -> 1 | L.Static _ -> 0) + n)
  | L.Lghost (n, cont) ->
    let* m = dyn_count cont in
    Some (n + m)
  | L.Lvar _ | L.Lglobal _ | L.Lint _ | L.Lfloat _ | L.Lbool _ | L.Lnil | L.Lshared _ ->
    Some 0
  | L.Llet (_, a, b) | L.Lcons (a, b) | L.Lnode (a, b) | L.Lbinop (_, a, b) ->
    let* x = dyn_count a in
    let* y = dyn_count b in
    Some (x + y)
  | L.Lif (c, a, b) ->
    let* n = dyn_count c in
    let* x = dyn_count a in
    let* y = dyn_count b in
    if x = y then Some (n + x) else None
  | L.Lleaf a | L.Lproj (a, _) | L.Lnot a -> dyn_count a
  | L.Ltuple es ->
    List.fold_left
      (fun acc e ->
        let* x = acc in
        let* y = dyn_count e in
        Some (x + y))
      (Some 0) es
  | L.Lphase _ | L.Lcall _ | L.Lfn _ | L.Lmatch _ | L.Lconcurrent _ | L.Lmap _
  | L.Lscalar _ | L.Lchoice _ | L.Lcoin _ ->
    None

(* --- Program phases (§B.3) --- *)

let rec contains_call = function
  | L.Lcall _ | L.Lmap _ -> true
  | L.Lvar _ | L.Lglobal _ | L.Lint _ | L.Lfloat _ | L.Lbool _ | L.Lnil | L.Lshared _ ->
    false
  | L.Llet (_, a, b) | L.Lcons (a, b) | L.Lnode (a, b) | L.Lbinop (_, a, b) ->
    contains_call a || contains_call b
  | L.Lif (a, b, c) -> contains_call a || contains_call b || contains_call c
  | L.Lblock (b, cont) -> List.exists contains_call b.args || contains_call cont
  | L.Lfn (_, b) | L.Lleaf b | L.Lproj (b, _) | L.Lnot b | L.Lscalar b | L.Lchoice b
  | L.Lcoin b | L.Lghost (_, b) | L.Lphase (_, b) ->
    contains_call b
  | L.Lmatch (s, cases) -> contains_call s || List.exists (fun (_, e) -> contains_call e) cases
  | L.Ltuple es | L.Lconcurrent es -> List.exists contains_call es

(* Each top-level binding of @main that invokes a (recursive) function is a
   semantic stage; stages after the first become new phases. *)
let add_phases body =
  let counter = ref 0 in
  let rec go ~seen_call e =
    match e with
    | L.Llet (v, rhs, cont) when contains_call rhs ->
      if seen_call then begin
        incr counter;
        let phase = !counter in
        L.Lphase (phase, L.Llet (v, rhs, go ~seen_call:true cont))
      end
      else L.Llet (v, rhs, go ~seen_call:true cont)
    | L.Llet (v, rhs, cont) -> L.Llet (v, rhs, go ~seen_call cont)
    | L.Lblock (b, cont) -> L.Lblock (b, go ~seen_call cont)
    | tail ->
      if seen_call && contains_call tail then begin
        incr counter;
        let phase = !counter in
        L.Lphase (phase, tail)
      end
      else tail
  in
  go ~seen_call:false body

(* --- Driver --- *)

(** Lower a typechecked program. [inputs] names @main's per-instance
    parameters. The program must already be in ANF. *)
let program ?(config = Config.acrobat) (p : Ast.program) ~(inputs : string list) : L.t =
  let sites = Sites.create () in
  let taint =
    if config.parameter_reuse || config.hoisting then
      Some (Taint.analyze ~context_sensitive:config.context_sensitive sites p ~inputs)
    else None
  in
  let st =
    {
      cfg = config;
      sites;
      taint;
      registry = Kernel.registry ();
      prog = p;
      out_defs = Hashtbl.create 16;
      max_static = -1;
      pending = [];
      visited = Hashtbl.create 16;
      cg = Call_graph.build p;
      hints = Hashtbl.create 16;
      cur_depth = 0;
    }
  in
  let entry = request st "main" root in
  let rec drain () =
    match st.pending with
    | [] -> ()
    | (name, ctx, depth) :: rest ->
      st.pending <- rest;
      st.cur_depth <- depth;
      (match Ast.find_def p name with
      | None -> Fmt.invalid_arg "unknown global @%s" name
      | Some d ->
        let body = lower_expr st ~defname:name ~ctx d.body in
        let body = if name = "main" && config.program_phases then add_phases body else body in
        Hashtbl.replace st.out_defs (spec_name name ctx)
          { L.lname = spec_name name ctx; lparams = List.map fst d.params; lbody = body });
      drain ()
  in
  drain ();
  let main = Ast.main_def p in
  let weight_params =
    List.filter_map (fun (n, _) -> if List.mem n inputs then None else Some n) main.params
  in
  {
    L.defs = st.out_defs;
    entry;
    registry = st.registry;
    max_static_depth = st.max_static;
    input_params = inputs;
    weight_params;
    has_tdc = Ast.has_tdc main.body || List.exists (fun (d : Ast.def) -> Ast.has_tdc d.body) p.defs;
    config;
    kernel_hints = st.hints;
  }

(** Full pipeline from source text.

    [tracer] receives one span per compiler pass on a dedicated "compiler"
    process track (pid {!compiler_trace_pid}). Pass "durations" are
    deterministic proxies — definition counts, not wall time — so traces
    stay byte-identical across same-seed runs while still showing the
    relative weight of each pass. *)
let compiler_trace_pid = 100

let compile ?config ?(tracer = Acrobat_obs.Trace.null) ~inputs src =
  let module Trace = Acrobat_obs.Trace in
  if Trace.enabled tracer then
    Trace.name_process tracer ~pid:compiler_trace_pid ~name:"compiler";
  let cursor = ref 0.0 in
  (* [dur] maps the pass result to its deterministic span length (us). *)
  let pass name ~dur f =
    let y = f () in
    let d = dur y in
    Trace.complete tracer ~name ~cat:"compiler" ~pid:compiler_trace_pid ~tid:0
      ~ts_us:!cursor ~dur_us:d;
    cursor := !cursor +. d;
    y
  in
  let n_defs (p : Ast.program) = float_of_int (List.length p.defs) in
  let p =
    pass "parse+typecheck" ~dur:n_defs (fun () -> Typecheck.parse_and_check src)
  in
  let p = pass "anf" ~dur:n_defs (fun () -> Anf.program p) in
  pass "lower" ~dur:(fun lp -> float_of_int (Hashtbl.length lp.L.defs)) (fun () ->
      program ?config p ~inputs)
