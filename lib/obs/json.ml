(** A minimal JSON value, printer and parser — just enough for
    machine-readable benchmark dumps and Chrome trace exports, with no
    dependency beyond the stdlib.

    Floats print with ["%.6g"], so values round-trip stably: two
    deterministic runs of the same experiment serialize to byte-identical
    output (the property the serving determinism check asserts).

    (Home of the module: it used to live in [lib/serve]; the observability
    layer sits below both the device and the serving stack, so the value
    type moved here and {!Acrobat_serve.Json} re-exports it.) *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string (j : t) : string =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

let to_file path (j : t) =
  let oc = open_out path in
  output_string oc (to_string j);
  output_char oc '\n';
  close_out oc

(* --- Parsing (trace validation) --- *)

exception Parse_error of string

(* Recursive-descent parser over the grammar this module emits (which is
   standard JSON minus exotic number syntax). It exists so `acrobatc trace`
   and the trace smoke tests can check well-formedness without an external
   dependency; round-tripping is checked in the test suite. *)
let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %S" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
        | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          let code =
            match int_of_string_opt ("0x" ^ hex) with
            | Some c -> c
            | None -> fail "bad \\u escape"
          in
          (* Non-ASCII code points are preserved as a replacement byte; the
             emitter only produces \u escapes for control characters. *)
          Buffer.add_char buf (if code < 0x80 then Char.chr code else '?');
          pos := !pos + 4;
          go ()
        | _ -> fail "bad escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          k, v
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let of_file path : t =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  parse s

(* --- Accessors (for validators and tests) --- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None
