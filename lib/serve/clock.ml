(** Virtual time for the serving simulation.

    The serving layer composes three kinds of latency — request queueing,
    batch assembly waits, and the device busy time reported by
    {!Acrobat_device.Cost_model} — on one deterministic timeline. Nothing in
    the simulation reads wall-clock time; the clock only moves when the
    event loop dispatches the next event, so runs replay bit-for-bit from a
    seed. All times are in simulated microseconds, matching the cost
    model's unit. *)

type t = { mutable now_us : float }

let create () = { now_us = 0.0 }

let now t = t.now_us

(** Move time forward. Requests to move backwards are ignored: events
    scheduled "in the past" (e.g. a timeout racing a completion at the same
    instant) execute at the current time instead. *)
let advance_to t time_us = if time_us > t.now_us then t.now_us <- time_us

let pp ppf t = Fmt.pf ppf "t=%.1fus" t.now_us
