(** Sentiment classification with a TreeLSTM over parse trees — the
    recursive, instance-parallel workload the paper's introduction
    motivates. Compares the batching behaviour of ACROBAT against the
    DyNet-style dynamic baseline on the same trees.

    Run with: [dune exec examples/sentiment_treelstm.exe] *)

open Acrobat
module P = Profiler

let labels = [| "--"; "-"; "0"; "+"; "++" |]

let () =
  let model = Acrobat_models.Treelstm.make ~hidden:16 ~classes:5 Model.Small in
  let weights = model.Model.gen_weights 7 in
  let instances = gen_batch model ~batch:8 ~seed:11 in

  let run_with name kind =
    let compiled = compile ~framework:kind ~inputs:model.Model.inputs model.Model.source in
    let compiled = tune compiled ~weights ~calibration:instances in
    let r = run ~compute_values:true compiled ~weights ~instances () in
    let p = r.Driver.stats.profiler in
    Fmt.pr "%-8s latency=%6.2f ms  DFG nodes=%4d  batches=%4d  kernel launches=%4d@." name
      r.Driver.stats.latency_ms p.P.nodes_created p.P.batches_executed p.P.kernel_calls;
    r
  in
  Fmt.pr "classifying 8 synthetic parse trees:@.";
  let r = run_with "acrobat" (Frameworks.Acrobat Config.acrobat) in
  let _ = run_with "dynet" (Frameworks.Dynet { improved = false; scheduler = Config.Agenda }) in

  Fmt.pr "@.predictions (argmax of the root softmax):@.";
  List.iteri
    (fun i v ->
      match Value.handles [] v with
      | [ h ] -> begin
        match Value.handle_out h with
        | Some { tensor = Some t; _ } ->
          let cls = Tensor.argmax t in
          Fmt.pr "  tree %d -> %s (p=%.3f)@." i labels.(cls) (Tensor.get t cls)
        | _ -> ()
      end
      | _ -> ())
    r.Driver.outputs
