(** The interpreted execution path: a tree-walking "Relay VM" over the
    lowered program (paper §E.2, Table 7).

    Unlike {!Aot}, which stages each definition into closures once, the VM
    re-dispatches on the expression tree and searches an association-list
    environment on every variable access, charging the per-instruction
    dispatch overhead to the profiler. This is the baseline ACROBAT's AOT
    compilation beats by up to 13.45x in the paper. *)

open Acrobat_compiler
open Acrobat_runtime
open Value
module Ast = Acrobat_ir.Ast
module L = Lowered
module Device = Acrobat_device.Device

type t = {
  rt : Runtime.t;
  policy : Policy.t;
  lprog : L.t;
  fibers : bool;
  base_depth : int;
}

let create ~rt ~policy ~fibers (lprog : L.t) : t =
  { rt; policy; lprog; fibers; base_depth = lprog.L.max_static_depth + 1 }

type env = (string * value) list

let lookup env x =
  match List.assoc_opt x env with
  | Some v -> v
  | None -> fail "VM: unbound variable %s" x

(* After any barrier everything previously pending has executed, so the
   per-instance dynamic depth counter restarts at the base: scheduling
   depths only order nodes within one flush window, and restarting re-aligns
   instances whose counters drifted apart under data-dependent iteration
   counts. *)
let ensure_ready st ictx h =
  if not (handle_ready h) then begin
    if st.fibers then begin
      Device.charge_fiber_switch (Runtime.device st.rt);
      Fiber.suspend ()
    end;
    if not (handle_ready h) then Runtime.flush st.rt;
    ictx.ictx_depth <- st.base_depth
  end

let decision_barrier st ictx =
  if Runtime.has_pending st.rt then begin
    if st.fibers then begin
      (* Suspending is the whole barrier: the driver flushes when every
         fiber is blocked. Nodes pending after resume belong to fibers that
         ran ahead of us and must NOT be forced here, or concurrent
         instances degrade into singleton batches. *)
      Device.charge_fiber_switch (Runtime.device st.rt);
      Fiber.suspend ()
    end
    else Runtime.flush st.rt;
    ictx.ictx_depth <- st.base_depth
  end

let run_parallel st ictx n (thunk_of : int -> ictx -> value) : value array =
  let clones = Array.init n (fun _ -> clone_ictx ictx) in
  let results =
    if st.fibers && st.policy.Policy.allow_fork && n > 1 then
      Fiber.fork (Array.init n (fun i () -> thunk_of i clones.(i)))
    else begin
      (* Explicit ascending loop: Array.init's evaluation order is
         unspecified, and thunk order decides DFG node order. *)
      let out = Array.make n Vnil in
      for i = 0 to n - 1 do
        out.(i) <- thunk_of i clones.(i)
      done;
      out
    end
  in
  let maxd = Array.fold_left (fun acc c -> max acc c.ictx_depth) ictx.ictx_depth clones in
  ictx.ictx_depth <- maxd;
  results

let rec eval (st : t) (env : env) (ictx : ictx) (e : L.lexpr) : value =
  (* Every expression node pays interpreter dispatch (the VM overhead AOT
     compilation removes). *)
  Device.charge_vm_dispatch (Runtime.device st.rt);
  match e with
  | L.Lvar x -> lookup env x
  | L.Lglobal g -> Vfun (fun ictx args -> call st g args ictx)
  | L.Lint n -> Vint n
  | L.Lfloat f -> Vfloat f
  | L.Lbool b -> Vbool b
  | L.Llet (x, rhs, body) ->
    let v = eval st env ictx rhs in
    eval st ((x, v) :: env) ictx body
  | L.Lif (c, a, b) ->
    if to_bool (eval st env ictx c) then eval st env ictx a else eval st env ictx b
  | L.Lblock (b, cont) ->
    let args = Array.of_list (List.map (fun a -> to_handle (eval st env ictx a)) b.args) in
    let depth =
      match b.depth with
      | L.Static d -> d
      | L.Dynamic ->
        let d = ictx.ictx_depth in
        ictx.ictx_depth <- d + 1;
        d
    in
    let sig_key = st.policy.Policy.sig_of b.kernel args in
    let outs =
      Runtime.invoke st.rt ~kernel:b.kernel ~args ~instance:ictx.ictx_instance
        ~phase:ictx.ictx_phase ~depth ~sig_key
    in
    if st.policy.Policy.eager then Runtime.flush st.rt;
    let env' =
      List.fold_left2
        (fun acc name i -> (name, Vtensor outs.(i)) :: acc)
        env b.outs
        (List.init (List.length b.outs) Fun.id)
    in
    eval st env' ictx cont
  | L.Lcall (f, args) ->
    let fv = to_fun (eval st env ictx f) in
    fv ictx (List.map (eval st env ictx) args)
  | L.Lfn (params, body) ->
    Vfun
      (fun ictx args ->
        let env' =
          try List.combine params args @ env
          with Invalid_argument _ -> fail "VM: closure arity mismatch"
        in
        eval st env' ictx body)
  | L.Lmatch (s, cases) -> begin
    let sv = eval st env ictx s in
    let rec dispatch = function
      | [] -> fail "VM: match failure"
      | (pat, body) :: rest -> begin
        match (pat : Ast.pat), sv with
        | Ast.Pwild, _ -> eval st env ictx body
        | Ast.Pnil, Vnil -> eval st env ictx body
        | Ast.Pcons (h, t), Vcons (hv, tv) -> eval st ((h, hv) :: (t, tv) :: env) ictx body
        | Ast.Pleaf x, Vleaf v -> eval st ((x, v) :: env) ictx body
        | Ast.Pnode (l, r), Vnode (lv, rv) -> eval st ((l, lv) :: (r, rv) :: env) ictx body
        | _ -> dispatch rest
      end
    in
    dispatch cases
  end
  | L.Lnil -> Vnil
  | L.Lcons (a, b) ->
    let av = eval st env ictx a in
    Vcons (av, eval st env ictx b)
  | L.Lleaf a -> Vleaf (eval st env ictx a)
  | L.Lnode (a, b) ->
    let av = eval st env ictx a in
    Vnode (av, eval st env ictx b)
  | L.Ltuple es -> Vtuple (Array.of_list (List.map (eval st env ictx) es))
  | L.Lproj (a, k) -> begin
    match eval st env ictx a with
    | Vtuple vs when k < Array.length vs -> vs.(k)
    | _ -> fail "VM: bad tuple projection"
  end
  | L.Lbinop (op, a, b) ->
    let av = eval st env ictx a in
    Aot.eval_binop op av (eval st env ictx b)
  | L.Lnot a -> Vbool (not (to_bool (eval st env ictx a)))
  | L.Lconcurrent es ->
    let es = Array.of_list es in
    Vtuple (run_parallel st ictx (Array.length es) (fun i c -> eval st env c es.(i)))
  | L.Lmap (f, xs) ->
    let fv = to_fun (eval st env ictx f) in
    let elems = Array.of_list (to_list (eval st env ictx xs)) in
    let results = run_parallel st ictx (Array.length elems) (fun i c -> fv c [ elems.(i) ]) in
    of_list (Array.to_list results)
  | L.Lscalar a ->
    let h = to_handle (eval st env ictx a) in
    ensure_ready st ictx h;
    Vfloat (Runtime.scalar_value st.rt h)
  | L.Lchoice a ->
    let n = to_int (eval st env ictx a) in
    decision_barrier st ictx;
    Vint (Runtime.decision_int st.rt ~instance:ictx.ictx_instance n)
  | L.Lcoin a ->
    let p = to_float (eval st env ictx a) in
    decision_barrier st ictx;
    Vbool (Runtime.decision_bool st.rt ~instance:ictx.ictx_instance p)
  | L.Lghost (n, cont) ->
    ictx.ictx_depth <- ictx.ictx_depth + n;
    eval st env ictx cont
  | L.Lphase (k, cont) ->
    ictx.ictx_phase <- k;
    ictx.ictx_depth <- st.base_depth;
    eval st env ictx cont
  | L.Lshared bind -> Vtensor (Runtime.shared_handle st.rt bind)

and call st name args ictx =
  let d = L.find_def st.lprog name in
  let env =
    try List.combine d.L.lparams args
    with Invalid_argument _ -> fail "VM: arity mismatch calling %s" name
  in
  eval st env ictx d.L.lbody

let new_ictx st ~instance = { ictx_instance = instance; ictx_depth = st.base_depth; ictx_phase = 0 }

let run_main st ~instance (args : value list) : value =
  call st st.lprog.L.entry args (new_ictx st ~instance)
