(** NestedRNN (paper Table 3): an RNN loop nested inside a GRU loop, both
    iterating for a pseudo-random number of steps in [20, 40] — emulated
    tensor-dependent control flow (§E.1). The inner loop's operators run
    ~30x more often than the outer loop's, which is what PGO-guided
    auto-scheduling exploits (Table 9). *)

module Driver = Acrobat_engines.Driver
open Acrobat_tensor

let template =
  {|
def @inner(%n: Int, %state: Tensor[(1, {H})],
           %ib: Tensor[(1, {H})], %ihw: Tensor[({H}, {H})]) -> Tensor[(1, {H})] {
  if (%n == 0) { %state } else {
    let %s = sigmoid(%ib + matmul(%state, %ihw));
    @inner(%n - 1, %s, %ib, %ihw)
  }
}

def @outer(%n: Int, %state: Tensor[(1, {H})],
           %ib: Tensor[(1, {H})], %ihw: Tensor[({H}, {H})],
           %wz: Tensor[({H}, {H})], %uz: Tensor[({H}, {H})], %bz: Tensor[(1, {H})],
           %wr: Tensor[({H}, {H})], %ur: Tensor[({H}, {H})], %br: Tensor[(1, {H})],
           %wh: Tensor[({H}, {H})], %uh: Tensor[({H}, {H})], %bh: Tensor[(1, {H})])
    -> Tensor[(1, {H})] {
  if (%n == 0) { %state } else {
    let %iters = 20 + choice(21);
    let %x = @inner(%iters, %state, %ib, %ihw);
    let %z = sigmoid(matmul(%x, %wz) + matmul(%state, %uz) + %bz);
    let %r = sigmoid(matmul(%x, %wr) + matmul(%state, %ur) + %br);
    let %hh = tanh(matmul(%x, %wh) + matmul(mul(%r, %state), %uh) + %bh);
    let %one = ones((1, {H}));
    let %new = mul(sub(%one, %z), %state) + mul(%z, %hh);
    @outer(%n - 1, %new, %ib, %ihw, %wz, %uz, %bz, %wr, %ur, %br, %wh, %uh, %bh)
  }
}

def @main(%ib: Tensor[(1, {H})], %ihw: Tensor[({H}, {H})],
          %wz: Tensor[({H}, {H})], %uz: Tensor[({H}, {H})], %bz: Tensor[(1, {H})],
          %wr: Tensor[({H}, {H})], %ur: Tensor[({H}, {H})], %br: Tensor[(1, {H})],
          %wh: Tensor[({H}, {H})], %uh: Tensor[({H}, {H})], %bh: Tensor[(1, {H})],
          %input: Tensor[(1, {H})]) -> Tensor[(1, {H})] {
  let %outer_iters = 20 + choice(21);
  @outer(%outer_iters, %input, %ib, %ihw, %wz, %uz, %bz, %wr, %ur, %br, %wh, %uh, %bh)
}
|}

let make ?hidden (size : Model.size) : Model.t =
  let hidden =
    match hidden with
    | Some h -> h
    | None -> ( match size with Model.Small -> 256 | Model.Large -> 512)
  in
  let mat = [ hidden; hidden ] and vec = [ 1; hidden ] in
  let specs =
    [
      "ib", vec; "ihw", mat;
      "wz", mat; "uz", mat; "bz", vec;
      "wr", mat; "ur", mat; "br", vec;
      "wh", mat; "uh", mat; "bh", vec;
    ]
  in
  {
    Model.name = "nestedrnn";
    size;
    source = Model.subst [ "H", hidden ] template;
    inputs = [ "input" ];
    gen_weights = Model.weights_of_specs specs;
    gen_instance =
      (fun rng -> [ "input", Driver.Htensor (Tensor.random rng [ 1; hidden ]) ]);
    degraded = None;
  }
