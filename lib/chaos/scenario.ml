(** Randomized serving scenarios for the chaos harness.

    A scenario is pure data: every knob the replicated serving stack
    exposes — traffic shape, replica count, dispatch/hedge configuration,
    admission bounds, batching policy, requeue budget, and one
    {!Acrobat_device.Faults.plan} per replica — sampled from a seeded
    {!Acrobat_tensor.Rng}. Scenario [i] of campaign seed [S] is generated
    from its own derived RNG, so any scenario regenerates from [(S, i)]
    alone — the property that makes every discovered violation replayable
    with a one-line command.

    Fidelity to the CLI matters here: the arrival trace is derived from
    [sc_seed] exactly the way [Acrobat.serve_cluster] derives it from
    [--seed], and the bursty process uses the same low/high/dwell shape
    [acrobatc serve --bursty] constructs, so {!to_cli} renders a serve
    command whose traffic and fault draws match the simulated scenario. *)

module Rng = Acrobat_tensor.Rng
module Faults = Acrobat_device.Faults
module Batcher = Acrobat_serve.Batcher
module Cluster = Acrobat_serve.Cluster
module Traffic = Acrobat_serve.Traffic
module Tenant = Acrobat_tenancy.Tenant
module Resilience = Acrobat_resilience.Policy
module Brownout = Acrobat_resilience.Brownout
module Net = Acrobat_net.Net

(** The tenant-mix dimension: when present, the scenario runs through the
    multi-tenant dispatcher instead of the cluster — several tenants, each
    with its own model, traffic stream, SLO and quota, plus the autoscaler
    bounds. Tenant seeds derive as [sc_seed + 101 * index], exactly the way
    [acrobatc serve --tenant] derives them from [--seed], so {!to_cli}
    reproduces the same per-tenant arrival traces. *)
type tenancy = {
  tc_tenants : Tenant.t array;
  tc_min : int;  (** Autoscaler floor (initial replicas). *)
  tc_max : int;  (** Autoscaler ceiling; [tc_min] = autoscaling off. *)
}

type t = {
  sc_index : int;  (** Position in the campaign; replay key with the seed. *)
  sc_seed : int;  (** Serving seed: arrival trace, model weights in repro. *)
  sc_requests : int;
  sc_rate : float;  (** Offered load, requests per second. *)
  sc_bursty : bool;  (** MMPP traffic in the CLI's --bursty shape. *)
  sc_replicas : int;
  sc_dispatch : Cluster.dispatch;
  sc_hedge : float option;  (** Hedge percentile; [None] disables. *)
  sc_queue_cap : int;
  sc_deadline_ms : float option;
  sc_policy : Batcher.policy;
  sc_requeue_budget : int;
  sc_plans : Faults.plan array;  (** One per replica, [Faults.none] = clean. *)
  sc_tenancy : tenancy option;  (** Tenant mix; [None] = plain cluster run. *)
  sc_resilience : Resilience.config;
      (** Overload-control dimension; [Resilience.off] = PR-6 behavior. *)
  sc_audit : float;
      (** Sampled-audit rate for the integrity layer; 0.0 = auditing off.
          Corruption scenarios pair a [corrupt=]/[flaky=] clause in some
          replica's plan with a (possibly zero) audit rate. *)
  sc_net : Net.plan option;
      (** Network-fault dimension: the lossy virtual transport between the
          dispatcher and its replicas. [None] = direct calls (every pre-net
          behavior byte-identical). *)
}

(** The arrival process this scenario drives — the exact shape
    [acrobatc serve] would build from [--rate]/[--bursty]. *)
let process (sc : t) : Traffic.process =
  if sc.sc_bursty then
    Traffic.Bursty
      {
        rate_low_per_s = sc.sc_rate /. 4.0;
        rate_high_per_s = sc.sc_rate *. 2.0;
        mean_dwell_us = 50_000.0;
      }
  else Traffic.Poisson { rate_per_s = sc.sc_rate }

let choose rng xs = List.nth xs (Rng.int rng (List.length xs))

(* One replica's fault plan. Rates are drawn from bands that always sum
   within 1.0 (Faults.validate enforces the partition property); the
   kernel=1.0 "always faults" extreme is included but then excludes the
   other probabilistic clauses. Capacity is in synthetic executor elems
   (100 per request, see Campaign), so 200/400/800 cap batches at 2/4/8
   while single requests always fit. *)
let gen_plan rng ~requests : Faults.plan =
  let seed = Rng.int rng 100_000 in
  let kernel =
    if Rng.bernoulli rng 0.5 then choose rng [ 0.05; 0.2; 0.5; 1.0 ] else 0.0
  in
  let straggler_rate, straggler_mult =
    if kernel < 1.0 && Rng.bernoulli rng 0.4 then
      choose rng [ 0.1; 0.3 ], choose rng [ 4.0; 8.0 ]
    else 0.0, 6.0
  in
  let reset =
    if kernel < 1.0 && Rng.bernoulli rng 0.3 then choose rng [ 0.02; 0.1 ] else 0.0
  in
  let capacity =
    if Rng.bernoulli rng 0.2 then Some (choose rng [ 200; 400; 800 ]) else None
  in
  let poison =
    if Rng.bernoulli rng 0.15 then
      List.sort_uniq compare
        (List.init (1 + Rng.int rng 2) (fun _ -> Rng.int rng requests))
    else []
  in
  let plan =
    {
      Faults.none with
      Faults.seed;
      kernel_fault_rate = kernel;
      straggler_rate;
      straggler_mult;
      reset_rate = reset;
      capacity_elems = capacity;
      poison;
    }
  in
  Faults.validate plan;
  plan

(* A gentler plan for tenant-mix scenarios: every probabilistic recovery
   path, but not the ones that can lawfully consume a whole tenant's
   traffic. kernel=1.0 (always faults) is excluded because a fleet pinned
   at one always-faulting replica would poison every request and trip the
   starvation invariant by construction rather than by bug; poison is
   excluded because its ids index a single-stream request space that
   multi-tenant arrivals do not share. *)
let gen_plan_gentle rng : Faults.plan =
  let seed = Rng.int rng 100_000 in
  let kernel = if Rng.bernoulli rng 0.5 then choose rng [ 0.05; 0.2; 0.5 ] else 0.0 in
  let straggler_rate, straggler_mult =
    if Rng.bernoulli rng 0.4 then choose rng [ 0.1; 0.3 ], choose rng [ 4.0; 8.0 ]
    else 0.0, 6.0
  in
  let reset = if Rng.bernoulli rng 0.3 then choose rng [ 0.02; 0.1 ] else 0.0 in
  let capacity =
    if Rng.bernoulli rng 0.2 then Some (choose rng [ 200; 400; 800 ]) else None
  in
  let plan =
    {
      Faults.none with
      Faults.seed;
      kernel_fault_rate = kernel;
      straggler_rate;
      straggler_mult;
      reset_rate = reset;
      capacity_elems = capacity;
    }
  in
  Faults.validate plan;
  plan

(** Generate scenario [index] of the campaign. Deterministic in
    [(campaign_seed, fault_prob, index)]; each replica independently gets a
    fault plan with probability [fault_prob] (0.0 = a fully clean fleet). *)
let generate ~(campaign_seed : int) ~(fault_prob : float) (index : int) : t =
  let rng = Rng.create ((campaign_seed * 1_000_003) + index) in
  let sc_seed = 1 + Rng.int rng 1_000_000 in
  let sc_requests = choose rng [ 20; 40; 80 ] in
  let sc_rate = choose rng [ 500.0; 2000.0; 8000.0 ] in
  let sc_bursty = Rng.bernoulli rng 0.3 in
  let sc_replicas = 1 + Rng.int rng 3 in
  let sc_dispatch =
    choose rng
      [ Cluster.Round_robin; Cluster.Join_shortest_queue; Cluster.Least_expected_latency ]
  in
  let sc_hedge =
    if sc_replicas > 1 && Rng.bernoulli rng 0.4 then
      Some (choose rng [ 80.0; 90.0; 95.0 ])
    else None
  in
  let sc_queue_cap = choose rng [ 8; 16; 64; 256 ] in
  let sc_deadline_ms =
    if Rng.bernoulli rng 0.35 then Some (choose rng [ 5.0; 10.0; 25.0; 50.0 ]) else None
  in
  let sc_policy =
    match Rng.int rng 3 with
    | 0 -> Batcher.Batch1
    | k ->
      let max_batch = choose rng [ 4; 8; 16 ] in
      let max_wait_us = choose rng [ 500.0; 1000.0; 2000.0 ] in
      if k = 1 then Batcher.Fixed { max_batch; max_wait_us }
      else Batcher.Adaptive { max_batch; max_wait_us }
  in
  let sc_requeue_budget = choose rng [ 0; 1; 2; 8 ] in
  let sc_plans =
    Array.init sc_replicas (fun _ ->
        if Rng.bernoulli rng fault_prob then gen_plan rng ~requests:sc_requests
        else Faults.none)
  in
  (* Tenant-mix dimension: ~30% of scenarios exercise the multi-tenant
     dispatcher instead of the cluster. Models are real tiny-catalog ids so
     the CLI reproducer compiles them, tenant seeds follow the CLI's
     [--seed] derivation, and fault plans are redrawn at autoscaler-ceiling
     width with the gentle generator. *)
  let sc_tenancy, sc_plans =
    if not (Rng.bernoulli rng 0.3) then None, sc_plans
    else begin
      let n = 2 + Rng.int rng 3 in
      let tc_tenants =
        Array.init n (fun i ->
            {
              Tenant.tn_name = Fmt.str "t%d" i;
              tn_model = choose rng [ "treelstm"; "birnn"; "moe" ];
              tn_rate_per_s = choose rng [ 500.0; 2000.0; 4000.0 ];
              tn_bursty = sc_bursty;
              tn_seed = Tenant.derived_seed ~seed:sc_seed ~index:i;
              tn_slo_ms = choose rng [ 200.0; 500.0 ];
              tn_quota = choose rng [ 4; 8; 64 ];
              tn_weight = choose rng [ 1.0; 2.0; 4.0 ];
              tn_requests = sc_requests;
            })
      in
      let tc_min = 1 + Rng.int rng 2 in
      let tc_max = tc_min + Rng.int rng 3 in
      let plans =
        Array.init tc_max (fun _ ->
            if Rng.bernoulli rng fault_prob then gen_plan_gentle rng else Faults.none)
      in
      Some { tc_tenants; tc_min; tc_max }, plans
    end
  in
  (* Overload-resilience dimension, drawn last so every pre-existing field
     of scenario [(S, i)] keeps the exact value it had before this
     dimension existed. ~35% of scenarios arm at least one mechanism. *)
  let sc_resilience =
    if not (Rng.bernoulli rng 0.35) then Resilience.off
    else begin
      let rs_retry_budget =
        if Rng.bernoulli rng 0.6 then Some (choose rng [ 0.1; 0.2; 0.5 ]) else None
      in
      let rs_target_delay_us =
        if Rng.bernoulli rng 0.5 then
          Some (choose rng [ 1_000.0; 5_000.0; 20_000.0 ])
        else None
      in
      let rs_brownout =
        if Rng.bernoulli rng 0.4 then begin
          let high_us = choose rng [ 2_000.0; 10_000.0 ] in
          let dwell_us = choose rng [ 1_000.0; 5_000.0 ] in
          Some
            {
              Brownout.bo_high_us = high_us;
              bo_dwell_us = dwell_us;
              bo_low_us = high_us /. 2.0;
            }
        end
        else None
      in
      { Resilience.rs_retry_budget; rs_target_delay_us; rs_brownout }
    end
  in
  (* Silent-corruption dimension, drawn after {e everything} else so every
     pre-existing field of scenario [(S, i)] keeps its exact value. Scaled
     by [fault_prob] (a zero-probability campaign stays clean), ~25% of
     scenarios make one replica silently corrupting — probabilistically
     ([corrupt=]) or with deterministic flaky onset ([flaky=]) — and arm
     the audit gate at a sampled rate (0.0 included: undetected corruption
     must also hold conservation). *)
  let sc_audit =
    if not (Rng.bernoulli rng (0.25 *. fault_prob)) then 0.0
    else begin
      let victim = Rng.int rng (Array.length sc_plans) in
      let p = sc_plans.(victim) in
      let p =
        if Rng.bernoulli rng 0.3 then
          { p with Faults.flaky_after = Some (1 + Rng.int rng 3) }
        else { p with Faults.corrupt_rate = choose rng [ 0.05; 0.2; 0.5; 1.0 ] }
      in
      Faults.validate p;
      sc_plans.(victim) <- p;
      choose rng [ 0.0; 0.25; 0.5; 1.0 ]
    end
  in
  (* Network-fault dimension, drawn after everything else so every
     pre-existing field of scenario [(S, i)] keeps its exact value. ~30% of
     scenarios route dispatch through the lossy virtual transport. Clause
     rates are gentle enough that conservation must come from the
     timeout/resend/dedup machinery, not from luck; the timeout sits well
     above the drawn one-way delays so a delivered message always beats its
     own resend clock. Partition windows need a second replica to matter,
     so they are only drawn on multi-replica fleets. *)
  let sc_net =
    if not (Rng.bernoulli rng 0.3) then None
    else begin
      let np_seed = Rng.int rng 100_000 in
      let np_delay_us = choose rng [ 20.0; 50.0; 120.0; 200.0 ] in
      let np_jitter_us = if Rng.bernoulli rng 0.5 then np_delay_us /. 2.0 else 0.0 in
      let np_drop =
        if Rng.bernoulli rng 0.5 then choose rng [ 0.02; 0.05; 0.15 ] else 0.0
      in
      let np_dup =
        if Rng.bernoulli rng 0.5 then choose rng [ 0.05; 0.1; 0.25 ] else 0.0
      in
      let np_reorder =
        if Rng.bernoulli rng 0.4 then choose rng [ 0.05; 0.2 ] else 0.0
      in
      let np_gray = if Rng.bernoulli rng 0.3 then choose rng [ 0.02; 0.1 ] else 0.0 in
      let fleet =
        match sc_tenancy with Some tc -> tc.tc_max | None -> sc_replicas
      in
      let np_partition =
        if fleet > 1 && Rng.bernoulli rng 0.4 then begin
          let t0 = 2_000.0 +. float_of_int (Rng.int rng 18_001) in
          let t1 = t0 +. 5_000.0 +. float_of_int (Rng.int rng 25_001) in
          Some (t0, t1, [])
        end
        else None
      in
      let plan =
        {
          Net.none with
          Net.np_seed;
          np_delay_us;
          np_jitter_us;
          np_drop;
          np_dup;
          np_reorder;
          np_gray;
          np_partition;
          np_timeout_us = 5_000.0;
        }
      in
      Net.validate plan;
      Some plan
    end
  in
  {
    sc_index = index;
    sc_seed;
    sc_requests;
    sc_rate;
    sc_bursty;
    sc_replicas;
    sc_dispatch;
    sc_hedge;
    sc_queue_cap;
    sc_deadline_ms;
    sc_policy;
    sc_requeue_budget;
    sc_plans;
    sc_tenancy;
    sc_resilience;
    sc_audit;
    sc_net;
  }

(** Total requests the scenario's arrival streams generate: one stream per
    tenant on tenant-mix runs, a single stream otherwise. *)
let total_requests (sc : t) : int =
  match sc.sc_tenancy with
  | None -> sc.sc_requests
  | Some tc -> Array.length tc.tc_tenants * sc.sc_requests

(* --- Measures the shrinker minimizes --- *)

let plan_clauses (p : Faults.plan) : int =
  (if p.Faults.kernel_fault_rate > 0.0 then 1 else 0)
  + (if p.Faults.straggler_rate > 0.0 then 1 else 0)
  + (if p.Faults.reset_rate > 0.0 then 1 else 0)
  + (if p.Faults.capacity_elems <> None then 1 else 0)
  + (if p.Faults.poison <> [] then 1 else 0)
  + (if p.Faults.corrupt_rate > 0.0 then 1 else 0)
  + if p.Faults.flaky_after <> None then 1 else 0

(** Enabled fault clauses across every replica's plan — the headline size
    the shrinker drives down (acceptance: a known-bad plan shrinks to <= 2
    clauses that still violate). *)
let fault_clause_count (sc : t) : int =
  Array.fold_left (fun acc p -> acc + plan_clauses p) 0 sc.sc_plans

(** Render the scenario as a one-line [acrobatc serve] reproducer. The
    serve command replays the same arrival trace (seed-derived exactly as
    the harness draws it), the same cluster topology and the same fault
    plans against the real compiled-model executor; [--requeue-budget]
    forces the cluster path even for one replica, matching the engine the
    harness drives. *)
let to_cli (sc : t) : string =
  let b = Buffer.create 160 in
  let add fmt = Fmt.kstr (Buffer.add_string b) fmt in
  let add_policy () =
    match sc.sc_policy with
    | Batcher.Batch1 -> add " --policy batch1"
    | Batcher.Fixed { max_batch; max_wait_us } ->
      add " --policy fixed --max-batch %d --max-wait-us %g" max_batch max_wait_us
    | Batcher.Adaptive { max_batch; max_wait_us } ->
      add " --policy adaptive --max-batch %d --max-wait-us %g" max_batch max_wait_us
  in
  let add_resilience () =
    let rs = sc.sc_resilience in
    Option.iter (fun f -> add " --retry-budget %g" f) rs.Resilience.rs_retry_budget;
    Option.iter
      (fun t -> add " --concurrency-target %g" (t /. 1000.0))
      rs.Resilience.rs_target_delay_us;
    Option.iter
      (fun b -> add " --brownout %s" (Resilience.brownout_to_string b))
      rs.Resilience.rs_brownout
  in
  (* --faults is positional (plan i -> replica i), so emit every plan up to
     the last enabled one; disabled placeholders parse back to no faults. *)
  let add_faults () =
    let last_enabled = ref (-1) in
    Array.iteri (fun i p -> if Faults.enabled p then last_enabled := i) sc.sc_plans;
    for i = 0 to !last_enabled do
      add " --faults \"%s\"" (Faults.to_spec sc.sc_plans.(i))
    done
  in
  let add_net () =
    Option.iter (fun p -> add " --net \"%s\"" (Net.to_spec p)) sc.sc_net
  in
  (match sc.sc_tenancy with
  | None ->
    add "acrobatc serve --model treelstm --size tiny --iters 100";
    add " --requests %d --rate %g" sc.sc_requests sc.sc_rate;
    if sc.sc_bursty then add " --bursty";
    add_policy ();
    add " --queue-cap %d" sc.sc_queue_cap;
    Option.iter (fun ms -> add " --deadline-ms %g" ms) sc.sc_deadline_ms;
    add " --seed %d --replicas %d --dispatch %s" sc.sc_seed sc.sc_replicas
      (Cluster.dispatch_name sc.sc_dispatch);
    Option.iter (fun p -> add " --hedge %g" p) sc.sc_hedge;
    add " --requeue-budget %d" sc.sc_requeue_budget;
    add_resilience ();
    if sc.sc_audit > 0.0 then add " --audit %g" sc.sc_audit;
    add_faults ();
    add_net ()
  | Some tc ->
    (* Tenant mode: model, rate, SLO and quota live in the tenant specs;
       per-tenant seeds re-derive from --seed the way the harness drew
       them, and --requests is the per-tenant stream length. *)
    add "acrobatc serve --size tiny --iters 100";
    add " --requests %d" sc.sc_requests;
    if sc.sc_bursty then add " --bursty";
    add_policy ();
    add " --queue-cap %d" sc.sc_queue_cap;
    add " --seed %d" sc.sc_seed;
    Array.iter (fun t -> add " --tenant %s" (Tenant.to_spec t)) tc.tc_tenants;
    add " --autoscale %d:%d" tc.tc_min tc.tc_max;
    Option.iter (fun p -> add " --hedge %g" p) sc.sc_hedge;
    add_resilience ();
    if sc.sc_audit > 0.0 then add " --audit %g" sc.sc_audit;
    add_faults ();
    add_net ());
  Buffer.contents b

(** Compact JSON view for campaign reports (deterministic field order). *)
let to_json (sc : t) : Acrobat_obs.Json.t =
  let module J = Acrobat_obs.Json in
  J.Obj
    [
      "index", J.Int sc.sc_index;
      "seed", J.Int sc.sc_seed;
      "requests", J.Int sc.sc_requests;
      "replicas", J.Int sc.sc_replicas;
      "tenants",
      J.Int (match sc.sc_tenancy with None -> 0 | Some tc -> Array.length tc.tc_tenants);
      "clauses", J.Int (fault_clause_count sc);
      "resilience", J.Bool (Resilience.active sc.sc_resilience);
      "audit", J.Float sc.sc_audit;
      "net", J.Bool (sc.sc_net <> None);
      "repro", J.Str (to_cli sc);
    ]
