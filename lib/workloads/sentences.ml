(** Synthetic token sequences with XNLI-like length statistics. *)

open Acrobat_tensor

let sample_length rng =
  let n = int_of_float (21.0 +. (9.0 *. Rng.normal rng)) in
  max 4 (min 50 n)

(** A sentence as word ids. *)
let sample ?(vocab = 10_000) rng =
  List.init (sample_length rng) (fun _ -> Rng.int rng vocab)

(** Fixed-length sequence (e.g. padded transformer inputs). *)
let sample_fixed ?(vocab = 10_000) rng ~len = List.init len (fun _ -> Rng.int rng vocab)
