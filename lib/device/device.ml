(** The simulated accelerator.

    Engines drive this module instead of a CUDA runtime. Each call performs
    the real bookkeeping (arena allocation, contiguity checks, counters) and
    charges the {!Cost_model} for the simulated time; tensor values themselves
    are computed by the caller on the CPU. See DESIGN.md §2 for why this
    substitution preserves the paper's evaluation. *)

module Trace = Acrobat_obs.Trace
module Json = Acrobat_obs.Json

type t = {
  cost : Cost_model.t;
  memory : Memory.t;
  profiler : Profiler.t;
  faults : Faults.t option;
      (** Shared fault injector; one injector can span many devices so
          retried work sees fresh fault draws. *)
  tracer : Trace.t;
      (** Span sink for launches/copies. Timestamps are the profiler's
          accumulated virtual time, emitted relative to the tracer's
          ambient base (the serving layer sets the base to the batch's
          launch time before each execution). *)
}

(** [create ?faults ()] builds a device. When a fault plan carries a memory
    capacity, the arena is bounded accordingly and {!alloc} can raise
    {!Memory.Device_oom}. Creating a device opens a new batch attempt on the
    injector: one fault-fate draw covers all of this device's launches. *)
let create ?(cost = Cost_model.default) ?faults ?(tracer = Trace.null) () =
  let capacity = Option.bind faults (fun f -> (Faults.plan f).Faults.capacity_elems) in
  Option.iter Faults.begin_attempt faults;
  {
    cost;
    memory = Memory.create ?capacity ();
    profiler = Profiler.create ();
    faults;
    tracer;
  }

let profiler t = t.profiler
let tracer t = t.tracer
let cost_model t = t.cost
let memory t = t.memory
let faults t = t.faults

(** Is this device's current batch attempt silently corrupting its outputs?
    Consulted by the executor's value path, which perturbs kernel results
    without raising — detection is the audit layer's job, not the device's. *)
let corrupting t =
  match t.faults with None -> false | Some f -> Faults.corrupt_attempt f

let reset t =
  Memory.reset t.memory;
  Profiler.reset t.profiler

(** Reserve device memory for [elems] elements.
    @raise Memory.Device_oom on a bounded arena that cannot fit it. *)
let alloc t ~elems = Memory.alloc t.memory ~elems

(* Consult the fault injector for one launch; returns the latency
   multiplier. An injected failure still burns the API call and launch
   overhead — the device was entered, the kernel just did not complete —
   so failed attempts cost simulated time like real ones do. *)
let inject_launch t =
  match t.faults with
  | None -> 1.0
  | Some f -> (
    match Faults.on_launch f with
    | mult -> mult
    | exception (Faults.Fault { kind; _ } as e) ->
      Profiler.charge t.profiler Api_overhead t.cost.api_call_us;
      let burn =
        match kind with
        | Faults.Kernel_fault -> t.cost.kernel_launch_us
        | Faults.Device_reset -> (Faults.plan f).Faults.reset_cost_us
      in
      Profiler.charge t.profiler Kernel_exec burn;
      Trace.instant_rel t.tracer ~name:"fault" ~cat:"device"
        ~ts_us:(Profiler.total_us t.profiler)
        ~args:[ "kind", Json.Str (Faults.kind_name kind) ];
      raise e)

(** Launch one compute kernel performing [flops] of work.

    [scattered_inputs] indicates the kernel reads its batched inputs through
    an index array (gather fusion with non-contiguous inputs); it is charged
    the indirection penalty. [quality] is the auto-scheduler's schedule
    quality in (0, 1]; 1.0 is the best schedule found at the full iteration
    budget (§D.1). *)
let launch_kernel ?(quality = 1.0) ?(scattered_inputs = false) ?(bytes = 0.0) t ~flops =
  assert (quality > 0.0 && quality <= 1.0);
  let fault_mult = inject_launch t in
  let base = Cost_model.kernel_time t.cost ~flops ~bytes in
  let penalty = if scattered_inputs then 1.0 +. t.cost.indirection_penalty else 1.0 in
  let time = base *. penalty /. quality *. fault_mult in
  let ts = Profiler.total_us t.profiler in
  t.profiler.kernel_calls <- t.profiler.kernel_calls + 1;
  Profiler.charge t.profiler Kernel_exec time;
  Profiler.charge t.profiler Api_overhead t.cost.api_call_us;
  Trace.complete_rel t.tracer ~name:"kernel" ~cat:"device" ~ts_us:ts ~dur_us:time
    ~args:[ "flops", Json.Float flops ]

(** Launch an explicit memory-gather kernel copying [bytes] into a fresh
    contiguous slab; returns the slab's base address. *)
let launch_gather t ~bytes ~elems =
  let fault_mult = inject_launch t in
  let time = Cost_model.gather_time t.cost ~bytes *. fault_mult in
  let ts = Profiler.total_us t.profiler in
  t.profiler.kernel_calls <- t.profiler.kernel_calls + 1;
  t.profiler.gather_kernels <- t.profiler.gather_kernels + 1;
  t.profiler.gather_bytes <- t.profiler.gather_bytes + bytes;
  Profiler.charge t.profiler Kernel_exec time;
  Profiler.charge t.profiler Api_overhead t.cost.api_call_us;
  Trace.complete_rel t.tracer ~name:"gather" ~cat:"device" ~ts_us:ts ~dur_us:time
    ~args:[ "bytes", Json.Int bytes ];
  Memory.alloc t.memory ~elems

(** One host->device (or device->host) transfer of [bytes]. *)
let memcpy t ~bytes =
  let time = Cost_model.memcpy_time t.cost ~bytes in
  let ts = Profiler.total_us t.profiler in
  t.profiler.memcpy_calls <- t.profiler.memcpy_calls + 1;
  Profiler.charge t.profiler Mem_transfer time;
  Profiler.charge t.profiler Api_overhead t.cost.api_call_us;
  Trace.complete_rel t.tracer ~name:"memcpy" ~cat:"device" ~ts_us:ts ~dur_us:time
    ~args:[ "bytes", Json.Int bytes ]

(** Upload a tensor, returning its device address. *)
let upload t tensor =
  let elems = Acrobat_tensor.Tensor.numel tensor in
  memcpy t ~bytes:(elems * Cost_model.bytes_per_elem);
  alloc t ~elems

(* --- Host-side accounting helpers; engines call these as they work. --- *)

let charge_dfg_node t =
  t.profiler.nodes_created <- t.profiler.nodes_created + 1;
  Profiler.charge t.profiler Dfg_construction t.cost.dfg_node_us

let charge_heap_op t = Profiler.charge t.profiler Scheduling t.cost.heap_op_us

let charge_signature_hash t =
  Profiler.charge t.profiler Scheduling t.cost.signature_hash_us

let charge_bucket_push t = Profiler.charge t.profiler Scheduling t.cost.bucket_push_us

let charge_scheduling t us = Profiler.charge t.profiler Scheduling us

let charge_vm_dispatch t = Profiler.charge t.profiler Vm_overhead t.cost.vm_dispatch_us

let charge_fiber_switch t =
  t.profiler.fiber_switches <- t.profiler.fiber_switches + 1;
  Profiler.charge t.profiler Fiber_overhead t.cost.fiber_switch_us;
  Trace.instant_rel t.tracer ~name:"fiber_switch" ~cat:"runtime"
    ~ts_us:(Profiler.total_us t.profiler)

let note_batch t = t.profiler.batches_executed <- t.profiler.batches_executed + 1
let note_unbatched t = t.profiler.unbatched_ops <- t.profiler.unbatched_ops + 1

(** Simulated elapsed time so far, in milliseconds. *)
let elapsed_ms t = Profiler.total_ms t.profiler
