(** Cost model for the simulated accelerator and host runtime.

    The repository has no GPU, so latencies are *derived*, not measured: every
    engine (ACROBAT, DyNet, Cortex, PyTorch-like) really executes its
    workload — building DFGs, scheduling, batching, computing tensor values —
    and charges this model for each unit of work it performs. The *counts*
    (kernel launches, gather bytes, DFG nodes, heap operations, ...) are real;
    only the unit costs below are constants. Constants are calibrated so that
    the activity breakdown for TreeLSTM/BiRNN reproduces the ratios of the
    paper's Table 5 on an RTX 3070-class device.

    All times are in microseconds; work in FLOPs; memory in bytes. *)

type t = {
  (* --- Device-side costs --- *)
  kernel_launch_us : float;
      (** Fixed device-side latency per kernel launch. *)
  peak_flops_per_us : float;
      (** Arithmetic throughput at full utilization (large GEMMs). *)
  saturation_flops : float;
      (** Half-utilization point: a kernel of [f] FLOPs runs at an
          effective rate of [peak * f / (f + saturation_flops)] — small
          kernels cannot fill the device. *)
  min_rate_flops_per_us : float;
      (** Floor on the effective rate (tiny kernels are latency-, not
          throughput-bound). *)
  hbm_bandwidth_bytes_per_us : float;
      (** Device memory bandwidth: kernels are modeled as roofline,
          max(compute time, traffic / bandwidth). *)
  gather_bandwidth_bytes_per_us : float;
      (** Device-to-device copy bandwidth for explicit memory gathers. *)
  indirection_penalty : float;
      (** Relative slowdown of a gather-fused kernel reading scattered
          inputs through an index array (cf. §7.3: indirect accesses can
          cause a slowdown). *)
  (* --- Host-side costs --- *)
  api_call_us : float;  (** Host CUDA-API cost per kernel launch. *)
  memcpy_call_us : float;  (** Host cost per host<->device transfer call. *)
  memcpy_bandwidth_bytes_per_us : float;  (** Host<->device bandwidth. *)
  dfg_node_us : float;  (** Cost of allocating + linking one DFG node. *)
  heap_op_us : float;  (** One push/pop on an agenda priority queue. *)
  signature_hash_us : float;  (** Hashing one node signature (DyNet). *)
  bucket_push_us : float;  (** O(1) depth-bucket insertion (ACROBAT). *)
  vm_dispatch_us : float;
      (** Per-instruction dispatch overhead of the interpreted Relay VM;
          the AOT path does not pay this (Table 7). *)
  fiber_switch_us : float;  (** One cooperative fiber context switch. *)
}

(** Defaults calibrated against the paper's Table 5 (see module docstring). *)
let default =
  {
    kernel_launch_us = 2.0;
    peak_flops_per_us = 5_000_000.0;
    saturation_flops = 1.0e8;
    min_rate_flops_per_us = 400_000.0;
    hbm_bandwidth_bytes_per_us = 280_000.0;
    gather_bandwidth_bytes_per_us = 250_000.0;
    indirection_penalty = 0.18;
    api_call_us = 2.0;
    memcpy_call_us = 1.5;
    memcpy_bandwidth_bytes_per_us = 8_000.0;
    dfg_node_us = 0.22;
    heap_op_us = 0.12;
    signature_hash_us = 0.13;
    bucket_push_us = 0.05;
    vm_dispatch_us = 0.35;
    fiber_switch_us = 0.6;
  }

let bytes_per_elem = 4

(** Device time of one kernel launch doing [flops] useful work and moving
    [bytes] to/from device memory: launch latency plus the roofline
    max(compute, traffic) — compute at a utilization-dependent effective
    rate. *)
let kernel_time ?(bytes = 0.0) t ~flops =
  let f = Float.max 1.0 flops in
  let rate =
    Float.max t.min_rate_flops_per_us (t.peak_flops_per_us *. f /. (f +. t.saturation_flops))
  in
  t.kernel_launch_us +. Float.max (f /. rate) (bytes /. t.hbm_bandwidth_bytes_per_us)

(** Device time of an explicit memory-gather kernel moving [bytes]. *)
let gather_time t ~bytes =
  t.kernel_launch_us +. (float_of_int bytes /. t.gather_bandwidth_bytes_per_us)

(** Host<->device transfer time for one call moving [bytes]. *)
let memcpy_time t ~bytes =
  t.memcpy_call_us +. (float_of_int bytes /. t.memcpy_bandwidth_bytes_per_us)

(** Cost of making a model resident on a device: one bulk host->device
    transfer of its [param_bytes]. The multi-tenant dispatcher charges this
    whenever a launch changes a replica's resident model (including the
    cold start onto an empty replica), sized from the catalog's parameter
    footprint. *)
let model_swap_time t ~param_bytes = memcpy_time t ~bytes:param_bytes
