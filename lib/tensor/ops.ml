(** Tensor operators.

    These are the primitive computations referenced by IR ops and executed by
    the simulated device. Shape rules live in {!Shape}; FLOP estimates used by
    the device cost model live in [Device.Cost_model]. *)

let add a b = Tensor.broadcast_op2 ( +. ) a b
let sub a b = Tensor.broadcast_op2 ( -. ) a b
let mul a b = Tensor.broadcast_op2 ( *. ) a b
let div a b = Tensor.broadcast_op2 ( /. ) a b

let scale k t = Tensor.map (fun x -> k *. x) t
let neg t = scale (-1.0) t

let sigmoid t = Tensor.map (fun x -> 1.0 /. (1.0 +. exp (-.x))) t
let tanh t = Tensor.map Float.tanh t
let relu t = Tensor.map (fun x -> Float.max 0.0 x) t
let exp t = Tensor.map Stdlib.exp t
let sqrt t = Tensor.map Stdlib.sqrt t

(* Tanh-approximation GELU, as used by BERT-family models. *)
let gelu t =
  Tensor.map
    (fun x ->
      0.5 *. x
      *. (1.0 +. Float.tanh (0.7978845608028654 *. (x +. (0.044715 *. x *. x *. x)))))
    t

(** [matmul a b] for 2-D [a : (m, k)] and [b : (k, n)]. *)
let matmul a b =
  let out_shape = Shape.matmul (Tensor.shape a) (Tensor.shape b) in
  match Tensor.shape a, Tensor.shape b with
  | [ m; k ], [ _; n ] ->
    let out = Tensor.zeros out_shape in
    let da = Tensor.data a and db = Tensor.data b and dc = Tensor.data out in
    for i = 0 to m - 1 do
      for l = 0 to k - 1 do
        let aa = da.((i * k) + l) in
        if aa <> 0.0 then begin
          let boff = l * n and coff = i * n in
          for j = 0 to n - 1 do
            dc.(coff + j) <- dc.(coff + j) +. (aa *. db.(boff + j))
          done
        end
      done
    done;
    out
  | _ -> Shape.fail "matmul: expected 2-D tensors"

(** [dense x w] is [x @ w]; the linear-transformation primitive. *)
let dense x w = matmul x w

(** [dense_bias x w b] is [x @ w + b]. *)
let dense_bias x w b = add (matmul x w) b

let transpose t =
  match Tensor.shape t with
  | [ m; n ] ->
    let out = Tensor.zeros [ n; m ] in
    let src = Tensor.data t and dst = Tensor.data out in
    for i = 0 to m - 1 do
      for j = 0 to n - 1 do
        dst.((j * m) + i) <- src.((i * n) + j)
      done
    done;
    out
  | s -> Shape.fail "transpose: expected 2-D tensor, got %a" Shape.pp s

(** Concatenate along the last axis; all other dims must agree. *)
let concat ts =
  match ts with
  | [] -> Shape.fail "concat: empty list"
  | first :: _ ->
    let axis = Shape.rank (Tensor.shape first) - 1 in
    let out_shape = Shape.concat ~axis (List.map Tensor.shape ts) in
    let rows = Shape.numel out_shape / List.nth out_shape axis in
    let out = Tensor.zeros out_shape in
    let dst = Tensor.data out in
    let row_width = List.nth out_shape axis in
    let col = ref 0 in
    List.iter
      (fun t ->
        let w = List.nth (Tensor.shape t) axis in
        let src = Tensor.data t in
        for r = 0 to rows - 1 do
          Array.blit src (r * w) dst ((r * row_width) + !col) w
        done;
        col := !col + w)
      ts;
    out

(** [slice t ~lo ~hi] slices the last axis to the half-open range [lo, hi). *)
let slice t ~lo ~hi =
  let s = Tensor.shape t in
  let axis = Shape.rank s - 1 in
  let w = List.nth s axis in
  if not (0 <= lo && lo < hi && hi <= w) then
    Shape.fail "slice: bad range [%d, %d) for width %d" lo hi w;
  let rows = Tensor.numel t / w in
  let w' = hi - lo in
  let out_shape = List.mapi (fun i d -> if i = axis then w' else d) s in
  let out = Tensor.zeros out_shape in
  let src = Tensor.data t and dst = Tensor.data out in
  for r = 0 to rows - 1 do
    Array.blit src ((r * w) + lo) dst (r * w') w'
  done;
  out

(** Softmax over the last axis. *)
let softmax t =
  let s = Tensor.shape t in
  let w = match List.rev s with d :: _ -> d | [] -> 1 in
  let rows = Tensor.numel t / w in
  let out = Tensor.copy t in
  let d = Tensor.data out in
  for r = 0 to rows - 1 do
    let off = r * w in
    let m = ref neg_infinity in
    for j = 0 to w - 1 do
      m := Float.max !m d.(off + j)
    done;
    let z = ref 0.0 in
    for j = 0 to w - 1 do
      let e = Stdlib.exp (d.(off + j) -. !m) in
      d.(off + j) <- e;
      z := !z +. e
    done;
    for j = 0 to w - 1 do
      d.(off + j) <- d.(off + j) /. !z
    done
  done;
  out

(** Argmax over the last axis, returned as a tensor of indices (as floats). *)
let argmax t =
  let s = Tensor.shape t in
  let w = match List.rev s with d :: _ -> d | [] -> 1 in
  let rows = Tensor.numel t / w in
  let out_shape = match s with [] | [ _ ] -> [] | _ -> List.rev (List.tl (List.rev s)) in
  let out = Tensor.zeros (if out_shape = [] then [ 1 ] else out_shape) in
  let src = Tensor.data t and dst = Tensor.data out in
  for r = 0 to rows - 1 do
    let off = r * w in
    let best = ref 0 in
    for j = 1 to w - 1 do
      if src.(off + j) > src.(off + !best) then best := j
    done;
    dst.(r) <- float_of_int !best
  done;
  out

let reduce_sum t = Tensor.scalar (Tensor.sum t)

let reduce_mean t = Tensor.scalar (Tensor.mean t)

(** Layer normalisation over the last axis with learned gain/bias. *)
let layernorm ?(eps = 1e-5) t gain bias =
  let s = Tensor.shape t in
  let w = match List.rev s with d :: _ -> d | [] -> 1 in
  let rows = Tensor.numel t / w in
  let out = Tensor.copy t in
  let d = Tensor.data out in
  let g = Tensor.data gain and b = Tensor.data bias in
  for r = 0 to rows - 1 do
    let off = r * w in
    let mu = ref 0.0 in
    for j = 0 to w - 1 do
      mu := !mu +. d.(off + j)
    done;
    let mu = !mu /. float_of_int w in
    let var = ref 0.0 in
    for j = 0 to w - 1 do
      let dx = d.(off + j) -. mu in
      var := !var +. (dx *. dx)
    done;
    let denom = Stdlib.sqrt ((!var /. float_of_int w) +. eps) in
    for j = 0 to w - 1 do
      d.(off + j) <- (((d.(off + j) -. mu) /. denom) *. g.(j mod w)) +. b.(j mod w)
    done
  done;
  out

(** Entropy of a probability row-vector; used by early-exit confidence. *)
let entropy t =
  let p = Tensor.data t in
  let h = ref 0.0 in
  Array.iter (fun x -> if x > 1e-12 then h := !h -. (x *. log x)) p;
  Tensor.scalar !h
