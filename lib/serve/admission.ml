(** Admission control: a bounded request queue with load shedding and
    deadline drops.

    Backpressure is the first line of defense of an online server: when the
    offered load exceeds device capacity, an unbounded queue turns every
    request's latency into the queue's age. We bound the queue and shed at
    the door instead (callers count the shed), and expire requests whose
    deadline has already passed when they are popped for execution — running
    them would waste device time on an answer nobody is waiting for.

    Queued requests are ordered earliest-deadline-first (EDF) with
    insertion order breaking ties, so near-deadline work is never starved
    behind requests that have more slack. Deadline-less requests sort
    last. When every queued request carries the same {e relative} deadline
    — one shared [--deadline-ms], one tenant's SLO, or no deadline at all,
    i.e. every configuration that predates per-queue deadline mixing —
    absolute deadlines are monotone in arrival order and EDF is
    order-identical to the old FIFO, pops and sweeps included.

    [eager_sweep] additionally purges expired requests on {e every} offer
    (the resilience layer arms it): under overload, dead requests stop
    holding queue slots that would otherwise shed live arrivals. Off by
    default — the legacy queue sweeps only when full. *)

type 'a request = {
  rq_id : int;
  rq_payload : 'a;
  rq_arrival_us : float;
  rq_deadline_us : float option;  (** Absolute; [None] = best effort. *)
}

(* Queue entries carry the insertion sequence number for the stable EDF
   tie-break. *)
type 'a entry = { e_seq : int; e_req : 'a request }

type 'a t = {
  capacity : int;
  eager_sweep : bool;
  mutable q : 'a entry list;  (** Sorted by (deadline, insertion seq). *)
  mutable next_seq : int;
  mutable shed : int;  (** Rejected at admission: queue full. *)
  mutable expired : int;  (** Dropped at dequeue (or swept): deadline passed. *)
}

let create ?(eager_sweep = false) ~capacity () =
  if capacity <= 0 then Fmt.invalid_arg "Admission.create: capacity must be positive";
  { capacity; eager_sweep; q = []; next_seq = 0; shed = 0; expired = 0 }

let length t = List.length t.q
let is_empty t = t.q = []
let shed_count t = t.shed
let expired_count t = t.expired

let deadline_key (r : 'a request) =
  match r.rq_deadline_us with Some d -> d | None -> infinity

(* (deadline, seq) strict ordering: [a] pops before [b]. *)
let before a b =
  let da = deadline_key a.e_req and db = deadline_key b.e_req in
  if da < db then true else if da > db then false else a.e_seq < b.e_seq

let insert t (r : 'a request) =
  let e = { e_seq = t.next_seq; e_req = r } in
  t.next_seq <- t.next_seq + 1;
  let rec go = function
    | [] -> [ e ]
    | x :: rest -> if before e x then e :: x :: rest else x :: go rest
  in
  t.q <- go t.q

(** Earliest queued arrival time, if any — the batcher's timeout anchor.
    Scans: under EDF the head is the most urgent request, not necessarily
    the oldest. *)
let oldest_arrival_us t =
  match t.q with
  | [] -> None
  | e :: rest ->
    Some
      (List.fold_left
         (fun acc x -> Float.min acc x.e_req.rq_arrival_us)
         e.e_req.rq_arrival_us rest)

let expired_at ~now_us (r : 'a request) =
  match r.rq_deadline_us with Some d -> now_us > d | None -> false

(* Drop (and count) every already-expired request in place, returning the
   dropped requests. Called when the queue is full — a full queue of dead
   requests must not shed live ones — and on every offer under
   [eager_sweep]. *)
let sweep_expired t ~now_us : 'a request list =
  let dead, live = List.partition (fun e -> expired_at ~now_us e.e_req) t.q in
  t.q <- live;
  t.expired <- t.expired + List.length dead;
  List.map (fun e -> e.e_req) dead

(** Like {!offer}, but also returns the requests the sweep expired — the
    cluster layer needs per-request visibility to keep its request-id
    accounting exact, where the single server only needs the counters. *)
let offer_swept t ~now_us (r : 'a request) : bool * 'a request list =
  let swept =
    if t.eager_sweep || List.length t.q >= t.capacity then sweep_expired t ~now_us
    else []
  in
  if List.length t.q >= t.capacity then begin
    t.shed <- t.shed + 1;
    false, swept
  end
  else begin
    insert t r;
    true, swept
  end

(** Admit [r], or shed it when the queue is at capacity. A full queue is
    first swept of requests whose deadline already passed (counted under
    [expired], same as a drop at dequeue) — they were never going to
    execute, and they must not cause a live request to be shed. *)
let offer t ~now_us (r : 'a request) : bool = fst (offer_swept t ~now_us r)

(** Like {!take}, but also returns the requests dropped as expired. *)
let take_with_expired t ~now_us ~limit : 'a request list * 'a request list =
  let rec go k q acc dropped =
    if k = 0 then q, List.rev acc, List.rev dropped
    else
      match q with
      | [] -> q, List.rev acc, List.rev dropped
      | e :: rest ->
        if expired_at ~now_us e.e_req then begin
          t.expired <- t.expired + 1;
          go k rest acc (e.e_req :: dropped)
        end
        else go (k - 1) rest (e.e_req :: acc) dropped
  in
  let q, live, dropped = go limit t.q [] [] in
  t.q <- q;
  live, dropped

(** Pop up to [limit] live requests in EDF order, silently discarding (and
    counting) any whose deadline passed while they waited. *)
let take t ~now_us ~limit : 'a request list = fst (take_with_expired t ~now_us ~limit)

(** Drain the whole queue: live requests in EDF order plus the expired
    remainder (counted). Used on replica failover. *)
let drain t ~now_us : 'a request list * 'a request list =
  take_with_expired t ~now_us ~limit:(List.length t.q)
