(** Queue-delay driven replica autoscaling.

    The control loop samples per-tenant queue delay every [as_interval_us]
    of virtual time and compares the worst smoothed delay against two
    thresholds: sustained delay above [as_up_delay_us] adds a replica
    (usable after [as_warmup_us] of cold start), delay below
    [as_down_delay_us] with spare capacity retires one. Decisions are
    separated by [as_cooldown_us] so one flash crowd produces a measured
    ramp instead of a thrash, and every scale event bumps an epoch counter
    the dispatcher uses to fence in-flight continuations.

    Scale-down is drain-then-retire: the victim replica stops taking new
    batches immediately but finishes the one it is running, so request
    conservation holds across scale events — the chaos invariant checker
    asserts exactly that. *)

type config = {
  as_min : int;  (** Replicas at start and the scale-down floor. *)
  as_max : int;  (** Scale-up ceiling. *)
  as_interval_us : float;  (** Control-loop sampling period. *)
  as_up_delay_us : float;  (** Worst queue delay that triggers scale-up. *)
  as_down_delay_us : float;  (** Worst queue delay that permits scale-down. *)
  as_cooldown_us : float;  (** Minimum spacing between scale decisions. *)
  as_warmup_us : float;  (** Cold start: scale-up to first launch. *)
}

let default ~min_replicas ~max_replicas =
  if min_replicas < 1 then Fmt.invalid_arg "autoscale: min must be >= 1";
  if max_replicas < min_replicas then Fmt.invalid_arg "autoscale: max < min";
  {
    as_min = min_replicas;
    as_max = max_replicas;
    as_interval_us = 5_000.0;
    as_up_delay_us = 4_000.0;
    as_down_delay_us = 300.0;
    as_cooldown_us = 15_000.0;
    as_warmup_us = 5_000.0;
  }

(** Fixed-size (autoscaling-off) configuration: [n] replicas forever. *)
let fixed n =
  let cfg = default ~min_replicas:n ~max_replicas:n in
  cfg

type decision = Hold | Scale_up | Scale_down

let decision_name = function
  | Hold -> "hold"
  | Scale_up -> "scale_up"
  | Scale_down -> "scale_down"

type t = {
  cfg : config;
  mutable last_scale_us : float;
  mutable epoch : int;  (** Bumped on every applied scale decision. *)
  mutable scale_ups : int;
  mutable scale_downs : int;
}

let create (cfg : config) : t =
  { cfg; last_scale_us = neg_infinity; epoch = 0; scale_ups = 0; scale_downs = 0 }

let epoch t = t.epoch
let scale_ups t = t.scale_ups
let scale_downs t = t.scale_downs

(** One control-loop step. [replicas] counts capacity that exists or is
    warming (draining replicas excluded); [max_queue_delay_us] is the worst
    smoothed per-tenant queue delay at this sample. *)
let decide t ~now_us ~replicas ~max_queue_delay_us : decision =
  if now_us -. t.last_scale_us < t.cfg.as_cooldown_us then Hold
  else if max_queue_delay_us >= t.cfg.as_up_delay_us && replicas < t.cfg.as_max then
    Scale_up
  else if max_queue_delay_us <= t.cfg.as_down_delay_us && replicas > t.cfg.as_min then
    Scale_down
  else Hold

(** Record that a decision was applied at [now_us]; starts the cooldown and
    advances the scale epoch. *)
let note_scaled t ~now_us ~(decision : decision) =
  t.last_scale_us <- now_us;
  t.epoch <- t.epoch + 1;
  match decision with
  | Scale_up -> t.scale_ups <- t.scale_ups + 1
  | Scale_down -> t.scale_downs <- t.scale_downs + 1
  | Hold -> ()
