(** Framework presets: the configurations and policies that realize each
    evaluated system on the shared substrate (see DESIGN.md §2).

    - {b ACROBAT}: all static optimizations ({!Acrobat_compiler.Config.acrobat}),
      inline-depth scheduling, auto-scheduled kernels, AOT closures.
    - {b DyNet}: no static analysis; composite vendor kernels (an
      [affine_transform]-style vertical fusion only — what cuDNN/Eigen give
      it); agenda or runtime-depth scheduling; explicit gathers; brittle
      batching heuristics; per-tensor transfers. [improved] is the paper's
      DN++ (§E.4 fixes).
    - {b PyTorch}: same granularity, but eager (one launch per op, no
      batching) and interpreted. *)

open Acrobat_compiler

let dynet_config ?(improved = false) ?(scheduler = Config.Agenda) () : Config.t =
  {
    kernel_fusion = true;
    horizontal_fusion = false;
    grain_coarsening = false;
    scheduler;
    ghost_ops = false;
    program_phases = false;
    gather_fusion = false;
    hoisting = false;
    context_sensitive = false;
    parameter_reuse = false;
    constant_reuse = improved;
    fibers = true;
    autosched_iters = 0;
    pgo = false;
  }

let pytorch_config : Config.t =
  { (dynet_config ()) with kernel_fusion = false; fibers = false }

(** Vendor-library kernel quality (cuDNN/cuBLAS-backed). *)
let vendor_quality = Autosched.vendor

type kind =
  | Acrobat of Config.t  (** Possibly an ablated configuration. *)
  | Dynet of { improved : bool; scheduler : Config.scheduler }
  | Pytorch

let name = function
  | Acrobat _ -> "acrobat"
  | Dynet { improved; _ } -> if improved then "dynet++" else "dynet"
  | Pytorch -> "pytorch"

let config = function
  | Acrobat c -> c
  | Dynet { improved; scheduler } -> dynet_config ~improved ~scheduler ()
  | Pytorch -> pytorch_config

let policy = function
  | Acrobat _ -> Policy.acrobat_policy
  | Dynet { improved; _ } -> Policy.dynet_policy ~improved ()
  | Pytorch -> Policy.pytorch_policy

(** PyTorch is an interpreter; the others are compiled. *)
let mode = function
  | Acrobat _ | Dynet _ -> Driver.Aot_mode
  | Pytorch -> Driver.Vm_mode
