(** Tests for the compiler: ANF, call graph, taint analysis (parameter
    reuse, hoisting, context sensitivity), kernel construction and fusion,
    lowering (coarsening, ghosts, phases), and the auto-scheduler. *)

open Acrobat
open T_util
module C = Acrobat_compiler
module Ast = Ir.Ast
module Op = Ir.Op
module L = Lowered

let parse_anf src = C.Anf.program (Ir.Typecheck.parse_and_check src)

(* --- ANF --- *)

let rec prims_are_let_bound (e : Ast.expr) ~tail_ok =
  ignore tail_ok;
  match e with
  | Ast.Let (_, Ast.Prim (_, args), body) ->
    List.for_all atomic_arg args && prims_are_let_bound body ~tail_ok
  | Ast.Prim _ -> false
  | e ->
    Ast.fold_expr
      (fun acc sub ->
        acc
        &&
        match sub with
        | Ast.Prim (_, args) -> List.for_all atomic_arg args
        | _ -> true)
      true e

and atomic_arg = function
  | Ast.Var _ | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _ -> true
  | Ast.Proj (a, _) -> atomic_arg a
  | _ -> false

let test_anf_flattens () =
  let p =
    parse_anf
      "def @main(%a: Tensor[(1, 4)], %w: Tensor[(4, 4)]) -> Tensor[(1, 4)] { \
       sigmoid(%a + matmul(%a, %w)) }"
  in
  let d = List.hd p.Ast.defs in
  check_true "all prim args atomic" (prims_are_let_bound d.Ast.body ~tail_ok:true)

let test_anf_preserves_semantics () =
  (* The same model computes the same values before/after ANF is implied by
     every end-to-end test; here check ANF of all models at least produces
     well-formed programs. *)
  List.iter
    (fun id ->
      let m = Models.tiny id in
      let p = parse_anf m.Model.source in
      List.iter (fun (d : Ast.def) -> check_true (id ^ " anf ok") (prims_are_let_bound d.Ast.body ~tail_ok:true)) p.Ast.defs)
    Models.tiny_ids

(* --- Call graph --- *)

let cg_src =
  {|
def @leaffn(%x: Int) -> Int { %x }
def @even(%n: Int) -> Int { if (%n == 0) { 1 } else { @odd(%n - 1) } }
def @odd(%n: Int) -> Int { if (%n == 0) { 0 } else { @even(%n - 1) } }
def @selfrec(%n: Int) -> Int { if (%n == 0) { 0 } else { @selfrec(%n - 1) } }
def @main(%n: Int) -> Int { @leaffn(@even(%n) + @selfrec(%n)) }
|}

let test_call_graph () =
  let p = Ir.Typecheck.parse_and_check cg_src in
  let cg = C.Call_graph.build p in
  check_bool "leaffn not recursive" false (C.Call_graph.is_recursive cg "leaffn");
  check_bool "main not recursive" false (C.Call_graph.is_recursive cg "main");
  check_true "selfrec recursive" (C.Call_graph.is_recursive cg "selfrec");
  check_true "even mutual" (C.Call_graph.is_recursive cg "even");
  check_true "odd mutual" (C.Call_graph.is_recursive cg "odd");
  check_true "even/odd same scc" (C.Call_graph.same_scc cg "even" "odd");
  check_bool "selfrec separate scc" false (C.Call_graph.same_scc cg "even" "selfrec")

(* --- Taint / lowering: roles, hoisting, duplication --- *)

let lower ?(config = Config.acrobat) ~inputs src = Lower.compile ~config ~inputs src

let all_blocks (lp : L.t) : L.block list =
  let acc = ref [] in
  let rec walk (e : L.lexpr) =
    match e with
    | L.Lblock (b, cont) ->
      acc := b :: !acc;
      List.iter walk b.L.args;
      walk cont
    | L.Llet (_, a, b) | L.Lcons (a, b) | L.Lnode (a, b) | L.Lmap (a, b) | L.Lbinop (_, a, b) ->
      walk a;
      walk b
    | L.Lif (a, b, c) ->
      walk a;
      walk b;
      walk c
    | L.Lcall (f, args) ->
      walk f;
      List.iter walk args
    | L.Lfn (_, b) | L.Lleaf b | L.Lproj (b, _) | L.Lnot b | L.Lscalar b | L.Lchoice b
    | L.Lcoin b | L.Lghost (_, b) | L.Lphase (_, b) ->
      walk b
    | L.Lmatch (s, cases) ->
      walk s;
      List.iter (fun (_, e) -> walk e) cases
    | L.Ltuple es | L.Lconcurrent es -> List.iter walk es
    | L.Lvar _ | L.Lglobal _ | L.Lint _ | L.Lfloat _ | L.Lbool _ | L.Lnil | L.Lshared _ -> ()
  in
  Hashtbl.iter (fun _ (d : L.ldef) -> walk d.L.lbody) lp.L.defs;
  !acc

let rnn_model () = Models.tiny "rnn"

let test_rnn_hoisting () =
  let m = rnn_model () in
  let lp = lower ~inputs:m.Model.inputs m.Model.source in
  check_int "one hoisted level" 0 lp.L.max_static_depth;
  let blocks = all_blocks lp in
  let static_blocks = List.filter (fun (b : L.block) -> b.L.depth = L.Static 0) blocks in
  check_int "input transform hoisted (Listing 2)" 1 (List.length static_blocks);
  let hoisted = List.hd static_blocks in
  check_true "hoisted kernel is the input linear"
    (T_util.contains hoisted.L.kernel.Kernel.name "matmul")

let test_rnn_shared_roles () =
  let m = rnn_model () in
  let lp = lower ~inputs:m.Model.inputs m.Model.source in
  List.iter
    (fun (b : L.block) ->
      let k = b.L.kernel in
      (* Every kernel of this model has exactly one batched (per-instance)
         argument; weights and biases are shared. *)
      let batched =
        Array.to_list k.Kernel.roles |> List.filter (fun r -> r = Kernel.Batched)
      in
      check_true (k.Kernel.name ^ ": at most 2 batched args") (List.length batched <= 2);
      check_true
        (k.Kernel.name ^ ": has shared args")
        (Array.exists (fun r -> r = Kernel.Shared) k.Kernel.roles))
    (all_blocks lp)

let test_rnn_no_param_reuse_all_batched () =
  let m = rnn_model () in
  let config = { Config.acrobat with Config.parameter_reuse = false; hoisting = false } in
  let lp = lower ~config ~inputs:m.Model.inputs m.Model.source in
  List.iter
    (fun (b : L.block) ->
      Array.iter
        (fun r -> check_true "all batched without analysis" (r = Kernel.Batched))
        b.L.kernel.Kernel.roles)
    (all_blocks lp)

let test_birnn_duplication () =
  let m = Models.tiny "birnn" in
  let lp = lower ~inputs:m.Model.inputs m.Model.source in
  let rnn_defs =
    Hashtbl.fold (fun name _ acc -> if T_util.contains name "rnn$" then name :: acc else acc)
      lp.L.defs []
  in
  check_int "forward and backward @rnn specializations" 2 (List.length rnn_defs);
  (* The two specializations bind different weights: their dynamic cell
     kernels must be distinct. *)
  let cell_kernels =
    all_blocks lp
    |> List.filter_map (fun (b : L.block) ->
           if T_util.contains b.L.kernel.Kernel.name "sigmoid" then Some b.L.kernel.Kernel.id
           else None)
    |> List.sort_uniq compare
  in
  check_true "distinct kernels per context" (List.length cell_kernels >= 2)

let test_birnn_no_context_merges () =
  let m = Models.tiny "birnn" in
  let config = { Config.acrobat with Config.context_sensitive = false } in
  let lp = lower ~config ~inputs:m.Model.inputs m.Model.source in
  let rnn_defs =
    Hashtbl.fold (fun name _ acc -> if T_util.contains name "rnn" && not (T_util.contains name "reverse") then name :: acc else acc)
      lp.L.defs []
  in
  check_int "single @rnn without context sensitivity" 1 (List.length rnn_defs)

let test_constant_reuse () =
  let src =
    {|
def @main(%x: Tensor[(1, 4)]) -> Tensor[(1, 4)] {
  let %z = zeros((1, 4));
  let %a = %x + %z;
  let %b = %a + zeros((1, 4));
  %b
}
|}
  in
  let lp = lower ~inputs:[ "x" ] src in
  (* With constant reuse the zeros never become kernels. *)
  List.iter
    (fun (b : L.block) ->
      check_bool "no constant kernels" false (T_util.contains b.L.kernel.Kernel.name "const"))
    (all_blocks lp);
  let config = { Config.acrobat with Config.constant_reuse = false; hoisting = false } in
  let lp2 = lower ~config ~inputs:[ "x" ] src in
  let const_blocks =
    all_blocks lp2
    |> List.filter (fun (b : L.block) -> T_util.contains b.L.kernel.Kernel.name "const")
  in
  check_true "constants become kernels without reuse" (List.length const_blocks >= 1)

let test_phases_in_main () =
  let m = Models.tiny "birnn" in
  let lp = lower ~inputs:m.Model.inputs m.Model.source in
  let main = L.entry_def lp in
  let rec max_phase acc = function
    | L.Lphase (k, cont) -> max_phase (max acc k) cont
    | L.Llet (_, _, cont) | L.Lblock (_, cont) -> max_phase acc cont
    | _ -> acc
  in
  check_int "BiRNN has six semantic stages" 5 (max_phase 0 main.L.lbody);
  let no_phases = { Config.acrobat with Config.program_phases = false } in
  let lp2 = lower ~config:no_phases ~inputs:m.Model.inputs m.Model.source in
  check_int "no phases when disabled" 0 (max_phase 0 (L.entry_def lp2).L.lbody)

let test_ghost_insertion () =
  let src =
    {|
def @main(%x: Tensor[(1, 4)], %w: Tensor[(4, 4)], %c: Bool) -> Tensor[(1, 4)] {
  let %y = sigmoid(matmul(%x, %w));
  if (%c) {
    let %a = tanh(matmul(%y, %w));
    let %q = Cons(%a, Nil);
    let %b = relu(matmul(%a, %w));
    %b
  } else {
    %y
  }
}
|}
  in
  (* Without recursion everything is hoistable (static depth), and ghost
     padding only counts dynamic blocks - disable hoisting to exercise it. *)
  let lp = lower ~config:{ Config.acrobat with Config.hoisting = false } ~inputs:[ "x"; "c" ] src in
  let rec ghosts acc = function
    | L.Lghost (n, cont) -> ghosts (acc + n) cont
    | L.Llet (_, a, b) -> ghosts (ghosts acc a) b
    | L.Lif (c, a, b) -> ghosts (ghosts (ghosts acc c) a) b
    | L.Lblock (_, cont) -> ghosts acc cont
    | L.Lmatch (s, cases) -> List.fold_left (fun a (_, e) -> ghosts a e) (ghosts acc s) cases
    | _ -> acc
  in
  let main = L.entry_def lp in
  check_int "else branch padded by two ghosts" 2 (ghosts 0 main.L.lbody);
  let no_ghost = { Config.acrobat with Config.ghost_ops = false; hoisting = false } in
  let lp2 = lower ~config:no_ghost ~inputs:[ "x"; "c" ] src in
  check_int "no ghosts when disabled" 0 (ghosts 0 (L.entry_def lp2).L.lbody)

let test_coarsening_block_counts () =
  let m = Models.tiny "treelstm" in
  let coarse = lower ~inputs:m.Model.inputs m.Model.source in
  let fine =
    lower ~config:{ Config.acrobat with Config.grain_coarsening = false } ~inputs:m.Model.inputs
      m.Model.source
  in
  let n lp =
    Hashtbl.fold (fun _ (d : L.ldef) acc -> acc + L.count_blocks d.L.lbody) lp.L.defs 0
  in
  check_true "coarsening reduces scheduling blocks" (n coarse < n fine)

(* --- Kernel fusion --- *)

let lower_single_def ~fusion ~horizontal src =
  let config =
    { Config.acrobat with Config.kernel_fusion = fusion; horizontal_fusion = horizontal }
  in
  lower ~config ~inputs:[ "x" ] src

let lstm_gates_src =
  {|
def @main(%x: Tensor[(1, 8)], %wi: Tensor[(8, 8)], %wf: Tensor[(8, 8)],
          %wo: Tensor[(8, 8)], %wu: Tensor[(8, 8)]) -> Tensor[(1, 8)] {
  let %i = sigmoid(matmul(%x, %wi));
  let %f = sigmoid(matmul(%x, %wf));
  let %o = sigmoid(matmul(%x, %wo));
  let %u = tanh(matmul(%x, %wu));
  mul(mul(%i, %f), mul(%o, %u))
}
|}

let launches lp =
  all_blocks lp |> List.fold_left (fun acc (b : L.block) -> acc + Kernel.launches b.L.kernel) 0

let test_vertical_fusion_reduces_launches () =
  let unfused = lower_single_def ~fusion:false ~horizontal:false lstm_gates_src in
  let fused = lower_single_def ~fusion:true ~horizontal:false lstm_gates_src in
  check_true "fusion reduces launches" (launches fused < launches unfused)

let test_horizontal_fusion_merges_gates () =
  let vertical = lower_single_def ~fusion:true ~horizontal:false lstm_gates_src in
  let both = lower_single_def ~fusion:true ~horizontal:true lstm_gates_src in
  check_true "horizontal fusion merges sibling projections" (launches both < launches vertical)

let test_fusion_groups_respect_dependencies () =
  (* Every Tmp read inside a group must come from the same or an earlier
     group (groups launch in order). *)
  List.iter
    (fun id ->
      let m = Models.tiny id in
      let lp = lower ~inputs:m.Model.inputs m.Model.source in
      List.iter
        (fun (b : L.block) ->
          let k = b.L.kernel in
          let group_of = Hashtbl.create 16 in
          List.iteri
            (fun gi (g : Kernel.group) ->
              List.iter (fun (i : Kernel.instr) -> Hashtbl.replace group_of i.Kernel.dst gi) g.Kernel.instrs)
            k.Kernel.groups;
          List.iteri
            (fun gi (g : Kernel.group) ->
              List.iter
                (fun (i : Kernel.instr) ->
                  List.iter
                    (function
                      | Kernel.Tmp j ->
                        check_true
                          (id ^ ": group ordering respects deps")
                          (Hashtbl.find group_of j <= gi)
                      | Kernel.Arg _ -> ())
                    i.Kernel.srcs)
                g.Kernel.instrs)
            k.Kernel.groups)
        (all_blocks lp))
    Models.tiny_ids

let test_kernel_dedup () =
  let m = rnn_model () in
  let lp = lower ~inputs:m.Model.inputs m.Model.source in
  (* The recursive cell appears at one site: every recursion step reuses the
     same kernel (it is the same block). A second compile of the same
     source under the same registry would also dedup; here just check ids
     are stable and small in number. *)
  let ids =
    all_blocks lp |> List.map (fun (b : L.block) -> b.L.kernel.Kernel.id) |> List.sort_uniq compare
  in
  check_true "few distinct kernels" (List.length ids <= 4)

let test_kernel_execute_matches_ops () =
  (* Build a fused kernel x @ w + b |> sigmoid by hand and compare with
     direct evaluation. *)
  let reg = Kernel.registry () in
  let b = Kernel.builder () in
  let t0 = Kernel.add_instr b Op.Matmul [ Kernel.Arg 0; Kernel.Arg 1 ] in
  let t1 = Kernel.add_instr b Op.Add [ Kernel.Tmp t0; Kernel.Arg 2 ] in
  let t2 = Kernel.add_instr b Op.Sigmoid [ Kernel.Tmp t1 ] in
  let k =
    Kernel.finish reg b ~name:"dense_sigmoid" ~nargs:3
      ~roles:[| Kernel.Batched; Kernel.Shared; Kernel.Shared |]
      ~shared_binds:[] ~out_tmps:[| t2 |] ~fusion:true ~horizontal:false
  in
  let rng = Rng.create 3 in
  let x = Tensor.random rng [ 1; 4 ]
  and w = Tensor.random rng [ 4; 4 ]
  and bias = Tensor.random rng [ 1; 4 ] in
  let expected = Ops.sigmoid (Ops.add (Ops.matmul x w) bias) in
  let got = (Kernel.execute k [| x; w; bias |]).(0) in
  check_tensor "kernel body = ops composition" expected got;
  Alcotest.(check (list int)) "out shape" [ 1; 4 ]
    (Kernel.out_shapes k [| [ 1; 4 ]; [ 4; 4 ]; [ 1; 4 ] |]).(0);
  check_int "fused into one launch" 1 (Kernel.launches k)

let test_kernel_flops_positive () =
  List.iter
    (fun id ->
      let m = Models.tiny id in
      let lp = lower ~inputs:m.Model.inputs m.Model.source in
      List.iter
        (fun (k : Kernel.t) ->
          ignore k)
        (Kernel.all_kernels lp.L.registry))
    Models.tiny_ids

(* --- Auto-scheduler --- *)

let test_autosched_monotone_in_iters () =
  let q n = C.Autosched.search ~id:3 ~flops:1.0e6 ~weight_elems:1000 ~iters:n () in
  check_true "more iterations never hurt" (q 10 <= q 100 && q 100 <= q 1000);
  check_true "below cap" (q 10_000 <= C.Autosched.quality_cap ~flops:1.0e6 ~weight_elems:1000)

let test_autosched_deterministic () =
  let a = C.Autosched.search ~id:7 ~flops:1.0e5 ~iters:321 () in
  let b = C.Autosched.search ~id:7 ~flops:1.0e5 ~iters:321 () in
  check_float "deterministic" a b

let test_autosched_cap_regimes () =
  let huge = C.Autosched.quality_cap ~flops:1.0e8 ~weight_elems:0 in
  let mid = C.Autosched.quality_cap ~flops:1.0e6 ~weight_elems:300_000 in
  let small = C.Autosched.quality_cap ~flops:1.0e4 ~weight_elems:100 in
  check_true "huge kernels competitive" (huge > mid);
  check_true "small fused kernels best" (small > mid)

let test_autosched_tune_prioritizes () =
  let reg = Kernel.registry () in
  let mk name =
    let b = Kernel.builder () in
    let t = Kernel.add_instr b (Op.Constant { shape = [ 1; String.length name ]; value = 1.0 }) [] in
    Kernel.finish reg b ~name ~nargs:0 ~roles:[||] ~shared_binds:[] ~out_tmps:[| t |]
      ~fusion:true ~horizontal:false
  in
  let hot = mk "hot" and cold = mk "colder" in
  let table =
    C.Autosched.tune ~registry:reg ~iters:200
      ~priority:(fun id -> if id = hot.Kernel.id then 1000.0 else 1.0)
      ~flops:(fun _ -> 1.0e6)
      ~weight_elems:(fun _ -> 0)
      ()
  in
  check_true "hot kernel tuned at least as well"
    (C.Autosched.quality table hot.Kernel.id >= C.Autosched.quality table cold.Kernel.id)

let suite =
  [
    Alcotest.test_case "anf: flattens prims" `Quick test_anf_flattens;
    Alcotest.test_case "anf: all models" `Quick test_anf_preserves_semantics;
    Alcotest.test_case "callgraph: sccs" `Quick test_call_graph;
    Alcotest.test_case "lower: RNN hoisting (Listing 2)" `Quick test_rnn_hoisting;
    Alcotest.test_case "lower: RNN shared roles" `Quick test_rnn_shared_roles;
    Alcotest.test_case "lower: roles without analysis" `Quick test_rnn_no_param_reuse_all_batched;
    Alcotest.test_case "lower: BiRNN code duplication" `Quick test_birnn_duplication;
    Alcotest.test_case "lower: no duplication without ctx" `Quick test_birnn_no_context_merges;
    Alcotest.test_case "lower: constant reuse" `Quick test_constant_reuse;
    Alcotest.test_case "lower: program phases" `Quick test_phases_in_main;
    Alcotest.test_case "lower: ghost insertion" `Quick test_ghost_insertion;
    Alcotest.test_case "lower: coarsening" `Quick test_coarsening_block_counts;
    Alcotest.test_case "fusion: vertical" `Quick test_vertical_fusion_reduces_launches;
    Alcotest.test_case "fusion: horizontal" `Quick test_horizontal_fusion_merges_gates;
    Alcotest.test_case "fusion: dependency order" `Quick test_fusion_groups_respect_dependencies;
    Alcotest.test_case "kernel: dedup" `Quick test_kernel_dedup;
    Alcotest.test_case "kernel: execute semantics" `Quick test_kernel_execute_matches_ops;
    Alcotest.test_case "kernel: registry walk" `Quick test_kernel_flops_positive;
    Alcotest.test_case "autosched: monotone" `Quick test_autosched_monotone_in_iters;
    Alcotest.test_case "autosched: deterministic" `Quick test_autosched_deterministic;
    Alcotest.test_case "autosched: cap regimes" `Quick test_autosched_cap_regimes;
    Alcotest.test_case "autosched: priorities" `Quick test_autosched_tune_prioritizes;
  ]
