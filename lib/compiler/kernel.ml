(** Batched-kernel descriptors.

    A kernel is the unit the runtime batches over: the tensor ops of one
    static block (one op when grain coarsening is off), partitioned into
    {e groups} — each group is one device launch (the partition is what
    standard + horizontal kernel fusion decide). Each argument carries a
    role from the taint analysis: [Shared] arguments are a single tensor
    (model parameter / constant) reused by every instance in a batch;
    [Batched] arguments differ per instance and may need a memory gather.

    Kernels are deduplicated structurally: two blocks with identical ops,
    roles and shared-parameter bindings share one kernel and therefore batch
    together; blocks that differ only in which parameters they bind —
    e.g. the forward and backward RNN cells of a BiRNN after code
    duplication — get distinct kernels (§C.1). *)

open Acrobat_ir
open Acrobat_tensor

type role = Shared | Batched

type shared_bind =
  | Bparam of string  (** A @main weight parameter. *)
  | Bconst of { shape : Shape.t; value : float }  (** A constant tensor. *)

type src = Arg of int | Tmp of int

type instr = { op : Op.t; srcs : src list; dst : int }

type group = { instrs : instr list }

type t = {
  id : int;
  name : string;
  nargs : int;
  roles : role array;
  shared_binds : (int * shared_bind) list;  (** arg index -> binding *)
  groups : group list;
  ntmps : int;
  out_tmps : int array;
}

let out_arity t = Array.length t.out_tmps

(** Number of device launches one batch of this kernel issues. *)
let launches t = List.length t.groups

(* --- Shape/flops propagation (shapes are per-node at runtime) --- *)

(** Shapes of all temporaries given argument shapes. *)
let tmp_shapes t (arg_shapes : Shape.t array) : Shape.t array =
  let tmps = Array.make t.ntmps [] in
  let shape_of = function Arg i -> arg_shapes.(i) | Tmp j -> tmps.(j) in
  List.iter
    (fun g ->
      List.iter
        (fun i -> tmps.(i.dst) <- Op.out_shape i.op (List.map shape_of i.srcs))
        g.instrs)
    t.groups;
  tmps

let out_shapes t arg_shapes =
  let tmps = tmp_shapes t arg_shapes in
  Array.map (fun i -> tmps.(i)) t.out_tmps

(** Per-instance FLOPs of each group. *)
let group_flops t (arg_shapes : Shape.t array) : float list =
  let tmps = Array.make t.ntmps [] in
  let shape_of = function Arg i -> arg_shapes.(i) | Tmp j -> tmps.(j) in
  List.map
    (fun g ->
      List.fold_left
        (fun acc i ->
          let shapes = List.map shape_of i.srcs in
          tmps.(i.dst) <- Op.out_shape i.op shapes;
          acc +. Op.flops i.op shapes)
        0.0 g.instrs)
    t.groups

(** Per-instance {e internal} memory traffic (bytes) of each group: every
    instruction output plus every cross-group temporary read. Temporaries
    consumed within their own group stay in registers/shared memory — this
    is the data-movement saving kernel fusion buys. Reads of kernel
    {e arguments} are excluded here: the executor attributes them per batch
    (once for shared weights, per instance for batched inputs). *)
let group_traffic t (arg_shapes : Shape.t array) : float list =
  let tmps = Array.make t.ntmps [] in
  let group_of_tmp = Hashtbl.create 16 in
  List.iteri
    (fun gi g -> List.iter (fun i -> Hashtbl.replace group_of_tmp i.dst gi) g.instrs)
    t.groups;
  let shape_of = function Arg i -> arg_shapes.(i) | Tmp j -> tmps.(j) in
  let bytes_per = 4.0 in
  List.mapi
    (fun gi g ->
      List.fold_left
        (fun acc i ->
          let shapes = List.map shape_of i.srcs in
          let out = Op.out_shape i.op shapes in
          tmps.(i.dst) <- out;
          let reads =
            List.fold_left2
              (fun acc src shape ->
                match src with
                | Arg _ -> acc
                | Tmp j -> if Hashtbl.find group_of_tmp j <> gi then acc + Shape.numel shape else acc)
              0 i.srcs shapes
          in
          acc +. (bytes_per *. float_of_int (reads + Shape.numel out)))
        0.0 g.instrs)
    t.groups

(** Per group, the (deduplicated) kernel-argument indices it reads. *)
let group_arg_reads t : int list list =
  List.map
    (fun g ->
      List.concat_map
        (fun i -> List.filter_map (function Arg a -> Some a | Tmp _ -> None) i.srcs)
        g.instrs
      |> List.sort_uniq compare)
    t.groups

(** Execute the kernel body for one instance on concrete tensors. *)
let execute ?rand t (args : Tensor.t array) : Tensor.t array =
  let tmps = Array.make t.ntmps (Tensor.scalar 0.0) in
  let value_of = function Arg i -> args.(i) | Tmp j -> tmps.(j) in
  List.iter
    (fun g ->
      List.iter
        (fun i -> tmps.(i.dst) <- Op.eval ?rand i.op (List.map value_of i.srcs))
        g.instrs)
    t.groups;
  Array.map (fun i -> tmps.(i)) t.out_tmps

(* --- Construction --- *)

type builder = { mutable instrs : instr list; mutable next_tmp : int }

let builder () = { instrs = []; next_tmp = 0 }

let add_instr b op srcs =
  let dst = b.next_tmp in
  b.next_tmp <- b.next_tmp + 1;
  b.instrs <- { op; srcs; dst } :: b.instrs;
  dst

(* Vertical (standard) fusion: partition instructions into launch groups.
   Non-elementwise ops anchor a new group; an elementwise op joins the
   group of its latest temporary operand (the producer's group), which is
   exactly "fuse elementwise consumers into their producers". *)
let vertical_groups ~fusion instrs =
  if not fusion then List.map (fun i -> [ i ]) instrs
  else begin
    (* Group k holds a reversed instruction list; [group_of_tmp] maps each
       temporary to the index of the group that produces it. *)
    let groups : instr list ref array ref = ref [||] in
    let group_of_tmp = Hashtbl.create 16 in
    let new_group i =
      let idx = Array.length !groups in
      groups := Array.append !groups [| ref [ i ] |];
      idx
    in
    List.iter
      (fun i ->
        let producer_groups =
          List.filter_map
            (function Tmp j -> Hashtbl.find_opt group_of_tmp j | Arg _ -> None)
            i.srcs
        in
        let idx =
          (* Fusing into the *latest* producer group is always legal: all of
             the instruction's dependencies live in that group or earlier
             ones, and groups launch in creation order. *)
          if Op.is_elementwise i.op && producer_groups <> [] then begin
            let g = List.fold_left max 0 producer_groups in
            !groups.(g) := i :: !(!groups.(g));
            g
          end
          else new_group i
        in
        Hashtbl.replace group_of_tmp i.dst idx)
      instrs;
    Array.to_list (Array.map (fun g -> List.rev !g) !groups)
  end

(* Horizontal fusion: merge adjacent groups anchored by matmuls that share
   their first operand (e.g. the four gate projections of an LSTM cell all
   multiplying the same input), when the later group does not consume any
   temporary of the earlier one. *)
let horizontal_merge ~horizontal groups =
  if not horizontal then groups
  else begin
    let anchor_src g =
      match g with
      | { op = Op.Matmul; srcs = s0 :: _; _ } :: _ -> Some s0
      | _ -> None
    in
    let produces g = List.map (fun i -> i.dst) g in
    let consumes g =
      List.concat_map (fun i -> List.filter_map (function Tmp j -> Some j | Arg _ -> None) i.srcs) g
    in
    let rec merge = function
      | [] -> []
      | g :: rest -> begin
        match rest with
        | g2 :: rest2
          when (match anchor_src g, anchor_src g2 with
               | Some (Arg a), Some (Arg b) -> a = b
               | _ -> false)
               && not (List.exists (fun d -> List.mem d (consumes g2)) (produces g)) ->
          merge ((g @ g2) :: rest2)
        | _ -> g :: merge rest
      end
    in
    merge groups
  end

(* Structural key for deduplication. *)
let canonical_key ~roles ~shared_binds ~outs instrs =
  let src_str = function Arg i -> Fmt.str "a%d" i | Tmp j -> Fmt.str "t%d" j in
  let instr_str i =
    Fmt.str "%s(%a)>%d" (Op.name i.op) Fmt.(list ~sep:(any ",") string)
      (List.map src_str i.srcs) i.dst
  in
  let bind_str = function
    | i, Bparam p -> Fmt.str "%d=p:%s" i p
    | i, Bconst { shape; value } -> Fmt.str "%d=c:%a:%g" i Shape.pp shape value
  in
  Fmt.str "%a|%a|%a|%a"
    Fmt.(list ~sep:(any ";") string)
    (List.map instr_str instrs)
    Fmt.(array ~sep:(any ",") (fmt "%s"))
    (Array.map (function Shared -> "S" | Batched -> "B") roles)
    Fmt.(list ~sep:(any ",") string)
    (List.map bind_str shared_binds)
    Fmt.(array ~sep:(any ",") int)
    outs

(** A registry deduplicates kernels within one compilation. *)
type registry = { table : (string, t) Hashtbl.t; mutable next_id : int }

let registry () = { table = Hashtbl.create 64; next_id = 0 }

let all_kernels r = Hashtbl.fold (fun _ k acc -> k :: acc) r.table [] |> List.sort compare

(** Finalize a builder into a (deduplicated) kernel. *)
let finish (r : registry) (b : builder) ~(name : string) ~(nargs : int)
    ~(roles : role array) ~(shared_binds : (int * shared_bind) list)
    ~(out_tmps : int array) ~(fusion : bool) ~(horizontal : bool) : t =
  let instrs = List.rev b.instrs in
  let key =
    Fmt.str "%s#f%b#h%b" (canonical_key ~roles ~shared_binds ~outs:out_tmps instrs) fusion
      horizontal
  in
  match Hashtbl.find_opt r.table key with
  | Some k -> k
  | None ->
    let groups =
      vertical_groups ~fusion instrs
      |> horizontal_merge ~horizontal
      |> List.map (fun instrs -> { instrs })
    in
    let k =
      {
        id = r.next_id;
        name;
        nargs;
        roles;
        shared_binds;
        groups;
        ntmps = b.next_tmp;
        out_tmps;
      }
    in
    r.next_id <- r.next_id + 1;
    Hashtbl.replace r.table key k;
    k

let pp ppf t =
  Fmt.pf ppf "kernel %d %s: %d args (%a), %d groups, %d outs" t.id t.name t.nargs
    Fmt.(array ~sep:(any "") (fmt "%s"))
    (Array.map (function Shared -> "S" | Batched -> "B") t.roles)
    (List.length t.groups) (Array.length t.out_tmps)
