(** A-normal form: every tensor-operator argument becomes a let-bound
    variable, so static-block (coarsening) and fusion decisions can work on a
    flat sequence of single-op bindings. Only {!Ast.Prim} applications are
    flattened; scalar expressions, data-structure constructors and calls are
    left in place. *)

open Acrobat_ir

let counter = ref 0

let fresh () =
  incr counter;
  Fmt.str "_t%d" !counter

(* [normalize e k] rewrites [e] so that all Prims are let-bound, then passes
   the atomic result expression to the continuation [k]. *)
let rec normalize (e : Ast.expr) (k : Ast.expr -> Ast.expr) : Ast.expr =
  match e with
  | Ast.Var _ | Ast.Global _ | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _ | Ast.Nil ->
    k e
  | Ast.Prim (op, args) ->
    normalize_list args (fun args' ->
        let v = fresh () in
        Ast.Let (v, Ast.Prim (op, args'), k (Ast.Var v)))
  | Ast.Let (x, rhs, body) ->
    (* Keep user lets in place; normalize both sides. *)
    normalize_named x rhs (fun () -> normalize body k)
  | Ast.If (c, a, b) -> normalize c (fun c' -> k (Ast.If (c', tail a, tail b)))
  | Ast.Match (s, cases) ->
    normalize s (fun s' -> k (Ast.Match (s', List.map (fun (p, e) -> p, tail e) cases)))
  | Ast.Call (f, args) ->
    normalize f (fun f' -> normalize_list args (fun args' -> k (Ast.Call (f', args'))))
  | Ast.Fn (params, body) -> k (Ast.Fn (params, tail body))
  | Ast.Cons (a, b) -> normalize a (fun a' -> normalize b (fun b' -> k (Ast.Cons (a', b'))))
  | Ast.Leaf a -> normalize a (fun a' -> k (Ast.Leaf a'))
  | Ast.Node (a, b) -> normalize a (fun a' -> normalize b (fun b' -> k (Ast.Node (a', b'))))
  | Ast.Tuple es -> normalize_list es (fun es' -> k (Ast.Tuple es'))
  | Ast.Proj (a, i) -> normalize a (fun a' -> k (Ast.Proj (a', i)))
  | Ast.Binop (op, a, b) ->
    normalize a (fun a' -> normalize b (fun b' -> k (Ast.Binop (op, a', b'))))
  | Ast.Not a -> normalize a (fun a' -> k (Ast.Not a'))
  | Ast.Concurrent es -> k (Ast.Concurrent (List.map tail es))
  | Ast.Map (f, xs) ->
    normalize f (fun f' -> normalize xs (fun xs' -> k (Ast.Map (f', xs'))))
  | Ast.Scalar a -> normalize a (fun a' -> k (Ast.Scalar a'))
  | Ast.Choice a -> normalize a (fun a' -> k (Ast.Choice a'))
  | Ast.Coin a -> normalize a (fun a' -> k (Ast.Coin a'))

(* Normalize a let-bound right-hand side, preserving the user's binding name
   for the outermost value. *)
and normalize_named x rhs (k : unit -> Ast.expr) : Ast.expr =
  match rhs with
  | Ast.Prim (op, args) ->
    normalize_list args (fun args' -> Ast.Let (x, Ast.Prim (op, args'), k ()))
  | _ -> normalize rhs (fun rhs' -> Ast.Let (x, rhs', k ()))

and normalize_list es (k : Ast.expr list -> Ast.expr) : Ast.expr =
  match es with
  | [] -> k []
  | e :: rest -> normalize e (fun e' -> normalize_list rest (fun rest' -> k (e' :: rest')))

(* Normalize an expression in tail position. *)
and tail e = normalize e (fun atom -> atom)

let def (d : Ast.def) : Ast.def = { d with body = tail d.body }

let program (p : Ast.program) : Ast.program = { Ast.defs = List.map def p.defs }
