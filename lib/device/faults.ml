(** Deterministic fault injection for the simulated device.

    Real auto-batching runtimes live on accelerators that fail: kernel
    launches error out transiently, some launches straggle far past their
    expected latency, allocations hit the memory ceiling, and occasionally
    the device resets wholesale. A serving stack that has never executed
    against those behaviours has untested recovery paths, so this module
    makes them injectable — and, critically, {e reproducible}: every fault
    decision is drawn from one seeded {!Acrobat_tensor.Rng} stream, so a
    (seed, plan) pair replays the identical fault sequence run after run.
    That is what lets the recovery machinery (retry, bisection, circuit
    breaking, degradation) be tested byte-for-byte.

    A {!plan} is pure data describing fault rates; an injector ({!t}) is the
    stateful stream consulted by {!Acrobat_device.Device}. Each device
    creation opens a fresh {e attempt} (one batch execution), and one
    uniform draw per attempt decides its fate — fault, reset, straggle or
    clean. Rates are therefore per batch attempt, not per kernel launch:
    a batch executes tens of kernels, and compounding a per-launch
    probability over that many launches would make any modest rate fatal.
    One injector is shared across every device a serving run creates, so a
    batch retried on a fresh device sees fresh draws — transient faults
    really are transient. *)

open Acrobat_tensor

type plan = {
  seed : int;  (** Seeds the injector's RNG stream. *)
  kernel_fault_rate : float;  (** P(transient launch failure) per batch attempt. *)
  straggler_rate : float;  (** P(straggler) per batch attempt. *)
  straggler_mult : float;  (** Latency multiplier of a straggling attempt's kernels. *)
  reset_rate : float;  (** P(full device reset) per batch attempt. *)
  reset_cost_us : float;  (** Simulated time burned by a device reset. *)
  capacity_elems : int option;  (** Device memory bound; [None] = unbounded. *)
  poison : int list;  (** Request ids that deterministically fail. *)
  corrupt_rate : float;
      (** P(silent output corruption) per batch attempt: the attempt's
          kernel outputs are perturbed but {e nothing raises} — the
          wrong answer is delivered unless an audit catches it. *)
  flaky_after : int option;
      (** Flaky-device mode: every attempt after the first [n] silently
          corrupts (deterministic onset, no draw) — the "device went bad
          mid-fleet" shape quarantine exists to contain. *)
}

(** The all-zero plan: no faults, unbounded memory. *)
let none =
  {
    seed = 0;
    kernel_fault_rate = 0.0;
    straggler_rate = 0.0;
    straggler_mult = 6.0;
    reset_rate = 0.0;
    reset_cost_us = 10_000.0;
    capacity_elems = None;
    poison = [];
    corrupt_rate = 0.0;
    flaky_after = None;
  }

let enabled p =
  p.kernel_fault_rate > 0.0 || p.straggler_rate > 0.0 || p.reset_rate > 0.0
  || p.capacity_elems <> None || p.poison <> []
  || p.corrupt_rate > 0.0 || p.flaky_after <> None

(** Does the plan inject silent corruption (probabilistic or flaky)? *)
let corrupts p = p.corrupt_rate > 0.0 || p.flaky_after <> None

(** What an injected launch failure was. *)
type kind = Kernel_fault | Device_reset

let kind_name = function Kernel_fault -> "kernel-fault" | Device_reset -> "device-reset"

(** Raised out of a kernel launch when the injector fires. [launch] is the
    global launch ordinal, for diagnosing a fault sequence. *)
exception Fault of { kind : kind; launch : int }

let () =
  Printexc.register_printer (function
    | Fault { kind; launch } ->
      Some (Fmt.str "Injected_fault(%s at launch %d)" (kind_name kind) launch)
    | _ -> None)

let pp_plan ppf p =
  if not (enabled p) then Fmt.pf ppf "none"
  else begin
    Fmt.pf ppf "seed=%d kernel=%.3f straggler=%.3fx%.1f reset=%.4f%a%a" p.seed
      p.kernel_fault_rate p.straggler_rate p.straggler_mult p.reset_rate
      (fun ppf -> function
        | None -> ()
        | Some c -> Fmt.pf ppf " capacity=%d" c)
      p.capacity_elems
      (fun ppf -> function
        | [] -> ()
        | ids -> Fmt.pf ppf " poison=%a" Fmt.(list ~sep:(any "+") int) ids)
      p.poison;
    if p.corrupt_rate > 0.0 then Fmt.pf ppf " corrupt=%.3f" p.corrupt_rate;
    Option.iter (fun n -> Fmt.pf ppf " flaky=%d" n) p.flaky_after
  end

(** Validate a plan's numeric ranges, naming the offending key in the
    error. {!parse} already rejects malformed field syntax, but plans can
    also be constructed programmatically (record literals, the chaos
    harness's scenario generator) and bypass the parser entirely; this is
    the single choke point both paths share. Beyond the per-field ranges it
    rejects the one degenerate combination individual field checks miss:
    rates that sum past 1.0, which would make the per-attempt decision
    bands of {!begin_attempt} overlap and silently starve the later bands.

    @raise Invalid_argument naming the offending key(s). *)
let validate (p : plan) : unit =
  let what = "fault plan" in
  let fail fmt = Clause.fail ~what fmt in
  let prob key v = Clause.check_prob ~what key v in
  prob "kernel" p.kernel_fault_rate;
  prob "straggler" p.straggler_rate;
  prob "reset" p.reset_rate;
  if not (Float.is_finite p.straggler_mult) || p.straggler_mult < 1.0 then
    fail "straggler multiplier %g must be a float >= 1" p.straggler_mult;
  if not (Float.is_finite p.reset_cost_us) || p.reset_cost_us < 0.0 then
    fail "reset cost %g must be >= 0" p.reset_cost_us;
  (match p.capacity_elems with
  | Some c when c <= 0 -> fail "capacity=%d is not a positive integer" c
  | _ -> ());
  prob "corrupt" p.corrupt_rate;
  (match p.flaky_after with
  | Some n when n < 0 -> fail "flaky=%d must be a non-negative attempt count" n
  | _ -> ());
  let total = p.kernel_fault_rate +. p.reset_rate +. p.straggler_rate in
  if total > 1.0 then
    fail
      "kernel + reset + straggler = %g exceeds 1 (the per-attempt probability bands must \
       partition [0, 1])"
      total

(** Parse a plan from a CLI spec: comma-separated [key=value] fields.

    {v seed=7,kernel=0.05,straggler=0.02x6,reset=0.001,capacity=200000,poison=3+17 v}

    [kernel], [straggler] and [reset] are per-batch-attempt probabilities;
    [straggler] takes an optional [xMULT] latency-multiplier suffix;
    [capacity] bounds device memory in elements; [poison] is a [+]-separated
    list of request ids that always fail. [corrupt] is the per-batch-attempt
    probability of {e silent} output corruption (nothing raises), and
    [flaky=N] is the flaky-device mode: every attempt after the first [N]
    corrupts deterministically. Unknown keys are rejected. *)
let valid_keys =
  [ "seed"; "kernel"; "straggler"; "reset"; "capacity"; "poison"; "corrupt"; "flaky" ]

let parse (spec : string) : plan =
  let what = "fault plan" in
  let fail fmt = Clause.fail ~what fmt in
  let prob key s = Clause.prob ~what key s in
  let field plan (key, v) =
    match key with
    | "seed" -> { plan with seed = Clause.int ~what key v }
    | "kernel" -> { plan with kernel_fault_rate = prob key v }
    | "reset" -> { plan with reset_rate = prob key v }
    | "straggler" -> (
      match String.index_opt v 'x' with
      | None -> { plan with straggler_rate = prob key v }
      | Some j ->
        let rate = String.sub v 0 j in
        let mult = String.sub v (j + 1) (String.length v - j - 1) in
        (match float_of_string_opt mult with
        | Some m when m >= 1.0 ->
          { plan with straggler_rate = prob key rate; straggler_mult = m }
        | _ -> fail "straggler multiplier %S must be a float >= 1" mult))
    | "capacity" -> (
      match int_of_string_opt v with
      | Some c when c > 0 -> { plan with capacity_elems = Some c }
      | _ -> fail "capacity=%s is not a positive integer" v)
    | "poison" ->
      let ids =
        List.map
          (fun s ->
            match int_of_string_opt s with
            | Some id -> id
            | None -> fail "poison id %S is not an integer" s)
          (String.split_on_char '+' v)
      in
      { plan with poison = ids }
    | "corrupt" -> { plan with corrupt_rate = prob key v }
    | "flaky" -> (
      match int_of_string_opt v with
      | Some n when n >= 0 -> { plan with flaky_after = Some n }
      | _ -> fail "flaky=%s is not a non-negative attempt count" v)
    | other -> Clause.unknown_key ~what ~valid:valid_keys other
  in
  let plan = List.fold_left field none (Clause.fields ~what spec) in
  validate plan;
  plan

(* Shortest decimal form that parses back to exactly [f]. *)
let float_spec = Clause.float_spec

(** Render [p] in the comma-separated [key=value] form {!parse} accepts;
    [parse (to_spec p) = p] for any plan (round-trip tested). Zero-rate
    fields are still emitted so the spec is self-describing; [capacity] and
    [poison] are omitted when absent/empty, matching their parse defaults. *)
let to_spec (p : plan) : string =
  let base =
    Fmt.str "seed=%d,kernel=%s,straggler=%sx%s,reset=%s" p.seed
      (float_spec p.kernel_fault_rate)
      (float_spec p.straggler_rate) (float_spec p.straggler_mult)
      (float_spec p.reset_rate)
  in
  let capacity =
    match p.capacity_elems with None -> "" | Some c -> Fmt.str ",capacity=%d" c
  in
  let poison =
    match p.poison with
    | [] -> ""
    | ids -> Fmt.str ",poison=%a" Fmt.(list ~sep:(any "+") int) ids
  in
  (* Corruption clauses are omitted at their defaults so legacy plans render
     byte-identically to what they always did. *)
  let corrupt =
    if p.corrupt_rate > 0.0 then Fmt.str ",corrupt=%s" (float_spec p.corrupt_rate)
    else ""
  in
  let flaky =
    match p.flaky_after with None -> "" | Some n -> Fmt.str ",flaky=%d" n
  in
  base ^ capacity ^ poison ^ corrupt ^ flaky

(* --- The stateful injector --- *)

(** The fate drawn for the current batch attempt. *)
type decision = Clean | Straggle | Break of kind

type t = {
  plan : plan;
  rng : Rng.t;
  mutable decision : decision;
  mutable corrupt_this : bool;  (** Does the current attempt silently corrupt? *)
  mutable attempts : int;
  mutable launches : int;
  mutable kernel_faults : int;
  mutable stragglers : int;
  mutable resets : int;
  mutable corruptions : int;
}

let create (plan : plan) : t =
  {
    plan;
    rng = Rng.create ((plan.seed * 0x2545F) lxor 0x5eed);
    decision = Clean;
    corrupt_this = false;
    attempts = 0;
    launches = 0;
    kernel_faults = 0;
    stragglers = 0;
    resets = 0;
    corruptions = 0;
  }

let plan t = t.plan
let attempts t = t.attempts
let launches t = t.launches
let kernel_faults t = t.kernel_faults
let stragglers t = t.stragglers
let resets t = t.resets
let faults_injected t = t.kernel_faults + t.resets
let corruptions t = t.corruptions

(** Whether the current attempt's outputs are silently corrupted. Ground
    truth: only the injector (and the oracles built on it) knows — the
    serving stack has to find out by auditing. *)
let corrupt_attempt t = t.corrupt_this

(** Open a new batch attempt: one uniform draw decides the whole attempt's
    fate by partitioning [0, 1) into fault / reset / straggler / clean
    bands. The stream advances exactly once per attempt regardless of
    outcome — the property that keeps a run's fault sequence independent of
    which faults the caller recovered from. Called by
    {!Acrobat_device.Device.create} when a device is wired to the injector,
    so one device = one attempt. *)
let begin_attempt t =
  let p = t.plan in
  t.attempts <- t.attempts + 1;
  t.decision <-
    (if p.kernel_fault_rate <= 0.0 && p.straggler_rate <= 0.0 && p.reset_rate <= 0.0 then
       Clean
     else
       let u = Rng.float t.rng in
       if u < p.kernel_fault_rate then Break Kernel_fault
       else if u < p.kernel_fault_rate +. p.reset_rate then Break Device_reset
       else if u < p.kernel_fault_rate +. p.reset_rate +. p.straggler_rate then begin
         t.stragglers <- t.stragglers + 1;
         Straggle
       end
       else Clean);
  (* Corruption is an independent per-attempt draw, taken after the fault
     band so plans without a corrupt clause consume exactly the stream they
     always did. Flaky onset is deterministic and draw-free. *)
  let flaky =
    match p.flaky_after with Some n -> t.attempts > n | None -> false
  in
  let drawn = p.corrupt_rate > 0.0 && Rng.float t.rng < p.corrupt_rate in
  t.corrupt_this <- flaky || drawn;
  if t.corrupt_this then t.corruptions <- t.corruptions + 1

(** Consult the injector for one kernel launch. Returns the latency
    multiplier to apply (1.0 normally, [straggler_mult] for every launch of
    a straggling attempt). A doomed attempt raises on its first launch —
    the recovery path's cost is dominated by retry latency, not by where in
    the batch the kernel died.

    @raise Fault on an injected kernel failure or device reset. *)
let on_launch t : float =
  t.launches <- t.launches + 1;
  match t.decision with
  | Clean -> 1.0
  | Straggle -> t.plan.straggler_mult
  | Break kind ->
    (* Fire once; if the caller somehow keeps launching on this attempt the
       remaining kernels run clean. *)
    t.decision <- Clean;
    (match kind with
    | Kernel_fault -> t.kernel_faults <- t.kernel_faults + 1
    | Device_reset -> t.resets <- t.resets + 1);
    raise (Fault { kind; launch = t.launches })
