(** StackRNN: a transition-based (shift/reduce) parser with RNN cells
    (StackLSTM of Dyer et al. 2015 with the LSTM replaced by an RNN cell,
    per the paper's Table 3).

    Every step computes action logits and takes their argmax — an operator
    DyNet has no batched kernel for (§E.4) — with the actual decision
    emulated pseudo-randomly (§E.1). The two actions execute different
    numbers of tensor operators (shift: two blocks, reduce: one), so eager
    depth batching misaligns instances that chose differently; ghost
    operators re-align them (§B.3, Fig. 4). *)

module Driver = Acrobat_engines.Driver
module W = Acrobat_workloads

let template =
  {|
def @steps(%buffer: List[Tensor[(1, {H})]], %stack: List[Tensor[(1, {H})]],
           %state: Tensor[(1, {H})],
           %wcomb: Tensor[({H2}, {H})], %bcomb: Tensor[(1, {H})],
           %wshift: Tensor[({H}, {H})], %wstate: Tensor[({H}, {H})], %bstate: Tensor[(1, {H})],
           %wpush: Tensor[({H}, {H})], %wact: Tensor[({H}, 3)]) -> Tensor[(1, {H})] {
  match (%buffer) {
    Nil => {
      (* Input consumed: drain the stack. *)
      match (%stack) {
        Nil => %state,
        Cons(%top, %rest) => @steps(%buffer, %rest, %top, %wcomb, %bcomb,
                                    %wshift, %wstate, %bstate, %wpush, %wact)
      }
    },
    Cons(%word, %tail) => {
      match (%stack) {
        Cons(%a, %arest) => match (%arest) {
          Cons(%b, %brest) => {
            (* Both actions are possible: predict one. The action logits
               feed an argmax — an operator DyNet cannot batch (§E.4) —
               with the decision itself emulated pseudo-randomly (§E.1). *)
            let %logits = matmul(%state, %wact);
            let %best = argmax(%logits);
            let %act = choice(2);
            let %next =
              if (%act == 0) {
                (* shift: the stack push updates the parser state in two
                   dependent stages - two dynamic scheduling blocks. *)
                let %shifted = tanh(matmul(%word, %wshift));
                let %pushed = sigmoid(%bstate + matmul(%state, %wstate));
                let %stack2 = Cons(%shifted, %stack);
                let %new_state = tanh(matmul(%pushed, %wpush));
                (%stack2, %new_state, %tail)
              } else {
                (* reduce: one scheduling block — ghost operators pad this
                   branch so post-decision depths re-align (Fig. 4). *)
                let %combined = tanh(%bcomb + matmul(concat(%a, %b), %wcomb));
                (Cons(%combined, %brest), %state, %buffer)
              };
            @steps(%next.2, %next.0, %next.1, %wcomb, %bcomb,
                   %wshift, %wstate, %bstate, %wpush, %wact)
          },
          Nil => {
            let %shifted = tanh(matmul(%word, %wshift));
            let %pushed = sigmoid(%bstate + matmul(%state, %wstate));
            let %stack2 = Cons(%shifted, %stack);
            let %new_state = tanh(matmul(%pushed, %wpush));
            @steps(%tail, %stack2, %new_state, %wcomb, %bcomb,
                   %wshift, %wstate, %bstate, %wpush, %wact)
          }
        },
        Nil => {
          let %shifted = tanh(matmul(%word, %wshift));
          let %pushed = sigmoid(%bstate + matmul(%state, %wstate));
          let %stack1 = Cons(%shifted, Nil);
          let %new_state = tanh(matmul(%pushed, %wpush));
          @steps(%tail, %stack1, %new_state, %wcomb, %bcomb,
                 %wshift, %wstate, %bstate, %wpush, %wact)
        }
      }
    }
  }
}

def @main(%wcomb: Tensor[({H2}, {H})], %bcomb: Tensor[(1, {H})],
          %wshift: Tensor[({H}, {H})], %wstate: Tensor[({H}, {H})], %bstate: Tensor[(1, {H})],
          %wpush: Tensor[({H}, {H})], %wact: Tensor[({H}, 3)], %init: Tensor[(1, {H})],
          %inps: List[Tensor[(1, {H})]]) -> Tensor[(1, {H})] {
  @steps(%inps, Nil, %init, %wcomb, %bcomb, %wshift, %wstate, %bstate, %wpush, %wact)
}
|}

let make ?hidden (size : Model.size) : Model.t =
  let hidden =
    match hidden with
    | Some h -> h
    | None -> ( match size with Model.Small -> 256 | Model.Large -> 512)
  in
  let specs =
    [
      "wcomb", [ 2 * hidden; hidden ];
      "bcomb", [ 1; hidden ];
      "wshift", [ hidden; hidden ];
      "wstate", [ hidden; hidden ];
      "bstate", [ 1; hidden ];
      "wpush", [ hidden; hidden ];
      "wact", [ hidden; 3 ];
      "init", [ 1; hidden ];
    ]
  in
  let table = Model.embedding_table ~dim:hidden ~seed:53 in
  {
    Model.name = "stackrnn";
    size;
    source = Model.subst [ "H", hidden; "H2", 2 * hidden ] template;
    inputs = [ "inps" ];
    gen_weights = Model.weights_of_specs specs;
    gen_instance =
      (fun rng ->
        let words = W.Sentences.sample rng in
        [
          ( "inps",
            Driver.Hlist
              (List.map (fun w -> Driver.Htensor (W.Embeddings.lookup table w)) words) );
        ]);
    degraded = None;
  }
