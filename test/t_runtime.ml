(** Tests for the runtime: fibers, DFG construction, schedulers (including
    topological-correctness properties on random DFGs), and the batch
    executor. *)

open Acrobat
open T_util
module Fiber = Acrobat_runtime.Fiber
module Scheduler = Acrobat_runtime.Scheduler
module Runtime = Acrobat_runtime.Runtime
module Executor = Acrobat_runtime.Executor
module Op = Ir.Op

(* --- Fibers --- *)

let test_fiber_run_to_completion () =
  let log = ref [] in
  let task name () = log := name :: !log in
  ignore (Fiber.run ~on_stall:(fun () -> Alcotest.fail "no stall expected")
            [ task "a"; task "b"; task "c" ]);
  Alcotest.(check (list string)) "all ran in order" [ "a"; "b"; "c" ] (List.rev !log)

let test_fiber_suspend_resume () =
  let log = ref [] in
  let stalls = ref 0 in
  let task name () =
    log := (name ^ "1") :: !log;
    Fiber.suspend ();
    log := (name ^ "2") :: !log
  in
  ignore (Fiber.run ~on_stall:(fun () -> incr stalls) [ task "a"; task "b" ]);
  check_int "one stall" 1 !stalls;
  Alcotest.(check (list string)) "phases interleave" [ "a1"; "b1"; "a2"; "b2" ] (List.rev !log)

let test_fiber_fork_join () =
  let result = ref Value.Vnil in
  let task () =
    let vs =
      Fiber.fork [| (fun () -> Value.Vint 1); (fun () -> Value.Vint 2); (fun () -> Value.Vint 3) |]
    in
    result := Value.Vtuple vs
  in
  ignore (Fiber.run ~on_stall:(fun () -> ()) [ task ]);
  match !result with
  | Value.Vtuple [| Value.Vint 1; Value.Vint 2; Value.Vint 3 |] -> ()
  | _ -> Alcotest.fail "wrong fork results"

let test_fiber_nested_fork () =
  let total = ref 0 in
  let rec spawn depth () =
    if depth = 0 then Value.Vint 1
    else begin
      let vs = Fiber.fork [| spawn (depth - 1); spawn (depth - 1) |] in
      Array.iter (fun v -> total := !total + Value.to_int v) vs;
      Value.Vint 0
    end
  in
  ignore (Fiber.run ~on_stall:(fun () -> ()) [ (fun () -> ignore (spawn 4 ())) ]);
  check_int "all leaves counted" 16 !total

let test_fiber_fork_with_suspension () =
  let stalls = ref 0 in
  let task () =
    let vs =
      Fiber.fork
        [|
          (fun () ->
            Fiber.suspend ();
            Value.Vint 10);
          (fun () -> Value.Vint 20);
        |]
    in
    check_int "both children done" 30 (Value.to_int vs.(0) + Value.to_int vs.(1))
  in
  ignore (Fiber.run ~on_stall:(fun () -> incr stalls) [ task ]);
  check_int "stalled once for the blocked child" 1 !stalls

let test_fiber_deadlock_detection () =
  (* A stall callback that makes no progress must be detected. *)
  let task () = Fiber.suspend () in
  match Fiber.run ~on_stall:(fun () -> ()) [ task ] with
  | exception Failure msg -> check_true "deadlock reported" (T_util.contains msg "deadlock")
  | _ ->
    (* The fiber is resumed after the stall; a single suspend terminates. *)
    ()

(* --- Schedulers on synthetic DFGs --- *)

let reg = Kernel.registry ()

let unit_kernel =
  let b = Kernel.builder () in
  let t = Kernel.add_instr b Op.Sigmoid [ Kernel.Arg 0 ] in
  Kernel.finish reg b ~name:"sig" ~nargs:1 ~roles:[| Kernel.Batched |] ~shared_binds:[]
    ~out_tmps:[| t |] ~fusion:true ~horizontal:false

let source_kernel =
  let b = Kernel.builder () in
  let t = Kernel.add_instr b (Op.Constant { shape = [ 1; 2 ]; value = 0.5 }) [] in
  Kernel.finish reg b ~name:"src" ~nargs:0 ~roles:[||] ~shared_binds:[] ~out_tmps:[| t |]
    ~fusion:true ~horizontal:false

(* Build a random DAG of [n] nodes through a Runtime; returns the runtime and
   its nodes in insertion order. Dependencies only point backwards. *)
let build_random_dfg ~scheduler ~seed n =
  let device = Device.create () in
  let policy =
    {
      Executor.gather_fusion = true;
      quality = (fun _ -> 0.8);
      compute_values = false;
      detect_dynamic_sharing = true;
    }
  in
  let rt = Runtime.create ~device ~scheduler ~policy ~seed ~instances:1 in
  let rng = Rng.create seed in
  let handles = ref [] in
  for i = 0 to n - 1 do
    let outs =
      if !handles = [] || Rng.bool rng then
        Runtime.invoke rt ~kernel:source_kernel ~args:[||] ~instance:0 ~phase:0 ~depth:0
          ~sig_key:"src"
      else begin
        let prev = List.nth !handles (Rng.int rng (List.length !handles)) in
        Runtime.invoke rt ~kernel:unit_kernel ~args:[| prev |] ~instance:0 ~phase:0
          ~depth:(i + 1) ~sig_key:"sig"
      end
    in
    handles := outs.(0) :: !handles
  done;
  rt, !handles

let prop_scheduler_executes_everything scheduler name =
  qtest ~count:30 ("scheduler: " ^ name ^ " executes all nodes (topologically)")
    QCheck2.Gen.(pair (int_range 1 60) int)
    (fun (n, seed) ->
      let rt, handles = build_random_dfg ~scheduler ~seed n in
      Runtime.flush rt;
      (* exec_batch raises if any dependency is violated; afterwards every
         handle must be materialized. *)
      List.for_all Value.handle_ready handles)

let test_inline_depth_batches_by_depth () =
  let device = Device.create () in
  let policy =
    { Executor.gather_fusion = true; quality = (fun _ -> 0.8); compute_values = false;
      detect_dynamic_sharing = false }
  in
  let rt = Runtime.create ~device ~scheduler:Config.Inline_depth ~policy ~seed:1 ~instances:4 in
  (* 4 instances x same kernel at same depth -> one batch. *)
  for i = 0 to 3 do
    ignore
      (Runtime.invoke rt ~kernel:source_kernel ~args:[||] ~instance:i ~phase:0 ~depth:0
         ~sig_key:"src")
  done;
  Runtime.flush rt;
  let p = Device.profiler device in
  check_int "one batch" 1 p.Profiler.batches_executed;
  check_int "one launch" 1 p.Profiler.kernel_calls

let test_phase_ordering () =
  (* Nodes of a later phase never execute before nodes of an earlier phase
     they depend on, even at smaller depths. *)
  let device = Device.create () in
  let policy =
    { Executor.gather_fusion = true; quality = (fun _ -> 0.8); compute_values = false;
      detect_dynamic_sharing = false }
  in
  let rt = Runtime.create ~device ~scheduler:Config.Inline_depth ~policy ~seed:1 ~instances:1 in
  let a =
    Runtime.invoke rt ~kernel:source_kernel ~args:[||] ~instance:0 ~phase:0 ~depth:9
      ~sig_key:"src"
  in
  let b =
    Runtime.invoke rt ~kernel:unit_kernel ~args:[| a.(0) |] ~instance:0 ~phase:1 ~depth:0
      ~sig_key:"sig"
  in
  Runtime.flush rt;
  check_true "dependent executed" (Value.handle_ready b.(0))

let test_executor_gathers_on_scattered () =
  (* Two producer batches leave outputs in separate slabs; a consumer batch
     over both must gather (fusion off) or mark scattered (fusion on). *)
  let run ~gather_fusion =
    let device = Device.create () in
    let policy =
      { Executor.gather_fusion; quality = (fun _ -> 0.8); compute_values = false;
        detect_dynamic_sharing = false }
    in
    let rt = Runtime.create ~device ~scheduler:Config.Inline_depth ~policy ~seed:1 ~instances:2 in
    (* Three producer batches allocate three consecutive slabs; consuming
       slabs 0 and 2 leaves a hole, so the inputs are scattered. *)
    let a = Runtime.invoke rt ~kernel:source_kernel ~args:[||] ~instance:0 ~phase:0 ~depth:0 ~sig_key:"s0" in
    let _skip = Runtime.invoke rt ~kernel:source_kernel ~args:[||] ~instance:0 ~phase:0 ~depth:1 ~sig_key:"s1" in
    let b = Runtime.invoke rt ~kernel:source_kernel ~args:[||] ~instance:1 ~phase:0 ~depth:2 ~sig_key:"s2" in
    let _ = Runtime.invoke rt ~kernel:unit_kernel ~args:[| a.(0) |] ~instance:0 ~phase:0 ~depth:3 ~sig_key:"c" in
    let _ = Runtime.invoke rt ~kernel:unit_kernel ~args:[| b.(0) |] ~instance:1 ~phase:0 ~depth:3 ~sig_key:"c" in
    Runtime.flush rt;
    Device.profiler device
  in
  let explicit = run ~gather_fusion:false in
  check_int "explicit gather issued" 1 explicit.Profiler.gather_kernels;
  let fused = run ~gather_fusion:true in
  check_int "no gather kernel when fused" 0 fused.Profiler.gather_kernels;
  check_true "fused run cheaper in kernel calls"
    (fused.Profiler.kernel_calls < explicit.Profiler.kernel_calls)

let test_runtime_constants_memoized () =
  let device = Device.create () in
  let policy =
    { Executor.gather_fusion = true; quality = (fun _ -> 0.8); compute_values = true;
      detect_dynamic_sharing = false }
  in
  let rt = Runtime.create ~device ~scheduler:Config.Inline_depth ~policy ~seed:1 ~instances:1 in
  let h1 = Runtime.const_handle rt ~shape:[ 1; 4 ] ~value:0.0 in
  let h2 = Runtime.const_handle rt ~shape:[ 1; 4 ] ~value:0.0 in
  let h3 = Runtime.const_handle rt ~shape:[ 1; 4 ] ~value:1.0 in
  check_true "same constant shared" (h1 == h2);
  check_true "different value distinct" (h1 != h3)

let test_runtime_decisions_deterministic () =
  let mk () =
    let device = Device.create () in
    let policy =
      { Executor.gather_fusion = true; quality = (fun _ -> 0.8); compute_values = false;
        detect_dynamic_sharing = false }
    in
    Runtime.create ~device ~scheduler:Config.Inline_depth ~policy ~seed:9 ~instances:2
  in
  let a = mk () and b = mk () in
  for _ = 1 to 20 do
    check_int "same decision stream"
      (Runtime.decision_int a ~instance:0 5)
      (Runtime.decision_int b ~instance:0 5)
  done;
  (* Instance streams are independent. *)
  let c = mk () in
  let xs = List.init 10 (fun _ -> Runtime.decision_int c ~instance:0 1000) in
  let ys = List.init 10 (fun _ -> Runtime.decision_int c ~instance:1 1000) in
  check_true "instances differ" (xs <> ys)

let test_upload_accounting () =
  let device = Device.create () in
  let policy =
    { Executor.gather_fusion = true; quality = (fun _ -> 0.8); compute_values = false;
      detect_dynamic_sharing = false }
  in
  let rt = Runtime.create ~device ~scheduler:Config.Inline_depth ~policy ~seed:1 ~instances:1 in
  let tensors = List.init 10 (fun _ -> Tensor.zeros [ 1; 8 ]) in
  ignore (Runtime.upload_inputs rt ~batched:true tensors);
  check_int "one transfer when batched" 1 (Device.profiler device).Profiler.memcpy_calls;
  ignore (Runtime.upload_inputs rt ~batched:false tensors);
  check_int "per-tensor otherwise" 11 (Device.profiler device).Profiler.memcpy_calls

(* --- Result fingerprints (the integrity layer's detector) --- *)

module Fingerprint = Acrobat_runtime.Fingerprint

let prop_fingerprint_detects_perturbation =
  qtest "fingerprint: any single-element perturbation changes the digest"
    QCheck2.Gen.(triple (list_size (int_range 1 3) (int_range 1 5)) int (int_range 0 4095))
    (fun (shape, seed, salt) ->
      let x = Tensor.random (Rng.create seed) shape in
      let data = Tensor.data x in
      let i = salt mod Array.length data in
      let before = Fingerprint.of_tensor x in
      let orig = data.(i) in
      (* A bit-level flip in one element — the smallest silent corruption. *)
      data.(i) <- orig +. Float.max 1e-6 (Float.abs orig *. 1e-6);
      let changed = not (Fingerprint.equal before (Fingerprint.of_tensor x)) in
      data.(i) <- orig;
      changed && Fingerprint.equal before (Fingerprint.of_tensor x))

let prop_fingerprint_shape_sensitive =
  qtest "fingerprint: same data, different shape, different digest"
    QCheck2.Gen.(pair (int_range 1 4) int)
    (fun (n, seed) ->
      let flat = Tensor.random (Rng.create seed) [ 2 * n ] in
      let boxed = Tensor.reshape flat [ 2; n ] in
      not (Fingerprint.equal (Fingerprint.of_tensor flat) (Fingerprint.of_tensor boxed)))

let prop_fingerprint_component_order_invariant =
  qtest "fingerprint: value components combine commutatively"
    QCheck2.Gen.(list_size (int_range 1 6) (pair (int_range 0 2) int))
    (fun comps ->
      let value (tag, n) =
        match tag with
        | 0 -> Value.Vint n
        | 1 -> Value.Vfloat (float_of_int n *. 0.125)
        | _ -> Value.Vbool (n land 1 = 0)
      in
      let vs = List.map value comps in
      let fp l = Fingerprint.of_value (Value.Vtuple (Array.of_list l)) in
      (* Materialization order must not matter: a request's digest is the
         same however the runtime traverses its outputs. *)
      Fingerprint.equal (fp vs) (fp (List.rev vs)))

let suite =
  [
    Alcotest.test_case "fiber: completion" `Quick test_fiber_run_to_completion;
    Alcotest.test_case "fiber: suspend/resume" `Quick test_fiber_suspend_resume;
    Alcotest.test_case "fiber: fork-join" `Quick test_fiber_fork_join;
    Alcotest.test_case "fiber: nested fork" `Quick test_fiber_nested_fork;
    Alcotest.test_case "fiber: fork + suspension" `Quick test_fiber_fork_with_suspension;
    Alcotest.test_case "fiber: deadlock detection" `Quick test_fiber_deadlock_detection;
    prop_scheduler_executes_everything Config.Inline_depth "inline-depth";
    prop_scheduler_executes_everything Config.Runtime_depth "runtime-depth";
    prop_scheduler_executes_everything Config.Agenda "agenda";
    Alcotest.test_case "scheduler: inline batches by depth" `Quick test_inline_depth_batches_by_depth;
    Alcotest.test_case "scheduler: phase ordering" `Quick test_phase_ordering;
    Alcotest.test_case "executor: gather behaviour" `Quick test_executor_gathers_on_scattered;
    Alcotest.test_case "runtime: constant memoization" `Quick test_runtime_constants_memoized;
    Alcotest.test_case "runtime: decision determinism" `Quick test_runtime_decisions_deterministic;
    Alcotest.test_case "runtime: upload accounting" `Quick test_upload_accounting;
    prop_fingerprint_detects_perturbation;
    prop_fingerprint_shape_sensitive;
    prop_fingerprint_component_order_invariant;
  ]
