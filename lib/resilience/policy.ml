(** The overload-resilience policy: which of the three admission-side
    mechanisms are armed, and with what knobs. All three default to off —
    {!off} makes every resilience code path a no-op, keeping runs without
    the new flags byte-identical to releases that predate the layer.

    The fourth mechanism, EDF queue ordering, is unconditional (it is
    order-equivalent to FIFO whenever every request in a queue shares one
    relative deadline, which is exactly the legacy configuration); only
    its eager expiry sweep is armed by {!active}. *)

type config = {
  rs_retry_budget : float option;
      (** Token-bucket fraction: retries per fresh admission. *)
  rs_target_delay_us : float option;  (** AIMD queue-delay setpoint. *)
  rs_brownout : Brownout.spec option;
}

let off = { rs_retry_budget = None; rs_target_delay_us = None; rs_brownout = None }

let active c =
  c.rs_retry_budget <> None || c.rs_target_delay_us <> None || c.rs_brownout <> None

(** Parse a [--brownout HIGH_MS:DWELL_MS[:LOW_MS]] spec (milliseconds;
    LOW defaults to HIGH/2). *)
let brownout_of_string s : Brownout.spec =
  let fail () =
    Fmt.invalid_arg "--brownout %S: want HIGH_MS:DWELL_MS[:LOW_MS]" s
  in
  let f x = match float_of_string_opt x with Some v when v > 0.0 -> v | _ -> fail () in
  match String.split_on_char ':' s with
  | [ high; dwell ] ->
    let high = f high in
    { Brownout.bo_high_us = high *. 1000.0;
      bo_dwell_us = f dwell *. 1000.0;
      bo_low_us = high *. 500.0 }
  | [ high; dwell; low ] ->
    { Brownout.bo_high_us = f high *. 1000.0;
      bo_dwell_us = f dwell *. 1000.0;
      bo_low_us = f low *. 1000.0 }
  | _ -> fail ()

(** Render a brownout spec back to the CLI syntax (milliseconds). *)
let brownout_to_string (b : Brownout.spec) =
  Fmt.str "%g:%g:%g" (b.Brownout.bo_high_us /. 1000.0) (b.Brownout.bo_dwell_us /. 1000.0)
    (b.Brownout.bo_low_us /. 1000.0)
