(** The Cortex baseline (Fegade et al. 2021) for Table 6.

    Cortex is a compiler specialized to {e recursive} models: the user
    manually re-implements the model against its API, and it compiles a
    fully static, level-synchronous schedule with aggressively fused,
    persistent kernels — no DFG construction or runtime scheduling at all.
    We model that execution faithfully on the shared device: per recursion
    level, one fused persistent kernel over every node at that level across
    the batch; input linear transformations manually hoisted into a single
    up-front GEMM (offloaded to cuBLAS in the real system, §7.2.2).

    Its two structural weaknesses from the paper are also modeled:
    - it supports only the recursive models (TreeLSTM, MV-RNN, BiRNN);
    - its restrictive API forces additional copies of the per-leaf
      embedding data, which is catastrophic for MV-RNN where each leaf
      carries an HxH matrix (§7.2.2). *)

open Acrobat_device
module W = Acrobat_workloads

(** Hand-optimized persistent kernels: better than generic vendor calls. *)
let kernel_quality = 0.92

let bytes_of_elems e = e * Cost_model.bytes_per_elem

(* One fused, persistent kernel launch covering [nodes] cell evaluations. *)
let level_launch device ~nodes ~cell_flops =
  if nodes > 0 then
    Device.launch_kernel device ~quality:kernel_quality
      ~flops:(float_of_int nodes *. cell_flops)

(* Cortex's static schedule is precomputed; per-node runtime bookkeeping is
   a pointer bump. *)
let charge_static_schedule device ~nodes =
  Device.charge_scheduling device (0.01 *. float_of_int nodes)

(* Level-order node counts across a batch of trees: entry [h] = total
   number of tree nodes at height [h]. *)
let batched_levels trees =
  let per_tree = List.map W.Trees.level_sizes trees in
  let maxlen = List.fold_left (fun acc l -> max acc (List.length l)) 0 per_tree in
  List.init maxlen (fun h ->
      List.fold_left
        (fun acc l -> acc + Option.value ~default:0 (List.nth_opt l h))
        0 per_tree)

type result = { latency_ms : float; kernel_calls : int }

let finish device =
  {
    latency_ms = Profiler.total_ms (Device.profiler device);
    kernel_calls = (Device.profiler device).Profiler.kernel_calls;
  }

(** TreeLSTM: five gates, three projections each (input / left / right). *)
let run_treelstm ~hidden (trees : W.Trees.t list) : result =
  let device = Device.create () in
  let h = float_of_int hidden in
  let total_leaves = List.fold_left (fun acc t -> acc + W.Trees.leaves t) 0 trees in
  let total_nodes = List.fold_left (fun acc t -> acc + W.Trees.size t) 0 trees in
  (* Batched input upload (one transfer). *)
  Device.memcpy device ~bytes:(bytes_of_elems (total_leaves * hidden));
  (* Manually hoisted input transforms: one big cuBLAS GEMM for all leaves
     and all five gates. *)
  Device.launch_kernel device ~quality:0.95
    ~flops:(float_of_int total_leaves *. 5.0 *. 2.0 *. h *. h);
  charge_static_schedule device ~nodes:total_nodes;
  (* Recurrent part: ten HxH projections + elementwise per cell, one
     persistent fused kernel per level. *)
  let cell_flops = (10.0 *. 2.0 *. h *. h) +. (10.0 *. h) in
  List.iter (fun nodes -> level_launch device ~nodes ~cell_flops) (batched_levels trees);
  (* Root states downloaded. *)
  Device.memcpy device ~bytes:(bytes_of_elems (List.length trees * hidden));
  finish device

(** MV-RNN: the composition is matrix-matrix work, and Cortex's API forces
    an extra device-side copy of every leaf's (vector, matrix) pair. *)
let run_mvrnn ~hidden (trees : W.Trees.t list) : result =
  let device = Device.create () in
  let h = float_of_int hidden in
  let total_leaves = List.fold_left (fun acc t -> acc + W.Trees.leaves t) 0 trees in
  let total_nodes = List.fold_left (fun acc t -> acc + W.Trees.size t) 0 trees in
  let leaf_elems = total_leaves * ((hidden * hidden) + hidden) in
  (* The restrictive interface requires each leaf's (vector, matrix) pair to
     be copied separately into Cortex's internal recursion layout (§7.2.2):
     one host->device transfer per leaf plus a device-side re-layout gather.
     For MV-RNN the matrices make this dominate. *)
  let per_leaf_bytes = bytes_of_elems ((hidden * hidden) + hidden) in
  List.iter
    (fun t ->
      for _ = 1 to W.Trees.leaves t do
        Device.memcpy device ~bytes:per_leaf_bytes
      done)
    trees;
  ignore (Device.launch_gather device ~bytes:(bytes_of_elems leaf_elems) ~elems:leaf_elems);
  charge_static_schedule device ~nodes:total_nodes;
  (* Per internal node: two vector-matrix products, one (H,2H)x(2H,H)
     matrix product, one (1,2H)x(2H,H) vector product. *)
  let cell_flops =
    (2.0 *. 2.0 *. h *. h) +. (2.0 *. h *. 2.0 *. h *. h) +. (2.0 *. 2.0 *. h *. h)
  in
  List.iter (fun nodes -> level_launch device ~nodes ~cell_flops) (batched_levels trees);
  Device.memcpy device ~bytes:(bytes_of_elems (List.length trees * hidden));
  finish device

(** BiRNN: two sequential passes, one persistent fused kernel per time step
    per direction; input and output transforms hoisted. *)
let run_birnn ~hidden ~classes (sentences : int list list) : result =
  let device = Device.create () in
  let h = float_of_int hidden in
  let total_tokens = List.fold_left (fun acc s -> acc + List.length s) 0 sentences in
  let max_len = List.fold_left (fun acc s -> max acc (List.length s)) 0 sentences in
  Device.memcpy device ~bytes:(bytes_of_elems (total_tokens * hidden));
  (* Hoisted input transforms for both directions. *)
  Device.launch_kernel device ~quality:0.95
    ~flops:(float_of_int total_tokens *. 2.0 *. 2.0 *. h *. h);
  charge_static_schedule device ~nodes:(2 * total_tokens);
  (* Recurrent matmul per step per direction, over the instances still
     running at that step. *)
  for step = 0 to max_len - 1 do
    let active = List.length (List.filter (fun s -> List.length s > step) sentences) in
    let cell_flops = (2.0 *. h *. h) +. (4.0 *. h) in
    level_launch device ~nodes:active ~cell_flops;
    level_launch device ~nodes:active ~cell_flops
  done;
  (* Hoisted per-token output classification. *)
  Device.launch_kernel device ~quality:0.95
    ~flops:(float_of_int total_tokens *. 2.0 *. 2.0 *. h *. float_of_int classes);
  Device.memcpy device ~bytes:(bytes_of_elems (total_tokens * classes));
  finish device
