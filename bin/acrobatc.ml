(** [acrobatc]: the ACROBAT compiler driver.

    Subcommands:
    - [check FILE]   — parse and type check a program.
    - [lower FILE]   — compile and print the lowered program structure
                       (specializations, kernels, depths, phases, ghosts).
    - [run FILE]     — compile and execute a program on random inputs,
                       printing outputs and the runtime activity profile.
    - [bench FILE]   — compare frameworks (acrobat / dynet / pytorch) on
                       the same program.
    - [serve]        — simulate online serving of a catalog model: requests
                       arrive over virtual time, are admission-controlled
                       and assembled into cross-request batches, and the
                       SLO report (latency percentiles, throughput, drops)
                       plus the device activity profile is printed.

    Per-instance inputs are named with [-i]; weights are materialized with
    seeded random values. Example:

    {v acrobatc run examples/rnn.acro -i inps --batch 8 --framework dynet v}
*)

open Cmdliner
open Acrobat
module L = Lowered

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* --- shared arguments --- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Input program.")

let inputs_arg =
  Arg.(
    value & opt_all string []
    & info [ "i"; "input" ] ~docv:"NAME"
        ~doc:"@main parameter that varies per batch instance (repeatable).")

let batch_arg =
  Arg.(value & opt int 4 & info [ "batch" ] ~docv:"N" ~doc:"Batch size.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let trace_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON timeline of the run (open in Perfetto or \
           chrome://tracing). Deterministic: same seed, same trace.")

(* A tracer when --trace was given, else the no-op sink. *)
let tracer_of trace_path =
  match trace_path with Some _ -> Some (Trace.create ()) | None -> None

let write_trace tracer trace_path =
  match tracer, trace_path with
  | Some tr, Some path ->
    Trace.to_file path tr;
    Fmt.pr "wrote %s (%d trace events)@." path (Trace.event_count tr)
  | _ -> ()

let framework_arg =
  let fw_conv =
    Arg.enum
      [
        "acrobat", Frameworks.Acrobat Config.acrobat;
        "dynet", Frameworks.Dynet { improved = false; scheduler = Config.Agenda };
        "dynet++", Frameworks.Dynet { improved = true; scheduler = Config.Agenda };
        "pytorch", Frameworks.Pytorch;
      ]
  in
  Arg.(
    value
    & opt fw_conv (Frameworks.Acrobat Config.acrobat)
    & info [ "framework" ] ~docv:"FW" ~doc:"Execution framework.")

(* Random instance generation from @main's declared input types. *)
let rec hval_of_ty rng (ty : Ir.Ty.t) : Driver.hval =
  match ty with
  | Ir.Ty.Tensor shape -> Driver.Htensor (Tensor.random rng shape)
  | Ir.Ty.Int -> Driver.Hint (Rng.int rng 10)
  | Ir.Ty.Bool -> Driver.Hbool (Rng.bool rng)
  | Ir.Ty.Float -> Driver.Hfloat (Rng.float rng)
  | Ir.Ty.List t ->
    Driver.Hlist (List.init (Rng.int_in rng 3 9) (fun _ -> hval_of_ty rng t))
  | Ir.Ty.Tree t ->
    let rec tree depth =
      if depth = 0 || Rng.bool rng then Driver.Hleaf (hval_of_ty rng t)
      else Driver.Hnode (tree (depth - 1), tree (depth - 1))
    in
    tree 4
  | Ir.Ty.Tup ts -> Driver.Htuple (List.map (hval_of_ty rng) ts)
  | Ir.Ty.Fn _ -> Fmt.invalid_arg "cannot generate a function-typed input"

let gen_setup source ~inputs ~batch ~seed =
  let program = Ir.Typecheck.parse_and_check source in
  let main = Ir.Ast.main_def program in
  let rng = Rng.create seed in
  let weights =
    List.filter_map
      (fun (name, ty) ->
        if List.mem name inputs then None
        else
          match ty with
          | Ir.Ty.Tensor shape -> Some (name, Tensor.random rng shape)
          | _ -> Fmt.invalid_arg "weight %%%s must be a tensor (or pass -i %s)" name name)
      main.Ir.Ast.params
  in
  let instances =
    List.init batch (fun _ ->
        List.filter_map
          (fun (name, ty) ->
            if List.mem name inputs then Some (name, hval_of_ty rng ty) else None)
          main.Ir.Ast.params)
  in
  weights, instances

(* --- check --- *)

(* Uniform error reporting for commands that execute programs. *)
let guarded f =
  match f () with
  | rc -> rc
  | exception Ir.Lexer.Error m
  | (exception Ir.Parser.Error m)
  | (exception Ir.Typecheck.Type_error m) ->
    Fmt.epr "error: %s@." m;
    1
  | exception Invalid_argument m ->
    Fmt.epr "error: %s@." m;
    1
  | exception Value.Runtime_error m ->
    Fmt.epr "runtime error: %s@." m;
    1

let check_cmd =
  let run file =
    match Ir.Typecheck.parse_and_check (read_file file) with
    | p ->
      Fmt.pr "%s: %d definitions OK@." file (List.length p.Ir.Ast.defs);
      0
    | exception Ir.Lexer.Error m | (exception Ir.Parser.Error m)
    | (exception Ir.Typecheck.Type_error m) ->
      Fmt.epr "%s: %s@." file m;
      1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Parse and type check a program.")
    Term.(const run $ file_arg)

(* --- lower --- *)

let print_lowered (lp : L.t) =
  Fmt.pr "specializations:@.";
  Hashtbl.iter (fun name _ -> Fmt.pr "  %s@." name) lp.L.defs;
  Fmt.pr "kernels:@.";
  List.iter (fun k -> Fmt.pr "  %a@." Kernel.pp k) (Kernel.all_kernels lp.L.registry);
  Fmt.pr "max static depth: %d    tensor-dependent control flow: %b@." lp.L.max_static_depth
    lp.L.has_tdc

let lower_cmd =
  let run file inputs =
    match Lower.compile ~inputs (read_file file) with
    | lp ->
      print_lowered lp;
      0
    | exception Ir.Lexer.Error m | (exception Ir.Parser.Error m)
    | (exception Ir.Typecheck.Type_error m) ->
      Fmt.epr "%s: %s@." file m;
      1
  in
  Cmd.v
    (Cmd.info "lower" ~doc:"Compile and print the lowered program.")
    Term.(const run $ file_arg $ inputs_arg)

(* --- run --- *)

let run_cmd =
  let run file inputs batch seed framework values trace_path =
    guarded @@ fun () ->
    let source = read_file file in
    let weights, instances = gen_setup source ~inputs ~batch ~seed in
    let tracer = tracer_of trace_path in
    Option.iter
      (fun tr ->
        Trace.name_process tr ~pid:0 ~name:"run";
        Trace.name_thread tr ~pid:0 ~tid:0 ~name:"device")
      tracer;
    let compiled = compile ~framework ?tracer ~inputs source in
    let compiled = tune compiled ~weights ~calibration:instances in
    let r = run_batch ~compute_values:values ~seed ?tracer compiled ~weights ~instances () in
    if values then
      List.iteri (fun i v -> Fmt.pr "instance %d: %a@." i Value.pp v) r.Driver.outputs;
    Fmt.pr "@.%a@." Profiler.pp r.Driver.stats.profiler;
    write_trace tracer trace_path;
    0
  in
  let values_arg =
    Arg.(value & flag & info [ "values" ] ~doc:"Compute and print real tensor values.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile and execute a program on random inputs.")
    Term.(
      const run $ file_arg $ inputs_arg $ batch_arg $ seed_arg $ framework_arg $ values_arg
      $ trace_arg)

(* --- bench --- *)

let bench_cmd =
  let run file inputs batch seed =
    guarded @@ fun () ->
    let source = read_file file in
    let weights, instances = gen_setup source ~inputs ~batch ~seed in
    Fmt.pr "%-10s %10s %8s %8s %8s@." "framework" "latency" "nodes" "batches" "launches";
    List.iter
      (fun (name, framework) ->
        let compiled = compile ~framework ~inputs source in
        let compiled = tune compiled ~weights ~calibration:instances in
        let r = run ~seed compiled ~weights ~instances () in
        let p = r.Driver.stats.profiler in
        Fmt.pr "%-10s %8.3fms %8d %8d %8d@." name r.Driver.stats.latency_ms
          p.Profiler.nodes_created p.Profiler.batches_executed p.Profiler.kernel_calls)
      [
        "acrobat", Frameworks.Acrobat Config.acrobat;
        "dynet", Frameworks.Dynet { improved = false; scheduler = Config.Agenda };
        "pytorch", Frameworks.Pytorch;
      ];
    0
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Compare frameworks on the same program.")
    Term.(const run $ file_arg $ inputs_arg $ batch_arg $ seed_arg)

(* --- serve --- *)

let serve_cmd =
  let run model_id size rate policy requests max_batch max_wait_us queue_cap deadline_ms
      burst seed iters faults_specs replicas dispatch hedge requeue_budget retry_budget
      concurrency_target brownout tenant_specs autoscale audit net_spec min_goodput
      exact_stats json_path trace_path =
    guarded @@ fun () ->
    Option.iter
      (fun k ->
        if k < 1 then Fmt.invalid_arg "--exact-stats %d: want a positive record count" k;
        Serve.Stats.set_streaming_threshold k)
      exact_stats;
    Option.iter
      (fun f ->
        if not (Float.is_finite f) || f < 0.0 then
          Fmt.invalid_arg "--retry-budget %g: want a finite fraction >= 0" f)
      retry_budget;
    if not (Float.is_finite audit) || audit < 0.0 || audit > 1.0 then
      Fmt.invalid_arg "--audit %g: want a sampling rate in [0,1]" audit;
    Option.iter
      (fun ms ->
        if not (Float.is_finite ms) || ms <= 0.0 then
          Fmt.invalid_arg "--concurrency-target %g: want a positive delay in ms" ms)
      concurrency_target;
    let resilience =
      {
        Resilience.rs_retry_budget = retry_budget;
        rs_target_delay_us = Option.map (fun ms -> ms *. 1000.0) concurrency_target;
        rs_brownout = Option.map Resilience.brownout_of_string brownout;
      }
    in
    (* Printed only when armed, so legacy invocations stay byte-identical. *)
    let pp_resilience () =
      if Resilience.active resilience then begin
        Fmt.pr "resilience:";
        Option.iter
          (fun f -> Fmt.pr " retry-budget %g" f)
          resilience.Resilience.rs_retry_budget;
        Option.iter
          (fun t -> Fmt.pr " concurrency-target %gms" (t /. 1000.0))
          resilience.Resilience.rs_target_delay_us;
        Option.iter
          (fun b -> Fmt.pr " brownout %s" (Resilience.brownout_to_string b))
          resilience.Resilience.rs_brownout;
        Fmt.pr "@."
      end
    in
    (* Printed only when armed, like [pp_resilience]. *)
    let pp_audit () =
      if audit > 0.0 then
        Fmt.pr "audit: sampling %g of deliveries against an unbatched reference@." audit
    in
    let net =
      Option.map
        (fun spec ->
          let plan = Net.parse spec in
          Net.validate plan;
          plan)
        net_spec
    in
    (* Printed only when a plan is armed, like [pp_resilience]. *)
    let pp_net () =
      Option.iter (fun plan -> Fmt.pr "net: %s@." (Net.to_spec plan)) net
    in
    (* The zero-delivered-corruption assertion: at --audit 1 every delivery
       is fingerprint-checked, so a corrupted result reaching a client is a
       hard failure, not a statistic. *)
    let corruption_gate (summary : Serve.Stats.summary) rc =
      if audit >= 1.0 && summary.Serve.Stats.s_corrupted_delivered > 0 then begin
        Fmt.epr "error: %d corrupted results delivered despite --audit 1@."
          summary.Serve.Stats.s_corrupted_delivered;
        1
      end
      else rc
    in
    let resolve id =
      match size with
      | "tiny" -> Models.tiny id
      | "small" -> (Models.find id).Models.make Model.Small
      | "large" -> (Models.find id).Models.make Model.Large
      | other -> Fmt.invalid_arg "unknown size %S (tiny|small|large)" other
    in
    let policy =
      match policy with
      | "batch1" -> Serve.Batcher.Batch1
      | "fixed" -> Serve.Batcher.Fixed { max_batch; max_wait_us }
      | "adaptive" -> Serve.Batcher.Adaptive { max_batch; max_wait_us }
      | other -> Fmt.invalid_arg "unknown policy %S (batch1|fixed|adaptive)" other
    in
    let fault_plans = List.map Faults.parse faults_specs in
    if tenant_specs <> [] then begin
      (* Multi-tenant path: tenants carry model/rate/SLO/quota; --model,
         --rate, --replicas and --dispatch do not apply. --hedge arms the
         dispatcher's percentile-delay hedging instead. *)
      let tenants =
        Array.of_list
          (List.mapi
             (fun i spec ->
               Tenancy.Tenant.parse ~seed ~index:i ~bursty:burst ~requests spec)
             tenant_specs)
      in
      let min_replicas, max_replicas =
        match autoscale with
        | None -> 1, 1
        | Some s -> (
          match String.split_on_char ':' s with
          | [ a; b ] -> (
            match int_of_string_opt a, int_of_string_opt b with
            | Some lo, Some hi -> lo, hi
            | _ -> Fmt.invalid_arg "--autoscale %S: want MIN:MAX" s)
          | _ -> Fmt.invalid_arg "--autoscale %S: want MIN:MAX" s)
      in
      if List.length fault_plans > max_replicas then
        Fmt.invalid_arg "%d fault plans for at most %d replicas"
          (List.length fault_plans) max_replicas;
      Fmt.pr "multi-tenant serve: %d tenants   autoscale %d..%d   policy %a   seed %d@."
        (Array.length tenants) min_replicas max_replicas Serve.Batcher.pp_policy policy
        seed;
      Array.iter (fun t -> Fmt.pr "  %a@." Tenancy.Tenant.pp t) tenants;
      List.iteri
        (fun i p ->
          if Faults.enabled p then
            Fmt.pr "fault plan (replica %d): %a@." i Faults.pp_plan p)
        fault_plans;
      pp_resilience ();
      pp_audit ();
      pp_net ();
      Fmt.pr "@.";
      let tracer = tracer_of trace_path in
      let report =
        serve_tenants ~policy ~queue_capacity:queue_cap ?iters ~fault_plans ~min_replicas
          ~max_replicas ~resilience ?hedge_percentile:hedge ~audit ?net ?tracer
          ~models:resolve ~tenants ~seed ()
      in
      let summary = Serve.Stats.summarize report.Tenancy.Dispatcher.tn_stats in
      Fmt.pr "%a@.@." Serve.Stats.pp_summary summary;
      List.iter
        (fun (tv : Tenancy.Dispatcher.tenant_view) ->
          let t = tv.Tenancy.Dispatcher.tv_tenant in
          let s = Serve.Stats.summarize tv.Tenancy.Dispatcher.tv_stats in
          Fmt.pr
            "tenant %-10s (%s): completed %d, goodput %.3f, slo %.1f%%, quota shed %d, \
             peak inflight %d@."
            t.Tenancy.Tenant.tn_name t.Tenancy.Tenant.tn_model s.Serve.Stats.s_completed
            (Serve.Stats.goodput s)
            (100.0 *. Serve.Stats.slo_attainment s)
            s.Serve.Stats.s_quota_shed tv.Tenancy.Dispatcher.tv_peak_inflight)
        report.Tenancy.Dispatcher.tn_tenants;
      Fmt.pr "@.replicas: peak %d, final %d, %d model swaps, utilization %.1f%%@."
        report.Tenancy.Dispatcher.tn_peak_replicas
        report.Tenancy.Dispatcher.tn_final_replicas report.Tenancy.Dispatcher.tn_swaps
        (100.0 *. Tenancy.Dispatcher.utilization report);
      List.iter
        (fun (ts_us, ev, n) -> Fmt.pr "  %10.0fus %-10s -> %d replicas@." ts_us ev n)
        report.Tenancy.Dispatcher.tn_scale_events;
      Option.iter
        (fun path ->
          Serve.Json.to_file path (Tenancy.Dispatcher.report_json report);
          Fmt.pr "wrote %s@." path)
        json_path;
      write_trace tracer trace_path;
      corruption_gate summary
        (match min_goodput with
        | Some frac when Serve.Stats.goodput summary < frac ->
          Fmt.epr "error: goodput %.4f below --min-goodput %.4f@."
            (Serve.Stats.goodput summary) frac;
          1
        | _ -> 0)
    end
    else begin
    let model = resolve model_id in
    let process =
      if burst then
        Serve.Traffic.Bursty
          {
            rate_low_per_s = rate /. 4.0;
            rate_high_per_s = rate *. 2.0;
            mean_dwell_us = 50_000.0;
          }
      else Serve.Traffic.Poisson { rate_per_s = rate }
    in
    if replicas < 1 then Fmt.invalid_arg "--replicas must be >= 1";
    let dispatch =
      match Serve.Cluster.dispatch_of_string dispatch with
      | Some d -> d
      | None -> Fmt.invalid_arg "unknown dispatch %S (rr|jsq|lel)" dispatch
    in
    if List.length fault_plans > replicas then
      Fmt.invalid_arg "%d fault plans for %d replicas" (List.length fault_plans) replicas;
    Fmt.pr "model %s (%s)   traffic %a   policy %a   seed %d@.@." model_id size
      Serve.Traffic.pp_process process Serve.Batcher.pp_policy policy seed;
    List.iteri
      (fun i p ->
        if Faults.enabled p then Fmt.pr "fault plan (replica %d): %a@." i Faults.pp_plan p)
      fault_plans;
    if List.exists Faults.enabled fault_plans then Fmt.pr "@.";
    pp_resilience ();
    pp_audit ();
    pp_net ();
    let tracer = tracer_of trace_path in
    let summary =
      if replicas = 1 && hedge = None && requeue_budget = None && net = None then begin
        (* Single-server path: byte-stable with previous releases. *)
        let faults = match fault_plans with [] -> Faults.none | p :: _ -> p in
        let report =
          serve_model ~policy ~queue_capacity:queue_cap ?deadline_ms ?iters ~faults
            ~resilience ~audit ?tracer ~process ~requests ~seed model
        in
        Fmt.pr "%a@.@." Serve.Stats.pp_summary report.sv_summary;
        Fmt.pr "cumulative device activity:@.%a@." Profiler.pp report.sv_profiler;
        Option.iter
          (fun path ->
            Serve.Json.to_file path (serve_report_json report);
            Fmt.pr "wrote %s@." path)
          json_path;
        report.sv_summary
      end
      else begin
        let report =
          serve_cluster ~policy ~queue_capacity:queue_cap ?deadline_ms ?iters ~fault_plans
            ~dispatch ?hedge_percentile:hedge ?requeue_budget ~resilience ~audit ?net
            ?tracer ~replicas ~process ~requests ~seed model
        in
        Fmt.pr "cluster of %d replicas   dispatch %s%a@.@." replicas
          (Serve.Cluster.dispatch_name dispatch)
          Fmt.(option (fun ppf p -> Fmt.pf ppf "   hedge p%g" p))
          hedge;
        Fmt.pr "%a@.@." Serve.Stats.pp_summary report.cr_summary;
        List.iter
          (fun rr ->
            Fmt.pr "replica %d (%s): completed %d, batches %d, failovers %d@." rr.rr_id
              rr.rr_health rr.rr_summary.Serve.Stats.s_completed
              rr.rr_summary.Serve.Stats.s_batches rr.rr_summary.Serve.Stats.s_failovers)
          report.cr_replicas;
        Fmt.pr "@.cumulative device activity:@.%a@." Profiler.pp report.cr_profiler;
        Option.iter
          (fun path ->
            Serve.Json.to_file path (cluster_report_json report);
            Fmt.pr "wrote %s@." path)
          json_path;
        report.cr_summary
      end
    in
    write_trace tracer trace_path;
    corruption_gate summary
      (match min_goodput with
      | Some frac when Serve.Stats.goodput summary < frac ->
        Fmt.epr "error: goodput %.4f below --min-goodput %.4f@."
          (Serve.Stats.goodput summary) frac;
        1
      | _ -> 0)
    end
  in
  let model_arg =
    Arg.(value & opt string "treelstm" & info [ "model" ] ~docv:"ID" ~doc:"Catalog model.")
  in
  let size_arg =
    Arg.(
      value & opt string "small"
      & info [ "size" ] ~docv:"SIZE" ~doc:"Model size: tiny, small or large.")
  in
  let rate_arg =
    Arg.(
      value & opt float 200.0
      & info [ "rate" ] ~docv:"R" ~doc:"Offered load, requests per second.")
  in
  let policy_arg =
    Arg.(
      value & opt string "adaptive"
      & info [ "policy" ] ~docv:"P" ~doc:"Batch assembly: batch1, fixed or adaptive.")
  in
  let requests_arg =
    Arg.(value & opt int 200 & info [ "requests" ] ~docv:"N" ~doc:"Requests to simulate.")
  in
  let max_batch_arg =
    Arg.(value & opt int 16 & info [ "max-batch" ] ~docv:"N" ~doc:"Batch size cap.")
  in
  let max_wait_arg =
    Arg.(
      value & opt float 2000.0
      & info [ "max-wait-us" ] ~docv:"US" ~doc:"Assembly timeout on the oldest request.")
  in
  let queue_cap_arg =
    Arg.(
      value & opt int 256
      & info [ "queue-cap" ] ~docv:"N" ~doc:"Admission queue bound (load shedding).")
  in
  let deadline_arg =
    Arg.(
      value & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Per-request deadline; expired drops.")
  in
  let burst_arg =
    Arg.(value & flag & info [ "bursty" ] ~doc:"Markov-modulated bursty arrivals.")
  in
  let iters_arg =
    Arg.(
      value & opt (some int) None
      & info [ "iters" ] ~docv:"N" ~doc:"Auto-scheduler iteration budget.")
  in
  let faults_arg =
    Arg.(
      value & opt_all string []
      & info [ "faults" ] ~docv:"PLAN"
          ~doc:
            "Deterministic fault-injection plan, e.g. \
             'seed=7,kernel=0.05,straggler=0.02x6,reset=0.001,capacity=200000,poison=3+17'. \
             Enables retry, bisection, circuit breaking and graceful degradation. \
             Repeatable with --replicas: the i-th plan applies to replica i (replicas \
             without a plan run fault-free).")
  in
  let replicas_arg =
    Arg.(
      value & opt int 1
      & info [ "replicas" ] ~docv:"N"
          ~doc:
            "Serve from N replicas with health-checked failover and in-flight requeue \
             (see --dispatch, --hedge).")
  in
  let dispatch_arg =
    Arg.(
      value & opt string "jsq"
      & info [ "dispatch" ] ~docv:"POLICY"
          ~doc:
            "Replica dispatch policy: rr (round-robin), jsq (join shortest queue) or lel \
             (least expected latency).")
  in
  let hedge_arg =
    Arg.(
      value & opt (some float) None
      & info [ "hedge" ] ~docv:"P"
          ~doc:
            "Hedge straggling requests: re-issue on another replica after the P-th \
             percentile (e.g. 95) of recent latency; first completion wins.")
  in
  let requeue_budget_arg =
    Arg.(
      value & opt (some int) None
      & info [ "requeue-budget" ] ~docv:"N"
          ~doc:
            "Failover re-dispatches per request before it is dropped (default 8). \
             Setting it forces the cluster engine even with --replicas 1.")
  in
  let tenant_arg =
    Arg.(
      value & opt_all string []
      & info [ "tenant" ] ~docv:"SPEC"
          ~doc:
            "Serve a tenant: NAME:MODEL:RATE:SLO:QUOTA with an optional :WEIGHT field \
             (rate in req/s, SLO in ms with 0 = none, quota = max inflight per replica). \
             Repeatable; any --tenant switches to the multi-tenant dispatcher, where \
             batches form only within a model and --model/--rate/--replicas/--dispatch \
             do not apply (--hedge re-issues straggling requests within the tenant's \
             queue). Tenant i's traffic seed derives from --seed + 101*i.")
  in
  let retry_budget_arg =
    Arg.(
      value & opt (some float) None
      & info [ "retry-budget" ] ~docv:"FRAC"
          ~doc:
            "Cap transient-fault retries with a token bucket: each fresh admitted \
             request deposits FRAC tokens, each re-executed request spends one, and an \
             empty bucket converts the retry into a counted shed. Bounds retry \
             amplification at FRAC times the offered load.")
  in
  let concurrency_target_arg =
    Arg.(
      value & opt (some float) None
      & info [ "concurrency-target" ] ~docv:"MS"
          ~doc:
            "Adaptive concurrency limit (AIMD): gate admission ahead of the bounded \
             queue, growing the limit additively while observed queue delay stays under \
             MS milliseconds and backing off multiplicatively when it exceeds it.")
  in
  let brownout_arg =
    Arg.(
      value & opt (some string) None
      & info [ "brownout" ] ~docv:"HIGH_MS:DWELL_MS[:LOW_MS]"
          ~doc:
            "Brownout to the model's degraded variant when queue delay stays above \
             HIGH_MS for DWELL_MS, restoring full quality after it stays below LOW_MS \
             (default HIGH_MS/2) for the same dwell — hysteresis prevents flapping.")
  in
  let autoscale_arg =
    Arg.(
      value & opt (some string) None
      & info [ "autoscale" ] ~docv:"MIN:MAX"
          ~doc:
            "Autoscaler replica bounds for the multi-tenant dispatcher (default 1:1 = \
             one fixed replica). Scale-up reacts to sustained queue delay; scale-down \
             drains the victim replica before retiring it.")
  in
  let audit_arg =
    Arg.(
      value & opt float 0.0
      & info [ "audit" ] ~docv:"RATE"
          ~doc:
            "Audit sampled deliveries for silent data corruption: each completed \
             request is re-executed unbatched on a clean reference engine with \
             probability RATE and the result fingerprints are compared before delivery. \
             A mismatch delivers the reference result instead and feeds the replica's \
             corruption scoreboard, which quarantines repeat offenders (drain, requeue, \
             probe-based re-admission). At RATE 1 every delivery is verified and the \
             run exits nonzero if any corrupted result slips through.")
  in
  let net_arg =
    Arg.(
      value & opt (some string) None
      & info [ "net" ] ~docv:"PLAN"
          ~doc:
            "Lossy virtual transport between dispatcher and replicas, e.g. \
             'seed=7,delay=120:60,drop=0.05,dup=0.1,reorder=0.2,gray=0.02,\
             partition=8000:20000,timeout=5000,resends=2'. Dispatches and completions \
             traverse seeded per-link fault processes; idempotency keys with a \
             per-replica dedup window keep delivery exactly-once under duplication and \
             resend, and partitioned replicas fail over until the cut heals. Forces the \
             cluster engine even with --replicas 1.")
  in
  let min_goodput_arg =
    Arg.(
      value & opt (some float) None
      & info [ "min-goodput" ] ~docv:"FRAC"
          ~doc:
            "Exit nonzero when goodput (completed/offered) falls below FRAC — makes \
             fault-injected smoke runs assert availability.")
  in
  let exact_stats_arg =
    Arg.(
      value & opt (some int) None
      & info [ "exact-stats" ] ~docv:"K"
          ~doc:
            "Retain up to K latency records exactly before the SLO summary switches to \
             bounded-memory streaming mode (one-pass means, fixed-seed reservoir \
             percentiles). Default 100000 — million-request campaigns stream, everything \
             smaller stays exact.")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Dump the SLO summary as JSON.")
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Simulate online serving with cross-request batching.")
    Term.(
      const run $ model_arg $ size_arg $ rate_arg $ policy_arg $ requests_arg
      $ max_batch_arg $ max_wait_arg $ queue_cap_arg $ deadline_arg $ burst_arg $ seed_arg
      $ iters_arg $ faults_arg $ replicas_arg $ dispatch_arg $ hedge_arg
      $ requeue_budget_arg $ retry_budget_arg $ concurrency_target_arg $ brownout_arg
      $ tenant_arg $ autoscale_arg $ audit_arg $ net_arg $ min_goodput_arg
      $ exact_stats_arg $ json_arg $ trace_arg)

(* --- chaos (randomized fault search with invariant checking) --- *)

let chaos_cmd =
  let print_outcome ca (oc : Chaos.outcome) =
    let sc = oc.Chaos.oc_scenario in
    Fmt.pr "scenario %d (seed %d, %d requests, %d replicas, %d fault clauses) VIOLATES:@."
      sc.Chaos.Scenario.sc_index sc.Chaos.Scenario.sc_seed sc.Chaos.Scenario.sc_requests
      sc.Chaos.Scenario.sc_replicas
      (Chaos.Scenario.fault_clause_count sc);
    let shown, rest =
      let vs = oc.Chaos.oc_violations in
      if List.length vs <= 5 then vs, 0
      else List.filteri (fun i _ -> i < 5) vs, List.length vs - 5
    in
    List.iter
      (fun (v : Chaos.Invariants.violation) ->
        Fmt.pr "  [%s] %s@." v.Chaos.Invariants.vi_name v.Chaos.Invariants.vi_detail)
      shown;
    if rest > 0 then Fmt.pr "  ... and %d more violations@." rest;
    (match oc.Chaos.oc_shrunk with
    | None -> ()
    | Some (msc, _) ->
      Fmt.pr "  shrunk to %d fault clauses, %d requests, %d replicas@."
        (Chaos.Scenario.fault_clause_count msc)
        msc.Chaos.Scenario.sc_requests msc.Chaos.Scenario.sc_replicas);
    List.iter (fun line -> Fmt.pr "  %s@." line) (Chaos.repro_lines ca oc);
    Fmt.pr "@."
  in
  let write_artifacts ca outcomes repro_path trace_path =
    match outcomes with
    | [] -> ()
    | first :: _ ->
      Option.iter
        (fun path ->
          let oc = open_out path in
          List.iter
            (fun o -> List.iter (fun l -> Printf.fprintf oc "%s\n" l) (Chaos.repro_lines ca o))
            outcomes;
          close_out oc;
          Fmt.pr "wrote %s@." path)
        repro_path;
      Option.iter
        (fun path ->
          Obs.Json.to_file path first.Chaos.oc_trace;
          Fmt.pr "wrote %s (failing trace)@." path)
        trace_path
  in
  let run seed runs fault_prob shrink shrink_budget min_goodput only json_path repro_path
      trace_path =
    guarded @@ fun () ->
    let ca =
      {
        Chaos.default_campaign with
        Chaos.ca_seed = seed;
        ca_runs = runs;
        ca_fault_prob = fault_prob;
        ca_goodput_floor = min_goodput;
        ca_shrink = shrink;
        ca_shrink_budget = shrink_budget;
      }
    in
    match only with
    | Some index ->
      (* Replay one scenario of the campaign by index. *)
      let sc = Chaos.Scenario.generate ~campaign_seed:seed ~fault_prob index in
      Fmt.pr "scenario %d of campaign seed %d:@.  %s@.@." index seed
        (Chaos.Scenario.to_cli sc);
      (match Chaos.check_one ca index with
      | None ->
        Fmt.pr "no violations.@.";
        0
      | Some outcome ->
        print_outcome ca outcome;
        write_artifacts ca [ outcome ] repro_path trace_path;
        1)
    | None ->
      let report = Chaos.run_campaign ca in
      let violating = List.length report.Chaos.rp_outcomes in
      Fmt.pr "campaign seed %d: %d scenarios, %d violating (%.1f per kiloscenario)@.@."
        seed report.Chaos.rp_scenarios violating
        (Chaos.violations_per_kiloscenario report);
      List.iter (print_outcome ca) report.Chaos.rp_outcomes;
      Option.iter
        (fun path ->
          Obs.Json.to_file path (Chaos.report_json report);
          Fmt.pr "wrote %s@." path)
        json_path;
      write_artifacts ca report.Chaos.rp_outcomes repro_path trace_path;
      if violating = 0 then 0 else 1
  in
  let runs_arg =
    Arg.(
      value & opt int 100
      & info [ "runs" ] ~docv:"K" ~doc:"Scenarios to generate and check.")
  in
  let fault_prob_arg =
    Arg.(
      value & opt float 0.5
      & info [ "fault-prob" ] ~docv:"P"
          ~doc:"Per-replica probability of a randomized fault plan (0 = clean fleet).")
  in
  let shrink_arg =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:
            "Minimize each violating scenario by delta debugging (drop fault clauses, \
             halve rates, shrink the fleet) while the violation still reproduces.")
  in
  let shrink_budget_arg =
    Arg.(
      value & opt int Chaos.default_campaign.Chaos.ca_shrink_budget
      & info [ "shrink-budget" ] ~docv:"N" ~doc:"Max re-simulations per shrink.")
  in
  let min_goodput_arg =
    Arg.(
      value & opt (some float) None
      & info [ "min-goodput" ] ~docv:"FRAC"
          ~doc:
            "Treat goodput below FRAC as a violation in every scenario (on top of the \
             derived floor for provably-clean ones).")
  in
  let only_arg =
    Arg.(
      value & opt (some int) None
      & info [ "only" ] ~docv:"I"
          ~doc:"Check only scenario I of the campaign (reproducer replay).")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Dump the campaign report as JSON.")
  in
  let repro_arg =
    Arg.(
      value & opt (some string) None
      & info [ "repro" ] ~docv:"FILE"
          ~doc:"On violation, write one-line reproducer commands to FILE.")
  in
  let chaos_trace_arg =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"On violation, write the first failing scenario's trace JSON to FILE.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Randomized fault search over the serving stack: generate seeded scenarios, \
          check invariants (request conservation, terminal uniqueness, requeue budgets, \
          goodput floors, deterministic replay), and shrink violations to minimal \
          reproducers.")
    Term.(
      const run $ seed_arg $ runs_arg $ fault_prob_arg $ shrink_arg $ shrink_budget_arg
      $ min_goodput_arg $ only_arg $ json_arg $ repro_arg $ chaos_trace_arg)

(* --- trace (validate a --trace export) --- *)

let trace_cmd =
  let module J = Obs.Json in
  let valid_phases = [ 'X'; 'i'; 'C'; 'M' ] in
  let validate_event i (ev : J.t) =
    let str k = match J.member k ev with Some (J.Str s) -> Some s | _ -> None in
    let num k =
      match J.member k ev with
      | Some (J.Int n) -> Some (float_of_int n)
      | Some (J.Float f) -> Some f
      | _ -> None
    in
    let fail fmt = Fmt.invalid_arg ("event %d: " ^^ fmt) i in
    let ph =
      match str "ph" with
      | Some p when String.length p = 1 && List.mem p.[0] valid_phases -> p.[0]
      | Some p -> fail "unknown phase %S" p
      | None -> fail "missing \"ph\""
    in
    if str "name" = None then fail "missing \"name\"";
    if num "pid" = None then fail "missing \"pid\"";
    if num "tid" = None then fail "missing \"tid\"";
    (match ph with
    | 'M' -> ()
    | _ -> (
      match num "ts" with
      | Some ts when ts >= 0.0 -> ()
      | Some _ -> fail "negative \"ts\""
      | None -> fail "missing \"ts\""));
    if ph = 'X' then begin
      match num "dur" with
      | Some d when d >= 0.0 -> ()
      | Some _ -> fail "negative \"dur\""
      | None -> fail "complete event missing \"dur\""
    end;
    ph
  in
  let run file =
    guarded @@ fun () ->
    match J.of_file file with
    | exception J.Parse_error m ->
      Fmt.epr "%s: invalid JSON: %s@." file m;
      1
    | json -> (
      match Option.bind (J.member "traceEvents" json) J.to_list_opt with
      | None ->
        Fmt.epr "%s: no \"traceEvents\" array@." file;
        1
      | Some events ->
        let phases = List.mapi validate_event events in
        let count ph = List.length (List.filter (Char.equal ph) phases) in
        Fmt.pr "%s: %d events OK (%d spans, %d instants, %d counters, %d metadata)@." file
          (List.length events) (count 'X') (count 'i') (count 'C') (count 'M');
        0)
  in
  let file_arg =
    Arg.(
      required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Trace JSON to check.")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Validate a Chrome trace_event JSON file written by --trace.")
    Term.(const run $ file_arg)

let () =
  let info = Cmd.info "acrobatc" ~version:"1.0" ~doc:"The ACROBAT compiler driver." in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ check_cmd; lower_cmd; run_cmd; bench_cmd; serve_cmd; chaos_cmd; trace_cmd ]))
