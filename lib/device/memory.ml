(** Simulated device memory: a bump-pointer arena.

    ACROBAT and DyNet both use arena allocation on the device (§D.3). We track
    only addresses and extents — actual values live in host {!Acrobat_tensor}
    buffers — because the one property batching cares about is whether the
    inputs of a batch are *contiguous* (§5.2): contiguous inputs need no
    memory gather; scattered inputs need either an explicit gather kernel or
    a gather-fused kernel. *)

type address = int

type t = {
  mutable cursor : address;
  mutable allocations : int;
  mutable peak : address;
}

let create () = { cursor = 0; allocations = 0; peak = 0 }

let reset t =
  t.cursor <- 0;
  t.allocations <- 0

(** [alloc t ~elems] reserves [elems] contiguous elements, returning the
    base address. *)
let alloc t ~elems =
  assert (elems >= 0);
  let addr = t.cursor in
  t.cursor <- t.cursor + elems;
  t.allocations <- t.allocations + 1;
  if t.cursor > t.peak then t.peak <- t.cursor;
  addr

let allocations t = t.allocations
let used_elems t = t.cursor
let peak_elems t = t.peak

(** [contiguous chunks] is true when the [(address, elems)] chunks lie
    back-to-back in order, i.e. a batched kernel can read them as one slab. *)
let contiguous chunks =
  match chunks with
  | [] -> true
  | (first, first_sz) :: rest ->
    let rec go expected = function
      | [] -> true
      | (addr, sz) :: tl -> addr = expected && go (addr + sz) tl
    in
    go (first + first_sz) rest
