# Convenience targets; everything is plain dune underneath.

.PHONY: all build test check bench clean

all: build

build:
	dune build

test:
	dune runtest

# Tier-1 gate: full build (warnings are errors in the dev profile — see the
# env stanza in dune-project), the whole test suite, then end-to-end serving
# smoke runs — fault-free and fault-injected — to catch CLI wiring breakage
# that unit tests can miss.
check: build test
	dune exec bin/acrobatc.exe -- serve --model treelstm --size tiny \
	  --rate 2000 --requests 50 --iters 100
	dune exec bin/acrobatc.exe -- serve --model treelstm --size tiny \
	  --rate 2000 --requests 50 --iters 100 \
	  --faults "seed=7,kernel=0.05,straggler=0.02x6,reset=0.001"

bench:
	dune exec bench/main.exe

clean:
	dune clean
