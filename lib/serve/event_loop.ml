(** A deterministic discrete-event loop over the virtual {!Clock}.

    Events are thunks keyed by (time, sequence number): ties at the same
    virtual instant dispatch in scheduling order, so a burst of simultaneous
    arrivals enqueues before the wake-up that one of them scheduled — the
    property the batcher's cross-request invariants rely on. Handlers may
    schedule further events (at or after the current time); the loop runs
    until the queue drains.

    Two queue backends implement the same (time, seq) dispatch order:

    - [Heap] (the default): an array-backed binary min-heap. Push and pop
      are O(log n) with no per-event allocation beyond the entry itself,
      and a million-entry agenda is a single flat array — this is the
      production backend for 10⁶+-request campaigns.
    - [Map_reference]: the original [Map.Make]-based queue, kept verbatim
      as an executable specification. The QCheck equivalence suite and
      [bench scale] run both backends on identical schedules and demand
      identical dispatch sequences, so the heap is provably a pure
      speedup. *)

module Key = struct
  type t = float * int  (* fire time (us), scheduling sequence *)

  let compare (ta, sa) (tb, sb) =
    match Float.compare ta tb with 0 -> Int.compare sa sb | c -> c
end

module Q = Map.Make (Key)

type backend = Heap | Map_reference

(* Heap slots. [ev_seq = -1] marks the unused-slot dummy; live sequence
   numbers start at 0. *)
type event = { ev_at : float; ev_seq : int; ev_run : unit -> unit }

let dummy_event = { ev_at = 0.0; ev_seq = -1; ev_run = ignore }

type t = {
  clock : Clock.t;
  backend : backend;
  mutable heap : event array;  (* binary min-heap on (ev_at, ev_seq) *)
  mutable heap_len : int;
  mutable queue : (unit -> unit) Q.t;  (* Map_reference backend *)
  mutable next_seq : int;
  mutable dispatched : int;
  mutable clamped : int;
}

(* Global default so harnesses ([bench scale], the equivalence tests) can
   flip whole simulations onto the reference backend without threading a
   knob through every [create] call site. *)
let default_backend = ref Heap

let set_default_backend b = default_backend := b
let current_default_backend () = !default_backend

let create ?backend clock =
  let backend = match backend with Some b -> b | None -> !default_backend in
  {
    clock;
    backend;
    heap = Array.make 64 dummy_event;
    heap_len = 0;
    queue = Q.empty;
    next_seq = 0;
    dispatched = 0;
    clamped = 0;
  }

(* Debug-only dispatch-order checking. The loop's correctness rests on
   events popping at non-decreasing fire times (the (time, seq) order);
   code that advances the clock behind the loop's back — or a future
   refactor that breaks the key ordering — would silently reorder
   causality. With the flag on, [run] raises the moment a popped event's
   fire time is behind the clock instead of letting [Clock.advance_to]
   swallow the regression. Global rather than per-loop so harnesses (the
   chaos campaign, tests) can arm it around whole simulations without
   threading a knob through every [create]. *)
let debug_checks = ref false

(** Enable/disable the monotonic-dispatch assertion in {!run}. *)
let set_debug_checks enabled = debug_checks := enabled

let debug_checks_enabled () = !debug_checks

let clock t = t.clock
let now t = Clock.now t.clock

let pending t =
  match t.backend with Heap -> t.heap_len | Map_reference -> Q.cardinal t.queue

let dispatched t = t.dispatched

(** Number of schedules whose requested time was in the past. A correct
    simulation never asks for the past, so anything nonzero is a latent
    scheduling bug that clamping would otherwise hide. *)
let clamped_count t = t.clamped

(* --- binary heap primitives (min on (ev_at, ev_seq)) --- *)

let ev_before a b =
  a.ev_at < b.ev_at || (a.ev_at = b.ev_at && a.ev_seq < b.ev_seq)

let heap_push t e =
  let n = t.heap_len in
  if n = Array.length t.heap then begin
    let bigger = Array.make (2 * n) dummy_event in
    Array.blit t.heap 0 bigger 0 n;
    t.heap <- bigger
  end;
  let a = t.heap in
  (* Sift up. *)
  let i = ref n in
  a.(n) <- e;
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    if ev_before e a.(p) then begin
      a.(!i) <- a.(p);
      i := p;
      true
    end
    else false
  do
    ()
  done;
  a.(!i) <- e;
  t.heap_len <- n + 1

let heap_pop t =
  let n = t.heap_len in
  if n = 0 then None
  else begin
    let a = t.heap in
    let top = a.(0) in
    let n = n - 1 in
    t.heap_len <- n;
    let last = a.(n) in
    a.(n) <- dummy_event;
    if n > 0 then begin
      (* Sift [last] down from the root. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        let best = ref last in
        if l < n && ev_before a.(l) !best then begin
          smallest := l;
          best := a.(l)
        end;
        if r < n && ev_before a.(r) !best then smallest := r;
        if !smallest = !i then continue := false
        else begin
          a.(!i) <- a.(!smallest);
          i := !smallest
        end
      done;
      a.(!i) <- last
    end;
    Some top
  end

(** Schedule [f] to run at virtual time [at] (clamped to the present: the
    past is immutable — but see {!clamped_count}; silently rewriting the
    request can mask bugs, so every clamp is counted). Non-finite times are
    rejected: a NaN key would silently corrupt the (time, seq) ordering
    (NaN compares unordered against everything), and an infinite one would
    park the event beyond any reachable instant. *)
let schedule t ~at f =
  if not (Float.is_finite at) then
    Fmt.invalid_arg "Event_loop.schedule: non-finite time %f" at;
  if at < now t then t.clamped <- t.clamped + 1;
  let at = Float.max at (now t) in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  match t.backend with
  | Heap -> heap_push t { ev_at = at; ev_seq = seq; ev_run = f }
  | Map_reference -> t.queue <- Q.add (at, seq) f t.queue

(** Schedule [f] to run [delay] microseconds from now. A negative delay is
    a request for the past, exactly like a past [~at]: it is clamped to
    zero {e and counted} under {!clamped_count}, so the zero-clamp chaos
    invariant covers this path too. *)
let schedule_after t ~delay f =
  if not (Float.is_finite delay) then
    Fmt.invalid_arg "Event_loop.schedule_after: non-finite delay %f" delay;
  if delay < 0.0 then t.clamped <- t.clamped + 1;
  schedule t ~at:(now t +. Float.max 0.0 delay) f

let pop_next t =
  match t.backend with
  | Heap -> (
    match heap_pop t with Some e -> Some (e.ev_at, e.ev_run) | None -> None)
  | Map_reference -> (
    match Q.min_binding_opt t.queue with
    | Some (((at, _) as key), f) ->
      t.queue <- Q.remove key t.queue;
      Some (at, f)
    | None -> None)

(** Dispatch events in (time, seq) order until none remain. *)
let run t =
  let rec step () =
    match pop_next t with
    | None -> ()
    | Some (at, f) ->
      if !debug_checks && at < now t then
        Fmt.invalid_arg
          "Event_loop.run: dispatch order regression (event due at %.3fus, clock already \
           at %.3fus)"
          at (now t);
      Clock.advance_to t.clock at;
      t.dispatched <- t.dispatched + 1;
      f ();
      step ()
  in
  step ()
