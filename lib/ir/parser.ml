(** Recursive-descent parser for the input language.

    Grammar (informal):
    {v
    program := def*
    def     := "def" GLOBAL "(" params? ")" "->" ty "{" expr "}"
    ty      := "Tensor" "[" "(" ints ")" "]" | "List" "[" ty "]"
             | "Tree" "[" ty "]" | "Int" | "Bool" | "Float"
             | "fn" "(" tys? ")" "->" ty | "(" tys ")"
    expr    := "let" VAR "=" expr ";" expr
             | "if" "(" expr ")" block "else" block
             | "match" "(" expr ")" "{" (pat "=>" expr),+ "}"
             | "fn" "(" params? ")" block
             | binary-operator expression over postfix/atoms
    v}
    Tensor primitives appear as ordinary calls on bare identifiers:
    [matmul(a, b)], [sigmoid(x)], [slice(x, 0, 64)], [zeros((1, 64))],
    [const((1, 64), 0.5)], [random((1, 1))], [concat(a, b)], ... *)

open Lexer

exception Error of string

type state = { toks : located array; mutable at : int }

let fail st fmt =
  let { tok; line; col } = st.toks.(st.at) in
  Fmt.kstr
    (fun m ->
      raise (Error (Fmt.str "parse error: line %d, col %d (at %s): %s" line col (token_name tok) m)))
    fmt

let peek st = st.toks.(st.at).tok
let peek2 st = if st.at + 1 < Array.length st.toks then st.toks.(st.at + 1).tok else EOF
let advance st = st.at <- st.at + 1

let eat st tok =
  if peek st = tok then advance st else fail st "expected %s" (token_name tok)

let eat_ident st =
  match peek st with
  | IDENT s ->
    advance st;
    s
  | _ -> fail st "expected identifier"

let eat_var st =
  match peek st with
  | VAR s ->
    advance st;
    s
  | _ -> fail st "expected %%variable"

let eat_int st =
  match peek st with
  | INT n ->
    advance st;
    n
  | _ -> fail st "expected integer literal"

(* --- Types --- *)

let rec parse_ty st : Ty.t =
  match peek st with
  | IDENT "Tensor" ->
    advance st;
    eat st LBRACKET;
    eat st LPAREN;
    let dims = parse_int_list st in
    eat st RPAREN;
    eat st RBRACKET;
    Ty.Tensor dims
  | IDENT "List" ->
    advance st;
    eat st LBRACKET;
    let t = parse_ty st in
    eat st RBRACKET;
    Ty.List t
  | IDENT "Tree" ->
    advance st;
    eat st LBRACKET;
    let t = parse_ty st in
    eat st RBRACKET;
    Ty.Tree t
  | IDENT "Int" ->
    advance st;
    Ty.Int
  | IDENT "Bool" ->
    advance st;
    Ty.Bool
  | IDENT "Float" ->
    advance st;
    Ty.Float
  | IDENT "fn" ->
    advance st;
    eat st LPAREN;
    let args = if peek st = RPAREN then [] else parse_ty_list st in
    eat st RPAREN;
    eat st ARROW;
    let ret = parse_ty st in
    Ty.Fn (args, ret)
  | LPAREN ->
    advance st;
    let ts = parse_ty_list st in
    eat st RPAREN;
    (match ts with [ t ] -> t | ts -> Ty.Tup ts)
  | _ -> fail st "expected a type"

and parse_ty_list st =
  let t = parse_ty st in
  if peek st = COMMA then begin
    advance st;
    t :: parse_ty_list st
  end
  else [ t ]

and parse_int_list st =
  match peek st with
  | RPAREN -> []
  | INT n ->
    advance st;
    if peek st = COMMA then begin
      advance st;
      n :: parse_int_list st
    end
    else [ n ]
  | _ -> fail st "expected integer dimension"

(* --- Expressions --- *)

let prim_of_name st name nargs : Op.t option =
  match name, nargs with
  | "add", 2 -> Some Op.Add
  | "sub", 2 -> Some Op.Sub
  | "mul", 2 -> Some Op.Mul
  | "div", 2 -> Some Op.Div
  | "matmul", 2 -> Some Op.Matmul
  | "sigmoid", 1 -> Some Op.Sigmoid
  | "tanh", 1 -> Some Op.Tanh
  | "relu", 1 -> Some Op.Relu
  | "gelu", 1 -> Some Op.Gelu
  | "exp", 1 -> Some Op.Exp
  | "softmax", 1 -> Some Op.Softmax
  | "argmax", 1 -> Some Op.Argmax
  | "transpose", 1 -> Some Op.Transpose
  | "reduce_sum", 1 -> Some Op.Reduce_sum
  | "reduce_mean", 1 -> Some Op.Reduce_mean
  | "layernorm", 3 -> Some Op.Layernorm
  | "entropy", 1 -> Some Op.Entropy
  | "concat", n when n >= 2 -> Some (Op.Concat n)
  | ( ( "add" | "sub" | "mul" | "div" | "matmul" | "sigmoid" | "tanh" | "relu" | "gelu"
      | "exp" | "softmax" | "argmax" | "transpose" | "reduce_sum" | "reduce_mean"
      | "layernorm" | "entropy" | "concat" ),
      n ) ->
    fail st "primitive %s applied to %d arguments" name n
  | _ -> None

let rec parse_expr st : Ast.expr =
  match peek st with
  | IDENT "let" ->
    advance st;
    let v = eat_var st in
    eat st ASSIGN;
    let rhs = parse_expr st in
    eat st SEMI;
    let body = parse_expr st in
    Ast.Let (v, rhs, body)
  | IDENT "if" ->
    advance st;
    eat st LPAREN;
    let cond = parse_expr st in
    eat st RPAREN;
    let thn = parse_block st in
    eat st (IDENT "else");
    let els =
      (* Allow "else if (...)" chains without braces. *)
      if peek st = IDENT "if" then parse_expr st else parse_block st
    in
    Ast.If (cond, thn, els)
  | IDENT "match" ->
    advance st;
    eat st LPAREN;
    let scrut = parse_expr st in
    eat st RPAREN;
    eat st LBRACE;
    let cases = parse_cases st in
    eat st RBRACE;
    Ast.Match (scrut, cases)
  | IDENT "fn" ->
    advance st;
    eat st LPAREN;
    let params = if peek st = RPAREN then [] else parse_params st in
    eat st RPAREN;
    let body = parse_block st in
    Ast.Fn (params, body)
  | _ -> parse_or st

and parse_block st =
  eat st LBRACE;
  let e = parse_expr st in
  eat st RBRACE;
  e

and parse_params st =
  let v = eat_var st in
  eat st COLON;
  let t = parse_ty st in
  if peek st = COMMA then begin
    advance st;
    (v, t) :: parse_params st
  end
  else [ v, t ]

and parse_cases st =
  let pat = parse_pat st in
  eat st DARROW;
  let body = parse_expr st in
  let case = pat, body in
  if peek st = COMMA then begin
    advance st;
    if peek st = RBRACE then [ case ] else case :: parse_cases st
  end
  else [ case ]

and parse_pat st : Ast.pat =
  match peek st with
  | IDENT "Nil" ->
    advance st;
    Ast.Pnil
  | IDENT "Cons" ->
    advance st;
    eat st LPAREN;
    let a = eat_var st in
    eat st COMMA;
    let b = eat_var st in
    eat st RPAREN;
    Ast.Pcons (a, b)
  | IDENT "Leaf" ->
    advance st;
    eat st LPAREN;
    let a = eat_var st in
    eat st RPAREN;
    Ast.Pleaf a
  | IDENT "Node" ->
    advance st;
    eat st LPAREN;
    let a = eat_var st in
    eat st COMMA;
    let b = eat_var st in
    eat st RPAREN;
    Ast.Pnode (a, b)
  | IDENT "_" ->
    advance st;
    Ast.Pwild
  | _ -> fail st "expected pattern (Nil, Cons, Leaf, Node or _)"

and parse_or st =
  let lhs = parse_and st in
  if peek st = OROR then begin
    advance st;
    Ast.Binop (Ast.Or, lhs, parse_or st)
  end
  else lhs

and parse_and st =
  let lhs = parse_cmp st in
  if peek st = ANDAND then begin
    advance st;
    Ast.Binop (Ast.And, lhs, parse_and st)
  end
  else lhs

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match peek st with
    | LT -> Some Ast.Lt
    | LE -> Some Ast.Le
    | GT -> Some Ast.Gt
    | GE -> Some Ast.Ge
    | EQEQ -> Some Ast.Eq
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    advance st;
    Ast.Binop (op, lhs, parse_add st)

and parse_add st =
  let lhs = ref (parse_mul st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | PLUS ->
      advance st;
      lhs := Ast.Binop (Ast.Add, !lhs, parse_mul st)
    | MINUS ->
      advance st;
      lhs := Ast.Binop (Ast.Sub, !lhs, parse_mul st)
    | _ -> continue := false
  done;
  !lhs

and parse_mul st =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | STAR ->
      advance st;
      lhs := Ast.Binop (Ast.Mul, !lhs, parse_unary st)
    | SLASH ->
      advance st;
      lhs := Ast.Binop (Ast.Div, !lhs, parse_unary st)
    | PERCENT ->
      advance st;
      lhs := Ast.Binop (Ast.Mod, !lhs, parse_unary st)
    | _ -> continue := false
  done;
  !lhs

and parse_unary st =
  match peek st with
  | BANG ->
    advance st;
    Ast.Not (parse_unary st)
  | MINUS ->
    advance st;
    (match parse_unary st with
    | Ast.Int_lit n -> Ast.Int_lit (-n)
    | Ast.Float_lit f -> Ast.Float_lit (-.f)
    | e -> Ast.Binop (Ast.Sub, Ast.Int_lit 0, e))
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_atom st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | DOT ->
      advance st;
      let k = eat_int st in
      e := Ast.Proj (!e, k)
    | LPAREN ->
      advance st;
      let args = if peek st = RPAREN then [] else parse_args st in
      eat st RPAREN;
      e := Ast.Call (!e, args)
    | _ -> continue := false
  done;
  !e

and parse_args st =
  let a = parse_expr st in
  if peek st = COMMA then begin
    advance st;
    a :: parse_args st
  end
  else [ a ]

and parse_shape_literal st : int list =
  eat st LPAREN;
  let dims = parse_int_list st in
  eat st RPAREN;
  dims

and parse_atom st : Ast.expr =
  match peek st with
  | INT n ->
    advance st;
    Ast.Int_lit n
  | FLOAT f ->
    advance st;
    Ast.Float_lit f
  | IDENT "true" ->
    advance st;
    Ast.Bool_lit true
  | IDENT "false" ->
    advance st;
    Ast.Bool_lit false
  | VAR v ->
    advance st;
    Ast.Var v
  | GLOBAL g ->
    advance st;
    Ast.Global g
  | LBRACE -> parse_block st
  | LPAREN ->
    advance st;
    let es = parse_args st in
    eat st RPAREN;
    (match es with [ e ] -> e | es -> Ast.Tuple es)
  | IDENT "Nil" ->
    advance st;
    Ast.Nil
  | IDENT "Cons" ->
    advance st;
    eat st LPAREN;
    let a = parse_expr st in
    eat st COMMA;
    let b = parse_expr st in
    eat st RPAREN;
    Ast.Cons (a, b)
  | IDENT "Leaf" ->
    advance st;
    eat st LPAREN;
    let a = parse_expr st in
    eat st RPAREN;
    Ast.Leaf a
  | IDENT "Node" ->
    advance st;
    eat st LPAREN;
    let a = parse_expr st in
    eat st COMMA;
    let b = parse_expr st in
    eat st RPAREN;
    Ast.Node (a, b)
  | IDENT "concurrent" ->
    advance st;
    eat st LPAREN;
    let es = parse_args st in
    eat st RPAREN;
    Ast.Concurrent es
  | IDENT "map" ->
    advance st;
    eat st LPAREN;
    let f = parse_expr st in
    eat st COMMA;
    let xs = parse_expr st in
    eat st RPAREN;
    Ast.Map (f, xs)
  | IDENT "scalar" ->
    advance st;
    eat st LPAREN;
    let e = parse_expr st in
    eat st RPAREN;
    Ast.Scalar e
  | IDENT "choice" ->
    advance st;
    eat st LPAREN;
    let e = parse_expr st in
    eat st RPAREN;
    Ast.Choice e
  | IDENT "coin" ->
    advance st;
    eat st LPAREN;
    let e = parse_expr st in
    eat st RPAREN;
    Ast.Coin e
  | IDENT "zeros" ->
    advance st;
    eat st LPAREN;
    let shape = parse_shape_literal st in
    eat st RPAREN;
    Ast.Prim (Op.Constant { shape; value = 0.0 }, [])
  | IDENT "ones" ->
    advance st;
    eat st LPAREN;
    let shape = parse_shape_literal st in
    eat st RPAREN;
    Ast.Prim (Op.Constant { shape; value = 1.0 }, [])
  | IDENT "const" ->
    advance st;
    eat st LPAREN;
    let shape = parse_shape_literal st in
    eat st COMMA;
    let v =
      match peek st with
      | FLOAT f ->
        advance st;
        f
      | INT n ->
        advance st;
        float_of_int n
      | _ -> fail st "expected numeric constant"
    in
    eat st RPAREN;
    Ast.Prim (Op.Constant { shape; value = v }, [])
  | IDENT "random" ->
    advance st;
    eat st LPAREN;
    let shape = parse_shape_literal st in
    eat st RPAREN;
    Ast.Prim (Op.Random { shape }, [])
  | IDENT "slice" ->
    advance st;
    eat st LPAREN;
    let e = parse_expr st in
    eat st COMMA;
    let lo = eat_int st in
    eat st COMMA;
    let hi = eat_int st in
    eat st RPAREN;
    Ast.Prim (Op.Slice { lo; hi }, [ e ])
  | IDENT name -> begin
    (* A primitive-operator call, e.g. [matmul(a, b)]. *)
    match peek2 st with
    | LPAREN ->
      advance st;
      advance st;
      let args = if peek st = RPAREN then [] else parse_args st in
      eat st RPAREN;
      (match prim_of_name st name (List.length args) with
      | Some op -> Ast.Prim (op, args)
      | None -> fail st "unknown operator or function %S" name)
    | _ -> fail st "unexpected identifier %S" name
  end
  | _ -> fail st "expected expression"

(* --- Definitions --- *)

let parse_def st : Ast.def =
  eat st (IDENT "def");
  let name =
    match peek st with
    | GLOBAL g ->
      advance st;
      g
    | _ -> fail st "expected @name after def"
  in
  eat st LPAREN;
  let params = if peek st = RPAREN then [] else parse_params st in
  eat st RPAREN;
  eat st ARROW;
  let ret = parse_ty st in
  let body = parse_block st in
  { Ast.name; params; ret; body }

let parse_program_tokens st : Ast.program =
  let defs = ref [] in
  while peek st <> EOF do
    defs := parse_def st :: !defs
  done;
  { Ast.defs = List.rev !defs }

(** Parse a whole program from source text. *)
let program (src : string) : Ast.program =
  let toks = Array.of_list (Lexer.tokenize src) in
  parse_program_tokens { toks; at = 0 }

(** Parse a single expression (mostly for tests). *)
let expression (src : string) : Ast.expr =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; at = 0 } in
  let e = parse_expr st in
  eat st EOF;
  e
