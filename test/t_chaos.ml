(** Tests for the chaos harness: scenario generation determinism, the
    invariant oracles (exercised by tampering with a healthy run's
    accounting), the shrinker's acceptance bound, campaign byte-determinism
    and the clean-fleet zero-violation criterion. *)

open Acrobat
open T_util
module Scenario = Chaos.Scenario
module Invariants = Chaos.Invariants
module Shrink = Chaos.Shrink
module Faults = Acrobat_device.Faults
module Net = Acrobat_net.Net
module Stats = Serve.Stats
module Batcher = Serve.Batcher
module Cluster = Serve.Cluster
module Event_loop = Serve.Event_loop
module Trace = Obs.Trace
module Json = Obs.Json

(* --- Scenario generation --- *)

let test_scenario_determinism () =
  let a = Scenario.generate ~campaign_seed:7 ~fault_prob:0.5 3 in
  let b = Scenario.generate ~campaign_seed:7 ~fault_prob:0.5 3 in
  check_true "same (seed, index) regenerates the same scenario" (a = b);
  let c = Scenario.generate ~campaign_seed:7 ~fault_prob:0.5 4 in
  check_true "different index, different scenario" (a <> c);
  let clean = Scenario.generate ~campaign_seed:7 ~fault_prob:0.0 3 in
  check_true "fault_prob 0 generates a clean fleet"
    (Scenario.fault_clause_count clean = 0)

let test_scenario_to_cli () =
  let sc = Scenario.generate ~campaign_seed:11 ~fault_prob:1.0 0 in
  let cli = Scenario.to_cli sc in
  check_true "repro is a serve command" (contains cli "acrobatc serve");
  check_true "repro pins the traffic seed"
    (contains cli (Fmt.str "--seed %d" sc.Scenario.sc_seed));
  check_true "repro forces the cluster engine" (contains cli "--requeue-budget");
  check_true "faulty fleet emits a fault plan" (contains cli "--faults")

(* --- Invariant oracles ---

   Run one clean scenario for real, then tamper with the oracle's input:
   each mutation must trip exactly the invariant it targets. This checks
   the checkers — a chaos suite whose oracles never fire is worthless. *)

let clean_scenario () =
  {
    Scenario.sc_index = 0;
    sc_seed = 99;
    sc_requests = 30;
    sc_rate = 2000.0;
    sc_bursty = false;
    sc_replicas = 2;
    sc_dispatch = Cluster.Round_robin;
    sc_hedge = None;
    sc_queue_cap = 256;
    sc_deadline_ms = None;
    sc_policy = Batcher.Adaptive { max_batch = 8; max_wait_us = 1000.0 };
    sc_requeue_budget = 2;
    sc_plans = [| Faults.none; Faults.none |];
    sc_tenancy = None;
    sc_resilience = Resilience.off;
    sc_audit = 0.0;
    sc_net = None;
  }

let healthy_input () =
  let sc = clean_scenario () in
  let summary, tracer = Chaos.run_scenario sc in
  {
    Invariants.in_requests = sc.Scenario.sc_requests;
    in_requeue_budget = sc.Scenario.sc_requeue_budget;
    in_goodput_floor = 1.0;
    in_summary = summary;
    in_events = Trace.events tracer;
    in_tenants = [];
    in_retry_budget_frac = None;
    in_brownout = None;
    in_peak_replicas = sc.Scenario.sc_replicas;
    in_audit_rate = sc.Scenario.sc_audit;
    in_net = sc.Scenario.sc_net;
  }

let violated input = Invariants.names (Invariants.check input)

let test_invariants_healthy () =
  check_true "clean run passes the whole suite" (violated (healthy_input ()) = [])

let test_invariant_conservation () =
  let input = healthy_input () in
  let names = violated { input with Invariants.in_requests = input.Invariants.in_requests + 1 } in
  check_true "phantom arrival trips conservation" (List.mem "conservation" names);
  check_true "phantom arrival also lacks a terminal" (List.mem "terminal_once" names)

let test_invariant_terminal_once () =
  let input = healthy_input () in
  (* Erase the trace: every request now lacks its terminal instant, and the
     done-event count no longer matches the completion counter. *)
  let names = violated { input with Invariants.in_events = [] } in
  check_true "missing terminals trip terminal_once" (List.mem "terminal_once" names);
  check_true "done/completed mismatch trips no_dup_completion"
    (List.mem "no_dup_completion" names)

let test_invariant_dup_completion () =
  let input = healthy_input () in
  let dones =
    List.filter (fun e -> e.Trace.ev_name = "done" && e.Trace.ev_pid = 0)
      input.Invariants.in_events
  in
  check_true "clean run completed something" (dones <> []);
  let names =
    violated
      { input with Invariants.in_events = input.Invariants.in_events @ [ List.hd dones ] }
  in
  check_true "duplicated completion trips no_dup_completion"
    (List.mem "no_dup_completion" names);
  check_true "duplicated terminal trips terminal_once" (List.mem "terminal_once" names)

let test_invariant_audit_shield () =
  let input = healthy_input () in
  let s = input.Invariants.in_summary in
  (* Tamper 1: claim the run audited every delivery, then let a corrupted
     result through — the shield must fire. *)
  let names =
    violated
      { input with
        Invariants.in_audit_rate = 1.0;
        in_summary = { s with Stats.s_corrupted_delivered = 1 } }
  in
  check_true "delivered corruption under audit 1.0 trips audit_shield"
    (List.mem "audit_shield" names);
  (* Tamper 2: more mismatches than audits is impossible accounting. *)
  let names =
    violated
      { input with
        Invariants.in_summary = { s with Stats.s_audits = 1; s_audit_mismatches = 2 } }
  in
  check_true "mismatches > audits trips audit_shield" (List.mem "audit_shield" names);
  (* Delivered corruption at a partial sampling rate is the expected
     residual, not a violation. *)
  check_bool "partial-rate delivery is legitimate" false
    (List.mem "audit_shield"
       (violated
          { input with
            Invariants.in_audit_rate = 0.5;
            in_summary = { s with Stats.s_corrupted_delivered = 3 } }))

let test_invariant_quarantine_flow () =
  let input = healthy_input () in
  let s = input.Invariants.in_summary in
  (* A quarantine counted without its trace instant: the counter and the
     span stream must tell the same story. *)
  let names =
    violated { input with Invariants.in_summary = { s with Stats.s_quarantines = 1 } }
  in
  check_true "counter without trace instant trips quarantine_flow"
    (List.mem "quarantine_flow" names);
  (* More restores than quarantines is impossible. *)
  let names =
    violated
      { input with Invariants.in_summary = { s with Stats.s_quarantine_restores = 1 } }
  in
  check_true "restores > quarantines trips quarantine_flow"
    (List.mem "quarantine_flow" names)

let test_invariant_requeue_budget () =
  let input = healthy_input () in
  let requeue id =
    {
      Trace.ev_seq = 100_000 + id;
      ev_ph = 'i';
      ev_name = "requeue";
      ev_cat = "cluster";
      ev_ts_us = 1.0;
      ev_dur_us = 0.0;
      ev_pid = 0;
      ev_tid = id + 1;
      ev_args = [];
    }
  in
  (* Three requeues of request 0 against a budget of 2. *)
  let events = input.Invariants.in_events @ [ requeue 0; requeue 0; requeue 0 ] in
  let names = violated { input with Invariants.in_events = events } in
  check_true "over-budget requeues trip requeue_budget" (List.mem "requeue_budget" names);
  (* Two requeues stay within budget. *)
  let events = input.Invariants.in_events @ [ requeue 0; requeue 0 ] in
  check_true "in-budget requeues pass"
    (not (List.mem "requeue_budget" (violated { input with Invariants.in_events = events })))

let test_invariant_goodput_floor () =
  let input = healthy_input () in
  let names = violated { input with Invariants.in_goodput_floor = 1.1 } in
  check_true "unattainable floor trips goodput_floor" (List.mem "goodput_floor" names)

let test_invariant_tenants () =
  let input = healthy_input () in
  let tb ?(res_shed = 0) name offered completed quota peak =
    {
      Invariants.tb_name = name;
      tb_offered = offered;
      tb_completed = completed;
      tb_quota = quota;
      tb_peak_inflight = peak;
      tb_resilience_shed = res_shed;
    }
  in
  (* Quotas are per replica: pin the fleet at one replica so the scaled
     bound equals the configured quota. *)
  let one = { input with Invariants.in_peak_replicas = 1 } in
  let names = violated { one with Invariants.in_tenants = [ tb "a" 10 0 4 2 ] } in
  check_true "starved tenant trips tenant_starvation"
    (List.mem "tenant_starvation" names);
  let names = violated { one with Invariants.in_tenants = [ tb "a" 10 10 4 5 ] } in
  check_true "over-quota peak trips quota_respected" (List.mem "quota_respected" names);
  (* A tenant with zero offered load may complete nothing, and peak at the
     quota is within bounds. *)
  let names =
    violated
      { one with Invariants.in_tenants = [ tb "a" 10 3 4 4; tb "b" 0 0 1 0 ] }
  in
  check_true "healthy tenant mix passes"
    ((not (List.mem "tenant_starvation" names))
    && not (List.mem "quota_respected" names));
  (* The same peak is lawful once the fleet grew to two replicas. *)
  let names =
    violated
      {
        one with
        Invariants.in_tenants = [ tb "a" 10 10 4 5 ];
        in_peak_replicas = 2;
      }
  in
  check_true "quota scales with the peak replica count"
    (not (List.mem "quota_respected" names))

let test_invariant_retry_amplification () =
  let input = healthy_input () in
  let armed = { input with Invariants.in_retry_budget_frac = Some 0.1 } in
  (* A 0.1 budget over 30 offered allows 3 re-executions; 4 is a leak. *)
  let leak =
    {
      armed with
      Invariants.in_summary =
        { armed.Invariants.in_summary with Stats.s_retried_requests = 4 };
    }
  in
  check_true "over-budget re-execution trips retry_amplification"
    (List.mem "retry_amplification" (violated leak));
  let lawful =
    {
      armed with
      Invariants.in_summary =
        { armed.Invariants.in_summary with Stats.s_retried_requests = 3 };
    }
  in
  check_true "in-budget re-execution passes"
    (not (List.mem "retry_amplification" (violated lawful)));
  (* Without an armed budget the oracle must stay quiet no matter the count. *)
  let unarmed =
    {
      input with
      Invariants.in_summary =
        { input.Invariants.in_summary with Stats.s_retried_requests = 29 };
    }
  in
  check_true "oracle is silent when no budget is armed"
    (not (List.mem "retry_amplification" (violated unarmed)))

let test_invariant_brownout_dwell () =
  let input = healthy_input () in
  let instant ?(pid = 7) seq name ts =
    {
      Trace.ev_seq = 200_000 + seq;
      ev_ph = 'i';
      ev_name = name;
      ev_cat = "resilience";
      ev_ts_us = ts;
      ev_dur_us = 0.0;
      ev_pid = pid;
      ev_tid = 0;
      ev_args = [];
    }
  in
  let spec =
    { Serve.Server.Brownout.bo_high_us = 100.0; bo_dwell_us = 500.0; bo_low_us = 40.0 }
  in
  let with_brownout ~degrades ~restores events =
    {
      input with
      Invariants.in_brownout = Some spec;
      in_events = input.Invariants.in_events @ events;
      in_summary =
        {
          input.Invariants.in_summary with
          Stats.s_brownouts = degrades;
          s_brownout_restores = restores;
        };
    }
  in
  (* A restore only 200us after the degrade violates the 500us dwell. *)
  let rushed =
    with_brownout ~degrades:1 ~restores:1
      [ instant 0 "brownout_degrade" 1000.0; instant 1 "brownout_restore" 1200.0 ]
  in
  check_true "sub-dwell transition trips brownout_dwell"
    (List.mem "brownout_dwell" (violated rushed));
  (* A restore with no preceding degrade breaks alternation. *)
  let inverted =
    with_brownout ~degrades:0 ~restores:1 [ instant 0 "brownout_restore" 1000.0 ]
  in
  check_true "out-of-order transition trips brownout_dwell"
    (List.mem "brownout_dwell" (violated inverted));
  (* Counters that disagree with the trace are a leak even with no events. *)
  let phantom = with_brownout ~degrades:2 ~restores:0 [] in
  check_true "counter/trace mismatch trips brownout_dwell"
    (List.mem "brownout_dwell" (violated phantom));
  (* Dwell-respecting alternation with agreeing counters passes. *)
  let lawful =
    with_brownout ~degrades:1 ~restores:1
      [ instant 0 "brownout_degrade" 1000.0; instant 1 "brownout_restore" 1800.0 ]
  in
  check_true "lawful brownout timeline passes"
    (not (List.mem "brownout_dwell" (violated lawful)))

(* --- Network fault dimension --- *)

let find_net_scenario () =
  let rec go i =
    if i > 200 then Alcotest.fail "no net-armed scenario in 200 draws"
    else
      let sc = Scenario.generate ~campaign_seed:33 ~fault_prob:0.5 i in
      if sc.Scenario.sc_net <> None then sc else go (i + 1)
  in
  go 0

let test_net_scenario_repro () =
  let sc = find_net_scenario () in
  let cli = Scenario.to_cli sc in
  check_true "net repro carries the transport plan" (contains cli " --net \"");
  check_true "net repro pins the traffic seed"
    (contains cli (Fmt.str "--seed %d" sc.Scenario.sc_seed));
  (match sc.Scenario.sc_net with
  | Some p ->
    check_true "the emitted spec parses back to the drawn plan"
      (Net.parse (Net.to_spec p) = p)
  | None -> assert false);
  let again = Scenario.generate ~campaign_seed:33 ~fault_prob:0.5 sc.Scenario.sc_index in
  check_true "net-armed scenario regenerates identically" (sc = again)

(* Healthy lossy-transport run: the oracle input carries the armed plan so
   net_conservation / net_exactly_once / net_partition all engage. *)
let net_input () =
  let sc =
    {
      (clean_scenario ()) with
      Scenario.sc_net =
        Some (Net.parse "seed=5,delay=120:40,drop=0.08,dup=0.25,timeout=5000,resends=3");
    }
  in
  let summary, tracer = Chaos.run_scenario sc in
  {
    (healthy_input ()) with
    Invariants.in_summary = summary;
    in_events = Trace.events tracer;
    in_goodput_floor = 0.0;
    in_net = sc.Scenario.sc_net;
  }

let test_invariant_net_oracles () =
  let input = net_input () in
  check_true "lossy run passes the net oracles" (violated input = []);
  let s = input.Invariants.in_summary in
  check_true "the transport actually lost and duplicated copies"
    (s.Stats.s_net_drops > 0 && s.Stats.s_net_dups > 0 && s.Stats.s_net_dedup_hits > 0);
  (* Tamper 1: a phantom wire copy breaks copy conservation. *)
  let names =
    violated
      { input with Invariants.in_summary = { s with Stats.s_net_sends = s.Stats.s_net_sends + 1 } }
  in
  check_true "phantom wire copy trips net_conservation"
    (List.mem "net_conservation" names);
  (* Tamper 2: a delivery not accounted as fresh or dedup-absorbed. *)
  let names =
    violated
      { input with
        Invariants.in_summary =
          { s with Stats.s_net_deliveries = s.Stats.s_net_deliveries + 1 } }
  in
  check_true "unaccounted delivery trips net_conservation"
    (List.mem "net_conservation" names);
  (* Tamper 3: replay an execution instant — the dedup window let the same
     (request, replica, epoch) run twice. *)
  let execs =
    List.filter (fun e -> e.Trace.ev_name = "net_exec") input.Invariants.in_events
  in
  check_true "lossy run recorded executions" (execs <> []);
  let names =
    violated
      { input with Invariants.in_events = input.Invariants.in_events @ [ List.hd execs ] }
  in
  check_true "double execution trips net_exactly_once"
    (List.mem "net_exactly_once" names)

let test_invariant_net_partition () =
  let input = net_input () in
  (* Re-arm the oracle with a plan that cuts replica 1 during [5ms, 20ms),
     then forge a delivery landing on the cut link mid-window. *)
  let plan = Net.parse "seed=1,delay=100,partition=5000:20000:1" in
  let deliver ts =
    {
      Trace.ev_seq = 300_000;
      ev_ph = 'i';
      ev_name = "net_deliver";
      ev_cat = "net";
      ev_ts_us = ts;
      ev_dur_us = 0.0;
      ev_pid = input.Invariants.in_peak_replicas + 1 + 1;
      ev_tid = 1;
      ev_args = [];
    }
  in
  (* Feed the oracle only the forged event: the base run predates the
     partition plan, so its lawful deliveries to replica 1 would read as
     mid-window traffic. Other oracles may complain about the gutted trace;
     only the net_partition verdict is under test. *)
  let with_event ts =
    violated
      { input with Invariants.in_net = Some plan; in_events = [ deliver ts ] }
  in
  check_true "mid-window delivery on the cut link trips net_partition"
    (List.mem "net_partition" (with_event 10_000.0));
  (* The window is half-open: landing exactly at the heal instant is lawful. *)
  check_true "delivery at the heal instant is lawful"
    (not (List.mem "net_partition" (with_event 20_000.0)))

let test_net_campaign_holds () =
  (* ISSUE acceptance: the exactly-once and conservation oracles hold over a
     >= 200-scenario campaign with the network dimension in the draw. *)
  let ca =
    { Chaos.default_campaign with Chaos.ca_seed = 33; ca_runs = 200; ca_fault_prob = 0.4 }
  in
  let armed = ref 0 and partitioned = ref 0 in
  for i = 0 to ca.Chaos.ca_runs - 1 do
    let sc =
      Scenario.generate ~campaign_seed:ca.Chaos.ca_seed
        ~fault_prob:ca.Chaos.ca_fault_prob i
    in
    match sc.Scenario.sc_net with
    | Some p ->
      incr armed;
      if p.Net.np_partition <> None then incr partitioned
    | None -> ()
  done;
  check_true (Fmt.str "campaign draws lossy transports (got %d)" !armed) (!armed >= 40);
  check_true
    (Fmt.str "some lossy transports partition the fleet (got %d)" !partitioned)
    (!partitioned >= 5);
  let r = Chaos.run_campaign ca in
  check_int "200 scenarios checked" 200 r.Chaos.rp_scenarios;
  check_int "net campaign has zero violations" 0 (List.length r.Chaos.rp_outcomes)

(* --- Tenant-mix scenarios --- *)

let find_tenancy_scenario () =
  let rec go i =
    if i > 200 then Alcotest.fail "no tenant-mix scenario in 200 draws"
    else
      let sc = Scenario.generate ~campaign_seed:21 ~fault_prob:0.5 i in
      if sc.Scenario.sc_tenancy <> None then sc else go (i + 1)
  in
  go 0

let test_tenancy_scenario_repro () =
  let sc = find_tenancy_scenario () in
  let cli = Scenario.to_cli sc in
  check_true "tenant repro uses --tenant" (contains cli "--tenant ");
  check_true "tenant repro pins the autoscaler span" (contains cli "--autoscale ");
  check_true "tenant repro pins the seed"
    (contains cli (Fmt.str "--seed %d" sc.Scenario.sc_seed));
  check_true "tenant repro has no cluster topology flags"
    (not (contains cli "--replicas"));
  match sc.Scenario.sc_tenancy with
  | Some tc ->
    check_int "total_requests covers every stream"
      (Array.length tc.Scenario.tc_tenants * sc.Scenario.sc_requests)
      (Scenario.total_requests sc)
  | None -> assert false

let test_tenancy_scenario_holds () =
  let sc = find_tenancy_scenario () in
  let violations, _ = Chaos.check_scenario sc in
  check_true "tenant-mix scenario passes the invariant suite (incl. replay)"
    (violations = [])

(* --- Shrinker --- *)

(* A known-bad fleet: every replica faults 90% of its launches, with reset
   and straggler clauses riding along, and no failover requeues allowed.
   Retries exhaust, goodput craters; the shrinker must strip the noise down
   to <= 2 fault clauses that still violate (the ISSUE acceptance bound). *)
let known_bad_scenario () =
  {
    (clean_scenario ()) with
    Scenario.sc_requests = 40;
    sc_replicas = 3;
    sc_requeue_budget = 0;
    sc_plans =
      Array.init 3 (fun i ->
          {
            Faults.none with
            Faults.seed = 1000 + i;
            kernel_fault_rate = 0.9;
            reset_rate = 0.05;
            straggler_rate = 0.05;
          });
  }

let test_shrink_known_bad () =
  let floor = 0.9 in
  let violates sc =
    fst (Chaos.check_scenario ~goodput_floor:floor ~check_replay:false sc) <> []
  in
  let sc0 = known_bad_scenario () in
  check_int "known-bad fleet starts at 9 fault clauses" 9
    (Scenario.fault_clause_count sc0);
  check_true "known-bad fleet violates the goodput floor" (violates sc0);
  let minimal, probes = Shrink.shrink ~violates ~budget:300 sc0 in
  check_true "shrinker spent probes" (probes > 0);
  check_true "minimal scenario still violates" (violates minimal);
  check_true
    (Fmt.str "shrinks to <= 2 fault clauses (got %d)"
       (Scenario.fault_clause_count minimal))
    (Scenario.fault_clause_count minimal <= 2)

let test_shrink_strips_net () =
  (* The violation in the known-bad fleet is device-side; an irrelevant
     lossy transport riding along must be shrunk away entirely. *)
  let violates sc =
    fst (Chaos.check_scenario ~goodput_floor:0.9 ~check_replay:false sc) <> []
  in
  let sc0 =
    {
      (known_bad_scenario ()) with
      Scenario.sc_net =
        Some (Net.parse "seed=3,delay=80:40,drop=0.05,dup=0.1,timeout=5000");
    }
  in
  check_true "noisy known-bad fleet violates" (violates sc0);
  let minimal, _ = Shrink.shrink ~violates ~budget:400 sc0 in
  check_true "minimal scenario still violates" (violates minimal);
  check_true "irrelevant net plan stripped" (minimal.Scenario.sc_net = None)

(* --- Campaigns --- *)

let test_clean_campaign () =
  (* The ISSUE acceptance criterion: a fully clean fleet reports zero
     violations across >= 300 scenarios, with the overload-resilience
     dimension in the draw. *)
  let ca = { Chaos.default_campaign with Chaos.ca_runs = 300; ca_fault_prob = 0.0 } in
  let r = Chaos.run_campaign ca in
  check_int "300 scenarios checked" 300 r.Chaos.rp_scenarios;
  check_int "clean campaign has zero violations" 0 (List.length r.Chaos.rp_outcomes);
  check_float "zero per kiloscenario" 0.0 (Chaos.violations_per_kiloscenario r);
  (* Scenarios regenerate from (seed, index): confirm the campaign actually
     exercised resilience-armed fleets, not just the legacy path. *)
  let armed = ref 0 in
  for i = 0 to 299 do
    let sc = Scenario.generate ~campaign_seed:ca.Chaos.ca_seed ~fault_prob:0.0 i in
    if Resilience.active sc.Scenario.sc_resilience then incr armed
  done;
  check_true
    (Fmt.str "campaign drew resilience-armed scenarios (got %d)" !armed)
    (!armed >= 30)

let test_faulty_campaign_holds () =
  (* The serving stack is expected to survive injected faults: recovery
     paths degrade goodput but must never break accounting invariants. *)
  let ca =
    { Chaos.default_campaign with Chaos.ca_seed = 5; ca_runs = 40; ca_fault_prob = 0.7 }
  in
  let r = Chaos.run_campaign ca in
  check_int "faulty campaign has zero violations" 0 (List.length r.Chaos.rp_outcomes)

let test_corruption_campaign_holds () =
  (* ISSUE acceptance: campaigns whose scenarios arm silent corruption
     (probabilistic and flaky devices) and sampled auditing must hold every
     invariant — audit_shield and quarantine_flow included. *)
  let ca =
    { Chaos.default_campaign with Chaos.ca_seed = 21; ca_runs = 40; ca_fault_prob = 1.0 }
  in
  let armed = ref 0 and audited = ref 0 and flaky = ref 0 in
  for i = 0 to ca.Chaos.ca_runs - 1 do
    let sc =
      Scenario.generate ~campaign_seed:ca.Chaos.ca_seed
        ~fault_prob:ca.Chaos.ca_fault_prob i
    in
    if Array.exists Faults.corrupts sc.Scenario.sc_plans then begin
      incr armed;
      if Array.exists (fun p -> p.Faults.flaky_after <> None) sc.Scenario.sc_plans then
        incr flaky;
      if sc.Scenario.sc_audit > 0.0 then begin
        incr audited;
        check_true "armed scenario repro carries --audit"
          (contains (Scenario.to_cli sc) "--audit")
      end
    end
  done;
  check_true (Fmt.str "campaign draws corrupting fleets (got %d)" !armed) (!armed >= 5);
  check_true "some corrupting fleets are flaky devices" (!flaky >= 1);
  check_true "some corrupting fleets arm the auditor" (!audited >= 1);
  let r = Chaos.run_campaign ca in
  check_int "corruption campaign has zero violations" 0 (List.length r.Chaos.rp_outcomes)

let test_campaign_determinism () =
  let ca =
    { Chaos.default_campaign with Chaos.ca_seed = 9; ca_runs = 30; ca_fault_prob = 0.6 }
  in
  let a = Json.to_string (Chaos.report_json (Chaos.run_campaign ca)) in
  let b = Json.to_string (Chaos.report_json (Chaos.run_campaign ca)) in
  check_true "same campaign, byte-identical report" (String.equal a b)

let test_campaign_catches_forced_floor () =
  (* Force violations with an absolute goodput floor no faulted fleet can
     meet; each must shrink and emit a full reproducer block. *)
  let ca =
    {
      Chaos.default_campaign with
      Chaos.ca_seed = 11;
      ca_runs = 12;
      ca_fault_prob = 1.0;
      ca_goodput_floor = Some 0.999;
      ca_check_replay = false;
      ca_shrink = true;
    }
  in
  let r = Chaos.run_campaign ca in
  check_true "forced floor produces violations" (r.Chaos.rp_outcomes <> []);
  List.iter
    (fun oc ->
      let minimal_sc, vs = Chaos.minimal oc in
      check_true "minimal outcome still violates" (vs <> []);
      check_true "shrunk no larger than original"
        (Scenario.fault_clause_count minimal_sc
        <= Scenario.fault_clause_count oc.Chaos.oc_scenario);
      match Chaos.repro_lines ca oc with
      | [ header; serve; chaos ] ->
        check_true "repro header names the invariant" (contains header "violates:");
        check_true "repro serve line" (contains serve "acrobatc serve");
        check_true "repro chaos line replays by index"
          (contains chaos
             (Fmt.str "--only %d" oc.Chaos.oc_scenario.Scenario.sc_index))
      | _ -> Alcotest.fail "repro block is three lines")
    r.Chaos.rp_outcomes;
  (* check_one re-derives any campaign scenario from (seed, index) alone. *)
  let oc = List.hd r.Chaos.rp_outcomes in
  (match Chaos.check_one ca oc.Chaos.oc_scenario.Scenario.sc_index with
  | Some oc' ->
    check_true "check_one re-derives the same scenario"
      (oc'.Chaos.oc_scenario = oc.Chaos.oc_scenario)
  | None -> Alcotest.fail "check_one must reproduce the campaign violation")

let test_debug_flag_restored () =
  let was = Event_loop.debug_checks_enabled () in
  Fun.protect
    ~finally:(fun () -> Event_loop.set_debug_checks was)
    (fun () ->
      Event_loop.set_debug_checks false;
      let ca = { Chaos.default_campaign with Chaos.ca_runs = 3; ca_fault_prob = 0.0 } in
      ignore (Chaos.run_campaign ca);
      check_true "campaign restores a disabled debug flag"
        (not (Event_loop.debug_checks_enabled ()));
      Event_loop.set_debug_checks true;
      ignore (Chaos.run_campaign ca);
      check_true "campaign restores an enabled debug flag"
        (Event_loop.debug_checks_enabled ()))

let suite =
  [
    Alcotest.test_case "scenario: generation is deterministic" `Quick
      test_scenario_determinism;
    Alcotest.test_case "scenario: CLI reproducer shape" `Quick test_scenario_to_cli;
    Alcotest.test_case "invariants: clean run passes" `Quick test_invariants_healthy;
    Alcotest.test_case "invariants: conservation oracle fires" `Quick
      test_invariant_conservation;
    Alcotest.test_case "invariants: terminal-once oracle fires" `Quick
      test_invariant_terminal_once;
    Alcotest.test_case "invariants: duplicate-completion oracle fires" `Quick
      test_invariant_dup_completion;
    Alcotest.test_case "invariants: audit-shield oracle fires" `Quick
      test_invariant_audit_shield;
    Alcotest.test_case "invariants: quarantine-flow oracle fires" `Quick
      test_invariant_quarantine_flow;
    Alcotest.test_case "invariants: requeue-budget oracle fires" `Quick
      test_invariant_requeue_budget;
    Alcotest.test_case "invariants: goodput-floor oracle fires" `Quick
      test_invariant_goodput_floor;
    Alcotest.test_case "invariants: tenant oracles fire" `Quick test_invariant_tenants;
    Alcotest.test_case "invariants: retry-amplification oracle fires" `Quick
      test_invariant_retry_amplification;
    Alcotest.test_case "invariants: brownout-dwell oracle fires" `Quick
      test_invariant_brownout_dwell;
    Alcotest.test_case "scenario: tenant-mix CLI reproducer shape" `Quick
      test_tenancy_scenario_repro;
    Alcotest.test_case "scenario: tenant-mix run holds invariants" `Quick
      test_tenancy_scenario_holds;
    Alcotest.test_case "shrink: known-bad plan minimizes to <= 2 clauses" `Quick
      test_shrink_known_bad;
    Alcotest.test_case "shrink: irrelevant net plan stripped" `Quick
      test_shrink_strips_net;
    Alcotest.test_case "scenario: net-armed CLI reproducer shape" `Quick
      test_net_scenario_repro;
    Alcotest.test_case "invariants: net oracles pass healthy, fire on tamper" `Quick
      test_invariant_net_oracles;
    Alcotest.test_case "invariants: partition-blackout oracle fires" `Quick
      test_invariant_net_partition;
    Alcotest.test_case "campaign: lossy transports hold exactly-once in 200" `Quick
      test_net_campaign_holds;
    Alcotest.test_case "campaign: clean fleet, zero violations in 300" `Quick
      test_clean_campaign;
    Alcotest.test_case "campaign: faulty fleet holds invariants" `Quick
      test_faulty_campaign_holds;
    Alcotest.test_case "campaign: corrupting fleet holds invariants" `Quick
      test_corruption_campaign_holds;
    Alcotest.test_case "campaign: byte-identical reports" `Quick
      test_campaign_determinism;
    Alcotest.test_case "campaign: forced floor shrinks and reproduces" `Quick
      test_campaign_catches_forced_floor;
    Alcotest.test_case "campaign: debug flag restored" `Quick test_debug_flag_restored;
  ]
