(** Fallback selected by dune when the [bechamel] library is unavailable:
    the micro suite skips gracefully instead of failing the build (see the
    [select] clause in bench/dune). *)

let run () =
  print_endline "bechamel is not installed; skipping the micro-benchmark suite."
