(** The online inference server simulation.

    Wires the pieces together on one virtual timeline: a {!Traffic} trace
    delivers requests to {!Admission}; whenever the (single, serially
    executed) device is free, the {!Batcher} decides to launch or wait; a
    launched batch runs through a caller-supplied executor — in production
    glue, {!Acrobat_engines.Driver.run_batch} on the compiled model — whose
    simulated latency occupies the device until completion; {!Stats}
    accounts every request's queue wait, compute time and outcome.

    The server is polymorphic in the request payload and knows nothing
    about models or engines: tests drive it with synthetic executors, the
    [Acrobat.serve_model] glue with real compiled programs. Determinism:
    given the same arrival trace and a deterministic executor, two
    simulations produce identical stats (event ties dispatch in scheduling
    order; no wall clock; the only RNG is the fault-tolerance jitter stream,
    seeded from the config and drawn from only on failures).

    {b Fault tolerance.} An executor may report {!Exec_fault} instead of an
    outcome; the server then drives the batch to a resolution in which every
    request either completes or is provably poisonous:

    - {e retry}: transient failures re-execute after exponential backoff
      with seeded jitter, up to [max_retries] attempts;
    - {e bisection}: a batch that keeps failing is split in half and each
      half resolved independently (with a fresh retry budget), isolating a
      deterministic poison request in O(log n) extra launches so only it is
      dropped while the rest of the batch completes;
    - {e circuit breaker}: after [breaker_threshold] consecutive failed
      attempts the server stops launching and sheds arrivals at admission
      until a cooldown passes; the first batch after cooldown is a probe
      whose success closes the breaker (and whose failure re-opens it);
    - {e graceful degradation}: a device OOM halves the effective batch-size
      cap, and sustained queue pressure switches the executor to its
      degraded (e.g. early-exit) variant; both restore as pressure clears. *)

module Profiler = Acrobat_device.Profiler
module Cost_model = Acrobat_device.Cost_model
module Rng = Acrobat_tensor.Rng
module Trace = Acrobat_obs.Trace
module Metrics = Acrobat_obs.Metrics
module Json = Acrobat_obs.Json
module Resilience = Acrobat_resilience.Policy
module Budget = Acrobat_resilience.Budget
module Limiter = Acrobat_resilience.Limiter
module Brownout = Acrobat_resilience.Brownout

(** Knobs of the recovery machinery. The defaults keep every behaviour that
    could alter a fault-free run disabled ([degrade_high_frac = infinity]),
    so a simulation that never sees a fault is bit-identical to one run
    against a server without the fault layer. *)
type tolerance = {
  max_retries : int;  (** Re-executions of a failed batch before bisecting. *)
  backoff_base_us : float;  (** First retry delay. *)
  backoff_mult : float;  (** Delay multiplier per subsequent retry. *)
  jitter_frac : float;  (** Uniform +/- fraction applied to each delay. *)
  breaker_threshold : int;  (** Consecutive failures that open the breaker. *)
  breaker_cooldown_us : float;  (** Open time before the probe launch. *)
  degrade_high_frac : float;
      (** Queue occupancy (fraction of capacity) that enters degraded mode;
          [infinity] disables pressure-triggered degradation. *)
  degrade_low_frac : float;  (** Occupancy below which degradation lifts. *)
  min_max_batch : int;  (** Floor for OOM-driven batch shrinking. *)
  ft_seed : int;  (** Seeds the jitter RNG. *)
}

let default_tolerance =
  {
    max_retries = 2;
    backoff_base_us = 200.0;
    backoff_mult = 2.0;
    jitter_frac = 0.25;
    breaker_threshold = 4;
    breaker_cooldown_us = 20_000.0;
    degrade_high_frac = infinity;
    degrade_low_frac = 0.25;
    min_max_batch = 1;
    ft_seed = 0x5eed;
  }

type config = {
  policy : Batcher.policy;
  queue_capacity : int;
  deadline_us : float option;
      (** Relative per-request deadline; queued requests past it are
          dropped, not executed. *)
  cost : Cost_model.t;  (** Seeds the adaptive latency model. *)
  tolerance : tolerance;
  resilience : Resilience.config;
      (** Overload-control knobs (retry budget, adaptive concurrency,
          brownout); {!Resilience.off} by default, which makes every
          resilience path a no-op. *)
}

let default_config =
  {
    policy = Batcher.Adaptive { max_batch = 16; max_wait_us = 2_000.0 };
    queue_capacity = 256;
    deadline_us = None;
    cost = Cost_model.default;
    tolerance = default_tolerance;
    resilience = Resilience.off;
  }

(** What one successful batch execution reports back. *)
type exec_outcome = {
  ex_latency_us : float;  (** Simulated device busy time for the batch. *)
  ex_profiler : Profiler.t option;  (** Merged into the run's profile. *)
  ex_fingerprints : int64 array option;
      (** Per-request result fingerprints, in batch order (raw
          {!Acrobat_runtime.Fingerprint} words — the serve layer stays
          engine-agnostic). [None] when the executor does not compute
          values; the audit path then falls back to [ex_corrupted]. *)
  ex_corrupted : bool;
      (** Injector ground truth: this attempt's outputs were silently
          corrupted. Only a fault-injecting executor can set it. Feeds the
          delivered-corruption accounting the audit-shield oracle checks;
          detection itself uses fingerprints whenever they are present. *)
}

(** Verdict of one batch execution attempt. *)
type exec_result =
  | Exec_ok of exec_outcome
  | Exec_fault of {
      ef_latency_us : float;  (** Device time the failed attempt burned. *)
      ef_reason : string;
      ef_transient : bool;
          (** A retry may succeed. [false] (a deterministic failure such as
              OOM or a poison request) skips straight to bisection. *)
      ef_oom : bool;  (** Out-of-memory: shrink the batch-size cap. *)
      ef_reset : bool;
          (** A full device reset. The single server treats it like any
              transient fault; the cluster's health monitor weighs
              consecutive resets as a stronger down signal. *)
    }

(** Sampled audit re-execution: the detection arm of the silent-data-
    corruption defense. Each delivered request is, with probability
    [au_rate], re-executed {e unbatched} on a trusted reference engine and
    its fingerprint compared before delivery. A mismatch is detected
    corruption: the reference result is delivered in place of the suspect
    one (the request survives; its latency grows by the re-execution).
    Audits run off the serving device, so a sampled request's delivery is
    delayed but the batch pipeline never stalls. *)
type 'a auditor = {
  au_rate : float;  (** Per-request sampling probability in [0, 1]. *)
  au_seed : int;
      (** Seeds the sampling RNG — independent of every other stream, so
          arming the auditor perturbs no legacy RNG draw. *)
  au_reference : int -> 'a -> int64 * float;
      (** [au_reference id payload] returns the reference fingerprint and
          the unbatched re-execution latency (us) charged to the audited
          request. *)
}

(** One request's delivery verdict after the (optional) sampled audit. *)
type audit_delivery = {
  ad_extra_us : float;  (** Audit latency added before this delivery. *)
  ad_audited : bool;
  ad_clean : bool;  (** Audit verdict; [true] when unaudited. *)
}

let no_audit = { ad_extra_us = 0.0; ad_audited = false; ad_clean = true }

(** Audit one request of a successfully executed batch. [forced] bypasses
    sampling (quarantine probes must be audited to prove cleanliness).
    Shared by the single server, the cluster replica and the tenancy
    dispatcher so all three detect and count identically. With no auditor
    armed this draws nothing and returns {!no_audit}. *)
let audit_request (auditor : 'a auditor option) ~audit_rng ~(stats : Stats.t) ~forced
    ~(outcome : exec_outcome) ~index (r : 'a Admission.request) : audit_delivery =
  match auditor with
  | Some a when forced || (a.au_rate > 0.0 && Rng.float audit_rng < a.au_rate) ->
    stats.Stats.audits <- stats.Stats.audits + 1;
    let ref_fp, ref_latency_us = a.au_reference r.Admission.rq_id r.Admission.rq_payload in
    let clean =
      match outcome.ex_fingerprints with
      | Some fps -> Int64.equal fps.(index) ref_fp
      | None -> not outcome.ex_corrupted
    in
    if not clean then stats.Stats.audit_mismatches <- stats.Stats.audit_mismatches + 1;
    { ad_extra_us = Float.max 0.0 ref_latency_us; ad_audited = true; ad_clean = clean }
  | _ -> no_audit

(** Ground-truth delivered-corruption accounting for one request: corrupted
    outputs reached a client iff the batch attempt was corrupted and the
    audit did not intercept this particular request. *)
let note_delivery (stats : Stats.t) ~(outcome : exec_outcome) (d : audit_delivery) =
  if outcome.ex_corrupted && not (d.ad_audited && not d.ad_clean) then
    stats.Stats.corrupted_delivered <- stats.Stats.corrupted_delivered + 1

type breaker_state =
  | Closed
  | Open of { until_us : float }  (** Shedding; probe allowed from [until_us]. *)
  | Half_open  (** Probe in flight; its verdict closes or re-opens. *)

type 'a state = {
  config : config;
  loop : Event_loop.t;
  queue : 'a Admission.t;
  batcher : Batcher.t;
  stats : Stats.t;
  execute : degraded:bool -> 'a list -> exec_result;
  auditor : 'a auditor option;
  audit_rng : Rng.t;  (** Audit sampling; drawn from only when an auditor is armed. *)
  mutable device_busy : bool;
  ft_rng : Rng.t;  (** Backoff jitter; drawn from only on retries. *)
  mutable consecutive_failures : int;
  mutable breaker : breaker_state;
  policy_max_batch : int;  (** The policy's own cap (1 for batch1). *)
  mutable cur_max_batch : int;  (** Effective cap; shrinks under OOM. *)
  mutable degraded : bool;
  tracer : Trace.t;  (** Lifecycle span sink; {!Trace.null} when off. *)
  (* Overload-resilience mechanisms; all [None] (no-ops) unless armed via
     [config.resilience]. *)
  budget : Budget.t option;
  limiter : Limiter.t option;
  brownout : Brownout.t option;
  limit_gauge : Metrics.gauge;  (** Limiter trajectory export. *)
}

(* Trace track convention: tid 0 is the device/batch track of each server's
   pid; request [i] rides on tid [i + 1]. *)
let req_tid id = id + 1

(* Request-terminal instant: every admitted id ends in exactly one of
   done / expired / poisoned (shed ids terminate at admission). *)
let trace_terminal (st : 'a state) ~name ~ts_us (r : _ Admission.request) =
  Trace.instant st.tracer ~name ~cat:"request" ~ts_us ~tid:(req_tid r.Admission.rq_id)
    ~args:[ "id", Json.Int r.Admission.rq_id ]

let policy_max_batch = function
  | Batcher.Batch1 -> 1
  | Batcher.Fixed { max_batch; _ } | Batcher.Adaptive { max_batch; _ } -> max_batch

(* --- Breaker and degradation transitions --- *)

let open_breaker (st : 'a state) ~wake =
  let until_us = Event_loop.now st.loop +. st.config.tolerance.breaker_cooldown_us in
  st.breaker <- Open { until_us };
  st.stats.Stats.breaker_opens <- st.stats.Stats.breaker_opens + 1;
  Trace.instant st.tracer ~name:"breaker_open" ~cat:"fault" ~tid:0
    ~ts_us:(Event_loop.now st.loop)
    ~args:[ "until_us", Json.Float until_us ];
  (* Self-wake at cooldown expiry: with arrivals shed while open, no other
     event may exist to trigger the probe. *)
  Event_loop.schedule st.loop ~at:until_us wake

let note_failure (st : 'a state) ~wake =
  st.consecutive_failures <- st.consecutive_failures + 1;
  match st.breaker with
  | Half_open -> open_breaker st ~wake (* failed probe: back to shedding *)
  | Closed when st.consecutive_failures >= st.config.tolerance.breaker_threshold ->
    open_breaker st ~wake
  | Closed | Open _ -> ()

(* OOM is deterministic for a given batch size: retrying the same size would
   fail forever, so halve the cap before the batch is re-resolved. *)
let shrink_batches (st : 'a state) =
  st.degraded <- true;
  st.cur_max_batch <- max st.config.tolerance.min_max_batch (st.cur_max_batch / 2)

let note_success (st : 'a state) =
  st.consecutive_failures <- 0;
  (match st.breaker with Closed -> () | Open _ | Half_open -> st.breaker <- Closed);
  (* Pressure-relief: once the queue is quiet again, double the batch cap
     back toward full strength; degraded mode lifts when fully restored. *)
  if st.degraded then begin
    let tol = st.config.tolerance in
    let occupancy =
      float_of_int (Admission.length st.queue) /. float_of_int st.config.queue_capacity
    in
    if occupancy <= tol.degrade_low_frac then begin
      if st.cur_max_batch < st.policy_max_batch then
        st.cur_max_batch <- min st.policy_max_batch (st.cur_max_batch * 2);
      if st.cur_max_batch >= st.policy_max_batch then st.degraded <- false
    end
  end

(* Feed the queue-delay signal (age of the oldest queued request) into the
   limiter's AIMD loop and the brownout controller. Called at each batch
   launch: both mechanisms key on the delay the queue actually produced.
   A no-op unless the resilience layer armed one of them. *)
let observe_pressure (st : 'a state) ~now_us =
  match st.limiter, st.brownout with
  | None, None -> ()
  | _ ->
    let delay_us =
      match Admission.oldest_arrival_us st.queue with
      | Some t0 -> now_us -. t0
      | None -> 0.0
    in
    Option.iter
      (fun lim ->
        Limiter.observe lim ~delay_us;
        Metrics.set st.limit_gauge (Limiter.limit lim))
      st.limiter;
    Option.iter
      (fun b ->
        match Brownout.observe b ~now_us ~delay_us with
        | Brownout.Stay -> ()
        | Brownout.Engage ->
          st.stats.Stats.brownouts <- st.stats.Stats.brownouts + 1;
          Trace.instant st.tracer ~name:"brownout_degrade" ~cat:"resilience" ~tid:0
            ~ts_us:now_us
            ~args:[ "delay_us", Json.Float delay_us ]
        | Brownout.Restore ->
          st.stats.Stats.brownout_restores <- st.stats.Stats.brownout_restores + 1;
          Trace.instant st.tracer ~name:"brownout_restore" ~cat:"resilience" ~tid:0
            ~ts_us:now_us
            ~args:[ "delay_us", Json.Float delay_us ])
      st.brownout

let browned_out (st : 'a state) =
  match st.brownout with Some b -> Brownout.engaged b | None -> false

(* --- The launch / recovery state machine --- *)

(* One pass of the launch decision; called whenever the device frees up, a
   request arrives, a batcher timeout fires, or the breaker cooldown ends.
   Idempotent: spurious wakes fall through. *)
let rec maybe_launch (st : 'a state) =
  if not st.device_busy then begin
    let now_us = Event_loop.now st.loop in
    match st.breaker with
    | Half_open -> () (* unreachable while device_busy is accurate; be safe *)
    | Open { until_us } ->
      if now_us >= until_us && not (Admission.is_empty st.queue) then begin
        (* Probe: a single request tests whether the device recovered. *)
        st.breaker <- Half_open;
        Trace.instant st.tracer ~name:"breaker_probe" ~cat:"fault" ~tid:0 ~ts_us:now_us;
        flush st ~now_us ~limit:1
      end
    | Closed ->
      if not (Admission.is_empty st.queue) then begin
        match
          Batcher.decide st.batcher ~now_us ~queue_len:(Admission.length st.queue)
            ~oldest_arrival_us:(Option.get (Admission.oldest_arrival_us st.queue))
        with
        | Batcher.Wait_until at when at > now_us ->
          Event_loop.schedule st.loop ~at (fun () -> maybe_launch st)
        | Batcher.Wait_until _ ->
          (* A wait that is already due would re-fire at this same virtual
             instant forever; treat it as a flush of whatever is queued. *)
          flush st ~now_us ~limit:(min (Admission.length st.queue) st.cur_max_batch)
        | Batcher.Flush limit -> flush st ~now_us ~limit:(min limit st.cur_max_batch)
      end
  end

and flush (st : 'a state) ~now_us ~limit =
  observe_pressure st ~now_us;
  let batch, dropped = Admission.take_with_expired st.queue ~now_us ~limit in
  List.iter (trace_terminal st ~name:"expired" ~ts_us:now_us) dropped;
  match batch with
  | [] ->
    (* Everything popped had expired; the queue may still hold work. *)
    maybe_launch st
  | batch ->
    st.device_busy <- true;
    resolve st batch ~k:(fun () ->
        st.device_busy <- false;
        maybe_launch st)

(* Drive [batch] to a resolution — every request completes or is dropped as
   poison — then run [k] at the virtual time the last attempt finished. The
   device stays busy throughout (retries, backoff waits and bisection
   sub-batches execute serially, preserving determinism). *)
and resolve (st : 'a state) (batch : 'a Admission.request list) ~(k : unit -> unit) =
  let tol = st.config.tolerance in
  let wake () = maybe_launch st in
  (* Extract payloads once per resolution, not per retry attempt: the
     batch is fixed for the whole retry/backoff cycle, so re-mapping it
     on every attempt only allocated garbage on the failure path. *)
  let payloads = List.map (fun (r : _ Admission.request) -> r.Admission.rq_payload) batch in
  let rec attempt ~retries_left ~backoff_us () =
    let now_us = Event_loop.now st.loop in
    let degraded = st.degraded || browned_out st in
    (* The executor builds a fresh device whose profiler clock starts at
       zero; anchor its trace spans at this attempt's launch time. *)
    Trace.set_context st.tracer ~tid:0 ~base_us:now_us;
    match st.execute ~degraded payloads with
    | Exec_ok outcome ->
      let size = List.length batch in
      let done_us = now_us +. Float.max 0.0 outcome.ex_latency_us in
      Batcher.observe_batch st.batcher ~size ~latency_us:outcome.ex_latency_us;
      Stats.note_batch st.stats ~size ~profiler:outcome.ex_profiler;
      if degraded then
        st.stats.Stats.degraded_batches <- st.stats.Stats.degraded_batches + 1;
      if outcome.ex_corrupted then
        st.stats.Stats.corrupted_batches <- st.stats.Stats.corrupted_batches + 1;
      Trace.complete st.tracer ~name:"batch" ~cat:"serve" ~tid:0 ~ts_us:now_us
        ~dur_us:outcome.ex_latency_us
        ~args:[ "size", Json.Int size; "degraded", Json.Bool degraded ];
      List.iteri
        (fun i (r : _ Admission.request) ->
          (* Sampled audit before delivery: a mismatch swaps in the
             reference result (the request is saved), at the cost of the
             unbatched re-execution's latency. With no auditor armed this
             is draw-free and delivery is exactly the legacy path. *)
          let d =
            audit_request st.auditor ~audit_rng:st.audit_rng ~stats:st.stats
              ~forced:false ~outcome ~index:i r
          in
          note_delivery st.stats ~outcome d;
          let r_done_us = done_us +. d.ad_extra_us in
          if d.ad_audited then
            Trace.instant st.tracer
              ~name:(if d.ad_clean then "audit_ok" else "audit_mismatch")
              ~cat:"integrity" ~tid:(req_tid r.Admission.rq_id) ~ts_us:done_us
              ~args:[ "id", Json.Int r.Admission.rq_id ];
          Stats.record_fields st.stats ~id:r.Admission.rq_id
            ~arrival_us:r.Admission.rq_arrival_us ~start_us:now_us ~done_us:r_done_us
            ~batch_size:size;
          Trace.complete st.tracer ~name:"queue" ~cat:"request"
            ~tid:(req_tid r.Admission.rq_id) ~ts_us:r.Admission.rq_arrival_us
            ~dur_us:(now_us -. r.Admission.rq_arrival_us);
          trace_terminal st ~name:"done" ~ts_us:r_done_us r)
        batch;
      Event_loop.schedule st.loop ~at:done_us (fun () ->
          note_success st;
          k ())
    | Exec_fault f ->
      st.stats.Stats.fault_batches <- st.stats.Stats.fault_batches + 1;
      note_failure st ~wake;
      if f.ef_oom then shrink_batches st;
      let freed_us = now_us +. Float.max 0.0 f.ef_latency_us in
      Trace.complete st.tracer ~name:"batch_fault" ~cat:"fault" ~tid:0 ~ts_us:now_us
        ~dur_us:f.ef_latency_us
        ~args:
          [
            "reason", Json.Str f.ef_reason;
            "transient", Json.Bool f.ef_transient;
            "size", Json.Int (List.length batch);
          ];
      if f.ef_transient && retries_left > 0 then begin
        let size = List.length batch in
        (* The retry-budget check precedes the jitter draw: with no budget
           configured the RNG stream is untouched relative to the
           budget-less server, and a denied retry draws nothing. *)
        match st.budget with
        | Some b when not (Budget.try_spend b size) ->
          (* Budget dry: retrying would amplify load the device already
             cannot absorb. Shed the batch instead of bisecting — bisection
             is itself re-offered load. *)
          st.stats.Stats.retry_shed <- st.stats.Stats.retry_shed + size;
          List.iter (trace_terminal st ~name:"retry_budget" ~ts_us:freed_us) batch;
          Event_loop.schedule st.loop ~at:freed_us k
        | budget ->
          if Option.is_some budget then
            st.stats.Stats.retried_requests <- st.stats.Stats.retried_requests + size;
          st.stats.Stats.retries <- st.stats.Stats.retries + 1;
          let jitter = 1.0 +. (tol.jitter_frac *. ((2.0 *. Rng.float st.ft_rng) -. 1.0)) in
          let at = freed_us +. Float.max 0.0 (backoff_us *. jitter) in
          Trace.instant st.tracer ~name:"retry" ~cat:"fault" ~tid:0 ~ts_us:at
            ~args:[ "attempt", Json.Int (tol.max_retries - retries_left + 1) ];
          Event_loop.schedule st.loop ~at
            (attempt ~retries_left:(retries_left - 1)
               ~backoff_us:(backoff_us *. tol.backoff_mult))
      end
      else
        (* Retries exhausted (or the failure is deterministic): isolate. *)
        Event_loop.schedule st.loop ~at:freed_us (fun () -> bisect st batch ~k)
  in
  attempt ~retries_left:tol.max_retries ~backoff_us:tol.backoff_base_us ()

(* Binary fault isolation. A single survivor of repeated failure is the
   poison: drop it alone. Larger batches split in half; each half gets a
   fresh retry budget so transient noise during isolation does not condemn
   innocent requests. *)
and bisect (st : 'a state) (batch : 'a Admission.request list) ~k =
  match batch with
  | [] -> k ()
  | [ r ] ->
    st.stats.Stats.poisoned <- st.stats.Stats.poisoned + 1;
    trace_terminal st ~name:"poisoned" ~ts_us:(Event_loop.now st.loop) r;
    k ()
  | _ ->
    st.stats.Stats.bisections <- st.stats.Stats.bisections + 1;
    Trace.instant st.tracer ~name:"bisect" ~cat:"fault" ~tid:0
      ~ts_us:(Event_loop.now st.loop)
      ~args:[ "size", Json.Int (List.length batch) ];
    let half = List.length batch / 2 in
    let left = List.filteri (fun i _ -> i < half) batch in
    let right = List.filteri (fun i _ -> i >= half) batch in
    resolve st left ~k:(fun () -> resolve st right ~k)

let on_arrival (st : 'a state) (r : 'a Admission.request) =
  let now_us = Event_loop.now st.loop in
  Batcher.observe_arrival st.batcher ~now_us;
  Trace.instant st.tracer ~name:"admit" ~cat:"request" ~tid:(req_tid r.Admission.rq_id)
    ~ts_us:now_us
    ~args:[ "id", Json.Int r.Admission.rq_id ];
  match st.breaker with
  | Open { until_us } when now_us < until_us ->
    (* Breaker open: shed at the door without queueing — launching is
       pointless while the device is presumed down. *)
    st.stats.Stats.breaker_shed <- st.stats.Stats.breaker_shed + 1;
    trace_terminal st ~name:"shed_breaker" ~ts_us:now_us r
  | Closed | Half_open | Open _ -> (
    match st.limiter with
    | Some lim when not (Limiter.admits lim ~queued:(Admission.length st.queue)) ->
      (* The adaptive concurrency limiter gates ahead of the bounded queue:
         admitting past the limit would only grow the delay it is trying to
         control. *)
      st.stats.Stats.limit_shed <- st.stats.Stats.limit_shed + 1;
      trace_terminal st ~name:"shed_limit" ~ts_us:now_us r
    | _ ->
    let admitted, swept = Admission.offer_swept st.queue ~now_us r in
    List.iter (trace_terminal st ~name:"expired" ~ts_us:now_us) swept;
    if not admitted then trace_terminal st ~name:"shed" ~ts_us:now_us r
    else begin
      Option.iter Budget.deposit st.budget;
      let tol = st.config.tolerance in
      if
        (not st.degraded)
        && float_of_int (Admission.length st.queue)
           >= tol.degrade_high_frac *. float_of_int st.config.queue_capacity
      then st.degraded <- true;
      (* Defer the launch check to a same-time event rather than deciding
         inline: events tie-break in scheduling order, so every arrival at
         this virtual instant is queued before the check runs and
         simultaneous requests coalesce into one batch instead of the first
         one launching alone. *)
      Event_loop.schedule st.loop ~at:now_us (fun () -> maybe_launch st)
    end)

(** Run the simulation to completion.

    [arrivals] gives each request's arrival time (monotone, from
    {!Traffic.arrivals}); [payload i] builds request [i]'s inputs;
    [execute] runs one assembled batch — under the server's current
    [degraded] flag — and reports its verdict. Returns the populated
    {!Stats.t} (summarize with {!Stats.summarize}).

    [tracer] receives the request-lifecycle and batch spans (and, when the
    executor threads it into its device, kernel-level spans); [metrics]
    receives periodic virtual-clock snapshots every [snapshot_every_us]
    plus the final counters. Both default to disabled sinks with no effect
    on the simulation or its output. *)
let simulate ?(tracer = Trace.null) ?(metrics = Metrics.null)
    ?(snapshot_every_us = 10_000.0) ?auditor (config : config)
    ~(arrivals : float array) ~(payload : int -> 'a)
    ~(execute : degraded:bool -> 'a list -> exec_result) : Stats.t =
  let loop = Event_loop.create (Clock.create ()) in
  let pmax = policy_max_batch config.policy in
  let rs = config.resilience in
  let st =
    {
      config;
      loop;
      queue =
        Admission.create
          ~eager_sweep:(Resilience.active rs)
          ~capacity:config.queue_capacity ();
      batcher = Batcher.create ~cost:config.cost config.policy;
      stats = Stats.create ();
      execute;
      auditor;
      audit_rng = Rng.create (match auditor with Some a -> a.au_seed | None -> 0);
      device_busy = false;
      ft_rng = Rng.create config.tolerance.ft_seed;
      consecutive_failures = 0;
      breaker = Closed;
      policy_max_batch = pmax;
      cur_max_batch = pmax;
      degraded = false;
      tracer;
      budget = Option.map (fun frac -> Budget.create ~frac) rs.Resilience.rs_retry_budget;
      limiter =
        Option.map
          (fun target_us -> Limiter.create ~target_us ())
          rs.Resilience.rs_target_delay_us;
      brownout = Option.map Brownout.create rs.Resilience.rs_brownout;
      limit_gauge =
        (* Register only when the limiter is armed: a legacy run's metrics
           export must not grow a new instrument. *)
        (if rs.Resilience.rs_target_delay_us <> None then
           Metrics.gauge metrics "resilience.limit"
         else Metrics.gauge Metrics.null "resilience.limit");
    }
  in
  if Trace.enabled tracer then begin
    Trace.name_process tracer ~pid:0 ~name:"server";
    Trace.name_thread tracer ~pid:0 ~tid:0 ~name:"device"
  end;
  Array.iteri
    (fun i at ->
      let r =
        {
          Admission.rq_id = i;
          rq_payload = payload i;
          rq_arrival_us = at;
          rq_deadline_us = Option.map (fun d -> at +. d) config.deadline_us;
        }
      in
      Event_loop.schedule loop ~at (fun () -> on_arrival st r))
    arrivals;
  (* Periodic metric snapshots ride the event loop itself; the chain stops
     rescheduling once it is the only pending work, so the loop drains. *)
  if Metrics.enabled metrics then begin
    let rec snap () =
      Stats.to_metrics st.stats metrics;
      Metrics.snapshot metrics ~ts_us:(Event_loop.now loop);
      if Event_loop.pending loop > 0 then
        Event_loop.schedule_after loop ~delay:snapshot_every_us snap
    in
    Event_loop.schedule_after loop ~delay:snapshot_every_us snap
  end;
  Event_loop.run loop;
  st.stats.Stats.shed <- Admission.shed_count st.queue;
  st.stats.Stats.expired <- Admission.expired_count st.queue;
  st.stats.Stats.end_us <- Event_loop.now loop;
  st.stats.Stats.clamped_schedules <- Event_loop.clamped_count loop;
  st.stats.Stats.loop_events <- Event_loop.dispatched loop;
  Stats.to_metrics st.stats metrics;
  st.stats

(** Lift a plain (infallible) executor into the fault-aware signature;
    convenience for tests and fault-free callers. *)
let infallible (f : 'a list -> exec_outcome) : degraded:bool -> 'a list -> exec_result =
 fun ~degraded:_ batch -> Exec_ok (f batch)
