(** 1-context-sensitive taint analysis for parameter reuse and hoisting
    (paper §5.1, §B.1, §C.1).

    For every tensor-operator argument, in every calling context, the
    analysis decides:

    - is it a *statically-known single tensor* (a model parameter or a
      constant)? Then the generated batched kernel treats it as **shared**:
      one copy reused by the whole batch, no memory gather (§5.1);
    - is it *hoistable* — derived only from parameters, constants and raw
      input tensors, never from recursion-carried state? Then the operator
      can be scheduled at a static depth, effectively hoisted out of the
      recursion (§B.1).

    Context sensitivity keys the analysis on the entry call site (collapsing
    recursive cycles), which is what lets a function reused with different
    parameters — the forward and backward RNNs of a BiRNN — keep precise
    per-context sharing. Specializing code per context during lowering is the
    paper's code-duplication transformation (§C.1). *)

open Acrobat_ir
open Acrobat_tensor

type single = Sparam of string | Sconst of { shape : Shape.t; value : float }

let single_equal a b =
  match a, b with
  | Sparam x, Sparam y -> x = y
  | Sconst a, Sconst b -> Shape.equal a.shape b.shape && a.value = b.value
  | (Sparam _ | Sconst _), _ -> false

(** Static scheduling depth of a tensor value (§B.1). Parameters, constants
    and raw inputs are [Dstatic (-1)]; an operator's output is one more than
    the max of its arguments when that is a program-invariant constant, and
    [Ddyn] otherwise (recursion-carried values widen to [Ddyn] at the
    fixpoint). A [Dstatic] operator can be hoisted: it gets a compile-time
    depth instead of consuming the runtime depth counter. *)
type sdepth = Dstatic of int | Ddyn

let join_sdepth a b =
  match a, b with
  | Dstatic x, Dstatic y when x = y -> Dstatic x
  | _ -> Ddyn

type aval =
  | Abot  (** No information yet (fixpoint bottom). *)
  | Atensor of { single : single option; sdepth : sdepth }
  | Ascalar
  | Alist of aval
  | Atree of aval
  | Atup of aval list
  | Aclos of clos
  | Aglobal of string
  | Atop

and clos = {
  cparams : string list;
  cbody : Ast.expr;
  cenv : (string * aval) list;
  cctx : string;
  cdef : string;  (** The def the lambda appears in (for SCC checks). *)
}

let tensor_of_param p = Atensor { single = Some (Sparam p); sdepth = Dstatic (-1) }

let tensor_const ~shape ~value =
  Atensor { single = Some (Sconst { shape; value }); sdepth = Dstatic (-1) }

let tensor_input = Atensor { single = None; sdepth = Dstatic (-1) }
let tensor_derived ~sdepth = Atensor { single = None; sdepth }

let sdepth_of = function
  | Atensor { sdepth; _ } -> sdepth
  | Ascalar | Abot -> Dstatic (-1)
  | Alist _ | Atree _ | Atup _ | Aclos _ | Aglobal _ | Atop -> Ddyn

(** The static depth an operator output would get from these arguments:
    one past the deepest argument, or [Ddyn] if any argument is dynamic. *)
let out_sdepth avals =
  List.fold_left
    (fun acc v ->
      match acc, sdepth_of v with
      | Dstatic a, Dstatic b -> Dstatic (max a b)
      | _ -> Ddyn)
    (Dstatic (-1)) avals
  |> function
  | Dstatic d -> Dstatic (d + 1)
  | Ddyn -> Ddyn

let rec join a b =
  match a, b with
  | Abot, x | x, Abot -> x
  | Atensor x, Atensor y ->
    let single =
      match x.single, y.single with
      | Some s1, Some s2 when single_equal s1 s2 -> Some s1
      | _ -> None
    in
    Atensor { single; sdepth = join_sdepth x.sdepth y.sdepth }
  | Ascalar, Ascalar -> Ascalar
  | Alist x, Alist y -> Alist (join x y)
  | Atree x, Atree y -> Atree (join x y)
  | Atup xs, Atup ys when List.length xs = List.length ys -> Atup (List.map2 join xs ys)
  | Aclos c1, Aclos c2 when c1.cbody == c2.cbody && c1.cctx = c2.cctx -> a
  | Aglobal g1, Aglobal g2 when g1 = g2 -> a
  | _ -> Atop

let rec equal_aval a b =
  match a, b with
  | Abot, Abot | Ascalar, Ascalar | Atop, Atop -> true
  | Atensor x, Atensor y ->
    x.sdepth = y.sdepth
    && (match x.single, y.single with
       | None, None -> true
       | Some s1, Some s2 -> single_equal s1 s2
       | _ -> false)
  | Alist x, Alist y | Atree x, Atree y -> equal_aval x y
  | Atup xs, Atup ys -> List.length xs = List.length ys && List.for_all2 equal_aval xs ys
  | Aclos c1, Aclos c2 -> c1.cbody == c2.cbody && c1.cctx = c2.cctx
  | Aglobal g1, Aglobal g2 -> g1 = g2
  | _ -> false

(** Initial abstract value for an input (per-instance) parameter of the
    given type: tensors are fresh per-instance values. *)
let rec aval_of_input_ty : Ty.t -> aval = function
  | Ty.Tensor _ -> tensor_input
  | Ty.Int | Ty.Bool | Ty.Float -> Ascalar
  | Ty.List t -> Alist (aval_of_input_ty t)
  | Ty.Tree t -> Atree (aval_of_input_ty t)
  | Ty.Tup ts -> Atup (List.map aval_of_input_ty ts)
  | Ty.Fn _ -> Atop

(** Abstract value for a weight parameter: a Tensor is exactly that
    parameter; containers of tensors hold fixed-but-unidentified tensors. *)
let rec aval_of_weight_ty name : Ty.t -> aval = function
  | Ty.Tensor _ -> tensor_of_param name
  | Ty.Int | Ty.Bool | Ty.Float -> Ascalar
  | Ty.List t -> Alist (aval_of_weight_ty name t)
  | Ty.Tree t -> Atree (aval_of_weight_ty name t)
  | Ty.Tup ts -> Atup (List.map (aval_of_weight_ty name) ts)
  | Ty.Fn _ -> Atop

type summary = { mutable args : aval list; mutable result : aval }

type t = {
  sites : Sites.t;
  summaries : (string * string, summary) Hashtbl.t;  (** (def, ctx) -> summary *)
  prim_args : (int * string, aval list) Hashtbl.t;
      (** (prim site, ctx) -> joined argument avals *)
  callee_ctx : (int * string, string) Hashtbl.t;
      (** (call site, caller ctx) -> callee ctx *)
  mutable dirty : bool;
  cg : Call_graph.t;
  program : Ast.program;
  context_sensitive : bool;
}

let root_ctx = "root"

let find_summary t key =
  match Hashtbl.find_opt t.summaries key with
  | Some s -> s
  | None ->
    let s = { args = []; result = Abot } in
    Hashtbl.replace t.summaries key s;
    s

let record_prim t site ctx avals =
  let key = site, ctx in
  let joined =
    match Hashtbl.find_opt t.prim_args key with
    | None -> avals
    | Some old -> List.map2 join old avals
  in
  (match Hashtbl.find_opt t.prim_args key with
  | Some old when List.for_all2 equal_aval old joined -> ()
  | _ ->
    t.dirty <- true;
    Hashtbl.replace t.prim_args key joined)

(* Abstract evaluation of an expression under an environment. [defname] and
   [ctx] identify the specialization being analyzed. *)
let rec eval t defname ctx env (e : Ast.expr) : aval =
  match e with
  | Ast.Var x -> (try List.assoc x env with Not_found -> Atop)
  | Ast.Global g -> Aglobal g
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _ -> Ascalar
  | Ast.Let (x, rhs, body) ->
    let v = eval t defname ctx env rhs in
    eval t defname ctx ((x, v) :: env) body
  | Ast.If (c, a, b) ->
    ignore (eval t defname ctx env c);
    join (eval t defname ctx env a) (eval t defname ctx env b)
  | Ast.Prim (op, args) -> begin
    let avals = List.map (eval t defname ctx env) args in
    record_prim t (Sites.id t.sites e) ctx avals;
    match op with
    | Op.Constant { shape; value } -> tensor_const ~shape ~value
    | Op.Random _ -> tensor_derived ~sdepth:(Dstatic 0)
    | _ -> tensor_derived ~sdepth:(out_sdepth avals)
  end
  | Ast.Call (callee, args) -> begin
    let fv = eval t defname ctx env callee in
    let avals = List.map (eval t defname ctx env) args in
    match fv with
    | Aglobal g -> apply_global t defname ctx (Sites.id t.sites e) g avals
    | Aclos c -> apply_clos t c avals
    | _ -> Atop
  end
  | Ast.Fn (params, body) ->
    Aclos { cparams = List.map fst params; cbody = body; cenv = env; cctx = ctx; cdef = defname }
  | Ast.Match (scrut, cases) -> begin
    let sv = eval t defname ctx env scrut in
    match sv with
    | Abot -> Abot
    | _ ->
      List.fold_left
        (fun acc (pat, body) ->
          let env' = bind_pattern env pat sv in
          join acc (eval t defname ctx env' body))
        Abot cases
  end
  | Ast.Nil -> Alist Abot
  | Ast.Cons (h, tl) -> begin
    let hv = eval t defname ctx env h in
    let tv = eval t defname ctx env tl in
    match tv with
    | Alist ev -> Alist (join hv ev)
    | Abot -> Alist hv
    | _ -> Atop
  end
  | Ast.Leaf v -> Atree (eval t defname ctx env v)
  | Ast.Node (l, r) -> begin
    let lv = eval t defname ctx env l in
    let rv = eval t defname ctx env r in
    match join lv rv with
    | Atree _ as tv -> tv
    | Abot -> Abot
    | _ -> Atop
  end
  | Ast.Tuple es -> Atup (List.map (eval t defname ctx env) es)
  | Ast.Proj (e0, k) -> begin
    match eval t defname ctx env e0 with
    | Atup vs when k < List.length vs -> List.nth vs k
    | Abot -> Abot
    | _ -> Atop
  end
  | Ast.Binop (_, a, b) ->
    ignore (eval t defname ctx env a);
    ignore (eval t defname ctx env b);
    Ascalar
  | Ast.Not a ->
    ignore (eval t defname ctx env a);
    Ascalar
  | Ast.Concurrent es -> Atup (List.map (eval t defname ctx env) es)
  | Ast.Map (f, xs) -> begin
    let fv = eval t defname ctx env f in
    let xsv = eval t defname ctx env xs in
    let elem = match xsv with Alist ev -> ev | Abot -> Abot | _ -> Atop in
    if elem = Abot then Abot
    else
      let out =
        match fv with
        | Aclos c -> apply_clos t c [ elem ]
        | Aglobal g -> apply_global t defname ctx (Sites.id t.sites e) g [ elem ]
        | _ -> Atop
      in
      Alist out
  end
  | Ast.Scalar e0 ->
    ignore (eval t defname ctx env e0);
    Ascalar
  | Ast.Choice e0 | Ast.Coin e0 ->
    ignore (eval t defname ctx env e0);
    Ascalar

and bind_pattern env pat sv =
  match pat, sv with
  | Ast.Pwild, _ | Ast.Pnil, _ -> env
  | Ast.Pcons (h, tl), Alist ev -> (h, ev) :: (tl, sv) :: env
  | Ast.Pleaf v, Atree ev -> (v, ev) :: env
  | Ast.Pnode (l, r), Atree _ -> (l, sv) :: (r, sv) :: env
  | Ast.Pcons (h, tl), _ -> (h, Atop) :: (tl, Atop) :: env
  | Ast.Pleaf v, _ -> (v, Atop) :: env
  | Ast.Pnode (l, r), _ -> (l, Atop) :: (r, Atop) :: env

and apply_clos t c avals =
  let env = List.combine c.cparams avals @ c.cenv in
  (* The closure's body belongs to the def it was written in; its prim sites
     are recorded under the context the closure was created in. *)
  eval t c.cdef c.cctx env c.cbody

and apply_global t caller_def caller_ctx site g avals =
  let ctx =
    if not t.context_sensitive then root_ctx
    else if Call_graph.same_scc t.cg caller_def g then
      (* Recursive cycles stay in the entry context: the whole cycle is one
         specialization. *)
      caller_ctx
    else Fmt.str "s%d" site
  in
  Hashtbl.replace t.callee_ctx (site, caller_ctx) ctx;
  let s = find_summary t (g, ctx) in
  let joined =
    match s.args with [] -> avals | old -> List.map2 join old avals
  in
  if s.args = [] || not (List.for_all2 equal_aval s.args joined) then begin
    s.args <- joined;
    t.dirty <- true
  end;
  s.result

(** Run the analysis.

    [inputs] names the @main parameters that vary per batch instance; all
    other @main parameters are model weights (shared across the batch). *)
let analyze ?(context_sensitive = true) (sites : Sites.t) (p : Ast.program)
    ~(inputs : string list) : t =
  let cg = Call_graph.build p in
  let t =
    {
      sites;
      summaries = Hashtbl.create 32;
      prim_args = Hashtbl.create 64;
      callee_ctx = Hashtbl.create 32;
      dirty = true;
      cg;
      program = p;
      context_sensitive;
    }
  in
  let main = Ast.main_def p in
  let main_args =
    List.map
      (fun (name, ty) ->
        if List.mem name inputs then aval_of_input_ty ty else aval_of_weight_ty name ty)
      main.params
  in
  let s = find_summary t ("main", root_ctx) in
  s.args <- main_args;
  let max_rounds = 100 in
  let rounds = ref 0 in
  while t.dirty && !rounds < max_rounds do
    t.dirty <- false;
    incr rounds;
    (* Snapshot: evaluation may add summaries while we iterate. *)
    let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.summaries [] in
    List.iter
      (fun ((name, ctx) as key) ->
        match Ast.find_def p name with
        | None -> ()
        | Some d ->
          let s = find_summary t key in
          if s.args <> [] then begin
            let env = List.combine (List.map fst d.params) s.args in
            let r = join s.result (eval t name ctx env d.body) in
            if not (equal_aval s.result r) then begin
              s.result <- r;
              t.dirty <- true
            end
          end)
      (List.sort compare keys)
  done;
  if !rounds >= max_rounds then
    Fmt.failwith "taint analysis did not converge in %d rounds" max_rounds;
  t

(** Joined abstract argument values at a tensor-op site in a context (falls
    back to the context-insensitive join if the exact context is missing). *)
let prim_avals t ~site ~ctx ~arity : aval list =
  match Hashtbl.find_opt t.prim_args (site, ctx) with
  | Some avals -> avals
  | None ->
    (* Site never reached in this context (dead branch): conservative. *)
    List.init arity (fun _ -> Atop)

(** The context a call site resolves to. *)
let callee_context t ~site ~ctx : string option = Hashtbl.find_opt t.callee_ctx (site, ctx)

(** All (def, ctx) specializations reached from @main. *)
let reached t : (string * string) list =
  Hashtbl.fold (fun (name, ctx) s acc -> if s.args <> [] then (name, ctx) :: acc else acc)
    t.summaries []
  |> List.sort compare
