(** A replicated serving cluster on one virtual timeline.

    N {!Replica}s — each with its own device, admission queue, batcher
    state and (via the caller-supplied executor array) its own fault plan —
    sit behind a dispatcher that owns per-request accounting. The cluster
    layer adds the three robustness mechanisms a single survivable server
    cannot provide:

    - {b Health-checked failover.} A replica whose recovery machinery gives
      up (consecutive-failure threshold, or the stricter consecutive-reset
      threshold, or a failed probe) goes down; its queued and in-flight
      requests drain back to the dispatcher and are re-dispatched to
      healthy peers — each request keeps its original arrival time and
      deadline, and a bounded requeue budget guarantees termination even if
      every replica is faulty. After the cooldown the replica accepts a
      single probe request; success re-admits it.
    - {b Dispatch policies.} Round-robin, join-shortest-queue, or
      least-expected-latency (remaining device busy time plus the replica's
      online latency-model estimate for the queue the request would join).
    - {b Hedged requests.} When enough completions have been observed, each
      arrival arms a timer at a percentile of recent end-to-end latency; if
      the request is still unresolved when the timer fires, a duplicate is
      issued on a different healthy replica. First completion wins; a
      duplicate still queued when its winner finishes is dropped unexecuted
      (a {e cancel}), one that was already executing is counted as
      {e wasted}.

    {b Accounting invariant} (checked by tests): every offered request
    terminates exactly once — completed, shed, expired, poisoned, or
    requeue-budget-exhausted — no matter how many copies hedging created or
    how many times failover moved it. The dispatcher keeps a per-request-id
    entry tracking live copies and resolution; replica callbacks funnel
    every copy-level event through it.

    Determinism: everything runs on the shared {!Event_loop}; the only RNG
    streams are the per-replica backoff jitter (seeded from the tolerance
    seed and replica id) and whatever the executors draw internally. Same
    seeds and fault plans ⇒ byte-identical stats. *)

module Trace = Acrobat_obs.Trace
module Metrics = Acrobat_obs.Metrics
module Json = Acrobat_obs.Json
module Net = Acrobat_net.Net
module Budget = Acrobat_resilience.Budget
module Resilience = Acrobat_resilience.Policy

type dispatch = Round_robin | Join_shortest_queue | Least_expected_latency

let dispatch_name = function
  | Round_robin -> "rr"
  | Join_shortest_queue -> "jsq"
  | Least_expected_latency -> "lel"

let dispatch_of_string = function
  | "rr" | "round-robin" -> Some Round_robin
  | "jsq" | "shortest-queue" -> Some Join_shortest_queue
  | "lel" | "least-latency" -> Some Least_expected_latency
  | _ -> None

type config = {
  c_server : Server.config;  (** Per-replica server knobs (shared). *)
  c_replicas : int;
  c_dispatch : dispatch;
  c_hedge_percentile : float option;
      (** Hedge delay as a percentile (e.g. 95.0) of recent end-to-end
          latency; [None] disables hedging. *)
  c_reset_threshold : int;
      (** Consecutive device resets that fail a replica over (stronger
          signal than generic faults, so it is tighter than the breaker
          threshold). *)
  c_requeue_budget : int;
      (** Re-dispatches per request before it is dropped; bounds work when
          every replica is faulty. *)
  c_net : Net.plan option;
      (** Network fault plan for the dispatcher↔replica links; [None] (or a
          plan with no armed clause) keeps the direct-call path — no RNG
          draws, no extra events, byte-identical output. *)
}

let default_config =
  {
    c_server = Server.default_config;
    c_replicas = 1;
    c_dispatch = Join_shortest_queue;
    c_hedge_percentile = None;
    c_reset_threshold = 2;
    c_requeue_budget = 8;
    c_net = None;
  }

(* Consecutive per-link timeouts before the link is declared unreachable
   and the dispatcher stops routing new work at it (the link-level analogue
   of the replica breaker threshold, but tighter: a partitioned-away
   replica should be indistinguishable from a dead one quickly). *)
let link_down_threshold = 2

(* Hedge-delay estimation: percentile over a sliding window of recent
   winning completions. Too few observations ⇒ no hedging yet (an early
   wild guess would either never fire or duplicate everything). *)
let hedge_window = 64
let hedge_min_obs = 8

(** Dispatcher-side life cycle of one offered request. *)
type 'a entry = {
  ent_req : 'a Admission.request;
  mutable ent_copies : int;  (** Copies queued or in flight somewhere. *)
  mutable ent_done : bool;  (** Reached its terminal outcome. *)
  mutable ent_home : int;  (** Replica holding the primary copy. *)
  mutable ent_hedged : bool;
  mutable ent_hedge_replica : int;  (** -1 until hedged. *)
  mutable ent_requeues : int;
  mutable ent_deposited : bool;
      (** Retry-budget tokens credited (once per logical request). *)
}

(* --- Network fault-domain state (armed only when [c_net] is) --- *)

(** What a replica's idempotency window remembers about a request key. *)
type dedup_state =
  | Dd_pending  (** Delivered and queued/executing; result not yet known. *)
  | Dd_done of { di_size : int; di_start_us : float; di_done_us : float }
      (** Executed; a duplicate delivery re-acks this result instead of
          re-executing (exactly-once under dup+resend). *)

(** Sender-side tracking of the one {e tracked} in-flight attempt per
    logical request (hedge copies ride untracked — the primary's timeout
    is their recovery). [at_no] counts sends this attempt cycle; a stale
    timeout (bumped [at_no]) no-ops, which is the sender-side fence. *)
type attempt = { mutable at_replica : int; mutable at_no : int }

type netstate = {
  nt : Net.t;  (** The seeded transport (RNG + delay EWMA). *)
  n_plan : Net.plan;
  dedups : (int * int, dedup_state) Net.Dedup.t array;
      (** Per-replica idempotency windows keyed [(request id, replica
          epoch)] — the epoch fence lets a recovered replica re-execute
          requeued work without tripping exactly-once. *)
  attempts : (int, attempt) Hashtbl.t;  (** Live tracked attempts by id. *)
  unreachable : bool array;  (** Links declared down on consecutive timeouts. *)
  consec_timeouts : int array;
  probing : bool array;  (** A link-probe loop is in flight. *)
  n_budget : Budget.t option;
      (** Dispatcher-side resend budget (PR 7's token bucket): armed iff
          the server's retry budget is, so net resends and device retries
          obey the same retries-per-fresh-admission bound. *)
}

type 'a t = {
  cfg : config;
  loop : Event_loop.t;
  mutable replicas : 'a Replica.t array;  (** Filled once during [simulate]. *)
  stats : Stats.t;  (** Cluster aggregate; terminal outcomes only. *)
  entries : (int, 'a entry) Hashtbl.t;
  pending : 'a Admission.request Queue.t;
      (** Requests with no healthy replica to go to; drained on probe
          windows and re-admissions. *)
  mutable rr_next : int;
  lat_ring : float array;  (** Recent winning latencies (us), circular. *)
  mutable lat_count : int;
  mutable lat_idx : int;
  tracer : Trace.t;  (** Dispatcher-level emissions land on pid 0. *)
  mutable net : netstate option;  (** [None] ⇒ the direct-call paths, untouched. *)
}

let record_latency st lat_us =
  st.lat_ring.(st.lat_idx) <- lat_us;
  st.lat_idx <- (st.lat_idx + 1) mod hedge_window;
  if st.lat_count < hedge_window then st.lat_count <- st.lat_count + 1

(** Pure hedge-delay estimate: the [percentile] of the first [count] ring
    entries, or [None] during warm-up (fewer than {!hedge_min_obs}
    observations — an early wild guess would either never fire or duplicate
    everything). Exposed for the warm-up boundary test. *)
let hedge_delay ~percentile ring ~count =
  if count < hedge_min_obs then None
  else Some (Stats.percentile (Array.sub ring 0 count) percentile)

let hedge_delay_us st =
  match st.cfg.c_hedge_percentile with
  | None -> None
  | Some p -> hedge_delay ~percentile:p st.lat_ring ~count:st.lat_count

let entry st rq_id = Hashtbl.find st.entries rq_id

(* A copy vanished without completing. When it was the last live copy of an
   unresolved request, that request's terminal outcome is [terminal]. *)
let copy_lost st (ent : 'a entry) ~terminal =
  ent.ent_copies <- ent.ent_copies - 1;
  if (not ent.ent_done) && ent.ent_copies <= 0 then begin
    ent.ent_done <- true;
    let name =
      match terminal with
      | `Shed ->
        st.stats.Stats.shed <- st.stats.Stats.shed + 1;
        "shed"
      | `Expired ->
        st.stats.Stats.expired <- st.stats.Stats.expired + 1;
        "expired"
      | `Poisoned ->
        st.stats.Stats.poisoned <- st.stats.Stats.poisoned + 1;
        "poisoned"
      | `Budget ->
        st.stats.Stats.breaker_shed <- st.stats.Stats.breaker_shed + 1;
        "budget_exhausted"
      | `Limit ->
        st.stats.Stats.limit_shed <- st.stats.Stats.limit_shed + 1;
        "shed_limit"
      | `Retry_budget ->
        st.stats.Stats.retry_shed <- st.stats.Stats.retry_shed + 1;
        "retry_budget"
      | `Net ->
        st.stats.Stats.net_shed <- st.stats.Stats.net_shed + 1;
        "net_shed"
    in
    let id = ent.ent_req.Admission.rq_id in
    Trace.instant st.tracer ~name ~cat:"request" ~pid:0 ~tid:(Server.req_tid id)
      ~ts_us:(Event_loop.now st.loop)
      ~args:[ "id", Json.Int id ]
  end

(* A still-queued copy of an already-resolved request was discarded — the
   cheap hedge "cancellation". *)
let copy_cancelled st (ent : 'a entry) =
  ent.ent_copies <- ent.ent_copies - 1;
  st.stats.Stats.hedge_cancels <- st.stats.Stats.hedge_cancels + 1

(* The tracked (primary) copy reached a terminal on the net path. A hedge
   copy rides the transport untracked — no timeout of its own — so its ack
   may already be lost with nothing left to recover it; waiting on it could
   leave the request with no terminal ever. The primary's terminal is
   therefore authoritative: any still-unresolved hedge copy is abandoned
   with it, and a hedge ack that does survive later just settles the copy
   count like any losing ack on a resolved request. *)
let primary_lost st (ent : 'a entry) ~terminal =
  if not ent.ent_done then ent.ent_copies <- 1;
  copy_lost st ent ~terminal

(* --- Dispatch --- *)

(* Is the link to replica [i] usable? Always true on the direct-call path;
   with a net plan armed, a link declared unreachable (consecutive
   timeouts — a partition is indistinguishable from a dead replica) is
   skipped until a probe round-trip heals it. *)
let link_up st i =
  match st.net with None -> true | Some ns -> not ns.unreachable.(i)

(* Pick a healthy replica per the configured policy; [exclude] bars one id
   (the hedge's primary home). Ties break toward the lowest id, which keeps
   selection deterministic. *)
let pick_up st ~exclude ~now_us =
  let n = Array.length st.replicas in
  let best = ref None in
  Array.iteri
    (fun i rep ->
      if i <> exclude && Replica.health rep = Replica.Up && link_up st i then begin
        let key =
          match st.cfg.c_dispatch with
          | Round_robin -> float_of_int ((i - st.rr_next + n) mod n)
          | Join_shortest_queue ->
            float_of_int (Replica.queue_length rep + if Replica.is_busy rep then 1 else 0)
          | Least_expected_latency -> Replica.expected_latency_us rep ~now_us
        in
        match !best with Some (_, bk) when bk <= key -> () | _ -> best := Some (i, key)
      end)
    st.replicas;
  match !best with
  | Some (i, _) ->
    if st.cfg.c_dispatch = Round_robin then st.rr_next <- (i + 1) mod n;
    Some i
  | None -> None

(* Probing replicas take priority for a single request at a time: routing
   one live request there is the price of re-admission, and a failed probe
   fails over and requeues it, so nothing is lost. *)
let select st ~now_us =
  let probe = ref (-1) in
  Array.iteri
    (fun i rep -> if !probe < 0 && Replica.wants_probe rep && link_up st i then probe := i)
    st.replicas;
  if !probe >= 0 then Some (!probe, true)
  else
    match pick_up st ~exclude:(-1) ~now_us with
    | Some i -> Some (i, false)
    | None -> None

(* --- The virtual transport (armed only when [c_net] is) --- *)

(* Per-request net event on the link's trace track. *)
let net_trace st ~name ~replica ?(extra = []) id =
  Trace.instant st.tracer ~name ~cat:"net"
    ~pid:(Net.link_pid ~n:(Array.length st.replicas) ~replica)
    ~tid:(Server.req_tid id)
    ~ts_us:(Event_loop.now st.loop)
    ~args:(("id", Json.Int id) :: ("replica", Json.Int replica) :: extra)

(* Link-level net event (no request attached). *)
let link_trace st ~name i =
  Trace.instant st.tracer ~name ~cat:"net"
    ~pid:(Net.link_pid ~n:(Array.length st.replicas) ~replica:i)
    ~tid:0
    ~ts_us:(Event_loop.now st.loop)
    ~args:[ "replica", Json.Int i ]

(* A completion (ack) crossed the return link. The first ack to land
   resolves the request — [r_done_us] is the ack's arrival, so latency
   honestly includes the return transit; later acks (re-acks for filtered
   duplicates, or the losing copy of a hedge pair) only settle accounting.
   The ack also carries the replica-side completion stamp, which is the
   sender's only evidence of the one-way delay it feeds the shedding EWMA. *)
let deliver_ack st ns ~replica (ent : 'a entry) ~di_size ~di_start_us ~di_done_us =
  let id = ent.ent_req.Admission.rq_id in
  let now_us = Event_loop.now st.loop in
  st.stats.Stats.net_ack_deliveries <- st.stats.Stats.net_ack_deliveries + 1;
  net_trace st ~name:"net_recv" ~replica id;
  Net.observe_delay ns.nt (now_us -. di_done_us);
  Hashtbl.remove ns.attempts id;
  ns.consec_timeouts.(replica) <- 0;
  if not ent.ent_done then begin
    ent.ent_done <- true;
    Stats.record_fields st.stats ~id ~arrival_us:ent.ent_req.Admission.rq_arrival_us
      ~start_us:di_start_us ~done_us:now_us ~batch_size:di_size;
    record_latency st (now_us -. ent.ent_req.Admission.rq_arrival_us);
    Trace.instant st.tracer ~name:"done" ~cat:"request" ~pid:0 ~tid:(Server.req_tid id)
      ~ts_us:now_us
      ~args:[ "id", Json.Int id; "replica", Json.Int replica ];
    if ent.ent_hedged && replica = ent.ent_hedge_replica then
      st.stats.Stats.hedge_wins <- st.stats.Stats.hedge_wins + 1
  end;
  ent.ent_copies <- ent.ent_copies - 1

(* Put one completion on the return link. Loss here — random, gray, or a
   partition — is exactly what the sender's timeout+resend and the
   receiver's [Dd_done] re-ack exist to absorb. *)
let send_ack st ns ~replica (ent : 'a entry) ~di_size ~di_start_us ~di_done_us =
  let id = ent.ent_req.Admission.rq_id in
  let now_us = Event_loop.now st.loop in
  let n = Array.length st.replicas in
  st.stats.Stats.net_acks <- st.stats.Stats.net_acks + 1;
  match Net.recv ns.nt ~now_us ~replica ~n with
  | Net.Recv_partitioned ->
    st.stats.Stats.net_ack_drops <- st.stats.Stats.net_ack_drops + 1;
    net_trace st ~name:"net_cut" ~replica id
  | Net.Recv_dropped ->
    st.stats.Stats.net_ack_drops <- st.stats.Stats.net_ack_drops + 1;
    net_trace st ~name:"net_drop" ~replica id
  | Net.Recv_gray ->
    st.stats.Stats.net_gray_drops <- st.stats.Stats.net_gray_drops + 1;
    net_trace st ~name:"net_gray" ~replica id
  | Net.Recv_deliver d ->
    Event_loop.schedule_after st.loop ~delay:d (fun () ->
        deliver_ack st ns ~replica ent ~di_size ~di_start_us ~di_done_us)

(* A replica-side refusal (queue full / limiter) crossing the return link:
   the authoritative shed, same terminal the direct path applies. A lost
   nack is recovered by the sender's timeout like any other silence. *)
let deliver_nack st ns ~replica (ent : 'a entry) ~terminal =
  let id = ent.ent_req.Admission.rq_id in
  st.stats.Stats.net_ack_deliveries <- st.stats.Stats.net_ack_deliveries + 1;
  net_trace st ~name:"net_recv" ~replica id;
  ns.consec_timeouts.(replica) <- 0;
  if ent.ent_done then ent.ent_copies <- ent.ent_copies - 1
  else begin
    copy_lost st ent ~terminal;
    if ent.ent_done then Hashtbl.remove ns.attempts id
  end

let send_nack st ns ~replica (ent : 'a entry) ~terminal =
  let id = ent.ent_req.Admission.rq_id in
  let now_us = Event_loop.now st.loop in
  let n = Array.length st.replicas in
  st.stats.Stats.net_acks <- st.stats.Stats.net_acks + 1;
  match Net.recv ns.nt ~now_us ~replica ~n with
  | Net.Recv_partitioned ->
    st.stats.Stats.net_ack_drops <- st.stats.Stats.net_ack_drops + 1;
    net_trace st ~name:"net_cut" ~replica id
  | Net.Recv_dropped ->
    st.stats.Stats.net_ack_drops <- st.stats.Stats.net_ack_drops + 1;
    net_trace st ~name:"net_drop" ~replica id
  | Net.Recv_gray ->
    st.stats.Stats.net_gray_drops <- st.stats.Stats.net_gray_drops + 1;
    net_trace st ~name:"net_gray" ~replica id
  | Net.Recv_deliver d ->
    Event_loop.schedule_after st.loop ~delay:d (fun () ->
        deliver_nack st ns ~replica ent ~terminal)

(* One request copy lands at replica [i]'s ingress. The idempotency window
   (keyed by request id and the replica's fencing epoch) decides: fresh ⇒
   execute, pending ⇒ filter, done ⇒ re-ack the remembered result. This is
   the receiving half of exactly-once: however many copies dup+resend
   create, at most one executes per (id, epoch). *)
let net_deliver st ns (ent : 'a entry) (r : 'a Admission.request) i =
  let rep = st.replicas.(i) in
  let id = r.Admission.rq_id in
  match Replica.health rep with
  | Replica.Down | Replica.Quarantined ->
    (* Delivered into a dead endpoint: indistinguishable from loss; the
       sender's timeout recovers. *)
    st.stats.Stats.net_drops <- st.stats.Stats.net_drops + 1;
    net_trace st ~name:"net_drop" ~replica:i id
  | Replica.Up | Replica.Probing -> (
    st.stats.Stats.net_deliveries <- st.stats.Stats.net_deliveries + 1;
    net_trace st ~name:"net_deliver" ~replica:i id;
    let ep = Replica.epoch rep in
    let key = (id, ep) in
    let window = ns.dedups.(i) in
    match (if ns.n_plan.Net.np_dedup then Net.Dedup.find window key else None) with
    | Some Dd_pending ->
      st.stats.Stats.net_dedup_hits <- st.stats.Stats.net_dedup_hits + 1;
      net_trace st ~name:"net_dedup" ~replica:i id
    | Some (Dd_done { di_size; di_start_us; di_done_us }) ->
      st.stats.Stats.net_dedup_hits <- st.stats.Stats.net_dedup_hits + 1;
      net_trace st ~name:"net_dedup" ~replica:i id;
      (* The result is already known: re-ack it instead of re-executing —
         how a lost ack is recovered without double execution. *)
      send_ack st ns ~replica:i ent ~di_size ~di_start_us ~di_done_us
    | None -> (
      st.stats.Stats.net_fresh <- st.stats.Stats.net_fresh + 1;
      if ns.n_plan.Net.np_dedup then Net.Dedup.note window key Dd_pending;
      match Replica.enqueue rep r with
      | Replica.Admitted ->
        net_trace st ~name:"net_exec" ~replica:i ~extra:[ "epoch", Json.Int ep ] id;
        if not ent.ent_deposited then begin
          ent.ent_deposited <- true;
          Replica.deposit_budget rep
        end
      | Replica.Shed_queue ->
        (* Never executed: forget the key so a later retransmission may
           execute, and nack the sender. *)
        if ns.n_plan.Net.np_dedup then Net.Dedup.remove window key;
        send_nack st ns ~replica:i ent ~terminal:`Shed
      | Replica.Shed_limit ->
        if ns.n_plan.Net.np_dedup then Net.Dedup.remove window key;
        send_nack st ns ~replica:i ent ~terminal:`Limit))

(* Put one request copy on the send link: it may be cut by a partition,
   lost, duplicated, delayed, or reordered — each surviving copy becomes a
   scheduled delivery at the replica's ingress. *)
let net_transmit st ns (ent : 'a entry) (r : 'a Admission.request) i ~resend =
  let id = r.Admission.rq_id in
  let now_us = Event_loop.now st.loop in
  let n = Array.length st.replicas in
  st.stats.Stats.net_sends <- st.stats.Stats.net_sends + 1;
  if resend then st.stats.Stats.net_resends <- st.stats.Stats.net_resends + 1;
  net_trace st ~name:"net_send" ~replica:i id;
  let snt = Net.send ns.nt ~now_us ~replica:i ~n in
  let copies = List.length snt.Net.sn_delays + snt.Net.sn_dropped + snt.Net.sn_cut in
  st.stats.Stats.net_dups <- st.stats.Stats.net_dups + copies - 1;
  st.stats.Stats.net_drops <- st.stats.Stats.net_drops + snt.Net.sn_dropped;
  st.stats.Stats.net_partition_drops <-
    st.stats.Stats.net_partition_drops + snt.Net.sn_cut;
  if snt.Net.sn_dropped > 0 then net_trace st ~name:"net_drop" ~replica:i id;
  if snt.Net.sn_cut > 0 then net_trace st ~name:"net_cut" ~replica:i id;
  List.iter
    (fun d ->
      Event_loop.schedule_after st.loop ~delay:d (fun () -> net_deliver st ns ent r i))
    snt.Net.sn_delays

let rec dispatch st (r : 'a Admission.request) =
  let ent = entry st r.Admission.rq_id in
  let now_us = Event_loop.now st.loop in
  match select st ~now_us with
  | None ->
    Queue.push r st.pending;
    (* With every usable target gone, parked work needs link probes to
       ever drain again: rekick the probe loop of each downed link. *)
    (match st.net with
    | Some ns ->
      Array.iteri (fun i down -> if down then net_kick_probe st ns i) ns.unreachable
    | None -> ())
  | Some (i, is_probe) ->
    if is_probe then st.stats.Stats.probes <- st.stats.Stats.probes + 1;
    ent.ent_home <- i;
    (match st.net with
    | None -> (
      match Replica.enqueue st.replicas.(i) r with
      | Replica.Admitted ->
        if not ent.ent_deposited then begin
          ent.ent_deposited <- true;
          Replica.deposit_budget st.replicas.(i)
        end
      | Replica.Shed_queue -> copy_lost st ent ~terminal:`Shed
      | Replica.Shed_limit -> copy_lost st ent ~terminal:`Limit)
    | Some ns -> net_dispatch st ns ent r i)

(* Net-mode dispatch of the tracked (primary) copy to replica [i]:
   deadline propagation first, then transmit and arm the per-attempt
   timeout. Also the resend path — the attempt record persists across
   sends of one cycle, and each send re-checks the deadline. *)
and net_dispatch st ns (ent : 'a entry) (r : 'a Admission.request) i =
  let id = r.Admission.rq_id in
  let now_us = Event_loop.now st.loop in
  let ewma = Net.ewma_us ns.nt in
  match r.Admission.rq_deadline_us with
  | Some dl when ewma > 0.0 && now_us +. ewma > dl ->
    (* Sender-side deadline propagation: the remaining budget cannot cover
       even the observed one-way transit, so shed here instead of burning
       link and replica capacity on a result nobody can use. *)
    Hashtbl.remove ns.attempts id;
    primary_lost st ent ~terminal:`Net
  | _ ->
    let at =
      match Hashtbl.find_opt ns.attempts id with
      | Some at -> at
      | None ->
        let at = { at_replica = i; at_no = 0 } in
        Hashtbl.replace ns.attempts id at;
        at
    in
    at.at_replica <- i;
    at.at_no <- at.at_no + 1;
    net_transmit st ns ent r i ~resend:(at.at_no > 1);
    if ns.n_plan.Net.np_timeout_us > 0.0 then begin
      let my_no = at.at_no in
      Event_loop.schedule_after st.loop ~delay:ns.n_plan.Net.np_timeout_us (fun () ->
          net_timeout st ns ent r my_no)
    end

(* One attempt cycle is spent: fall back to the cluster's requeue
   discipline (budgeted re-dispatch, parked when nowhere is healthy), so
   termination survives even a fully-lossy link. *)
and net_requeue st ns (ent : 'a entry) (r : 'a Admission.request) ~from =
  Hashtbl.remove ns.attempts r.Admission.rq_id;
  ent.ent_requeues <- ent.ent_requeues + 1;
  if ent.ent_requeues > st.cfg.c_requeue_budget then
    primary_lost st ent ~terminal:`Budget
  else begin
    st.stats.Stats.requeued <- st.stats.Stats.requeued + 1;
    Trace.instant st.tracer ~name:"requeue" ~cat:"cluster" ~pid:0
      ~tid:(Server.req_tid r.Admission.rq_id)
      ~ts_us:(Event_loop.now st.loop)
      ~args:[ "id", Json.Int r.Admission.rq_id; "from", Json.Int from ];
    dispatch st r
  end

(* The per-attempt timeout fired. Stale if the request resolved or a later
   send already bumped the attempt number (the sender-side fence); live
   silence feeds the link-health counter and triggers an epoch-consistent
   resend — same replica while it looks reachable, else re-selection. *)
and net_timeout st ns (ent : 'a entry) (r : 'a Admission.request) my_no =
  match Hashtbl.find_opt ns.attempts r.Admission.rq_id with
  | None -> ()
  | Some at when at.at_no <> my_no || ent.ent_done -> ()
  | Some at ->
    let i = at.at_replica in
    st.stats.Stats.net_timeouts <- st.stats.Stats.net_timeouts + 1;
    net_trace st ~name:"net_timeout" ~replica:i r.Admission.rq_id;
    ns.consec_timeouts.(i) <- ns.consec_timeouts.(i) + 1;
    if ns.consec_timeouts.(i) >= link_down_threshold && not ns.unreachable.(i) then
      net_link_down st ns i;
    if at.at_no > ns.n_plan.Net.np_resends then net_requeue st ns ent r ~from:i
    else begin
      match ns.n_budget with
      | Some b when not (Budget.try_spend b 1) ->
        (* Resends compose with the retry budget: when the bucket is dry,
           the resend converts into a counted shed (DESIGN.md §13). *)
        Hashtbl.remove ns.attempts r.Admission.rq_id;
        primary_lost st ent ~terminal:`Retry_budget
      | _ ->
        if link_up st i && Replica.health st.replicas.(i) = Replica.Up then
          net_dispatch st ns ent r i
        else net_requeue st ns ent r ~from:i
    end

(* Consecutive timeouts declared the link dead (a partition is
   indistinguishable from a dead replica). Routing already skips it via
   [link_up]; a probe loop (ping across the faulty link, pong back) heals
   it, and a configured partition window gets one forced probe at its heal
   time so the link re-admits even with no request traffic outstanding. *)
and net_link_down st ns i =
  ns.unreachable.(i) <- true;
  st.stats.Stats.net_link_downs <- st.stats.Stats.net_link_downs + 1;
  link_trace st ~name:"net_link_down" i;
  net_kick_probe st ns i;
  match Net.partition_window ns.n_plan with
  | Some (_, t1) when t1 > Event_loop.now st.loop ->
    Event_loop.schedule st.loop ~at:t1 (fun () -> net_force_probe st ns i)
  | _ -> ()

and net_kick_probe st ns i =
  if ns.unreachable.(i) && not ns.probing.(i) then begin
    ns.probing.(i) <- true;
    net_probe st ns i ~force:false
  end

and net_force_probe st ns i =
  if ns.unreachable.(i) then begin
    ns.probing.(i) <- true;
    net_probe st ns i ~force:true
  end

(* One probe round: a ping across the send link, a pong across the return
   link; both surviving heals the link. The loop parks itself when no
   request work is outstanding ([dispatch] rekicks it when parked work
   appears), so the event loop always drains. *)
and net_probe st ns i ~force =
  if not ns.unreachable.(i) then ns.probing.(i) <- false
  else if (not force) && Queue.is_empty st.pending && Hashtbl.length ns.attempts = 0
  then ns.probing.(i) <- false
  else begin
    let now_us = Event_loop.now st.loop in
    let n = Array.length st.replicas in
    st.stats.Stats.net_probes <- st.stats.Stats.net_probes + 1;
    link_trace st ~name:"net_probe" i;
    let retry () =
      Event_loop.schedule_after st.loop ~delay:ns.n_plan.Net.np_timeout_us (fun () ->
          net_probe st ns i ~force:false)
    in
    let snt = Net.send ns.nt ~now_us ~replica:i ~n in
    match snt.Net.sn_delays with
    | [] -> retry ()
    | d :: _ ->
      Event_loop.schedule_after st.loop ~delay:d (fun () ->
          match Net.recv ns.nt ~now_us:(Event_loop.now st.loop) ~replica:i ~n with
          | Net.Recv_deliver d' ->
            Event_loop.schedule_after st.loop ~delay:d' (fun () -> net_heal st ns i)
          | _ -> retry ())
  end

(* A probe round-trip survived: the link is usable again. Parked work
   re-admits through [drain_pending] — the same path replica probes use —
   so nothing requeued is duplicated. *)
and net_heal st ns i =
  if ns.unreachable.(i) then begin
    ns.unreachable.(i) <- false;
    ns.consec_timeouts.(i) <- 0;
    ns.probing.(i) <- false;
    st.stats.Stats.net_heals <- st.stats.Stats.net_heals + 1;
    link_trace st ~name:"net_heal" i;
    drain_pending st
  end

(* Drain the parked queue once a dispatch target (re)appeared. Taking a
   snapshot first keeps this loop-free: a re-parked request goes back to
   [pending] without being retried in the same pass. *)
and drain_pending st =
  let rec go k =
    if k > 0 then
      match Queue.take_opt st.pending with
      | None -> ()
      | Some r ->
        let ent = entry st r.Admission.rq_id in
        if ent.ent_done then copy_cancelled st ent else dispatch st r;
        go (k - 1)
  in
  go (Queue.length st.pending)

(* --- Hedging --- *)

let maybe_hedge st (ent : 'a entry) =
  if (not ent.ent_done) && not ent.ent_hedged then begin
    let now_us = Event_loop.now st.loop in
    match pick_up st ~exclude:ent.ent_home ~now_us with
    | None -> () (* nowhere to hedge to; the primary copy stands alone *)
    | Some i ->
      ent.ent_hedged <- true;
      ent.ent_hedge_replica <- i;
      ent.ent_copies <- ent.ent_copies + 1;
      st.stats.Stats.hedges <- st.stats.Stats.hedges + 1;
      Trace.instant st.tracer ~name:"hedge" ~cat:"cluster" ~pid:0
        ~tid:(Server.req_tid ent.ent_req.Admission.rq_id)
        ~ts_us:now_us
        ~args:
          [ "id", Json.Int ent.ent_req.Admission.rq_id; "replica", Json.Int i ];
      (match st.net with
      | None -> (
        match Replica.enqueue st.replicas.(i) ent.ent_req with
        | Replica.Admitted -> ()
        (* The hedge target shed it; the primary copy is still live, so
           this never terminates the request. *)
        | Replica.Shed_queue -> copy_lost st ent ~terminal:`Shed
        | Replica.Shed_limit -> copy_lost st ent ~terminal:`Limit)
      | Some ns ->
        (* Hedge copies ride the link untracked: the primary's timeout is
           their recovery path, and the receiver's idempotency window
           filters if both eventually land on one replica. *)
        net_transmit st ns ent ent.ent_req i ~resend:false)
  end

(* --- Replica callbacks: every copy-level event funnels through here --- *)

let on_live st (r : 'a Admission.request) = not (entry st r.Admission.rq_id).ent_done

let on_completed st ~replica (batch : 'a Admission.request list) ~size ~start_us ~done_us =
  List.iter
    (fun (r : 'a Admission.request) ->
      let ent = entry st r.Admission.rq_id in
      if not ent.ent_done then begin
        ent.ent_done <- true;
        Stats.record_fields st.stats ~id:r.Admission.rq_id
          ~arrival_us:r.Admission.rq_arrival_us ~start_us ~done_us ~batch_size:size;
        record_latency st (done_us -. r.Admission.rq_arrival_us);
        Trace.instant st.tracer ~name:"done" ~cat:"request" ~pid:0
          ~tid:(Server.req_tid r.Admission.rq_id) ~ts_us:done_us
          ~args:[ "id", Json.Int r.Admission.rq_id; "replica", Json.Int replica ];
        if ent.ent_hedged && replica = ent.ent_hedge_replica then
          st.stats.Stats.hedge_wins <- st.stats.Stats.hedge_wins + 1
      end
      else
        (* The other copy already won; this execution was duplicated work. *)
        st.stats.Stats.hedge_wasted <- st.stats.Stats.hedge_wasted + 1;
      ent.ent_copies <- ent.ent_copies - 1)
    batch

(* Net-mode completion: the replica finished a batch. Each result is
   remembered in the idempotency window (so duplicate deliveries re-ack it)
   and put on the return link; the request resolves only when its ack
   lands at the dispatcher — see [deliver_ack]. *)
let net_on_completed st ns ~replica (batch : 'a Admission.request list) ~size ~start_us
    ~done_us =
  let ep = Replica.epoch st.replicas.(replica) in
  List.iter
    (fun (r : 'a Admission.request) ->
      let ent = entry st r.Admission.rq_id in
      if ns.n_plan.Net.np_dedup then
        Net.Dedup.note ns.dedups.(replica)
          (r.Admission.rq_id, ep)
          (Dd_done { di_size = size; di_start_us = start_us; di_done_us = done_us });
      if ent.ent_done && ent.ent_hedged then
        st.stats.Stats.hedge_wasted <- st.stats.Stats.hedge_wasted + 1;
      send_ack st ns ~replica ent ~di_size:size ~di_start_us:start_us
        ~di_done_us:done_us)
    batch

let on_cancelled st ~replica:_ (r : 'a Admission.request) =
  copy_cancelled st (entry st r.Admission.rq_id)

let on_expired st ~replica:_ (rs : 'a Admission.request list) =
  List.iter
    (fun (r : 'a Admission.request) ->
      let ent = entry st r.Admission.rq_id in
      if ent.ent_done then ent.ent_copies <- ent.ent_copies - 1
      else copy_lost st ent ~terminal:`Expired)
    rs

let on_retry_shed st ~replica:_ (rs : 'a Admission.request list) =
  List.iter
    (fun (r : 'a Admission.request) ->
      let ent = entry st r.Admission.rq_id in
      if ent.ent_done then ent.ent_copies <- ent.ent_copies - 1
      else copy_lost st ent ~terminal:`Retry_budget)
    rs

let on_poisoned st ~replica:_ (r : 'a Admission.request) =
  let ent = entry st r.Admission.rq_id in
  if ent.ent_done then ent.ent_copies <- ent.ent_copies - 1
  else copy_lost st ent ~terminal:`Poisoned

let on_down st ~replica (requeue : 'a Admission.request list) =
  ignore replica;
  st.stats.Stats.failovers <- st.stats.Stats.failovers + 1;
  List.iter
    (fun (r : 'a Admission.request) ->
      let ent = entry st r.Admission.rq_id in
      if ent.ent_done then copy_cancelled st ent
      else begin
        ent.ent_requeues <- ent.ent_requeues + 1;
        if ent.ent_requeues > st.cfg.c_requeue_budget then
          copy_lost st ent ~terminal:`Budget
        else begin
          st.stats.Stats.requeued <- st.stats.Stats.requeued + 1;
          Trace.instant st.tracer ~name:"requeue" ~cat:"cluster" ~pid:0
            ~tid:(Server.req_tid r.Admission.rq_id)
            ~ts_us:(Event_loop.now st.loop)
            ~args:[ "id", Json.Int r.Admission.rq_id; "from", Json.Int replica ];
          (* The down replica is no longer Up, so [dispatch] naturally
             routes elsewhere (or parks the request when nowhere is). *)
          dispatch st r
        end
      end)
    requeue

(* Quarantine drain: the same requeue discipline as failover (budgeted
   re-dispatch, parked when nowhere is healthy), but the transition itself
   is counted by the replica's integrity scoreboard, not as a failover. *)
let on_quarantined st ~replica (requeue : 'a Admission.request list) =
  List.iter
    (fun (r : 'a Admission.request) ->
      let ent = entry st r.Admission.rq_id in
      if ent.ent_done then copy_cancelled st ent
      else begin
        ent.ent_requeues <- ent.ent_requeues + 1;
        if ent.ent_requeues > st.cfg.c_requeue_budget then
          copy_lost st ent ~terminal:`Budget
        else begin
          st.stats.Stats.requeued <- st.stats.Stats.requeued + 1;
          Trace.instant st.tracer ~name:"requeue" ~cat:"cluster" ~pid:0
            ~tid:(Server.req_tid r.Admission.rq_id)
            ~ts_us:(Event_loop.now st.loop)
            ~args:[ "id", Json.Int r.Admission.rq_id; "from", Json.Int replica ];
          dispatch st r
        end
      end)
    requeue

let on_probe_ready st ~replica:_ = drain_pending st

let on_up st ~replica:_ =
  st.stats.Stats.readmitted <- st.stats.Stats.readmitted + 1;
  drain_pending st

(* --- Arrivals --- *)

let on_arrival st (r : 'a Admission.request) =
  let ent =
    {
      ent_req = r;
      ent_copies = 1;
      ent_done = false;
      ent_home = -1;
      ent_hedged = false;
      ent_hedge_replica = -1;
      ent_requeues = 0;
      ent_deposited = false;
    }
  in
  Hashtbl.replace st.entries r.Admission.rq_id ent;
  (* Fresh admission credits the dispatcher-side resend budget, mirroring
     the replica-side deposit discipline (once per logical request). *)
  (match st.net with
  | Some { n_budget = Some b; _ } -> Budget.deposit b
  | _ -> ());
  Trace.instant st.tracer ~name:"admit" ~cat:"request" ~pid:0
    ~tid:(Server.req_tid r.Admission.rq_id)
    ~ts_us:(Event_loop.now st.loop)
    ~args:[ "id", Json.Int r.Admission.rq_id ];
  (* Arm the hedge timer from the delay estimate at arrival time; when the
     request resolves first, the timer no-ops. *)
  (match hedge_delay_us st with
  | Some d ->
    Event_loop.schedule st.loop ~at:(r.Admission.rq_arrival_us +. d) (fun () ->
        maybe_hedge st ent)
  | None -> ());
  dispatch st r

(** Final per-replica view of a cluster run. *)
type replica_view = {
  rv_id : int;
  rv_stats : Stats.t;  (** Everything this replica executed, hedges included. *)
  rv_health : Replica.health;  (** Health when the simulation drained. *)
}

type report = {
  cluster_stats : Stats.t;
      (** Aggregate: terminal per-request outcomes, merged profilers, and
          the cluster counters. *)
  replica_views : replica_view list;
}

(** Run the cluster simulation to completion. [executors.(i)] runs a batch
    on replica [i]'s device (wrap with a per-replica fault injector to make
    one replica flaky); its length must equal [cfg.c_replicas]. *)
let simulate ?(tracer = Trace.null) ?(metrics = Metrics.null)
    ?(snapshot_every_us = 10_000.0) ?auditor (cfg : config)
    ~(arrivals : float array) ~(payload : int -> 'a)
    ~(executors : (degraded:bool -> 'a list -> Server.exec_result) array) : report =
  if Array.length executors <> cfg.c_replicas then
    Fmt.invalid_arg "Cluster.simulate: %d executors for %d replicas"
      (Array.length executors) cfg.c_replicas;
  if cfg.c_replicas <= 0 then
    Fmt.invalid_arg "Cluster.simulate: replicas must be positive";
  let loop = Event_loop.create (Clock.create ()) in
  let net_armed =
    match cfg.c_net with Some plan -> Net.enabled plan | None -> false
  in
  if Trace.enabled tracer then begin
    Trace.name_process tracer ~pid:0 ~name:"dispatcher";
    for i = 0 to cfg.c_replicas - 1 do
      Trace.name_process tracer ~pid:(i + 1) ~name:(Fmt.str "replica %d" i)
    done;
    if net_armed then
      for i = 0 to cfg.c_replicas - 1 do
        Trace.name_process tracer
          ~pid:(Net.link_pid ~n:cfg.c_replicas ~replica:i)
          ~name:(Fmt.str "link %d" i)
      done
  end;
  let net =
    match cfg.c_net with
    | Some plan when Net.enabled plan ->
      Some
        {
          nt = Net.create plan;
          n_plan = plan;
          dedups =
            Array.init cfg.c_replicas (fun _ ->
                Net.Dedup.create ~capacity:plan.Net.np_window);
          attempts = Hashtbl.create 256;
          unreachable = Array.make cfg.c_replicas false;
          consec_timeouts = Array.make cfg.c_replicas 0;
          probing = Array.make cfg.c_replicas false;
          n_budget =
            Option.map
              (fun frac -> Budget.create ~frac)
              cfg.c_server.Server.resilience.Resilience.rs_retry_budget;
        }
    | _ -> None
  in
  let st =
    {
      cfg;
      loop;
      replicas = [||];
      stats = Stats.create ();
      entries = Hashtbl.create 1024;
      pending = Queue.create ();
      rr_next = 0;
      lat_ring = Array.make hedge_window 0.0;
      lat_count = 0;
      lat_idx = 0;
      tracer;
      net;
    }
  in
  let cb =
    {
      Replica.cb_live = on_live st;
      cb_completed = (fun ~replica batch ~size ~start_us ~done_us ->
        match st.net with
        | None -> on_completed st ~replica batch ~size ~start_us ~done_us
        | Some ns -> net_on_completed st ns ~replica batch ~size ~start_us ~done_us);
      cb_cancelled = (fun ~replica r -> on_cancelled st ~replica r);
      cb_expired = (fun ~replica rs -> on_expired st ~replica rs);
      cb_retry_shed = (fun ~replica rs -> on_retry_shed st ~replica rs);
      cb_poisoned = (fun ~replica r -> on_poisoned st ~replica r);
      cb_down = (fun ~replica rs -> on_down st ~replica rs);
      cb_quarantined = (fun ~replica rs -> on_quarantined st ~replica rs);
      cb_probe_ready = (fun ~replica -> on_probe_ready st ~replica);
      cb_up = (fun ~replica -> on_up st ~replica);
    }
  in
  st.replicas <-
    Array.init cfg.c_replicas (fun i ->
        Replica.create ~tracer ?auditor ~id:i ~loop ~config:cfg.c_server
          ~reset_threshold:cfg.c_reset_threshold ~execute:executors.(i) ~cb ());
  Array.iteri
    (fun i at ->
      let r =
        {
          Admission.rq_id = i;
          rq_payload = payload i;
          rq_arrival_us = at;
          rq_deadline_us = Option.map (fun d -> at +. d) cfg.c_server.Server.deadline_us;
        }
      in
      Event_loop.schedule loop ~at (fun () -> on_arrival st r))
    arrivals;
  (* Periodic metric snapshots; the chain stops rescheduling once it is the
     only pending work, so the loop still drains. *)
  if Metrics.enabled metrics then begin
    let rec snap () =
      Stats.to_metrics st.stats metrics;
      Metrics.snapshot metrics ~ts_us:(Event_loop.now loop);
      if Event_loop.pending loop > 0 then
        Event_loop.schedule_after loop ~delay:snapshot_every_us snap
    in
    Event_loop.schedule_after loop ~delay:snapshot_every_us snap
  end;
  Event_loop.run loop;
  (* Anything still parked when the event loop drained could not be placed
     before the end of the run; account it as dropped so the per-request
     conservation law (completed + dropped = offered) holds. *)
  Queue.iter
    (fun (r : 'a Admission.request) ->
      let ent = entry st r.Admission.rq_id in
      if ent.ent_done then copy_cancelled st ent
      else if st.net <> None then primary_lost st ent ~terminal:`Budget
      else copy_lost st ent ~terminal:`Budget)
    st.pending;
  Queue.clear st.pending;
  let end_us = Event_loop.now loop in
  st.stats.Stats.end_us <- end_us;
  (* Aggregate device-side activity: every batch any replica executed,
     every profiler sample, every recovery action. Terminal per-request
     counters (shed/expired/poisoned/budget) are cluster-owned and already
     in [st.stats]; per-replica admission counters would double-count
     hedged and requeued copies. *)
  let views =
    Array.to_list
      (Array.map
         (fun rep ->
           let rs = Replica.stats rep in
           rs.Stats.shed <- Admission.shed_count (Replica.admission rep);
           rs.Stats.expired <- Admission.expired_count (Replica.admission rep);
           rs.Stats.end_us <- end_us;
           st.stats.Stats.batches <- st.stats.Stats.batches + rs.Stats.batches;
           st.stats.Stats.batched_requests <-
             st.stats.Stats.batched_requests + rs.Stats.batched_requests;
           Stats.Profiler.merge ~into:st.stats.Stats.profiler rs.Stats.profiler;
           st.stats.Stats.fault_batches <-
             st.stats.Stats.fault_batches + rs.Stats.fault_batches;
           st.stats.Stats.retries <- st.stats.Stats.retries + rs.Stats.retries;
           st.stats.Stats.bisections <- st.stats.Stats.bisections + rs.Stats.bisections;
           st.stats.Stats.breaker_opens <-
             st.stats.Stats.breaker_opens + rs.Stats.breaker_opens;
           st.stats.Stats.degraded_batches <-
             st.stats.Stats.degraded_batches + rs.Stats.degraded_batches;
           st.stats.Stats.retried_requests <-
             st.stats.Stats.retried_requests + rs.Stats.retried_requests;
           st.stats.Stats.brownouts <- st.stats.Stats.brownouts + rs.Stats.brownouts;
           st.stats.Stats.brownout_restores <-
             st.stats.Stats.brownout_restores + rs.Stats.brownout_restores;
           (* Integrity counters are replica-owned (audits run where the
              batch ran); the aggregate is their sum, like batches. *)
           st.stats.Stats.corrupted_batches <-
             st.stats.Stats.corrupted_batches + rs.Stats.corrupted_batches;
           st.stats.Stats.corrupted_delivered <-
             st.stats.Stats.corrupted_delivered + rs.Stats.corrupted_delivered;
           st.stats.Stats.audits <- st.stats.Stats.audits + rs.Stats.audits;
           st.stats.Stats.audit_mismatches <-
             st.stats.Stats.audit_mismatches + rs.Stats.audit_mismatches;
           st.stats.Stats.quarantines <-
             st.stats.Stats.quarantines + rs.Stats.quarantines;
           st.stats.Stats.quarantine_restores <-
             st.stats.Stats.quarantine_restores + rs.Stats.quarantine_restores;
           { rv_id = Replica.id rep; rv_stats = rs; rv_health = Replica.health rep })
         st.replicas)
  in
  st.stats.Stats.clamped_schedules <- Event_loop.clamped_count loop;
  st.stats.Stats.loop_events <- Event_loop.dispatched loop;
  Stats.to_metrics st.stats metrics;
  { cluster_stats = st.stats; replica_views = views }
