(** Deterministic result fingerprints: the integrity layer's detector.

    A fingerprint is a 64-bit checksum of a request's output tensors. Two
    properties carry the whole silent-data-corruption defense:

    - {b sensitivity}: perturbing any single element of any output tensor
      changes the fingerprint (with overwhelming probability — each word
      passes through a splitmix64-style avalanche before combining);
    - {b batch invariance}: the digest of one request depends only on that
      request's own output values, never on which peers it was batched
      with or in which order the runtime materialized the tensors.
      Per-tensor digests are position-sensitive {e internally} (element
      order within a tensor matters) but tensors combine {e commutatively}
      across a value, so any traversal order yields the same fingerprint.

    Batched and unbatched execution of the same request therefore produce
    the same fingerprint — exactly ACROBAT's core value-equivalence claim —
    which is what lets a sampled unbatched re-execution serve as the audit
    oracle, and doubles as a standing batched≡unbatched regression gate
    across every engine. *)

open Acrobat_tensor

type t = int64

let zero : t = 0L

let equal : t -> t -> bool = Int64.equal

(* splitmix64 finalizer: full avalanche, so a one-bit input difference
   flips ~half the output bits. *)
let mix64 (z : int64) : int64 =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

(* Position-sensitive fold of one word into a running digest. *)
let step (h : int64) (w : int64) : int64 =
  mix64 (Int64.add (Int64.mul h 0x9e3779b97f4a7c15L) w)

(** Digest of one concrete tensor: shape dims then every element in row
    order. Distinct shapes with identical data digest differently. *)
let of_tensor (x : Tensor.t) : t =
  let h = ref (step 1L (Int64.of_int (List.length (Tensor.shape x)))) in
  List.iter (fun d -> h := step !h (Int64.of_int d)) (Tensor.shape x);
  Array.iter (fun v -> h := step !h (Int64.bits_of_float v)) (Tensor.data x);
  !h

(* An accounting-only output (no materialized tensor) digests its shape
   under a distinct tag: structure is still covered, values are not. *)
let of_out (o : Value.out) : t =
  match o.Value.tensor with
  | Some x -> of_tensor x
  | None ->
    let h = ref (step 2L (Int64.of_int (List.length o.Value.shape))) in
    List.iter (fun d -> h := step !h (Int64.of_int d)) o.Value.shape;
    !h

let of_handle (h : Value.handle) : t =
  match Value.handle_out h with
  | Some o -> of_out o
  | None -> step 3L 0L (* pending: callers fingerprint after the final flush *)

(** Fingerprint of one request's output value. Tensor and scalar components
    combine with [Int64.add] — commutative, so the digest is invariant to
    traversal/materialization order — while each component's own digest is
    avalanche-mixed first, so the combination stays sensitive. *)
let of_value (v : Value.value) : t =
  let rec add acc = function
    | Value.Vtensor h -> Int64.add acc (of_handle h)
    | Value.Vint n -> Int64.add acc (mix64 (step 4L (Int64.of_int n)))
    | Value.Vbool b -> Int64.add acc (mix64 (step 5L (if b then 1L else 0L)))
    | Value.Vfloat f -> Int64.add acc (mix64 (step 6L (Int64.bits_of_float f)))
    | Value.Vnil | Value.Vfun _ -> acc
    | Value.Vcons (a, b) | Value.Vnode (a, b) -> add (add acc a) b
    | Value.Vleaf a -> add acc a
    | Value.Vtuple vs -> Array.fold_left add acc vs
  in
  add zero v

let to_hex (fp : t) : string = Fmt.str "%016Lx" fp

let pp ppf fp = Fmt.string ppf (to_hex fp)
