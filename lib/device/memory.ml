(** Simulated device memory: a bump-pointer arena.

    ACROBAT and DyNet both use arena allocation on the device (§D.3). We track
    only addresses and extents — actual values live in host {!Acrobat_tensor}
    buffers — because the one property batching cares about is whether the
    inputs of a batch are *contiguous* (§5.2): contiguous inputs need no
    memory gather; scattered inputs need either an explicit gather kernel or
    a gather-fused kernel.

    The arena can carry a [capacity] (in elements). A bounded arena makes
    allocation a fallible operation — exactly what a real accelerator does —
    so the serving stack's out-of-memory handling has something true to
    degrade against. *)

type address = int

(** Raised by {!alloc} on a bounded arena that cannot fit the request.
    [in_use] is the cursor at the time of the failure. *)
exception Device_oom of { requested : int; in_use : int; capacity : int }

let () =
  Printexc.register_printer (function
    | Device_oom { requested; in_use; capacity } ->
      Some
        (Fmt.str "Device_oom(requested %d elems, %d/%d in use)" requested in_use capacity)
    | _ -> None)

type t = {
  capacity : int option;  (** Arena bound in elements; [None] = unbounded. *)
  mutable cursor : address;
  mutable allocations : int;
  mutable peak : address;
  mutable oom_failures : int;
}

let create ?capacity () =
  (match capacity with
  | Some c when c <= 0 -> Fmt.invalid_arg "Memory.create: capacity must be positive"
  | _ -> ());
  { capacity; cursor = 0; allocations = 0; peak = 0; oom_failures = 0 }

(* [reset] recycles the arena between mini-batches. [peak] deliberately
   survives: it is the high-water mark of the whole run, the number capacity
   planning reads — clearing it per batch would report only the last batch. *)
let reset t =
  t.cursor <- 0;
  t.allocations <- 0

(** [alloc t ~elems] reserves [elems] contiguous elements, returning the
    base address.

    @raise Device_oom when the arena is bounded and the request does not fit
    (the boundary allocation — filling the arena exactly — succeeds). *)
let alloc t ~elems =
  if elems < 0 then Fmt.invalid_arg "Memory.alloc: negative size %d" elems;
  (match t.capacity with
  | Some cap when t.cursor + elems > cap ->
    t.oom_failures <- t.oom_failures + 1;
    raise (Device_oom { requested = elems; in_use = t.cursor; capacity = cap })
  | _ -> ());
  let addr = t.cursor in
  t.cursor <- t.cursor + elems;
  t.allocations <- t.allocations + 1;
  if t.cursor > t.peak then t.peak <- t.cursor;
  addr

let capacity t = t.capacity
let allocations t = t.allocations
let used_elems t = t.cursor
let peak_elems t = t.peak
let oom_failures t = t.oom_failures

(** [contiguous chunks] is true when the [(address, elems)] chunks lie
    back-to-back in order, i.e. a batched kernel can read them as one slab. *)
let contiguous chunks =
  match chunks with
  | [] -> true
  | (first, first_sz) :: rest ->
    let rec go expected = function
      | [] -> true
      | (addr, sz) :: tl -> addr = expected && go (addr + sz) tl
    in
    go (first + first_sz) rest
