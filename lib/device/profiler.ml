(** Activity accounting, mirroring the categories of the paper's Table 5. *)

type activity =
  | Dfg_construction  (** Building DFG nodes during lazy execution. *)
  | Scheduling  (** Finding batching opportunities / ordering nodes. *)
  | Mem_transfer  (** Host <-> device copies. *)
  | Kernel_exec  (** Device time of compute + gather kernels. *)
  | Api_overhead  (** Host-side CUDA-API call costs. *)
  | Vm_overhead  (** Interpreter dispatch (Relay VM only). *)
  | Fiber_overhead  (** Cooperative context switches. *)

let activity_name = function
  | Dfg_construction -> "DFG construction"
  | Scheduling -> "Scheduling"
  | Mem_transfer -> "Mem. copy time"
  | Kernel_exec -> "GPU kernel time"
  | Api_overhead -> "CUDA API time"
  | Vm_overhead -> "VM overhead"
  | Fiber_overhead -> "Fiber overhead"

let all_activities =
  [
    Dfg_construction;
    Scheduling;
    Mem_transfer;
    Kernel_exec;
    Api_overhead;
    Vm_overhead;
    Fiber_overhead;
  ]

type t = {
  mutable times_us : (activity * float) list;
  mutable kernel_calls : int;  (** Device kernel launches (incl. gathers). *)
  mutable gather_kernels : int;
  mutable gather_bytes : int;
  mutable memcpy_calls : int;
  mutable nodes_created : int;
  mutable batches_executed : int;
  mutable unbatched_ops : int;
      (** Ops executed one-by-one because the framework could not batch
          them (e.g. DyNet's unsupported operators, §E.4). *)
  mutable fiber_switches : int;
}

let create () =
  {
    times_us = List.map (fun a -> a, 0.0) all_activities;
    kernel_calls = 0;
    gather_kernels = 0;
    gather_bytes = 0;
    memcpy_calls = 0;
    nodes_created = 0;
    batches_executed = 0;
    unbatched_ops = 0;
    fiber_switches = 0;
  }

let reset t =
  t.times_us <- List.map (fun a -> a, 0.0) all_activities;
  t.kernel_calls <- 0;
  t.gather_kernels <- 0;
  t.gather_bytes <- 0;
  t.memcpy_calls <- 0;
  t.nodes_created <- 0;
  t.batches_executed <- 0;
  t.unbatched_ops <- 0;
  t.fiber_switches <- 0

let charge t activity us =
  t.times_us <-
    List.map (fun (a, v) -> if a = activity then a, v +. us else a, v) t.times_us

let time_us t activity = List.assoc activity t.times_us

(** Total simulated latency in microseconds. *)
let total_us t = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 t.times_us

let total_ms t = total_us t /. 1000.0

let merge ~into src =
  List.iter (fun (a, v) -> charge into a v) src.times_us;
  into.kernel_calls <- into.kernel_calls + src.kernel_calls;
  into.gather_kernels <- into.gather_kernels + src.gather_kernels;
  into.gather_bytes <- into.gather_bytes + src.gather_bytes;
  into.memcpy_calls <- into.memcpy_calls + src.memcpy_calls;
  into.nodes_created <- into.nodes_created + src.nodes_created;
  into.batches_executed <- into.batches_executed + src.batches_executed;
  into.unbatched_ops <- into.unbatched_ops + src.unbatched_ops;
  into.fiber_switches <- into.fiber_switches + src.fiber_switches

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun (a, v) ->
      if v > 0.0 then Fmt.pf ppf "%-18s %8.2f ms@," (activity_name a) (v /. 1000.0))
    t.times_us;
  Fmt.pf ppf "#Kernel calls      %8d@," t.kernel_calls;
  Fmt.pf ppf "#Gather kernels    %8d@," t.gather_kernels;
  Fmt.pf ppf "#DFG nodes         %8d@," t.nodes_created;
  Fmt.pf ppf "#Batches           %8d@," t.batches_executed;
  Fmt.pf ppf "Total              %8.2f ms@]" (total_ms t)
