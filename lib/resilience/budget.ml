(** Token-bucket retry budget: retry traffic is capped at a fraction of
    fresh traffic.

    Every freshly admitted request deposits [frac] tokens; retrying a batch
    of [n] requests spends [n] tokens. When the bucket cannot cover a
    retry, the caller must convert the retry into a counted shed instead
    of re-offering load to a device that is already saturated — unbudgeted
    retries are how overload goes metastable (DESIGN.md §13).

    Deterministic: the bucket is plain arithmetic, no randomness, no wall
    clock. The bound it enforces is global and checkable:
    retried requests <= frac * admitted requests (the bucket starts
    empty, so spends can never outrun deposits). *)

type t = {
  frac : float;  (** Tokens deposited per fresh admission. *)
  mutable tokens : float;
}

let create ~frac = { frac; tokens = 0.0 }
let frac t = t.frac
let tokens t = t.tokens

(** A fresh request was admitted: the budget grows by [frac]. *)
let deposit t = t.tokens <- t.tokens +. t.frac

(** Try to pay for retrying a batch of [n] requests. On success the
    tokens are consumed and the retry may proceed; on failure the bucket
    is left untouched and the caller must shed. *)
let try_spend t n =
  let cost = float_of_int n in
  if t.tokens >= cost then begin
    t.tokens <- t.tokens -. cost;
    true
  end
  else false
