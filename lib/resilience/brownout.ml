(** Brownout controller: proactive load-based degradation.

    Watches the same queue-delay signal as the limiter. When delay stays
    above [bo_high_us] for a full [bo_dwell_us] window the controller
    engages brownout — the server swaps to the model's cheaper degraded
    variant ({!Acrobat_models.Model.degraded}-style early exit) to buy
    capacity. It restores only after delay has stayed below [bo_low_us]
    (the hysteresis floor, strictly under the engage threshold) for
    another dwell window, so the controller cannot flap on a single
    quiet batch.

    Consequence the chaos invariants lean on: transitions strictly
    alternate engage/restore and consecutive transitions are at least
    [bo_dwell_us] apart. *)

type spec = {
  bo_high_us : float;  (** Engage when delay stays above this... *)
  bo_dwell_us : float;  (** ...for this long. *)
  bo_low_us : float;  (** Restore when delay stays below this for a dwell. *)
}

type t = {
  spec : spec;
  mutable engaged : bool;
  mutable crossed_since : float option;
      (** Virtual time the delay signal crossed the active threshold. *)
}

let create spec = { spec; engaged = false; crossed_since = None }
let engaged t = t.engaged
let spec t = t.spec

type transition = Stay | Engage | Restore

(** Feed one queue-delay observation at virtual time [now_us]. *)
let observe t ~now_us ~delay_us =
  if not t.engaged then
    if delay_us > t.spec.bo_high_us then begin
      match t.crossed_since with
      | None ->
        t.crossed_since <- Some now_us;
        Stay
      | Some since ->
        if now_us -. since >= t.spec.bo_dwell_us then begin
          t.engaged <- true;
          t.crossed_since <- None;
          Engage
        end
        else Stay
    end
    else begin
      t.crossed_since <- None;
      Stay
    end
  else if delay_us < t.spec.bo_low_us then begin
    match t.crossed_since with
    | None ->
      t.crossed_since <- Some now_us;
      Stay
    | Some since ->
      if now_us -. since >= t.spec.bo_dwell_us then begin
        t.engaged <- false;
        t.crossed_since <- None;
        Restore
      end
      else Stay
  end
  else begin
    t.crossed_since <- None;
    Stay
  end
