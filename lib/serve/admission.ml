(** Admission control: a bounded request queue with load shedding and
    deadline drops.

    Backpressure is the first line of defense of an online server: when the
    offered load exceeds device capacity, an unbounded queue turns every
    request's latency into the queue's age. We bound the queue and shed at
    the door instead (callers count the shed), and expire requests whose
    deadline has already passed when they are popped for execution — running
    them would waste device time on an answer nobody is waiting for.

    Queued requests are ordered earliest-deadline-first (EDF) with
    insertion order breaking ties, so near-deadline work is never starved
    behind requests that have more slack. Deadline-less requests sort
    last. When every queued request carries the same {e relative} deadline
    — one shared [--deadline-ms], one tenant's SLO, or no deadline at all,
    i.e. every configuration that predates per-queue deadline mixing —
    absolute deadlines are monotone in arrival order and EDF is
    order-identical to the old FIFO, pops and sweeps included.

    [eager_sweep] additionally purges expired requests on {e every} offer
    (the resilience layer arms it): under overload, dead requests stop
    holding queue slots that would otherwise shed live arrivals. Off by
    default — the legacy queue sweeps only when full.

    Two backends implement the same EDF contract:

    - [Edf_heap] (the default): a pairing heap on (deadline, seq) for pops
      plus a second pairing heap on (arrival, seq) — sharing the entries,
      with lazy deletion — caching the minimum arrival, and an O(1) length
      counter. Offers are O(1), pops amortized O(log n), and the batcher's
      per-tick [length]/[is_empty]/[oldest_arrival_us] probes are O(1)
      (amortized, for the arrival cache) instead of O(n) list walks.
    - [Sorted_list]: the original sorted-list queue, kept verbatim as an
      executable specification for the differential tests and the honest
      before/after comparison in [bench scale].

    Because the (deadline, seq) order is a strict total order, any correct
    heap pops in exactly the sorted list's order — the two backends are
    observationally identical, pops, sweeps, and counters included. *)

type 'a request = {
  rq_id : int;
  rq_payload : 'a;
  rq_arrival_us : float;
  rq_deadline_us : float option;  (** Absolute; [None] = best effort. *)
}

type backend = Edf_heap | Sorted_list

(* Queue entries carry the insertion sequence number for the stable EDF
   tie-break. [e_live] is the heap backend's lazy-deletion mark: entries
   leave the EDF heap eagerly but linger in the arrival heap until they
   surface at its top. *)
type 'a entry = { e_seq : int; e_req : 'a request; mutable e_live : bool }

(* Pairing heap: O(1) meld/insert, amortized O(log n) delete-min. *)
type 'a heap = E | N of 'a entry * 'a heap list

type 'a t = {
  capacity : int;
  eager_sweep : bool;
  backend : backend;
  mutable q : 'a entry list;  (** [Sorted_list]: sorted by (deadline, seq). *)
  mutable edf : 'a heap;  (** [Edf_heap]: live entries, (deadline, seq) order. *)
  mutable arr : 'a heap;  (** [Edf_heap]: live + stale, (arrival, seq) order. *)
  mutable len : int;  (** [Edf_heap]: live entry count. *)
  mutable next_seq : int;
  mutable shed : int;  (** Rejected at admission: queue full. *)
  mutable expired : int;  (** Dropped at dequeue (or swept): deadline passed. *)
}

(* Global default, mirroring [Event_loop.default_backend]: harnesses flip
   whole simulations onto the reference backend without touching call
   sites. *)
let default_backend = ref Edf_heap

let set_default_backend b = default_backend := b
let current_default_backend () = !default_backend

let create ?backend ?(eager_sweep = false) ~capacity () =
  if capacity <= 0 then Fmt.invalid_arg "Admission.create: capacity must be positive";
  let backend = match backend with Some b -> b | None -> !default_backend in
  {
    capacity;
    eager_sweep;
    backend;
    q = [];
    edf = E;
    arr = E;
    len = 0;
    next_seq = 0;
    shed = 0;
    expired = 0;
  }

let length t = match t.backend with Edf_heap -> t.len | Sorted_list -> List.length t.q
let is_empty t = match t.backend with Edf_heap -> t.len = 0 | Sorted_list -> t.q = []
let shed_count t = t.shed
let expired_count t = t.expired

let deadline_key (r : 'a request) =
  match r.rq_deadline_us with Some d -> d | None -> infinity

(* (deadline, seq) strict ordering: [a] pops before [b]. *)
let before a b =
  let da = deadline_key a.e_req and db = deadline_key b.e_req in
  if da < db then true else if da > db then false else a.e_seq < b.e_seq

(* (arrival, seq) strict ordering for the min-arrival cache. *)
let arrives_before a b =
  let aa = a.e_req.rq_arrival_us and ab = b.e_req.rq_arrival_us in
  if aa < ab then true else if aa > ab then false else a.e_seq < b.e_seq

(* --- pairing heap primitives, parameterized by the strict order --- *)

let meld lt a b =
  match a, b with
  | E, h | h, E -> h
  | N (ea, ca), N (eb, cb) -> if lt ea eb then N (ea, b :: ca) else N (eb, a :: cb)

let heap_insert lt h e = meld lt h (N (e, []))

(* Two-pass pairing melding of a popped root's children. *)
let rec meld_children lt = function
  | [] -> E
  | [ h ] -> h
  | a :: b :: rest -> meld lt (meld lt a b) (meld_children lt rest)

let heap_peek = function E -> None | N (e, _) -> Some e

let heap_pop lt = function
  | E -> None
  | N (e, children) -> Some (e, meld_children lt children)

(* --- Sorted_list reference implementation (unchanged semantics) --- *)

let list_insert t (r : 'a request) =
  let e = { e_seq = t.next_seq; e_req = r; e_live = true } in
  t.next_seq <- t.next_seq + 1;
  let rec go = function
    | [] -> [ e ]
    | x :: rest -> if before e x then e :: x :: rest else x :: go rest
  in
  t.q <- go t.q

(* --- Edf_heap implementation --- *)

let heap_insert_entry t (r : 'a request) =
  let e = { e_seq = t.next_seq; e_req = r; e_live = true } in
  t.next_seq <- t.next_seq + 1;
  t.edf <- heap_insert before t.edf e;
  t.arr <- heap_insert arrives_before t.arr e;
  t.len <- t.len + 1

(* Pop the EDF minimum, marking it dead for the arrival cache. *)
let heap_pop_min t =
  match heap_pop before t.edf with
  | None -> None
  | Some (e, rest) ->
    t.edf <- rest;
    t.len <- t.len - 1;
    e.e_live <- false;
    Some e

(** Earliest queued arrival time, if any — the batcher's timeout anchor.
    Under EDF the head is the most urgent request, not necessarily the
    oldest: the heap backend answers from the arrival-ordered twin heap
    (discarding stale tops left by lazy deletion, amortized O(log n));
    the list backend scans. *)
let oldest_arrival_us t =
  match t.backend with
  | Sorted_list -> (
    match t.q with
    | [] -> None
    | e :: rest ->
      Some
        (List.fold_left
           (fun acc x -> Float.min acc x.e_req.rq_arrival_us)
           e.e_req.rq_arrival_us rest))
  | Edf_heap ->
    if t.len = 0 then None
    else begin
      (* Shed dead tops until a live entry surfaces; [len > 0] guarantees
         one exists. *)
      let rec surface () =
        match heap_peek t.arr with
        | Some e when not e.e_live ->
          (match heap_pop arrives_before t.arr with
          | Some (_, rest) -> t.arr <- rest
          | None -> assert false);
          surface ()
        | Some e -> Some e.e_req.rq_arrival_us
        | None -> None
      in
      surface ()
    end

let expired_at ~now_us (r : 'a request) =
  match r.rq_deadline_us with Some d -> now_us > d | None -> false

(* Drop (and count) every already-expired request in place, returning the
   dropped requests. Called when the queue is full — a full queue of dead
   requests must not shed live ones — and on every offer under
   [eager_sweep]. Expired requests have strictly earlier deadlines than
   live ones, so under EDF they are exactly a prefix of the pop order:
   popping while the top is expired drops the same set, in the same
   order, as partitioning the sorted list. *)
let sweep_expired t ~now_us : 'a request list =
  match t.backend with
  | Sorted_list ->
    let dead, live = List.partition (fun e -> expired_at ~now_us e.e_req) t.q in
    t.q <- live;
    t.expired <- t.expired + List.length dead;
    List.map (fun e -> e.e_req) dead
  | Edf_heap ->
    let rec go acc =
      match heap_peek t.edf with
      | Some e when expired_at ~now_us e.e_req ->
        (match heap_pop_min t with Some _ -> () | None -> assert false);
        t.expired <- t.expired + 1;
        go (e.e_req :: acc)
      | _ -> List.rev acc
    in
    go []

(** Like {!offer}, but also returns the requests the sweep expired — the
    cluster layer needs per-request visibility to keep its request-id
    accounting exact, where the single server only needs the counters. *)
let offer_swept t ~now_us (r : 'a request) : bool * 'a request list =
  let swept =
    if t.eager_sweep || length t >= t.capacity then sweep_expired t ~now_us else []
  in
  if length t >= t.capacity then begin
    t.shed <- t.shed + 1;
    false, swept
  end
  else begin
    (match t.backend with
    | Sorted_list -> list_insert t r
    | Edf_heap -> heap_insert_entry t r);
    true, swept
  end

(** Admit [r], or shed it when the queue is at capacity. A full queue is
    first swept of requests whose deadline already passed (counted under
    [expired], same as a drop at dequeue) — they were never going to
    execute, and they must not cause a live request to be shed. *)
let offer t ~now_us (r : 'a request) : bool = fst (offer_swept t ~now_us r)

(** Like {!take}, but also returns the requests dropped as expired. *)
let take_with_expired t ~now_us ~limit : 'a request list * 'a request list =
  match t.backend with
  | Sorted_list ->
    let rec go k q acc dropped =
      if k = 0 then q, List.rev acc, List.rev dropped
      else
        match q with
        | [] -> q, List.rev acc, List.rev dropped
        | e :: rest ->
          if expired_at ~now_us e.e_req then begin
            t.expired <- t.expired + 1;
            go k rest acc (e.e_req :: dropped)
          end
          else go (k - 1) rest (e.e_req :: acc) dropped
    in
    let q, live, dropped = go limit t.q [] [] in
    t.q <- q;
    live, dropped
  | Edf_heap ->
    let rec go k acc dropped =
      if k = 0 then List.rev acc, List.rev dropped
      else
        match heap_pop_min t with
        | None -> List.rev acc, List.rev dropped
        | Some e ->
          if expired_at ~now_us e.e_req then begin
            t.expired <- t.expired + 1;
            go k acc (e.e_req :: dropped)
          end
          else go (k - 1) (e.e_req :: acc) dropped
    in
    go limit [] []

(** Pop up to [limit] live requests in EDF order, silently discarding (and
    counting) any whose deadline passed while they waited. *)
let take t ~now_us ~limit : 'a request list = fst (take_with_expired t ~now_us ~limit)

(** Drain the whole queue: live requests in EDF order plus the expired
    remainder (counted). Used on replica failover. *)
let drain t ~now_us : 'a request list * 'a request list =
  take_with_expired t ~now_us ~limit:(length t)
