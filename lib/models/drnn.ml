(** DRNN: doubly-recurrent neural network for top-down tree generation
    (Alvarez-Melis & Jaakkola 2017). Each node's state combines an
    ancestral and a fraternal recurrence; whether a node has children is a
    (pseudo-random, §E.1) tensor-dependent decision, and sibling subtrees
    are generated concurrently — the model with both tensor-dependent
    control flow {e and} instance parallelism that only fibers can exploit
    (§4.2, §7.2.1). The gating multiply broadcasts a (1,1) gate over the
    state, which DyNet executes unbatched (§E.4). *)

module Driver = Acrobat_engines.Driver
open Acrobat_tensor

let template =
  {|
def @append(%a: List[Tensor[(1, {H})]], %b: List[Tensor[(1, {H})]])
    -> List[Tensor[(1, {H})]] {
  match (%a) {
    Nil => %b,
    Cons(%h, %t) => Cons(%h, @append(%t, %b))
  }
}

def @gen(%h_anc: Tensor[(1, {H})], %h_sib: Tensor[(1, {H})], %d: Int,
         %wa: Tensor[({H}, {H})], %wf: Tensor[({H}, {H})], %b: Tensor[(1, {H})],
         %wg: Tensor[({H}, 1)]) -> List[Tensor[(1, {H})]] {
  let %h = tanh(matmul(%h_anc, %wa) + matmul(%h_sib, %wf) + %b);
  let %gate = sigmoid(matmul(%h, %wg));
  let %hg = mul(%h, %gate);
  let %stop = coin(0.42);
  if (%stop || %d == 0) { Cons(%hg, Nil) } else {
    let %sib0 = zeros((1, {H}));
    let %children = concurrent(
      @gen(%hg, %sib0, %d - 1, %wa, %wf, %b, %wg),
      @gen(%hg, %hg, %d - 1, %wa, %wf, %b, %wg));
    Cons(%hg, @append(%children.0, %children.1))
  }
}

def @main(%wa: Tensor[({H}, {H})], %wf: Tensor[({H}, {H})], %b: Tensor[(1, {H})],
          %wg: Tensor[({H}, 1)], %root: Tensor[(1, {H})]) -> List[Tensor[(1, {H})]] {
  let %sib0 = zeros((1, {H}));
  @gen(%root, %sib0, {D}, %wa, %wf, %b, %wg)
}
|}

let make ?hidden ?(max_depth = 7) (size : Model.size) : Model.t =
  let hidden =
    match hidden with
    | Some h -> h
    | None -> ( match size with Model.Small -> 256 | Model.Large -> 512)
  in
  let specs =
    [
      "wa", [ hidden; hidden ];
      "wf", [ hidden; hidden ];
      "b", [ 1; hidden ];
      "wg", [ hidden; 1 ];
    ]
  in
  {
    Model.name = "drnn";
    size;
    source = Model.subst [ "H", hidden; "D", max_depth ] template;
    inputs = [ "root" ];
    gen_weights = Model.weights_of_specs specs;
    gen_instance = (fun rng -> [ "root", Driver.Htensor (Tensor.random rng [ 1; hidden ]) ]);
    degraded = None;
  }
