(** The network fault domain: a seeded, deterministic virtual transport
    between the dispatcher and its replicas.

    Every fault the stack could previously inject happened {e inside} a
    replica; the dispatcher↔replica hop was a perfect, instantaneous
    function call. This module makes that hop a real link: each message
    (a dispatched request, or a completion on its way back) traverses a
    per-direction fault pipeline — delay with jitter, random loss,
    duplication, reordering, a timed partition window, and {e gray}
    one-directional loss (sends arrive, completions vanish — the
    asymmetric failure that makes a healthy replica look dead).

    A {!plan} is pure data in the {!Acrobat_device.Faults} clause style
    ([delay=80:20,drop=0.1,dup=0.2,partition=4000:9000]); {!none} is the
    all-zero plan, and a disabled plan must never be consulted — the
    serving layer keeps the direct-call path when [enabled plan] is
    false, so zero-fault configurations stay byte-identical to the
    pre-net stack (no RNG draws, no event-loop schedules, no trace
    emissions).

    The module is deliberately mechanism-only: it draws fates and delays
    from one seeded {!Acrobat_tensor.Rng} stream and answers partition
    queries; the {e protocol} built on top — idempotency keys with the
    per-receiver {!Dedup} window, sender-side deadline shedding against
    the {!ewma_us} delay estimate, per-link timeout and epoch-fenced
    resend — lives with the dispatcher that owns request accounting
    ({!Acrobat_serve.Cluster}, [Acrobat_tenancy.Dispatcher]). *)

module Rng = Acrobat_tensor.Rng
module Clause = Acrobat_device.Clause

type plan = {
  np_seed : int;  (** Seeds the transport's RNG stream. *)
  np_delay_us : float;  (** Base one-way delay per message. *)
  np_jitter_us : float;  (** Uniform +/- jitter on each delay draw. *)
  np_drop : float;  (** P(message lost), each direction independently. *)
  np_dup : float;  (** P(a dispatched request is delivered twice). *)
  np_reorder : float;
      (** P(a message draws a large extra delay and overtakes later
          traffic) — the visible form of reordering on a virtual clock. *)
  np_gray : float;
      (** Gray link: additional P(loss) on the {e return} direction only.
          Requests arrive and execute; completions vanish — the
          asymmetric failure that makes a healthy replica look dead. *)
  np_partition : (float * float * int list) option;
      (** [(t0, t1, group)]: during virtual time [t0, t1) no message
          crosses between the dispatcher and the replicas in [group]
          (an empty group defaults to the highest-id replica). *)
  np_timeout_us : float;
      (** Sender-side per-attempt timeout arming the resend path;
          [0] disables timeouts (pure lossy transport). *)
  np_resends : int;  (** Resends per dispatch attempt before failover. *)
  np_dedup : bool;
      (** Receiver-side idempotency window (exactly-once execution per
          (id, epoch)); [false] is the naive-resend baseline that
          re-executes every duplicate. *)
  np_window : int;  (** Dedup window capacity (ids remembered per replica). *)
}

let default_timeout_us = 8_000.0
let default_resends = 2
let default_window = 512

(** The all-zero plan: a perfect link. [enabled none = false]. *)
let none =
  {
    np_seed = 0;
    np_delay_us = 0.0;
    np_jitter_us = 0.0;
    np_drop = 0.0;
    np_dup = 0.0;
    np_reorder = 0.0;
    np_gray = 0.0;
    np_partition = None;
    np_timeout_us = default_timeout_us;
    np_resends = default_resends;
    np_dedup = true;
    np_window = default_window;
  }

(** Does this plan perturb the transport at all? Protocol knobs (timeout,
    resends, dedup, window) alone do not arm the net layer: with a
    perfect link they would never fire. *)
let enabled p =
  p.np_delay_us > 0.0 || p.np_jitter_us > 0.0 || p.np_drop > 0.0 || p.np_dup > 0.0
  || p.np_reorder > 0.0 || p.np_gray > 0.0 || p.np_partition <> None

(** Can a message on this plan be lost (needing the timeout/resend path
    for conservation)? *)
let lossy p = p.np_drop > 0.0 || p.np_gray > 0.0 || p.np_partition <> None

let what = "net plan"

(** Validate a plan's numeric ranges, naming the offending key. Like
    {!Acrobat_device.Faults.validate}, this is the choke point shared by
    the parser and programmatically built plans (the chaos generator).

    @raise Invalid_argument naming the offending key(s). *)
let validate (p : plan) : unit =
  let fail fmt = Clause.fail ~what fmt in
  Clause.check_prob ~what "drop" p.np_drop;
  Clause.check_prob ~what "dup" p.np_dup;
  Clause.check_prob ~what "reorder" p.np_reorder;
  Clause.check_prob ~what "gray" p.np_gray;
  Clause.check_nonneg ~what "delay" p.np_delay_us;
  Clause.check_nonneg ~what "delay jitter" p.np_jitter_us;
  Clause.check_nonneg ~what "timeout" p.np_timeout_us;
  if p.np_resends < 0 then fail "resends=%d must be non-negative" p.np_resends;
  if p.np_window < 1 then fail "window=%d must be a positive integer" p.np_window;
  (match p.np_partition with
  | None -> ()
  | Some (t0, t1, group) ->
    Clause.check_nonneg ~what "partition start" t0;
    Clause.check_nonneg ~what "partition end" t1;
    if t1 < t0 then fail "partition window %g:%g ends before it starts" t0 t1;
    List.iter
      (fun r -> if r < 0 then fail "partition replica %d must be non-negative" r)
      group);
  if lossy p && p.np_timeout_us <= 0.0 then
    fail
      "a lossy plan (drop/gray/partition) requires timeout > 0, or lost requests would \
       never terminate"

let valid_keys =
  [
    "seed"; "delay"; "drop"; "dup"; "reorder"; "gray"; "partition"; "timeout"; "resends";
    "dedup"; "window";
  ]

(** Parse a plan from a CLI spec: comma-separated [key=value] clauses in
    the {!Acrobat_device.Faults} style.

    {v seed=7,delay=80:20,drop=0.1,dup=0.2,reorder=0.05,gray=0.02,partition=4000:9000:2,timeout=5000,resends=2,dedup=1 v}

    [delay=BASE[:JITTER]] is the one-way delay (uniform +/- JITTER);
    [drop], [dup], [reorder] and [gray] are per-message probabilities;
    [partition=T0:T1[:IDS]] cuts the replicas in [IDS] ([/]-separated
    ids; default the highest-id replica) off between virtual times [T0]
    and [T1]; [timeout], [resends], [dedup] (0/1) and [window] tune the
    delivery protocol. Unknown keys are rejected with the full valid
    list, exactly like fault plans. *)
let parse (spec : string) : plan =
  let fail fmt = Clause.fail ~what fmt in
  let field plan (key, v) =
    match key with
    | "seed" -> { plan with np_seed = Clause.int ~what key v }
    | "delay" -> (
      match String.index_opt v ':' with
      | None -> { plan with np_delay_us = Clause.nonneg ~what key v }
      | Some i ->
        let base = String.sub v 0 i in
        let jitter = String.sub v (i + 1) (String.length v - i - 1) in
        {
          plan with
          np_delay_us = Clause.nonneg ~what key base;
          np_jitter_us = Clause.nonneg ~what "delay jitter" jitter;
        })
    | "drop" -> { plan with np_drop = Clause.prob ~what key v }
    | "dup" -> { plan with np_dup = Clause.prob ~what key v }
    | "reorder" -> { plan with np_reorder = Clause.prob ~what key v }
    | "gray" -> { plan with np_gray = Clause.prob ~what key v }
    | "partition" -> (
      match String.split_on_char ':' v with
      | [ t0; t1 ] ->
        {
          plan with
          np_partition =
            Some (Clause.nonneg ~what "partition start" t0,
                  Clause.nonneg ~what "partition end" t1, []);
        }
      | [ t0; t1; ids ] ->
        let group =
          List.map
            (fun s ->
              match int_of_string_opt s with
              | Some r when r >= 0 -> r
              | _ -> fail "partition replica %S is not a non-negative integer" s)
            (String.split_on_char '/' ids)
        in
        {
          plan with
          np_partition =
            Some (Clause.nonneg ~what "partition start" t0,
                  Clause.nonneg ~what "partition end" t1, group);
        }
      | _ -> fail "partition=%s is not T0:T1[:IDS]" v)
    | "timeout" -> { plan with np_timeout_us = Clause.nonneg ~what key v }
    | "resends" -> (
      match int_of_string_opt v with
      | Some n when n >= 0 -> { plan with np_resends = n }
      | _ -> fail "resends=%s is not a non-negative integer" v)
    | "dedup" -> (
      match v with
      | "0" | "false" -> { plan with np_dedup = false }
      | "1" | "true" -> { plan with np_dedup = true }
      | _ -> fail "dedup=%s is not a boolean (0/1)" v)
    | "window" -> (
      match int_of_string_opt v with
      | Some n when n >= 1 -> { plan with np_window = n }
      | _ -> fail "window=%s is not a positive integer" v)
    | other -> Clause.unknown_key ~what ~valid:valid_keys other
  in
  let plan = List.fold_left field none (Clause.fields ~what spec) in
  validate plan;
  plan

(** Render [p] in the clause form {!parse} accepts;
    [parse (to_spec p) = p] for any valid plan (round-trip tested).
    Zero-rate transport clauses are still emitted (self-describing, like
    fault plans); protocol knobs are omitted at their defaults so legacy
    specs stay short. *)
let to_spec (p : plan) : string =
  let f = Clause.float_spec in
  let base =
    Fmt.str "seed=%d,delay=%s:%s,drop=%s,dup=%s,reorder=%s,gray=%s" p.np_seed
      (f p.np_delay_us) (f p.np_jitter_us) (f p.np_drop) (f p.np_dup) (f p.np_reorder)
      (f p.np_gray)
  in
  let partition =
    match p.np_partition with
    | None -> ""
    | Some (t0, t1, []) -> Fmt.str ",partition=%s:%s" (f t0) (f t1)
    | Some (t0, t1, group) ->
      Fmt.str ",partition=%s:%s:%a" (f t0) (f t1) Fmt.(list ~sep:(any "/") int) group
  in
  let timeout =
    if p.np_timeout_us = default_timeout_us then ""
    else Fmt.str ",timeout=%s" (f p.np_timeout_us)
  in
  let resends =
    if p.np_resends = default_resends then "" else Fmt.str ",resends=%d" p.np_resends
  in
  let dedup = if p.np_dedup then "" else ",dedup=0" in
  let window =
    if p.np_window = default_window then "" else Fmt.str ",window=%d" p.np_window
  in
  base ^ partition ^ timeout ^ resends ^ dedup ^ window

let pp_plan ppf p = if not (enabled p) then Fmt.pf ppf "none" else Fmt.pf ppf "%s" (to_spec p)

(* --- Partition queries --- *)

(** The partition group resolved against a concrete pool size: an empty
    configured group defaults to the highest-id replica. *)
let group (p : plan) ~n =
  match p.np_partition with
  | None -> []
  | Some (_, _, []) -> if n > 0 then [ n - 1 ] else []
  | Some (_, _, g) -> List.filter (fun r -> r >= 0 && r < n) g

let partition_window (p : plan) =
  match p.np_partition with None -> None | Some (t0, t1, _) -> Some (t0, t1)

let in_group (p : plan) ~replica ~n = List.mem replica (group p ~n)

(** Is the link to [replica] cut at [now_us]? The window is half-open:
    a message stamped exactly at the heal instant crosses. *)
let partitioned (p : plan) ~replica ~n ~now_us =
  match p.np_partition with
  | None -> false
  | Some (t0, t1, _) -> now_us >= t0 && now_us < t1 && in_group p ~replica ~n

(* --- Trace track convention --- *)

(** Link [i]'s trace pid: the dispatcher is pid 0 and replica [i] is pid
    [i + 1], so the [n] link tracks stack after the replicas. *)
let link_pid ~n ~replica = n + 1 + replica

(* --- The stateful transport --- *)

type t = {
  plan : plan;
  rng : Rng.t;
  mutable ewma_us : float;  (** Observed one-way delay estimate. *)
  mutable observed : int;  (** Delay samples folded into the EWMA. *)
}

(** Seed derivation keeps the stream disjoint from every injector and
    arrival stream (cf. [Faults.create]'s [(seed * 0x2545F) lxor 0x5eed]). *)
let create (plan : plan) : t =
  validate plan;
  { plan; rng = Rng.create ((plan.np_seed * 0x9E3B) lxor 0x4e457); ewma_us = 0.0; observed = 0 }

let plan t = t.plan

(** Fold one observed one-way delay into the sender's estimate. The
    first sample initializes the EWMA; later samples decay at 0.2 — fast
    enough to track a congested link, slow enough not to chase jitter. *)
let observe_delay t d =
  if t.observed = 0 then t.ewma_us <- d
  else t.ewma_us <- (0.8 *. t.ewma_us) +. (0.2 *. d);
  t.observed <- t.observed + 1

(** The current one-way delay estimate; 0 before any observation (a
    sender with no evidence sheds nothing). *)
let ewma_us t = if t.observed = 0 then 0.0 else t.ewma_us

(* One delay draw: base +/- jitter, plus the occasional reorder spike
   (an extra 1-2x of the nominal delay, enough to overtake any message
   sent up to one nominal delay later). *)
let draw_delay t =
  let p = t.plan in
  let nominal = p.np_delay_us +. p.np_jitter_us in
  let d =
    if p.np_jitter_us > 0.0 then
      p.np_delay_us +. (p.np_jitter_us *. ((2.0 *. Rng.float t.rng) -. 1.0))
    else p.np_delay_us
  in
  let d = Float.max 0.0 d in
  if p.np_reorder > 0.0 && nominal > 0.0 && Rng.float t.rng < p.np_reorder then
    d +. ((1.0 +. Rng.float t.rng) *. nominal)
  else d

(** Per-copy fate of one dispatched request entering the send link.
    Every copy the transport drew ends in exactly one bucket, so
    [List.length sn_delays + sn_dropped + sn_cut] is the copy count and
    the caller's conservation accounting closes from these three numbers
    alone (the chaos conservation oracle depends on this). *)
type sent = {
  sn_delays : float list;  (** Delivery delays, one per surviving copy. *)
  sn_dropped : int;  (** Copies lost to random loss. *)
  sn_cut : int;  (** Copies blocked by a partition (at send or landing time). *)
}

(** Route one dispatcher→replica message. Draw order is fixed (partition
    check, drop, delay, dup, dup-delay) so a given (seed, plan) replays
    identically. *)
let send t ~now_us ~replica ~n : sent =
  let p = t.plan in
  if partitioned p ~replica ~n ~now_us then { sn_delays = []; sn_dropped = 0; sn_cut = 1 }
  else if p.np_drop > 0.0 && Rng.float t.rng < p.np_drop then
    { sn_delays = []; sn_dropped = 1; sn_cut = 0 }
  else begin
    let d1 = draw_delay t in
    let delays =
      if p.np_dup > 0.0 && Rng.float t.rng < p.np_dup then [ d1; draw_delay t ] else [ d1 ]
    in
    (* A copy whose landing instant falls inside the partition window is
       cut mid-flight. *)
    let crossing =
      List.filter (fun d -> not (partitioned p ~replica ~n ~now_us:(now_us +. d))) delays
    in
    { sn_delays = crossing;
      sn_dropped = 0;
      sn_cut = List.length delays - List.length crossing }
  end

(** Verdict for one completion entering the return link. *)
type recv_verdict =
  | Recv_partitioned
  | Recv_dropped  (** Random loss. *)
  | Recv_gray  (** Gray-link loss (return direction only). *)
  | Recv_deliver of float

(** Route one replica→dispatcher completion. The gray draw follows the
    symmetric drop draw, so [gray] adds loss on top of [drop]. *)
let recv t ~now_us ~replica ~n : recv_verdict =
  let p = t.plan in
  if partitioned p ~replica ~n ~now_us then Recv_partitioned
  else if p.np_drop > 0.0 && Rng.float t.rng < p.np_drop then Recv_dropped
  else if p.np_gray > 0.0 && Rng.float t.rng < p.np_gray then Recv_gray
  else begin
    let d = draw_delay t in
    if partitioned p ~replica ~n ~now_us:(now_us +. d) then Recv_partitioned
    else Recv_deliver d
  end

(* --- Receiver-side idempotency window --- *)

(** A bounded per-receiver memory of recently seen message keys: the
    receiving half of exactly-once delivery. [note]-ing a fresh key may
    evict the oldest live key once [capacity] distinct keys are held —
    within capacity, a noted key is never forgotten (QCheck-tested). *)
module Dedup = struct
  type ('k, 'v) t = {
    tbl : ('k, 'v) Hashtbl.t;
    gen : ('k, int) Hashtbl.t;  (** Live keys' current insertion generation. *)
    order : ('k * int) Queue.t;
        (** Insertion order, generation-stamped: a key removed out-of-band
            and later re-noted gets a fresh generation, so its old queue
            entry is recognizably stale. Without the stamp, eviction could
            pop the stale entry and delete the {e live} re-noted key early
            — exactly the remove-then-retransmit sequence the protocol
            produces (QCheck-tested). *)
    capacity : int;
    mutable tick : int;
  }

  let create ~capacity : ('k, 'v) t =
    if capacity < 1 then Fmt.invalid_arg "Net.Dedup.create: capacity %d < 1" capacity;
    {
      tbl = Hashtbl.create (min capacity 1024);
      gen = Hashtbl.create (min capacity 1024);
      order = Queue.create ();
      capacity;
      tick = 0;
    }

  let find t k = Hashtbl.find_opt t.tbl k
  let mem t k = Hashtbl.mem t.tbl k
  let length t = Hashtbl.length t.tbl

  (* Evict oldest live keys until within capacity, skipping queue entries
     whose generation no longer matches (removed, or removed-then-renoted). *)
  let rec evict t =
    if Hashtbl.length t.tbl > t.capacity then begin
      match Queue.take_opt t.order with
      | None -> ()
      | Some (k, g) ->
        (match Hashtbl.find_opt t.gen k with
        | Some g' when g' = g ->
          Hashtbl.remove t.tbl k;
          Hashtbl.remove t.gen k
        | _ -> ());
        evict t
    end

  (** Insert or update [k]. Updating an existing key refreshes its value
      without consuming a window slot. *)
  let note t k v =
    if Hashtbl.mem t.tbl k then Hashtbl.replace t.tbl k v
    else begin
      Hashtbl.replace t.tbl k v;
      t.tick <- t.tick + 1;
      Hashtbl.replace t.gen k t.tick;
      Queue.push (k, t.tick) t.order;
      evict t
    end

  (** Forget [k] (e.g. a delivery the replica shed without executing —
      a later retransmission must be allowed to execute). *)
  let remove t k =
    Hashtbl.remove t.tbl k;
    Hashtbl.remove t.gen k
end
