(** Tests for the simulated device: cost model, memory arena, profiler,
    launch accounting. *)

open Acrobat
open T_util
module Memory = Acrobat_device.Memory

let cm = Cost_model.default

let test_kernel_time_monotone () =
  let t f = Cost_model.kernel_time cm ~flops:f in
  check_true "more flops, more time" (t 1.0e6 < t 1.0e7);
  check_true "launch floor" (t 0.0 >= cm.Cost_model.kernel_launch_us)

let test_kernel_time_saturation () =
  (* Effective rate grows with kernel size: time per flop shrinks. *)
  let per_flop f = (Cost_model.kernel_time cm ~flops:f -. cm.Cost_model.kernel_launch_us) /. f in
  check_true "big kernels are more efficient" (per_flop 1.0e9 < per_flop 1.0e6)

let test_kernel_time_roofline () =
  let small_traffic = Cost_model.kernel_time cm ~flops:1000.0 ~bytes:0.0 in
  let big_traffic = Cost_model.kernel_time cm ~flops:1000.0 ~bytes:1.0e8 in
  check_true "memory-bound kernels pay bandwidth" (big_traffic > small_traffic +. 100.0)

let test_memcpy_time () =
  let t0 = Cost_model.memcpy_time cm ~bytes:0 in
  check_float "call overhead" cm.Cost_model.memcpy_call_us t0;
  check_true "bandwidth term" (Cost_model.memcpy_time cm ~bytes:8_000_000 > 900.0)

let test_memory_bump () =
  let m = Memory.create () in
  let a = Memory.alloc m ~elems:10 in
  let b = Memory.alloc m ~elems:5 in
  check_int "first at 0" 0 a;
  check_int "bump" 10 b;
  check_int "used" 15 (Memory.used_elems m);
  Memory.reset m;
  check_int "reset" 0 (Memory.used_elems m);
  check_int "peak survives reset" 15 (Memory.peak_elems m)

let test_contiguity () =
  check_true "empty" (Memory.contiguous []);
  check_true "single" (Memory.contiguous [ 5, 3 ]);
  check_true "adjacent" (Memory.contiguous [ 0, 4; 4, 2; 6, 1 ]);
  check_bool "gap" false (Memory.contiguous [ 0, 4; 5, 2 ]);
  check_bool "out of order" false (Memory.contiguous [ 4, 2; 0, 4 ]);
  check_bool "duplicate address" false (Memory.contiguous [ 0, 4; 0, 4 ])

let prop_contiguous_alloc =
  qtest "memory: consecutive allocs are contiguous"
    QCheck2.Gen.(list_size (int_range 1 10) (int_range 1 100))
    (fun sizes ->
      let m = Memory.create () in
      let chunks = List.map (fun sz -> Memory.alloc m ~elems:sz, sz) sizes in
      Memory.contiguous chunks)

let test_device_counters () =
  let d = Device.create () in
  Device.launch_kernel d ~flops:1000.0;
  Device.launch_kernel d ~flops:1000.0;
  ignore (Device.launch_gather d ~bytes:4000 ~elems:1000);
  Device.memcpy d ~bytes:100;
  let p = Device.profiler d in
  check_int "kernel calls incl gather" 3 p.Profiler.kernel_calls;
  check_int "gathers" 1 p.Profiler.gather_kernels;
  check_int "gather bytes" 4000 p.Profiler.gather_bytes;
  check_int "memcpys" 1 p.Profiler.memcpy_calls;
  check_true "api time" (Profiler.time_us p Profiler.Api_overhead > 0.0);
  check_true "total positive" (Profiler.total_ms p > 0.0)

let test_quality_divides_time () =
  let d1 = Device.create () and d2 = Device.create () in
  Device.launch_kernel d1 ~quality:1.0 ~flops:1.0e6;
  Device.launch_kernel d2 ~quality:0.5 ~flops:1.0e6;
  let k d = Profiler.time_us (Device.profiler d) Profiler.Kernel_exec in
  check_float ~eps:1e-6 "half quality doubles time" (2.0 *. k d1) (k d2)

let test_scattered_penalty () =
  let d1 = Device.create () and d2 = Device.create () in
  Device.launch_kernel d1 ~flops:1.0e6;
  Device.launch_kernel d2 ~scattered_inputs:true ~flops:1.0e6;
  let k d = Profiler.time_us (Device.profiler d) Profiler.Kernel_exec in
  check_true "indirection penalty" (k d2 > k d1)

let test_profiler_merge () =
  let a = Profiler.create () and b = Profiler.create () in
  Profiler.charge a Profiler.Scheduling 5.0;
  Profiler.charge b Profiler.Scheduling 7.0;
  b.Profiler.kernel_calls <- 3;
  Profiler.merge ~into:a b;
  check_float "times merged" 12.0 (Profiler.time_us a Profiler.Scheduling);
  check_int "counters merged" 3 a.Profiler.kernel_calls

let test_profiler_reset () =
  let p = Profiler.create () in
  Profiler.charge p Profiler.Kernel_exec 4.0;
  p.Profiler.nodes_created <- 9;
  Profiler.reset p;
  check_float "times zeroed" 0.0 (Profiler.total_us p);
  check_int "counters zeroed" 0 p.Profiler.nodes_created

let suite =
  [
    Alcotest.test_case "cost: kernel time monotone" `Quick test_kernel_time_monotone;
    Alcotest.test_case "cost: saturation" `Quick test_kernel_time_saturation;
    Alcotest.test_case "cost: roofline" `Quick test_kernel_time_roofline;
    Alcotest.test_case "cost: memcpy" `Quick test_memcpy_time;
    Alcotest.test_case "memory: bump allocation" `Quick test_memory_bump;
    Alcotest.test_case "memory: contiguity" `Quick test_contiguity;
    prop_contiguous_alloc;
    Alcotest.test_case "device: counters" `Quick test_device_counters;
    Alcotest.test_case "device: quality" `Quick test_quality_divides_time;
    Alcotest.test_case "device: scattered penalty" `Quick test_scattered_penalty;
    Alcotest.test_case "profiler: merge" `Quick test_profiler_merge;
    Alcotest.test_case "profiler: reset" `Quick test_profiler_reset;
  ]
